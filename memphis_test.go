package memphis

import (
	"testing"

	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/ir"
)

// ridgeProgram is a small grid over a reusable gram matrix.
func ridgeProgram(lambdas []float64) *ir.Program {
	p := ir.NewProgram()
	p.Main = []ir.Block{
		ir.For("lambda", lambdas, ir.BB(
			ir.Assign("G", ir.TSMM(ir.Var("X"))),
			ir.Assign("b", ir.MatMul(ir.T(ir.Var("X")), ir.Var("y"))),
			ir.Assign("beta", ir.Solve(ir.Add(ir.Var("G"), ir.Var("lambda")), ir.Var("b"))),
		)),
	}
	return p
}

func bindInputs(s *Session) (*Matrix, *Matrix) {
	x := data.RandNorm(300, 8, 0, 1, 7)
	y := data.RandNorm(300, 1, 0, 1, 8)
	s.Bind("X", x)
	s.Bind("y", y)
	return x, y
}

func TestSessionCorrectness(t *testing.T) {
	for _, reuse := range []Reuse{ReuseOff, ReuseLocal, ReuseCoarse, ReuseFine, ReuseFull} {
		s := New(Options{Reuse: reuse})
		x, y := bindInputs(s)
		if err := s.Run(ridgeProgram([]float64{0.5})); err != nil {
			t.Fatal(err)
		}
		// The program adds lambda cellwise (scalar broadcast), so the
		// reference does too.
		want := data.Solve(data.AddScalar(data.TSMM(x), 0.5),
			data.MatMul(data.Transpose(x), y))
		if !data.AllClose(s.Value("beta"), want, 1e-8) {
			t.Fatalf("reuse=%d: beta mismatch", reuse)
		}
	}
}

func TestSessionReuseAcrossRuns(t *testing.T) {
	s := New(Options{Reuse: ReuseFull})
	bindInputs(s)
	if err := s.Run(ridgeProgram([]float64{0.1, 0.2})); err != nil {
		t.Fatal(err)
	}
	// The loop body is partially lambda-dependent, so auto-tuning defers
	// caching (delay factor 2): the first run creates placeholders.
	if s.CacheStats().Placeholders == 0 {
		t.Fatal("delayed caching should create TO-BE-CACHED placeholders")
	}
	// A second run of the same program is served from the cache.
	before := s.Stats().Reused
	if err := s.Run(ridgeProgram([]float64{0.1, 0.2})); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Reused <= before {
		t.Fatal("second run must reuse")
	}
	if s.CacheStats().HitsCP == 0 {
		t.Fatal("gram matrix should hit in the cache by the second run")
	}
}

func TestSessionReuseOffHasNoTracing(t *testing.T) {
	s := New(Options{})
	bindInputs(s)
	if err := s.Run(ridgeProgram([]float64{0.1})); err != nil {
		t.Fatal(err)
	}
	if s.CacheStats().Probes != 0 {
		t.Fatal("ReuseOff must not probe")
	}
	if _, err := s.SerializeLineage("beta"); err == nil {
		t.Fatal("lineage must be unavailable without tracing")
	}
}

func TestSessionVirtualTimeMonotone(t *testing.T) {
	s := New(Options{Reuse: ReuseFull})
	bindInputs(s)
	t0 := s.VirtualTime()
	if err := s.Run(ridgeProgram([]float64{0.3})); err != nil {
		t.Fatal(err)
	}
	if s.VirtualTime() <= t0 {
		t.Fatal("virtual time must advance")
	}
}

func TestSessionLineageRoundTrip(t *testing.T) {
	s := New(Options{Reuse: ReuseFull})
	x, y := bindInputs(s)
	if err := s.Run(ridgeProgram([]float64{0.7})); err != nil {
		t.Fatal(err)
	}
	log, err := s.SerializeLineage("beta")
	if err != nil {
		t.Fatal(err)
	}
	// Replay in a fresh session with the same persistent inputs.
	s2 := New(Options{})
	s2.Bind("X", x)
	s2.Bind("y", y)
	got, err := s2.Recompute(log)
	if err != nil {
		t.Fatal(err)
	}
	if !data.AllClose(got, s.Value("beta"), 1e-9) {
		t.Fatal("recomputed beta differs")
	}
}

func TestSessionGPUOption(t *testing.T) {
	s := New(Options{Reuse: ReuseFull, EnableGPU: true})
	s.Bind("X", data.RandNorm(128, 64, 0, 1, 9))
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(
		ir.Assign("h", ir.ReLU(ir.MatMul(ir.Var("X"), ir.T(ir.Var("X"))))),
		ir.Assign("z", ir.Sum(ir.Var("h"))),
	)}
	if err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if s.Stats().GPUInsts == 0 {
		t.Fatal("expected GPU placement with EnableGPU")
	}
	want := data.Sum(data.ReLU(data.MatMul(
		data.RandNorm(128, 64, 0, 1, 9), data.Transpose(data.RandNorm(128, 64, 0, 1, 9)))))
	if got := s.Value("z").ScalarValue(); got != want {
		t.Fatalf("z = %g, want %g", got, want)
	}
}

func TestSessionValueUnbound(t *testing.T) {
	s := New(Options{})
	if s.Value("nope") != nil {
		t.Fatal("unbound variable must return nil")
	}
}

func TestSessionLookupAndClose(t *testing.T) {
	s := New(Options{Reuse: ReuseFull, EnableGPU: true})
	x, _ := bindInputs(s)
	if err := s.Run(ridgeProgram([]float64{0.5})); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup("X")
	if err != nil {
		t.Fatal(err)
	}
	if !data.AllClose(got, x, 0) {
		t.Fatal("Lookup must return the bound matrix")
	}
	if _, err := s.Lookup("nope"); err == nil {
		t.Fatal("Lookup of an unbound variable must error")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup("X"); err == nil {
		t.Fatal("Lookup after Close must error")
	}
	if s.Value("X") != nil {
		t.Fatal("Value after Close must return nil")
	}
	if err := s.Run(ridgeProgram([]float64{0.5})); err == nil {
		t.Fatal("Run after Close must error")
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

// TestServerFacade drives the public serving API end to end: two tenants,
// identical programs and data, cross-tenant reuse visible in the snapshot,
// plus an interactive session attached to the server's shared cache.
func TestServerFacade(t *testing.T) {
	srv := NewServer(ServerOptions{
		Options: Options{Reuse: ReuseFull},
		Workers: 2,
	})
	x := data.RandNorm(300, 8, 0, 1, 7)
	y := data.RandNorm(300, 1, 0, 1, 8)
	inputs := func() map[string]*Matrix {
		return map[string]*Matrix{"X": x.Clone(), "y": y.Clone()}
	}
	prog := ridgeProgram([]float64{0.25, 0.75})
	fa, err := srv.Submit("alice", prog, SubmitOptions{Inputs: inputs(), Fetch: []string{"beta"}})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := srv.Submit("bob", prog, SubmitOptions{Inputs: inputs(), Fetch: []string{"beta"}})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := fa.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := fb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !data.AllClose(ra.Values["beta"], rb.Values["beta"], 0) {
		t.Fatal("both tenants must get the same beta")
	}
	if rb.Stats.SharedHits == 0 {
		t.Fatal("second tenant must reuse the first's work")
	}

	// An interactive session under a third tenant reuses the served results.
	s := NewSessionFor(srv, "carol", Options{Reuse: ReuseFull})
	s.Bind("X", x.Clone())
	s.Bind("y", y.Clone())
	if err := s.Run(ridgeProgram([]float64{0.25, 0.75})); err != nil {
		t.Fatal(err)
	}
	if !data.AllClose(s.Value("beta"), ra.Values["beta"], 0) {
		t.Fatal("interactive session must compute the same beta")
	}
	if s.Stats().SharedHits == 0 {
		t.Fatal("interactive session must hit the shared cache")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	snap := srv.Snapshot()
	if snap.Shared.CrossTenantHits == 0 {
		t.Fatal("expected cross-tenant reuse in the snapshot")
	}
	if snap.Completed != 2 || snap.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 2/0", snap.Completed, snap.Failed)
	}
}

// TestSessionFaultPlanDeterministic: a session with a chaos plan completes
// via the recovery paths, matches the fault-free answer, and replays to the
// identical virtual time.
func TestSessionFaultPlanDeterministic(t *testing.T) {
	run := func(plan *FaultPlan) (*Matrix, float64) {
		s := New(Options{Reuse: ReuseFull, EnableGPU: true, FaultPlan: plan})
		defer s.Close()
		bindInputs(s)
		if err := s.Run(ridgeProgram([]float64{0.01, 0.1})); err != nil {
			t.Fatalf("faulted run must complete via retries/fallbacks: %v", err)
		}
		return s.Value("beta"), s.VirtualTime()
	}
	clean, _ := run(nil)
	faulted, t1 := run(DefaultFaultPlan(3))
	replay, t2 := run(DefaultFaultPlan(3))
	if !data.AllClose(clean, faulted, 0) || !data.AllClose(faulted, replay, 0) {
		t.Fatal("fault injection changed a result")
	}
	if t1 != t2 {
		t.Fatalf("replay virtual time diverged: %v != %v", t1, t2)
	}
}

// TestSessionLookupSurfacesStageAbort: a Spark job that exhausts its task
// attempts during a deferred fetch surfaces as a Lookup error, not a panic.
func TestSessionLookupSurfacesStageAbort(t *testing.T) {
	s := New(Options{Reuse: ReuseOff, OpMemBudget: 1 << 10, FaultPlan: &FaultPlan{
		Seed: 1,
		Sites: map[faults.Site]faults.Trigger{
			faults.SparkTask: {Nth: []int64{1}, Attempts: 4},
		},
	}})
	defer s.Close()
	bindInputs(s)
	// No action in the program: the Spark job stays lazy through Run and
	// only executes when Lookup fetches the value.
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(ir.Assign("out", ir.TSMM(ir.Var("X"))))}
	if err := s.Run(p); err != nil {
		t.Fatalf("lazy program must not fail at Run: %v", err)
	}
	if _, err := s.Lookup("out"); err == nil {
		t.Fatal("stage abort during fetch must surface as a Lookup error")
	}
	// The session survives: rebinding and rerunning (fresh injector has
	// spent its scripted failure) succeeds.
	if _, err := s.Lookup("X"); err != nil {
		t.Fatalf("post-abort lookup of an input failed: %v", err)
	}
}

// TestMemoryBudgetsAndStats checks the facade's arbiter surface: a tight
// MemoryBudgets.CP forces driver-cache pressure, and Stats/MemoryStats
// report per-pool rows with truthful counters in fixed pool order.
func TestMemoryBudgetsAndStats(t *testing.T) {
	// 600 bytes: the 512-byte gram matrix fits alone, so caching its grid
	// siblings must evict — deterministic driver-cache pressure.
	s := New(Options{Reuse: ReuseFull, MemoryBudgets: MemoryBudgets{CP: 600, Spark: 32 << 20}})
	defer s.Close()
	bindInputs(s)
	if err := s.Run(ridgeProgram([]float64{0.1, 0.2, 0.3})); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ridgeProgram([]float64{0.1, 0.2, 0.3})); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Instructions == 0 {
		t.Fatal("runtime counters missing from Stats")
	}
	pools := st.Memory
	if len(pools) != 3 {
		t.Fatalf("pools = %d, want 3 (cp, spark-reuse, spark)", len(pools))
	}
	for i, want := range []string{"cp", "spark-reuse", "spark"} {
		if pools[i].Name != want {
			t.Fatalf("pool[%d] = %q, want %q", i, pools[i].Name, want)
		}
	}
	cp := pools[0]
	if cp.Budget != 600 {
		t.Fatalf("cp budget = %d, want MemoryBudgets.CP", cp.Budget)
	}
	if cp.PressureEvents == 0 || cp.Evictions+cp.Demotions == 0 {
		t.Fatalf("tight cp budget produced no pressure: %+v", cp.Counters)
	}
	if cp.Used > cp.Budget {
		t.Fatalf("cp over budget: used %d > %d", cp.Used, cp.Budget)
	}
	if pools[2].Budget != 32<<20 {
		t.Fatalf("spark budget = %d, want MemoryBudgets.Spark", pools[2].Budget)
	}
}
