// Command memphis-bench regenerates the paper's evaluation tables and
// figures against the simulated multi-backend stack.
//
// Usage:
//
//	memphis-bench -list
//	memphis-bench all
//	memphis-bench fig13a fig14c
//	memphis-bench -quick fig12b
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memphis/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	quick := flag.Bool("quick", false, "run reduced-size variants")
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: memphis-bench [-quick] all | <experiment id>...; -list to enumerate")
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	for _, id := range ids {
		e, err := bench.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		var tb *bench.Table
		if *quick {
			tb = e.Quick()
		} else {
			tb = e.Run()
		}
		fmt.Println(tb.String())
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
	}
}
