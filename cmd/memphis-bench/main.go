// Command memphis-bench regenerates the paper's evaluation tables and
// figures against the simulated multi-backend stack.
//
// Usage:
//
//	memphis-bench -list
//	memphis-bench all
//	memphis-bench fig13a fig14c
//	memphis-bench -quick fig12b
//	memphis-bench -json -quick all > BENCH_quick.json
//	memphis-bench -par 1 fig14d   # force the serial kernel path
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memphis/internal/bench"
	"memphis/internal/data"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	quick := flag.Bool("quick", false, "run reduced-size variants")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	par := flag.Int("par", 0, "kernel parallelism (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
	flag.Parse()

	if *par > 0 {
		data.SetParallelism(*par)
	}
	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: memphis-bench [-quick] [-json] [-par n] all | <experiment id>...; -list to enumerate")
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	var results []bench.Result
	for _, id := range ids {
		e, err := bench.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		var tb *bench.Table
		if *quick {
			tb = e.Quick()
		} else {
			tb = e.Run()
		}
		wall := time.Since(start).Seconds()
		if *jsonOut {
			results = append(results, tb.Result(wall, data.Parallelism()))
			continue
		}
		fmt.Println(tb.String())
		fmt.Printf("(wall time %.1fs)\n\n", wall)
	}
	if *jsonOut {
		out, err := bench.MarshalResults(results)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
}
