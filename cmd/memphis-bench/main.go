// Command memphis-bench regenerates the paper's evaluation tables and
// figures against the simulated multi-backend stack.
//
// Usage:
//
//	memphis-bench -list
//	memphis-bench all
//	memphis-bench fig13a fig14c
//	memphis-bench -quick fig12b
//	memphis-bench -json -quick all > BENCH_quick.json
//	memphis-bench -par 1 fig14d   # force the serial kernel path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"memphis"
	"memphis/internal/bench"
	"memphis/internal/data"
	"memphis/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	quick := flag.Bool("quick", false, "run reduced-size variants")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	par := flag.Int("par", 0, "kernel parallelism (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
	mem := flag.Bool("mem", false, "run the memory-arbiter report: per-pool used/peak/budget/pressure and eviction/demotion counters across representative workloads")
	memBudget := flag.Int64("membudget", 0, "driver-cache (cp pool) budget in bytes for -mem (0 = default); see memphis.Options.MemoryBudgets")
	planOn := flag.Bool("plan", false, "with -mem: enable the compile-time memory planner and report evictions per planned stream")
	adaptive := flag.Bool("adaptive", false, "run the static-vs-adaptive placement A/B: virtual-time delta, calibration epochs, and per-backend op counts on the crossover microbenchmarks (all-virtual output, byte-stable across runs)")
	flag.Parse()

	if *par > 0 {
		data.SetParallelism(*par)
	}
	if *adaptive {
		adaptiveReport(*quick, *jsonOut)
		return
	}
	if *mem {
		memReport(*memBudget, *planOn, *jsonOut)
		return
	}
	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: memphis-bench [-quick] [-json] [-par n] all | <experiment id>...; -list to enumerate")
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	var results []bench.Result
	for _, id := range ids {
		e, err := bench.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		var tb *bench.Table
		allocs, bytes := bench.MeasureAllocs(func() {
			if *quick {
				tb = e.Quick()
			} else {
				tb = e.Run()
			}
		})
		wall := time.Since(start).Seconds()
		if *jsonOut {
			results = append(results, tb.Result(wall, data.Parallelism(), allocs, bytes))
			continue
		}
		fmt.Println(tb.String())
		fmt.Printf("(wall time %.1fs, %d allocs, %.1f MB allocated)\n\n",
			wall, allocs, float64(bytes)/(1<<20))
	}
	if *jsonOut {
		out, err := bench.MarshalResults(results)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
}

// adaptiveReport runs the closed-loop cost model's static-vs-adaptive A/B
// (memphis-bench -adaptive). The output contains only virtual quantities —
// no wall-clock fields — so two runs byte-compare equal; CI uses that as
// the adaptive determinism gate.
func adaptiveReport(quick, jsonOut bool) {
	rows, err := bench.AdaptiveReport(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memphis-bench -adaptive: %v\n", err)
		os.Exit(1)
	}
	if jsonOut {
		out, err := bench.MarshalAdaptive(rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Print(bench.AdaptiveTable(rows))
}

// memReport runs representative workloads on a full-reuse session and
// prints the unified memory arbiter's per-pool rows (memphis-bench -mem),
// including each pool's peak (high-water) bytes. Sessions run with
// elementwise fusion and the buffer arena enabled, so the "arena" pool's
// retained/peak/eviction row appears alongside cp/spark/gpu. A non-zero cpBudget
// shrinks the driver cache via Options.MemoryBudgets to make eviction,
// spill, and demotion activity visible; planOn additionally enables the
// memory planner and appends an evictions-per-planned-stream table.
func memReport(cpBudget int64, planOn, jsonOut bool) {
	cases := []struct {
		name  string
		build func() *workloads.Workload
	}{
		{"hcv", func() *workloads.Workload { return workloads.HCV(800, 16, 2, []float64{0.1, 1, 0.1}, 7) }},
		{"l2svm", func() *workloads.Workload { return workloads.L2SVMMicro(4000, 48, 3, []float64{0.1, 1, 10}, 37) }},
		{"pnmf", func() *workloads.Workload { return workloads.PNMF(400, 30, 4, 4, 11) }},
	}
	type planRow struct {
		Seq       int     `json:"seq"`
		Sig       string  `json:"sig"`
		Runs      int64   `json:"runs"`
		PeakBytes int64   `json:"peak_bytes"`
		Frees     int     `json:"frees"`
		Splits    int     `json:"splits"`
		Evictions int64   `json:"evictions"`
		Predicted int64   `json:"predicted_evictions"`
		EvPerRun  float64 `json:"ev_per_run"`
	}
	type arenaOps struct {
		Gets    int64 `json:"gets"`
		Reuses  int64 `json:"reuses"`
		Puts    int64 `json:"puts"`
		Escapes int64 `json:"escapes"`
	}
	type row struct {
		Workload       string              `json:"workload"`
		VirtualSeconds float64             `json:"virtual_seconds"`
		Pools          []memphis.PoolStats `json:"pools"`
		Arena          arenaOps            `json:"arena"`
		Plans          []planRow           `json:"plans,omitempty"`
	}
	var rows []row
	for _, c := range cases {
		w := c.build()
		s := memphis.New(memphis.Options{
			Reuse:         memphis.ReuseFull,
			Fusion:        true,
			Arena:         true,
			MemoryBudgets: memphis.MemoryBudgets{CP: cpBudget},
			MemoryPlanner: planOn,
		})
		inputs := w.HostInputs()
		names := make([]string, 0, len(inputs))
		for n := range inputs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s.Bind(n, inputs[n])
		}
		if err := s.Run(w.Prog); err != nil {
			fmt.Fprintf(os.Stderr, "memphis-bench -mem: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		r := row{Workload: c.name, VirtualSeconds: s.VirtualTime(), Pools: s.MemoryStats()}
		r.Arena.Gets, r.Arena.Reuses, r.Arena.Puts, r.Arena.Escapes = s.ArenaStats()
		if planOn {
			for _, p := range s.PlanReports() {
				pr := planRow{Seq: p.Seq, Sig: p.Sig, Runs: p.Runs, PeakBytes: p.PeakBytes,
					Frees: p.Frees, Splits: p.Splits, Evictions: p.Evictions, Predicted: p.PredictedEvictions}
				if p.Runs > 0 {
					pr.EvPerRun = float64(p.Evictions) / float64(p.Runs)
				}
				r.Plans = append(r.Plans, pr)
			}
		}
		rows = append(rows, r)
		s.Close()
	}
	if jsonOut {
		out, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	for _, r := range rows {
		fmt.Printf("%s (vtime %.6fs)\n", r.Workload, r.VirtualSeconds)
		fmt.Printf("  %-12s %12s %12s %12s %9s %9s %7s %9s %7s\n",
			"pool", "used", "peak", "budget", "pressure", "pressEvt", "evict", "evictB", "demote")
		for _, p := range r.Pools {
			fmt.Printf("  %-12s %12d %12d %12d %9.3f %9d %7d %9d %7d\n",
				p.Name, p.Used, p.PeakUsed, p.Budget, p.Pressure, p.PressureEvents,
				p.Evictions, p.EvictedBytes, p.Demotions)
		}
		fmt.Printf("  arena ops: gets=%d reuses=%d puts=%d escapes=%d\n",
			r.Arena.Gets, r.Arena.Reuses, r.Arena.Puts, r.Arena.Escapes)
		if len(r.Plans) > 0 {
			fmt.Printf("  %-4s %-16s %6s %10s %6s %6s %7s %9s %7s\n",
				"plan", "sig", "runs", "peakB", "frees", "splits", "evict", "predict", "ev/run")
			for _, p := range r.Plans {
				fmt.Printf("  %-4d %-16s %6d %10d %6d %6d %7d %9d %7.2f\n",
					p.Seq, p.Sig, p.Runs, p.PeakBytes, p.Frees, p.Splits,
					p.Evictions, p.Predicted, p.EvPerRun)
			}
		}
		fmt.Println()
	}
}
