// Command memphis-run executes a DML script against the simulated
// multi-backend stack and reports virtual time plus reuse statistics.
//
// Usage:
//
//	memphis-run [-reuse full|fine|local|coarse|off] [-gpu] [-print var] script.dml
//
// Input matrices can be created inside the script with rand(...); bound
// host inputs are not supported from the CLI (use the library API).
package main

import (
	"flag"
	"fmt"
	"os"

	"memphis"
	"memphis/internal/dml"
)

func main() {
	reuse := flag.String("reuse", "full", "reuse mode: full|fine|local|coarse|off")
	gpu := flag.Bool("gpu", false, "enable the simulated GPU backend")
	printVar := flag.String("print", "", "print this variable's value after the run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memphis-run [flags] script.dml")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-run:", err)
		os.Exit(1)
	}
	prog, err := dml.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-run:", err)
		os.Exit(1)
	}
	mode := map[string]memphis.Reuse{
		"off": memphis.ReuseOff, "local": memphis.ReuseLocal,
		"coarse": memphis.ReuseCoarse, "fine": memphis.ReuseFine,
		"full": memphis.ReuseFull,
	}[*reuse]
	s := memphis.New(memphis.Options{Reuse: mode, EnableGPU: *gpu})
	if err := s.Run(prog); err != nil {
		fmt.Fprintln(os.Stderr, "memphis-run:", err)
		os.Exit(1)
	}
	fmt.Printf("virtual time: %.6g s\n", s.VirtualTime())
	st, cs := s.Stats(), s.CacheStats()
	fmt.Printf("instructions: %d (CP %d, SP %d, GPU %d), reused %d, fn-reuses %d\n",
		st.Instructions, st.CPInsts, st.SPInsts, st.GPUInsts, st.Reused, st.FuncReuses)
	fmt.Printf("cache: probes %d, hits CP/RDD/GPU/fn = %d/%d/%d/%d, evictions %d\n",
		cs.Probes, cs.HitsCP, cs.HitsRDD, cs.HitsGPU, cs.HitsFunc, cs.EvictionsCP)
	if *printVar != "" {
		v := s.Value(*printVar)
		if v == nil {
			fmt.Fprintf(os.Stderr, "memphis-run: variable %q unbound\n", *printVar)
			os.Exit(1)
		}
		fmt.Printf("%s = %v\n", *printVar, v)
	}
}
