// Command memphis-run executes a DML script against the simulated
// multi-backend stack and reports virtual time plus reuse statistics.
//
// Usage:
//
//	memphis-run [-reuse full|fine|local|coarse|off] [-gpu] [-fuse] [-arena] [-print var] script.dml
//	memphis-run -plan [-json] [-membudget n] script.dml
//
// -fuse enables the compile-time elementwise fusion pass and -arena the
// pooled output-buffer arena; both change only allocation behaviour —
// results are bitwise identical with the flags on or off.
//
// With -plan, the compile-time memory planner (internal/memplan) is enabled
// and each planned instruction stream's liveness table, peak-memory profile,
// and rewrite summary are dumped after the run — human-readable by default,
// as JSON with -json (diffable with `lineage-tool profile-diff`).
//
// Input matrices can be created inside the script with rand(...); bound
// host inputs are not supported from the CLI (use the library API).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"memphis"
	"memphis/internal/dml"
)

func main() {
	reuse := flag.String("reuse", "full", "reuse mode: full|fine|local|coarse|off")
	gpu := flag.Bool("gpu", false, "enable the simulated GPU backend")
	printVar := flag.String("print", "", "print this variable's value after the run")
	fuse := flag.Bool("fuse", false, "enable compile-time elementwise fusion (results are bitwise identical either way)")
	arena := flag.Bool("arena", false, "enable the pooled output-buffer arena (results are bitwise identical either way)")
	plan := flag.Bool("plan", false, "enable the memory planner and dump per-stream liveness and peak profiles")
	jsonOut := flag.Bool("json", false, "with -plan: dump the plan reports as JSON")
	memBudget := flag.Int64("membudget", 0, "driver-cache budget in bytes (0 = default); the planner's bounding budget")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memphis-run [flags] script.dml")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-run:", err)
		os.Exit(1)
	}
	prog, err := dml.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-run:", err)
		os.Exit(1)
	}
	mode := map[string]memphis.Reuse{
		"off": memphis.ReuseOff, "local": memphis.ReuseLocal,
		"coarse": memphis.ReuseCoarse, "fine": memphis.ReuseFine,
		"full": memphis.ReuseFull,
	}[*reuse]
	s := memphis.New(memphis.Options{
		Reuse:         mode,
		EnableGPU:     *gpu,
		Fusion:        *fuse,
		Arena:         *arena,
		MemoryPlanner: *plan,
		MemoryBudgets: memphis.MemoryBudgets{CP: *memBudget},
	})
	if err := s.Run(prog); err != nil {
		fmt.Fprintln(os.Stderr, "memphis-run:", err)
		os.Exit(1)
	}
	if *plan && *jsonOut {
		out, err := json.MarshalIndent(s.PlanReports(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "memphis-run:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("virtual time: %.6g s\n", s.VirtualTime())
	st, cs := s.Stats(), s.CacheStats()
	fmt.Printf("instructions: %d (CP %d, SP %d, GPU %d), reused %d, fn-reuses %d\n",
		st.Instructions, st.CPInsts, st.SPInsts, st.GPUInsts, st.Reused, st.FuncReuses)
	fmt.Printf("cache: probes %d, hits CP/RDD/GPU/fn = %d/%d/%d/%d, evictions %d\n",
		cs.Probes, cs.HitsCP, cs.HitsRDD, cs.HitsGPU, cs.HitsFunc, cs.EvictionsCP)
	if *plan {
		fmt.Printf("planner: %d planned stream executions, %d early frees, cache peak %d bytes\n",
			st.PlanBlocks, st.EarlyFrees, s.CPPeak())
		printPlans(s.PlanReports())
	}
	if *printVar != "" {
		v := s.Value(*printVar)
		if v == nil {
			fmt.Fprintf(os.Stderr, "memphis-run: variable %q unbound\n", *printVar)
			os.Exit(1)
		}
		fmt.Printf("%s = %v\n", *printVar, v)
	}
}

// printPlans renders each planned stream: header, per-position profile
// alongside the instructions (the peak position marked), and the liveness
// table.
func printPlans(reports []memphis.PlanReport) {
	for _, r := range reports {
		fmt.Printf("\nplan %d sig=%s runs=%d insts=%d peak=%d@%d budget=%d frees=%d splits=%d evictions=%d (predicted >= %d)\n",
			r.Seq, r.Sig, r.Runs, r.Instructions, r.PeakBytes, r.PeakAt, r.Budget,
			r.Frees, r.Splits, r.Evictions, r.PredictedEvictions)
		if len(r.NoCache) > 0 {
			fmt.Printf("  no-cache: %v\n", r.NoCache)
		}
		for i, line := range r.Stream {
			mark := " "
			if i == r.PeakAt {
				mark = "*"
			}
			var bytes int64
			if i < len(r.Profile) {
				bytes = r.Profile[i]
			}
			fmt.Printf("  %s%3d %10d  %s\n", mark, i, bytes, line)
		}
		fmt.Printf("  %-12s %5s %5s %5s %5s %10s %5s %5s\n",
			"name", "def", "first", "last", "end", "bytes", "temp", "uses")
		for _, iv := range r.Intervals {
			fmt.Printf("  %-12s %5d %5d %5d %5d %10d %5t %5d\n",
				iv.Name, iv.Def, iv.First, iv.Last, iv.End, iv.Bytes, iv.Temp, iv.Uses)
		}
	}
}
