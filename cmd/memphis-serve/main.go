// Command memphis-serve demonstrates the multi-tenant serving layer: many
// tenants replay a workload mix against one shared, concurrency-safe lineage
// cache, and the JSON report shows cross-tenant reuse plus (with -verify)
// that every request's virtual latency is identical to a serial replay.
//
// Tenants are split into -groups input groups: tenants in the same group
// bind identically-seeded datasets, so their sub-programs reuse each other's
// shared-cache entries; different groups never alias (content signatures
// differ) and execute concurrently.
//
// With -chaos, a deterministic fault plan (see internal/faults) injects
// simulated GPU OOMs, Spark task/fetch/spill/executor failures, and
// serve-level worker crashes; the robustness layer (task retry, recompute,
// request retry with backoff) absorbs every fault, and the report gains
// per-site failure counters. Chaos runs replay bitwise-identically: -verify
// holds under -chaos too.
//
// With -traffic, the command runs the deterministic SLO traffic bench
// instead (see serve.RunTraffic): a seeded Zipf-skewed bursty request
// stream, measured on a real server (coalescing + compile cache on) and
// scaled out through a discrete-event admission simulation of 10^5+
// virtual requests. The JSON report (p50/p99 virtual latency, goodput
// under shedding, compile-cache and cross-tenant hit rates) is
// byte-identical across runs for a fixed -seed.
//
// Usage:
//
//	memphis-serve                                # 8 tenants, 2 groups, hcv
//	memphis-serve -workload l2svm -tenants 12 -sched wfq
//	memphis-serve -verify -check                 # exit 1 unless reuse > 0
//	                                             # and vtimes are serial
//	memphis-serve -chaos -verify -check          # faults on; exit 1 unless
//	                                             # all requests still succeed
//	memphis-serve -traffic -seed 42 -check       # SLO bench; exit 1 unless
//	                                             # compile-cache hits > 90%
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"memphis/internal/faults"
	"memphis/internal/serve"
	"memphis/internal/workloads"
)

// mix describes one runnable workload preset. chaosOpMem is the op-memory
// budget -chaos switches to: the mix's matrices are far below the serving
// default, so without the override every request stays CP-only and the Spark
// fault sites (task, fetch, spill, executor loss) are never exercised. It is
// per-workload because pushing every op to the cluster is not legal for all
// shapes (pnmf's W×H multiply needs both operands local or one broadcast).
type mix struct {
	build      func(seed int64) *workloads.Workload
	fetch      string
	chaosOpMem int64
}

var mixes = map[string]mix{
	"hcv": {
		build: func(seed int64) *workloads.Workload {
			return workloads.HCV(96, 8, 3, []float64{1e-3, 1e-2, 1e-1, 1}, seed)
		},
		fetch:      "best",
		chaosOpMem: 1 << 10,
	},
	"l2svm": {
		build: func(seed int64) *workloads.Workload {
			return workloads.L2SVMMicro(64, 8, 3, []float64{0.01, 0.1, 0.2, 0.5}, seed)
		},
		fetch:      "acc",
		chaosOpMem: 1 << 10,
	},
	"pnmf": {
		build: func(seed int64) *workloads.Workload {
			return workloads.PNMF(60, 40, 4, 3, seed)
		},
		fetch:      "obj",
		chaosOpMem: 1 << 12,
	},
}

type report struct {
	Workload          string `json:"workload"`
	Tenants           int    `json:"tenants"`
	RequestsPerTenant int    `json:"requests_per_tenant"`
	Groups            int    `json:"groups"`
	Workers           int    `json:"workers"`
	Sched             string `json:"sched"`
	// Chaos is set when fault injection is on; ChaosSeed keys the plan.
	// Snapshot.faults then counts injected failures per site, and
	// Snapshot.retries the attempts absorbed by the retry loop.
	Chaos     bool            `json:"chaos,omitempty"`
	ChaosSeed int64           `json:"chaos_seed,omitempty"`
	Results   []*serve.Result `json:"results"`
	Snapshot  serve.Snapshot  `json:"snapshot"`
	// Deterministic is set by -verify: true when every request's virtual
	// latency (and retry count) equals the 1-worker serial replay's.
	Deterministic *bool `json:"deterministic,omitempty"`
}

// run replays the whole mix on a fresh server and returns the results in
// submission (ticket) order plus the closing snapshot. Submission order is
// fixed — round-robin over tenants — so two runs are position-comparable.
func run(m mix, conf serve.Config, tenants, requests, groups int) ([]*serve.Result, serve.Snapshot, error) {
	srv := serve.New(conf)
	// One workload per group: tenants in a group share the program object
	// and bind identically-seeded inputs.
	ws := make([]*workloads.Workload, groups)
	for g := range ws {
		ws[g] = m.build(1000 + int64(g))
	}
	var futs []*serve.Future
	for r := 0; r < requests; r++ {
		for t := 0; t < tenants; t++ {
			w := ws[t%groups]
			f, err := srv.Submit(fmt.Sprintf("tenant-%d", t), w.Prog, serve.SubmitOptions{
				Inputs: w.HostInputs(),
				Fetch:  []string{m.fetch},
			})
			if err != nil {
				srv.Close()
				return nil, serve.Snapshot{}, err
			}
			futs = append(futs, f)
		}
	}
	results := make([]*serve.Result, len(futs))
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil {
			srv.Close()
			return nil, serve.Snapshot{}, err
		}
		results[i] = res
	}
	srv.Close()
	return results, srv.Snapshot(), nil
}

func main() {
	var (
		workload = flag.String("workload", "hcv", "workload mix: hcv, l2svm, or pnmf")
		tenants  = flag.Int("tenants", 8, "number of tenants")
		requests = flag.Int("requests", 2, "requests per tenant")
		groups   = flag.Int("groups", 2, "input groups (tenants in a group share data)")
		workers  = flag.Int("workers", 8, "worker-pool size")
		sched    = flag.String("sched", "fifo", "dispatch policy: fifo or wfq")
		shards   = flag.Int("shards", 8, "shared-cache lock shards")
		budgetMB = flag.Int64("budget", 64, "shared-cache global budget (MB)")
		tenantMB = flag.Int64("tenant-budget", 8, "per-tenant shared-cache budget (MB)")
		verify   = flag.Bool("verify", false, "replay serially and compare per-request virtual times")
		check    = flag.Bool("check", false, "exit 1 unless cross-tenant reuse occurred (and -verify held)")

		traffic     = flag.Bool("traffic", false, "run the deterministic SLO traffic bench instead of the replay")
		trafficSeed = flag.Int64("seed", 42, "traffic-bench seed (with -traffic)")
		trafficReqs = flag.Int("traffic-requests", 120000, "virtual requests to simulate (with -traffic)")
		realReqs    = flag.Int("real-requests", 256, "measured requests executed on the real server (with -traffic)")

		chaos     = flag.Bool("chaos", false, "inject deterministic faults at default probabilities")
		chaosSeed = flag.Int64("chaos-seed", 7, "fault-plan seed (with -chaos)")
		deadline  = flag.Float64("deadline", 0, "per-request virtual deadline in seconds (0 = none)")
		retries   = flag.Int("retries", 0, "max retries per request (0 = default 2, negative disables)")
		backoff   = flag.Float64("backoff", 0, "retry backoff base in virtual seconds (0 = default 0.05)")
		degrade   = flag.Int("degrade", 0, "disable the first N shared-cache shards (degraded mode)")
	)
	flag.Parse()
	m, ok := mixes[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "memphis-serve: unknown workload %q (want hcv, l2svm, or pnmf)\n", *workload)
		os.Exit(2)
	}
	if *groups < 1 || *groups > *tenants {
		fmt.Fprintln(os.Stderr, "memphis-serve: -groups must be in [1, tenants]")
		os.Exit(2)
	}
	conf := serve.DefaultConfig()
	conf.Workers = *workers
	conf.Shared.Shards = *shards
	conf.Shared.Budget = *budgetMB << 20
	conf.Shared.TenantBudget = *tenantMB << 20
	if *sched == "wfq" {
		conf.Sched = serve.SchedWFQ
	}
	if *chaos {
		conf.Faults = faults.Default(*chaosSeed)
		conf.Runtime.Compiler.OpMemBudget = m.chaosOpMem
	}
	conf.Deadline = *deadline
	conf.MaxRetries = *retries
	conf.RetryBackoff = *backoff
	if *degrade > 0 {
		if *degrade > *shards {
			fmt.Fprintln(os.Stderr, "memphis-serve: -degrade must not exceed -shards")
			os.Exit(2)
		}
		for i := 0; i < *degrade; i++ {
			conf.DisabledShards = append(conf.DisabledShards, i)
		}
	}

	if *traffic {
		classes := make([]serve.TrafficClass, *groups)
		for g := range classes {
			w := m.build(1000 + int64(g))
			classes[g] = serve.TrafficClass{
				Name:   fmt.Sprintf("%s-g%d", *workload, g),
				Prog:   w.Prog,
				Inputs: w.HostInputs(),
				Fetch:  []string{m.fetch},
			}
		}
		// Smaller coalesce batches force more group leaders to actually
		// execute, keeping the measured per-class service times in steady
		// state and the compile cache exercised.
		conf.MaxBatch = 16
		trep, err := serve.RunTraffic(conf, serve.TrafficConfig{
			Seed:            *trafficSeed,
			Workload:        *workload,
			Classes:         classes,
			Tenants:         *tenants,
			RealRequests:    *realReqs,
			VirtualRequests: *trafficReqs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "memphis-serve:", err)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(trep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "memphis-serve:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		if *check {
			if trep.CompileCacheHitRate <= 0.9 {
				fmt.Fprintf(os.Stderr, "memphis-serve: CHECK FAILED: compile-cache hit rate %.3f <= 0.9\n",
					trep.CompileCacheHitRate)
				os.Exit(1)
			}
			if trep.RealFailed != 0 {
				fmt.Fprintf(os.Stderr, "memphis-serve: CHECK FAILED: %d measured requests failed\n", trep.RealFailed)
				os.Exit(1)
			}
			if trep.Goodput <= 0 || trep.Goodput > 1 {
				fmt.Fprintf(os.Stderr, "memphis-serve: CHECK FAILED: implausible goodput %.3f\n", trep.Goodput)
				os.Exit(1)
			}
		}
		return
	}

	results, snap, err := run(m, conf, *tenants, *requests, *groups)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-serve:", err)
		os.Exit(1)
	}
	rep := report{
		Workload:          *workload,
		Tenants:           *tenants,
		RequestsPerTenant: *requests,
		Groups:            *groups,
		Workers:           *workers,
		Sched:             *sched,
		Chaos:             *chaos,
		ChaosSeed:         *chaosSeed,
		Results:           results,
		Snapshot:          snap,
	}
	if !*chaos {
		rep.ChaosSeed = 0
	}

	if *verify {
		serial := conf
		serial.Workers = 1
		serial.Sched = serve.SchedFIFO
		serialRes, _, err := run(m, serial, *tenants, *requests, *groups)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memphis-serve: serial replay:", err)
			os.Exit(1)
		}
		ok := len(serialRes) == len(results)
		for i := range results {
			if !ok {
				break
			}
			ok = results[i].VirtualSeconds == serialRes[i].VirtualSeconds &&
				results[i].Retries == serialRes[i].Retries
		}
		rep.Deterministic = &ok
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-serve:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))

	if *check {
		if snap.Shared.CrossTenantHitRatio <= 0 && *degrade < *shards {
			fmt.Fprintln(os.Stderr, "memphis-serve: CHECK FAILED: no cross-tenant reuse")
			os.Exit(1)
		}
		if rep.Deterministic != nil && !*rep.Deterministic {
			fmt.Fprintln(os.Stderr, "memphis-serve: CHECK FAILED: virtual times diverge from serial replay")
			os.Exit(1)
		}
		if *chaos && snap.Failed != 0 {
			fmt.Fprintf(os.Stderr, "memphis-serve: CHECK FAILED: %d requests failed under chaos defaults\n", snap.Failed)
			os.Exit(1)
		}
	}
}
