// Command memphis-serve demonstrates the multi-tenant serving layer: many
// tenants replay a workload mix against one shared, concurrency-safe lineage
// cache, and the JSON report shows cross-tenant reuse plus (with -verify)
// that every request's virtual latency is identical to a serial replay.
//
// Tenants are split into -groups input groups: tenants in the same group
// bind identically-seeded datasets, so their sub-programs reuse each other's
// shared-cache entries; different groups never alias (content signatures
// differ) and execute concurrently.
//
// Usage:
//
//	memphis-serve                                # 8 tenants, 2 groups, hcv
//	memphis-serve -workload l2svm -tenants 12 -sched wfq
//	memphis-serve -verify -check                 # exit 1 unless reuse > 0
//	                                             # and vtimes are serial
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"memphis/internal/serve"
	"memphis/internal/workloads"
)

// mix describes one runnable workload preset.
type mix struct {
	build func(seed int64) *workloads.Workload
	fetch string
}

var mixes = map[string]mix{
	"hcv": {
		build: func(seed int64) *workloads.Workload {
			return workloads.HCV(96, 8, 3, []float64{1e-3, 1e-2, 1e-1, 1}, seed)
		},
		fetch: "best",
	},
	"l2svm": {
		build: func(seed int64) *workloads.Workload {
			return workloads.L2SVMMicro(64, 8, 3, []float64{0.01, 0.1, 0.2, 0.5}, seed)
		},
		fetch: "acc",
	},
	"pnmf": {
		build: func(seed int64) *workloads.Workload {
			return workloads.PNMF(60, 40, 4, 3, seed)
		},
		fetch: "obj",
	},
}

type report struct {
	Workload          string          `json:"workload"`
	Tenants           int             `json:"tenants"`
	RequestsPerTenant int             `json:"requests_per_tenant"`
	Groups            int             `json:"groups"`
	Workers           int             `json:"workers"`
	Sched             string          `json:"sched"`
	Results           []*serve.Result `json:"results"`
	Snapshot          serve.Snapshot  `json:"snapshot"`
	// Deterministic is set by -verify: true when every request's virtual
	// latency equals the 1-worker serial replay's.
	Deterministic *bool `json:"deterministic,omitempty"`
}

// run replays the whole mix on a fresh server and returns the results in
// submission (ticket) order plus the closing snapshot. Submission order is
// fixed — round-robin over tenants — so two runs are position-comparable.
func run(m mix, conf serve.Config, tenants, requests, groups int) ([]*serve.Result, serve.Snapshot, error) {
	srv := serve.New(conf)
	// One workload per group: tenants in a group share the program object
	// and bind identically-seeded inputs.
	ws := make([]*workloads.Workload, groups)
	for g := range ws {
		ws[g] = m.build(1000 + int64(g))
	}
	var futs []*serve.Future
	for r := 0; r < requests; r++ {
		for t := 0; t < tenants; t++ {
			w := ws[t%groups]
			f, err := srv.Submit(fmt.Sprintf("tenant-%d", t), w.Prog, serve.SubmitOptions{
				Inputs: w.HostInputs(),
				Fetch:  []string{m.fetch},
			})
			if err != nil {
				srv.Close()
				return nil, serve.Snapshot{}, err
			}
			futs = append(futs, f)
		}
	}
	results := make([]*serve.Result, len(futs))
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil {
			srv.Close()
			return nil, serve.Snapshot{}, err
		}
		results[i] = res
	}
	srv.Close()
	return results, srv.Snapshot(), nil
}

func main() {
	var (
		workload = flag.String("workload", "hcv", "workload mix: hcv, l2svm, or pnmf")
		tenants  = flag.Int("tenants", 8, "number of tenants")
		requests = flag.Int("requests", 2, "requests per tenant")
		groups   = flag.Int("groups", 2, "input groups (tenants in a group share data)")
		workers  = flag.Int("workers", 8, "worker-pool size")
		sched    = flag.String("sched", "fifo", "dispatch policy: fifo or wfq")
		shards   = flag.Int("shards", 8, "shared-cache lock shards")
		budgetMB = flag.Int64("budget", 64, "shared-cache global budget (MB)")
		tenantMB = flag.Int64("tenant-budget", 8, "per-tenant shared-cache budget (MB)")
		verify   = flag.Bool("verify", false, "replay serially and compare per-request virtual times")
		check    = flag.Bool("check", false, "exit 1 unless cross-tenant reuse occurred (and -verify held)")
	)
	flag.Parse()
	m, ok := mixes[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "memphis-serve: unknown workload %q (want hcv, l2svm, or pnmf)\n", *workload)
		os.Exit(2)
	}
	if *groups < 1 || *groups > *tenants {
		fmt.Fprintln(os.Stderr, "memphis-serve: -groups must be in [1, tenants]")
		os.Exit(2)
	}
	conf := serve.DefaultConfig()
	conf.Workers = *workers
	conf.Shared.Shards = *shards
	conf.Shared.Budget = *budgetMB << 20
	conf.Shared.TenantBudget = *tenantMB << 20
	if *sched == "wfq" {
		conf.Sched = serve.SchedWFQ
	}

	results, snap, err := run(m, conf, *tenants, *requests, *groups)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-serve:", err)
		os.Exit(1)
	}
	rep := report{
		Workload:          *workload,
		Tenants:           *tenants,
		RequestsPerTenant: *requests,
		Groups:            *groups,
		Workers:           *workers,
		Sched:             *sched,
		Results:           results,
		Snapshot:          snap,
	}

	if *verify {
		serial := conf
		serial.Workers = 1
		serial.Sched = serve.SchedFIFO
		serialRes, _, err := run(m, serial, *tenants, *requests, *groups)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memphis-serve: serial replay:", err)
			os.Exit(1)
		}
		ok := len(serialRes) == len(results)
		for i := range results {
			if !ok {
				break
			}
			ok = results[i].VirtualSeconds == serialRes[i].VirtualSeconds
		}
		rep.Deterministic = &ok
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "memphis-serve:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))

	if *check {
		if snap.Shared.CrossTenantHitRatio <= 0 {
			fmt.Fprintln(os.Stderr, "memphis-serve: CHECK FAILED: no cross-tenant reuse")
			os.Exit(1)
		}
		if rep.Deterministic != nil && !*rep.Deterministic {
			fmt.Fprintln(os.Stderr, "memphis-serve: CHECK FAILED: virtual times diverge from serial replay")
			os.Exit(1)
		}
	}
}
