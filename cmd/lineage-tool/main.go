// Command lineage-tool demonstrates MEMPHIS's lineage serialization and
// exact recomputation (the SERIALIZE/DESERIALIZE/RECOMPUTE API, §3.2) and
// diffs memory-planner profiles.
//
// Usage:
//
//	lineage-tool demo                      # trace a small program, dump the log
//	lineage-tool recompute <logfile>       # replay a log produced by demo
//	lineage-tool profile-diff <a> <b>      # diff two `memphis-run -plan -json` dumps
//	lineage-tool trace                     # dump compiled streams fused vs unfused
//	lineage-tool costs [-json]             # closed-loop cost model report: predicted
//	                                       # vs observed virtual cost and hit rates
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"memphis"
	"memphis/internal/compiler"
	"memphis/internal/data"
	"memphis/internal/ir"
)

// buildSession returns a session with the demo inputs bound. Inputs are
// seeded, so any process can reproduce them and replay lineage logs.
func buildSession() *memphis.Session {
	s := memphis.New(memphis.Options{Reuse: memphis.ReuseFull})
	s.Bind("X", data.RandNorm(200, 8, 0, 1, 42))
	s.Bind("y", data.RandNorm(200, 1, 0, 1, 43))
	return s
}

func demo() error {
	s := buildSession()
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.BB(
		ir.Assign("G", ir.TSMM(ir.Var("X"))),
		ir.Assign("b", ir.MatMul(ir.T(ir.Var("X")), ir.Var("y"))),
		ir.Assign("beta", ir.Solve(ir.Add(ir.Var("G"), ir.Lit(0.1)), ir.Var("b"))),
	)}
	if err := s.Run(prog); err != nil {
		return err
	}
	log, err := s.SerializeLineage("beta")
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "beta =", s.Value("beta"))
	fmt.Fprintln(os.Stderr, "-- lineage log on stdout; save it and replay with `lineage-tool recompute <file>` --")
	fmt.Print(log)
	return nil
}

// trace dumps the compiled instruction stream of an elementwise-heavy block
// with fusion off and on; fused instructions render their constituent op
// lists (`CP fused[* + exp sigmoid] ...`). It then runs the program under
// both configurations and byte-compares the serialized lineage logs: fusion
// is invisible to lineage, so the logs must be identical.
func trace() error {
	bb := ir.BB(
		ir.Assign("Z", ir.Sigmoid(ir.Exp(ir.Add(ir.Mul(ir.Var("X"), ir.Lit(0.5)), ir.Var("Y"))))),
		ir.Assign("W", ir.Sqrt(ir.Abs(ir.Sub(ir.Var("Z"), ir.Lit(1))))),
	)
	env := map[string]ir.Shape{
		"X": {Rows: 200, Cols: 8},
		"Y": {Rows: 200, Cols: 8},
	}
	for _, fuse := range []bool{false, true} {
		conf := compiler.DefaultConfig()
		conf.Fusion = fuse
		fmt.Printf("-- compiled stream (fusion=%v) --\n", fuse)
		for i, inst := range compiler.CompileBlock(bb, env, conf) {
			fmt.Printf("%3d  %s\n", i, inst.String())
		}
	}
	logFor := func(fuse bool) (string, error) {
		s := memphis.New(memphis.Options{Reuse: memphis.ReuseFull, Fusion: fuse, Arena: fuse})
		defer s.Close()
		s.Bind("X", data.RandNorm(200, 8, 0, 1, 42))
		s.Bind("Y", data.RandNorm(200, 8, 1, 2, 43))
		prog := ir.NewProgram()
		prog.Main = []ir.Block{bb}
		if err := s.Run(prog); err != nil {
			return "", err
		}
		return s.SerializeLineage("W")
	}
	plain, err := logFor(false)
	if err != nil {
		return err
	}
	fused, err := logFor(true)
	if err != nil {
		return err
	}
	if plain != fused {
		return fmt.Errorf("lineage logs differ between fusion off and on")
	}
	fmt.Println("-- lineage log (identical with fusion off and on) --")
	fmt.Print(plain)
	return nil
}

// costsReport runs a calibrating workload under AdaptivePlacement and
// dumps the closed-loop cost model's report: per-operator predicted vs
// observed virtual cost, cache hit rates, and the per-backend effective
// rates the recalibration converged to. With jsonOut the raw
// memphis.CalibrationReport is emitted (byte-stable across runs: every
// quantity is virtual).
func costsReport(jsonOut bool) error {
	s := memphis.New(memphis.Options{Reuse: memphis.ReuseFull, AdaptivePlacement: true})
	defer s.Close()
	s.Bind("X", data.RandNorm(2000, 16, 0, 1, 42))
	s.Bind("y", data.RandNorm(2000, 1, 0, 1, 43))
	// A ridge-regression loop: the normal-equation pieces are
	// loop-invariant (probes hit from iteration two), the solve re-executes
	// per lambda — so the report shows both reused and recomputed
	// populations.
	body := ir.BB(
		ir.Assign("G", ir.TSMM(ir.Var("X"))),
		ir.Assign("b", ir.MatMul(ir.T(ir.Var("X")), ir.Var("y"))),
		ir.Assign("beta", ir.Solve(ir.Add(ir.Var("G"), ir.Var("lambda")), ir.Var("b"))),
		ir.Assign("s", ir.Sum(ir.Var("beta"))),
	)
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.For("lambda", []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000}, body)}
	if err := s.Run(prog); err != nil {
		return err
	}
	rep := s.CalibrationReport()
	if rep == nil {
		return fmt.Errorf("no calibration report (AdaptivePlacement off?)")
	}
	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Printf("calibration epoch %d (fingerprint %s)\n\n", rep.Epoch, rep.Fingerprint)
	fmt.Printf("%-8s %8s %14s %14s %14s\n", "backend", "ops", "observed(vs)", "base rate", "eff rate")
	for _, b := range rep.Backends {
		fmt.Printf("%-8s %8d %14.6f %14.4g %14.4g\n",
			b.Backend, b.Ops, b.ObservedSeconds, b.BaseRate, b.EffectiveRate)
	}
	fmt.Printf("\n%-10s %-4s %5s %6s %14s %14s %7s %6s %8s %6s\n",
		"op", "bk", "class", "ops", "predicted(vs)", "observed(vs)", "probes", "hits", "hitrate", "p")
	for _, o := range rep.Ops {
		fmt.Printf("%-10s %-4s %5d %6d %14.6f %14.6f %7d %6d %8.2f %6.3f\n",
			o.Op, o.Backend, o.Class, o.Ops, o.PredictedSeconds, o.ObservedSeconds,
			o.Probes, o.Hits, o.HitRate, o.ReuseProb)
	}
	return nil
}

func recompute(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s := buildSession()
	m, err := s.Recompute(string(raw))
	if err != nil {
		return err
	}
	fmt.Println("recomputed value:", m)
	return nil
}

// loadReports parses a `memphis-run -plan -json` dump.
func loadReports(path string) ([]memphis.PlanReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var reports []memphis.PlanReport
	if err := json.Unmarshal(raw, &reports); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reports, nil
}

// profileDiff compares two plan dumps stream by stream (matched on the
// stream signature) and prints per-plan deltas in peak memory, rewrites,
// and measured evictions. Streams present in only one dump are listed.
// Differences are informational; only I/O and parse failures error.
func profileDiff(pathA, pathB string) error {
	a, err := loadReports(pathA)
	if err != nil {
		return err
	}
	b, err := loadReports(pathB)
	if err != nil {
		return err
	}
	bySig := make(map[string]memphis.PlanReport, len(b))
	for _, r := range b {
		bySig[r.Sig] = r
	}
	same := true
	for _, ra := range a {
		rb, ok := bySig[ra.Sig]
		if !ok {
			fmt.Printf("plan %s: only in %s (peak=%d frees=%d splits=%d)\n",
				ra.Sig, pathA, ra.PeakBytes, ra.Frees, ra.Splits)
			same = false
			continue
		}
		delete(bySig, ra.Sig)
		if ra.PeakBytes == rb.PeakBytes && ra.Frees == rb.Frees && ra.Splits == rb.Splits &&
			ra.Evictions == rb.Evictions && ra.Runs == rb.Runs {
			continue
		}
		same = false
		fmt.Printf("plan %s:\n", ra.Sig)
		diffInt := func(name string, va, vb int64) {
			if va != vb {
				fmt.Printf("  %-10s %d -> %d (%+d)\n", name, va, vb, vb-va)
			}
		}
		diffInt("peak", ra.PeakBytes, rb.PeakBytes)
		diffInt("frees", int64(ra.Frees), int64(rb.Frees))
		diffInt("splits", int64(ra.Splits), int64(rb.Splits))
		diffInt("evictions", ra.Evictions, rb.Evictions)
		diffInt("runs", ra.Runs, rb.Runs)
	}
	for _, rb := range b {
		if _, dangling := bySig[rb.Sig]; dangling {
			fmt.Printf("plan %s: only in %s (peak=%d frees=%d splits=%d)\n",
				rb.Sig, pathB, rb.PeakBytes, rb.Frees, rb.Splits)
			same = false
		}
	}
	var peakA, peakB, evA, evB int64
	for _, r := range a {
		if r.PeakBytes > peakA {
			peakA = r.PeakBytes
		}
		evA += r.Evictions
	}
	for _, r := range b {
		if r.PeakBytes > peakB {
			peakB = r.PeakBytes
		}
		evB += r.Evictions
	}
	fmt.Printf("total: %d vs %d plans, max peak %d vs %d, evictions %d vs %d\n",
		len(a), len(b), peakA, peakB, evA, evB)
	if same && len(a) == len(b) {
		fmt.Println("profiles identical")
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lineage-tool demo | trace | costs [-json] | recompute <logfile> | profile-diff <a.json> <b.json>")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = demo()
	case "trace":
		err = trace()
	case "costs":
		err = costsReport(len(os.Args) > 2 && os.Args[2] == "-json")
	case "recompute":
		if len(os.Args) < 3 {
			err = fmt.Errorf("recompute needs a log file")
		} else {
			err = recompute(os.Args[2])
		}
	case "profile-diff":
		if len(os.Args) < 4 {
			err = fmt.Errorf("profile-diff needs two plan dumps (from memphis-run -plan -json)")
		} else {
			err = profileDiff(os.Args[2], os.Args[3])
		}
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lineage-tool:", err)
		os.Exit(1)
	}
}
