// Command lineage-tool demonstrates MEMPHIS's lineage serialization and
// exact recomputation (the SERIALIZE/DESERIALIZE/RECOMPUTE API, §3.2).
//
// Usage:
//
//	lineage-tool demo                 # trace a small program, dump the log
//	lineage-tool recompute <logfile>  # replay a log produced by demo
package main

import (
	"fmt"
	"os"

	"memphis"
	"memphis/internal/data"
	"memphis/internal/ir"
)

// buildSession returns a session with the demo inputs bound. Inputs are
// seeded, so any process can reproduce them and replay lineage logs.
func buildSession() *memphis.Session {
	s := memphis.New(memphis.Options{Reuse: memphis.ReuseFull})
	s.Bind("X", data.RandNorm(200, 8, 0, 1, 42))
	s.Bind("y", data.RandNorm(200, 1, 0, 1, 43))
	return s
}

func demo() error {
	s := buildSession()
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.BB(
		ir.Assign("G", ir.TSMM(ir.Var("X"))),
		ir.Assign("b", ir.MatMul(ir.T(ir.Var("X")), ir.Var("y"))),
		ir.Assign("beta", ir.Solve(ir.Add(ir.Var("G"), ir.Lit(0.1)), ir.Var("b"))),
	)}
	if err := s.Run(prog); err != nil {
		return err
	}
	log, err := s.SerializeLineage("beta")
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "beta =", s.Value("beta"))
	fmt.Fprintln(os.Stderr, "-- lineage log on stdout; save it and replay with `lineage-tool recompute <file>` --")
	fmt.Print(log)
	return nil
}

func recompute(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s := buildSession()
	m, err := s.Recompute(string(raw))
	if err != nil {
		return err
	}
	fmt.Println("recomputed value:", m)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lineage-tool demo | recompute <logfile>")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = demo()
	case "recompute":
		if len(os.Args) < 3 {
			err = fmt.Errorf("recompute needs a log file")
		} else {
			err = recompute(os.Args[2])
		}
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lineage-tool:", err)
		os.Exit(1)
	}
}
