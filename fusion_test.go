package memphis

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"memphis/internal/data"
	"memphis/internal/ir"
)

// exprGen builds random elementwise DAGs over full matrices, row/column
// vectors, a scalar variable, and literals. Every binary node keeps at
// least one full-shape operand, so the DAG is broadcast-legal by
// construction while still exercising row, column, scalar, and literal
// broadcasts plus non-uniform intermediate shapes (vector sub-chains).
type exprGen struct {
	rng   *rand.Rand
	fulls []string // full-shape variable names in scope
}

func (g *exprGen) pickFull() *ir.Node { return ir.Var(g.fulls[g.rng.Intn(len(g.fulls))]) }

// small returns a broadcastable non-full operand: a vector (possibly under
// a unary chain), the scalar variable, or a literal.
func (g *exprGen) small(depth int) *ir.Node {
	switch g.rng.Intn(5) {
	case 0:
		return g.unaryWrap(ir.Var("R"), depth)
	case 1:
		return g.unaryWrap(ir.Var("C"), depth)
	case 2:
		return ir.Var("S")
	case 3:
		return ir.Lit(float64(g.rng.Intn(9)) - 4)
	default:
		return g.full(depth - 1)
	}
}

func (g *exprGen) unaryWrap(n *ir.Node, depth int) *ir.Node {
	for k := g.rng.Intn(3); k > 0 && depth > 0; k, depth = k-1, depth-1 {
		n = g.unary(n)
	}
	return n
}

func (g *exprGen) unary(a *ir.Node) *ir.Node {
	switch g.rng.Intn(8) {
	case 0:
		return ir.Exp(a)
	case 1:
		return ir.Log(a)
	case 2:
		return ir.Sqrt(a)
	case 3:
		return ir.Abs(a)
	case 4:
		return ir.Sigmoid(a)
	case 5:
		return ir.ReLU(a)
	case 6:
		return ir.Pow(a, 2)
	default:
		return ir.Pow(a, 3)
	}
}

func (g *exprGen) binary(a, b *ir.Node) *ir.Node {
	switch g.rng.Intn(8) {
	case 0:
		return ir.Add(a, b)
	case 1:
		return ir.Sub(a, b)
	case 2:
		return ir.Mul(a, b)
	case 3:
		return ir.Div(a, b)
	case 4:
		return ir.Min(a, b)
	case 5:
		return ir.Max(a, b)
	case 6:
		return ir.Gt(a, b)
	default:
		return ir.Lt(a, b)
	}
}

// full returns a full-shape expression of the given depth.
func (g *exprGen) full(depth int) *ir.Node {
	if depth <= 0 {
		return g.pickFull()
	}
	if g.rng.Intn(3) == 0 {
		return g.unary(g.full(depth - 1))
	}
	left, right := g.full(depth-1), g.small(depth-1)
	if g.rng.Intn(2) == 0 {
		left, right = right, left
	}
	return g.binary(left, right)
}

// fusionProgram builds a three-statement elementwise program whose later
// statements read earlier outputs, so fusion sees both eliminable
// temporaries and named-variable chain boundaries.
func fusionProgram(seed int64) *ir.Program {
	g := &exprGen{rng: rand.New(rand.NewSource(seed)), fulls: []string{"X", "X2"}}
	p := ir.NewProgram()
	stY := ir.Assign("Y", g.full(3))
	g.fulls = append(g.fulls, "Y")
	stZ := ir.Assign("Z", g.full(4))
	g.fulls = append(g.fulls, "Z")
	stOut := ir.Assign("out", g.full(3))
	// A reduction consumer: the fused chain feeding it dies immediately,
	// so its buffer is an arena recycling candidate (unlike Y/Z/out, which
	// stay bound or cached).
	stRed := ir.Assign("red", ir.Sum(g.full(3)))
	p.Main = []ir.Block{ir.BB(stY, stZ, stOut, stRed)}
	return p
}

func bindFusionInputs(s *Session) {
	s.Bind("X", data.RandNorm(40, 17, 0, 1, 101))
	s.Bind("X2", data.RandNorm(40, 17, 2, 3, 102))
	s.Bind("R", data.RandNorm(1, 17, 0, 1, 103))
	s.Bind("C", data.RandNorm(40, 1, 0, 1, 104))
	s.Bind("S", data.RandNorm(1, 1, 0, 1, 105))
}

// runFusionDAG executes the seed's program under the given options and
// returns the output matrix plus the executed instruction count.
func runFusionDAG(t *testing.T, seed int64, opts Options, par int) (*data.Matrix, int64) {
	t.Helper()
	prev := data.Parallelism()
	defer data.SetParallelism(prev)
	opts.Parallelism = par
	s := New(opts)
	defer s.Close()
	bindFusionInputs(s)
	if err := s.Run(fusionProgram(seed)); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	m, r := s.Value("out"), s.Value("red")
	if m == nil || r == nil {
		t.Fatalf("seed %d: output unbound", seed)
	}
	// Flatten both outputs into one comparison vector.
	joined := data.New(1, len(m.Data)+1)
	copy(joined.Data, m.Data)
	joined.Data[len(m.Data)] = r.Data[0]
	return joined, s.Stats().Instructions
}

func sameMatrix(a, b *data.Matrix) string {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Sprintf("shape %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return fmt.Sprintf("cell %d: %x vs %x", i, math.Float64bits(a.Data[i]), math.Float64bits(b.Data[i]))
		}
	}
	return ""
}

// TestFusionPropertyEquivalence checks the tentpole's core contract over
// randomized elementwise DAGs: fusion and the buffer arena, in every
// combination and at kernel parallelism 1, 4, and 8, produce bitwise
// identical outputs to the plain interpreter. Fusion must actually fire on
// at least some of the DAGs (fewer executed instructions), or the property
// is vacuous.
func TestFusionPropertyEquivalence(t *testing.T) {
	variants := []struct {
		name string
		opts Options
	}{
		{"fuse", Options{Reuse: ReuseFull, Fusion: true}},
		{"arena", Options{Reuse: ReuseFull, Arena: true, MemoryPlanner: true}},
		{"fuse+arena", Options{Reuse: ReuseFull, Fusion: true, Arena: true, MemoryPlanner: true}},
		// Without reuse, fused outputs never escape into the lineage cache,
		// so planner free points actively recycle buffers mid-run — the
		// combination where a use-after-put bug would corrupt results.
		{"fuse+arena-base", Options{Fusion: true, Arena: true, MemoryPlanner: true}},
	}
	fusedLess := 0
	for seed := int64(0); seed < 12; seed++ {
		ref, refInsts := runFusionDAG(t, seed, Options{Reuse: ReuseFull}, 1)
		refBase, _ := runFusionDAG(t, seed, Options{}, 1)
		if diff := sameMatrix(ref, refBase); diff != "" {
			t.Fatalf("seed %d: reuse-on and reuse-off references differ: %s", seed, diff)
		}
		for _, v := range variants {
			for _, par := range []int{1, 4, 8} {
				got, insts := runFusionDAG(t, seed, v.opts, par)
				if diff := sameMatrix(ref, got); diff != "" {
					t.Errorf("seed %d %s par %d diverged: %s", seed, v.name, par, diff)
				}
				if v.name == "fuse+arena" && par == 1 && insts < refInsts {
					fusedLess++
				}
			}
		}
	}
	if fusedLess == 0 {
		t.Errorf("fusion never reduced the instruction count across any seed; pass not firing")
	}
}

// TestFusionLineageKeysStable pins the lineage-key contract: the serialized
// lineage of a program output is identical with fusion on and off, because
// the runtime replays constituent ops while tracing. A cache populated
// under one setting is therefore valid under the other.
func TestFusionLineageKeysStable(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		logs := make([]string, 2)
		for i, fuse := range []bool{false, true} {
			s := New(Options{Reuse: ReuseFull, Fusion: fuse})
			bindFusionInputs(s)
			if err := s.Run(fusionProgram(seed)); err != nil {
				t.Fatalf("seed %d fusion=%v: %v", seed, fuse, err)
			}
			log, err := s.SerializeLineage("out")
			if err != nil {
				t.Fatalf("seed %d fusion=%v: %v", seed, fuse, err)
			}
			logs[i] = log
			s.Close()
		}
		if logs[0] != logs[1] {
			t.Errorf("seed %d: lineage log differs across fusion on/off:\noff: %s\non:  %s",
				seed, logs[0], logs[1])
		}
	}
}

// TestFusionChaosReplay runs a fused+arena session under the chaos fault
// plan: two replays of the same plan must be bitwise identical, and the
// recovered result must equal the fault-free one.
func TestFusionChaosReplay(t *testing.T) {
	opts := Options{Reuse: ReuseFull, Fusion: true, Arena: true, MemoryPlanner: true}
	clean, _ := runFusionDAG(t, 3, opts, 4)
	chaos := opts
	chaos.FaultPlan = DefaultFaultPlan(99)
	r1, _ := runFusionDAG(t, 3, chaos, 4)
	chaos2 := opts
	chaos2.FaultPlan = DefaultFaultPlan(99)
	r2, _ := runFusionDAG(t, 3, chaos2, 4)
	if diff := sameMatrix(r1, r2); diff != "" {
		t.Errorf("chaos replay not bitwise identical: %s", diff)
	}
	if diff := sameMatrix(clean, r1); diff != "" {
		t.Errorf("chaos result differs from fault-free: %s", diff)
	}
}

// TestArenaStatsSurface checks that an arena session reports allocation
// traffic and an "arena" row in the arbiter snapshot.
func TestArenaStatsSurface(t *testing.T) {
	// Reuse off: outputs are not retained by the lineage cache, so dead
	// fused buffers actually return to the arena and later Gets recycle.
	s := New(Options{Fusion: true, Arena: true, MemoryPlanner: true})
	defer s.Close()
	bindFusionInputs(s)
	for i := 0; i < 3; i++ {
		if err := s.Run(fusionProgram(7)); err != nil {
			t.Fatal(err)
		}
	}
	gets, reuses, _, _ := s.ArenaStats()
	if gets == 0 {
		t.Errorf("arena saw no Gets despite fused execution")
	}
	if reuses == 0 {
		t.Errorf("arena never reused a buffer across repeated runs (gets=%d)", gets)
	}
	found := false
	for _, row := range s.MemoryStats() {
		if row.Name == "arena" {
			found = true
		}
	}
	if !found {
		t.Errorf("no arena row in MemoryStats: %+v", s.MemoryStats())
	}
}
