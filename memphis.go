// Package memphis is the public facade of the MEMPHIS reproduction: a
// multi-backend ML system (local CPU, simulated Spark cluster, simulated
// GPU) with holistic lineage-based reuse and memory management, following
// "MEMPHIS: Holistic Lineage-based Reuse and Memory Management for
// Multi-backend ML Systems" (EDBT 2025).
//
// A Session owns the backends, the compiler, and the hierarchical lineage
// cache. Programs are built with the ir package's expression API, bound to
// input matrices, and executed with per-instruction lineage tracing and
// reuse. Time is virtual: deterministic and reproducible, charged from an
// analytic cost model onto per-resource timelines.
//
//	s := memphis.New(memphis.Options{Reuse: memphis.ReuseFull})
//	s.Bind("X", data.RandNorm(1000, 32, 0, 1, 7))
//	prog := ir.NewProgram()
//	prog.Main = []ir.Block{ir.BB(ir.Assign("G", ir.TSMM(ir.Var("X"))))}
//	_ = s.Run(prog)
//	fmt.Println(s.VirtualTime(), s.CacheStats().HitsCP)
package memphis

import (
	"errors"
	"fmt"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/gpu"
	"memphis/internal/ir"
	"memphis/internal/lineage"
	"memphis/internal/memctl"
	"memphis/internal/memplan"
	"memphis/internal/runtime"
	"memphis/internal/serve"
	"memphis/internal/spark"
)

// Matrix is the dense matrix type used for inputs and results.
type Matrix = data.Matrix

// Reuse selects the reuse framework configuration.
type Reuse int

const (
	// ReuseOff disables lineage tracing and reuse (the Base baseline).
	ReuseOff Reuse = iota
	// ReuseLocal enables eager fine-grained reuse of local operations
	// only (LIMA).
	ReuseLocal
	// ReuseCoarse enables function-level reuse only (HELIX-style).
	ReuseCoarse
	// ReuseFine enables fine-grained reuse across all backends without
	// function-level reuse (MPH-F).
	ReuseFine
	// ReuseFull is complete MEMPHIS: multi-backend fine-grained plus
	// multi-level reuse with all compiler extensions.
	ReuseFull
)

// Options configures a Session. The zero value runs everything locally
// without reuse.
type Options struct {
	Reuse Reuse

	// EnableGPU adds the simulated accelerator; GPUCapacity defaults to
	// 48 MB (the paper's 48 GB at 1/1000 scale).
	EnableGPU   bool
	GPUCapacity int64

	// OpMemBudget is the operation memory: operators with larger
	// estimates compile to distributed Spark instructions. Defaults to
	// 7 MB ("7 GB" at scale).
	OpMemBudget int64

	// CacheBudget is the driver lineage cache size (default 5 MB).
	CacheBudget int64

	// DisableAsync turns off the prefetch/broadcast operators and
	// MAXPARALLELIZE ordering that ReuseFull enables by default (MPH-NA).
	DisableAsync bool

	// Parallelism caps the wall-clock worker fan-out of the dense kernel
	// layer (matmul, conv, elementwise, Spark partition compute). Zero
	// keeps the process default (GOMAXPROCS); 1 forces the serial path.
	// Purely a wall-clock knob: results and virtual times are
	// bitwise-identical for every value.
	Parallelism int

	// FaultPlan, when non-nil, injects deterministic failures (simulated
	// GPU OOM, Spark task/fetch/spill/executor faults, driver spill I/O
	// errors) that the runtime's recovery paths absorb. Same plan, same
	// virtual-time trace — see faults.Default for chaos-mode probabilities.
	FaultPlan *FaultPlan

	// MemoryBudgets sets explicit per-pool byte budgets for the unified
	// memory arbiter. Zero fields keep the defaults. Budget precedence
	// (validated by Options.Validate, which New applies):
	//
	//   - CP pool: MemoryBudgets.CP wins over CacheBudget. Setting both to
	//     different values is a configuration error.
	//   - GPU pool: MemoryBudgets.GPU wins over GPUCapacity. Setting both
	//     to different values is a configuration error.
	//   - Spark: OpMemBudget is the compiler's CP-vs-Spark placement
	//     threshold, NOT a storage budget; MemoryBudgets.Spark sizes the
	//     cluster storage region. An OpMemBudget larger than
	//     MemoryBudgets.Spark is a configuration error (operators placed
	//     locally up to OpMemBudget bytes could never be checkpointed).
	MemoryBudgets MemoryBudgets

	// Fusion enables the compile-time elementwise fusion pass: maximal
	// chains of elementwise/unary/scalar operators compile to single fused
	// instructions executed as one loop with zero intermediate matrices.
	// Lineage keys are unchanged (the runtime replays constituent ops while
	// tracing), so cache contents interoperate across fusion on/off, and
	// results are bitwise-identical at any parallelism.
	Fusion bool

	// Arena enables the shape-keyed host buffer arena: fused outputs draw
	// recycled buffers, dead temporaries return theirs at planner free
	// points, and the arena registers with the memory arbiter as its own
	// pool (evicting = trimming idle shape classes). MemoryBudgets.Arena
	// caps retained free bytes. Results are bitwise-identical on/off.
	Arena bool

	// AdaptivePlacement enables the closed-loop cost model: the session
	// records per-operator observed virtual costs and cache hit/miss
	// tallies, recalibrates the cost model's effective rates at basic-block
	// boundaries, and lets the compiler place operators by expected cost —
	// folding each operator's observed reuse probability — instead of the
	// static thresholds. All observations are virtual-clock deltas, so
	// adaptive runs stay deterministic and replayable; with the option off
	// (the default) placement, results, and virtual times are
	// bitwise-identical to previous releases. See Stats.Calibration.
	AdaptivePlacement bool

	// CostModel overrides the analytic cost model's calibrated constants
	// (nil uses the paper's Table-2 defaults, costs.Default). Validate
	// rejects models with non-positive or non-finite fields. With
	// AdaptivePlacement this is the immutable base the calibration overlay
	// refines.
	CostModel *CostModel

	// MemoryPlanner enables the compile-time memory planner
	// (internal/memplan): static liveness and peak-memory profiles per
	// compiled stream, lifetime hints for the arbiter's victim selection,
	// and budget-bounding rewrites (early frees, row-panel matmul splits,
	// cache-vs-recompute flips). The planning budget is the CP cache
	// budget (MemoryBudgets.CP, else CacheBudget, else the default).
	// Numeric results are bitwise-identical with the planner on or off.
	MemoryPlanner bool
}

// MemoryBudgets names the byte budgets of the arbiter's pools: the driver
// lineage cache (CP), the reuse share of cluster storage (SparkReuse), the
// cluster storage region itself (Spark), and device memory (GPU). Session
// MemoryStats reports one row per pool under these budgets.
type MemoryBudgets struct {
	CP         int64 // driver lineage cache (default 16 MB)
	SparkReuse int64 // reuse share of cluster storage (default 48 MB)
	Spark      int64 // cluster storage region (default 64 MB)
	GPU        int64 // device capacity, when EnableGPU is set (default 48 MB)
	Arena      int64 // buffer-arena retained free bytes, when Arena is set (default 8 MB)
}

// CostModel is the analytic cost model's constant set (see internal/costs):
// compute rates, transfer bandwidths, and per-operation overheads, all in
// virtual seconds. costs.Default() reproduces the paper's Table 2.
type CostModel = costs.Model

// DefaultCostModel returns the paper's calibrated constants (Table 2).
func DefaultCostModel() *CostModel { return costs.Default() }

// CalibrationReport is the closed-loop cost model's snapshot: calibration
// epoch and fingerprint, per-backend observed-vs-base effective rates, and
// per-operator predicted-vs-observed virtual costs with reuse statistics.
type CalibrationReport = costs.CalibrationReport

// FaultPlan is a replayable fault scenario (see internal/faults): a seed plus
// per-site triggers. DefaultFaultPlan gives the chaos-mode defaults.
type FaultPlan = faults.Plan

// DefaultFaultPlan returns the chaos-mode plan: low per-site probabilities
// that every recovery path absorbs without failing a run.
func DefaultFaultPlan(seed int64) *FaultPlan { return faults.Default(seed) }

// Validate checks the Options for conflicting budget settings, returning a
// descriptive error for the first conflict found. New applies it and defers
// the error to Run/Lookup; call it directly to fail fast.
func (o Options) Validate() error {
	if o.CacheBudget > 0 && o.MemoryBudgets.CP > 0 && o.CacheBudget != o.MemoryBudgets.CP {
		return fmt.Errorf("memphis: CacheBudget (%d) and MemoryBudgets.CP (%d) are both set but differ; set one, or set both equal (MemoryBudgets.CP takes precedence)",
			o.CacheBudget, o.MemoryBudgets.CP)
	}
	if o.GPUCapacity > 0 && o.MemoryBudgets.GPU > 0 && o.GPUCapacity != o.MemoryBudgets.GPU {
		return fmt.Errorf("memphis: GPUCapacity (%d) and MemoryBudgets.GPU (%d) are both set but differ; set one, or set both equal (MemoryBudgets.GPU takes precedence)",
			o.GPUCapacity, o.MemoryBudgets.GPU)
	}
	if o.OpMemBudget > 0 && o.MemoryBudgets.Spark > 0 && o.OpMemBudget > o.MemoryBudgets.Spark {
		return fmt.Errorf("memphis: OpMemBudget (%d) exceeds MemoryBudgets.Spark (%d); operators compiled locally under OpMemBudget could never fit the cluster storage region",
			o.OpMemBudget, o.MemoryBudgets.Spark)
	}
	if o.CostModel != nil {
		if err := o.CostModel.Validate(); err != nil {
			return fmt.Errorf("memphis: CostModel: %w", err)
		}
	}
	return nil
}

// Session is an execution context over the simulated multi-backend stack.
type Session struct {
	ctx  *runtime.Context
	opts Options
	// optErr is the deferred Options.Validate error; Run and Lookup
	// surface it instead of executing under a misconfigured session.
	optErr error
}

// runtimeConfig lowers public Options to the internal runtime configuration
// (shared by New and NewServer, so queued requests execute exactly like
// standalone sessions).
func runtimeConfig(opts Options) runtime.Config {
	comp := compiler.DefaultConfig()
	if opts.OpMemBudget > 0 {
		comp.OpMemBudget = opts.OpMemBudget
	} else {
		comp.OpMemBudget = 7 << 20
	}
	comp.GPUEnabled = opts.EnableGPU
	cache := core.DefaultConfig()
	if opts.CacheBudget > 0 {
		cache.CPBudget = opts.CacheBudget
	}
	if opts.MemoryBudgets.CP > 0 {
		cache.CPBudget = opts.MemoryBudgets.CP
	}
	if opts.MemoryBudgets.SparkReuse > 0 {
		cache.SparkBudget = opts.MemoryBudgets.SparkReuse
	}
	sparkConf := spark.DefaultConfig()
	if opts.MemoryBudgets.Spark > 0 {
		sparkConf.StorageMemory = opts.MemoryBudgets.Spark
	}
	mode := runtime.ReuseNone
	switch opts.Reuse {
	case ReuseLocal:
		mode = runtime.ReuseLIMA
	case ReuseCoarse:
		mode = runtime.ReuseHelix
	case ReuseFine:
		mode = runtime.ReuseMemphisFine
	case ReuseFull:
		mode = runtime.ReuseMemphis
	}
	if (opts.Reuse == ReuseFull || opts.Reuse == ReuseFine) && !opts.DisableAsync {
		comp.Async = true
		comp.MaxParallelize = true
		comp.CheckpointInjection = true
	}
	gcap := int64(0)
	pol := gpu.PolicyNone
	if opts.EnableGPU {
		gcap = opts.GPUCapacity
		if opts.MemoryBudgets.GPU > 0 {
			gcap = opts.MemoryBudgets.GPU
		}
		if gcap == 0 {
			gcap = 48 << 20
		}
		if opts.Reuse == ReuseFull || opts.Reuse == ReuseFine {
			pol = gpu.PolicyMemphis
		}
	}
	comp.Fusion = opts.Fusion
	var plan *memplan.Config
	if opts.MemoryPlanner {
		plan = &memplan.Config{Budget: cache.CPBudget}
		if opts.Arena {
			// Every planner free point is an arena recycling opportunity,
			// so frees are worth inserting even when the profile fits.
			plan.EagerFrees = true
		}
	}
	return runtime.Config{
		Mode:        mode,
		Compiler:    comp,
		Cache:       cache,
		Spark:       sparkConf,
		GPUCapacity: gcap,
		GPUPolicy:   pol,
		Parallelism: opts.Parallelism,
		Faults:      opts.FaultPlan,
		MemPlan:     plan,
		Arena:       opts.Arena,
		ArenaBudget: opts.MemoryBudgets.Arena,
		Model:       opts.CostModel,
		Adaptive:    opts.AdaptivePlacement,
	}
}

// New creates a session. Conflicting budget options (see Options.Validate)
// are not fatal here: the error is stored and returned by Run and Lookup.
func New(opts Options) *Session {
	return &Session{ctx: runtime.New(runtimeConfig(opts)), opts: opts, optErr: opts.Validate()}
}

// Bind installs an input matrix under a variable name (a persistent read:
// the root of lineage traces).
func (s *Session) Bind(name string, m *Matrix) { s.ctx.BindHost(name, m) }

// Run compiles and executes a program, applying MEMPHIS's program-level
// rewrites (checkpoint placement, delay-factor tuning, eviction injection)
// when full reuse is enabled. Programs may be run repeatedly; the lineage
// cache persists across runs within the session.
func (s *Session) Run(p *ir.Program) error {
	if s.optErr != nil {
		return s.optErr
	}
	if s.opts.Reuse == ReuseFull {
		compiler.AutoTune(p)
		compiler.InjectLoopCheckpoints(p)
		compiler.InjectEvictions(p)
	}
	return s.ctx.RunProgram(p)
}

// Value fetches a variable's value to the host (triggering any pending
// collect/copy). It returns nil — not an error — when the name was never
// bound or assigned, or the session is closed; callers that need to
// distinguish "unbound" from a legitimate value should use Lookup.
func (s *Session) Value(name string) *Matrix {
	m, err := s.Lookup(name)
	if err != nil {
		return nil
	}
	return m
}

// Lookup fetches a variable's value to the host like Value, but reports
// unbound names and closed sessions as errors instead of a silent nil.
// Fetching can run deferred Spark jobs; under fault injection such a job can
// exhaust its task attempts, which surfaces here as an error rather than a
// panic.
func (s *Session) Lookup(name string) (m *Matrix, err error) {
	if s.optErr != nil {
		return nil, s.optErr
	}
	if s.ctx.Closed() {
		return nil, fmt.Errorf("memphis: session is closed")
	}
	v := s.ctx.Var(name)
	if v == nil {
		return nil, fmt.Errorf("memphis: variable %q is not bound", name)
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, spark.ErrStageAbort) {
				m, err = nil, fmt.Errorf("memphis: fetching %q: %w", name, e)
				return
			}
			panic(r)
		}
	}()
	return s.ctx.EnsureHostValue(v), nil
}

// Close releases the session's simulated resources: GPU pointers are freed,
// Spark RDDs and broadcasts unpersisted, and the lineage cache cleared.
// Without Close, sessions leak simulated device and cluster memory for the
// life of the process. Close is idempotent; Run after Close errors and
// Value/Lookup report the session closed.
func (s *Session) Close() error { return s.ctx.Close() }

// VirtualTime returns the driver's virtual clock in seconds — the
// deterministic simulated execution time all experiments report.
func (s *Session) VirtualTime() float64 { return s.ctx.Clock.Now() }

// PoolStats is one memory pool's snapshot row: name, used/budget bytes,
// pressure ratio, and the pool's pressure/eviction/demotion counters.
type PoolStats = memctl.PoolStats

// Stats is the session statistics surface: the runtime counters
// (instruction counts, reuses) plus the unified memory arbiter's per-pool
// pressure and demotion rows.
type Stats struct {
	runtime.Stats
	Memory []PoolStats `json:"memory,omitempty"`
	// Calibration is the closed-loop cost model's report (nil unless
	// Options.AdaptivePlacement is set).
	Calibration *CalibrationReport `json:"calibration,omitempty"`
}

// Stats returns the runtime statistics (instruction counts, reuses) with
// the memory arbiter's per-pool rows attached, and — under
// Options.AdaptivePlacement — the cost-model calibration report.
func (s *Session) Stats() Stats {
	return Stats{Stats: s.ctx.Stats, Memory: s.MemoryStats(), Calibration: s.CalibrationReport()}
}

// CalibrationReport returns the closed-loop cost model's current snapshot:
// calibration epoch, per-backend effective rates, and per-operator
// predicted-vs-observed virtual costs with reuse probabilities. Nil unless
// Options.AdaptivePlacement is set. Deterministic: two replays of the same
// program serialize byte-identically.
func (s *Session) CalibrationReport() *CalibrationReport { return s.ctx.CalibrationReport() }

// ReuseRow is one (operator, backend, shape-class) probe/hit tally with its
// observed hit rate.
type ReuseRow = runtime.ReuseRow

// ReuseSnapshot returns the session's fine-grained probe/hit tallies per
// (operator, backend, shape-class). Nil unless Options.AdaptivePlacement is
// set.
func (s *Session) ReuseSnapshot() []ReuseRow { return s.ctx.ReuseSnapshot() }

// MemoryStats returns the per-pool pressure/demotion counters of the
// session's memory arbiter, in fixed registration order: the driver cache
// ("cp"), the reuse share of cluster storage ("spark-reuse"), the cluster
// storage region ("spark"), the device pool ("gpu") when EnableGPU is set,
// and the buffer arena ("arena") when Arena is set.
func (s *Session) MemoryStats() []PoolStats { return s.ctx.Arb.Snapshot() }

// ArenaStats reports the buffer arena's allocation counters: total Gets,
// Gets satisfied from the free lists, Puts, and buffers that escaped into
// the lineage cache. All zero unless Options.Arena is set.
func (s *Session) ArenaStats() (gets, reuses, puts, escapes int64) {
	a := s.ctx.Arena()
	if a == nil {
		return 0, 0, 0, 0
	}
	return a.Stats()
}

// CacheStats returns the lineage cache statistics (hits per backend,
// evictions, spills, lazy GC activity).
func (s *Session) CacheStats() core.Stats { return s.ctx.Cache.Stats }

// PlanReport is one planned instruction stream's memory-planner report:
// the static liveness table, peak-memory profile, and rewrite summary,
// combined with the measured per-run counters.
type PlanReport = runtime.PlanReport

// PlanReports returns one report per planned stream in first-seen order.
// Empty unless Options.MemoryPlanner is set.
func (s *Session) PlanReports() []PlanReport { return s.ctx.PlanReports() }

// CPPeak returns the high-water mark of driver lineage-cache bytes (the
// measured peak the planner's budget bounds).
func (s *Session) CPPeak() int64 { return s.ctx.Cache.CPPeak() }

// SerializeLineage returns the lineage log of a variable (the SERIALIZE
// API, §3.2) for sharing and exact recomputation elsewhere.
func (s *Session) SerializeLineage(name string) (string, error) {
	li := s.ctx.LMap.Get(name)
	if li == nil {
		return "", fmt.Errorf("memphis: no lineage for %q (is reuse/tracing on?)", name)
	}
	return lineage.Serialize(li), nil
}

// Recompute re-executes a lineage log against this session's bound inputs
// and returns the exact original value (the RECOMPUTE API, §3.2).
func (s *Session) Recompute(log string) (*Matrix, error) {
	root, err := lineage.Deserialize(log)
	if err != nil {
		return nil, err
	}
	return runtime.Recompute(s.ctx, root)
}

// Server is the multi-tenant serving layer: a worker pool executing
// programs from many tenants against one shared, concurrency-safe lineage
// cache (see internal/serve). Identical sub-programs over identical data
// submitted by different tenants reuse each other's results.
type Server = serve.Server

// SubmitOptions, Future, Result, and ServerSnapshot are the serving-layer
// request and monitoring types.
type (
	SubmitOptions  = serve.SubmitOptions
	Future         = serve.Future
	Result         = serve.Result
	ServerSnapshot = serve.Snapshot
)

// ServerOptions configures NewServer. The embedded Options template shapes
// every per-request session (reuse mode, budgets, backends), exactly as New
// would build it.
type ServerOptions struct {
	Options

	// Workers is the worker-pool size (default 4).
	Workers int
	// FairScheduling selects weighted-fair queueing across tenants
	// instead of FIFO dispatch.
	FairScheduling bool
	// SharedBudget is the cross-tenant cache's global byte budget
	// (default 64 MB); TenantBudget caps one tenant's share (default
	// SharedBudget/8). Keeping the sum of tenant shares within the global
	// budget preserves deterministic per-tenant virtual latencies.
	SharedBudget int64
	TenantBudget int64
	// SharedShards is the shared cache's lock-shard count (default 8).
	SharedShards int
	// MaxQueue and MaxPerTenant bound admission (defaults 1024 and 64).
	MaxQueue     int
	MaxPerTenant int

	// Deadline, when positive, fails requests whose virtual latency
	// (execution plus retry backoff) exceeds it, with serve.ErrDeadline.
	Deadline float64
	// MaxRetries is how many times a failed attempt is retried before the
	// request fails (default 2; negative disables retries). RetryBackoff is
	// the base of the per-retry exponential virtual-time backoff (default
	// 0.05 s).
	MaxRetries   int
	RetryBackoff float64
	// ShedThreshold, when positive, sheds new submissions with
	// serve.ErrOverloaded once the queue reaches this depth.
	ShedThreshold int

	// DisableCompileCache turns off the cross-tenant compiled-plan cache
	// (on by default: hot programs compile, auto-tune, and memory-plan
	// once per (program, shapes, config) key and are reused read-only by
	// every session; results and virtual latencies are unaffected).
	// CompileShards sizes its lock-shard count (default 16).
	DisableCompileCache bool
	CompileShards       int
	// Coalesce enables batched admission: submissions resolving to the
	// same compiled plan over the same inputs and fetch set join the
	// in-flight request's coalesce group — one execution fans out
	// independent result copies to all of them. CoalesceWindow (tickets,
	// default 256) and MaxBatch (group size cap, default 64) bound a
	// group. See serve.Config for the follower latency rule.
	Coalesce       bool
	CoalesceWindow uint64
	MaxBatch       int
	// DisabledShards starts the listed shared-cache shards degraded: probes
	// miss and publishes are rejected, so sessions recompute instead of
	// failing.
	DisabledShards []int
}

// NewServer starts a serving layer whose per-request sessions are built
// from the embedded Options. Close the server to drain and stop it. Unlike
// New — which defers Options.Validate errors to Run — NewServer panics on
// invalid options: a server template misconfiguration would otherwise fail
// every request of every tenant at execution time.
func NewServer(opts ServerOptions) *Server {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	conf := serve.DefaultConfig()
	conf.Runtime = runtimeConfig(opts.Options)
	// Adaptive placement is a session-lifetime feature: calibration needs a
	// persistent observation stream, but the server builds a fresh session
	// per request, so each would recalibrate from scratch — epoch churn in
	// compile-cache keys with nothing learned. The serving layer's shared
	// cache still records reuse tallies (SharedStats.Reuse).
	conf.Runtime.Adaptive = false
	if opts.Workers > 0 {
		conf.Workers = opts.Workers
	}
	if opts.FairScheduling {
		conf.Sched = serve.SchedWFQ
	}
	conf.Shared.Budget = opts.SharedBudget
	conf.Shared.TenantBudget = opts.TenantBudget
	conf.Shared.Shards = opts.SharedShards
	if opts.MaxQueue > 0 {
		conf.MaxQueue = opts.MaxQueue
	}
	if opts.MaxPerTenant > 0 {
		conf.MaxPerTenant = opts.MaxPerTenant
	}
	conf.Rewrite = opts.Reuse == ReuseFull
	// The serving layer owns fault injection per request attempt; the
	// runtime template must not also carry the plan or each session would
	// replay one fixed stream.
	conf.Faults = opts.FaultPlan
	conf.Runtime.Faults = nil
	conf.Deadline = opts.Deadline
	if opts.MaxRetries != 0 {
		conf.MaxRetries = opts.MaxRetries
	}
	if opts.RetryBackoff > 0 {
		conf.RetryBackoff = opts.RetryBackoff
	}
	conf.ShedThreshold = opts.ShedThreshold
	conf.DisabledShards = opts.DisabledShards
	conf.CompileCache = !opts.DisableCompileCache
	if opts.CompileShards > 0 {
		conf.CompileShards = opts.CompileShards
	}
	conf.Coalesce = opts.Coalesce
	if opts.CoalesceWindow > 0 {
		conf.CoalesceWindow = opts.CoalesceWindow
	}
	if opts.MaxBatch > 0 {
		conf.MaxBatch = opts.MaxBatch
	}
	return serve.New(conf)
}

// NewSessionFor creates an interactive Session attached to a server's
// shared cache under the given tenant identity: values the session computes
// are offered to (and reused from) the cross-tenant cache. Unlike Submit,
// such a session bypasses the server's conflict scheduling, so its virtual
// times are only reproducible while no overlapping requests run
// concurrently. Close the session when done.
func NewSessionFor(srv *Server, tenant string, opts Options) *Session {
	s := New(opts)
	s.ctx.AttachShared(srv.Shared(), tenant)
	return s
}
