module memphis

go 1.22
