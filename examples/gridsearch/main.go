// Gridsearch runs the paper's HCV workload (grid-search cross-validated
// linear regression, Example 4.1) under Base and full MEMPHIS, comparing
// virtual execution times and reuse statistics — a miniature Figure 13(a).
package main

import (
	"fmt"

	"memphis/internal/bench"
	"memphis/internal/workloads"
)

func main() {
	env := bench.DefaultEnv()
	env.OpMemBudget = 2 << 20 // the gram computation goes distributed
	build := func() *workloads.Workload {
		return workloads.HCV(16000, 48, 3,
			[]float64{1e-3, 1e-2, 1e-1, 1, 10, 100}, 7)
	}
	for _, sys := range []bench.System{bench.Base, bench.BaseA, bench.LIMA, bench.MPH} {
		secs, ctx, err := sys.Run(env, build)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %8.4f s   jobs=%-3d reused=%-4d action-reuses=%-3d rdd-hits=%d\n",
			sys.Name, secs, ctx.SC.Stats.Jobs, ctx.Stats.Reused,
			ctx.Stats.ActionReuses, ctx.Cache.Stats.HitsRDD)
	}
}
