// Cleaning enumerates the 12 data-cleaning pipelines of the CLEAN workload
// over an APS-like dataset and shows fine-grained reuse of shared pipeline
// prefixes (imputation, outlier removal, normalization) — Figure 14(a).
package main

import (
	"fmt"

	"memphis/internal/bench"
	"memphis/internal/workloads"
)

func main() {
	env := bench.DefaultEnv()
	env.OpMemBudget = 1 << 30
	build := func() *workloads.Workload {
		return workloads.Clean(4000, 16, 4, 3, 17)
	}
	for _, sys := range []bench.System{bench.Base, bench.BaseP, bench.LIMA, bench.MPH} {
		secs, ctx, err := sys.Run(env, build)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %8.4f s   reused=%-5d evictions=%-4d spills=%d\n",
			sys.Name, secs, ctx.Stats.Reused,
			ctx.Cache.Stats.EvictionsCP, ctx.Cache.Stats.SpillsCP)
	}
}
