// Quickstart: build a tiny program, run it twice, and watch the lineage
// cache turn the second run into pure reuse.
package main

import (
	"fmt"

	"memphis"
	"memphis/internal/data"
	"memphis/internal/ir"
)

func main() {
	s := memphis.New(memphis.Options{Reuse: memphis.ReuseFull})
	s.Bind("X", data.RandNorm(2000, 32, 0, 1, 7))
	s.Bind("y", data.RandNorm(2000, 1, 0, 1, 8))

	// Ridge regression: beta = (X'X + lambda I)^-1 X'y for three lambdas.
	// X'X and X'y are lambda-independent, so MEMPHIS computes them once.
	prog := ir.NewProgram()
	prog.Main = []ir.Block{
		ir.For("lambda", []float64{0.01, 0.1, 1.0}, ir.BB(
			ir.Assign("G", ir.TSMM(ir.Var("X"))),
			ir.Assign("b", ir.MatMul(ir.T(ir.Var("X")), ir.Var("y"))),
			ir.Assign("beta", ir.Solve(ir.Add(ir.Var("G"), ir.Var("lambda")), ir.Var("b"))),
			ir.Assign("fit", ir.Sum(ir.Pow(ir.Sub(ir.Var("y"), ir.MatMul(ir.Var("X"), ir.Var("beta"))), 2))),
		)),
	}
	if err := s.Run(prog); err != nil {
		panic(err)
	}
	fmt.Printf("virtual time: %.4g s\n", s.VirtualTime())
	fmt.Printf("instructions: %d, reused: %d\n", s.Stats().Instructions, s.Stats().Reused)
	fmt.Printf("cache: %d CP hits, %d misses\n", s.CacheStats().HitsCP, s.CacheStats().Misses)
	fmt.Println("last fit:", s.Value("fit"))

	// The lineage trace of beta can be serialized and replayed anywhere
	// the same inputs are available.
	log, err := s.SerializeLineage("beta")
	if err != nil {
		panic(err)
	}
	fmt.Printf("lineage log of beta: %d bytes\n", len(log))
}
