// PNMF factorizes a MovieLens-like ratings matrix with Poisson NMF and
// shows how MEMPHIS's compiler-placed checkpoints bound the lazily growing
// Spark graphs of iteratively updated factors (Figure 9(c) / 13(b)).
package main

import (
	"fmt"

	"memphis/internal/bench"
	"memphis/internal/workloads"
)

func main() {
	env := bench.DefaultEnv()
	env.OpMemBudget = 64 << 10 // the tall factor W stays distributed
	for _, iters := range []int{5, 15, 25} {
		fmt.Printf("-- %d iterations --\n", iters)
		for _, sys := range []bench.System{bench.Base, bench.MPH} {
			build := func() *workloads.Workload {
				return workloads.PNMF(2000, 60, 8, iters, 11)
			}
			secs, ctx, err := sys.Run(env, build)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-6s %8.3f s   partitions computed=%-6d checkpoints=%d\n",
				sys.Name, secs, ctx.SC.Stats.PartitionsComputed, ctx.Stats.Checkpoints)
		}
	}
}
