// En2de scores a Zipf-distributed word sequence with a pre-trained
// translation network on the simulated GPU, comparing Base-G, a
// PyTorch-style pool allocator, Clipper-style prediction caching, and full
// MEMPHIS (Figure 14(c)). Duplicate words make whole scoring calls
// reusable at the host, eliminating their GPU work entirely.
package main

import (
	"fmt"

	"memphis/internal/bench"
	"memphis/internal/workloads"
)

func main() {
	env := bench.DefaultEnv()
	env.OpMemBudget = 1 << 30
	env.GPUMinCells = 64
	build := func() *workloads.Workload {
		return workloads.En2De(1000, 200, 32, 64, 23)
	}
	for _, sys := range []bench.System{bench.BaseG, bench.PyTorch, bench.MPHF, bench.Clipper, bench.MPH} {
		secs, ctx, err := sys.Run(env, build)
		if err != nil {
			panic(err)
		}
		gpuKernels := int64(0)
		if ctx.GM != nil {
			gpuKernels = ctx.GM.Device().Stats.Kernels
		}
		fmt.Printf("%-12s %8.4f s   kernels=%-6d fn-reuses=%-5d gpu-hits=%d\n",
			sys.Name, secs, gpuKernels, ctx.Stats.FuncReuses, ctx.Cache.Stats.HitsGPU)
	}
}
