// Package faults is MEMPHIS's deterministic fault-injection registry. The
// simulator's robustness machinery (GPU OOM recovery, Spark task retry,
// serve-level retry with backoff) is only trustworthy if the failures it
// reacts to are reproducible, so every injection decision is a pure function
// of (plan seed, injection site, per-site call index) computed with a
// counter-keyed splitmix64 hash — a vtime-friendly PRNG with no hidden
// stream state. Replaying a session with the same plan produces bitwise-
// identical failures, virtual-time traces, and results, regardless of worker
// interleaving or wall-clock timing.
//
// Two trigger forms are supported per site:
//
//   - Probability: each call at the site fails independently with the given
//     probability — but only on its first attempt, so a single retry always
//     converges. This keeps probabilistic chaos runs completing via
//     retries/fallbacks instead of aborting.
//   - Nth: scripted 1-based call indices that fail unconditionally, with
//     Attempts consecutive failing attempts. Scripted triggers are how tests
//     exercise max-attempt aborts and other give-up paths.
package faults

import (
	"hash/fnv"
	"sort"
)

// Site identifies one injection point in the stack.
type Site string

// The wired injection sites.
const (
	// GPUAlloc fails the device's plain cudaMalloc attempt (simulated OOM);
	// the memory manager's Algorithm-1 recovery ladder then runs.
	GPUAlloc Site = "gpu.alloc"
	// SparkTask fails a task (partition computation); the stage retries it
	// up to spark.Config.MaxTaskFailures attempts before aborting.
	SparkTask Site = "spark.task"
	// SparkFetch loses a cached shuffle file; the map side is recomputed.
	SparkFetch Site = "spark.fetch"
	// SparkSpill fails a block-manager spill write; the victim partition is
	// dropped and recomputed from lineage on next access.
	SparkSpill Site = "spark.spill"
	// SparkExec loses one executor: its cached blocks and shuffle files
	// vanish and an executor-replacement delay is charged.
	SparkExec Site = "spark.executor"
	// CPSpill fails a driver lineage-cache spill write; the entry is
	// dropped instead of spilled.
	CPSpill Site = "cp.spill"
	// ServeRequest fails a serving-layer request attempt before execution
	// (a simulated worker crash); the server retries with backoff. Keyed by
	// ticket, not call order, so traces are worker-count independent.
	ServeRequest Site = "serve.request"
)

// Trigger configures when a site fails.
type Trigger struct {
	// Probability is the chance that a call's first attempt fails. Retries
	// of probabilistically failed calls always succeed, so any single-retry
	// response converges.
	Probability float64
	// Nth lists 1-based call indices that fail unconditionally.
	Nth []int64
	// Attempts is how many consecutive attempts fail at an Nth-triggered
	// call (default 1). Set it at or above the caller's retry limit to
	// exercise abort paths.
	Attempts int
}

// fails returns how many consecutive attempts fail for call index n, given
// the plan seed (0 = the call succeeds).
func (t Trigger) fails(seed int64, site Site, n int64) int {
	for _, k := range t.Nth {
		if k == n {
			if t.Attempts > 1 {
				return t.Attempts
			}
			return 1
		}
	}
	if t.Probability > 0 && chance(seed, site, uint64(n)) < t.Probability {
		return 1
	}
	return 0
}

// Plan is a complete, replayable fault scenario: a seed plus per-site
// triggers. The zero-value plan (or a nil *Plan) injects nothing.
type Plan struct {
	Seed  int64
	Sites map[Site]Trigger
}

// Default returns the chaos-mode plan used by `memphis-serve -chaos`: low
// per-site probabilities that every recovery path absorbs without failing a
// request.
func Default(seed int64) *Plan {
	return &Plan{
		Seed: seed,
		Sites: map[Site]Trigger{
			GPUAlloc:     {Probability: 0.05},
			SparkTask:    {Probability: 0.02},
			SparkFetch:   {Probability: 0.05},
			SparkSpill:   {Probability: 0.05},
			SparkExec:    {Probability: 0.01},
			CPSpill:      {Probability: 0.05},
			ServeRequest: {Probability: 0.05},
		},
	}
}

// Clone returns a deep copy of the plan (nil-safe).
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	q := &Plan{Seed: p.Seed}
	if p.Sites != nil {
		q.Sites = make(map[Site]Trigger, len(p.Sites))
		for s, t := range p.Sites {
			nth := append([]int64(nil), t.Nth...)
			q.Sites[s] = Trigger{Probability: t.Probability, Nth: nth, Attempts: t.Attempts}
		}
	}
	return q
}

// ForRequest derives the per-request plan used by the serving layer: the
// seed is mixed with the request's ticket and attempt number, so each
// request (and each retry) draws an independent, ticket-keyed fault stream.
// Because the derivation ignores call order across requests, traces are
// identical for every worker count.
func (p *Plan) ForRequest(ticket uint64, attempt int) *Plan {
	if p == nil {
		return nil
	}
	q := p.Clone()
	q.Seed = int64(mix64(uint64(p.Seed) ^ mix64(ticket) ^ mix64(uint64(attempt)<<32|0x9e37)))
	return q
}

// FireAt is the stateless decision used for caller-indexed sites (the serve
// layer indexes by ticket rather than call order): does call index n fail on
// the given attempt? Probabilistic triggers fire on attempt 0 only; scripted
// triggers fire on attempts below Trigger.Attempts.
func (p *Plan) FireAt(site Site, n uint64, attempt int) bool {
	if p == nil {
		return false
	}
	t, ok := p.Sites[site]
	if !ok {
		return false
	}
	return attempt < t.fails(p.Seed, site, int64(n))
}

// siteState is an injector's per-site call counter and trigger.
type siteState struct {
	trig     Trigger
	calls    int64
	draws    int64
	injected int64
}

// Injector is the per-session registry: it counts calls per site and decides
// failures deterministically. It is not safe for concurrent use — injection
// sites all run on the session's driver goroutine, matching the simulator's
// single instruction stream. A nil *Injector is valid and injects nothing.
type Injector struct {
	seed  int64
	sites map[Site]*siteState
}

// NewInjector builds an injector from a plan; a nil or empty plan returns
// nil (all methods are nil-safe).
func NewInjector(p *Plan) *Injector {
	if p == nil || len(p.Sites) == 0 {
		return nil
	}
	inj := &Injector{seed: p.Seed, sites: make(map[Site]*siteState, len(p.Sites))}
	for s, t := range p.Sites {
		inj.sites[s] = &siteState{trig: t}
	}
	return inj
}

// Next begins a new call at the site and returns how many consecutive
// attempts of it fail (0 = the call succeeds). Callers loop: attempt i
// fails iff i < Next(site).
func (i *Injector) Next(site Site) int {
	if i == nil {
		return 0
	}
	st := i.sites[site]
	if st == nil {
		return 0
	}
	st.calls++
	n := st.trig.fails(i.seed, site, st.calls)
	if n > 0 {
		st.injected++
	}
	return n
}

// Fail reports whether the next call at the site fails its first attempt.
func (i *Injector) Fail(site Site) bool { return i.Next(site) > 0 }

// Draw returns a deterministic uniform 64-bit value for the site (victim
// selection and similar tie-breaking), on a counter stream independent of
// the failure decisions.
func (i *Injector) Draw(site Site) uint64 {
	if i == nil {
		return 0
	}
	st := i.sites[site]
	if st == nil {
		return 0
	}
	st.draws++
	return mix64(uint64(i.seed) ^ mix64(siteHash(site)^0xd7a3) ^ mix64(uint64(st.draws)))
}

// Calls returns how many calls the site has begun.
func (i *Injector) Calls(site Site) int64 {
	if i == nil || i.sites[site] == nil {
		return 0
	}
	return i.sites[site].calls
}

// Counts returns the number of injected failures per site (sites that never
// fired are omitted). The map is a copy.
func (i *Injector) Counts() map[Site]int64 {
	if i == nil {
		return nil
	}
	out := make(map[Site]int64)
	for s, st := range i.sites {
		if st.injected > 0 {
			out[s] = st.injected
		}
	}
	return out
}

// Injected returns the total number of injected failures across all sites.
func (i *Injector) Injected() int64 {
	if i == nil {
		return 0
	}
	var n int64
	for _, st := range i.sites {
		n += st.injected
	}
	return n
}

// SiteNames returns the registered sites in sorted order (for reports).
func (i *Injector) SiteNames() []Site {
	if i == nil {
		return nil
	}
	out := make([]Site, 0, len(i.sites))
	for s := range i.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Hit is the package-level stateless Bernoulli draw keyed by (seed, site,
// index) — for callers that index calls themselves.
func Hit(seed int64, site Site, n uint64, prob float64) bool {
	return prob > 0 && chance(seed, site, n) < prob
}

// mix64 is the splitmix64 finalizer: a high-quality 64-bit mixing function
// whose output is a pure function of its input (no stream state).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// siteHash folds a site name into the hash key.
func siteHash(s Site) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// chance maps (seed, site, call index) to a uniform float64 in [0, 1).
func chance(seed int64, site Site, n uint64) float64 {
	h := mix64(uint64(seed) ^ mix64(siteHash(site)) ^ mix64(n))
	return float64(h>>11) / (1 << 53)
}
