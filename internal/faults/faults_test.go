package faults

import (
	"math"
	"reflect"
	"testing"
)

// TestNilSafety: every method on a nil injector / nil plan is a no-op.
func TestNilSafety(t *testing.T) {
	var inj *Injector
	if inj.Next(GPUAlloc) != 0 || inj.Fail(SparkTask) || inj.Draw(SparkExec) != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	if inj.Counts() != nil || inj.Injected() != 0 || inj.Calls(GPUAlloc) != 0 || inj.SiteNames() != nil {
		t.Fatal("nil injector accessors must be zero")
	}
	var p *Plan
	if p.Clone() != nil || p.ForRequest(7, 0) != nil || p.FireAt(ServeRequest, 1, 0) {
		t.Fatal("nil plan must inject nothing")
	}
	if NewInjector(nil) != nil || NewInjector(&Plan{}) != nil {
		t.Fatal("empty plans must build nil injectors")
	}
}

// TestDeterministicReplay: two injectors from the same plan produce the
// identical failure sequence; a different seed produces a different one.
func TestDeterministicReplay(t *testing.T) {
	seq := func(seed int64) []int {
		inj := NewInjector(Default(seed))
		out := make([]int, 0, 400)
		for k := 0; k < 100; k++ {
			out = append(out, inj.Next(GPUAlloc), inj.Next(SparkTask), inj.Next(SparkFetch), inj.Next(CPSpill))
		}
		return out
	}
	a, b := seq(42), seq(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must replay identically")
	}
	if reflect.DeepEqual(a, seq(43)) {
		t.Fatal("different seeds should differ (vanishingly unlikely collision)")
	}
}

// TestSiteIndependence: the failure decision at a site depends only on that
// site's own call index, not on traffic at other sites.
func TestSiteIndependence(t *testing.T) {
	plan := Default(7)
	solo := NewInjector(plan)
	var a []int
	for k := 0; k < 50; k++ {
		a = append(a, solo.Next(SparkTask))
	}
	mixed := NewInjector(plan)
	var b []int
	for k := 0; k < 50; k++ {
		mixed.Next(GPUAlloc)
		mixed.Next(SparkSpill)
		b = append(b, mixed.Next(SparkTask))
		mixed.Draw(SparkExec)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("site decisions must be independent of other sites' call order")
	}
}

// TestScriptedNth: Nth triggers fire exactly at the listed call indices with
// the configured attempt count; all other calls succeed.
func TestScriptedNth(t *testing.T) {
	inj := NewInjector(&Plan{Seed: 1, Sites: map[Site]Trigger{
		SparkTask: {Nth: []int64{2, 5}, Attempts: 4},
	}})
	want := []int{0, 4, 0, 0, 4, 0}
	for i, w := range want {
		if got := inj.Next(SparkTask); got != w {
			t.Fatalf("call %d: fails=%d, want %d", i+1, got, w)
		}
	}
	if inj.Injected() != 2 {
		t.Fatalf("Injected=%d, want 2", inj.Injected())
	}
	if got := inj.Counts()[SparkTask]; got != 2 {
		t.Fatalf("Counts[SparkTask]=%d, want 2", got)
	}
}

// TestProbabilisticSingleAttempt: probability triggers fail only the first
// attempt (Next returns at most 1), so one retry always converges.
func TestProbabilisticSingleAttempt(t *testing.T) {
	inj := NewInjector(&Plan{Seed: 3, Sites: map[Site]Trigger{GPUAlloc: {Probability: 0.5}}})
	fired := 0
	for k := 0; k < 500; k++ {
		n := inj.Next(GPUAlloc)
		if n > 1 {
			t.Fatalf("probabilistic trigger returned %d consecutive failures", n)
		}
		fired += n
	}
	if fired == 0 || fired == 500 {
		t.Fatalf("p=0.5 over 500 calls fired %d times — hash is degenerate", fired)
	}
}

// TestChanceDistribution: the keyed hash is roughly uniform — a p=0.1 site
// fires close to 10% of the time over many calls and seeds.
func TestChanceDistribution(t *testing.T) {
	const calls, p = 2000, 0.1
	for _, seed := range []int64{1, 99, 12345} {
		hits := 0
		for n := uint64(1); n <= calls; n++ {
			if Hit(seed, SparkFetch, n, p) {
				hits++
			}
		}
		got := float64(hits) / calls
		if math.Abs(got-p) > 0.03 {
			t.Fatalf("seed %d: hit ratio %.3f, want ~%.2f", seed, got, p)
		}
	}
}

// TestForRequestIndependence: per-request plans derive distinct seeds per
// (ticket, attempt) but are stable for the same pair.
func TestForRequestIndependence(t *testing.T) {
	p := Default(11)
	a, b := p.ForRequest(3, 0), p.ForRequest(3, 0)
	if a.Seed != b.Seed {
		t.Fatal("same (ticket, attempt) must derive the same seed")
	}
	if p.ForRequest(3, 1).Seed == a.Seed || p.ForRequest(4, 0).Seed == a.Seed {
		t.Fatal("different tickets/attempts must derive different seeds")
	}
	// The derived plan keeps its triggers but must be an independent copy.
	a.Sites[GPUAlloc] = Trigger{Probability: 1}
	if p.Sites[GPUAlloc].Probability == 1 {
		t.Fatal("ForRequest must deep-copy Sites")
	}
}

// TestFireAt: stateless ticket-keyed decisions match the Trigger semantics.
func TestFireAt(t *testing.T) {
	p := &Plan{Seed: 5, Sites: map[Site]Trigger{
		ServeRequest: {Nth: []int64{7}, Attempts: 2},
	}}
	if !p.FireAt(ServeRequest, 7, 0) || !p.FireAt(ServeRequest, 7, 1) {
		t.Fatal("scripted call 7 must fail attempts 0 and 1")
	}
	if p.FireAt(ServeRequest, 7, 2) {
		t.Fatal("scripted call 7 must succeed on attempt 2")
	}
	if p.FireAt(ServeRequest, 8, 0) {
		t.Fatal("unscripted call must succeed")
	}
	if p.FireAt(GPUAlloc, 1, 0) {
		t.Fatal("unregistered site must never fire")
	}
}

// TestDrawStreamIndependent: Draw values are deterministic and do not
// perturb the failure stream.
func TestDrawStreamIndependent(t *testing.T) {
	plan := &Plan{Seed: 21, Sites: map[Site]Trigger{SparkExec: {Probability: 0.3}}}
	a, b := NewInjector(plan), NewInjector(plan)
	for k := 0; k < 40; k++ {
		if a.Draw(SparkExec) != b.Draw(SparkExec) {
			t.Fatal("Draw must replay identically")
		}
	}
	// b consumed 40 draws; its failure stream must still match a fresh one.
	c := NewInjector(plan)
	for k := 0; k < 40; k++ {
		if b.Next(SparkExec) != c.Next(SparkExec) {
			t.Fatal("draws must not perturb failure decisions")
		}
	}
}

func TestSiteNamesSorted(t *testing.T) {
	inj := NewInjector(Default(1))
	names := inj.SiteNames()
	if len(names) != 7 {
		t.Fatalf("want 7 sites, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("SiteNames not sorted: %v", names)
		}
	}
}
