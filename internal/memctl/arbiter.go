package memctl

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Pool is one managed memory region registered with the Arbiter. Pools
// keep their own mechanisms (the CP cache's MAKE_SPACE, the GPU
// manager's Algorithm 1, the block manager's partition eviction) but
// expose a uniform surface so the arbiter can reason about pressure
// jointly and drive the cross-backend demotion ladder.
//
// Pool methods are called under the owner's execution discipline: the
// runtime's pools are single-threaded on the driver, the serving layer's
// pools are concurrency-safe. The arbiter itself is safe for both.
type Pool interface {
	// Name identifies the pool in snapshots and counters.
	Name() string
	// Used returns the pool's resident bytes.
	Used() int64
	// Budget returns the pool's byte budget (device capacity, cache
	// budget, storage region size, or tenant share).
	Budget() int64
	// Victims returns up to max current eviction candidates in ascending
	// score order (cheapest to lose first) — the introspection surface
	// behind memphis-bench -mem and the arbiter tests.
	Victims(max int) []Victim
	// Evict releases room for need bytes inside the pool (dropping or
	// unpersisting victims), returning the bytes actually released.
	Evict(need int64) int64
	// Demote moves at least need bytes one rung down the tier ladder —
	// GPU pointers to the host cache, cached matrices to disk spill,
	// memory-and-disk blocks to disk — returning the bytes demoted.
	// Pools with no lower tier return 0.
	Demote(need int64) int64
}

// Victim is one scored eviction candidate, for monitoring and tests.
type Victim struct {
	Candidate
	Score float64
}

// PeakReporter is an optional Pool extension: pools that track a resident
// high-water mark expose it for snapshots (memphis-bench -mem peak-bytes
// column and the planner acceptance tests). Pools without it report their
// current Used as the peak.
type PeakReporter interface {
	// Peak returns the highest Used the pool has observed.
	Peak() int64
}

// Counters aggregates one pool's pressure activity. All fields are
// monotone; snapshots copy them atomically.
type Counters struct {
	// PressureEvents counts MakeSpace invocations against the pool.
	PressureEvents int64 `json:"pressure_events"`
	// Evictions/EvictedBytes count objects dropped (or unpersisted) with
	// no lower tier keeping the value.
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	// Demotions/DemotedBytes count objects moved down the ladder (device
	// to host, memory to disk) where the value stays reachable.
	Demotions    int64 `json:"demotions"`
	DemotedBytes int64 `json:"demoted_bytes"`
}

// PoolStats is one pool's snapshot row.
type PoolStats struct {
	Name     string  `json:"name"`
	Used     int64   `json:"used"`
	Budget   int64   `json:"budget"`
	Pressure float64 `json:"pressure"` // Used/Budget
	// PeakUsed is the pool's resident high-water mark when the pool
	// implements PeakReporter, else the Used at snapshot time.
	PeakUsed int64 `json:"peak_used"`
	Counters
}

// counters is the internal atomic form of Counters.
type counters struct {
	pressureEvents atomic.Int64
	evictions      atomic.Int64
	evictedBytes   atomic.Int64
	demotions      atomic.Int64
	demotedBytes   atomic.Int64
}

func (c *counters) snapshot() Counters {
	return Counters{
		PressureEvents: c.pressureEvents.Load(),
		Evictions:      c.evictions.Load(),
		EvictedBytes:   c.evictedBytes.Load(),
		Demotions:      c.demotions.Load(),
		DemotedBytes:   c.demotedBytes.Load(),
	}
}

// Arbiter is the single registry of memory pools. It owns the demotion
// ladder and the per-pool counters; the scoring function (Score) is
// shared by construction because every pool ranks candidates through it.
// Registration order is preserved in snapshots so output is stable.
type Arbiter struct {
	mu    sync.RWMutex
	pools []Pool
	stats map[string]*counters
}

// NewArbiter returns an empty arbiter.
func NewArbiter() *Arbiter {
	return &Arbiter{stats: make(map[string]*counters)}
}

// Register adds a pool. Registering a second pool under an existing name
// replaces the pool but keeps its counters (the serving layer re-attaches
// tenant pools across cache clears).
func (a *Arbiter) Register(p Pool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	name := p.Name()
	for i, q := range a.pools {
		if q.Name() == name {
			a.pools[i] = p
			return
		}
	}
	a.pools = append(a.pools, p)
	if a.stats[name] == nil {
		a.stats[name] = &counters{}
	}
}

// Pool returns the registered pool with the given name, or nil.
func (a *Arbiter) Pool(name string) Pool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, p := range a.pools {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// counter returns (creating on demand) the named pool's counters; it
// also serves pools that report activity before being registered.
func (a *Arbiter) counter(name string) *counters {
	a.mu.RLock()
	c := a.stats[name]
	a.mu.RUnlock()
	if c != nil {
		return c
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if c = a.stats[name]; c == nil {
		c = &counters{}
		a.stats[name] = c
	}
	return c
}

// NoteEviction records n objects (bytes total) evicted from the pool.
// Pools call this from their own eviction mechanisms so arbiter counters
// stay truthful even for evictions the arbiter did not initiate.
func (a *Arbiter) NoteEviction(pool string, n, bytes int64) {
	c := a.counter(pool)
	c.evictions.Add(n)
	c.evictedBytes.Add(bytes)
}

// NoteDemotion records n objects (bytes total) demoted down the ladder.
func (a *Arbiter) NoteDemotion(pool string, n, bytes int64) {
	c := a.counter(pool)
	c.demotions.Add(n)
	c.demotedBytes.Add(bytes)
}

// NotePressure records a pressure event (a MAKE_SPACE entry) against the
// pool without going through MakeSpace.
func (a *Arbiter) NotePressure(pool string) {
	a.counter(pool).pressureEvents.Add(1)
}

// Pressure returns the named pool's Used/Budget, or 0 if unregistered.
func (a *Arbiter) Pressure(name string) float64 {
	p := a.Pool(name)
	if p == nil {
		return 0
	}
	b := p.Budget()
	if b <= 0 {
		return 0
	}
	return float64(p.Used()) / float64(b)
}

// GlobalPressure returns total used over total budget across all pools —
// the joint signal that distinguishes "one tier is hot" (demote) from
// "the system is full" (evict).
func (a *Arbiter) GlobalPressure() float64 {
	used, budget := a.totals()
	if budget <= 0 {
		return 0
	}
	return float64(used) / float64(budget)
}

// GlobalHeadroom returns total unused budget bytes across all pools.
func (a *Arbiter) GlobalHeadroom() int64 {
	used, budget := a.totals()
	if h := budget - used; h > 0 {
		return h
	}
	return 0
}

func (a *Arbiter) totals() (used, budget int64) {
	// Copy the pool list under the lock: Register replaces slice elements
	// in place (same-name re-registration), so iterating the shared backing
	// array after releasing the lock would race with it. The pool method
	// calls still happen outside the lock — pools may call back into the
	// arbiter (NoteEviction and friends take it again).
	a.mu.RLock()
	pools := make([]Pool, len(a.pools))
	copy(pools, a.pools)
	a.mu.RUnlock()
	for _, p := range pools {
		used += p.Used()
		budget += p.Budget()
	}
	return used, budget
}

// MakeSpace is the arbiter-driven MAKE_SPACE: free room for need bytes
// in the named pool, preferring demotion down the tier ladder — which
// keeps values reachable for reuse — while the system globally has
// headroom to absorb the demoted bytes, and falling back to in-pool
// eviction otherwise. Returns the bytes released in the pool.
func (a *Arbiter) MakeSpace(name string, need int64) int64 {
	p := a.Pool(name)
	if p == nil || need <= 0 {
		return 0
	}
	a.counter(name).pressureEvents.Add(1)
	var freed int64
	// Demotion shifts bytes to a lower tier rather than destroying them;
	// under global pressure that only moves the problem, so demote only
	// while some pool can still absorb the bytes. Pools report the
	// resulting eviction/demotion counts themselves via NoteEviction and
	// NoteDemotion, so self-initiated pressure is counted identically.
	if a.GlobalHeadroom() > 0 {
		freed = p.Demote(need)
	}
	if freed < need {
		if e := p.Evict(need - freed); e > 0 {
			freed += e
		}
	}
	return freed
}

// Snapshot returns per-pool stats in registration order.
func (a *Arbiter) Snapshot() []PoolStats {
	a.mu.RLock()
	pools := make([]Pool, len(a.pools))
	copy(pools, a.pools)
	extra := make([]string, 0)
	seen := make(map[string]bool, len(pools))
	for _, p := range pools {
		seen[p.Name()] = true
	}
	for name := range a.stats {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	a.mu.RUnlock()
	out := make([]PoolStats, 0, len(pools)+len(extra))
	for _, p := range pools {
		st := PoolStats{Name: p.Name(), Used: p.Used(), Budget: p.Budget(),
			Counters: a.counter(p.Name()).snapshot()}
		if st.Budget > 0 {
			st.Pressure = float64(st.Used) / float64(st.Budget)
		}
		if pr, ok := p.(PeakReporter); ok {
			st.PeakUsed = pr.Peak()
		} else {
			st.PeakUsed = st.Used
		}
		out = append(out, st)
	}
	// Counter-only rows (activity noted before registration) sort last.
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, PoolStats{Name: name, Counters: a.counter(name).snapshot()})
	}
	return out
}
