package memctl

import (
	"fmt"
	"sync"
	"testing"
)

// TestArbiterTotalsRegisterRace is the -race regression for the pool-list
// read path: totals() (behind GlobalPressure/GlobalHeadroom, which
// MakeSpace consults on every pressure event) must not iterate the shared
// pools slice unlocked while Register replaces elements in place. The
// serving layer hits exactly this interleaving when a publish-driven
// eviction runs concurrently with a new tenant's first touch
// re-registering its pool.
func TestArbiterTotalsRegisterRace(t *testing.T) {
	a := NewArbiter()
	for i := 0; i < 8; i++ {
		a.Register(&fakePool{name: fmt.Sprintf("pool%d", i), used: int64(i), budget: 100})
	}
	stop := make(chan struct{})
	var registrar sync.WaitGroup
	registrar.Add(1)
	go func() {
		defer registrar.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			// Same-name registration replaces the slice element in place —
			// the write side of the race.
			a.Register(&fakePool{name: fmt.Sprintf("pool%d", n%8), used: int64(n), budget: 100})
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				a.GlobalPressure()
				a.GlobalHeadroom()
				a.MakeSpace("pool3", 10)
				a.Snapshot()
			}
		}()
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				a.NoteEviction(fmt.Sprintf("pool%d", i%8), 1, 10)
				a.NoteDemotion(fmt.Sprintf("pool%d", i%8), 1, 10)
			}
		}()
	}
	readers.Wait()
	close(stop)
	registrar.Wait()
}
