// Package memctl is MEMPHIS's unified cross-backend memory arbiter: one
// victim-scoring function and one pool registry shared by every memory
// region in the system — the driver's lineage cache (CP), the reuse share
// of Spark cluster storage, the Spark block manager's partition region,
// the GPU device pool, and the serving layer's per-tenant shared-cache
// shares. The paper's holistic-memory-management claim (§4) is that these
// regions must be reasoned about jointly rather than by isolated
// evictors; this package is where that joint reasoning lives.
//
// Scoring. Every backend ranks eviction candidates with Score, a single
// hybrid of four normalized terms — cost-per-byte ratio, recency, DAG
// height, and raw compute cost — weighted per pool:
//
//	score(o) = w_r·(freq(o)·c(o)/s(o))/maxRatio + w_a·T_a(o)
//	         + w_h·1/h(o) + w_c·c(o)/maxCost
//
// The driver cache uses LIMA's hybrid (ratio + recency), Spark reuse
// RDDs use Eq. (1) ((r_h+r_m+r_j)·c/s, unnormalized), the GPU manager
// uses Eq. (2) (recency + 1/height + cost), and the block manager's LRU
// is the degenerate recency-only instance. Lower scores evict first.
//
// Arbitration. Pools register with an Arbiter that owns the cross-backend
// demotion ladder (GPU → host cache → disk spill; Spark block → disk or
// drop-for-lineage-recompute) and per-pool pressure/eviction/demotion
// counters. MakeSpace prefers demotion — which keeps the value reachable
// in a lower tier — while the system as a whole has headroom, and falls
// back to eviction when global pressure leaves nowhere to demote to.
package memctl

// Candidate is the backend-independent description of one eviction
// candidate: the metadata every pool already tracks per object, lifted
// into a common shape so a single scoring function can rank them.
type Candidate struct {
	Hits   int64 // r_h: successful reuses
	Misses int64 // r_m: touches while a placeholder
	Jobs   int64 // r_j: jobs that referenced the object (Spark)

	ComputeCost float64 // c(o): estimated compute cost, seconds
	Size        int64   // s(o): object size, bytes
	Height      int     // h(o): producing lineage-DAG height
	LastAccess  float64 // T_a(o): virtual time (or sequence) of last use

	// Lifetime is the compile-time liveness class stamped by the memory
	// planner's hints (internal/memplan); LifeUnknown when no plan covers
	// the object.
	Lifetime Lifetime
}

// Lifetime is the planner's static liveness classification of a cached
// object relative to the currently executing instruction stream. Victim
// selection orders groups before scores: dead objects evict first,
// soon-reused objects are protected, and the hybrid Score breaks ties
// within a group (Deca-style lifetime-grouped eviction).
type Lifetime int

const (
	// LifeDead marks an object with no further use in the current plan
	// (a block-local temporary past its last-use point): evict first.
	LifeDead Lifetime = iota - 1
	// LifeUnknown is the zero value: no plan information, rank by score
	// alone (the pre-planner behavior).
	LifeUnknown
	// LifeSoon marks an object the plan reads again within the protection
	// window: evict last.
	LifeSoon
)

func (l Lifetime) String() string {
	switch l {
	case LifeDead:
		return "dead"
	case LifeSoon:
		return "soon"
	default:
		return "unknown"
	}
}

// PreferVictim reports whether candidate a is a strictly better victim
// than b under lifetime-grouped selection: the lower lifetime group wins
// (dead < unknown < soon), and within a group the lower hybrid score
// wins. This is the single comparison the planner-aware pools share.
func PreferVictim(lifeA Lifetime, scoreA float64, lifeB Lifetime, scoreB float64) bool {
	if lifeA != lifeB {
		return lifeA < lifeB
	}
	return scoreA < scoreB
}

// Weights selects which score terms a pool uses and how strongly. The
// zero value scores everything 0; use one of the preset instances.
type Weights struct {
	// CostSize weights the normalized cost-per-byte ratio
	// freq·c/s / maxRatio (LIMA's Cost&Size term).
	CostSize float64
	// EqOne switches the ratio's frequency factor from the driver's
	// hit-weighted r_h+1 to Spark Eq. (1)'s r_h+r_m+r_j.
	EqOne bool
	// Recency weights the normalized last-access time T_a = last/now.
	Recency float64
	// Height weights the inverse lineage height 1/h (Eq. 2: deep
	// intermediates are cheap to lose, input-pipeline roots are not).
	Height float64
	// Cost weights the normalized compute cost c/maxCost (Eq. 2).
	Cost float64
}

// Preset weight vectors reproducing each backend's historical policy as
// an instance of the one shared formula.
var (
	// CPWeights is the driver cache's hybrid of Cost&Size and recency.
	CPWeights = Weights{CostSize: 1, Recency: 1}
	// SparkWeights is Eq. (1): (r_h+r_m+r_j)·c/s. Pass Norms.MaxRatio=1
	// to keep the historical unnormalized ordering.
	SparkWeights = Weights{CostSize: 1, EqOne: true}
	// GPUWeights is Eq. (2): T_a + 1/h + c/maxCost.
	GPUWeights = Weights{Recency: 1, Height: 1, Cost: 1}
	// LRUWeights is recency-only: with a monotone touch sequence as
	// LastAccess, the minimum score is exactly the LRU victim (the block
	// manager's partition policy, §2.2).
	LRUWeights = Weights{Recency: 1}
)

// Norms carries the pool-wide normalization constants of one victim
// selection pass. Non-positive fields disable their term (matching the
// historical guards: an empty pool has no max ratio, time zero has no
// recency ordering).
type Norms struct {
	MaxRatio float64 // max freq·c/s across candidates (1 = unnormalized)
	MaxCost  float64 // running max compute cost (GPU manager)
	Now      float64 // current virtual time or sequence counter
}

// Ratio returns the cost-per-byte ratio freq·c/s of a candidate: the
// Cost&Size numerator with the hit-weighted frequency r_h+1, or Spark
// Eq. (1)'s r_h+r_m+r_j when eqOne is set. Sizes are clamped to one byte
// so zero-sized metadata objects rank as maximally cheap to keep.
func Ratio(c Candidate, eqOne bool) float64 {
	s := float64(c.Size)
	if s <= 0 {
		s = 1
	}
	freq := float64(c.Hits + 1)
	if eqOne {
		freq = float64(c.Hits + c.Misses + c.Jobs)
	}
	return freq * c.ComputeCost / s
}

// MaxRatio returns the largest Ratio across candidates — the CostSize
// normalizer of one selection pass. It is order-independent, so callers
// may feed candidates from map iteration.
func MaxRatio(cands []Candidate, eqOne bool) float64 {
	max := 0.0
	for _, c := range cands {
		if r := Ratio(c, eqOne); r > max {
			max = r
		}
	}
	return max
}

// Score is the unified victim score; the minimum across a pool's
// candidates is evicted (or recycled, or demoted) first. Terms are
// accumulated in a fixed order (ratio, recency, height, cost) so a pool
// using any weight subset reproduces its historical floating-point
// result bit for bit.
func Score(c Candidate, w Weights, n Norms) float64 {
	s := 0.0
	if w.CostSize != 0 && n.MaxRatio > 0 {
		s += w.CostSize * (Ratio(c, w.EqOne) / n.MaxRatio)
	}
	if w.Recency != 0 && n.Now > 0 {
		s += w.Recency * (c.LastAccess / n.Now)
	}
	if w.Height != 0 {
		h := float64(c.Height)
		if h < 1 {
			h = 1
		}
		s += w.Height * (1 / h)
	}
	if w.Cost != 0 && n.MaxCost > 0 {
		s += w.Cost * (c.ComputeCost / n.MaxCost)
	}
	return s
}
