package memctl

import (
	"fmt"
	"sync"
	"testing"
)

// fakePool is a scriptable Pool for arbiter tests.
type fakePool struct {
	name    string
	used    int64
	budget  int64
	demoted int64 // bytes Demote will claim per call
	evicted int64 // bytes Evict will claim per call
	mu      sync.Mutex
	demotes []int64
	evicts  []int64
}

func (p *fakePool) Name() string  { return p.name }
func (p *fakePool) Used() int64   { return p.used }
func (p *fakePool) Budget() int64 { return p.budget }
func (p *fakePool) Victims(max int) []Victim {
	return nil
}
func (p *fakePool) Demote(need int64) int64 {
	p.mu.Lock()
	p.demotes = append(p.demotes, need)
	p.mu.Unlock()
	return p.demoted
}
func (p *fakePool) Evict(need int64) int64 {
	p.mu.Lock()
	p.evicts = append(p.evicts, need)
	p.mu.Unlock()
	return p.evicted
}

func TestMakeSpaceDemotesFirstWithHeadroom(t *testing.T) {
	a := NewArbiter()
	gpu := &fakePool{name: "gpu", used: 100, budget: 100, demoted: 60, evicted: 40}
	host := &fakePool{name: "cp", used: 10, budget: 1000}
	a.Register(gpu)
	a.Register(host)

	if freed := a.MakeSpace("gpu", 100); freed != 100 {
		t.Fatalf("freed=%d want 100", freed)
	}
	if len(gpu.demotes) != 1 || gpu.demotes[0] != 100 {
		t.Fatalf("demotes=%v want [100]", gpu.demotes)
	}
	if len(gpu.evicts) != 1 || gpu.evicts[0] != 40 {
		t.Fatalf("evicts=%v want [40] (remainder after 60 demoted)", gpu.evicts)
	}
	snap := a.Snapshot()
	if snap[0].Name != "gpu" || snap[1].Name != "cp" {
		t.Fatalf("snapshot order %v", []string{snap[0].Name, snap[1].Name})
	}
	if g := snap[0]; g.PressureEvents != 1 {
		t.Fatalf("gpu counters %+v", g.Counters)
	}
}

func TestMakeSpaceSkipsDemotionWithoutHeadroom(t *testing.T) {
	a := NewArbiter()
	gpu := &fakePool{name: "gpu", used: 100, budget: 100, demoted: 60, evicted: 100}
	full := &fakePool{name: "cp", used: 1000, budget: 1000}
	a.Register(gpu)
	a.Register(full)

	if freed := a.MakeSpace("gpu", 80); freed != 100 {
		t.Fatalf("freed=%d want 100 (eviction only)", freed)
	}
	if len(gpu.demotes) != 0 {
		t.Fatalf("demotes=%v want none: no global headroom", gpu.demotes)
	}
	if len(gpu.evicts) != 1 || gpu.evicts[0] != 80 {
		t.Fatalf("evicts=%v want [80]", gpu.evicts)
	}
}

func TestMakeSpaceUnknownPool(t *testing.T) {
	a := NewArbiter()
	if freed := a.MakeSpace("nope", 10); freed != 0 {
		t.Fatalf("freed=%d want 0", freed)
	}
}

func TestPressureAndHeadroom(t *testing.T) {
	a := NewArbiter()
	a.Register(&fakePool{name: "a", used: 50, budget: 100})
	a.Register(&fakePool{name: "b", used: 150, budget: 300})
	if got := a.Pressure("a"); got != 0.5 {
		t.Fatalf("Pressure(a)=%v", got)
	}
	if got := a.GlobalPressure(); got != 0.5 {
		t.Fatalf("GlobalPressure=%v", got)
	}
	if got := a.GlobalHeadroom(); got != 200 {
		t.Fatalf("GlobalHeadroom=%v", got)
	}
	if got := a.Pressure("missing"); got != 0 {
		t.Fatalf("Pressure(missing)=%v", got)
	}
}

func TestRegisterReplaceKeepsCounters(t *testing.T) {
	a := NewArbiter()
	a.Register(&fakePool{name: "tenant", used: 1, budget: 10})
	a.NoteEviction("tenant", 3, 300)
	a.Register(&fakePool{name: "tenant", used: 2, budget: 10})
	snap := a.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	if snap[0].Used != 2 || snap[0].Evictions != 3 || snap[0].EvictedBytes != 300 {
		t.Fatalf("replace lost state: %+v", snap[0])
	}
}

func TestNoteBeforeRegister(t *testing.T) {
	a := NewArbiter()
	a.NoteDemotion("early", 1, 42)
	a.NotePressure("early")
	snap := a.Snapshot()
	if len(snap) != 1 || snap[0].Name != "early" {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap[0].Demotions != 1 || snap[0].DemotedBytes != 42 || snap[0].PressureEvents != 1 {
		t.Fatalf("counters %+v", snap[0].Counters)
	}
}

// TestArbiterConcurrent is the race-soak target: concurrent registration,
// counter updates, MakeSpace, and snapshots must be data-race free
// (the serving layer drives the arbiter from worker goroutines).
func TestArbiterConcurrent(t *testing.T) {
	a := NewArbiter()
	for i := 0; i < 4; i++ {
		a.Register(&fakePool{name: fmt.Sprintf("p%d", i), used: int64(i * 10), budget: 100, evicted: 5})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("p%d", g%4)
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					a.MakeSpace(name, 10)
				case 1:
					a.NoteEviction(name, 1, 10)
				case 2:
					a.NoteDemotion(name, 1, 10)
				case 3:
					_ = a.Snapshot()
				case 4:
					_ = a.GlobalPressure()
					_ = a.Pressure(name)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := a.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	var evictions int64
	for _, s := range snap {
		evictions += s.Evictions
	}
	// 8 goroutines × 40 NoteEviction calls each.
	if evictions != 320 {
		t.Fatalf("evictions=%d want 320", evictions)
	}
}
