package memctl

import (
	"math"
	"sort"
	"testing"
)

// fixedEntries is a shared candidate set exercising every score term:
// varying hit counts, compute costs, sizes, heights, and access times.
var fixedEntries = []Candidate{
	{Hits: 0, Misses: 1, Jobs: 1, ComputeCost: 0.010, Size: 1 << 20, Height: 1, LastAccess: 0.10},
	{Hits: 3, Misses: 1, Jobs: 2, ComputeCost: 0.002, Size: 4 << 10, Height: 4, LastAccess: 0.90},
	{Hits: 1, Misses: 0, Jobs: 1, ComputeCost: 0.500, Size: 8 << 20, Height: 2, LastAccess: 0.50},
	{Hits: 9, Misses: 2, Jobs: 4, ComputeCost: 0.050, Size: 64 << 10, Height: 8, LastAccess: 0.95},
	{Hits: 0, Misses: 0, Jobs: 0, ComputeCost: 0.0001, Size: 0, Height: 0, LastAccess: 0.01},
	{Hits: 2, Misses: 1, Jobs: 1, ComputeCost: 0.020, Size: 1 << 10, Height: 16, LastAccess: 0.70},
}

// ordering ranks the fixed entries ascending by Score (eviction order:
// lowest score goes first), breaking exact ties by index.
func ordering(w Weights, n Norms) []int {
	idx := make([]int, len(fixedEntries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return Score(fixedEntries[idx[a]], w, n) < Score(fixedEntries[idx[b]], w, n)
	})
	return idx
}

// TestScoreOrderingPinned pins the exact eviction ordering each backend's
// weight preset produces on the fixed entry set. This is the satellite-1
// guard: any change to Score's formula, term order, or normalization that
// alters victim selection for any backend must show up here.
func TestScoreOrderingPinned(t *testing.T) {
	now := 1.0
	cases := []struct {
		name string
		w    Weights
		n    Norms
		want []int
	}{
		// Driver cache hybrid: ratio/maxRatio + recency. Entry 4 (zero
		// size, clamped to one byte) holds the max ratio so it ranks late
		// despite being cold; entry 0 (big, cold, cheap) evicts first.
		{"cp", CPWeights, Norms{MaxRatio: maxRatioOf(false), Now: now}, []int{0, 2, 1, 4, 3, 5}},
		// Spark Eq. (1), unnormalized: pure (r_h+r_m+r_j)·c/s ordering.
		{"spark", SparkWeights, Norms{MaxRatio: 1}, []int{4, 0, 2, 1, 3, 5}},
		// GPU Eq. (2): recency + 1/height + cost. The deep (h=16) cheap
		// entry 5 evicts first; the max-cost entry 2 survives longest.
		{"gpu", GPUWeights, Norms{Now: now, MaxCost: 0.5}, []int{5, 4, 0, 1, 3, 2}},
		// Block manager LRU: recency only — pure access-time order.
		{"lru", LRUWeights, Norms{Now: now}, []int{4, 0, 2, 5, 1, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ordering(tc.w, tc.n)
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("ordering = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func maxRatioOf(eqOne bool) float64 {
	return MaxRatio(fixedEntries, eqOne)
}

// TestScoreBitExactCP verifies Score with CP weights reproduces the
// historical cpScore formula bit for bit: ratio/maxRatio + last/now with
// left-to-right accumulation.
func TestScoreBitExactCP(t *testing.T) {
	now := 0.734
	maxRatio := maxRatioOf(false)
	for i, c := range fixedEntries {
		s := float64(c.Size)
		if s <= 0 {
			s = 1
		}
		ratio := float64(c.Hits+1) * c.ComputeCost / s
		want := 0.0
		if maxRatio > 0 {
			want += ratio / maxRatio
		}
		if now > 0 {
			want += c.LastAccess / now
		}
		got := Score(c, CPWeights, Norms{MaxRatio: maxRatio, Now: now})
		if got != want {
			t.Fatalf("entry %d: Score=%v historical=%v (diff %g)", i, got, want, got-want)
		}
	}
}

// TestScoreBitExactSpark verifies Spark Eq. (1) with MaxRatio=1 keeps the
// raw unnormalized ratio exactly (x/1 == x in IEEE 754).
func TestScoreBitExactSpark(t *testing.T) {
	for i, c := range fixedEntries {
		s := float64(c.Size)
		if s <= 0 {
			s = 1
		}
		want := float64(c.Hits+c.Misses+c.Jobs) * c.ComputeCost / s
		got := Score(c, SparkWeights, Norms{MaxRatio: 1})
		if got != want {
			t.Fatalf("entry %d: Score=%v Eq.(1)=%v", i, got, want)
		}
	}
}

// TestScoreBitExactGPU verifies Score with GPU weights reproduces the
// historical manager score: ta + 1/h + c with the same guards.
func TestScoreBitExactGPU(t *testing.T) {
	now := 0.123
	maxCost := 0.5
	for i, c := range fixedEntries {
		ta := 0.0
		if now > 0 {
			ta = c.LastAccess / now
		}
		h := float64(c.Height)
		if h < 1 {
			h = 1
		}
		cc := 0.0
		if maxCost > 0 {
			cc = c.ComputeCost / maxCost
		}
		want := ta + 1/h + cc
		got := Score(c, GPUWeights, Norms{Now: now, MaxCost: maxCost})
		if got != want {
			t.Fatalf("entry %d: Score=%v historical=%v", i, got, want)
		}
	}
}

// TestScoreZeroGuards pins the degenerate-norm behavior the historical
// evictors relied on: no normalizer → term disabled, not NaN/Inf.
func TestScoreZeroGuards(t *testing.T) {
	c := Candidate{Hits: 1, ComputeCost: 0.1, Size: 100, Height: 2, LastAccess: 0.5}
	if got := Score(c, CPWeights, Norms{}); got != 0 {
		t.Fatalf("all-zero norms: got %v, want 0", got)
	}
	if got := Score(c, GPUWeights, Norms{}); got != 0.5 {
		t.Fatalf("GPU with zero now/maxCost keeps only 1/h: got %v, want 0.5", got)
	}
	if got := Score(Candidate{}, GPUWeights, Norms{Now: 1, MaxCost: 1}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("zero candidate must stay finite, got %v", got)
	}
}

// TestRatioZeroSizeClamp pins the one-byte clamp for zero-sized objects.
func TestRatioZeroSizeClamp(t *testing.T) {
	c := Candidate{Hits: 1, ComputeCost: 0.25, Size: 0}
	if got, want := Ratio(c, false), 2*0.25; got != want {
		t.Fatalf("Ratio=%v want %v", got, want)
	}
}

// TestMaxRatioOrderIndependent shuffling candidates must not change the
// normalizer (it feeds from map iteration in the CP cache).
func TestMaxRatioOrderIndependent(t *testing.T) {
	rev := make([]Candidate, len(fixedEntries))
	for i, c := range fixedEntries {
		rev[len(fixedEntries)-1-i] = c
	}
	if a, b := MaxRatio(fixedEntries, false), MaxRatio(rev, false); a != b {
		t.Fatalf("MaxRatio order-dependent: %v vs %v", a, b)
	}
}
