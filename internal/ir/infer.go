package ir

import "fmt"

// Shape is a matrix size estimate; scalars are 1x1.
type Shape struct{ Rows, Cols int }

// Bytes returns the dense size estimate.
func (s Shape) Bytes() int64 { return int64(s.Rows) * int64(s.Cols) * 8 }

// Infer computes the output shape of a node given the shapes of program
// variables. Unknown variables default to 1x1 (scalars). The inference is
// deliberately worst-case where the true size is data-dependent
// (e.g. undersampling), matching SystemDS's conservative estimates.
func Infer(n *Node, env map[string]Shape) Shape {
	sh := func(i int) Shape { return Infer(n.Inputs[i], env) }
	switch n.Op {
	case "var":
		if s, ok := env[n.Attr("name")]; ok {
			return s
		}
		return Shape{1, 1}
	case "lit":
		return Shape{1, 1}
	case "rand", "randn":
		return Shape{n.AttrInt("rows", 1), n.AttrInt("cols", 1)}
	case "t":
		a := sh(0)
		return Shape{a.Cols, a.Rows}
	case "mm":
		return Shape{sh(0).Rows, sh(1).Cols}
	case "tsmm":
		a := sh(0)
		return Shape{a.Cols, a.Cols}
	case "cpmm":
		return Shape{sh(0).Cols, sh(1).Cols}
	case "solve":
		return Shape{sh(0).Cols, sh(1).Cols}
	case "+", "-", "*", "/", "min", "max", ">", "<":
		a, b := sh(0), sh(1)
		if a.Rows*a.Cols >= b.Rows*b.Cols {
			return a
		}
		return b
	case FusedOp:
		// A fused elementwise chain has the broadcast-maximal input shape,
		// the same rule applied transitively over its constituent steps.
		best := sh(0)
		for i := 1; i < len(n.Inputs); i++ {
			if b := sh(i); b.Rows*b.Cols > best.Rows*best.Cols {
				best = b
			}
		}
		return best
	case "exp", "log", "sqrt", "abs", "sigmoid", "relu", "softmax", "pow",
		"imputeMean", "imputeMode", "outlierIQR", "scale", "minmax",
		"recode", "bin", "replaceNaN", "dropout":
		return sh(0)
	case "dropoutv":
		return sh(0)
	case "chkpoint":
		return sh(0)
	case "usample":
		return sh(0) // worst case: nothing removed
	case "sum", "mean", "nrow", "ncol":
		return Shape{1, 1}
	case "rowSums", "rowMaxIdx":
		return Shape{sh(0).Rows, 1}
	case "colSums", "colMeans", "colVars", "colMins", "colMaxs":
		return Shape{1, sh(0).Cols}
	case "cbind":
		a, b := sh(0), sh(1)
		return Shape{a.Rows, a.Cols + b.Cols}
	case "rbind":
		a, b := sh(0), sh(1)
		return Shape{a.Rows + b.Rows, a.Cols}
	case "diag":
		a := sh(0)
		if a.Cols == 1 {
			return Shape{a.Rows, a.Rows}
		}
		n := a.Rows
		if a.Cols < n {
			n = a.Cols
		}
		return Shape{n, 1}
	case "slice":
		a := sh(0)
		r0, r1 := n.AttrInt("r0", 0), n.AttrInt("r1", -1)
		c0, c1 := n.AttrInt("c0", 0), n.AttrInt("c1", -1)
		if r1 < 0 {
			r1 = a.Rows
		}
		if c1 < 0 {
			c1 = a.Cols
		}
		return Shape{r1 - r0, c1 - c0}
	case "sliceRows":
		return Shape{n.AttrInt("n", 1), sh(0).Cols}
	case "onehotf":
		a := sh(0)
		return Shape{a.Rows, a.Cols * n.AttrInt("domain", 10)}
	case "onehot":
		a := sh(0)
		// Worst case ~10 categories per column (refined at runtime).
		return Shape{a.Rows, a.Cols * 10}
	case "pca":
		return Shape{sh(0).Rows, n.AttrInt("k", 1)}
	case "cleanPCASplit":
		return Shape{sh(0).Rows, n.AttrInt("k", 8) + 1}
	case "conv2d":
		x := sh(0)
		cOut := sh(1).Rows
		h, w := n.AttrInt("h", 1), n.AttrInt("w", 1)
		kh, kw := n.AttrInt("kh", 1), n.AttrInt("kw", 1)
		stride, pad := n.AttrInt("stride", 1), n.AttrInt("pad", 0)
		outH := (h+2*pad-kh)/stride + 1
		outW := (w+2*pad-kw)/stride + 1
		return Shape{x.Rows, cOut * outH * outW}
	case "maxpool":
		x := sh(0)
		c := n.AttrInt("c", 1)
		h, w := n.AttrInt("h", 1), n.AttrInt("w", 1)
		ph, pw := n.AttrInt("ph", 1), n.AttrInt("pw", 1)
		stride := n.AttrInt("stride", 1)
		outH := (h-ph)/stride + 1
		outW := (w-pw)/stride + 1
		return Shape{x.Rows, c * outH * outW}
	case "call":
		// Calls are resolved by the runtime; shape unknown here.
		return Shape{1, 1}
	default:
		panic(fmt.Sprintf("ir: no shape rule for op %q", n.Op))
	}
}
