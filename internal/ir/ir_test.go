package ir

import (
	"testing"
	"testing/quick"
)

func TestNodeAttrs(t *testing.T) {
	n := NewNode("x").WithAttr("k", "7").WithAttr("f", "2.5")
	if n.Attr("k") != "7" || n.Attr("missing") != "" {
		t.Fatal("Attr wrong")
	}
	if n.AttrInt("k", 0) != 7 || n.AttrInt("missing", 3) != 3 || n.AttrInt("f", 9) != 9 {
		t.Fatal("AttrInt wrong")
	}
	if n.AttrFloat("f", 0) != 2.5 || n.AttrFloat("missing", 1.5) != 1.5 {
		t.Fatal("AttrFloat wrong")
	}
}

func TestConstructorsCarryParameters(t *testing.T) {
	r := Rand(3, 4, -1, 2, 0.5, 99)
	if r.AttrInt("rows", 0) != 3 || r.AttrInt("cols", 0) != 4 ||
		r.AttrFloat("sparsity", 0) != 0.5 || r.Attr("seed") != "99" {
		t.Fatalf("Rand attrs = %v", r.Attrs)
	}
	c := Conv2D(Var("x"), Var("w"), 3, 8, 8, 5, 5, 2, 1)
	if c.AttrInt("cin", 0) != 3 || c.AttrInt("stride", 0) != 2 || c.AttrInt("pad", 0) != 1 {
		t.Fatalf("Conv2D attrs = %v", c.Attrs)
	}
	d := Dropout(Var("x"), 0.3, 7)
	if d.Attr("p") != "0.3" || d.Attr("seed") != "7" {
		t.Fatalf("Dropout attrs = %v", d.Attrs)
	}
}

func TestProgramDefineRejectsDuplicates(t *testing.T) {
	p := NewProgram()
	p.Define(&Function{Name: "f", Returns: []string{"r"}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate function")
		}
	}()
	p.Define(&Function{Name: "f", Returns: []string{"r"}})
}

func TestWalkVisitsNestedBlocks(t *testing.T) {
	inner := BB(Assign("a", Lit(1)))
	loop := ForRange("i", 2, inner)
	cond := If(Lt(Var("a"), Lit(3)), []Block{BB(Assign("b", Lit(2)))}, []Block{loop})
	var n int
	Walk([]Block{cond}, func(Block) { n++ })
	if n != 4 { // if, then-bb, else-for, inner-bb
		t.Fatalf("visited %d blocks, want 4", n)
	}
}

func TestVarsRead(t *testing.T) {
	expr := Add(MatMul(Var("X"), Var("w")), Mul(Var("X"), Lit(2)))
	got := map[string]struct{}{}
	VarsRead(expr, got)
	if len(got) != 2 {
		t.Fatalf("VarsRead = %v", got)
	}
	if _, ok := got["X"]; !ok {
		t.Fatal("X not read")
	}
}

func TestDependsOnTransitive(t *testing.T) {
	stmts := []Stmt{
		Assign("a", Mul(Var("X"), Var("i"))), // depends on loop var i
		Assign("b", Exp(Var("a"))),           // transitively dependent
		Assign("c", Scale(Var("X"))),         // independent
	}
	loopVars := map[string]struct{}{"i": {}}
	if !DependsOn(stmts, 0, loopVars) || !DependsOn(stmts, 1, loopVars) {
		t.Fatal("direct/transitive dependence missed")
	}
	if DependsOn(stmts, 2, loopVars) {
		t.Fatal("independent statement flagged")
	}
}

func TestInferCoreRules(t *testing.T) {
	env := map[string]Shape{
		"X": {Rows: 100, Cols: 8},
		"W": {Rows: 8, Cols: 4},
	}
	cases := []struct {
		node *Node
		want Shape
	}{
		{MatMul(Var("X"), Var("W")), Shape{100, 4}},
		{TSMM(Var("X")), Shape{8, 8}},
		{T(Var("X")), Shape{8, 100}},
		{Add(Var("X"), Lit(1)), Shape{100, 8}},
		{ColSums(Var("X")), Shape{1, 8}},
		{RowSums(Var("X")), Shape{100, 1}},
		{Sum(Var("X")), Shape{1, 1}},
		{CBind(Var("X"), Var("X")), Shape{100, 16}},
		{RBind(Var("X"), Var("X")), Shape{200, 8}},
		{Slice(Var("X"), 10, 20, 2, -1), Shape{10, 6}},
		{SliceRowsVar(Var("X"), Var("i"), 16), Shape{16, 8}},
		{OneHotFixed(Var("X"), 5), Shape{100, 40}},
		{PCA(Var("X"), 3, 1), Shape{100, 3}},
		{Solve(TSMM(Var("X")), ColSums(Var("X"))), Shape{8, 8}},
	}
	for i, c := range cases {
		if got := Infer(c.node, env); got != c.want {
			t.Errorf("case %d (%s): got %+v, want %+v", i, c.node.Op, got, c.want)
		}
	}
}

func TestInferConvAndPool(t *testing.T) {
	env := map[string]Shape{
		"x": {Rows: 4, Cols: 3 * 8 * 8},
		"w": {Rows: 16, Cols: 3 * 3 * 3},
	}
	conv := Conv2D(Var("x"), Var("w"), 3, 8, 8, 3, 3, 1, 1)
	if got := Infer(conv, env); got != (Shape{4, 16 * 8 * 8}) {
		t.Fatalf("conv shape = %+v", got)
	}
	env["c"] = Shape{Rows: 4, Cols: 16 * 8 * 8}
	pool := MaxPool(Var("c"), 16, 8, 8, 2, 2, 2)
	if got := Infer(pool, env); got != (Shape{4, 16 * 4 * 4}) {
		t.Fatalf("pool shape = %+v", got)
	}
}

func TestInferUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Infer(NewNode("definitely-not-an-op"), nil)
}

func TestShapeBytes(t *testing.T) {
	if (Shape{Rows: 10, Cols: 4}).Bytes() != 320 {
		t.Fatal("Bytes wrong")
	}
}

// Property: elementwise binary shapes are the larger operand's shape.
func TestInferBinaryBroadcastProperty(t *testing.T) {
	f := func(r1, c1, r2, c2 uint8) bool {
		a := Shape{int(r1%16) + 1, int(c1%16) + 1}
		b := Shape{int(r2%16) + 1, int(c2%16) + 1}
		env := map[string]Shape{"a": a, "b": b}
		got := Infer(Add(Var("a"), Var("b")), env)
		want := a
		if b.Rows*b.Cols > a.Rows*a.Cols {
			want = b
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
