package ir

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Fingerprint returns a structural hash of the program covering every
// block, statement, operator, and attribute, plus the raw source text when
// present. It is the program-identity component of the serving layer's
// compile-cache key: two programs with equal fingerprints compile to the
// same instruction streams given the same input shapes and compiler
// configuration.
//
// Shared subexpressions (DAG nodes referenced from several statements) are
// hashed once and referenced by a memoized ID thereafter, so fingerprinting
// is linear in program size and a diamond-shaped DAG does not collide with
// the equivalent tree.
func (p *Program) Fingerprint() uint64 {
	h := fnv.New64a()
	if p.Source != "" {
		// Raw text keys maximally conservatively: any textual difference
		// (including whitespace) yields a distinct program key.
		fmt.Fprintf(h, "src:%d:", len(p.Source))
		h.Write([]byte(p.Source))
		return h.Sum64()
	}
	fp := &fingerprinter{h: h, ids: make(map[*Node]int)}
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := p.Funcs[name]
		fmt.Fprintf(h, "fn:%s(%v)->(%v):det=%v{", f.Name, f.Params, f.Returns, f.Deterministic)
		fp.blocks(f.Body)
		h.Write([]byte{'}'})
	}
	h.Write([]byte("main{"))
	fp.blocks(p.Main)
	h.Write([]byte{'}'})
	return h.Sum64()
}

// FingerprintBlock returns a structural hash of one block (statements,
// operators, attributes, reuse-parameter headers, nested bodies), with the
// same DAG-memoized node identity as Program.Fingerprint. It is the
// per-block component of the serving layer's compile-cache key.
func FingerprintBlock(b Block) uint64 {
	h := fnv.New64a()
	fp := &fingerprinter{h: h, ids: make(map[*Node]int)}
	fp.blocks([]Block{b})
	return h.Sum64()
}

type fingerprinter struct {
	h    interface{ Write([]byte) (int, error) }
	ids  map[*Node]int
	next int
}

func (fp *fingerprinter) blocks(blocks []Block) {
	for _, b := range blocks {
		switch t := b.(type) {
		case *BasicBlock:
			fmt.Fprintf(fp.h, "bb:d%d:s%s[", t.DelayFactor, t.StorageLevel)
			for _, st := range t.Stmts {
				fmt.Fprintf(fp.h, "%v=", st.Targets)
				fp.node(st.Expr)
				fp.h.Write([]byte{';'})
			}
			fp.h.Write([]byte{']'})
		case *ForBlock:
			fmt.Fprintf(fp.h, "for:%s:%v:g%v{", t.Var, t.Values, t.GPUHint)
			fp.blocks(t.Body)
			fp.h.Write([]byte{'}'})
		case *WhileBlock:
			fmt.Fprintf(fp.h, "while:m%d(", t.MaxIter)
			fp.node(t.Cond)
			fp.h.Write([]byte("){"))
			fp.blocks(t.Body)
			fp.h.Write([]byte{'}'})
		case *IfBlock:
			fp.h.Write([]byte("if("))
			fp.node(t.Cond)
			fp.h.Write([]byte("){"))
			fp.blocks(t.Then)
			fp.h.Write([]byte("}{"))
			fp.blocks(t.Else)
			fp.h.Write([]byte{'}'})
		case *EvictBlock:
			fmt.Fprintf(fp.h, "evict:%g", t.Fraction)
		default:
			fmt.Fprintf(fp.h, "unknown:%T", b)
		}
	}
}

func (fp *fingerprinter) node(n *Node) {
	if n == nil {
		fp.h.Write([]byte("nil"))
		return
	}
	if id, seen := fp.ids[n]; seen {
		fmt.Fprintf(fp.h, "@%d", id)
		return
	}
	fp.ids[n] = fp.next
	fp.next++
	fp.h.Write([]byte(n.Op))
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(fp.h, ",%s=%s", k, n.Attrs[k])
		}
	}
	fp.h.Write([]byte{'('})
	for i, in := range n.Inputs {
		if i > 0 {
			fp.h.Write([]byte{' '})
		}
		fp.node(in)
	}
	fp.h.Write([]byte{')'})
}
