// Package ir defines the program representation of the mini ML system:
// programs are hierarchies of blocks (basic blocks, for/while/if blocks,
// function definitions) where each basic block carries a DAG of operator
// nodes, mirroring SystemDS's program compilation model (§2.1). The
// compiler package lowers blocks to backend-placed instruction streams; the
// runtime interprets them with lineage tracing and reuse.
package ir

import (
	"fmt"
	"strconv"
)

// Node is one operator in an expression DAG. Nodes are pure values; all
// operator-specific parameters (seeds, dimensions, conv geometry) live in
// Attrs so they appear in lineage data items.
type Node struct {
	Op     string
	Inputs []*Node
	Attrs  map[string]string
}

// NewNode constructs an operator node.
func NewNode(op string, inputs ...*Node) *Node {
	return &Node{Op: op, Inputs: inputs}
}

// WithAttr returns the node after setting an attribute (chainable).
func (n *Node) WithAttr(k, v string) *Node {
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[k] = v
	return n
}

// Attr returns an attribute value or "".
func (n *Node) Attr(k string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[k]
}

// AttrInt returns an integer attribute, or def if absent.
func (n *Node) AttrInt(k string, def int) int {
	if s := n.Attr(k); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// AttrFloat returns a float attribute, or def if absent.
func (n *Node) AttrFloat(k string, def float64) float64 {
	if s := n.Attr(k); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return def
}

// Leaf constructors.

// Var references a program variable.
func Var(name string) *Node { return NewNode("var").WithAttr("name", name) }

// Lit is a scalar literal.
func Lit(v float64) *Node {
	return NewNode("lit").WithAttr("value", strconv.FormatFloat(v, 'g', -1, 64))
}

// Operator constructors (the public expression-building API).

// Rand creates a uniform random matrix; sparsity 1 means dense.
func Rand(rows, cols int, min, max, sparsity float64, seed int64) *Node {
	return NewNode("rand").
		WithAttr("rows", strconv.Itoa(rows)).WithAttr("cols", strconv.Itoa(cols)).
		WithAttr("min", fmt.Sprint(min)).WithAttr("max", fmt.Sprint(max)).
		WithAttr("sparsity", fmt.Sprint(sparsity)).WithAttr("seed", fmt.Sprint(seed))
}

// RandNorm creates a normal random matrix.
func RandNorm(rows, cols int, mu, sd float64, seed int64) *Node {
	return NewNode("randn").
		WithAttr("rows", strconv.Itoa(rows)).WithAttr("cols", strconv.Itoa(cols)).
		WithAttr("mu", fmt.Sprint(mu)).WithAttr("sd", fmt.Sprint(sd)).
		WithAttr("seed", fmt.Sprint(seed))
}

// T transposes.
func T(a *Node) *Node { return NewNode("t", a) }

// MatMul multiplies matrices.
func MatMul(a, b *Node) *Node { return NewNode("mm", a, b) }

// TSMM computes a^T a.
func TSMM(a *Node) *Node { return NewNode("tsmm", a) }

// Solve solves a linear system.
func Solve(a, b *Node) *Node { return NewNode("solve", a, b) }

// Binary elementwise operators with broadcasting.
func Add(a, b *Node) *Node { return NewNode("+", a, b) }
func Sub(a, b *Node) *Node { return NewNode("-", a, b) }
func Mul(a, b *Node) *Node { return NewNode("*", a, b) }
func Div(a, b *Node) *Node { return NewNode("/", a, b) }
func Min(a, b *Node) *Node { return NewNode("min", a, b) }
func Max(a, b *Node) *Node { return NewNode("max", a, b) }
func Gt(a, b *Node) *Node  { return NewNode(">", a, b) }
func Lt(a, b *Node) *Node  { return NewNode("<", a, b) }

// Unary elementwise operators.
func Exp(a *Node) *Node     { return NewNode("exp", a) }
func Log(a *Node) *Node     { return NewNode("log", a) }
func Sqrt(a *Node) *Node    { return NewNode("sqrt", a) }
func Abs(a *Node) *Node     { return NewNode("abs", a) }
func Sigmoid(a *Node) *Node { return NewNode("sigmoid", a) }
func ReLU(a *Node) *Node    { return NewNode("relu", a) }
func Softmax(a *Node) *Node { return NewNode("softmax", a) }

// Pow raises elementwise to a scalar power.
func Pow(a *Node, p float64) *Node {
	return NewNode("pow", a).WithAttr("p", fmt.Sprint(p))
}

// Aggregations.
func Sum(a *Node) *Node       { return NewNode("sum", a) }
func Mean(a *Node) *Node      { return NewNode("mean", a) }
func RowSums(a *Node) *Node   { return NewNode("rowSums", a) }
func ColSums(a *Node) *Node   { return NewNode("colSums", a) }
func ColMeans(a *Node) *Node  { return NewNode("colMeans", a) }
func ColVars(a *Node) *Node   { return NewNode("colVars", a) }
func ColMins(a *Node) *Node   { return NewNode("colMins", a) }
func ColMaxs(a *Node) *Node   { return NewNode("colMaxs", a) }
func RowMaxIdx(a *Node) *Node { return NewNode("rowMaxIdx", a) }
func Nrow(a *Node) *Node      { return NewNode("nrow", a) }
func Ncol(a *Node) *Node      { return NewNode("ncol", a) }

// Structural operators.
func CBind(a, b *Node) *Node { return NewNode("cbind", a, b) }
func RBind(a, b *Node) *Node { return NewNode("rbind", a, b) }
func Diag(a *Node) *Node     { return NewNode("diag", a) }

// Slice extracts rows [r0,r1) and cols [c0,c1); -1 bounds mean "end".
func Slice(a *Node, r0, r1, c0, c1 int) *Node {
	return NewNode("slice", a).
		WithAttr("r0", strconv.Itoa(r0)).WithAttr("r1", strconv.Itoa(r1)).
		WithAttr("c0", strconv.Itoa(c0)).WithAttr("c1", strconv.Itoa(c1))
}

// SliceRowsVar slices rows [lo, lo+n) where lo is a scalar variable value;
// used for mini-batch extraction inside loops.
func SliceRowsVar(a, lo *Node, n int) *Node {
	return NewNode("sliceRows", a, lo).WithAttr("n", strconv.Itoa(n))
}

// NN operators.
func Dropout(a *Node, p float64, seed int64) *Node {
	return NewNode("dropout", a).WithAttr("p", fmt.Sprint(p)).WithAttr("seed", fmt.Sprint(seed))
}

// DropoutVar uses a scalar variable as the dropout rate (for tuning loops).
func DropoutVar(a, p *Node, seed int64) *Node {
	return NewNode("dropoutv", a, p).WithAttr("seed", fmt.Sprint(seed))
}

// Conv2D performs 2-D convolution; w rows are filters.
func Conv2D(x, w *Node, cIn, h, width, kH, kW, stride, pad int) *Node {
	return NewNode("conv2d", x, w).
		WithAttr("cin", strconv.Itoa(cIn)).
		WithAttr("h", strconv.Itoa(h)).WithAttr("w", strconv.Itoa(width)).
		WithAttr("kh", strconv.Itoa(kH)).WithAttr("kw", strconv.Itoa(kW)).
		WithAttr("stride", strconv.Itoa(stride)).WithAttr("pad", strconv.Itoa(pad))
}

// MaxPool performs 2-D max pooling.
func MaxPool(x *Node, c, h, width, poolH, poolW, stride int) *Node {
	return NewNode("maxpool", x).
		WithAttr("c", strconv.Itoa(c)).
		WithAttr("h", strconv.Itoa(h)).WithAttr("w", strconv.Itoa(width)).
		WithAttr("ph", strconv.Itoa(poolH)).WithAttr("pw", strconv.Itoa(poolW)).
		WithAttr("stride", strconv.Itoa(stride))
}

// Feature transformations.
func ImputeMean(a *Node) *Node { return NewNode("imputeMean", a) }
func ImputeMode(a *Node) *Node { return NewNode("imputeMode", a) }
func OutlierIQR(a *Node) *Node { return NewNode("outlierIQR", a) }
func Scale(a *Node) *Node      { return NewNode("scale", a) }
func MinMax(a *Node) *Node     { return NewNode("minmax", a) }
func Recode(a *Node) *Node     { return NewNode("recode", a) }
func OneHot(a *Node) *Node     { return NewNode("onehot", a) }
func OneHotFixed(a *Node, domain int) *Node {
	return NewNode("onehotf", a).WithAttr("domain", strconv.Itoa(domain))
}
func Bin(a *Node, n int) *Node { return NewNode("bin", a).WithAttr("bins", strconv.Itoa(n)) }
func ReplaceNaN(a *Node, v float64) *Node {
	return NewNode("replaceNaN", a).WithAttr("value", fmt.Sprint(v))
}
func PCA(a *Node, k int, seed int64) *Node {
	return NewNode("pca", a).WithAttr("k", strconv.Itoa(k)).WithAttr("seed", fmt.Sprint(seed))
}
func UnderSample(xy *Node, seed int64) *Node {
	return NewNode("usample", xy).WithAttr("seed", fmt.Sprint(seed))
}
