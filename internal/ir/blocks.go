package ir

import "fmt"

// Stmt assigns the value of Expr to Targets. Ordinary statements have one
// target; function calls (Op "call") may have several.
type Stmt struct {
	Targets []string
	Expr    *Node
}

// Block is a program block.
type Block interface{ block() }

// BasicBlock is a straight-line sequence of statements forming one operator
// DAG. The compiler-tuned reuse parameters (delay factor, storage level)
// are stored in the block header by the auto-tuning rewrite (§5.2).
type BasicBlock struct {
	Stmts []Stmt

	// Compiler-assigned reuse parameters (block header).
	DelayFactor  int    // 0 = unset; 1 = eager caching
	StorageLevel string // "", "MEMORY", "MEMORY_AND_DISK"
}

// ForBlock iterates Var over Values, executing Body each time.
type ForBlock struct {
	Var    string
	Values []float64
	Body   []Block

	// GPUHint marks loops dominated by GPU ops (set by the compiler's
	// eviction-injection analysis).
	GPUHint bool
}

// WhileBlock executes Body while the scalar condition variable (set inside
// the body or before) is non-zero, up to MaxIter iterations.
type WhileBlock struct {
	Cond    *Node
	Body    []Block
	MaxIter int
}

// IfBlock branches on a scalar condition.
type IfBlock struct {
	Cond *Node
	Then []Block
	Else []Block
}

// EvictBlock is a compiler-injected cache cleanup instruction (§5.2).
type EvictBlock struct {
	Fraction float64 // share of the GPU free list to release
}

func (*BasicBlock) block() {}
func (*ForBlock) block()   {}
func (*WhileBlock) block() {}
func (*IfBlock) block()    {}
func (*EvictBlock) block() {}

// Function is a callable unit; deterministic functions are subject to
// multi-level reuse (§3.3).
type Function struct {
	Name    string
	Params  []string
	Returns []string
	Body    []Block
	// Deterministic marks the function reusable when called with equal
	// inputs. Functions with unseeded randomness would set this false;
	// in this system all randomness is seeded, so it defaults to true.
	Deterministic bool
}

// Program is a compiled script: functions plus a main block sequence.
// Source holds the raw script text when the program came from the DML
// parser; programs built programmatically leave it empty. It is the
// primary component of the serving layer's compile-cache program key, so
// two scripts differing only in whitespace or literals key differently.
type Program struct {
	Funcs  map[string]*Function
	Main   []Block
	Source string
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{Funcs: make(map[string]*Function)} }

// Define registers a function.
func (p *Program) Define(f *Function) {
	if _, dup := p.Funcs[f.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", f.Name))
	}
	if f.Name == "" || len(f.Returns) == 0 {
		panic("ir: function needs a name and at least one return")
	}
	p.Funcs[f.Name] = f
}

// Assign builds a single-target statement.
func Assign(target string, expr *Node) Stmt {
	return Stmt{Targets: []string{target}, Expr: expr}
}

// Call builds a function-call statement binding the function's returns to
// the targets.
func Call(fn string, targets []string, args ...*Node) Stmt {
	n := NewNode("call", args...).WithAttr("fn", fn)
	return Stmt{Targets: targets, Expr: n}
}

// BB is shorthand for a basic block from statements.
func BB(stmts ...Stmt) *BasicBlock { return &BasicBlock{Stmts: stmts} }

// For is shorthand for a for block over explicit values.
func For(v string, values []float64, body ...Block) *ForBlock {
	return &ForBlock{Var: v, Values: values, Body: body}
}

// ForRange iterates i = 0..n-1.
func ForRange(v string, n int, body ...Block) *ForBlock {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	return &ForBlock{Var: v, Values: vals, Body: body}
}

// If is shorthand for an if block.
func If(cond *Node, then []Block, els []Block) *IfBlock {
	return &IfBlock{Cond: cond, Then: then, Else: els}
}

// Walk visits every block in the program (pre-order), including nested
// bodies. The visitor may mutate block fields but not the structure.
func Walk(blocks []Block, visit func(Block)) {
	for _, b := range blocks {
		visit(b)
		switch t := b.(type) {
		case *ForBlock:
			Walk(t.Body, visit)
		case *WhileBlock:
			Walk(t.Body, visit)
		case *IfBlock:
			Walk(t.Then, visit)
			Walk(t.Else, visit)
		}
	}
}

// VarsRead returns the program variables referenced by an expression tree.
func VarsRead(n *Node, out map[string]struct{}) {
	if n == nil {
		return
	}
	if n.Op == "var" {
		out[n.Attr("name")] = struct{}{}
		return
	}
	for _, in := range n.Inputs {
		VarsRead(in, out)
	}
}

// DependsOn reports whether the expression references any of the names,
// directly or through variables assigned earlier in the same statement list
// (a conservative intra-block dataflow check used by the delay-factor
// tuning rewrite).
func DependsOn(stmts []Stmt, idx int, names map[string]struct{}) bool {
	tainted := make(map[string]struct{}, len(names))
	for n := range names {
		tainted[n] = struct{}{}
	}
	for i := 0; i <= idx; i++ {
		reads := make(map[string]struct{})
		VarsRead(stmts[i].Expr, reads)
		dep := false
		for r := range reads {
			if _, ok := tainted[r]; ok {
				dep = true
				break
			}
		}
		if i == idx {
			return dep
		}
		if dep {
			for _, t := range stmts[i].Targets {
				tainted[t] = struct{}{}
			}
		}
	}
	return false
}
