package ir

import "hash/fnv"

// FusedOp is the opcode of a compiler-fused elementwise chain: a single
// instruction whose "prog" attribute encodes the constituent elementwise/
// unary/scalar steps (see internal/data's fused interpreter for the step
// grammar). The compiler's fusion pass emits these over the linearized
// stream; programs may also construct them directly with Fused.
const FusedOp = "fused"

// Fused builds a fused elementwise node over the given leaf inputs. prog is
// the step program referencing leaves as $0..$n-1 and earlier steps as @k.
func Fused(prog string, inputs ...*Node) *Node {
	return NewNode(FusedOp, inputs...).WithAttr("prog", prog)
}

// FingerprintNode returns a structural hash of one expression sub-DAG with
// the same DAG-memoized node identity as Program.Fingerprint. The fusion
// pass stamps each fused instruction with the fingerprint of the sub-DAG it
// collapsed, so two fused chains are identical exactly when their source
// DAGs are.
func FingerprintNode(n *Node) uint64 {
	h := fnv.New64a()
	fp := &fingerprinter{h: h, ids: make(map[*Node]int)}
	fp.node(n)
	return h.Sum64()
}
