package gpu

import (
	"errors"
	"fmt"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/vtime"
)

// ErrOOM is returned when the device cannot serve an allocation even after
// the memory manager's recycling and eviction steps.
var ErrOOM = errors.New("gpu: out of device memory")

// Pointer is a device memory allocation. The payload is held host-side (the
// simulator computes real values) but is considered device-resident; reading
// it back requires an explicit D2H copy that charges transfer cost and
// synchronizes the stream.
type Pointer struct {
	addr  int64
	size  int64
	value *data.Matrix
	freed bool

	// RefCount is the number of live variables referencing the pointer
	// (paper §4.2: only when it reaches zero is the pointer returned to
	// the free list).
	RefCount int

	// Eviction-policy metadata (Eq. 2).
	LastAccess  float64 // virtual timestamp of last (re)use
	Height      int     // height of the producing lineage DAG
	ComputeCost float64 // estimated compute cost of the producing op (seconds)

	// Cached marks pointers wrapped by a lineage cache entry: they are
	// recycled only under memory pressure, preserving reuse potential
	// ("without compromising the reuse potential", paper 4.2).
	Cached bool
}

// Size returns the allocation size in bytes.
func (p *Pointer) Size() int64 { return p.size }

// Addr returns the device address (for tests and fragmentation inspection).
func (p *Pointer) Addr() int64 { return p.addr }

// Valid reports whether the pointer still owns device memory.
func (p *Pointer) Valid() bool { return !p.freed }

// Value returns the device-resident matrix without a transfer. Only the
// device (kernels) may touch it; host code must use D2H.
func (p *Pointer) Value() *data.Matrix { return p.value }

// DeviceStats counts raw device operations.
type DeviceStats struct {
	Mallocs   int64
	Frees     int64
	Kernels   int64
	H2DCopies int64
	D2HCopies int64
	H2DBytes  int64
	D2HBytes  int64
	Syncs     int64
}

// Device is the simulated GPU.
type Device struct {
	clock  *vtime.Clock
	stream *vtime.Resource
	model  *costs.Model
	alloc  *allocator
	peak   int64 // high-water mark of allocated bytes
	Stats  DeviceStats
}

// NewDevice returns a device with the given memory capacity whose command
// stream is a resource of the clock.
func NewDevice(clock *vtime.Clock, model *costs.Model, name string, capacity int64) *Device {
	return &Device{
		clock:  clock,
		stream: clock.Resource(name),
		model:  model,
		alloc:  newAllocator(capacity),
	}
}

// Capacity returns the device memory size in bytes.
func (d *Device) Capacity() int64 { return d.alloc.capacity }

// Peak returns the high-water mark of allocated device bytes.
func (d *Device) Peak() int64 { return d.peak }

// Used returns the allocated bytes.
func (d *Device) Used() int64 { return d.alloc.capacity - d.alloc.available() }

// Available returns the total free bytes (possibly fragmented).
func (d *Device) Available() int64 { return d.alloc.available() }

// LargestFree returns the largest contiguous free region.
func (d *Device) LargestFree() int64 { return d.alloc.largestFree() }

// Fragmented reports external fragmentation.
func (d *Device) Fragmented() bool { return d.alloc.fragmented() }

// Stream exposes the command-stream resource (for overlap accounting).
func (d *Device) Stream() *vtime.Resource { return d.stream }

// Sync blocks the host until all queued kernels complete.
func (d *Device) Sync() {
	d.Stats.Syncs++
	d.clock.Sync(d.stream)
}

// Malloc allocates size bytes of device memory, charging the cudaMalloc
// overhead. Fails with ErrOOM when no contiguous region fits.
func (d *Device) Malloc(size int64) (*Pointer, error) {
	addr, ok := d.alloc.alloc(size)
	if !ok {
		return nil, fmt.Errorf("%w: need %d, largest free %d (total free %d)",
			ErrOOM, size, d.alloc.largestFree(), d.alloc.available())
	}
	d.Stats.Mallocs++
	d.clock.Advance(d.model.CudaMalloc)
	if u := d.Used(); u > d.peak {
		d.peak = u
	}
	return &Pointer{addr: addr, size: size, RefCount: 1, LastAccess: d.clock.Now()}, nil
}

// Free releases a pointer's device memory. Like cudaFree it synchronizes
// the stream before the host continues.
func (d *Device) Free(p *Pointer) {
	if p.freed {
		panic("gpu: double free")
	}
	d.Sync()
	d.alloc.release(p.addr, p.size)
	p.freed = true
	p.value = nil
	d.Stats.Frees++
	d.clock.Advance(d.model.CudaFree)
}

// H2D copies a host matrix into a fresh device allocation.
func (d *Device) H2D(m *data.Matrix) (*Pointer, error) {
	p, err := d.Malloc(m.SizeBytes())
	if err != nil {
		return nil, err
	}
	d.Stats.H2DCopies++
	d.Stats.H2DBytes += m.SizeBytes()
	d.clock.Advance(costs.Transfer(m.SizeBytes(), d.model.H2DBW, d.model.CopyLatency))
	p.value = m.Clone()
	return p, nil
}

// D2H copies a device-resident matrix back to the host. This is a
// synchronization barrier: the host waits for all queued kernels first.
func (d *Device) D2H(p *Pointer) *data.Matrix {
	if p.freed {
		panic("gpu: D2H from freed pointer")
	}
	d.Sync()
	d.Stats.D2HCopies++
	d.Stats.D2HBytes += p.size
	d.clock.Advance(costs.Transfer(p.size, d.model.D2HBW, d.model.CopyLatency))
	return p.value.Clone()
}

// Launch enqueues a kernel asynchronously: the host thread pays only the
// launch latency while the stream is charged the compute time. The compute
// closure produces the real result, stored into out.
func (d *Device) Launch(flops float64, out *Pointer, compute func() *data.Matrix) {
	if out.freed {
		panic("gpu: kernel output into freed pointer")
	}
	d.Stats.Kernels++
	d.clock.Advance(d.model.KernelLaunch)
	d.clock.RunAsync(d.stream, costs.Compute(flops, d.model.GPUFlops), "kernel")
	out.value = compute()
	if out.value.SizeBytes() > out.size {
		panic(fmt.Sprintf("gpu: kernel wrote %d bytes into %d-byte allocation",
			out.value.SizeBytes(), out.size))
	}
}

// defragment compacts all live allocations into a contiguous prefix,
// charging a full copy of the used bytes over device memory bandwidth. The
// caller (memory manager) re-addresses live pointers.
func (d *Device) defragment(live []*Pointer) {
	d.Sync()
	var used int64
	for _, p := range live {
		used += p.size
	}
	// Device-internal copies are fast but not free; charge at GPU memory
	// bandwidth approximated as 10x host H2D.
	d.clock.Advance(costs.Transfer(used, 10*d.model.H2DBW, d.model.CopyLatency))
	d.alloc.reset()
	for _, p := range live {
		addr, ok := d.alloc.alloc(p.size)
		if !ok {
			panic("gpu: defragmentation failed to place live pointer")
		}
		p.addr = addr
	}
}

// CopyIn transfers a host matrix into an existing allocation (H2D), e.g. a
// recycled pointer obtained from the memory manager.
func (d *Device) CopyIn(p *Pointer, m *data.Matrix) {
	if p.freed {
		panic("gpu: CopyIn to freed pointer")
	}
	if m.SizeBytes() > p.size {
		panic(fmt.Sprintf("gpu: CopyIn of %d bytes into %d-byte allocation",
			m.SizeBytes(), p.size))
	}
	d.Stats.H2DCopies++
	d.Stats.H2DBytes += m.SizeBytes()
	d.clock.Advance(costs.Transfer(m.SizeBytes(), d.model.H2DBW, d.model.CopyLatency))
	p.value = m.Clone()
}

// D2HAsync schedules a device-to-host copy behind the queued kernels
// without blocking the host, returning the value and a future for its
// arrival. This backs the prefetch operator for GPU chains (§5.1).
func (d *Device) D2HAsync(p *Pointer) (*data.Matrix, *vtime.Future) {
	if p.freed {
		panic("gpu: D2HAsync from freed pointer")
	}
	d.Stats.D2HCopies++
	d.Stats.D2HBytes += p.size
	f := d.clock.RunAsync(d.stream,
		costs.Transfer(p.size, d.model.D2HBW, d.model.CopyLatency), "d2h")
	return p.value.Clone(), f
}
