package gpu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestManager(capacity int64) (*Manager, *Device) {
	d, _ := newTestDevice(capacity)
	return NewManager(d), d
}

func TestRecycleExactSize(t *testing.T) {
	// Capacity for exactly one allocation: the second request hits memory
	// pressure and must recycle rather than cudaMalloc.
	m, d := newTestManager(1024)
	p, err := m.Allocate(1024, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(p)
	if m.FreeCount() != 1 || m.LiveCount() != 0 {
		t.Fatalf("free=%d live=%d after release", m.FreeCount(), m.LiveCount())
	}
	p2, err := m.Allocate(1024, 2, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatal("exact-size allocation must recycle the free pointer")
	}
	if m.Stats.Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", m.Stats.Recycled)
	}
	// Recycling avoids cudaMalloc entirely.
	if d.Stats.Mallocs != 1 {
		t.Fatalf("Mallocs = %d, want 1", d.Stats.Mallocs)
	}
}

func TestRecycleInvalidatesCacheEntry(t *testing.T) {
	m, _ := newTestManager(512)
	var invalidated []*Pointer
	m.SetOnRecycle(func(p *Pointer) { invalidated = append(invalidated, p) })
	p, _ := m.Allocate(512, 1, 0)
	m.Release(p)
	_, _ = m.Allocate(512, 1, 0)
	if len(invalidated) != 1 || invalidated[0] != p {
		t.Fatal("recycle must invoke the cache-invalidation callback")
	}
}

func TestFreeJustLargerWhenNoExact(t *testing.T) {
	m, d := newTestManager(3000)
	a, _ := m.Allocate(1000, 1, 0)
	b, _ := m.Allocate(2000, 1, 0)
	m.Release(a)
	m.Release(b)
	// Request 1500: no exact match; device is full, so the just-larger
	// (2000) free pointer must be released and the request served.
	p, err := m.Allocate(1500, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1500 {
		t.Fatalf("size = %d", p.Size())
	}
	if m.Stats.FreedForSpace != 1 {
		t.Fatalf("FreedForSpace = %d, want 1", m.Stats.FreedForSpace)
	}
	if d.Stats.Frees != 1 {
		t.Fatalf("device Frees = %d, want 1", d.Stats.Frees)
	}
	// The 1000-byte free pointer must still be cached.
	if m.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d, want 1", m.FreeCount())
	}
}

func TestRepeatedFreeUntilFits(t *testing.T) {
	m, _ := newTestManager(3000)
	var ptrs []*Pointer
	for i := 0; i < 3; i++ {
		p, err := m.Allocate(1000, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		m.Release(p)
	}
	// 2500 > any single free pointer: manager must free several.
	p, err := m.Allocate(2500, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2500 {
		t.Fatal("wrong size")
	}
}

func TestAllocateOOMWithLivePointers(t *testing.T) {
	m, _ := newTestManager(1000)
	_, err := m.Allocate(800, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(500, 1, 0); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM (live pointers cannot be evicted)", err)
	}
}

func TestHostEvictorInvoked(t *testing.T) {
	m, d := newTestManager(1000)
	p, _ := m.Allocate(800, 1, 0)
	evicted := false
	m.SetHostEvictor(func(need int64) int64 {
		evicted = true
		// Simulate the cache evicting its live pointer to the host.
		delete(m.live, p)
		d.Free(p)
		return p.Size()
	})
	p2, err := m.Allocate(500, 1, 0)
	if err != nil || !evicted {
		t.Fatalf("err=%v evicted=%v", err, evicted)
	}
	if p2.Size() != 500 {
		t.Fatal("wrong size")
	}
	if m.Stats.HostEvictions != 1 {
		t.Fatalf("HostEvictions = %d", m.Stats.HostEvictions)
	}
}

func TestRetainMovesFreeToLive(t *testing.T) {
	m, _ := newTestManager(1 << 20)
	p, _ := m.Allocate(256, 1, 0)
	m.Release(p)
	if !m.Retain(p) {
		t.Fatal("Retain on a free pointer must succeed")
	}
	if m.FreeCount() != 0 || m.LiveCount() != 1 || p.RefCount != 1 {
		t.Fatalf("free=%d live=%d ref=%d", m.FreeCount(), m.LiveCount(), p.RefCount)
	}
	if m.Stats.ReuseTakes != 1 {
		t.Fatalf("ReuseTakes = %d", m.Stats.ReuseTakes)
	}
}

func TestRefCountingMultipleVariables(t *testing.T) {
	m, _ := newTestManager(1 << 20)
	p, _ := m.Allocate(256, 1, 0)
	m.Retain(p) // second variable references the same pointer
	m.Release(p)
	if m.FreeCount() != 0 {
		t.Fatal("pointer with remaining references must stay live")
	}
	m.Release(p)
	if m.FreeCount() != 1 {
		t.Fatal("pointer must be freed when refcount reaches zero")
	}
}

func TestRetainFreedPointerFails(t *testing.T) {
	m, _ := newTestManager(4000)
	p, _ := m.Allocate(1000, 1, 0)
	m.Release(p)
	// Force the manager to release p's memory entirely.
	if released := m.EvictPercent(1.0); released != 1000 {
		t.Fatalf("EvictPercent released %d, want 1000", released)
	}
	if m.Retain(p) {
		t.Fatal("Retain on a released pointer must fail")
	}
}

func TestEvictionScoreOrdering(t *testing.T) {
	m, _ := newTestManager(256)
	dev := m.Device()
	// Cheap, old, tall-lineage pointer: lowest score, recycled first.
	cheap, _ := m.Allocate(128, 10, 0.0001)
	dev.clock.Advance(1)
	// Expensive, recent, short-lineage pointer: highest score, kept.
	expensive, _ := m.Allocate(128, 1, 1.0)
	dev.clock.Advance(1)
	m.Release(cheap)
	m.Release(expensive)
	got, _ := m.Allocate(128, 1, 0)
	if got != cheap {
		t.Fatal("eviction policy must recycle the cheap/old pointer first")
	}
}

func TestEvictPercentPartial(t *testing.T) {
	m, _ := newTestManager(1 << 20)
	var ptrs []*Pointer
	for i := 0; i < 10; i++ {
		p, _ := m.Allocate(100, 1, 0)
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		m.Release(p)
	}
	released := m.EvictPercent(0.5)
	if released != 500 {
		t.Fatalf("released %d, want 500", released)
	}
	if m.FreeCount() != 5 {
		t.Fatalf("FreeCount = %d, want 5", m.FreeCount())
	}
}

func TestDefragmentation(t *testing.T) {
	m, d := newTestManager(100)
	var ptrs []*Pointer
	for i := 0; i < 10; i++ {
		p, err := m.Allocate(10, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Release every other pointer, then fully release their memory so the
	// device itself is fragmented (50 free, max contiguous 10).
	for i := 0; i < 10; i += 2 {
		m.Release(ptrs[i])
	}
	m.EvictPercent(1.0)
	if !d.Fragmented() {
		t.Fatal("expected device fragmentation")
	}
	// A 30-byte request fits total free space only after defragmentation.
	p, err := m.Allocate(30, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 30 || m.Stats.Defrags != 1 {
		t.Fatalf("size=%d defrags=%d", p.Size(), m.Stats.Defrags)
	}
	// Live pointers must still be valid after compaction.
	for i := 1; i < 10; i += 2 {
		if !ptrs[i].Valid() {
			t.Fatal("live pointer invalidated by defragmentation")
		}
	}
}

// Property: live+free accounting matches the device's used bytes.
func TestManagerAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, d := newTestManager(10000)
		var live []*Pointer
		for step := 0; step < 100; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := int64(1+rng.Intn(20)) * 8
				p, err := m.Allocate(size, 1+rng.Intn(5), rng.Float64())
				if err != nil {
					continue
				}
				live = append(live, p)
			} else {
				i := rng.Intn(len(live))
				m.Release(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			var liveBytes int64
			for _, p := range live {
				liveBytes += p.Size()
			}
			if d.Used() != liveBytes+m.FreeBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: mini-batch loops with fixed sizes reach a recycling steady
// state with no new cudaMallocs.
func TestMiniBatchSteadyState(t *testing.T) {
	// The pool grows to capacity during the first epoch, then recycling
	// serves every request without cudaMalloc (Figure 8 steady state).
	m, d := newTestManager(8 * 1024)
	for epoch := 0; epoch < 5; epoch++ {
		var batch []*Pointer
		for i := 0; i < 8; i++ {
			p, err := m.Allocate(1024, 2, 0.001)
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, p)
		}
		for _, p := range batch {
			m.Release(p)
		}
		if epoch == 0 && d.Stats.Mallocs != 8 {
			t.Fatalf("first epoch Mallocs = %d, want 8", d.Stats.Mallocs)
		}
	}
	if d.Stats.Mallocs != 8 {
		t.Fatalf("Mallocs = %d, want 8 (steady-state recycling)", d.Stats.Mallocs)
	}
	if m.Stats.Recycled != 32 {
		t.Fatalf("Recycled = %d, want 32", m.Stats.Recycled)
	}
}

func TestPolicyPoolOOMOnPatternShift(t *testing.T) {
	// PyTorch-style pool: recycles exact sizes but never frees mismatched
	// blocks, so an allocation-pattern shift on a full device OOMs until a
	// manual cleanup (the paper's empty_cache comparison).
	m, _ := newTestManager(3000)
	m.Policy = PolicyPool
	var ptrs []*Pointer
	for i := 0; i < 3; i++ {
		p, err := m.Allocate(1000, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		m.Release(p)
	}
	// Same size recycles fine.
	if _, err := m.Allocate(1000, 1, 0); err != nil {
		t.Fatal(err)
	}
	// New size cannot be served: the pool does not evict mismatches.
	if _, err := m.Allocate(1500, 1, 0); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM under pattern shift", err)
	}
	// Manual empty_cache() (EvictPercent 1.0) fixes it.
	m.EvictPercent(1.0)
	if _, err := m.Allocate(1500, 1, 0); err != nil {
		t.Fatalf("after cleanup: %v", err)
	}
}

func TestPolicyNoneFreesImmediately(t *testing.T) {
	m, d := newTestManager(4000)
	m.Policy = PolicyNone
	p, _ := m.Allocate(1000, 1, 0)
	m.Release(p)
	if d.Stats.Frees != 1 {
		t.Fatalf("Frees = %d, want immediate cudaFree", d.Stats.Frees)
	}
	if m.FreeCount() != 0 {
		t.Fatal("PolicyNone must not pool freed pointers")
	}
}

func TestReleaseBeyondLastReferenceIsNoOp(t *testing.T) {
	// Two variables can alias one pointer and each drop their name; the
	// second Release arrives with RefCount already at zero. It must not
	// insert the pointer into the free list a second time — the duplicate
	// would be freed twice when the list drains (Close, EvictPercent, or
	// an allocation under pressure), panicking the device allocator.
	m, _ := newTestManager(4096)
	p, err := m.Allocate(1024, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(p)
	m.Release(p)
	if m.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d after double release, want 1", m.FreeCount())
	}
	m.Close() // drains the free list; a duplicate entry would double free
}
