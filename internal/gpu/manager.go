package gpu

import (
	"sort"

	"memphis/internal/faults"
	"memphis/internal/memctl"
)

// Policy selects the allocator behaviour, emulating the systems compared in
// the paper's GPU experiments (§6.3).
type Policy int

const (
	// PolicyMemphis is the full Algorithm-1 behaviour: exact-size
	// recycling, just-larger freeing, repeated freeing, full cleanup,
	// device-to-host eviction, and defragmentation.
	PolicyMemphis Policy = iota
	// PolicyPool emulates PyTorch's caching allocator: exact-size
	// recycling and plain cudaMalloc, but no eviction of mismatched free
	// blocks — allocation-pattern shifts OOM without a manual
	// empty_cache() (the paper's PyTorch vs PyTorch-Clr comparison).
	PolicyPool
	// PolicyNone disables recycling entirely: every release is an
	// immediate cudaFree (SystemDS Base without MEMPHIS's manager).
	PolicyNone
)

// ManagerStats counts memory-manager events.
type ManagerStats struct {
	Recycled      int64 // exact-size free pointers handed back to new outputs
	FreshMallocs  int64 // allocations served by cudaMalloc
	FreedForSpace int64 // free pointers released to satisfy an allocation
	FullCleanups  int64 // times the whole free list was released
	HostEvictions int64 // device-to-host eviction rounds
	Defrags       int64 // full defragmentations
	ReuseTakes    int64 // free->live transitions due to lineage reuse
	InjectedOOMs  int64 // cudaMalloc failures injected by the fault plan
}

// Manager is MEMPHIS's unified GPU memory manager with moving boundaries
// between live (in-use) and free (recyclable cache) pointers (paper §4.2,
// Figure 8, Algorithm 1). All pointers from allocation to deallocation are
// managed here; the free "list" is a map from size to the pointers of that
// size, ordered on demand by the Eq. 2 eviction score
//
//	score(o) = T_a(o) + 1/h(o) + c(o)
//
// where T_a is the normalized last-access time, h the lineage height, and c
// the normalized compute cost; the minimum score is recycled first.
type Manager struct {
	dev *Device
	// Policy selects the allocator behaviour; default PolicyMemphis.
	Policy Policy
	live   map[*Pointer]struct{}
	free   map[int64][]*Pointer

	maxCost float64 // running max compute cost for normalization

	// onRecycle is invoked when a free pointer's memory is recycled or
	// released, so the lineage cache can invalidate entries wrapping it.
	onRecycle func(*Pointer)

	// hostEvictor, when set, is asked to release at least `need` bytes of
	// live cached pointers by evicting them to the host. It returns the
	// bytes actually released.
	hostEvictor func(need int64) int64

	// inj injects deterministic cudaMalloc failures (simulated OOM) so the
	// Algorithm-1 recovery ladder is exercised under test; nil means none.
	inj *faults.Injector

	Stats ManagerStats
}

// NewManager returns a memory manager over dev.
func NewManager(dev *Device) *Manager {
	return &Manager{
		dev:  dev,
		live: make(map[*Pointer]struct{}),
		free: make(map[int64][]*Pointer),
	}
}

// Device returns the managed device.
func (m *Manager) Device() *Device { return m.dev }

// SetOnRecycle installs the cache-invalidation callback.
func (m *Manager) SetOnRecycle(f func(*Pointer)) { m.onRecycle = f }

// SetHostEvictor installs the device-to-host eviction hook.
func (m *Manager) SetHostEvictor(f func(need int64) int64) { m.hostEvictor = f }

// SetInjector installs the fault injector (nil disables injection).
func (m *Manager) SetInjector(inj *faults.Injector) { m.inj = inj }

// LiveCount returns the number of live pointers.
func (m *Manager) LiveCount() int { return len(m.live) }

// FreeCount returns the number of free (recyclable) pointers.
func (m *Manager) FreeCount() int {
	n := 0
	for _, q := range m.free {
		n += len(q)
	}
	return n
}

// FreeBytes returns the bytes held by free pointers.
func (m *Manager) FreeBytes() int64 {
	var b int64
	for size, q := range m.free {
		b += size * int64(len(q))
	}
	return b
}

// candidate lifts a pointer into the shared scoring shape.
func candidate(p *Pointer) memctl.Candidate {
	return memctl.Candidate{
		ComputeCost: p.ComputeCost,
		Size:        p.size,
		Height:      p.Height,
		LastAccess:  p.LastAccess,
	}
}

// score computes the Eq. 2 eviction score via the shared policy instance
// (memctl.GPUWeights: recency + 1/height + normalized compute cost);
// lower is recycled first.
func (m *Manager) score(p *Pointer) float64 {
	return memctl.Score(candidate(p), memctl.GPUWeights,
		memctl.Norms{Now: m.dev.clock.Now(), MaxCost: m.maxCost})
}

// popFreeExact removes and returns the lowest-score free pointer of exactly
// the given size, or nil. All free pointers — including those wrapped by
// lineage cache entries — are subject to recycling (paper §4.2); the Eq. 2
// score's compute-cost term is what preserves the valuable ones when
// alternatives exist.
func (m *Manager) popFreeExact(size int64) *Pointer {
	q := m.free[size]
	best := -1
	for i := range q {
		if best < 0 || m.score(q[i]) < m.score(q[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	p := q[best]
	q = append(q[:best], q[best+1:]...)
	if len(q) == 0 {
		delete(m.free, size)
	} else {
		m.free[size] = q
	}
	return p
}

// popFreeJustLarger removes and returns a free pointer with the smallest
// size strictly larger than size (lowest score among that size), or nil.
func (m *Manager) popFreeJustLarger(size int64) *Pointer {
	var sizes []int64
	for s := range m.free {
		if s > size {
			sizes = append(sizes, s)
		}
	}
	if len(sizes) == 0 {
		return nil
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return m.popFreeExact(sizes[0])
}

// popFreeAny removes and returns the lowest-score free pointer across all
// sizes, or nil.
func (m *Manager) popFreeAny() *Pointer {
	var best *Pointer
	bestScore := 0.0
	for _, q := range m.free {
		for _, p := range q {
			if s := m.score(p); best == nil || s < bestScore {
				best, bestScore = p, s
			}
		}
	}
	if best != nil {
		m.removeFromFree(best)
	}
	return best
}

func (m *Manager) removeFromFree(p *Pointer) {
	q := m.free[p.size]
	for i, c := range q {
		if c == p {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(m.free, p.size)
	} else {
		m.free[p.size] = q
	}
}

// releaseFreePointer hands a free pointer's memory back to the device and
// invalidates any cache entry wrapping it.
func (m *Manager) releaseFreePointer(p *Pointer) {
	if m.onRecycle != nil {
		m.onRecycle(p)
	}
	m.dev.Free(p)
}

// Allocate serves an output allocation request following Algorithm 1.
// While device memory is available, the pool grows with plain cudaMalloc;
// once the memory is full, free pointers are recycled as a form of
// eviction (paper §4.2, Figure 8(d)): first an exact-size pointer, then
// the just-larger one is freed, then pointers are freed repeatedly, then
// the whole free list, then device-to-host eviction, and finally a full
// defragmentation. In steady-state mini-batch processing the memory stays
// full, so recycling serves every request without cudaMalloc/cudaFree.
func (m *Manager) Allocate(size int64, height int, computeCost float64) (*Pointer, error) {
	if computeCost > m.maxCost {
		m.maxCost = computeCost
	}
	// Step 1: under memory pressure, recycle an exact-size free pointer
	// (no cudaMalloc or cudaFree at all).
	if m.Policy != PolicyNone && size > m.dev.LargestFree() {
		if p := m.recycleExact(size, height, computeCost); p != nil {
			return p, nil
		}
	}
	// Step 2: plain cudaMalloc (grows the pool while memory is available).
	// An injected failure models a transient cudaMalloc error / simulated
	// OOM: the call overhead is still charged, and the Algorithm-1 recovery
	// ladder below must absorb it.
	if m.inj.Fail(faults.GPUAlloc) {
		m.Stats.InjectedOOMs++
		m.dev.clock.Advance(m.dev.model.CudaMalloc)
	} else if p, err := m.dev.Malloc(size); err == nil {
		m.Stats.FreshMallocs++
		p.Height = height
		p.ComputeCost = computeCost
		m.live[p] = struct{}{}
		return p, nil
	}
	// Malloc can fail despite the pressure check (fragmentation): retry
	// the exact-size recycle.
	if m.Policy != PolicyNone {
		if p := m.recycleExact(size, height, computeCost); p != nil {
			return p, nil
		}
	}
	if m.Policy != PolicyMemphis {
		return nil, ErrOOM
	}
	// Step 3: free the just-larger pointer and retry (may fragment).
	if p := m.popFreeJustLarger(size); p != nil {
		m.releaseFreePointer(p)
		m.Stats.FreedForSpace++
		if np, err := m.dev.Malloc(size); err == nil {
			m.Stats.FreshMallocs++
			np.Height = height
			np.ComputeCost = computeCost
			m.live[np] = struct{}{}
			return np, nil
		}
	}
	// Step 4: repeatedly free free pointers until the malloc succeeds.
	for {
		p := m.popFreeAny()
		if p == nil {
			break
		}
		m.releaseFreePointer(p)
		m.Stats.FreedForSpace++
		if np, err := m.dev.Malloc(size); err == nil {
			m.Stats.FreshMallocs++
			np.Height = height
			np.ComputeCost = computeCost
			m.live[np] = struct{}{}
			return np, nil
		}
	}
	m.Stats.FullCleanups++
	// Step 5: device-to-host eviction of cached live pointers. Gated on
	// the device actually being full: an injected transient cudaMalloc
	// failure with room available is recovered by the retries below, and
	// demoting there would perturb virtual time for chaos replays.
	if m.hostEvictor != nil && m.dev.Available() < size {
		if released := m.hostEvictor(size); released > 0 {
			m.Stats.HostEvictions++
			if np, err := m.dev.Malloc(size); err == nil {
				m.Stats.FreshMallocs++
				np.Height = height
				np.ComputeCost = computeCost
				m.live[np] = struct{}{}
				return np, nil
			}
		}
	}
	// Step 6: full defragmentation (rare in practice).
	if m.dev.Available() >= size && m.dev.Fragmented() {
		m.Defragment()
		if np, err := m.dev.Malloc(size); err == nil {
			m.Stats.FreshMallocs++
			np.Height = height
			np.ComputeCost = computeCost
			m.live[np] = struct{}{}
			return np, nil
		}
	}
	// Final plain retry. Free on genuine OOM (a failing Malloc charges
	// nothing) but recovers injected transient failures when the device
	// actually has room and the free list was empty.
	if np, err := m.dev.Malloc(size); err == nil {
		m.Stats.FreshMallocs++
		np.Height = height
		np.ComputeCost = computeCost
		m.live[np] = struct{}{}
		return np, nil
	}
	return nil, ErrOOM
}

// Release decrements a pointer's reference count; at zero the pointer moves
// from the live list to the free list, keeping its device memory as
// recyclable cache (Figure 8(b)).
func (m *Manager) Release(p *Pointer) {
	if p.freed {
		return
	}
	if p.RefCount > 0 {
		p.RefCount--
	}
	if p.RefCount == 0 {
		// A release beyond the last reference (e.g. two variables aliasing
		// one value, each dropping its name) must not insert the pointer
		// into the free list a second time: the duplicate would be freed
		// twice when the list drains. Only a live pointer transitions.
		if _, live := m.live[p]; !live {
			return
		}
		delete(m.live, p)
		if m.Policy == PolicyNone {
			m.releaseFreePointer(p)
			return
		}
		m.free[p.size] = append(m.free[p.size], p)
	}
}

// Retain marks another live reference to p. If p sits in the free list
// (lineage reuse of a no-longer-live output, Figure 8(c)) it moves back to
// the live list.
func (m *Manager) Retain(p *Pointer) bool {
	if p.freed {
		return false
	}
	if p.RefCount == 0 {
		m.removeFromFree(p)
		m.live[p] = struct{}{}
		m.Stats.ReuseTakes++
	}
	p.RefCount++
	p.LastAccess = m.dev.clock.Now()
	return true
}

// EvictPercent releases the given fraction (0..1] of free-list bytes in
// eviction-score order. This implements the compiler-injected evict
// instruction for allocation-pattern shifts (paper §5.2).
func (m *Manager) EvictPercent(frac float64) int64 {
	if frac <= 0 {
		return 0
	}
	return m.evictFreeBytes(int64(float64(m.FreeBytes()) * frac))
}

// evictFreeBytes releases free-list pointers in eviction-score order until
// target bytes are returned to the device (or the list is empty).
func (m *Manager) evictFreeBytes(target int64) int64 {
	var released int64
	for released < target {
		p := m.popFreeAny()
		if p == nil {
			break
		}
		released += p.size
		m.releaseFreePointer(p)
	}
	return released
}

// Defragment compacts all live allocations. Free-list pointers are
// released first since their addresses would be invalidated anyway.
func (m *Manager) Defragment() {
	for {
		p := m.popFreeAny()
		if p == nil {
			break
		}
		m.releaseFreePointer(p)
	}
	live := make([]*Pointer, 0, len(m.live))
	for p := range m.live {
		live = append(live, p)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].addr < live[j].addr })
	m.dev.defragment(live)
	m.Stats.Defrags++
}

// Close releases every pointer the manager owns — the recyclable free list
// first, then any still-live pointers — returning all device memory. The
// lineage cache must be cleared before Close so the recycle callback finds
// no entries to invalidate (and charges no device-to-host eviction time).
// After Close the manager is empty but reusable.
func (m *Manager) Close() {
	for {
		p := m.popFreeAny()
		if p == nil {
			break
		}
		m.releaseFreePointer(p)
	}
	for p := range m.live {
		delete(m.live, p)
		p.RefCount = 0
		if m.onRecycle != nil {
			m.onRecycle(p)
		}
		m.dev.Free(p)
	}
}

// PoolName is the arbiter pool name of GPU device memory.
const PoolName = "gpu"

// DemotableLive returns the live cached pointers (those wrapped by lineage
// cache entries) in ascending eviction-score order, tie-broken by device
// address for determinism — the candidate list for the device-to-host rung
// of the demotion ladder.
func (m *Manager) DemotableLive() []*Pointer {
	var out []*Pointer
	for p := range m.live {
		if p.Cached && !p.freed {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := m.score(out[i]), m.score(out[j])
		if si != sj {
			return si < sj
		}
		return out[i].addr < out[j].addr
	})
	return out
}

// Surrender removes a pointer from the manager and frees its device memory
// without invoking the recycle callback: the caller (the demotion ladder)
// has already detached the lineage-cache side and charged the D2H transfer,
// so invoking the callback would charge it a second time.
func (m *Manager) Surrender(p *Pointer) {
	if p.freed {
		return
	}
	delete(m.live, p)
	m.removeFromFree(p)
	p.RefCount = 0
	m.dev.Free(p)
}

// memPool adapts the manager to memctl.Pool. Used/Budget are the raw device
// occupancy; Evict releases recyclable free-list pointers; Demote runs the
// runtime-installed demoter, which moves cached live pointers down to the
// host cache through the lineage cache.
type memPool struct {
	m       *Manager
	demoter func(need int64) int64
}

func (p memPool) Name() string  { return PoolName }
func (p memPool) Used() int64   { return p.m.dev.Used() }
func (p memPool) Budget() int64 { return p.m.dev.Capacity() }

func (p memPool) Victims(max int) []memctl.Victim {
	var ptrs []*Pointer
	for _, q := range p.m.free {
		ptrs = append(ptrs, q...)
	}
	sort.Slice(ptrs, func(i, j int) bool {
		si, sj := p.m.score(ptrs[i]), p.m.score(ptrs[j])
		if si != sj {
			return si < sj
		}
		return ptrs[i].addr < ptrs[j].addr
	})
	if max >= 0 && len(ptrs) > max {
		ptrs = ptrs[:max]
	}
	out := make([]memctl.Victim, len(ptrs))
	for i, q := range ptrs {
		out[i] = memctl.Victim{Candidate: candidate(q), Score: p.m.score(q)}
	}
	return out
}

func (p memPool) Evict(need int64) int64 { return p.m.evictFreeBytes(need) }

func (p memPool) Demote(need int64) int64 {
	if p.demoter == nil {
		return 0
	}
	return p.demoter(need)
}

// MemPool returns the arbiter pool view of device memory. demoter (may be
// nil) implements the device-to-host rung of the demotion ladder.
func (m *Manager) MemPool(demoter func(need int64) int64) memctl.Pool {
	return memPool{m: m, demoter: demoter}
}

// recycleExact serves an allocation by recycling the lowest-score free
// pointer of the exact size, invalidating its cache entry.
func (m *Manager) recycleExact(size int64, height int, computeCost float64) *Pointer {
	p := m.popFreeExact(size)
	if p == nil {
		return nil
	}
	if m.onRecycle != nil {
		m.onRecycle(p)
	}
	m.Stats.Recycled++
	p.Cached = false
	p.RefCount = 1
	p.Height = height
	p.ComputeCost = computeCost
	p.LastAccess = m.dev.clock.Now()
	p.value = nil
	m.live[p] = struct{}{}
	return p
}
