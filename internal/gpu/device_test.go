package gpu

import (
	"errors"
	"testing"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/vtime"
)

func newTestDevice(capacity int64) (*Device, *vtime.Clock) {
	clock := vtime.New()
	return NewDevice(clock, costs.Default(), "gpu0", capacity), clock
}

func TestMallocFree(t *testing.T) {
	d, _ := newTestDevice(1024)
	p, err := d.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if d.Used() != 512 || !p.Valid() {
		t.Fatalf("Used = %d, want 512", d.Used())
	}
	d.Free(p)
	if d.Used() != 0 || p.Valid() {
		t.Fatal("Free did not release memory")
	}
	if d.Stats.Mallocs != 1 || d.Stats.Frees != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestMallocOOM(t *testing.T) {
	d, _ := newTestDevice(100)
	if _, err := d.Malloc(200); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	d, _ := newTestDevice(1024)
	p, _ := d.Malloc(10)
	d.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	d.Free(p)
}

func TestH2DAndD2HRoundTrip(t *testing.T) {
	d, _ := newTestDevice(1 << 20)
	m := data.Rand(8, 8, -1, 1, 1, 3)
	p, err := d.H2D(m)
	if err != nil {
		t.Fatal(err)
	}
	back := d.D2H(p)
	if !data.AllClose(m, back, 0) {
		t.Fatal("H2D/D2H round trip changed values")
	}
	// The copy must be a copy, not an alias.
	back.Set(0, 0, 999)
	if p.Value().At(0, 0) == 999 {
		t.Fatal("D2H aliases device memory")
	}
}

func TestKernelAsyncAndSyncBarrier(t *testing.T) {
	d, clock := newTestDevice(1 << 20)
	out, _ := d.Malloc(8 * 8 * 8)
	before := clock.Now()
	// A big kernel: 1e9 flops at 10 TFLOP/s = 100us on the stream.
	d.Launch(1e9, out, func() *data.Matrix { return data.Ones(8, 8) })
	hostAdvance := clock.Now() - before
	if hostAdvance > 1e-5 {
		t.Fatalf("kernel launch blocked host for %g s", hostAdvance)
	}
	// D2H must wait for the kernel (sync barrier).
	_ = d.D2H(out)
	if clock.Now()-before < 1e-4 {
		t.Fatalf("D2H did not synchronize with the stream: elapsed %g", clock.Now()-before)
	}
}

func TestFreeSynchronizesStream(t *testing.T) {
	d, clock := newTestDevice(1 << 20)
	out, _ := d.Malloc(64)
	d.Launch(1e9, out, func() *data.Matrix { return data.Ones(2, 2) })
	d.Free(out)
	if clock.Now() < 1e-4 {
		t.Fatalf("Free did not synchronize: now = %g", clock.Now())
	}
	if d.Stats.Syncs == 0 {
		t.Fatal("no sync recorded")
	}
}

func TestFigure2dShape(t *testing.T) {
	// Reproduce the Figure 2(d) microbenchmark shape at unit scale: for a
	// small affine layer, alloc/free and copy dominate compute.
	d, clock := newTestDevice(1 << 30)
	batch, dim := 128, 1000
	w := data.RandNorm(dim, dim, 0, 0.1, 1)
	x := data.RandNorm(batch, dim, 0, 1, 2)
	wp, _ := d.H2D(w)
	var allocFree, compute, copyT float64
	for i := 0; i < 10; i++ {
		xp, _ := d.H2D(x)
		t0 := clock.Now()
		out, err := d.Malloc(int64(batch*dim) * 8)
		if err != nil {
			t.Fatal(err)
		}
		t1 := clock.Now()
		d.Launch(costs.MatMulFlops(batch, dim, dim), out, func() *data.Matrix {
			return data.ReLU(data.MatMul(x, w.Clone()))
		})
		d.Sync()
		t2 := clock.Now()
		_ = d.D2H(out)
		t3 := clock.Now()
		d.Free(out)
		t4 := clock.Now()
		allocFree += (t1 - t0) + (t4 - t3)
		compute += t2 - t1
		copyT += t3 - t2
		d.Free(xp)
	}
	_ = wp
	if allocFree < 2*compute {
		t.Errorf("alloc+free %.2g < 2x compute %.2g; paper shows 4.6x", allocFree, compute)
	}
	if copyT < 4*compute {
		t.Errorf("copy %.2g < 4x compute %.2g; paper shows 9x", copyT, compute)
	}
}
