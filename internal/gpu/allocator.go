// Package gpu simulates a CUDA-like accelerator backend: a single command
// stream with asynchronous kernel execution, synchronization barriers on
// device-to-host copies and deallocations, a device memory space with a
// first-fit allocator (so fragmentation is real, not modeled), and the
// MEMPHIS unified memory manager that combines lineage-based pointer reuse
// with recycling of free pointers (paper §2.3 and §4.2).
package gpu

import "sort"

// segment is a free region [addr, addr+size) of the device address space.
type segment struct {
	addr, size int64
}

// allocator is a first-fit free-list allocator over a virtual device
// address space. It is deliberately simple: repeated allocate/free cycles
// with mixed sizes produce genuine external fragmentation, which is the
// failure mode MEMPHIS's recycling and eviction-injection address.
type allocator struct {
	capacity int64
	used     int64
	free     []segment // sorted by addr, coalesced
}

func newAllocator(capacity int64) *allocator {
	return &allocator{capacity: capacity, free: []segment{{0, capacity}}}
}

// alloc returns the address of a free region of the given size, or false if
// no single region is large enough (even if total free space would suffice —
// that is fragmentation).
func (a *allocator) alloc(size int64) (int64, bool) {
	if size <= 0 {
		return 0, false
	}
	for i := range a.free {
		if a.free[i].size >= size {
			addr := a.free[i].addr
			a.free[i].addr += size
			a.free[i].size -= size
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.used += size
			return addr, true
		}
	}
	return 0, false
}

// release returns [addr, addr+size) to the free list, coalescing neighbors.
func (a *allocator) release(addr, size int64) {
	a.used -= size
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr >= addr })
	a.free = append(a.free, segment{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = segment{addr, size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// available returns the total free bytes (possibly fragmented).
func (a *allocator) available() int64 { return a.capacity - a.used }

// largestFree returns the size of the largest contiguous free region.
func (a *allocator) largestFree() int64 {
	var best int64
	for _, s := range a.free {
		if s.size > best {
			best = s.size
		}
	}
	return best
}

// fragmented reports whether total free space exceeds the largest free
// region, i.e. an allocation of available() bytes would fail.
func (a *allocator) fragmented() bool { return a.largestFree() < a.available() }

// reset restores the allocator to a single free region (defragmentation).
func (a *allocator) reset() {
	a.used = 0
	a.free = []segment{{0, a.capacity}}
}
