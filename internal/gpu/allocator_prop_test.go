package gpu

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"memphis/internal/faults"
)

// checkTiling asserts the core allocator invariant: the device's free
// segments plus every pointer the manager owns (live and free lists) exactly
// tile the virtual address space [0, capacity) with no overlap and no gap.
func checkTiling(t *testing.T, m *Manager) {
	t.Helper()
	var regions []segment
	for _, s := range m.dev.alloc.free {
		if s.size <= 0 {
			t.Fatalf("free list holds empty segment %+v", s)
		}
		regions = append(regions, s)
	}
	collect := func(p *Pointer) {
		if p.freed {
			t.Fatal("manager owns a freed pointer")
		}
		regions = append(regions, segment{p.addr, p.size})
	}
	for p := range m.live {
		collect(p)
	}
	for _, q := range m.free {
		for _, p := range q {
			collect(p)
		}
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].addr < regions[j].addr })
	var next int64
	for _, r := range regions {
		if r.addr < next {
			t.Fatalf("regions overlap at %d (next expected %d)", r.addr, next)
		}
		if r.addr > next {
			t.Fatalf("gap [%d, %d) not covered by any region", next, r.addr)
		}
		next = r.addr + r.size
	}
	if next != m.dev.Capacity() {
		t.Fatalf("regions tile [0, %d), capacity %d", next, m.dev.Capacity())
	}
}

// TestAllocatorTilingProperty drives random alloc/release/retain/evict/
// defragment interleavings — with injected cudaMalloc failures — and checks
// after every step that live+free regions exactly tile the address space.
func TestAllocatorTilingProperty(t *testing.T) {
	sizes := []int64{64, 256, 1024, 4096, 16384}
	for _, seed := range []int64{1, 2, 7} {
		rng := rand.New(rand.NewSource(seed))
		m, _ := newTestManager(1 << 17) // 128 KiB: pressure is frequent
		m.SetInjector(faults.NewInjector(&faults.Plan{
			Seed:  seed,
			Sites: map[faults.Site]faults.Trigger{faults.GPUAlloc: {Probability: 0.3}},
		}))
		var owned []*Pointer  // pointers with a live reference we must release
		var parked []*Pointer // released pointers that may sit in the free list
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // allocate
				size := sizes[rng.Intn(len(sizes))]
				p, err := m.Allocate(size, 1+rng.Intn(4), rng.Float64()*1e-3)
				if err != nil {
					if !errors.Is(err, ErrOOM) {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
				} else {
					owned = append(owned, p)
				}
			case op < 8: // release a live reference
				if len(owned) > 0 {
					i := rng.Intn(len(owned))
					p := owned[i]
					owned = append(owned[:i], owned[i+1:]...)
					m.Release(p)
					parked = append(parked, p)
				}
			case op < 9: // retain a parked pointer (lineage reuse)
				if len(parked) > 0 {
					i := rng.Intn(len(parked))
					p := parked[i]
					parked = append(parked[:i], parked[i+1:]...)
					if m.Retain(p) {
						owned = append(owned, p)
					}
				}
			default: // memory-pressure maintenance
				if rng.Intn(4) == 0 {
					m.Defragment()
				} else {
					m.EvictPercent(0.25 + rng.Float64()*0.75)
				}
			}
			checkTiling(t, m)
		}
		if m.Stats.InjectedOOMs == 0 {
			t.Fatalf("seed %d: p=0.3 injection never fired over 2000 steps", seed)
		}
		for _, p := range owned {
			m.Release(p)
		}
		m.Close()
		checkTiling(t, m)
		if m.dev.Used() != 0 {
			t.Fatalf("seed %d: %d bytes leaked after Close", seed, m.dev.Used())
		}
	}
}

// TestInjectedMallocFailureRecovers: with room on the device and an empty
// free list, an injected cudaMalloc failure is absorbed by the final retry
// and the caller still gets memory.
func TestInjectedMallocFailureRecovers(t *testing.T) {
	m, d := newTestManager(1 << 20)
	m.SetInjector(faults.NewInjector(&faults.Plan{
		Seed:  1,
		Sites: map[faults.Site]faults.Trigger{faults.GPUAlloc: {Nth: []int64{1}}},
	}))
	p, err := m.Allocate(4096, 1, 0)
	if err != nil {
		t.Fatalf("injected transient failure must recover: %v", err)
	}
	if m.Stats.InjectedOOMs != 1 {
		t.Fatalf("InjectedOOMs = %d, want 1", m.Stats.InjectedOOMs)
	}
	if !p.Valid() || d.Used() != 4096 {
		t.Fatal("recovered allocation is not live on the device")
	}
}

// TestInjectedMallocDeterministic: the same plan yields the same injected
// failure count and identical virtual time across runs.
func TestInjectedMallocDeterministic(t *testing.T) {
	run := func() (int64, float64) {
		m, d := newTestManager(1 << 16)
		m.SetInjector(faults.NewInjector(&faults.Plan{
			Seed:  99,
			Sites: map[faults.Site]faults.Trigger{faults.GPUAlloc: {Probability: 0.2}},
		}))
		var ps []*Pointer
		for k := 0; k < 200; k++ {
			if p, err := m.Allocate(1024, 1, 0); err == nil {
				ps = append(ps, p)
			}
			if len(ps) > 8 {
				m.Release(ps[0])
				ps = ps[1:]
			}
		}
		return m.Stats.InjectedOOMs, d.clock.Now()
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 == 0 {
		t.Fatal("injection never fired")
	}
	if n1 != n2 || t1 != t2 {
		t.Fatalf("replay diverged: (%d, %v) vs (%d, %v)", n1, t1, n2, t2)
	}
}
