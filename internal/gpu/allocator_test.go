package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocatorBasic(t *testing.T) {
	a := newAllocator(100)
	p1, ok := a.alloc(40)
	if !ok || p1 != 0 {
		t.Fatalf("first alloc at %d ok=%v, want 0 true", p1, ok)
	}
	p2, ok := a.alloc(40)
	if !ok || p2 != 40 {
		t.Fatalf("second alloc at %d ok=%v, want 40 true", p2, ok)
	}
	if _, ok := a.alloc(40); ok {
		t.Fatal("third alloc of 40 in 100 must fail")
	}
	if a.available() != 20 {
		t.Fatalf("available = %d, want 20", a.available())
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	a := newAllocator(10)
	if _, ok := a.alloc(0); ok {
		t.Fatal("zero-size alloc must fail")
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	a := newAllocator(90)
	p1, _ := a.alloc(30)
	p2, _ := a.alloc(30)
	p3, _ := a.alloc(30)
	a.release(p1, 30)
	a.release(p3, 30)
	// Free space is fragmented: 30 at front, 30 at back.
	if a.largestFree() != 30 {
		t.Fatalf("largestFree = %d, want 30", a.largestFree())
	}
	if !a.fragmented() {
		t.Fatal("allocator should report fragmentation")
	}
	a.release(p2, 30)
	// All free regions must coalesce into one.
	if a.largestFree() != 90 || len(a.free) != 1 {
		t.Fatalf("coalescing failed: largest=%d segments=%d", a.largestFree(), len(a.free))
	}
	if a.fragmented() {
		t.Fatal("fully free allocator is not fragmented")
	}
}

func TestAllocatorFragmentationBlocksLargeAlloc(t *testing.T) {
	a := newAllocator(100)
	var ptrs []int64
	for i := 0; i < 10; i++ {
		p, ok := a.alloc(10)
		if !ok {
			t.Fatal("setup alloc failed")
		}
		ptrs = append(ptrs, p)
	}
	// Free every other block: 50 bytes free but max contiguous 10.
	for i := 0; i < 10; i += 2 {
		a.release(ptrs[i], 10)
	}
	if a.available() != 50 {
		t.Fatalf("available = %d, want 50", a.available())
	}
	if _, ok := a.alloc(20); ok {
		t.Fatal("fragmented allocator must fail a 20-byte request")
	}
	a.reset()
	if _, ok := a.alloc(100); !ok {
		t.Fatal("reset (defrag) should allow full-capacity alloc")
	}
}

// Property: after any sequence of allocs and releases, the free segments are
// sorted, non-overlapping, non-adjacent, and account for capacity-used bytes.
func TestAllocatorInvariants(t *testing.T) {
	type block struct{ addr, size int64 }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newAllocator(1000)
		var held []block
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 || len(held) == 0 {
				size := int64(1 + rng.Intn(100))
				if addr, ok := a.alloc(size); ok {
					held = append(held, block{addr, size})
				}
			} else {
				i := rng.Intn(len(held))
				a.release(held[i].addr, held[i].size)
				held = append(held[:i], held[i+1:]...)
			}
			// Invariants.
			var free int64
			for k, s := range a.free {
				free += s.size
				if s.size <= 0 {
					return false
				}
				if k > 0 {
					prev := a.free[k-1]
					if prev.addr+prev.size >= s.addr {
						return false // overlap or missed coalesce
					}
				}
			}
			var used int64
			for _, b := range held {
				used += b.size
			}
			if free != 1000-used || a.available() != free {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
