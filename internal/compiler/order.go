package compiler

import (
	"sort"

	"memphis/internal/core"
	"memphis/internal/ir"
)

// statementOrder returns the emission order of statements. The default is
// program order (depth-first linearization). With MaxParallelize, the
// Algorithm-2 ordering applies: within each call-delimited segment,
// statements rooting remote operator chains (Spark jobs, GPU chains) are
// linearized first, longest chain first, so asynchronous operators can
// trigger them before dependent local work (§5.3).
func (bc *blockCompiler) statementOrder(stmts []ir.Stmt, roots []*ir.Node) []int {
	order := make([]int, len(stmts))
	for i := range order {
		order[i] = i
	}
	if !bc.conf.MaxParallelize {
		return order
	}
	counts := make(map[*ir.Node]int)
	var remoteOps func(n *ir.Node) int
	remoteOps = func(n *ir.Node) int {
		if c, ok := counts[n]; ok {
			return c
		}
		counts[n] = 0 // break cycles defensively
		c := 0
		if n.Op != "var" && n.Op != "lit" && n.Op != "call" {
			if b := bc.placement(n); b == core.BackendSpark || b == core.BackendGPU {
				c = 1
			}
			for _, in := range n.Inputs {
				c += remoteOps(in)
			}
		}
		counts[n] = c
		return c
	}
	out := make([]int, 0, len(stmts))
	segStart := 0
	flush := func(end int) {
		n := end - segStart
		if n <= 0 {
			return
		}
		// Anti-dependency (WAR) edges: a statement assigning v must not
		// move before an earlier statement that reads v from outside the
		// block (an unresolved leaf read of the previous binding).
		written := make(map[string]int) // var -> first writing stmt (segment-relative)
		reads := make([]map[string]struct{}, n)
		for k := 0; k < n; k++ {
			i := segStart + k
			reads[k] = make(map[string]struct{})
			ir.VarsRead(stmts[i].Expr, reads[k])
			for _, tgt := range stmts[i].Targets {
				if _, ok := written[tgt]; !ok {
					written[tgt] = k
				}
			}
		}
		preds := make([][]int, n) // preds[j] must be emitted before j
		for j := 0; j < n; j++ {
			for _, tgt := range stmts[segStart+j].Targets {
				for i := 0; i < j; i++ {
					if _, rd := reads[i][tgt]; !rd {
						continue
					}
					if fw, ok := written[tgt]; ok && fw < i {
						continue // read was resolved to an in-block node
					}
					preds[j] = append(preds[j], i)
				}
			}
		}
		// Desired priority: remote-rooted statements first, longer chains
		// first, then program order; emitted greedily under WAR edges.
		order := make([]int, n)
		for k := range order {
			order[k] = k
		}
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := remoteOps(roots[segStart+order[a]]), remoteOps(roots[segStart+order[b]])
			if (ca > 0) != (cb > 0) {
				return ca > 0
			}
			if ca > 0 && cb > 0 && ca != cb {
				return ca > cb
			}
			return false
		})
		emitted := make([]bool, n)
		for remaining := n; remaining > 0; {
			progress := false
			for _, k := range order {
				if emitted[k] {
					continue
				}
				ready := true
				for _, p := range preds[k] {
					if !emitted[p] {
						ready = false
						break
					}
				}
				if ready {
					emitted[k] = true
					out = append(out, segStart+k)
					remaining--
					progress = true
				}
			}
			if !progress {
				// Cycles cannot occur (edges point forward), but emit the
				// rest in program order defensively.
				for k := 0; k < n; k++ {
					if !emitted[k] {
						emitted[k] = true
						out = append(out, segStart+k)
						remaining--
					}
				}
			}
		}
	}
	for i, st := range stmts {
		if st.Expr.Op == "call" {
			flush(i)
			out = append(out, i)
			segStart = i + 1
		}
	}
	flush(len(stmts))
	return out
}

// consumersOf maps each output name to the indices of instructions reading
// it after its producer.
func consumersOf(insts []Instruction) map[string][]int {
	c := make(map[string][]int)
	for i, in := range insts {
		for _, op := range in.Inputs {
			if !IsLiteral(op) {
				c[op] = append(c[op], i)
			}
		}
	}
	return c
}

// injectBlockCheckpoints inserts a checkpoint after Spark instructions
// whose outputs feed two or more other Spark instructions: the overlapping
// jobs would otherwise both lazily recompute the shared prefix (§5.2,
// rewrite 1).
func injectBlockCheckpoints(insts []Instruction) []Instruction {
	cons := consumersOf(insts)
	out := make([]Instruction, 0, len(insts))
	for _, in := range insts {
		out = append(out, in)
		if in.Kind != KindOp || in.Backend != core.BackendSpark {
			continue
		}
		nSpark := 0
		for _, ci := range cons[in.Outputs[0]] {
			if insts[ci].Backend == core.BackendSpark && insts[ci].Kind == KindOp {
				nSpark++
			}
		}
		if nSpark >= 2 {
			cp := CheckpointInstruction(in.Outputs[0])
			cp.Shape = in.Shape
			out = append(out, cp)
		}
	}
	return out
}

// insertPrefetch places a prefetch instruction after the roots of remote
// operator chains: Spark or GPU instructions whose output is consumed by a
// local (CP) instruction, i.e. where a blocking collect or
// device-to-host copy would otherwise occur (§5.1).
func insertPrefetch(insts []Instruction) []Instruction {
	cons := consumersOf(insts)
	out := make([]Instruction, 0, len(insts))
	for _, in := range insts {
		out = append(out, in)
		if in.Kind != KindOp {
			continue
		}
		if in.Backend != core.BackendSpark && in.Backend != core.BackendGPU {
			continue
		}
		remoteConsumer, localConsumer := false, false
		for _, ci := range cons[in.Outputs[0]] {
			if insts[ci].Backend == in.Backend {
				remoteConsumer = true
			} else if insts[ci].Backend == core.BackendCP && insts[ci].Kind == KindOp {
				localConsumer = true
			}
		}
		// Roots of remote chains only: no same-backend consumer.
		if localConsumer && !remoteConsumer {
			out = append(out, Instruction{
				Kind:    KindPrefetch,
				Op:      "prefetch",
				Inputs:  []string{in.Outputs[0]},
				Outputs: []string{in.Outputs[0]},
				Backend: in.Backend,
				Shape:   in.Shape,
			})
		}
	}
	return out
}

// insertBroadcast places the asynchronous broadcast operator after the last
// local operator of chains feeding Spark instructions, overlapping
// partitioning/serialization with local work (§5.1).
func insertBroadcast(insts []Instruction, conf Config) []Instruction {
	cons := consumersOf(insts)
	out := make([]Instruction, 0, len(insts))
	for _, in := range insts {
		out = append(out, in)
		if in.Kind != KindOp || in.Backend != core.BackendCP || in.Op == "call" {
			continue
		}
		if in.Shape.Bytes() > conf.OpMemBudget {
			continue // too large to broadcast
		}
		feedsSpark := false
		for _, ci := range cons[in.Outputs[0]] {
			if insts[ci].Backend == core.BackendSpark && insts[ci].Kind == KindOp {
				feedsSpark = true
			}
		}
		if feedsSpark {
			out = append(out, Instruction{
				Kind:    KindBroadcast,
				Op:      "broadcast",
				Inputs:  []string{in.Outputs[0]},
				Outputs: []string{in.Outputs[0]},
				Backend: core.BackendSpark,
				Shape:   in.Shape,
			})
		}
	}
	return out
}
