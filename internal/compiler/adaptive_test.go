package compiler

import (
	"testing"

	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/ir"
)

// stubEstimator is a frozen costs.Estimator: fixed effective model, fixed
// per-op reuse probability, fixed epoch. It lets placement tests dial the
// closed loop to an exact state.
type stubEstimator struct {
	m     *costs.Model
	p     map[string]float64
	epoch uint64
}

func (s *stubEstimator) Effective() *costs.Model                { return s.m }
func (s *stubEstimator) ReuseProb(op string, class int) float64 { return s.p[op] }
func (s *stubEstimator) Epoch() uint64                          { return s.epoch }
func (s *stubEstimator) Fingerprint() uint64                    { return s.epoch * 0x9e3779b97f4a7c15 }

func TestDefaultConfigDerivedFromCostModel(t *testing.T) {
	// The historic hard-coded thresholds (1 MB, 4096 cells) must fall out
	// of the default cost model exactly, so pinned baselines see the same
	// static placement as before the derivation.
	conf := DefaultConfig()
	if conf.OpMemBudget != 1<<20 {
		t.Fatalf("derived OpMemBudget = %d, want %d", conf.OpMemBudget, 1<<20)
	}
	if conf.GPUMinCells != 4096 {
		t.Fatalf("derived GPUMinCells = %d, want 4096", conf.GPUMinCells)
	}
}

func TestDerivedThresholdsReproduceStaticPlacement(t *testing.T) {
	// Every placement decision under the derived DefaultConfig must match
	// the legacy literal thresholds across representative blocks spanning
	// the CP/Spark and CP/GPU boundaries.
	legacy := Config{OpMemBudget: 1 << 20, GPUMinCells: 4096}
	derived := DefaultConfig()
	cases := []struct {
		name string
		env  map[string]ir.Shape
		bb   *ir.BasicBlock
		gpu  bool
	}{
		{"small-local", shapes("a", ir.Shape{Rows: 8, Cols: 8}),
			ir.BB(ir.Assign("b", ir.Add(ir.Var("a"), ir.Lit(1)))), false},
		{"large-spark", shapes("X", ir.Shape{Rows: 100000, Cols: 100}),
			ir.BB(ir.Assign("g", ir.TSMM(ir.Var("X")))), false},
		{"boundary-spark", shapes("X", ir.Shape{Rows: (1 << 17) + 1, Cols: 1}),
			ir.BB(ir.Assign("g", ir.ColSums(ir.Var("X")))), false},
		{"gpu-chain", shapes("X", ir.Shape{Rows: 128, Cols: 128}, "W", ir.Shape{Rows: 128, Cols: 128}),
			ir.BB(ir.Assign("h", ir.ReLU(ir.MatMul(ir.Var("X"), ir.Var("W"))))), true},
		{"gpu-too-small", shapes("X", ir.Shape{Rows: 16, Cols: 16}, "W", ir.Shape{Rows: 16, Cols: 16}),
			ir.BB(ir.Assign("h", ir.MatMul(ir.Var("X"), ir.Var("W")))), true},
	}
	for _, tc := range cases {
		l, d := legacy, derived
		l.GPUEnabled, d.GPUEnabled = tc.gpu, tc.gpu
		got := CompileBlock(tc.bb, tc.env, d)
		want := CompileBlock(tc.bb, tc.env, l)
		if len(got) != len(want) {
			t.Fatalf("%s: stream lengths differ: %d vs %d", tc.name, len(got), len(want))
		}
		for i := range got {
			if got[i].Backend != want[i].Backend {
				t.Fatalf("%s: inst %d (%s) placed on %v under derived config, %v under legacy",
					tc.name, i, got[i].Op, got[i].Backend, want[i].Backend)
			}
		}
	}
}

// sweepPlacement compiles `g = tsmm(X)` for X with the given rows and
// returns the tsmm's backend.
func sweepPlacement(t *testing.T, conf Config, rows, cols int) core.Backend {
	t.Helper()
	bb := ir.BB(ir.Assign("g", ir.TSMM(ir.Var("X"))))
	insts := CompileBlock(bb, shapes("X", ir.Shape{Rows: rows, Cols: cols}), conf)
	in := findOp(insts, "tsmm")
	if in == nil {
		t.Fatalf("no tsmm in %v", ops(insts))
	}
	return in.Backend
}

// crossoverModel returns a model whose CP/Spark break-even for tsmm over
// n x 4 inputs sits near n ~ 1000: CP throughput is tiny, Spark's is high,
// and the job overhead is small enough to amortize quickly.
func crossoverModel() *costs.Model {
	m := *costs.Default()
	m.CPUFlops = 1e6
	m.SparkFlops = 1e9
	m.SparkJobOverhead = 20e-3
	m.SparkStageOverhead = 10e-3
	m.CollectBW = 1e12
	return &m
}

func TestAdaptiveSparkCrossoverSweep(t *testing.T) {
	// Property test: sweeping the input size across the CP/Spark break-even
	// with reuse probability 0, adaptive placement must (a) agree with the
	// argmin of the expected-cost formula at every size, and (b) flip
	// exactly once, CP -> Spark; static placement over the same sweep must
	// never flip (all sizes are far below OpMemBudget).
	m := crossoverModel()
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 40 // static: everything local; adaptive memory guard never trips
	conf.Estimator = &stubEstimator{m: m, p: map[string]float64{}}

	const cols = 4
	flips := 0
	prev := core.Backend(-1)
	for rows := 64; rows <= 4096; rows += 64 {
		got := sweepPlacement(t, conf, rows, cols)
		// Independent expected-cost computation (p = 0 collapses E[b] to
		// the raw cost).
		flops := costs.MatMulFlops(cols, rows, cols)
		cp := m.Interpret + costs.Compute(flops, m.CPUFlops)
		sp := costs.Compute(flops, m.SparkFlops) + m.SparkJobOverhead + m.SparkStageOverhead +
			costs.Transfer(int64(cols*cols*8), m.CollectBW, 0)
		want := core.BackendCP
		if sp < cp {
			want = core.BackendSpark
		}
		if got != want {
			t.Fatalf("rows=%d: adaptive placed %v, expected-cost argmin is %v (cp=%g sp=%g)",
				rows, got, want, cp, sp)
		}
		if prev >= 0 && got != prev {
			flips++
			if !(prev == core.BackendCP && got == core.BackendSpark) {
				t.Fatalf("rows=%d: flip direction %v -> %v, want CP -> Spark", rows, prev, got)
			}
		}
		prev = got

		static := conf
		static.Estimator = nil
		if b := sweepPlacement(t, static, rows, cols); b != core.BackendCP {
			t.Fatalf("rows=%d: static placement flipped to %v inside the sweep", rows, b)
		}
	}
	if flips != 1 {
		t.Fatalf("adaptive flipped %d times across the sweep, want exactly 1", flips)
	}
}

func TestAdaptiveGPUCrossoverSweep(t *testing.T) {
	// Same property across the CP/GPU break-even: fixed per-launch
	// overheads amortize as the matmul grows, so adaptive flips CP -> GPU
	// exactly once, and at every size it matches the expected-cost argmin.
	m := *costs.Default()
	m.CPUFlops = 1e8
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 40
	conf.GPUEnabled = true
	conf.GPUMinCells = 1 << 62 // static path would never pick GPU in this sweep
	conf.Estimator = &stubEstimator{m: &m, p: map[string]float64{}}

	flips := 0
	prev := core.Backend(-1)
	for n := 8; n <= 256; n += 8 {
		bb := ir.BB(ir.Assign("h", ir.MatMul(ir.Var("X"), ir.Var("W"))))
		env := shapes("X", ir.Shape{Rows: n, Cols: n}, "W", ir.Shape{Rows: n, Cols: n})
		insts := CompileBlock(bb, env, conf)
		got := findOp(insts, "mm").Backend

		flops := costs.MatMulFlops(n, n, n)
		cp := m.Interpret + costs.Compute(flops, m.CPUFlops)
		inBytes := int64(2 * n * n * 8)
		gpu := costs.Compute(flops, m.GPUFlops) + m.CudaMalloc + m.KernelLaunch +
			costs.Transfer(inBytes, m.H2DBW, m.CopyLatency)
		want := core.BackendCP
		if gpu < cp {
			want = core.BackendGPU
		}
		if got != want {
			t.Fatalf("n=%d: adaptive placed %v, expected-cost argmin is %v (cp=%g gpu=%g)",
				n, got, want, cp, gpu)
		}
		if prev >= 0 && got != prev {
			flips++
			if !(prev == core.BackendCP && got == core.BackendGPU) {
				t.Fatalf("n=%d: flip direction %v -> %v, want CP -> GPU", n, prev, got)
			}
		}
		prev = got

		static := conf
		static.Estimator = nil
		if b := findOp(CompileBlock(bb, env, static), "mm").Backend; b != core.BackendCP {
			t.Fatalf("n=%d: static placement flipped to %v inside the sweep", n, b)
		}
	}
	if flips != 1 {
		t.Fatalf("adaptive flipped %d times across the sweep, want exactly 1", flips)
	}
}

func TestAdaptiveReuseFlipsSparkToCP(t *testing.T) {
	// The reuse-driven crossover: pick a size where Spark wins on raw cost
	// (p = 0). As the observed reuse probability rises toward 1, the
	// expected cost collapses to the hit-service cost — one probe on CP,
	// two on Spark — so the same operator flips back to CP.
	m := crossoverModel()
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 40
	est := &stubEstimator{m: m, p: map[string]float64{"tsmm": 0}}
	conf.Estimator = est

	const rows, cols = 4096, 4
	if b := sweepPlacement(t, conf, rows, cols); b != core.BackendSpark {
		t.Fatalf("at p=0 placement = %v, want Spark (raw-cost winner)", b)
	}
	est.p["tsmm"] = 1
	if b := sweepPlacement(t, conf, rows, cols); b != core.BackendCP {
		t.Fatalf("at p=1 placement = %v, want CP (hit-service winner)", b)
	}
}

func TestAdaptiveMemoryGuardForcesSpark(t *testing.T) {
	// Adaptive mode rebalances cost, not memory safety: operators whose
	// size estimate exceeds adaptiveMemSlack * OpMemBudget are Spark-forced
	// regardless of reuse probability.
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.Estimator = &stubEstimator{m: costs.Default(), p: map[string]float64{"tsmm": 1}}
	if b := sweepPlacement(t, conf, 100000, 100); b != core.BackendSpark {
		t.Fatalf("over-slack operator placed on %v, want forced Spark", b)
	}
}

func TestFoldIncludesCalibrationEpoch(t *testing.T) {
	base := DefaultConfig()
	plain := base.Fold()
	e1 := &stubEstimator{m: costs.Default(), epoch: 1}
	e2 := &stubEstimator{m: costs.Default(), epoch: 2}
	base.Estimator = e1
	f1 := base.Fold()
	base.Estimator = e2
	f2 := base.Fold()
	if plain == f1 {
		t.Fatal("Fold must change when an estimator is injected")
	}
	if f1 == f2 {
		t.Fatal("Fold must change across calibration epochs")
	}
	base.Estimator = e1
	if base.Fold() != f1 {
		t.Fatal("Fold must be deterministic for equal estimator state")
	}
}
