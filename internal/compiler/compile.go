package compiler

import (
	"fmt"
	"sort"

	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/ir"
)

// Config controls placement and the MEMPHIS compiler extensions.
type Config struct {
	// OpMemBudget is the operation memory: operators whose input or output
	// estimates exceed it are compiled to Spark instructions (§2.1).
	OpMemBudget int64
	// GPUEnabled turns on GPU placement for compute-intensive dense ops.
	GPUEnabled bool
	// GPUMinCells is the minimum output size for starting a GPU chain.
	GPUMinCells int
	// Async enables prefetch/broadcast operator insertion (§5.1).
	Async bool
	// MaxParallelize enables the Algorithm-2 operator ordering; otherwise
	// blocks linearize depth-first in statement order (§5.3).
	MaxParallelize bool
	// CheckpointInjection enables the within-block checkpoint rewrite for
	// overlapping Spark jobs (§5.2).
	CheckpointInjection bool
	// Fusion enables the elementwise fusion pass: maximal chains of
	// CP-placed elementwise/unary/scalar ops collapse into single fused
	// instructions executed as one loop with zero intermediate matrices.
	// Results are bitwise-identical with fusion on or off; the flag joins
	// the serving layer's compile-cache key via the config fold.
	Fusion bool

	// Estimator, when non-nil, switches operator placement from the
	// static thresholds to closed-loop expected-cost queries
	// (adaptivePlacement): each candidate backend is priced under the
	// estimator's recalibrated rates with the observed reuse probability
	// folded in. Nil keeps the static placement path byte-for-byte
	// untouched. The estimator's epoch/fingerprint join compile-cache
	// keys via Fold, so recalibration never serves stale cached plans.
	Estimator costs.Estimator
}

// DefaultConfig returns placement thresholds for simulation scale,
// derived from the default cost model's break-even points (costs.
// DeriveThresholds is anchored so the default model reproduces the
// original hand-calibrated constants: 1 MB plays the role of the paper's
// 7 GB, and 4096 cells the smallest profitable GPU chain start).
func DefaultConfig() Config {
	th := costs.DeriveThresholds(costs.Default())
	return Config{
		OpMemBudget: th.OpMemBudget,
		GPUMinCells: th.GPUMinCells,
	}
}

// blockCompiler holds per-block compilation state.
type blockCompiler struct {
	conf   Config
	env    map[string]ir.Shape
	shapes map[*ir.Node]ir.Shape
	place  map[*ir.Node]core.Backend
	name   map[*ir.Node]string
	tmp    int
	out    []Instruction
}

// CompileBlock lowers a basic block to a placed, linearized instruction
// stream given the current variable shapes (dynamic recompilation).
func CompileBlock(bb *ir.BasicBlock, env map[string]ir.Shape, conf Config) []Instruction {
	bc := &blockCompiler{
		conf:   conf,
		env:    env,
		shapes: make(map[*ir.Node]ir.Shape),
		place:  make(map[*ir.Node]core.Backend),
		name:   make(map[*ir.Node]string),
	}
	// Resolve variable references to producing nodes (intra-block) so the
	// statement DAG is explicit, applying local CSE on the way.
	bindings := make(map[string]*ir.Node)
	cse := make(map[string]*ir.Node)
	roots := make([]*ir.Node, len(bb.Stmts))
	for i, st := range bb.Stmts {
		roots[i] = bc.resolve(st.Expr, bindings, cse)
		if st.Expr.Op == "call" {
			// Call results are opaque: later reads see leaf vars, and the
			// call acts as an ordering barrier for its targets.
			for _, t := range st.Targets {
				delete(bindings, t)
				delete(bc.env, t)
			}
		} else {
			bindings[st.Targets[0]] = roots[i]
		}
	}
	order := bc.statementOrder(bb.Stmts, roots)
	// Final binding per target: the last statement assigning it names its
	// node directly; earlier assignments get temps.
	lastAssign := make(map[string]int)
	for i, st := range bb.Stmts {
		for _, t := range st.Targets {
			lastAssign[t] = i
		}
	}
	for _, i := range order {
		st := bb.Stmts[i]
		root := roots[i]
		if st.Expr.Op == "call" {
			bc.emitCall(st, root)
			continue
		}
		if conf.MaxParallelize {
			// Algorithm 2, steps 1-2: emit the statement's remote operator
			// chains first, longest first, so the prefetch/broadcast
			// operators inserted after their roots trigger all jobs before
			// any dependent local operator blocks on a result.
			bc.emitRemoteChains(root)
		}
		target := ""
		if lastAssign[st.Targets[0]] == i {
			target = st.Targets[0]
		}
		name := bc.emit(root, target)
		if target != "" && name != target {
			// The root was already emitted under another name (CSE or
			// repeated statement); emit an assignment.
			bc.out = append(bc.out, Instruction{
				Kind: KindOp, Op: "assign", Inputs: []string{name},
				Outputs: []string{target}, Backend: core.BackendCP,
				Shape:    bc.shapes[root],
				InShapes: []ir.Shape{bc.shapes[root]},
			})
		}
		// Keep env in sync so later statements see updated shapes.
		bc.env[st.Targets[0]] = bc.shapes[root]
	}
	insts := bc.out
	if conf.Fusion {
		insts = FuseElementwise(insts)
	}
	if conf.CheckpointInjection {
		insts = injectBlockCheckpoints(insts)
	}
	if conf.Async {
		insts = insertPrefetch(insts)
		insts = insertBroadcast(insts, conf)
	}
	return insts
}

// resolve replaces intra-block variable reads with their producing nodes
// and deduplicates structurally identical nodes (local CSE).
func (bc *blockCompiler) resolve(n *ir.Node, bindings map[string]*ir.Node, cse map[string]*ir.Node) *ir.Node {
	if n.Op == "var" {
		if prod, ok := bindings[n.Attr("name")]; ok {
			return prod
		}
		// Canonicalize leaf reads so structurally equal expressions share
		// node identity (enables the tsmm peephole and local CSE).
		key := "var|" + n.Attr("name")
		if prev, ok := cse[key]; ok {
			return prev
		}
		cse[key] = n
		return n
	}
	if n.Op == "lit" {
		key := "lit|" + n.Attr("value")
		if prev, ok := cse[key]; ok {
			return prev
		}
		cse[key] = n
		return n
	}
	resolved := make([]*ir.Node, len(n.Inputs))
	for i, in := range n.Inputs {
		resolved[i] = bc.resolve(in, bindings, cse)
	}
	nn := &ir.Node{Op: n.Op, Inputs: resolved, Attrs: n.Attrs}
	// Physical-operator peepholes (SystemDS-style rewrites): t(A) %*% A
	// becomes a self-product, and t(A) %*% B over two distributed inputs
	// becomes a cross-product multiply that never materializes t(A).
	if nn.Op == "mm" && len(resolved) == 2 && resolved[0].Op == "t" {
		inner := resolved[0].Inputs[0]
		switch {
		case inner == resolved[1]:
			nn = &ir.Node{Op: "tsmm", Inputs: []*ir.Node{inner}}
		case bc.shapeOf(inner).Bytes() > bc.conf.OpMemBudget &&
			bc.shapeOf(resolved[1]).Bytes() > bc.conf.OpMemBudget:
			nn = &ir.Node{Op: "cpmm", Inputs: []*ir.Node{inner, resolved[1]}}
		}
	}
	if n.Op == "call" {
		return nn // calls are never CSE'd here; function reuse handles them
	}
	key := cseKey(nn)
	if prev, ok := cse[key]; ok {
		return prev
	}
	cse[key] = nn
	return nn
}

// cseKey identifies a node by op, attrs, and input identities.
func cseKey(n *ir.Node) string {
	key := n.Op
	if n.Attrs != nil {
		ks := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			key += "|" + k + "=" + n.Attrs[k]
		}
	}
	for _, in := range n.Inputs {
		key += fmt.Sprintf("|%p", in)
	}
	return key
}

// shapeOf computes and memoizes a node's shape.
func (bc *blockCompiler) shapeOf(n *ir.Node) ir.Shape {
	if s, ok := bc.shapes[n]; ok {
		return s
	}
	// ir.Infer recurses on inputs itself; memoize bottom-up to stay linear.
	for _, in := range n.Inputs {
		bc.shapeOf(in)
	}
	var s ir.Shape
	switch n.Op {
	case "var":
		if v, ok := bc.env[n.Attr("name")]; ok {
			s = v
		} else {
			s = ir.Shape{Rows: 1, Cols: 1}
		}
	default:
		// Build a one-level env: Infer only needs leaf shapes, and all
		// non-leaf inputs are memoized here.
		s = bc.inferShallow(n)
	}
	bc.shapes[n] = s
	return s
}

// inferShallow applies ir.Infer's rule for n using memoized input shapes.
func (bc *blockCompiler) inferShallow(n *ir.Node) ir.Shape {
	// Wrap inputs as pseudo-variables so ir.Infer sees their shapes.
	env := make(map[string]ir.Shape, len(n.Inputs))
	ins := make([]*ir.Node, len(n.Inputs))
	for i, in := range n.Inputs {
		name := fmt.Sprintf("__in%d", i)
		env[name] = bc.shapes[in]
		ins[i] = ir.Var(name)
	}
	shadow := &ir.Node{Op: n.Op, Inputs: ins, Attrs: n.Attrs}
	return ir.Infer(shadow, env)
}

// placement decides the backend of a node (§2.1 operator scheduling):
// memory estimates above the operation budget go to Spark; compute-
// intensive dense operations (or GPU-local chains) go to the GPU.
func (bc *blockCompiler) placement(n *ir.Node) core.Backend {
	if b, ok := bc.place[n]; ok {
		return b
	}
	if bc.conf.Estimator != nil {
		b := bc.adaptivePlacement(n)
		bc.place[n] = b
		return b
	}
	out := bc.shapeOf(n)
	backend := core.BackendCP
	big := out.Bytes() > bc.conf.OpMemBudget
	gpuLocal := false
	for _, in := range n.Inputs {
		if bc.shapeOf(in).Bytes() > bc.conf.OpMemBudget {
			big = true
		}
		if in.Op == "var" || in.Op == "lit" {
			continue
		}
		if bc.placement(in) == core.BackendGPU {
			gpuLocal = true
		}
	}
	switch {
	case big && spSupported[n.Op]:
		backend = core.BackendSpark
	case bc.conf.GPUEnabled && gpuSupported[n.Op] &&
		(gpuLocal || (computeIntensive[n.Op] && out.Rows*out.Cols >= bc.conf.GPUMinCells)):
		backend = core.BackendGPU
	}
	bc.place[n] = backend
	return backend
}

// emitRemoteChains pre-emits the maximal Spark/GPU sub-DAGs under root in
// descending chain length (Algorithm 2). The later depth-first emission of
// the statement finds them memoized.
func (bc *blockCompiler) emitRemoteChains(root *ir.Node) {
	type chain struct {
		node *ir.Node
		size int
	}
	var chains []chain
	seen := make(map[*ir.Node]bool)
	var countRemote func(n *ir.Node) int
	countRemote = func(n *ir.Node) int {
		if n.Op == "var" || n.Op == "lit" || n.Op == "call" {
			return 0
		}
		c := 0
		if b := bc.placement(n); b == core.BackendSpark || b == core.BackendGPU {
			c = 1
		}
		for _, in := range n.Inputs {
			c += countRemote(in)
		}
		return c
	}
	var find func(n *ir.Node)
	find = func(n *ir.Node) {
		if seen[n] || n.Op == "var" || n.Op == "lit" || n.Op == "call" {
			return
		}
		seen[n] = true
		if b := bc.placement(n); b == core.BackendSpark || b == core.BackendGPU {
			chains = append(chains, chain{n, countRemote(n)})
			return // the chain root covers its own sub-DAG
		}
		for _, in := range n.Inputs {
			find(in)
		}
	}
	find(root)
	sort.SliceStable(chains, func(a, b int) bool { return chains[a].size > chains[b].size })
	for _, c := range chains {
		bc.emit(c.node, "")
	}
}

// emit lowers a node depth-first, returning its output operand name. If
// target is non-empty the node's output is bound to that variable.
func (bc *blockCompiler) emit(n *ir.Node, target string) string {
	if name, ok := bc.name[n]; ok {
		return name
	}
	switch n.Op {
	case "var":
		bc.name[n] = n.Attr("name")
		return bc.name[n]
	case "lit":
		bc.name[n] = LiteralOperand(n.Attr("value"))
		return bc.name[n]
	}
	inputs := make([]string, len(n.Inputs))
	for i, in := range n.Inputs {
		inputs[i] = bc.emit(in, "")
	}
	name := target
	if name == "" {
		bc.tmp++
		name = fmt.Sprintf("_t%d", bc.tmp)
	}
	out := bc.shapeOf(n)
	inShapes := make([]ir.Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		inShapes[i] = bc.shapeOf(in)
	}
	bc.out = append(bc.out, Instruction{
		Kind:     KindOp,
		Op:       n.Op,
		Inputs:   inputs,
		Outputs:  []string{name},
		Attrs:    n.Attrs,
		Backend:  bc.placement(n),
		Shape:    out,
		Flops:    flopsOf(n, inShapes, out),
		InShapes: inShapes,
	})
	bc.name[n] = name
	return name
}

// emitCall lowers a function-call statement.
func (bc *blockCompiler) emitCall(st ir.Stmt, root *ir.Node) {
	inputs := make([]string, len(root.Inputs))
	inShapes := make([]ir.Shape, len(root.Inputs))
	for i, in := range root.Inputs {
		inputs[i] = bc.emit(in, "")
		inShapes[i] = bc.shapeOf(in)
	}
	bc.out = append(bc.out, Instruction{
		Kind:     KindOp,
		Op:       "call",
		Inputs:   inputs,
		Outputs:  append([]string(nil), st.Targets...),
		Attrs:    root.Attrs,
		Backend:  core.BackendCP,
		Shape:    ir.Shape{Rows: 1, Cols: 1},
		InShapes: inShapes,
	})
}

// CompileEvict lowers an evict block (§5.2).
func CompileEvict(e *ir.EvictBlock) []Instruction {
	return []Instruction{{
		Kind:    KindEvict,
		Op:      "evict",
		Inputs:  []string{LiteralOperand(fmt.Sprint(e.Fraction))},
		Outputs: []string{"_"},
		Backend: core.BackendGPU,
	}}
}

// CheckpointInstruction builds the loop-checkpoint instruction for a
// variable (§5.2, Figure 9(c)).
func CheckpointInstruction(variable string) Instruction {
	return Instruction{
		Kind:    KindCheckpoint,
		Op:      "chkpoint",
		Inputs:  []string{variable},
		Outputs: []string{variable},
		Backend: core.BackendSpark,
	}
}
