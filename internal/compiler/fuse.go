package compiler

import (
	"fmt"
	"sort"
	"strings"

	"memphis/internal/core"
	"memphis/internal/ir"
)

// Elementwise fusion pass. FuseElementwise collapses maximal chains of
// CP-placed elementwise/unary/scalar instructions into single fused
// instructions executed as one loop with zero intermediate matrices
// (internal/data's fused interpreter). A temporary is eliminated exactly
// when its only reader in the whole stream is the fusable instruction that
// absorbs it; named variables and temporaries with other readers stay
// materialized as the fused chain's output or leaves, so every name any
// other instruction can observe still exists. Fusion is a pure stream
// rewrite: results, at any parallelism, are bitwise-identical to the
// unfused stream, and the runtime replays the constituent ops during
// lineage tracing so reuse keys survive fusion on/off.

// fusableOps is the elementwise/unary/scalar opcode set the fused
// interpreter understands.
var fusableOps = map[string]bool{
	"+": true, "-": true, "*": true, "/": true,
	"min": true, "max": true, ">": true, "<": true,
	"exp": true, "log": true, "sqrt": true, "abs": true,
	"sigmoid": true, "relu": true, "pow": true,
}

// fusable reports whether an instruction may join a fused chain: an
// ordinary CP op from the elementwise set with a single output and no
// attributes beyond pow's exponent (attrs like skipLast change semantics
// and keep the instruction out of fusion).
func fusable(in *Instruction) bool {
	if in.Kind != KindOp || in.Backend != core.BackendCP ||
		len(in.Outputs) != 1 || !fusableOps[in.Op] {
		return false
	}
	for k := range in.Attrs {
		if in.Op != "pow" || k != "p" {
			return false
		}
	}
	return true
}

// fuseArg references a leaf (Leaf >= 0) or an earlier step (Leaf < 0).
type fuseArg struct {
	leaf int
	step int
}

// fuseStep is one constituent instruction of a growing chain.
type fuseStep struct {
	op   string
	pstr string
	args []fuseArg
}

// fuseGroup is a chain of constituent instructions being fused.
type fuseGroup struct {
	constituents []int // stream positions, ascending
	steps        []fuseStep
	leaves       []string
	leafShapes   []ir.Shape
	leafIdx      map[string]int
	final        string
	shape        ir.Shape
	flops        float64
}

func newFuseGroup() *fuseGroup {
	return &fuseGroup{leafIdx: make(map[string]int)}
}

func (g *fuseGroup) lastPos() int { return g.constituents[len(g.constituents)-1] }

func (g *fuseGroup) internLeaf(name string, shape ir.Shape) int {
	if idx, ok := g.leafIdx[name]; ok {
		return idx
	}
	idx := len(g.leaves)
	g.leafIdx[name] = idx
	g.leaves = append(g.leaves, name)
	g.leafShapes = append(g.leafShapes, shape)
	return idx
}

// isTempName reports whether a name is a compiler temporary (block-local,
// never redefined) — the only names fusion may eliminate.
func isTempName(name string) bool { return strings.HasPrefix(name, "_t") }

// FuseElementwise rewrites a linearized stream, replacing every fused
// chain of length >= 2 with one fused instruction at the position of its
// last constituent. Streams with nothing to fuse are returned unchanged.
func FuseElementwise(insts []Instruction) []Instruction {
	// Global reader sets: a temp is absorbable only when its sole reader
	// anywhere in the stream is the absorbing instruction. Temps are
	// unique names, so the global set is exact for them.
	readers := make(map[string]map[int]bool)
	for i := range insts {
		for _, in := range insts[i].Inputs {
			if IsLiteral(in) {
				continue
			}
			if readers[in] == nil {
				readers[in] = make(map[int]bool)
			}
			readers[in][i] = true
		}
	}
	soleReader := func(name string, i int) bool {
		rs := readers[name]
		return len(rs) == 1 && rs[i]
	}
	// extendable: moving g's leaf reads from g's last constituent to
	// position i is safe only if nothing in between writes a leaf.
	inGroup := func(g *fuseGroup, pos int) bool {
		for _, c := range g.constituents {
			if c == pos {
				return true
			}
		}
		return false
	}
	extendable := func(g *fuseGroup, i int) bool {
		for j := g.lastPos() + 1; j < i; j++ {
			if inGroup(g, j) {
				continue
			}
			for _, o := range insts[j].Outputs {
				if _, isLeaf := g.leafIdx[o]; isLeaf {
					return false
				}
			}
		}
		return true
	}

	groupAt := make([]*fuseGroup, len(insts))
	open := make(map[string]*fuseGroup) // current final name -> group
	for i := range insts {
		inst := &insts[i]
		if !fusable(inst) {
			// Any write invalidates chains ending in that name: later
			// readers see the new value, not the chain's.
			for _, o := range inst.Outputs {
				delete(open, o)
			}
			continue
		}
		out := inst.Output()
		// Producer groups this instruction can absorb: open chains whose
		// final is a same-shape temp read only here.
		var prods []*fuseGroup
		seen := make(map[*fuseGroup]bool)
		for _, in := range inst.Inputs {
			if IsLiteral(in) {
				continue
			}
			g := open[in]
			if g == nil || seen[g] {
				continue
			}
			if g.shape == inst.Shape && isTempName(in) && soleReader(in, i) && extendable(g, i) {
				seen[g] = true
				prods = append(prods, g)
			}
		}
		g, finalStep := mergeGroups(prods)
		st := fuseStep{op: inst.Op, pstr: inst.Attr("p")}
		for ai, in := range inst.Inputs {
			if !IsLiteral(in) {
				if sIdx, ok := finalStep[in]; ok {
					st.args = append(st.args, fuseArg{leaf: -1, step: sIdx})
					continue
				}
			}
			idx := g.internLeaf(in, inst.InShapes[ai])
			st.args = append(st.args, fuseArg{leaf: idx})
		}
		g.steps = append(g.steps, st)
		g.constituents = append(g.constituents, i)
		g.flops += inst.Flops
		g.final = out
		g.shape = inst.Shape
		for _, p := range prods {
			delete(open, p.final)
		}
		delete(open, out) // redefinition closes any chain ending in out
		open[out] = g
		for _, pos := range g.constituents {
			groupAt[pos] = g
		}
	}

	fused := false
	for _, g := range groupAt {
		if g != nil && len(g.steps) >= 2 {
			fused = true
			break
		}
	}
	if !fused {
		return insts
	}
	out := make([]Instruction, 0, len(insts))
	for i := range insts {
		g := groupAt[i]
		if g == nil || len(g.steps) < 2 {
			out = append(out, insts[i])
			continue
		}
		if i == g.lastPos() {
			out = append(out, g.instruction())
		}
	}
	return out
}

// mergeGroups combines producer chains into one group with steps renumbered
// in ascending stream order, returning the merged group and the map from
// each producer's (absorbed) final name to its step index.
func mergeGroups(prods []*fuseGroup) (*fuseGroup, map[string]int) {
	g := newFuseGroup()
	finalStep := make(map[string]int)
	if len(prods) == 0 {
		return g, finalStep
	}
	type src struct {
		pos   int
		owner *fuseGroup
		local int
	}
	var srcs []src
	for _, p := range prods {
		for li, pos := range p.constituents {
			srcs = append(srcs, src{pos: pos, owner: p, local: li})
		}
	}
	sort.Slice(srcs, func(a, b int) bool { return srcs[a].pos < srcs[b].pos })
	remap := make(map[*fuseGroup][]int, len(prods))
	for _, p := range prods {
		remap[p] = make([]int, len(p.steps))
		g.flops += p.flops
	}
	for _, s := range srcs {
		old := s.owner.steps[s.local]
		st := fuseStep{op: old.op, pstr: old.pstr}
		for _, a := range old.args {
			if a.leaf >= 0 {
				idx := g.internLeaf(s.owner.leaves[a.leaf], s.owner.leafShapes[a.leaf])
				st.args = append(st.args, fuseArg{leaf: idx})
			} else {
				st.args = append(st.args, fuseArg{leaf: -1, step: remap[s.owner][a.step]})
			}
		}
		remap[s.owner][s.local] = len(g.steps)
		g.steps = append(g.steps, st)
		g.constituents = append(g.constituents, s.pos)
	}
	for _, p := range prods {
		finalStep[p.final] = remap[p][len(p.steps)-1]
	}
	return g, finalStep
}

// instruction materializes a fused chain as one instruction. The "prog"
// attribute is the deterministic step encoding; "fp" is the ir fingerprint
// of the sub-DAG the chain collapsed, making fused-chain identity checkable
// independently of leaf naming.
func (g *fuseGroup) instruction() Instruction {
	var b strings.Builder
	for k, st := range g.steps {
		if k > 0 {
			b.WriteByte(';')
		}
		b.WriteString(st.op)
		if st.pstr != "" {
			fmt.Fprintf(&b, "{p=%s}", st.pstr)
		}
		b.WriteByte('(')
		for ai, a := range st.args {
			if ai > 0 {
				b.WriteByte(',')
			}
			if a.leaf >= 0 {
				fmt.Fprintf(&b, "$%d", a.leaf)
			} else {
				fmt.Fprintf(&b, "@%d", a.step)
			}
		}
		b.WriteByte(')')
	}
	return Instruction{
		Kind:    KindOp,
		Op:      ir.FusedOp,
		Inputs:  append([]string(nil), g.leaves...),
		Outputs: []string{g.final},
		Attrs: map[string]string{
			"prog": b.String(),
			"fp":   fmt.Sprintf("%016x", ir.FingerprintNode(g.subDAG())),
		},
		Backend:  core.BackendCP,
		Shape:    g.shape,
		Flops:    g.flops,
		InShapes: append([]ir.Shape(nil), g.leafShapes...),
	}
}

// subDAG reconstructs the chain as an ir expression DAG (shared leaves keep
// node identity) for fingerprinting.
func (g *fuseGroup) subDAG() *ir.Node {
	leafNodes := make([]*ir.Node, len(g.leaves))
	for i, name := range g.leaves {
		if IsLiteral(name) {
			leafNodes[i] = ir.NewNode("lit").WithAttr("value", LiteralValue(name))
		} else {
			leafNodes[i] = ir.Var(name)
		}
	}
	stepNodes := make([]*ir.Node, len(g.steps))
	for i, st := range g.steps {
		ins := make([]*ir.Node, len(st.args))
		for ai, a := range st.args {
			if a.leaf >= 0 {
				ins[ai] = leafNodes[a.leaf]
			} else {
				ins[ai] = stepNodes[a.step]
			}
		}
		n := ir.NewNode(st.op, ins...)
		if st.pstr != "" {
			n = n.WithAttr("p", st.pstr)
		}
		stepNodes[i] = n
	}
	return stepNodes[len(stepNodes)-1]
}

// FusedOpList extracts the constituent opcodes of a fused program encoding
// ("+;exp;sigmoid") for rendering in traces and plan dumps.
func FusedOpList(prog string) string {
	parts := strings.Split(prog, ";")
	ops := make([]string, len(parts))
	for i, p := range parts {
		if j := strings.IndexAny(p, "({"); j >= 0 {
			p = p[:j]
		}
		ops[i] = p
	}
	return strings.Join(ops, ";")
}
