package compiler

import (
	"testing"

	"memphis/internal/core"
	"memphis/internal/ir"
)

// ewInst builds a CP elementwise instruction for fusion-pass unit tests.
func ewInst(op, out string, shape ir.Shape, ins []string, inShapes []ir.Shape) Instruction {
	return Instruction{
		Kind: KindOp, Op: op,
		Inputs: ins, Outputs: []string{out},
		Backend: core.BackendCP,
		Shape:   shape, InShapes: inShapes,
		Flops: float64(shape.Rows) * float64(shape.Cols),
	}
}

func TestFuseElementwiseChain(t *testing.T) {
	sh := ir.Shape{Rows: 8, Cols: 4}
	lit := LiteralOperand("0.5")
	stream := []Instruction{
		ewInst("*", "_t1", sh, []string{"X", lit}, []ir.Shape{sh, {Rows: 1, Cols: 1}}),
		ewInst("+", "_t2", sh, []string{"_t1", "Y"}, []ir.Shape{sh, sh}),
		ewInst("exp", "_t3", sh, []string{"_t2"}, []ir.Shape{sh}),
		ewInst("sigmoid", "Z", sh, []string{"_t3"}, []ir.Shape{sh}),
	}
	out := FuseElementwise(stream)
	if len(out) != 1 {
		t.Fatalf("fused stream has %d instructions, want 1: %v", len(out), out)
	}
	in := out[0]
	if in.Op != ir.FusedOp || in.Output() != "Z" {
		t.Fatalf("fused instruction = %s", in.String())
	}
	wantProg := "*($0,$1);+(@0,$2);exp(@1);sigmoid(@2)"
	if got := in.Attr("prog"); got != wantProg {
		t.Errorf("prog = %q, want %q", got, wantProg)
	}
	if len(in.Inputs) != 3 || in.Inputs[0] != "X" || in.Inputs[1] != lit || in.Inputs[2] != "Y" {
		t.Errorf("leaves = %v", in.Inputs)
	}
	if in.Flops != 4*float64(sh.Rows)*float64(sh.Cols) {
		t.Errorf("flops = %v, want sum of constituents", in.Flops)
	}
	if in.Attr("fp") == "" {
		t.Errorf("fused instruction missing sub-DAG fingerprint")
	}
}

// TestFuseDiamondMerge checks two producer chains feeding one consumer merge
// into a single group with the shared leaf interned once.
func TestFuseDiamondMerge(t *testing.T) {
	sh := ir.Shape{Rows: 8, Cols: 4}
	stream := []Instruction{
		ewInst("exp", "_t1", sh, []string{"X"}, []ir.Shape{sh}),
		ewInst("log", "_t2", sh, []string{"X"}, []ir.Shape{sh}),
		ewInst("+", "Z", sh, []string{"_t1", "_t2"}, []ir.Shape{sh, sh}),
	}
	out := FuseElementwise(stream)
	if len(out) != 1 {
		t.Fatalf("fused stream has %d instructions, want 1", len(out))
	}
	if got, want := out[0].Attr("prog"), "exp($0);log($0);+(@0,@1)"; got != want {
		t.Errorf("prog = %q, want %q", got, want)
	}
	if len(out[0].Inputs) != 1 || out[0].Inputs[0] != "X" {
		t.Errorf("shared leaf not interned once: %v", out[0].Inputs)
	}
}

// TestFuseKeepsMultiReaderTemps: a temp with a second reader elsewhere in
// the stream must stay materialized, so nothing fuses here.
func TestFuseKeepsMultiReaderTemps(t *testing.T) {
	sh := ir.Shape{Rows: 8, Cols: 4}
	stream := []Instruction{
		ewInst("exp", "_t1", sh, []string{"X"}, []ir.Shape{sh}),
		ewInst("+", "Z", sh, []string{"_t1", "Y"}, []ir.Shape{sh, sh}),
		ewInst("*", "W", sh, []string{"_t1", "Y"}, []ir.Shape{sh, sh}),
	}
	out := FuseElementwise(stream)
	if len(out) != len(stream) {
		t.Fatalf("stream with multi-reader temp was rewritten: %v", out)
	}
	for i := range out {
		if out[i].Op != stream[i].Op {
			t.Errorf("instruction %d changed: %s", i, out[i].String())
		}
	}
}

// TestFuseNamedOutputsStayMaterialized: a named (non-temp) intermediate is
// observable, so it ends one fused chain and leafs the next rather than
// being eliminated.
func TestFuseNamedOutputsStayMaterialized(t *testing.T) {
	sh := ir.Shape{Rows: 8, Cols: 4}
	stream := []Instruction{
		ewInst("exp", "_t1", sh, []string{"X"}, []ir.Shape{sh}),
		ewInst("sigmoid", "Z", sh, []string{"_t1"}, []ir.Shape{sh}),
		ewInst("abs", "_t2", sh, []string{"Z"}, []ir.Shape{sh}),
		ewInst("sqrt", "W", sh, []string{"_t2"}, []ir.Shape{sh}),
	}
	out := FuseElementwise(stream)
	if len(out) != 2 {
		t.Fatalf("fused stream has %d instructions, want 2 (Z must materialize): %v", len(out), out)
	}
	if out[0].Output() != "Z" || out[1].Output() != "W" {
		t.Fatalf("outputs = %s, %s", out[0].Output(), out[1].Output())
	}
	if out[1].Inputs[0] != "Z" {
		t.Errorf("second chain should read materialized Z, got %v", out[1].Inputs)
	}
}

// TestFuseLeafRedefinitionBlocksExtension: an intervening write to a chain
// leaf means the chain's deferred read would see the wrong value; the chain
// must not extend past it.
func TestFuseLeafRedefinitionBlocksExtension(t *testing.T) {
	sh := ir.Shape{Rows: 8, Cols: 4}
	redefX := Instruction{
		Kind: KindOp, Op: "tsmm",
		Inputs: []string{"Y"}, Outputs: []string{"X"},
		Backend: core.BackendCP, Shape: sh, InShapes: []ir.Shape{sh},
	}
	stream := []Instruction{
		ewInst("+", "_t1", sh, []string{"X", "Y"}, []ir.Shape{sh, sh}),
		redefX,
		ewInst("exp", "Z", sh, []string{"_t1"}, []ir.Shape{sh}),
	}
	out := FuseElementwise(stream)
	if len(out) != 3 {
		t.Fatalf("chain fused across a leaf redefinition: %v", out)
	}
}

// TestFuseSkipsOtherBackendsAndAttrs: non-CP placement or semantic attrs
// keep an instruction out of fusion entirely.
func TestFuseSkipsOtherBackendsAndAttrs(t *testing.T) {
	sh := ir.Shape{Rows: 8, Cols: 4}
	sparkAdd := ewInst("+", "_t1", sh, []string{"X", "Y"}, []ir.Shape{sh, sh})
	sparkAdd.Backend = core.BackendSpark
	attrExp := ewInst("exp", "Z", sh, []string{"_t1"}, []ir.Shape{sh})
	attrExp.Attrs = map[string]string{"skipLast": "1"}
	out := FuseElementwise([]Instruction{sparkAdd, attrExp})
	if len(out) != 2 || out[0].Op != "+" || out[1].Op != "exp" {
		t.Fatalf("non-fusable instructions were rewritten: %v", out)
	}
	powOK := ewInst("pow", "_t2", sh, []string{"X"}, []ir.Shape{sh})
	powOK.Attrs = map[string]string{"p": "3"}
	sig := ewInst("sigmoid", "W", sh, []string{"_t2"}, []ir.Shape{sh})
	out = FuseElementwise([]Instruction{powOK, sig})
	if len(out) != 1 || out[0].Attr("prog") != "pow{p=3}($0);sigmoid(@0)" {
		t.Fatalf("pow's p attr should fuse: %v", out)
	}
}

func TestFusedOpList(t *testing.T) {
	if got := FusedOpList("*($0,$1);pow{p=3}(@0);sigmoid(@1)"); got != "*;pow;sigmoid" {
		t.Errorf("FusedOpList = %q", got)
	}
}
