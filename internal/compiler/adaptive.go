// Adaptive (closed-loop) operator placement: instead of the static
// OpMemBudget/GPUMinCells thresholds, each candidate backend is priced
// under the injected costs.Estimator — recalibrated effective rates plus
// the observed reuse probability of the (op, shape-class) population —
// and the cheapest expected cost wins:
//
//	E[b] = p(hit) * hitCost_b + (1 - p(hit)) * (compute_b + transfer_b + overhead_b)
//
// A consistently cached operator (p -> 1) therefore collapses to its
// hit-service cost, which is cheapest on CP (one probe); on Spark a hit
// yields an RDD handle whose local consumption costs a further cached
// collect probe. That is the paper's holistic-reuse placement argument:
// hot cached operators stay on CP instead of bouncing to remote backends.
//
// Determinism: candidates are evaluated in the fixed order CP, GPU, Spark
// with strict-less replacement, so ties break toward CP and equal
// estimator states always produce equal placements.
package compiler

import (
	"fmt"

	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/ir"
)

// adaptiveMemSlack bounds how far adaptive placement may keep an
// over-budget operator local: operators whose input or output estimate
// exceeds slack * OpMemBudget are Spark-forced exactly like the static
// path (adaptive mode rebalances cost, not memory safety), while sizes in
// (OpMemBudget, slack*OpMemBudget] may stay on CP under high observed
// reuse — the reuse-driven crossover flip.
const adaptiveMemSlack = 4

// adaptivePlacement prices CP, GPU, and Spark for a node under the
// injected estimator and returns the backend with the lowest expected
// cost. Support maps gate candidates exactly as in static placement, so
// no operator lands on a backend that cannot execute it.
func (bc *blockCompiler) adaptivePlacement(n *ir.Node) core.Backend {
	est := bc.conf.Estimator
	eff := est.Effective()
	out := bc.shapeOf(n)
	maxBytes := out.Bytes()
	var inBytes int64
	gpuLocal := false
	inShapes := make([]ir.Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		inShapes[i] = bc.shapeOf(in)
		b := inShapes[i].Bytes()
		inBytes += b
		if b > maxBytes {
			maxBytes = b
		}
		if in.Op == "var" || in.Op == "lit" {
			continue
		}
		if bc.placement(in) == core.BackendGPU {
			gpuLocal = true
		}
	}
	if maxBytes > adaptiveMemSlack*bc.conf.OpMemBudget && spSupported[n.Op] {
		return core.BackendSpark
	}
	flops := flopsOf(n, inShapes, out)
	p := est.ReuseProb(n.Op, costs.ShapeClass(int64(out.Rows)*int64(out.Cols)))

	best := core.BackendCP
	bestCost := expectedCost(p, eff.Probe,
		eff.Interpret+costs.Compute(flops, eff.CPUFlops))
	if bc.conf.GPUEnabled && gpuSupported[n.Op] {
		raw := costs.Compute(flops, eff.GPUFlops) + eff.CudaMalloc + eff.KernelLaunch
		if !gpuLocal {
			// Inputs live on the host: charge the upload. GPU-local chains
			// inherit device residency, like the static gpuLocal rule.
			raw += costs.Transfer(inBytes, eff.H2DBW, eff.CopyLatency)
		}
		if c := expectedCost(p, eff.Probe, raw); c < bestCost {
			best, bestCost = core.BackendGPU, c
		}
	}
	if spSupported[n.Op] {
		raw := costs.Compute(flops, eff.SparkFlops) +
			eff.SparkJobOverhead + eff.SparkStageOverhead +
			costs.Transfer(out.Bytes(), eff.CollectBW, 0)
		// A Spark-placed hit returns an RDD handle; consuming it locally
		// costs a second (cached-collect) probe.
		if c := expectedCost(p, 2*eff.Probe, raw); c < bestCost {
			best = core.BackendSpark
		}
	}
	return best
}

// expectedCost folds the reuse probability: p of the time the lineage
// cache serves the result for hitCost, otherwise the raw execution runs.
func expectedCost(p, hitCost, raw float64) float64 {
	return p*hitCost + (1-p)*raw
}

// Fold renders the config as a deterministic compile-cache key component.
// Every placement-relevant field appears; when an estimator is injected
// its calibration epoch and fingerprint join the fold, so recalibration
// invalidates cached plans instead of silently serving stale placements.
// (The struct cannot be %+v-printed once it carries an interface: pointer
// text would poison keys across processes.)
func (c Config) Fold() string {
	s := fmt.Sprintf("opmem=%d,gpu=%t,gpumin=%d,async=%t,maxpar=%t,chk=%t,fuse=%t",
		c.OpMemBudget, c.GPUEnabled, c.GPUMinCells, c.Async, c.MaxParallelize,
		c.CheckpointInjection, c.Fusion)
	if c.Estimator != nil {
		s += fmt.Sprintf(",cal=%d:%016x", c.Estimator.Epoch(), c.Estimator.Fingerprint())
	}
	return s
}
