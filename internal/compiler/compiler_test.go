package compiler

import (
	"strings"
	"testing"

	"memphis/internal/core"
	"memphis/internal/ir"
)

func shapes(kv ...interface{}) map[string]ir.Shape {
	env := make(map[string]ir.Shape)
	for i := 0; i < len(kv); i += 2 {
		env[kv[i].(string)] = kv[i+1].(ir.Shape)
	}
	return env
}

func ops(insts []Instruction) []string {
	var out []string
	for _, in := range insts {
		out = append(out, in.Op)
	}
	return out
}

func findOp(insts []Instruction, op string) *Instruction {
	for i := range insts {
		if insts[i].Op == op {
			return &insts[i]
		}
	}
	return nil
}

func TestCompileSimpleBlock(t *testing.T) {
	bb := ir.BB(
		ir.Assign("b", ir.Add(ir.Var("a"), ir.Lit(1))),
		ir.Assign("c", ir.MatMul(ir.Var("b"), ir.Var("b"))),
	)
	insts := CompileBlock(bb, shapes("a", ir.Shape{Rows: 4, Cols: 4}), DefaultConfig())
	if len(insts) != 2 {
		t.Fatalf("insts = %v", ops(insts))
	}
	if insts[0].Op != "+" || insts[0].Output() != "b" {
		t.Fatalf("first inst = %s", insts[0].String())
	}
	if insts[1].Op != "mm" || insts[1].Inputs[0] != "b" || insts[1].Output() != "c" {
		t.Fatalf("second inst = %s", insts[1].String())
	}
	if insts[0].Backend != core.BackendCP {
		t.Fatal("small op must be CP")
	}
}

func TestLiteralOperandInline(t *testing.T) {
	bb := ir.BB(ir.Assign("b", ir.Add(ir.Var("a"), ir.Lit(2.5))))
	insts := CompileBlock(bb, shapes("a", ir.Shape{Rows: 2, Cols: 2}), DefaultConfig())
	if !IsLiteral(insts[0].Inputs[1]) || LiteralValue(insts[0].Inputs[1]) != "2.5" {
		t.Fatalf("literal operand = %q", insts[0].Inputs[1])
	}
}

func TestLocalCSE(t *testing.T) {
	// colMeans(X) appears twice; must compile once.
	bb := ir.BB(
		ir.Assign("a", ir.Sub(ir.Var("X"), ir.ColMeans(ir.Var("X")))),
		ir.Assign("b", ir.Div(ir.Var("a"), ir.ColMeans(ir.Var("X")))),
	)
	insts := CompileBlock(bb, shapes("X", ir.Shape{Rows: 10, Cols: 3}), DefaultConfig())
	n := 0
	for _, in := range insts {
		if in.Op == "colMeans" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("colMeans compiled %d times, want 1 (CSE)", n)
	}
}

func TestTSMMPeephole(t *testing.T) {
	bb := ir.BB(ir.Assign("g", ir.MatMul(ir.T(ir.Var("X")), ir.Var("X"))))
	insts := CompileBlock(bb, shapes("X", ir.Shape{Rows: 100, Cols: 4}), DefaultConfig())
	if findOp(insts, "tsmm") == nil {
		t.Fatalf("expected tsmm rewrite, got %v", ops(insts))
	}
	if findOp(insts, "t") != nil {
		t.Fatal("transpose should be eliminated")
	}
}

func TestCPMMPeephole(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	env := shapes(
		"W", ir.Shape{Rows: 10000, Cols: 10},
		"M", ir.Shape{Rows: 10000, Cols: 20},
	)
	bb := ir.BB(ir.Assign("g", ir.MatMul(ir.T(ir.Var("W")), ir.Var("M"))))
	insts := CompileBlock(bb, env, conf)
	cp := findOp(insts, "cpmm")
	if cp == nil {
		t.Fatalf("expected cpmm, got %v", ops(insts))
	}
	if cp.Backend != core.BackendSpark {
		t.Fatal("cpmm over large inputs must be Spark-placed")
	}
	if cp.Shape != (ir.Shape{Rows: 10, Cols: 20}) {
		t.Fatalf("cpmm shape = %+v", cp.Shape)
	}
}

func TestSparkPlacementBySize(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10 // 1KB
	env := shapes("X", ir.Shape{Rows: 1000, Cols: 100})
	bb := ir.BB(ir.Assign("g", ir.TSMM(ir.Var("X"))))
	insts := CompileBlock(bb, env, conf)
	if insts[0].Backend != core.BackendSpark {
		t.Fatalf("large tsmm placed on %v", insts[0].Backend)
	}
	// Small input stays local.
	insts = CompileBlock(bb, shapes("X", ir.Shape{Rows: 10, Cols: 2}), conf)
	if insts[0].Backend != core.BackendCP {
		t.Fatal("small tsmm must be CP")
	}
}

func TestGPUPlacementAndLocality(t *testing.T) {
	conf := DefaultConfig()
	conf.GPUEnabled = true
	conf.GPUMinCells = 100
	env := shapes(
		"X", ir.Shape{Rows: 64, Cols: 64},
		"W", ir.Shape{Rows: 64, Cols: 64},
	)
	bb := ir.BB(ir.Assign("h", ir.Add(ir.ReLU(ir.MatMul(ir.Var("X"), ir.Var("W"))), ir.Lit(1))))
	insts := CompileBlock(bb, env, conf)
	mm := findOp(insts, "mm")
	relu := findOp(insts, "relu")
	add := findOp(insts, "+")
	if mm.Backend != core.BackendGPU {
		t.Fatal("dense mm must be GPU")
	}
	if relu.Backend != core.BackendGPU {
		t.Fatal("relu must follow its input to the GPU (locality)")
	}
	if add.Backend != core.BackendGPU {
		t.Fatal("elementwise op on a GPU input must stay on GPU")
	}
}

func TestGPUMinCellsGate(t *testing.T) {
	conf := DefaultConfig()
	conf.GPUEnabled = true
	conf.GPUMinCells = 1 << 20
	bb := ir.BB(ir.Assign("h", ir.MatMul(ir.Var("X"), ir.Var("W"))))
	insts := CompileBlock(bb, shapes("X", ir.Shape{Rows: 8, Cols: 8}, "W", ir.Shape{Rows: 8, Cols: 8}), conf)
	if insts[0].Backend != core.BackendCP {
		t.Fatal("tiny mm must not start a GPU chain")
	}
}

func TestPrefetchInsertion(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.Async = true
	env := shapes("X", ir.Shape{Rows: 1000, Cols: 100})
	// tsmm is Spark; solve is CP and consumes it -> prefetch after tsmm.
	bb := ir.BB(
		ir.Assign("g", ir.TSMM(ir.Var("X"))),
		ir.Assign("s", ir.Solve(ir.Var("g"), ir.Var("y"))),
	)
	insts := CompileBlock(bb, env, conf)
	pf := findOp(insts, "prefetch")
	if pf == nil {
		t.Fatalf("expected prefetch, got %v", ops(insts))
	}
	if pf.Kind != KindPrefetch || pf.Inputs[0] != "g" {
		t.Fatalf("prefetch = %s", pf.String())
	}
	// Prefetch must directly follow the tsmm.
	for i, in := range insts {
		if in.Op == "tsmm" {
			if insts[i+1].Kind != KindPrefetch {
				t.Fatal("prefetch must follow the remote chain root")
			}
		}
	}
}

func TestNoPrefetchMidChain(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.Async = true
	env := shapes("X", ir.Shape{Rows: 1000, Cols: 100})
	// exp(X) feeds tsmm (both Spark): no prefetch after exp.
	bb := ir.BB(
		ir.Assign("e", ir.Exp(ir.Var("X"))),
		ir.Assign("g", ir.TSMM(ir.Var("e"))),
		ir.Assign("s", ir.Sum(ir.Var("g"))),
	)
	insts := CompileBlock(bb, env, conf)
	for i, in := range insts {
		if in.Op == "exp" && i+1 < len(insts) && insts[i+1].Kind == KindPrefetch {
			t.Fatal("prefetch inserted mid-chain")
		}
	}
}

func TestBroadcastInsertion(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 12
	conf.Async = true
	env := shapes(
		"X", ir.Shape{Rows: 10000, Cols: 100},
		"y", ir.Shape{Rows: 10000, Cols: 1},
	)
	// t(y) is small/local, feeds a distributed mm -> async broadcast.
	bb := ir.BB(ir.Assign("b", ir.MatMul(ir.T(ir.Var("y")), ir.Var("X"))))
	_ = env["y"]
	// t(y) shape is 1x10000 = 80KB > 4KB budget... use smaller y.
	env["y"] = ir.Shape{Rows: 100, Cols: 1}
	env["X"] = ir.Shape{Rows: 100, Cols: 10000}
	insts := CompileBlock(bb, env, conf)
	if findOp(insts, "broadcast") == nil {
		t.Fatalf("expected broadcast, got %v", ops(insts))
	}
}

func TestCheckpointInjectionSharedSparkOp(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.CheckpointInjection = true
	env := shapes("X", ir.Shape{Rows: 5000, Cols: 100})
	// exp(X) is consumed by two Spark ops -> checkpoint after exp.
	bb := ir.BB(
		ir.Assign("e", ir.Exp(ir.Var("X"))),
		ir.Assign("a", ir.TSMM(ir.Var("e"))),
		ir.Assign("b", ir.ColSums(ir.Var("e"))),
	)
	insts := CompileBlock(bb, env, conf)
	cp := findOp(insts, "chkpoint")
	if cp == nil || cp.Kind != KindCheckpoint {
		t.Fatalf("expected checkpoint, got %v", ops(insts))
	}
}

func TestMaxParallelizeOrdersRemoteFirst(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.MaxParallelize = true
	env := shapes("X", ir.Shape{Rows: 5000, Cols: 100}, "a", ir.Shape{Rows: 4, Cols: 4})
	bb := ir.BB(
		ir.Assign("loc", ir.Add(ir.Var("a"), ir.Lit(1))), // local
		ir.Assign("g", ir.TSMM(ir.Var("X"))),             // short Spark chain
		ir.Assign("h", ir.ColSums(ir.Exp(ir.Var("X")))),  // longer Spark chain
	)
	insts := CompileBlock(bb, env, conf)
	idx := map[string]int{}
	for i, in := range insts {
		idx[in.Op] = i
	}
	// Longest remote chain first, then shorter, locals last.
	if !(idx["exp"] < idx["tsmm"] && idx["tsmm"] < idx["+"]) {
		t.Fatalf("order = %v", ops(insts))
	}
}

func TestMaxParallelizeRespectsCallBarrier(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.MaxParallelize = true
	env := shapes("X", ir.Shape{Rows: 5000, Cols: 100})
	bb := &ir.BasicBlock{Stmts: []ir.Stmt{
		ir.Assign("a", ir.Sum(ir.Var("z"))),
		ir.Call("f", []string{"r"}, ir.Var("a")),
		ir.Assign("g", ir.TSMM(ir.Var("X"))),
	}}
	insts := CompileBlock(bb, env, conf)
	callIdx, tsmmIdx, sumIdx := -1, -1, -1
	for i, in := range insts {
		switch in.Op {
		case "call":
			callIdx = i
		case "tsmm":
			tsmmIdx = i
		case "sum":
			sumIdx = i
		}
	}
	if !(sumIdx < callIdx && callIdx < tsmmIdx) {
		t.Fatalf("call barrier violated: %v", ops(insts))
	}
}

func TestRepeatedAssignmentLastBindingWins(t *testing.T) {
	bb := ir.BB(
		ir.Assign("x", ir.Lit(1)),
		ir.Assign("y", ir.Add(ir.Var("x"), ir.Lit(1))),
		ir.Assign("x", ir.Add(ir.Var("x"), ir.Lit(2))),
	)
	insts := CompileBlock(bb, shapes(), DefaultConfig())
	// The final instruction writing x must be the second add.
	var last *Instruction
	for i := range insts {
		if len(insts[i].Outputs) == 1 && insts[i].Outputs[0] == "x" {
			last = &insts[i]
		}
	}
	if last == nil || last.Op == "lit" {
		t.Fatalf("rebinding lost: %v", ops(insts))
	}
}

func TestAutoTuneDelayFactors(t *testing.T) {
	// Figure-10-like structure: a loop whose block 1 is fully
	// loop-dependent and block 2 is loop-independent.
	dep := ir.BB(ir.Assign("Xi", ir.Mul(ir.Var("X"), ir.Var("i"))))
	indep := ir.BB(
		ir.Assign("c", ir.ImputeMean(ir.Var("X"))),
		ir.Assign("d", ir.OutlierIQR(ir.Var("c"))),
	)
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.ForRange("i", 4, dep, indep)}
	AutoTune(prog)
	if dep.DelayFactor != 4 {
		t.Fatalf("loop-dependent block delay = %d, want 4", dep.DelayFactor)
	}
	if indep.DelayFactor != 1 {
		t.Fatalf("loop-independent block delay = %d, want 1", indep.DelayFactor)
	}
	if indep.StorageLevel != "MEMORY_AND_DISK" || dep.StorageLevel != "MEMORY" {
		t.Fatalf("storage levels = %q / %q", indep.StorageLevel, dep.StorageLevel)
	}
}

func TestAutoTunePartialDependence(t *testing.T) {
	mixed := ir.BB(
		ir.Assign("a", ir.ImputeMean(ir.Var("X"))),
		ir.Assign("b", ir.Scale(ir.Var("a"))),
		ir.Assign("c", ir.Mul(ir.Var("b"), ir.Var("lambda"))),
	)
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.For("lambda", []float64{0.1, 1}, mixed)}
	AutoTune(prog)
	if mixed.DelayFactor != 2 {
		t.Fatalf("partially dependent block delay = %d, want 2", mixed.DelayFactor)
	}
}

func TestInjectLoopCheckpoints(t *testing.T) {
	body := ir.BB(
		ir.Assign("W", ir.Mul(ir.Var("W"), ir.Var("G"))),
		ir.Assign("G", ir.Add(ir.Var("G"), ir.Lit(1))),
	)
	prog := ir.NewProgram()
	loop := ir.ForRange("i", 3, body)
	prog.Main = []ir.Block{loop}
	InjectLoopCheckpoints(prog)
	last, ok := loop.Body[len(loop.Body)-1].(*ir.BasicBlock)
	if !ok {
		t.Fatal("expected appended checkpoint block")
	}
	var vars []string
	for _, st := range last.Stmts {
		if st.Expr.Op != "chkpoint" {
			t.Fatalf("expected chkpoint stmt, got %s", st.Expr.Op)
		}
		vars = append(vars, st.Targets[0])
	}
	if len(vars) != 2 || vars[0] != "G" || vars[1] != "W" {
		t.Fatalf("checkpointed vars = %v", vars)
	}
}

func TestInjectEvictionsOnPatternShift(t *testing.T) {
	mkLoop := func(kh int) *ir.ForBlock {
		return ir.ForRange("i", 2, ir.BB(
			ir.Assign("c", ir.Conv2D(ir.Var("X"), ir.Var("W"), 3, 8, 8, kh, kh, 1, 0)),
		))
	}
	prog := ir.NewProgram()
	prog.Main = []ir.Block{mkLoop(3), mkLoop(5)}
	InjectEvictions(prog)
	if len(prog.Main) != 3 {
		t.Fatalf("blocks = %d, want 3 (evict between loops)", len(prog.Main))
	}
	if _, ok := prog.Main[1].(*ir.EvictBlock); !ok {
		t.Fatal("expected EvictBlock between differing loops")
	}
	// Identical patterns must NOT trigger eviction.
	prog2 := ir.NewProgram()
	prog2.Main = []ir.Block{mkLoop(3), mkLoop(3)}
	InjectEvictions(prog2)
	if len(prog2.Main) != 2 {
		t.Fatal("identical access patterns must not inject eviction")
	}
}

func TestCompileEvict(t *testing.T) {
	insts := CompileEvict(&ir.EvictBlock{Fraction: 0.5})
	if len(insts) != 1 || insts[0].Kind != KindEvict {
		t.Fatal("bad evict compilation")
	}
	if LiteralValue(insts[0].Inputs[0]) != "0.5" {
		t.Fatalf("fraction operand = %q", insts[0].Inputs[0])
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{Op: "mm", Inputs: []string{"a", "b"}, Outputs: []string{"c"},
		Backend: core.BackendGPU}
	if !strings.Contains(in.String(), "GPU mm c <- a,b") {
		t.Fatalf("String() = %q", in.String())
	}
}

func TestMaxParallelizeEmitsChainsBeforeConsumers(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.MaxParallelize = true
	conf.Async = true
	env := shapes(
		"X", ir.Shape{Rows: 1000, Cols: 100},
		"y", ir.Shape{Rows: 1000, Cols: 1},
	)
	// One statement containing two independent Spark chains feeding a
	// local solve: both chains (and their prefetches) must be emitted
	// before the first local consumer, so the jobs overlap (Algorithm 2).
	bb := ir.BB(ir.Assign("beta", ir.Solve(
		ir.Add(ir.TSMM(ir.Var("X")), ir.Lit(0.1)),
		ir.T(ir.MatMul(ir.T(ir.Var("y")), ir.Var("X"))),
	)))
	insts := CompileBlock(bb, env, conf)
	firstLocalConsumer, lastPrefetch := -1, -1
	for i, in := range insts {
		switch {
		case in.Kind == KindPrefetch:
			lastPrefetch = i
		case in.Kind == KindOp && in.Backend == core.BackendCP &&
			in.Op != "assign" && firstLocalConsumer < 0:
			// t(y) is a local producer feeding Spark; skip producers whose
			// output is consumed by Spark ops.
			if in.Op == "t" && i < lastPrefetch {
				continue
			}
			firstLocalConsumer = i
		}
	}
	if lastPrefetch < 0 {
		t.Fatalf("no prefetch inserted: %v", ops(insts))
	}
	nSpark := 0
	for _, in := range insts {
		if in.Kind == KindOp && in.Backend == core.BackendSpark {
			nSpark++
		}
	}
	if nSpark < 2 {
		t.Fatalf("expected two Spark chains, got %d: %v", nSpark, ops(insts))
	}
	// Both prefetches must appear before the solve.
	solveIdx := -1
	nPrefetchBeforeSolve := 0
	for i, in := range insts {
		if in.Op == "solve" {
			solveIdx = i
		}
	}
	for i, in := range insts {
		if in.Kind == KindPrefetch && i < solveIdx {
			nPrefetchBeforeSolve++
		}
	}
	if nPrefetchBeforeSolve < 2 {
		t.Fatalf("prefetches not hoisted before solve: %v", ops(insts))
	}
}

func TestEmitRemoteChainsRespectsWAR(t *testing.T) {
	conf := DefaultConfig()
	conf.OpMemBudget = 1 << 10
	conf.MaxParallelize = true
	env := shapes("W", ir.Shape{Rows: 2000, Cols: 10})
	// Reads old cw (leaf), then rewrites cw from the updated W: the
	// reader must execute before the writer despite the writer rooting a
	// longer remote chain.
	bb := ir.BB(
		ir.Assign("H", ir.Add(ir.Var("cw"), ir.Lit(1))),
		ir.Assign("W", ir.Exp(ir.Var("W"))),
		ir.Assign("cw", ir.ColSums(ir.Var("W"))),
	)
	insts := CompileBlock(bb, env, conf)
	readerIdx, writerIdx := -1, -1
	for i, in := range insts {
		if in.Op == "+" {
			readerIdx = i
		}
		if len(in.Outputs) == 1 && in.Outputs[0] == "cw" {
			writerIdx = i
		}
	}
	if readerIdx < 0 || writerIdx < 0 {
		t.Fatalf("missing instructions: %v", ops(insts))
	}
	if writerIdx < readerIdx {
		t.Fatalf("WAR violated: cw written at %d before read at %d\n%v",
			writerIdx, readerIdx, ops(insts))
	}
}
