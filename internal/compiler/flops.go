package compiler

import (
	"memphis/internal/costs"
	"memphis/internal/ir"
)

// flopsOf estimates the floating-point operations of a node given input and
// output shapes.
func flopsOf(n *ir.Node, in []ir.Shape, out ir.Shape) float64 {
	cells := float64(out.Rows) * float64(out.Cols)
	switch n.Op {
	case "mm":
		return costs.MatMulFlops(in[0].Rows, in[0].Cols, in[1].Cols)
	case "tsmm":
		return costs.MatMulFlops(in[0].Cols, in[0].Rows, in[0].Cols)
	case "cpmm":
		return costs.MatMulFlops(in[0].Cols, in[0].Rows, in[1].Cols)
	case "solve":
		return costs.SolveFlops(in[0].Rows) + costs.MatMulFlops(in[0].Rows, in[0].Rows, in[1].Cols)
	case "conv2d":
		cin := n.AttrInt("cin", 1)
		kh, kw := n.AttrInt("kh", 1), n.AttrInt("kw", 1)
		cout := in[1].Rows
		outHW := out.Cols / cout
		return costs.Conv2DFlops(in[0].Rows, cin, cout, outHW, 1, kh, kw)
	case "exp", "log", "sigmoid", "softmax", "pow", "sqrt":
		return costs.ElemwiseFlops(int(cells), 10)
	case "pca", "cleanPCASplit":
		// Covariance + power iterations dominate.
		return costs.MatMulFlops(in[0].Cols, in[0].Rows, in[0].Cols) +
			100*costs.MatMulFlops(in[0].Cols, in[0].Cols, n.AttrInt("k", 1))
	case "imputeMode", "outlierIQR", "recode":
		// Sort/hash-based primitives: per-column sorting or frequency
		// counting costs far more than an arithmetic pass (~n log n with
		// hefty constants).
		return costs.ElemwiseFlops(in[0].Rows*in[0].Cols, 40)
	case "imputeMean", "scale", "minmax", "bin", "onehot", "onehotf":
		// Two passes over the input.
		return costs.ElemwiseFlops(in[0].Rows*in[0].Cols, 4)
	case "var", "lit", "chkpoint":
		return 0
	default:
		// Elementwise, aggregates, structural ops: linear in the larger of
		// input/output cells.
		maxCells := cells
		for _, s := range in {
			if c := float64(s.Rows) * float64(s.Cols); c > maxCells {
				maxCells = c
			}
		}
		return costs.ElemwiseFlops(int(maxCells), 1)
	}
}

// spSupported lists operators with distributed (Spark) physical
// implementations in the runtime.
var spSupported = map[string]bool{
	"tsmm": true, "mm": true, "cpmm": true,
	"+": true, "-": true, "*": true, "/": true,
	"min": true, "max": true, ">": true, "<": true,
	"exp": true, "log": true, "sqrt": true, "abs": true,
	"sigmoid": true, "relu": true, "pow": true, "replaceNaN": true,
	"colSums": true, "colMeans": true, "colVars": true,
	"colMins": true, "colMaxs": true, "sum": true, "mean": true,
	"rowSums":    true,
	"imputeMean": true, "scale": true, "minmax": true,
	"chkpoint": true,
}

// gpuSupported lists operators with GPU kernels in the runtime.
var gpuSupported = map[string]bool{
	"mm": true, "tsmm": true, "t": true,
	"+": true, "-": true, "*": true, "/": true,
	"min": true, "max": true,
	"exp": true, "log": true, "sqrt": true, "abs": true,
	"sigmoid": true, "relu": true, "softmax": true, "pow": true,
	"dropout": true, "dropoutv": true, "conv2d": true, "maxpool": true,
	"rowSums": true, "colSums": true, "sum": true,
	"scale": true, "minmax": true,
}

// computeIntensive marks operators worth shipping to the GPU even at
// moderate sizes (dense BLAS-3 and convolutions).
var computeIntensive = map[string]bool{
	"mm": true, "tsmm": true, "conv2d": true, "maxpool": true,
	"dropout": true, "dropoutv": true, "softmax": true,
	"relu": true, "sigmoid": true,
}
