// Package compiler lowers ir programs to backend-placed instruction
// streams, mirroring SystemDS's dynamic recompilation: a basic block is
// compiled against the current variable sizes, so operator placement
// (CP/Spark/GPU) reflects the actual data. It also implements MEMPHIS's
// compiler integration (§5): prefetch and broadcast operator insertion,
// checkpoint placement, eviction injection, delay-factor/storage-level
// auto-tuning, and the MAXPARALLELIZE operator-ordering algorithm.
package compiler

import (
	"fmt"
	"strings"

	"memphis/internal/core"
	"memphis/internal/ir"
)

// Kind distinguishes ordinary operators from the special cache-management
// and data-exchange operators MEMPHIS adds.
type Kind int

const (
	// KindOp is an ordinary computational instruction.
	KindOp Kind = iota
	// KindPrefetch asynchronously fetches a remote (Spark/GPU) result to
	// the host without blocking the instruction stream (§5.1).
	KindPrefetch
	// KindBroadcast asynchronously registers a local matrix as a Spark
	// broadcast variable (§5.1).
	KindBroadcast
	// KindCheckpoint persists an RDD-backed variable (§5.2).
	KindCheckpoint
	// KindEvict releases part of the GPU free list (§5.2).
	KindEvict
	// KindFree releases a block-local temporary at its last-use point.
	// Inserted by the memory planner (internal/memplan) so intermediates
	// are dropped deterministically instead of waiting for block end.
	KindFree
)

func (k Kind) String() string {
	switch k {
	case KindPrefetch:
		return "prefetch"
	case KindBroadcast:
		return "broadcast"
	case KindCheckpoint:
		return "chkpoint"
	case KindEvict:
		return "evict"
	case KindFree:
		return "free"
	default:
		return "op"
	}
}

// Instruction is one element of a linearized instruction stream. Operands
// reference variables by name; literal scalar operands are encoded as
// "#<value>".
type Instruction struct {
	Kind    Kind
	Op      string
	Inputs  []string
	Outputs []string
	Attrs   map[string]string
	Backend core.Backend

	// Shape is the compile-time output size estimate; Flops the estimated
	// compute cost in floating-point operations.
	Shape ir.Shape
	Flops float64

	// InShapes carries the compile-time input size estimates (parallel to
	// Inputs; literals get the 1x1 scalar shape). The memory planner's
	// liveness analysis sizes block-external operands from these.
	InShapes []ir.Shape
}

// Attr returns an instruction attribute or "".
func (in *Instruction) Attr(k string) string {
	if in.Attrs == nil {
		return ""
	}
	return in.Attrs[k]
}

// Output returns the single output name (panics for multi-output).
func (in *Instruction) Output() string {
	if len(in.Outputs) != 1 {
		panic(fmt.Sprintf("compiler: instruction %s has %d outputs", in.Op, len(in.Outputs)))
	}
	return in.Outputs[0]
}

// String renders the instruction in SystemDS's "BACKEND op outputs <- inputs"
// style for debugging and tests. Fused instructions render their
// constituent op list so trace dumps and profile diffs stay readable.
func (in *Instruction) String() string {
	if in.Op == ir.FusedOp {
		return fmt.Sprintf("%s fused[%s] %s <- %s", in.Backend,
			FusedOpList(in.Attr("prog")),
			strings.Join(in.Outputs, ","), strings.Join(in.Inputs, ","))
	}
	return fmt.Sprintf("%s %s %s <- %s", in.Backend, in.Op,
		strings.Join(in.Outputs, ","), strings.Join(in.Inputs, ","))
}

// IsLiteral reports whether an operand name encodes an inline literal.
func IsLiteral(operand string) bool { return strings.HasPrefix(operand, "#") }

// LiteralOperand encodes a scalar literal as an operand name.
func LiteralOperand(v string) string { return "#" + v }

// LiteralValue decodes a literal operand.
func LiteralValue(operand string) string { return strings.TrimPrefix(operand, "#") }
