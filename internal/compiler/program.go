package compiler

import (
	"sort"
	"strings"

	"memphis/internal/ir"
)

// AutoTune implements the automatic parameter tuning rewrite (§5.2,
// Figure 10): it recursively traverses program blocks, analyzes which
// statements are loop-iteration-dependent (not reusable), and stores a
// delay factor and Spark storage level in each basic block's header.
// Mostly-reusable blocks cache eagerly (n=1) with disk-backed storage;
// loop-dependent blocks defer caching (larger n) and avoid disk spilling.
func AutoTune(p *ir.Program) {
	tuneBlocks(p.Main, nil)
	for _, f := range p.Funcs {
		tuneBlocks(f.Body, nil)
	}
}

func tuneBlocks(blocks []ir.Block, loopVars []string) {
	for _, b := range blocks {
		switch t := b.(type) {
		case *ir.BasicBlock:
			tuneBasicBlock(t, loopVars)
		case *ir.ForBlock:
			tuneBlocks(t.Body, append(loopVars, t.Var))
		case *ir.WhileBlock:
			// While-loop bodies are conservatively loop-dependent via all
			// variables they themselves update.
			updated := updatedVars(t.Body)
			tuneBlocks(t.Body, append(loopVars, updated...))
		case *ir.IfBlock:
			tuneBlocks(t.Then, loopVars)
			tuneBlocks(t.Else, loopVars)
		}
	}
}

func tuneBasicBlock(bb *ir.BasicBlock, loopVars []string) {
	if len(bb.Stmts) == 0 {
		return
	}
	names := make(map[string]struct{}, len(loopVars))
	for _, v := range loopVars {
		names[v] = struct{}{}
	}
	dep := 0
	for i := range bb.Stmts {
		if ir.DependsOn(bb.Stmts, i, names) {
			dep++
		}
	}
	reusable := 1 - float64(dep)/float64(len(bb.Stmts))
	switch {
	case reusable > 0.8:
		bb.DelayFactor = 1
		bb.StorageLevel = "MEMORY_AND_DISK"
	case reusable > 0.3:
		bb.DelayFactor = 2
		bb.StorageLevel = "MEMORY_AND_DISK"
	default:
		bb.DelayFactor = 4
		bb.StorageLevel = "MEMORY"
	}
}

// updatedVars returns the loop-carried variables of a loop body: those read
// before their first assignment (the read observes the previous iteration)
// and assigned somewhere in the body. Per-iteration temporaries that are
// assigned before use are excluded — checkpointing them would only churn
// cluster storage (the paper checkpoints just the updated factor W in
// Figure 9(c)).
func updatedVars(blocks []ir.Block) []string {
	assigned := make(map[string]struct{})
	carried := make(map[string]struct{})
	var visit func(bs []ir.Block)
	visit = func(bs []ir.Block) {
		for _, b := range bs {
			switch t := b.(type) {
			case *ir.BasicBlock:
				for _, st := range t.Stmts {
					reads := make(map[string]struct{})
					ir.VarsRead(st.Expr, reads)
					for v := range reads {
						if _, done := assigned[v]; !done {
							carried[v] = struct{}{}
						}
					}
					for _, tgt := range st.Targets {
						assigned[tgt] = struct{}{}
					}
				}
			case *ir.ForBlock:
				visit(t.Body)
			case *ir.WhileBlock:
				visit(t.Body)
			case *ir.IfBlock:
				// Conditional assignments may not execute: treat reads as
				// potentially carried, assignments as not guaranteed.
				visit(t.Then)
				visit(t.Else)
			}
		}
	}
	visit(blocks)
	var out []string
	for v := range carried {
		if strings.HasPrefix(v, "_") {
			continue // block-local scratch variables are never checkpointed
		}
		if _, ok := assigned[v]; ok {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// InjectLoopCheckpoints implements the iterative-algorithm checkpoint
// rewrite (§5.2, rewrite 2): variables updated in each loop iteration
// build ever-growing operator graphs under lazy evaluation; appending a
// checkpoint statement per updated variable persists the previous
// iteration's result (Figure 9(c), PNMF's factor W). The checkpoint is a
// runtime no-op for variables that are not RDD-backed.
func InjectLoopCheckpoints(p *ir.Program) {
	injectLoops(p.Main)
	for _, f := range p.Funcs {
		injectLoops(f.Body)
	}
}

func injectLoops(blocks []ir.Block) {
	for _, b := range blocks {
		switch t := b.(type) {
		case *ir.ForBlock:
			injectLoops(t.Body)
			appendCheckpoints(&t.Body)
		case *ir.WhileBlock:
			injectLoops(t.Body)
			appendCheckpoints(&t.Body)
		case *ir.IfBlock:
			injectLoops(t.Then)
			injectLoops(t.Else)
		}
	}
}

func appendCheckpoints(body *[]ir.Block) {
	updated := updatedVars(*body)
	if len(updated) == 0 {
		return
	}
	var stmts []ir.Stmt
	for _, v := range updated {
		stmts = append(stmts, ir.Stmt{
			Targets: []string{v},
			Expr:    ir.NewNode("chkpoint", ir.Var(v)),
		})
	}
	*body = append(*body, &ir.BasicBlock{Stmts: stmts, DelayFactor: 1})
}

// InjectEvictions implements the eviction-injection rewrite (§5.2, Figure
// 9(b)): when consecutive loops have different GPU allocation patterns
// (e.g. ensembles of models with different conv2d geometries), an evict
// instruction between them clears the now-useless free pointers instead of
// paying incremental one-at-a-time eviction. Loops with identical access
// patterns are left alone to preserve recycling.
func InjectEvictions(p *ir.Program) {
	p.Main = injectEvictions(p.Main)
	for _, f := range p.Funcs {
		f.Body = injectEvictions(f.Body)
	}
}

func injectEvictions(blocks []ir.Block) []ir.Block {
	out := make([]ir.Block, 0, len(blocks))
	var prevSig string
	for _, b := range blocks {
		if f, ok := b.(*ir.ForBlock); ok {
			f.Body = injectEvictions(f.Body)
			sig := gpuSignature(f.Body)
			if sig != "" {
				f.GPUHint = true
				if prevSig != "" && prevSig != sig {
					out = append(out, &ir.EvictBlock{Fraction: 1.0})
				}
				prevSig = sig
			}
		} else if bb, ok := b.(*ir.BasicBlock); ok && len(bb.Stmts) > 0 {
			// Non-loop compute between loops resets the pattern tracking.
			_ = bb
		}
		out = append(out, b)
	}
	return out
}

// gpuSignature fingerprints the GPU allocation pattern of a loop body: the
// sorted multiset of compute-intensive op shapes (op + attributes).
func gpuSignature(blocks []ir.Block) string {
	var sigs []string
	ir.Walk(blocks, func(b ir.Block) {
		bb, ok := b.(*ir.BasicBlock)
		if !ok {
			return
		}
		for _, st := range bb.Stmts {
			var collect func(n *ir.Node)
			collect = func(n *ir.Node) {
				if n == nil {
					return
				}
				if computeIntensive[n.Op] {
					sig := n.Op
					keys := make([]string, 0, len(n.Attrs))
					for k := range n.Attrs {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					for _, k := range keys {
						if k != "seed" { // seeds vary without changing sizes
							sig += ";" + k + "=" + n.Attrs[k]
						}
					}
					sigs = append(sigs, sig)
				}
				for _, in := range n.Inputs {
					collect(in)
				}
			}
			collect(st.Expr)
		}
	})
	if len(sigs) == 0 {
		return ""
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "|")
}
