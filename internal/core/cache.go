// Package core implements MEMPHIS's hierarchical multi-backend lineage
// cache (paper §3.3 and §4): a single driver-side hash map from lineage
// items to cache entries that wrap backend-local objects — in-memory
// matrices, Spark RDD handles with their dangling child references, GPU
// pointers, and disk-spilled binaries. The cache provides the unified
// system-internal API (REUSE, PUT, MAKE_SPACE) on the instruction execution
// path and delegates memory management to backend-specific policies:
//
//   - Driver: Cost&Size eviction with optional disk spill.
//   - Spark (§4.1): Eq. (1) scoring (r_h+r_m+r_j)·c/s over persisted RDDs,
//     lazy garbage collection of dangling child RDDs and broadcasts once a
//     parent materializes, and asynchronous count() materialization after
//     k unmaterialized touches.
//   - GPU (§4.2): entries wrap pointers owned by the gpu.Manager; recycling
//     a pointer invalidates its entry via callback.
//
// Delayed caching (§5.2) defers object storage until the n-th repetition of
// an operation using TO-BE-CACHED placeholder entries.
package core

import (
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/gpu"
	"memphis/internal/lineage"
	"memphis/internal/memctl"
	"memphis/internal/spark"
	"memphis/internal/vtime"
)

// Arbiter pool names of the cache-managed memory regions.
const (
	// PoolCP is the driver lineage cache region.
	PoolCP = "cp"
	// PoolSparkReuse is the reuse share of Spark cluster storage.
	PoolSparkReuse = "spark-reuse"
)

// Backend identifies where a cached object lives.
type Backend int

const (
	// BackendCP is the driver's local (control program) memory.
	BackendCP Backend = iota
	// BackendSpark is cluster storage (a persisted RDD handle).
	BackendSpark
	// BackendGPU is device memory (a GPU pointer).
	BackendGPU
)

func (b Backend) String() string {
	switch b {
	case BackendCP:
		return "CP"
	case BackendSpark:
		return "SPARK"
	case BackendGPU:
		return "GPU"
	default:
		return "?"
	}
}

// Status tracks an entry's lifecycle.
type Status int

const (
	// StatusToBeCached is a delayed-caching placeholder: the operation has
	// repeated but its object is not stored yet.
	StatusToBeCached Status = iota
	// StatusCached means the object is available for reuse.
	StatusCached
	// StatusSpilled means a driver-local object was evicted to disk and is
	// restored on access.
	StatusSpilled
)

// Entry is one lineage cache entry: a wrapper around a backend-specific
// pointer plus the metadata driving eviction and lazy GC.
type Entry struct {
	Key     *lineage.Item
	Backend Backend
	Status  Status

	// Exactly one payload is set, by Backend.
	Matrix *data.Matrix
	RDD    *spark.RDD
	GPUPtr *gpu.Pointer

	// IsAction marks collected Spark action results cached in the driver
	// (reused to bypass whole jobs, §4.1).
	IsAction bool
	// IsFunc marks multi-level (function/block) reuse entries (§3.3).
	IsFunc bool

	// Alias optionally carries the fine-grained lineage of the value when
	// the entry is keyed by a coarse (function-level) item, keeping
	// downstream lineage consistent and the value recomputable.
	Alias *lineage.Item

	// Dangling references owned by this RDD entry for lazy GC.
	ChildRDDs  []*spark.RDD
	Broadcasts []*spark.Broadcast
	gcDone     bool

	// Eviction metadata.
	ComputeCost float64 // c(o): estimated compute cost, seconds
	Size        int64   // s(o): worst-case object size, bytes
	Hits        int64   // r_h
	Misses      int64   // r_m: touches while a placeholder
	Jobs        int64   // r_j: jobs that referenced the RDD
	LastAccess  float64
	Height      int

	// Delayed caching.
	DelayTarget int   // cache after this many repetitions (1 = eager)
	SeenCount   int   // repetitions observed so far
	UnmatTouch  int64 // reuses while the RDD was unmaterialized

	// Planner hint stamp (memplan): the static lifetime class of the
	// entry's value in the plan epoch it was stamped under. Stamps from
	// older epochs are stale (the block that produced them finished) and
	// read as LifeUnknown.
	planLife  memctl.Lifetime
	planEpoch int64
}

// Stats counts cache events; experiments and tests assert on these.
type Stats struct {
	Probes    int64
	HitsCP    int64
	HitsRDD   int64
	HitsGPU   int64
	HitsFunc  int64
	HitsActon int64
	Misses    int64

	Puts            int64
	Placeholders    int64
	DelayedStores   int64
	EvictionsCP     int64
	SpillsCP        int64
	RestoresCP      int64
	UnpersistsSpark int64
	GPUInvalidated  int64

	GCBroadcasts int64
	GCChildRDDs  int64
	AsyncMats    int64
	GPUToHost    int64

	// SpillErrorsCP counts CP spill writes that failed under fault
	// injection (the victim is dropped instead of spilled).
	SpillErrorsCP int64
}

// Config tunes the cache policies.
type Config struct {
	// CPBudget is the driver lineage cache size in bytes.
	CPBudget int64
	// SparkBudget is the cluster storage fraction reserved for reuse
	// (the paper uses 80% of Spark storage).
	SparkBudget int64
	// GPUReuse enables caching of GPU pointers.
	GPUReuse bool
	// SpillToDisk lets driver eviction spill to local disk instead of
	// dropping.
	SpillToDisk bool
	// AsyncMatThreshold is k: unmaterialized touches before an RDD is
	// materialized with an asynchronous count() (default 3).
	AsyncMatThreshold int
}

// DefaultConfig returns the paper's defaults at simulation scale.
func DefaultConfig() Config {
	return Config{
		CPBudget:          16 << 20,
		SparkBudget:       48 << 20,
		GPUReuse:          true,
		SpillToDisk:       true,
		AsyncMatThreshold: 3,
	}
}

// Cache is the hierarchical lineage cache.
type Cache struct {
	clock *vtime.Clock
	model *costs.Model
	conf  Config

	entries map[uint64][]*Entry // lineage hash -> entries (chained)

	cpUsed    int64
	sparkUsed int64 // worst-case estimates of persisted reuse RDDs

	// Resident high-water marks (pure observation: no policy or clock
	// effect), surfaced through the arbiter pools' PeakReporter.
	cpPeak    int64
	sparkPeak int64

	// planEpoch counts planned-block executions; zero means no memory
	// plan has ever been active and victim selection is byte-identical to
	// the pre-planner policy.
	planEpoch int64

	sc  *spark.Context // may be nil (no Spark backend)
	gm  *gpu.Manager   // may be nil (no GPU backend)
	gpE map[*gpu.Pointer]*Entry

	// pendingMat are futures of asynchronous materialization jobs.
	pendingMat []*vtime.Future

	// onDrop, when set, observes every entry leaving the cache (eviction,
	// invalidation, or explicit drop). The serving layer uses it to keep
	// per-tenant usage accounting in sync with the entry map.
	onDrop func(*Entry)

	// inj injects deterministic spill I/O errors; nil means none.
	inj *faults.Injector

	// arb, when set, receives pressure/eviction/demotion accounting for
	// the cache's memory regions; nil disables reporting.
	arb *memctl.Arbiter

	Stats Stats
}

// NewCache creates the cache. sc and gm may be nil when the corresponding
// backend is absent.
func NewCache(clock *vtime.Clock, model *costs.Model, conf Config,
	sc *spark.Context, gm *gpu.Manager) *Cache {
	c := &Cache{
		clock:   clock,
		model:   model,
		conf:    conf,
		entries: make(map[uint64][]*Entry),
		sc:      sc,
		gm:      gm,
		gpE:     make(map[*gpu.Pointer]*Entry),
	}
	if c.conf.AsyncMatThreshold <= 0 {
		c.conf.AsyncMatThreshold = 3
	}
	if gm != nil {
		gm.SetOnRecycle(c.invalidateGPU)
	}
	return c
}

// SetInjector installs the fault injector (nil disables injection).
func (c *Cache) SetInjector(inj *faults.Injector) { c.inj = inj }

// SetArbiter attaches the memory arbiter and registers the cache's two
// pools (driver cache and Spark reuse share) with it.
func (c *Cache) SetArbiter(a *memctl.Arbiter) {
	c.arb = a
	if a != nil {
		a.Register(cpPool{c})
		a.Register(sparkReusePool{c})
	}
}

// noteEviction reports one object of size bytes dropped from a pool.
func (c *Cache) noteEviction(pool string, size int64) {
	if c.arb != nil {
		c.arb.NoteEviction(pool, 1, size)
	}
}

// noteDemotion reports one object of size bytes moved down the ladder.
func (c *Cache) noteDemotion(pool string, size int64) {
	if c.arb != nil {
		c.arb.NoteDemotion(pool, 1, size)
	}
}

// notePressure reports a MAKE_SPACE pressure event against a pool.
func (c *Cache) notePressure(pool string) {
	if c.arb != nil {
		c.arb.NotePressure(pool)
	}
}

// Config returns the active configuration.
func (c *Cache) Config() Config { return c.conf }

// CPUsed returns the bytes of driver-resident cached matrices.
func (c *Cache) CPUsed() int64 { return c.cpUsed }

// SparkUsed returns the worst-case bytes of reuse-persisted RDDs.
func (c *Cache) SparkUsed() int64 { return c.sparkUsed }

// CPPeak returns the high-water mark of driver-resident cached bytes.
func (c *Cache) CPPeak() int64 { return c.cpPeak }

// SparkPeak returns the high-water mark of reuse-persisted RDD bytes.
func (c *Cache) SparkPeak() int64 { return c.sparkPeak }

// bumpCP/bumpSpark refresh the high-water marks after a usage increase.
func (c *Cache) bumpCP() {
	if c.cpUsed > c.cpPeak {
		c.cpPeak = c.cpUsed
	}
}

func (c *Cache) bumpSpark() {
	if c.sparkUsed > c.sparkPeak {
		c.sparkPeak = c.sparkUsed
	}
}

// BeginPlanEpoch starts a new planner epoch: stamps from earlier planned
// blocks become stale. Called by the runtime before executing a planned
// stream; never called with the planner off, so planEpoch stays zero and
// victim selection keeps its historical byte-identical order.
func (c *Cache) BeginPlanEpoch() { c.planEpoch++ }

// StampLifetime attaches the planner's lifetime class to an entry under
// the current epoch.
func (c *Cache) StampLifetime(e *Entry, life memctl.Lifetime) {
	if e == nil {
		return
	}
	e.planLife = life
	e.planEpoch = c.planEpoch
}

// entryLife reads an entry's effective lifetime class: the stamp when it
// is from the current epoch, unknown otherwise.
func (c *Cache) entryLife(e *Entry) memctl.Lifetime {
	if c.planEpoch > 0 && e.planEpoch == c.planEpoch {
		return e.planLife
	}
	return memctl.LifeUnknown
}

// NumEntries returns the number of cache entries (all states).
func (c *Cache) NumEntries() int {
	n := 0
	for _, chain := range c.entries {
		n += len(chain)
	}
	return n
}

// find locates the entry equal to item, if any.
func (c *Cache) find(item *lineage.Item) *Entry {
	for _, e := range c.entries[item.Hash()] {
		if e.Key.Equals(item) {
			return e
		}
	}
	return nil
}

// insert adds an entry keyed by its lineage item.
func (c *Cache) insert(e *Entry) {
	h := e.Key.Hash()
	c.entries[h] = append(c.entries[h], e)
}

// removeEntry unlinks an entry from the map.
func (c *Cache) removeEntry(e *Entry) {
	h := e.Key.Hash()
	chain := c.entries[h]
	for i, x := range chain {
		if x == e {
			chain = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	if len(chain) == 0 {
		delete(c.entries, h)
	} else {
		c.entries[h] = chain
	}
	if c.onDrop != nil {
		c.onDrop(e)
	}
}

// SetOnDrop installs the entry-removal observer.
func (c *Cache) SetOnDrop(f func(*Entry)) { c.onDrop = f }

// DropItem removes the entry keyed by item, releasing its resources, and
// reports whether an entry existed. Used by the serving layer's per-tenant
// budget enforcement, which picks victims outside the cache.
func (c *Cache) DropItem(item *lineage.Item) bool {
	e := c.find(item)
	if e == nil {
		return false
	}
	c.dropEntry(e)
	return true
}

// Lookup returns the entry equal to item without charging probe cost or
// touching statistics (metadata access, e.g. alias resolution after a
// successful probe).
func (c *Cache) Lookup(item *lineage.Item) *Entry { return c.find(item) }

// Probe implements REUSE's lookup: it charges the probe cost and returns
// the entry if the item's output is reusable. Placeholder (TO-BE-CACHED)
// entries report a miss but advance their repetition count, implementing
// delayed caching.
func (c *Cache) Probe(item *lineage.Item) (*Entry, bool) {
	c.Stats.Probes++
	c.clock.Advance(c.model.Probe)
	e := c.find(item)
	if e == nil {
		c.Stats.Misses++
		return nil, false
	}
	if e.Status == StatusToBeCached {
		e.Misses++
		c.Stats.Misses++
		return e, false
	}
	// GPU pointers may have been recycled between probe setups.
	if e.Backend == BackendGPU && (e.GPUPtr == nil || !e.GPUPtr.Valid()) {
		c.dropEntry(e)
		c.Stats.Misses++
		return nil, false
	}
	e.Hits++
	e.LastAccess = c.clock.Now()
	switch {
	case e.IsFunc:
		c.Stats.HitsFunc++
	case e.IsAction:
		c.Stats.HitsActon++
	case e.Backend == BackendCP:
		c.Stats.HitsCP++
	case e.Backend == BackendSpark:
		c.Stats.HitsRDD++
	case e.Backend == BackendGPU:
		c.Stats.HitsGPU++
	}
	return e, true
}

// dropEntry removes an entry and releases its resources.
func (c *Cache) dropEntry(e *Entry) {
	switch e.Backend {
	case BackendCP:
		if e.Status == StatusCached && e.Matrix != nil {
			c.cpUsed -= e.Size
		}
	case BackendSpark:
		if e.RDD != nil && e.Status == StatusCached {
			c.sparkUsed -= e.Size
			if e.RDD.StorageLevel() != spark.StorageNone {
				e.RDD.Unpersist()
				c.Stats.UnpersistsSpark++
			}
		}
	case BackendGPU:
		if e.GPUPtr != nil {
			e.GPUPtr.Cached = false
			delete(c.gpE, e.GPUPtr)
		}
	}
	c.removeEntry(e)
}

// invalidateGPU is the gpu.Manager recycle callback: the pointer's memory
// is being handed to a new output. Entries whose recomputation costs more
// than a device-to-host copy are evicted to the driver cache instead of
// dropped — the paper's device-to-host eviction process (§4.2) — so the
// value stays reusable (and is re-uploaded on the next device use).
func (c *Cache) invalidateGPU(p *gpu.Pointer) {
	e, ok := c.gpE[p]
	if !ok {
		return
	}
	delete(c.gpE, p)
	d2h := costs.Transfer(p.Size(), c.model.D2HBW, c.model.CopyLatency)
	if v := p.Value(); v != nil && e.ComputeCost > 2*d2h && p.Size() <= c.conf.CPBudget {
		c.Stats.GPUToHost++
		c.noteDemotion(gpu.PoolName, p.Size())
		c.clock.Advance(d2h)
		c.MakeSpaceCP(p.Size())
		e.Backend = BackendCP
		e.Matrix = v.Clone()
		e.GPUPtr = nil
		c.cpUsed += e.Size
		c.bumpCP()
		return
	}
	c.Stats.GPUInvalidated++
	c.noteEviction(gpu.PoolName, p.Size())
	c.removeEntry(e)
}

// DemoteGPUPointer moves a cached GPU pointer's value into the driver
// cache: the device-to-host rung of the demotion ladder, charging the D2H
// transfer exactly once. Unlike invalidateGPU it preserves the value
// unconditionally — the pointer's live variables need the bytes once the
// device copy is surrendered — caching it when it fits the CP budget and
// returning it either way. The caller must then release the device side
// with Manager.Surrender (not Release/Free), which skips the recycle
// callback: the entry is already detached here, so no second D2H charge
// can occur. Returns nil when the pointer wraps no entry or no value.
func (c *Cache) DemoteGPUPointer(p *gpu.Pointer) *data.Matrix {
	e, ok := c.gpE[p]
	if !ok {
		return nil
	}
	v := p.Value()
	if v == nil {
		return nil
	}
	delete(c.gpE, p)
	p.Cached = false
	c.Stats.GPUToHost++
	c.noteDemotion(gpu.PoolName, p.Size())
	c.clock.Advance(costs.Transfer(p.Size(), c.model.D2HBW, c.model.CopyLatency))
	m := v.Clone()
	if p.Size() <= c.conf.CPBudget {
		c.MakeSpaceCP(p.Size())
		e.Backend = BackendCP
		e.Matrix = m
		e.GPUPtr = nil
		c.cpUsed += e.Size
		c.bumpCP()
	} else {
		c.removeEntry(e)
	}
	return m
}

// shouldStore advances delayed-caching state and reports whether the PUT
// should store the object now. A delay of n<=1 stores eagerly.
func (c *Cache) shouldStore(item *lineage.Item, delay int) (*Entry, bool) {
	if delay <= 1 {
		return nil, true
	}
	e := c.find(item)
	if e == nil {
		e = &Entry{Key: item, Status: StatusToBeCached, DelayTarget: delay, SeenCount: 1}
		c.insert(e)
		c.Stats.Placeholders++
		return e, false
	}
	e.SeenCount++
	if e.SeenCount >= delay {
		c.Stats.DelayedStores++
		return e, true
	}
	return e, false
}
