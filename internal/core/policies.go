package core

import (
	"math"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/gpu"
	"memphis/internal/lineage"
	"memphis/internal/memctl"
	"memphis/internal/spark"
)

// PutCP caches a driver-local matrix (also used for collected Spark action
// results and function outputs). delay implements delayed caching; isAction
// and isFunc tag the entry kind for statistics and policy decisions.
func (c *Cache) PutCP(item *lineage.Item, m *data.Matrix, computeCost float64,
	delay int, isAction, isFunc bool) *Entry {
	c.Stats.Puts++
	c.clock.Advance(c.model.CachePut)
	e, store := c.shouldStore(item, delay)
	if !store {
		return e
	}
	size := m.SizeBytes()
	if size > c.conf.CPBudget {
		return nil // never cache objects larger than the whole cache
	}
	c.MakeSpaceCP(size)
	if e == nil {
		if old := c.find(item); old != nil {
			return old // concurrent path already cached it
		}
		e = &Entry{Key: item}
		c.insert(e)
	}
	e.Backend = BackendCP
	e.Status = StatusCached
	e.Matrix = m
	e.IsAction = isAction
	e.IsFunc = isFunc
	e.ComputeCost = computeCost
	e.Size = size
	e.Height = item.Height()
	e.LastAccess = c.clock.Now()
	c.cpUsed += size
	c.bumpCP()
	return e
}

// Matrix returns a CP entry's value, restoring it from disk if it was
// spilled (charging the disk read).
func (c *Cache) Matrix(e *Entry) *data.Matrix {
	if e.Status == StatusSpilled {
		c.Stats.RestoresCP++
		c.clock.Advance(c.model.SpillSetup +
			costs.Transfer(e.Size, c.model.DiskBW, 0))
		e.Status = StatusCached
		c.MakeSpaceCP(e.Size)
		c.cpUsed += e.Size
		c.bumpCP()
	}
	return e.Matrix
}

// cpCandidate lifts a driver cache entry into the shared scoring shape.
func cpCandidate(e *Entry) memctl.Candidate {
	return memctl.Candidate{
		Hits:        e.Hits,
		Misses:      e.Misses,
		Jobs:        e.Jobs,
		ComputeCost: e.ComputeCost,
		Size:        e.Size,
		Height:      e.Height,
		LastAccess:  e.LastAccess,
	}
}

// cpVictim selects the lowest-scored resident CP entry under the shared
// hybrid policy (memctl.CPWeights: LIMA's Cost&Size ratio, normalized
// against the cache-wide maximum, plus recency), or nil when nothing is
// evictable. Under an active memory plan (planEpoch > 0) selection is
// lifetime-grouped first: entries the plan marked dead evict before
// unknown ones, soon-reused ones are protected, and the hybrid score
// breaks ties within a group. With the planner off, planEpoch stays zero
// and the historical strict-< minimum scan runs byte-identically.
func (c *Cache) cpVictim() *Entry {
	maxRatio := 0.0
	for _, chain := range c.entries {
		for _, e := range chain {
			if e.Backend != BackendCP || e.Status != StatusCached || e.Matrix == nil {
				continue
			}
			if r := memctl.Ratio(cpCandidate(e), false); r > maxRatio {
				maxRatio = r
			}
		}
	}
	norms := memctl.Norms{MaxRatio: maxRatio, Now: c.clock.Now()}
	planOn := c.planEpoch > 0
	var victim *Entry
	best := math.Inf(1)
	bestLife := memctl.LifeSoon + 1
	for _, chain := range c.entries {
		for _, e := range chain {
			if e.Backend != BackendCP || e.Status != StatusCached || e.Matrix == nil {
				continue
			}
			s := memctl.Score(cpCandidate(e), memctl.CPWeights, norms)
			if planOn {
				if life := c.entryLife(e); memctl.PreferVictim(life, s, bestLife, best) {
					bestLife, best, victim = life, s, e
				}
			} else if s < best {
				best, victim = s, e
			}
		}
	}
	return victim
}

// MakeSpaceCP evicts driver-cached matrices until need bytes fit in the
// budget, spilling to disk when configured (MAKE_SPACE of the unified API).
func (c *Cache) MakeSpaceCP(need int64) {
	if c.cpUsed+need > c.conf.CPBudget {
		c.notePressure(PoolCP)
	}
	for c.cpUsed+need > c.conf.CPBudget {
		if _, ok := c.evictOneCP(); !ok {
			return
		}
	}
}

// evictOneCP evicts the lowest-scored CP entry — spilling it to disk when
// recomputation would cost more than the disk round trip (LIMA's cost-based
// spill decision), dropping it otherwise — and returns the bytes released
// from driver memory plus whether a victim existed. An injected spill I/O
// error drops the victim instead — it is recomputed from lineage if needed
// again — after charging the attempted write.
func (c *Cache) evictOneCP() (int64, bool) {
	victim := c.cpVictim()
	if victim == nil {
		return 0, false
	}
	c.Stats.EvictionsCP++
	c.cpUsed -= victim.Size
	diskRT := 2 * (c.model.SpillSetup + costs.Transfer(victim.Size, c.model.DiskBW, 0))
	if c.conf.SpillToDisk && victim.ComputeCost > diskRT {
		c.clock.Advance(c.model.SpillSetup +
			costs.Transfer(victim.Size, c.model.DiskBW, 0))
		if c.inj.Fail(faults.CPSpill) {
			c.Stats.SpillErrorsCP++
			c.noteEviction(PoolCP, victim.Size)
			c.removeEntry(victim)
		} else {
			c.Stats.SpillsCP++
			c.noteDemotion(PoolCP, victim.Size)
			victim.Status = StatusSpilled
		}
	} else {
		c.noteEviction(PoolCP, victim.Size)
		c.removeEntry(victim)
	}
	return victim.Size, true
}

// PutRDD caches a distributed intermediate: the RDD is marked for cluster
// caching with persist() (lazy), and the entry records the dangling child
// RDDs and broadcasts for lazy garbage collection (§4.1).
func (c *Cache) PutRDD(item *lineage.Item, r *spark.RDD, children []*spark.RDD,
	bcasts []*spark.Broadcast, computeCost float64, delay int,
	level spark.StorageLevel) *Entry {
	c.Stats.Puts++
	c.clock.Advance(c.model.CachePut)
	e, store := c.shouldStore(item, delay)
	if !store {
		return e
	}
	size := r.SizeBytes()
	if size > c.conf.SparkBudget {
		return nil
	}
	c.MakeSpaceSpark(size)
	if e == nil {
		if old := c.find(item); old != nil {
			return old
		}
		e = &Entry{Key: item}
		c.insert(e)
	}
	if level == spark.StorageNone {
		level = spark.StorageMemory
	}
	r.Persist(level)
	e.Backend = BackendSpark
	e.Status = StatusCached
	e.RDD = r
	e.ChildRDDs = children
	e.Broadcasts = bcasts
	e.ComputeCost = computeCost
	e.Size = size
	e.Height = item.Height()
	e.LastAccess = c.clock.Now()
	c.sparkUsed += size
	c.bumpSpark()
	return e
}

// sparkVictim selects the lowest-scored reuse RDD under the shared policy
// instance for Spark: Eq. (1), argmin (r_h+r_m+r_j)·c/s (memctl.SparkWeights
// with MaxRatio 1 keeps the historical unnormalized ordering exactly).
func (c *Cache) sparkVictim() *Entry {
	norms := memctl.Norms{MaxRatio: 1}
	var victim *Entry
	best := math.Inf(1)
	for _, chain := range c.entries {
		for _, e := range chain {
			if e.Backend != BackendSpark || e.Status != StatusCached || e.RDD == nil {
				continue
			}
			if s := memctl.Score(cpCandidate(e), memctl.SparkWeights, norms); s < best {
				best, victim = s, e
			}
		}
	}
	return victim
}

// MakeSpaceSpark unpersists reuse RDDs with the lowest Eq. (1) scores until
// need bytes fit in the reuse share of cluster storage. unpersist is
// asynchronous in Spark; temporary overflow is absorbed by partition
// spilling in the block manager, so no driver time is charged.
func (c *Cache) MakeSpaceSpark(need int64) {
	if c.sparkUsed+need > c.conf.SparkBudget {
		c.notePressure(PoolSparkReuse)
	}
	for c.sparkUsed+need > c.conf.SparkBudget {
		if _, ok := c.evictOneSpark(); !ok {
			return
		}
	}
}

// evictOneSpark unpersists the lowest-scored reuse RDD, returning the
// bytes released from the reuse share plus whether a victim existed.
func (c *Cache) evictOneSpark() (int64, bool) {
	victim := c.sparkVictim()
	if victim == nil {
		return 0, false
	}
	c.Stats.UnpersistsSpark++
	c.sparkUsed -= victim.Size
	c.noteEviction(PoolSparkReuse, victim.Size)
	victim.RDD.Unpersist()
	c.removeEntry(victim)
	return victim.Size, true
}

// OnRDDReuse performs the Spark-side bookkeeping of a successful RDD entry
// reuse: lazy garbage collection of dangling children once the parent is
// materialized, and asynchronous count() materialization after k
// unmaterialized touches (§4.1).
func (c *Cache) OnRDDReuse(e *Entry) {
	if e.RDD == nil {
		return
	}
	e.Jobs++
	if e.RDD.IsMaterialized() {
		c.collectGarbage(e)
		return
	}
	e.UnmatTouch++
	if int(e.UnmatTouch) >= c.conf.AsyncMatThreshold && c.sc != nil {
		e.UnmatTouch = 0
		c.Stats.AsyncMats++
		_, f := c.sc.Count(e.RDD, true)
		c.pendingMat = append(c.pendingMat, f)
	}
}

// collectGarbage destroys the entry's broadcasts and cleans child RDD
// shuffle files once its RDD is materialized: any future access reads
// cached partitions, so the children are stale (Figure 6).
func (c *Cache) collectGarbage(e *Entry) {
	if e.gcDone {
		return
	}
	e.gcDone = true
	for _, b := range e.Broadcasts {
		if !b.Destroyed() {
			b.Destroy()
			c.Stats.GCBroadcasts++
		}
	}
	if c.sc != nil {
		for _, child := range e.ChildRDDs {
			c.sc.CleanShuffles(child)
			c.Stats.GCChildRDDs++
		}
	}
	e.ChildRDDs = nil
}

// PutGPU caches a device pointer. The gpu.Manager keeps owning the memory;
// the entry is invalidated if the pointer is recycled.
func (c *Cache) PutGPU(item *lineage.Item, p *gpu.Pointer, computeCost float64, delay int) *Entry {
	if !c.conf.GPUReuse || c.gm == nil {
		return nil
	}
	c.Stats.Puts++
	c.clock.Advance(c.model.CachePut)
	e, store := c.shouldStore(item, delay)
	if !store {
		return e
	}
	if e == nil {
		if old := c.find(item); old != nil {
			return old
		}
		e = &Entry{Key: item}
		c.insert(e)
	}
	e.Backend = BackendGPU
	e.Status = StatusCached
	e.GPUPtr = p
	e.ComputeCost = computeCost
	e.Size = p.Size()
	e.Height = item.Height()
	e.LastAccess = c.clock.Now()
	p.Height = item.Height()
	p.ComputeCost = computeCost
	p.Cached = true
	c.gpE[p] = e
	return e
}

// ReuseGPU retains the entry's pointer for a new live variable (moving it
// from the free to the live list if needed). It returns false if the
// pointer was recycled concurrently, in which case the entry is dropped.
func (c *Cache) ReuseGPU(e *Entry) bool {
	if e.GPUPtr == nil || c.gm == nil {
		return false
	}
	if !c.gm.Retain(e.GPUPtr) {
		c.dropEntry(e)
		return false
	}
	return true
}

// EvictGPUPercent forwards the compiler-injected evict instruction to the
// GPU memory manager (§5.2).
func (c *Cache) EvictGPUPercent(frac float64) int64 {
	if c.gm == nil {
		return 0
	}
	return c.gm.EvictPercent(frac)
}

// Clear drops every entry and releases Spark/GPU resources; used between
// experiment repetitions.
func (c *Cache) Clear() {
	for _, chain := range c.entries {
		for _, e := range chain {
			switch e.Backend {
			case BackendSpark:
				if e.RDD != nil && e.RDD.StorageLevel() != spark.StorageNone {
					e.RDD.Unpersist()
				}
			case BackendGPU:
				if e.GPUPtr != nil {
					delete(c.gpE, e.GPUPtr)
				}
			}
		}
	}
	c.entries = make(map[uint64][]*Entry)
	c.cpUsed = 0
	c.sparkUsed = 0
}
