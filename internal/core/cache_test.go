package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/gpu"
	"memphis/internal/lineage"
	"memphis/internal/spark"
	"memphis/internal/vtime"
)

type env struct {
	clock *vtime.Clock
	sc    *spark.Context
	gm    *gpu.Manager
	cache *Cache
}

func newEnv(conf Config) *env {
	clock := vtime.New()
	model := costs.Default()
	sc := spark.NewContext(clock, model, spark.DefaultConfig())
	dev := gpu.NewDevice(clock, model, "gpu0", 1<<20)
	gm := gpu.NewManager(dev)
	return &env{clock: clock, sc: sc, gm: gm,
		cache: NewCache(clock, model, conf, sc, gm)}
}

func li(op, d string, in ...*lineage.Item) *lineage.Item {
	return lineage.NewItem(op, d, in...)
}

func TestPutProbeCP(t *testing.T) {
	e := newEnv(DefaultConfig())
	item := li("tsmm", "", li("read", "X"))
	m := data.Ones(4, 4)
	if _, hit := e.cache.Probe(item); hit {
		t.Fatal("empty cache should miss")
	}
	e.cache.PutCP(item, m, 0.5, 1, false, false)
	// Probe with an equal-but-distinct item (as tracing produces).
	got, hit := e.cache.Probe(li("tsmm", "", li("read", "X")))
	if !hit {
		t.Fatal("expected hit")
	}
	if !data.AllClose(e.cache.Matrix(got), m, 0) {
		t.Fatal("cached value wrong")
	}
	if e.cache.Stats.HitsCP != 1 || e.cache.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", e.cache.Stats)
	}
}

func TestOversizedObjectNotCached(t *testing.T) {
	conf := DefaultConfig()
	conf.CPBudget = 64
	e := newEnv(conf)
	if e.cache.PutCP(li("op", ""), data.Ones(10, 10), 1, 1, false, false) != nil {
		t.Fatal("object larger than the cache must be rejected")
	}
}

func TestCPEvictionCostAndSize(t *testing.T) {
	conf := DefaultConfig()
	conf.CPBudget = 2 * 8 * 16 // fits two 4x4 matrices
	conf.SpillToDisk = false
	e := newEnv(conf)
	cheap := li("cheap", "")
	costly := li("costly", "")
	e.cache.PutCP(cheap, data.Ones(4, 4), 0.001, 1, false, false)
	e.cache.PutCP(costly, data.Ones(4, 4), 10.0, 1, false, false)
	// Third insert must evict the cheap entry.
	e.cache.PutCP(li("new", ""), data.Ones(4, 4), 1.0, 1, false, false)
	if _, hit := e.cache.Probe(li("cheap", "")); hit {
		t.Fatal("cheap entry should have been evicted")
	}
	if _, hit := e.cache.Probe(li("costly", "")); !hit {
		t.Fatal("costly entry should survive")
	}
	if e.cache.Stats.EvictionsCP != 1 {
		t.Fatalf("EvictionsCP = %d", e.cache.Stats.EvictionsCP)
	}
}

func TestCPSpillAndRestore(t *testing.T) {
	conf := DefaultConfig()
	conf.CPBudget = 8 * 16
	conf.SpillToDisk = true
	e := newEnv(conf)
	a := li("a", "")
	m := data.Rand(4, 4, 0, 1, 1, 1)
	e.cache.PutCP(a, m, 5, 1, false, false)
	e.cache.PutCP(li("b", ""), data.Ones(4, 4), 1, 1, false, false)
	if e.cache.Stats.SpillsCP == 0 {
		t.Fatal("expected a spill")
	}
	// The spilled entry still hits and restores from disk.
	got, hit := e.cache.Probe(li("a", ""))
	if !hit {
		t.Fatal("spilled entry must remain probeable")
	}
	before := e.clock.Now()
	val := e.cache.Matrix(got)
	if !data.AllClose(val, m, 0) {
		t.Fatal("restored value wrong")
	}
	if e.clock.Now() <= before {
		t.Fatal("restore must charge disk time")
	}
	if e.cache.Stats.RestoresCP != 1 {
		t.Fatalf("RestoresCP = %d", e.cache.Stats.RestoresCP)
	}
}

func TestDelayedCaching(t *testing.T) {
	e := newEnv(DefaultConfig())
	m := data.Ones(2, 2)
	delay := 3
	for rep := 1; rep < delay; rep++ {
		it := li("expensive", "")
		if _, hit := e.cache.Probe(it); hit {
			t.Fatalf("rep %d: placeholder must not hit", rep)
		}
		e.cache.PutCP(it, m, 1, delay, false, false)
	}
	if e.cache.Stats.Placeholders != 1 {
		t.Fatalf("Placeholders = %d, want 1", e.cache.Stats.Placeholders)
	}
	// The delay-th repetition stores the object...
	it := li("expensive", "")
	if _, hit := e.cache.Probe(it); hit {
		t.Fatal("must still miss before the n-th put")
	}
	e.cache.PutCP(it, m, 1, delay, false, false)
	// ...and from then on probes hit.
	if _, hit := e.cache.Probe(li("expensive", "")); !hit {
		t.Fatal("must hit after the n-th repetition")
	}
	if e.cache.Stats.DelayedStores != 1 {
		t.Fatalf("DelayedStores = %d", e.cache.Stats.DelayedStores)
	}
}

func TestPutRDDAndReuse(t *testing.T) {
	e := newEnv(DefaultConfig())
	x := e.sc.Parallelize(data.RandNorm(40, 4, 0, 1, 1), 4, "X")
	ts := spark.TSMM(x)
	item := li("tsmm", "", li("read", "X"))
	e.cache.PutRDD(item, ts, []*spark.RDD{x}, nil, 1.0, 1, spark.StorageMemory)
	if ts.StorageLevel() != spark.StorageMemory {
		t.Fatal("PutRDD must persist the RDD")
	}
	got, hit := e.cache.Probe(li("tsmm", "", li("read", "X")))
	if !hit || got.RDD != ts {
		t.Fatal("RDD entry must hit and return the handle")
	}
	if e.cache.Stats.HitsRDD != 1 {
		t.Fatalf("HitsRDD = %d", e.cache.Stats.HitsRDD)
	}
}

func TestSparkEvictionEq1(t *testing.T) {
	conf := DefaultConfig()
	conf.SparkBudget = 2 * 40 * 4 * 8 // fits two 40x4 RDDs
	e := newEnv(conf)
	mk := func(seed int64) *spark.RDD {
		m := data.RandNorm(40, 4, 0, 1, seed)
		return e.sc.Parallelize(m, 4, "X").MapPartitions("id", 40, 4,
			func(int) float64 { return 1 }, nil,
			func(_ int, p *data.Matrix) *data.Matrix { return p.Clone() })
	}
	r1, r2, r3 := mk(1), mk(2), mk(3)
	e.cache.PutRDD(li("r1", ""), r1, nil, nil, 0.001, 1, spark.StorageMemory)
	e2 := e.cache.PutRDD(li("r2", ""), r2, nil, nil, 10.0, 1, spark.StorageMemory)
	e2.Hits = 5 // heavily reused
	e.cache.PutRDD(li("r3", ""), r3, nil, nil, 1.0, 1, spark.StorageMemory)
	if _, hit := e.cache.Probe(li("r1", "")); hit {
		t.Fatal("low-score RDD must be evicted first (Eq. 1)")
	}
	if _, hit := e.cache.Probe(li("r2", "")); !hit {
		t.Fatal("high-score RDD must survive")
	}
	if r1.StorageLevel() != spark.StorageNone {
		t.Fatal("evicted RDD must be unpersisted")
	}
}

func TestLazyGCAfterMaterialization(t *testing.T) {
	e := newEnv(DefaultConfig())
	x := e.sc.Parallelize(data.RandNorm(40, 4, 0, 1, 1), 4, "X")
	b := e.sc.NewBroadcast(data.Ones(1, 40), false)
	ts := spark.TSMM(x)
	entry := e.cache.PutRDD(li("tsmm", ""), ts, []*spark.RDD{x}, []*spark.Broadcast{b},
		1.0, 1, spark.StorageMemory)
	// Unmaterialized: reuse must NOT destroy children yet.
	e.cache.OnRDDReuse(entry)
	if b.Destroyed() {
		t.Fatal("GC before materialization")
	}
	// Materialize via a job, then reuse: children must be cleaned.
	_ = e.sc.Collect(ts)
	e.cache.OnRDDReuse(entry)
	if !b.Destroyed() {
		t.Fatal("broadcast must be destroyed after parent materializes")
	}
	if e.cache.Stats.GCBroadcasts != 1 || e.cache.Stats.GCChildRDDs != 1 {
		t.Fatalf("GC stats = %+v", e.cache.Stats)
	}
	// GC runs once.
	e.cache.OnRDDReuse(entry)
	if e.cache.Stats.GCChildRDDs != 1 {
		t.Fatal("GC must be idempotent")
	}
}

func TestAsyncMaterializationAfterKMisses(t *testing.T) {
	conf := DefaultConfig()
	conf.AsyncMatThreshold = 3
	e := newEnv(conf)
	x := e.sc.Parallelize(data.RandNorm(40, 4, 0, 1, 1), 4, "X")
	ts := spark.TSMM(x)
	entry := e.cache.PutRDD(li("tsmm", ""), ts, []*spark.RDD{x}, nil, 1.0, 1, spark.StorageMemory)
	for i := 0; i < 2; i++ {
		e.cache.OnRDDReuse(entry)
		if e.cache.Stats.AsyncMats != 0 {
			t.Fatal("materialization before threshold")
		}
	}
	jobsBefore := e.sc.Stats.Jobs
	e.cache.OnRDDReuse(entry) // third unmaterialized touch -> count()
	if e.cache.Stats.AsyncMats != 1 {
		t.Fatalf("AsyncMats = %d, want 1", e.cache.Stats.AsyncMats)
	}
	if e.sc.Stats.Jobs != jobsBefore+1 {
		t.Fatal("count() job not launched")
	}
	if !ts.IsMaterialized() {
		t.Fatal("RDD must be materialized by the async count")
	}
}

func TestPutGPUAndRecycleInvalidation(t *testing.T) {
	e := newEnv(DefaultConfig())
	p, err := e.gm.Allocate(256, 2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	item := li("gemm", "")
	e.cache.PutGPU(item, p, 0.001, 1)
	got, hit := e.cache.Probe(li("gemm", ""))
	if !hit || got.GPUPtr != p {
		t.Fatal("GPU entry must hit")
	}
	if !e.cache.ReuseGPU(got) {
		t.Fatal("ReuseGPU must retain the pointer")
	}
	if p.RefCount != 2 {
		t.Fatalf("RefCount = %d, want 2", p.RefCount)
	}
	// Release both references; while memory is available new allocations
	// grow the pool and the cached pointer survives.
	e.gm.Release(p)
	e.gm.Release(p)
	if _, err := e.gm.Allocate(256, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, hit := e.cache.Probe(li("gemm", "")); !hit {
		t.Fatal("cached pointer must survive while memory is available")
	}
	// Under memory pressure, free pointers — cached or not — are recycled
	// (§4.2) and the entry must be invalidated.
	if _, err := e.gm.Allocate((1<<20)-2*256, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.gm.Allocate(256, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, hit := e.cache.Probe(li("gemm", "")); hit {
		t.Fatal("recycled pointer's entry must be invalidated")
	}
	if e.cache.Stats.GPUInvalidated != 1 {
		t.Fatalf("GPUInvalidated = %d", e.cache.Stats.GPUInvalidated)
	}
}

func TestGPUReuseDisabled(t *testing.T) {
	conf := DefaultConfig()
	conf.GPUReuse = false
	e := newEnv(conf)
	p, _ := e.gm.Allocate(64, 1, 0)
	if e.cache.PutGPU(li("k", ""), p, 0, 1) != nil {
		t.Fatal("PutGPU must be a no-op when disabled")
	}
}

func TestFunctionEntryStats(t *testing.T) {
	e := newEnv(DefaultConfig())
	e.cache.PutCP(li("fn_linReg", "X,y"), data.Ones(2, 1), 1, 1, false, true)
	if _, hit := e.cache.Probe(li("fn_linReg", "X,y")); !hit {
		t.Fatal("function entry must hit")
	}
	if e.cache.Stats.HitsFunc != 1 {
		t.Fatalf("HitsFunc = %d", e.cache.Stats.HitsFunc)
	}
}

func TestClear(t *testing.T) {
	e := newEnv(DefaultConfig())
	x := e.sc.Parallelize(data.Ones(16, 2), 2, "X")
	e.cache.PutRDD(li("r", ""), x.MapPartitions("id", 16, 2,
		func(int) float64 { return 1 }, nil,
		func(_ int, p *data.Matrix) *data.Matrix { return p }), nil, nil, 1, 1, spark.StorageMemory)
	e.cache.PutCP(li("m", ""), data.Ones(2, 2), 1, 1, false, false)
	e.cache.Clear()
	if e.cache.NumEntries() != 0 || e.cache.CPUsed() != 0 || e.cache.SparkUsed() != 0 {
		t.Fatal("Clear left state behind")
	}
}

// Property: cpUsed equals the sum of cached (non-spilled) CP entry sizes
// and never exceeds the budget, across random put/probe sequences.
func TestCPAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		conf := DefaultConfig()
		conf.CPBudget = 1024
		conf.SpillToDisk = ops != nil && len(ops) > 0 && ops[0]%2 == 0
		e := newEnv(conf)
		for i, op := range ops {
			name := fmt.Sprintf("op%d", op%8)
			rows := 1 + int(op%5)
			switch i % 3 {
			case 0, 1:
				e.cache.PutCP(li(name, ""), data.Ones(rows, 8), float64(op), 1, false, false)
			case 2:
				if en, hit := e.cache.Probe(li(name, "")); hit {
					e.cache.Matrix(en)
				}
			}
			if e.cache.CPUsed() > conf.CPBudget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGPUToHostEvictionOnRecycle(t *testing.T) {
	e := newEnv(DefaultConfig())
	p, err := e.gm.Allocate(256, 2, 1.0) // expensive to recompute
	if err != nil {
		t.Fatal(err)
	}
	e.gm.Device().CopyIn(p, data.Rand(4, 8, 0, 1, 1, 5))
	want := p.Value().Clone()
	e.cache.PutGPU(li("conv", ""), p, 1.0, 1)
	e.gm.Release(p)
	// Fill the device so the next allocation recycles the cached pointer.
	if _, err := e.gm.Allocate((1<<20)-256, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.gm.Allocate(256, 1, 0); err != nil {
		t.Fatal(err)
	}
	// The entry must have migrated to the driver cache, not vanished.
	got, hit := e.cache.Probe(li("conv", ""))
	if !hit {
		t.Fatal("expensive entry must survive recycling via D2H eviction")
	}
	if got.Backend != BackendCP {
		t.Fatalf("backend = %v, want CP", got.Backend)
	}
	if !data.AllClose(e.cache.Matrix(got), want, 0) {
		t.Fatal("offloaded value corrupted")
	}
	if e.cache.Stats.GPUToHost != 1 {
		t.Fatalf("GPUToHost = %d", e.cache.Stats.GPUToHost)
	}
}

func TestCheapGPUEntryDroppedOnRecycle(t *testing.T) {
	e := newEnv(DefaultConfig())
	p, _ := e.gm.Allocate(256, 2, 0) // free to recompute
	e.gm.Device().CopyIn(p, data.Ones(4, 8))
	e.cache.PutGPU(li("relu", ""), p, 0, 1)
	e.gm.Release(p)
	if _, err := e.gm.Allocate((1<<20)-256, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.gm.Allocate(256, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, hit := e.cache.Probe(li("relu", "")); hit {
		t.Fatal("cheap entry must be dropped, not offloaded")
	}
	if e.cache.Stats.GPUInvalidated != 1 {
		t.Fatalf("GPUInvalidated = %d", e.cache.Stats.GPUInvalidated)
	}
}
