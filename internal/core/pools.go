package core

import (
	"sort"

	"memphis/internal/memctl"
)

// victims collects the scored eviction candidates of one backend in
// ascending score order (tie-broken by lineage hash for determinism),
// trimmed to max when max >= 0. Shared by the arbiter pool adapters.
func (c *Cache) victims(b Backend, max int) []memctl.Victim {
	var entries []*Entry
	for _, chain := range c.entries {
		for _, e := range chain {
			if e.Backend != b || e.Status != StatusCached {
				continue
			}
			if b == BackendCP && e.Matrix == nil {
				continue
			}
			if b == BackendSpark && e.RDD == nil {
				continue
			}
			entries = append(entries, e)
		}
	}
	var w memctl.Weights
	var n memctl.Norms
	switch b {
	case BackendSpark:
		w, n = memctl.SparkWeights, memctl.Norms{MaxRatio: 1}
	default:
		maxRatio := 0.0
		for _, e := range entries {
			if r := memctl.Ratio(cpCandidate(e), false); r > maxRatio {
				maxRatio = r
			}
		}
		w, n = memctl.CPWeights, memctl.Norms{MaxRatio: maxRatio, Now: c.clock.Now()}
	}
	out := make([]memctl.Victim, len(entries))
	for i, e := range entries {
		cand := cpCandidate(e)
		cand.Lifetime = c.entryLife(e)
		out[i] = memctl.Victim{Candidate: cand, Score: memctl.Score(cand, w, n)}
	}
	hashes := make([]uint64, len(entries))
	for i, e := range entries {
		hashes[i] = e.Key.Hash()
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		if out[idx[i]].Score != out[idx[j]].Score {
			return out[idx[i]].Score < out[idx[j]].Score
		}
		return hashes[idx[i]] < hashes[idx[j]]
	})
	sorted := make([]memctl.Victim, len(out))
	for i, k := range idx {
		sorted[i] = out[k]
	}
	if max >= 0 && len(sorted) > max {
		sorted = sorted[:max]
	}
	return sorted
}

// cpPool is the arbiter view of the driver lineage cache region. Evict
// runs the LIMA policy (spill expensive victims, drop cheap ones); Demote
// force-spills victims to disk — the host-to-disk rung of the ladder.
type cpPool struct{ c *Cache }

func (p cpPool) Name() string                    { return PoolCP }
func (p cpPool) Used() int64                     { return p.c.cpUsed }
func (p cpPool) Peak() int64                     { return p.c.cpPeak }
func (p cpPool) Budget() int64                   { return p.c.conf.CPBudget }
func (p cpPool) Victims(max int) []memctl.Victim { return p.c.victims(BackendCP, max) }

func (p cpPool) Evict(need int64) int64 {
	var freed int64
	for freed < need {
		n, ok := p.c.evictOneCP()
		if !ok {
			break
		}
		freed += n
	}
	return freed
}

func (p cpPool) Demote(need int64) int64 {
	if !p.c.conf.SpillToDisk {
		return 0
	}
	// The spill-or-drop decision inside evictOneCP is the ladder's disk
	// rung: expensive victims land on disk and stay reusable, cheap ones
	// are recomputed from lineage.
	return p.Evict(need)
}

// sparkReusePool is the arbiter view of the reuse share of cluster
// storage. Unpersisted RDDs stay recomputable from lineage, so eviction
// here is already "drop-for-lineage-recompute"; there is no lower tier.
type sparkReusePool struct{ c *Cache }

func (p sparkReusePool) Name() string                    { return PoolSparkReuse }
func (p sparkReusePool) Used() int64                     { return p.c.sparkUsed }
func (p sparkReusePool) Peak() int64                     { return p.c.sparkPeak }
func (p sparkReusePool) Budget() int64                   { return p.c.conf.SparkBudget }
func (p sparkReusePool) Victims(max int) []memctl.Victim { return p.c.victims(BackendSpark, max) }
func (p sparkReusePool) Demote(need int64) int64         { return 0 }

func (p sparkReusePool) Evict(need int64) int64 {
	var freed int64
	for freed < need {
		n, ok := p.c.evictOneSpark()
		if !ok {
			break
		}
		freed += n
	}
	return freed
}
