package spark

import (
	"memphis/internal/costs"
	"memphis/internal/data"
)

// Distributed linear-algebra operators mirroring SystemDS's SP instruction
// set. These are the physical operators the compiler selects for operations
// whose memory estimates exceed the driver's operation memory.

// TSMM computes X^T X as a shuffle-based single-partition aggregate: every
// partition contributes Xi^T Xi, which are summed behind a shuffle boundary.
func TSMM(x *RDD) *RDD {
	n := x.ncols
	shuffle := int64(x.parts) * int64(n) * int64(n) * 8
	flops := func(int) float64 {
		return costs.MatMulFlops(x.nrows, x.ncols, x.ncols)
	}
	return x.AggregateWide("tsmm", 1, n, n, flops, shuffle,
		func(_ int, all []*data.Matrix) *data.Matrix {
			acc := data.Zeros(n, n)
			for _, p := range all {
				acc = data.Add(acc, data.TSMM(p))
			}
			return acc
		})
}

// MapMM computes X * B for a broadcast right operand (map-side multiply,
// the broadcast join analogue): narrow, no shuffle.
func MapMM(x *RDD, b *Broadcast, bName string) *RDD {
	w := b.Value()
	flops := func(part int) float64 {
		lo, hi := rowsOfPart(x.nrows, x.parts, part)
		return costs.MatMulFlops(hi-lo, x.ncols, w.Cols)
	}
	return x.MapPartitions("mapmm("+bName+")", x.nrows, w.Cols, flops,
		[]*Broadcast{b}, func(part int, p *data.Matrix) *data.Matrix {
			return data.MatMul(p, b.Value())
		})
}

// VecMM computes v^T X for a broadcast row vector v^T (1 x nrows): each
// partition multiplies its slice of v^T with its rows, and the partials are
// summed behind a shuffle into a 1 x ncols result.
func VecMM(vT *Broadcast, x *RDD) *RDD {
	n := x.ncols
	flops := func(int) float64 { return costs.MatMulFlops(1, x.nrows, x.ncols) }
	partial := x.MapPartitions("vecmm-map", x.parts, n, flops,
		[]*Broadcast{vT}, func(part int, p *data.Matrix) *data.Matrix {
			lo, hi := rowsOfPart(x.nrows, x.parts, part)
			vSlice := vT.Value().Slice(0, 1, lo, hi)
			return data.MatMul(vSlice, p)
		})
	shuffle := int64(x.parts) * int64(n) * 8
	return partial.AggregateWide("vecmm-agg", 1, 1, n,
		func(int) float64 { return float64(x.parts * n) }, shuffle,
		func(_ int, all []*data.Matrix) *data.Matrix {
			acc := data.Zeros(1, n)
			for _, p := range all {
				acc = data.Add(acc, p)
			}
			return acc
		})
}

// Elementwise applies a cellwise binary op to two co-partitioned RDDs.
func Elementwise(a, b *RDD, op string, f func(x, y *data.Matrix) *data.Matrix) *RDD {
	flops := func(part int) float64 {
		lo, hi := rowsOfPart(a.nrows, a.parts, part)
		return float64((hi - lo) * a.ncols)
	}
	return ZipPartitions(a, b, "ew"+op, a.nrows, a.ncols, flops, func(_ int, pa, pb *data.Matrix) *data.Matrix {
		return f(pa, pb)
	})
}

// MapElementwise applies a cellwise op with a broadcast operand (row/col
// vector or scalar) to every partition.
func MapElementwise(a *RDD, b *Broadcast, op string, f func(x, y *data.Matrix) *data.Matrix) *RDD {
	flops := func(part int) float64 {
		lo, hi := rowsOfPart(a.nrows, a.parts, part)
		return float64((hi - lo) * a.ncols)
	}
	var bcs []*Broadcast
	if b != nil {
		bcs = []*Broadcast{b}
	}
	return a.MapPartitions("mapew"+op, a.nrows, a.ncols, flops, bcs,
		func(part int, p *data.Matrix) *data.Matrix {
			if b == nil {
				return f(p, nil)
			}
			bv := b.Value()
			// Column vectors must be sliced to the partition's rows.
			if bv.Cols == 1 && bv.Rows == a.nrows && a.nrows > 1 {
				lo, hi := rowsOfPart(a.nrows, a.parts, part)
				bv = bv.SliceRows(lo, hi)
			}
			return f(p, bv)
		})
}

// ColAggregate reduces all partitions into a 1 x ncols result (e.g.
// colSums) behind a shuffle.
func ColAggregate(x *RDD, op string, perPart func(p *data.Matrix) *data.Matrix,
	combine func(a, b *data.Matrix) *data.Matrix) *RDD {
	n := x.ncols
	flops := func(part int) float64 {
		lo, hi := rowsOfPart(x.nrows, x.parts, part)
		return float64((hi - lo) * n)
	}
	partial := x.MapPartitions("colagg-map("+op+")", x.parts, n, flops, nil,
		func(_ int, p *data.Matrix) *data.Matrix { return perPart(p) })
	shuffle := int64(x.parts) * int64(n) * 8
	return partial.AggregateWide("colagg("+op+")", 1, 1, n,
		func(int) float64 { return float64(x.parts * n) }, shuffle,
		func(_ int, all []*data.Matrix) *data.Matrix {
			acc := all[0]
			for _, p := range all[1:] {
				acc = combine(acc, p)
			}
			return acc
		})
}

// CPMM computes A^T B for two co-partitioned tall matrices (cross-product
// matrix multiply): each partition pair contributes Ai^T Bi, summed behind
// a shuffle. The compiler rewrites mm(t(A), B) over distributed A to this
// operator so the transpose is never materialized.
func CPMM(a, b *RDD) *RDD {
	if a.parts != b.parts {
		panic("spark: CPMM of differently partitioned RDDs")
	}
	m, n := a.ncols, b.ncols
	flops := func(part int) float64 {
		lo, hi := rowsOfPart(a.nrows, a.parts, part)
		return costs.MatMulFlops(m, hi-lo, n)
	}
	partial := ZipPartitions(a, b, "cpmm-map", a.parts, m*n, flops,
		func(_ int, pa, pb *data.Matrix) *data.Matrix {
			return data.MatMul(data.Transpose(pa), pb)
		})
	shuffle := int64(a.parts) * int64(m) * int64(n) * 8
	return partial.AggregateWide("cpmm-agg", 1, m, n,
		func(int) float64 { return float64(a.parts * m * n) }, shuffle,
		func(_ int, all []*data.Matrix) *data.Matrix {
			acc := data.Zeros(m, n)
			for _, p := range all {
				// Partials arrive as m*n row blocks of one logical m x n sum.
				acc = data.Add(acc, data.FromSlice(m, n, p.Data))
			}
			return acc
		})
}

// LeftMM computes A X for a small broadcast left operand A (m x nrows) and
// a row-partitioned X: each partition contributes A[:, lo:hi] * Xp, summed
// behind a shuffle into an m x ncols result. VecMM is the m=1 special case.
func LeftMM(a *Broadcast, x *RDD) *RDD {
	av := a.Value()
	m, n := av.Rows, x.ncols
	flops := func(part int) float64 {
		lo, hi := rowsOfPart(x.nrows, x.parts, part)
		return costs.MatMulFlops(m, hi-lo, n)
	}
	partial := x.MapPartitions("leftmm-map", x.parts, m*n, flops,
		[]*Broadcast{a}, func(part int, p *data.Matrix) *data.Matrix {
			lo, hi := rowsOfPart(x.nrows, x.parts, part)
			return data.MatMul(a.Value().Slice(0, m, lo, hi), p)
		})
	shuffle := int64(x.parts) * int64(m) * int64(n) * 8
	return partial.AggregateWide("leftmm-agg", 1, m, n,
		func(int) float64 { return float64(x.parts * m * n) }, shuffle,
		func(_ int, all []*data.Matrix) *data.Matrix {
			acc := data.Zeros(m, n)
			for _, p := range all {
				acc = data.Add(acc, data.FromSlice(m, n, p.Data))
			}
			return acc
		})
}
