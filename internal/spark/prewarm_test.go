package spark

import (
	"math"
	"testing"

	"memphis/internal/data"
)

// runPrewarmScenario builds a small but representative job DAG — narrow
// maps over a parallelized input, a broadcast map-side multiply, and a wide
// TSMM aggregate — in a storage-constrained context, runs it twice (the
// second run exercises block-manager hits and shuffle-file reuse), and
// returns the final collected value plus the context for stats inspection.
func runPrewarmScenario() (*data.Matrix, *Context) {
	c, _ := newTestContext(96 << 10)
	x := data.RandNorm(512, 24, 0, 1, 7)
	w := data.RandNorm(24, 24, 0, 1, 9)
	rx := c.Parallelize(x, 8, "X").Persist(StorageMemoryAndDisk)
	bw := c.NewBroadcast(w, false)
	prod := MapMM(rx, bw, "W")
	sq := prod.MapPartitions("sq", prod.nrows, prod.ncols,
		func(int) float64 { return float64(prod.nrows * prod.ncols) }, nil,
		func(_ int, p *data.Matrix) *data.Matrix { return data.Mul(p, p) })
	gram := TSMM(sq)
	first := c.Collect(gram)
	second := c.Collect(gram) // hits shuffle files / caches
	return data.Add(first, second), c
}

// TestRunJobParallelMatchesSerial is the end-to-end determinism contract of
// the partition prewarm: values, statistics, and the virtual clock must be
// identical whether partition compute fans out or runs serially.
func TestRunJobParallelMatchesSerial(t *testing.T) {
	data.SetParallelism(1)
	wantVal, wantCtx := runPrewarmScenario()
	data.SetParallelism(8)
	defer data.SetParallelism(0)
	gotVal, gotCtx := runPrewarmScenario()

	if wantVal.Rows != gotVal.Rows || wantVal.Cols != gotVal.Cols {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", wantVal.Rows, wantVal.Cols, gotVal.Rows, gotVal.Cols)
	}
	for i := range wantVal.Data {
		if math.Float64bits(wantVal.Data[i]) != math.Float64bits(gotVal.Data[i]) {
			t.Fatalf("cell %d differs bitwise: %v vs %v", i, wantVal.Data[i], gotVal.Data[i])
		}
	}
	if wantCtx.Stats != gotCtx.Stats {
		t.Fatalf("stats diverge:\n serial   %+v\n parallel %+v", wantCtx.Stats, gotCtx.Stats)
	}
	if w, g := wantCtx.Clock().Now(), gotCtx.Clock().Now(); w != g {
		t.Fatalf("virtual time diverges: serial %v parallel %v", w, g)
	}
}
