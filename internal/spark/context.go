// Package spark simulates a Spark cluster backend faithfully enough to
// exercise every Spark-specific challenge the paper addresses (§2.2):
// lazily evaluated RDD transformations vs. job-triggering actions, stages
// split at shuffle boundaries, per-cluster storage memory with partition
// eviction and disk spill, persist/unpersist storage levels, implicit
// shuffle-file caching, and torrent-style broadcast variables whose data
// lingers in the driver until destroyed. Real partition values are computed
// so results are exact; time is charged onto the virtual clock from the
// cost model (job/stage/task overheads, compute throughput, exchange and
// collect bandwidths).
package spark

import (
	"errors"
	"fmt"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/memctl"
	"memphis/internal/vtime"
)

// ErrStageAbort signals that a stage gave up after MaxTaskFailures
// consecutive failures of the same task. It propagates as a panic value
// (the RDD evaluation path returns no errors, matching Spark's DAGScheduler
// which fails the job from deep inside the scheduler loop) and is recovered
// at the runtime layer.
var ErrStageAbort = errors.New("spark: stage aborted: task exceeded max failures")

// Config sizes the simulated cluster.
type Config struct {
	NumExecutors  int
	CoresPerExec  int
	StorageMemory int64 // aggregate storage region across executors, bytes
	// JobSlots is the number of Spark jobs that can execute concurrently
	// (FAIR-scheduler pools); asynchronous operators exploit it.
	JobSlots int
	// MaxTaskFailures is how many attempts a task gets before its stage
	// aborts (spark.task.maxFailures); <= 0 means the default of 4.
	MaxTaskFailures int
}

// DefaultConfig mirrors the paper's 8-worker cluster, scaled to simulation.
func DefaultConfig() Config {
	return Config{NumExecutors: 8, CoresPerExec: 24, StorageMemory: 64 << 20, JobSlots: 4,
		MaxTaskFailures: 4}
}

// Stats counts cluster events; experiments assert on these.
type Stats struct {
	Jobs               int64
	Stages             int64
	Tasks              int64
	PartitionsComputed int64
	CacheHits          int64
	DiskReads          int64
	DiskSpills         int64
	PartitionsEvicted  int64
	ShuffleBytes       int64
	ShuffleFileReuses  int64
	CollectBytes       int64
	BroadcastBytes     int64

	// Fault-injection recovery events.
	TaskRetries   int64 // failed task attempts absorbed by stage-level retry
	FetchFailures int64 // shuffle files lost on fetch (map side recomputed)
	SpillErrors   int64 // spill writes that failed (victim dropped instead)
	ExecutorsLost int64 // injected executor losses
	BlocksLost    int64 // cached blocks lost with their executor
}

// Context is the entry point to the simulated cluster, playing the role of
// SparkContext plus the DAGScheduler.
type Context struct {
	clock   *vtime.Clock
	slots   []*vtime.Resource
	disk    *vtime.Resource
	model   *costs.Model
	conf    Config
	bm      *BlockManager
	nextRDD int
	nextBC  int

	// bcasts tracks every broadcast created on this context so Shutdown
	// can destroy stragglers that lazy GC never reached.
	bcasts []*Broadcast

	// driverBroadcastBytes tracks serialized broadcast data retained in
	// the driver until destroy() — the dangling-reference problem of
	// Figure 2(b).
	driverBroadcastBytes int64

	// inj injects deterministic task, fetch, spill, and executor faults;
	// nil means none.
	inj *faults.Injector

	Stats Stats
}

// NewContext returns a simulated cluster on the given clock.
func NewContext(clock *vtime.Clock, model *costs.Model, conf Config) *Context {
	if conf.NumExecutors <= 0 || conf.CoresPerExec <= 0 {
		panic("spark: invalid cluster config")
	}
	n := conf.JobSlots
	if n <= 0 {
		n = 1
	}
	slots := make([]*vtime.Resource, n)
	for i := range slots {
		slots[i] = clock.Resource(fmt.Sprintf("spark-%d", i))
	}
	return &Context{
		clock: clock,
		slots: slots,
		disk:  clock.Resource("spark-disk"),
		model: model,
		conf:  conf,
		bm:    newBlockManager(conf.StorageMemory),
	}
}

// freestSlot returns the job slot that becomes available first.
func (c *Context) freestSlot() *vtime.Resource {
	best := c.slots[0]
	for _, s := range c.slots[1:] {
		if s.BusyUntil() < best.BusyUntil() {
			best = s
		}
	}
	return best
}

// SetInjector installs the fault injector on the context and its block
// manager (nil disables injection).
func (c *Context) SetInjector(inj *faults.Injector) {
	c.inj = inj
	c.bm.inj = inj
}

// SetArbiter attaches the memory arbiter to the block manager and
// registers the storage region as a pool (nil disables reporting).
func (c *Context) SetArbiter(a *memctl.Arbiter) {
	c.bm.arb = a
	if a != nil {
		a.Register(c.bm.MemPool())
	}
}

// maxTaskFailures returns the effective task-attempt limit.
func (c *Context) maxTaskFailures() int {
	if c.conf.MaxTaskFailures > 0 {
		return c.conf.MaxTaskFailures
	}
	return 4
}

// Clock returns the virtual clock (for tests).
func (c *Context) Clock() *vtime.Clock { return c.clock }

// Cluster returns the first job slot (for tests and overlap accounting).
func (c *Context) Cluster() *vtime.Resource { return c.slots[0] }

// BlockManager exposes cluster storage (for tests and cache policies).
func (c *Context) BlockManager() *BlockManager { return c.bm }

// Config returns the cluster configuration.
func (c *Context) Config() Config { return c.conf }

// DriverBroadcastBytes returns serialized broadcast bytes held in the driver.
func (c *Context) DriverBroadcastBytes() int64 { return c.driverBroadcastBytes }

// taskSlots returns the number of parallel task slots.
func (c *Context) taskSlots() int { return c.conf.NumExecutors * c.conf.CoresPerExec }

// jobCost aggregates one job's virtual duration and memoizes partition
// values so fan-out in the RDD DAG does not recompute shared ancestors
// (Spark evaluates each partition at most once per stage).
type jobCost struct {
	stages  map[int]struct{} // wide RDD ids crossed (each adds a stage)
	tasks   int
	flops   float64
	shuffle int64
	disk    int64
	memo    map[blockKey]*data.Matrix

	// warm holds partition values computed ahead of time by the parallel
	// prewarm (nil when running serially). The accounting pass consumes
	// these instead of re-running r.compute; all bookkeeping stays on the
	// driver goroutine, in the same order as a serial run.
	warm map[blockKey]*data.Matrix
}

// computed returns the partition value: the prewarmed result when present,
// otherwise the serial computation from parent values.
func (cost *jobCost) computed(r *RDD, part int, parents [][]*data.Matrix) *data.Matrix {
	if m, ok := cost.warm[blockKey{r.id, part}]; ok {
		return m
	}
	return r.compute(part, parents)
}

// RunJob evaluates the given partitions of the target RDD, materializing
// cached ancestors on the way, and returns the partition values. This is
// the DAGScheduler: it charges job launch, per-stage and per-task overheads,
// compute, shuffle and disk traffic onto the cluster timeline. If async is
// true the driver does not block; the returned future completes the job.
func (c *Context) RunJob(r *RDD, parts []int, async bool) ([]*data.Matrix, *vtime.Future) {
	if r.ctx != c {
		panic("spark: RDD from a different context")
	}
	// Injected executor loss, decided once per job before any evaluation
	// (and before the prewarm, so parallel workers observe post-loss state):
	// every block and shuffle file placed on the victim executor vanishes
	// and is recomputed from lineage on demand; replacing the executor
	// charges a fixed re-registration delay.
	var execLossTime float64
	if c.inj.Fail(faults.SparkExec) {
		victim := int(c.inj.Draw(faults.SparkExec) % uint64(c.conf.NumExecutors))
		lost := c.bm.dropExecutor(victim, c.conf.NumExecutors)
		lost += c.dropShuffleFiles(r, victim)
		c.Stats.ExecutorsLost++
		c.Stats.BlocksLost += int64(lost)
		execLossTime = c.model.ExecutorReplace
	}
	cost := &jobCost{stages: make(map[int]struct{}), memo: make(map[blockKey]*data.Matrix)}
	if data.Parallelism() > 1 && len(parts) > 1 {
		cost.warm = c.prewarm(r, parts)
	}
	out := make([]*data.Matrix, len(parts))
	for i, p := range parts {
		out[i] = c.evaluate(r, p, cost)
	}
	c.Stats.Jobs++
	nStages := int64(len(cost.stages)) + 1
	c.Stats.Stages += nStages
	c.Stats.Tasks += int64(cost.tasks)
	// Pending broadcast data is lazily shipped with the first job that
	// needs it (torrent broadcast).
	var bcTime float64
	for _, b := range collectBroadcasts(r) {
		if !b.transferred && !b.destroyed {
			b.transferred = true
			c.Stats.BroadcastBytes += b.size
			bcTime += costs.Transfer(b.size, c.model.BroadcastBW, 0)
		}
	}
	dur := c.model.SparkJobOverhead +
		float64(nStages)*c.model.SparkStageOverhead +
		float64(cost.tasks)*c.model.SparkTaskOverhead/float64(c.taskSlots())*float64(min(cost.tasks, c.taskSlots())) +
		costs.Compute(cost.flops, c.model.SparkFlops) +
		costs.Transfer(cost.shuffle, c.model.SparkExchangeBW, 0) +
		costs.Transfer(cost.disk, c.model.DiskBW, 0) +
		bcTime + execLossTime
	slot := c.freestSlot()
	if async {
		f := c.clock.RunAsync(slot, dur, fmt.Sprintf("job(rdd%d)", r.id))
		return out, f
	}
	c.clock.RunSync(slot, dur)
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// evaluate returns the value of one partition, consulting the block manager
// and shuffle files before recomputing from parents (Spark lineage).
func (c *Context) evaluate(r *RDD, part int, cost *jobCost) *data.Matrix {
	if part < 0 || part >= r.parts {
		panic(fmt.Sprintf("spark: partition %d out of %d (rdd %d)", part, r.parts, r.id))
	}
	if m, ok := cost.memo[blockKey{r.id, part}]; ok {
		return m
	}
	// Cached partition (storage memory or disk)?
	if m, onDisk, ok := c.bm.get(r.id, part); ok {
		c.Stats.CacheHits++
		if onDisk {
			c.Stats.DiskReads++
			cost.disk += m.SizeBytes()
		}
		return m
	}
	// Implicitly cached shuffle files let a wide RDD be recomputed without
	// re-running its map side. An injected fetch failure loses the file —
	// the recovery is Spark's: fall through and recompute from lineage.
	if r.wide && r.shuffleFiles != nil {
		if m := r.shuffleFiles[part]; m != nil {
			if c.inj.Fail(faults.SparkFetch) {
				c.Stats.FetchFailures++
				r.shuffleFiles[part] = nil
			} else {
				c.Stats.ShuffleFileReuses++
				cost.disk += m.SizeBytes()
				return m
			}
		}
	}
	cost.tasks++
	c.Stats.PartitionsComputed++
	// Injected task failures: the stage retries the task, charging each
	// wasted attempt's scheduling overhead and compute; after
	// MaxTaskFailures attempts the whole stage aborts (Spark's
	// spark.task.maxFailures semantics).
	if fails := c.inj.Next(faults.SparkTask); fails > 0 {
		if fails >= c.maxTaskFailures() {
			panic(fmt.Errorf("%w: rdd %d partition %d failed %d attempts",
				ErrStageAbort, r.id, part, fails))
		}
		c.Stats.TaskRetries += int64(fails)
		cost.tasks += fails
		cost.flops += float64(fails) * r.flopsPerPart(part)
	}
	var out *data.Matrix
	if r.wide {
		cost.stages[r.id] = struct{}{}
		// Wide dependency: requires all parent partitions.
		parents := make([][]*data.Matrix, len(r.deps))
		for d, dep := range r.deps {
			parents[d] = make([]*data.Matrix, dep.parts)
			for p := 0; p < dep.parts; p++ {
				parents[d][p] = c.evaluate(dep, p, cost)
			}
		}
		out = cost.computed(r, part, parents)
		cost.shuffle += r.shuffleBytes / int64(r.parts)
		c.Stats.ShuffleBytes += r.shuffleBytes / int64(r.parts)
		if r.shuffleFiles == nil {
			r.shuffleFiles = make([]*data.Matrix, r.parts)
		}
		r.shuffleFiles[part] = out
	} else {
		parents := make([][]*data.Matrix, len(r.deps))
		for d, dep := range r.deps {
			parents[d] = []*data.Matrix{c.evaluate(dep, part, cost)}
		}
		out = cost.computed(r, part, parents)
	}
	cost.flops += r.flopsPerPart(part)
	if r.level != StorageNone {
		spilled, evicted, spillErrs := c.bm.put(r.id, part, out, r.level)
		c.Stats.DiskSpills += int64(spilled)
		c.Stats.PartitionsEvicted += int64(evicted)
		c.Stats.SpillErrors += int64(spillErrs)
	}
	cost.memo[blockKey{r.id, part}] = out
	return out
}

// collectBroadcasts gathers the broadcast variables referenced anywhere in
// the (not yet materialized) lineage of r.
func collectBroadcasts(r *RDD) []*Broadcast {
	var out []*Broadcast
	seen := make(map[int]struct{})
	var walk func(*RDD)
	walk = func(n *RDD) {
		if _, ok := seen[n.id]; ok {
			return
		}
		seen[n.id] = struct{}{}
		out = append(out, n.bcasts...)
		for _, d := range n.deps {
			walk(d)
		}
	}
	walk(r)
	return out
}

// CleanShuffles drops the implicit shuffle-file cache of an RDD (modeling
// ContextCleaner activity when an RDD is garbage collected).
func (c *Context) CleanShuffles(r *RDD) { r.shuffleFiles = nil }

// dropShuffleFiles removes the shuffle files placed on the given executor
// from every wide RDD in r's lineage, returning how many were lost.
func (c *Context) dropShuffleFiles(r *RDD, victim int) int {
	lost := 0
	seen := make(map[int]struct{})
	var walk func(*RDD)
	walk = func(n *RDD) {
		if _, ok := seen[n.id]; ok {
			return
		}
		seen[n.id] = struct{}{}
		if n.wide && n.shuffleFiles != nil {
			for p, m := range n.shuffleFiles {
				if m != nil && executorOf(n.id, p, c.conf.NumExecutors) == victim {
					n.shuffleFiles[p] = nil
					lost++
				}
			}
		}
		for _, d := range n.deps {
			walk(d)
		}
	}
	walk(r)
	return lost
}

// executorOf is the deterministic placement of a partition onto an executor
// (Spark's hash partitioning of block placement, simplified).
func executorOf(rdd, part, numExec int) int {
	if numExec <= 0 {
		return 0
	}
	h := uint64(rdd)*2654435761 + uint64(part)*40503 + 0x9e37
	return int(h % uint64(numExec))
}

// Shutdown releases everything the cluster retains on behalf of the driver:
// all cached partitions (memory and disk) and every broadcast variable not
// yet destroyed. After Shutdown the context holds no simulated memory; it is
// called when a session closes so serving-layer sessions do not leak cluster
// storage for the life of the process.
func (c *Context) Shutdown() {
	for _, b := range c.bcasts {
		b.Destroy()
	}
	c.bcasts = nil
	c.bm.clear()
}
