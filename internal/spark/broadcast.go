package spark

import (
	"memphis/internal/costs"
	"memphis/internal/data"
)

// Broadcast is a torrent-style broadcast variable. Creation serializes the
// value into 4 MB chunks held in the driver's block manager; the actual
// transfer to executors happens lazily with the first job that references
// the variable (§2.2). Until Destroy, the serialized chunks pin driver
// memory — the dangling-reference problem MEMPHIS's lazy garbage collection
// addresses.
type Broadcast struct {
	id          int
	value       *data.Matrix
	size        int64
	chunks      int
	transferred bool
	destroyed   bool
	ctx         *Context
}

const broadcastChunk = 4 << 20

// NewBroadcast registers a broadcast variable for a driver-local matrix.
// If async is true, partitioning/serialization is overlapped with driver
// work (the compiler-placed broadcast operator of §5.1); otherwise the
// driver blocks for the serialization.
func (c *Context) NewBroadcast(m *data.Matrix, async bool) *Broadcast {
	c.nextBC++
	b := &Broadcast{
		id:     c.nextBC,
		value:  m.Clone(),
		size:   m.SizeBytes(),
		chunks: int((m.SizeBytes() + broadcastChunk - 1) / broadcastChunk),
		ctx:    c,
	}
	serialize := costs.Transfer(b.size, c.model.MemBW, 0)
	if async {
		// Serialization runs on a helper thread; it only delays the
		// cluster-side pickup, modeled by charging the cluster resource.
		c.clock.RunAsync(c.freestSlot(), serialize, "broadcast-partition")
	} else {
		c.clock.Advance(serialize)
	}
	c.driverBroadcastBytes += b.size
	c.bcasts = append(c.bcasts, b)
	return b
}

// Value returns the broadcast value (executor-side access).
func (b *Broadcast) Value() *data.Matrix {
	if b.destroyed {
		panic("spark: use of destroyed broadcast")
	}
	return b.value
}

// SizeBytes returns the serialized size.
func (b *Broadcast) SizeBytes() int64 { return b.size }

// Transferred reports whether executors have fetched the chunks yet.
func (b *Broadcast) Transferred() bool { return b.transferred }

// Destroyed reports whether Destroy has been called.
func (b *Broadcast) Destroyed() bool { return b.destroyed }

// Destroy releases the driver-held chunks and executor copies.
func (b *Broadcast) Destroy() {
	if b.destroyed {
		return
	}
	b.destroyed = true
	b.value = nil
	b.ctx.driverBroadcastBytes -= b.size
}
