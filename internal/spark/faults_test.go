package spark

import (
	"errors"
	"testing"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/vtime"
)

func newFaultContext(plan *faults.Plan) *Context {
	c := NewContext(vtime.New(), costs.Default(), DefaultConfig())
	c.SetInjector(faults.NewInjector(plan))
	return c
}

// square builds a small narrow-map pipeline over an n x n input.
func square(c *Context, n, parts int, seed int64) *RDD {
	in := c.Parallelize(data.Rand(n, n, -1, 1, 1, seed), parts, "in")
	return in.MapPartitions("sq", n, n, func(int) float64 { return 1e6 }, nil,
		func(_ int, p *data.Matrix) *data.Matrix { return data.Mul(p, p) })
}

// sameMatrix reports bitwise equality of two matrices.
func sameMatrix(a, b *data.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// TestTaskRetryChargesAttempts: a scripted task failure below the attempt
// limit is absorbed by stage-level retry, charging the wasted attempts.
func TestTaskRetryChargesAttempts(t *testing.T) {
	c := newFaultContext(&faults.Plan{Seed: 1, Sites: map[faults.Site]faults.Trigger{
		faults.SparkTask: {Nth: []int64{2}, Attempts: 3},
	}})
	out := c.Collect(square(c, 32, 4, 5))

	ref := newFaultContext(nil)
	want := ref.Collect(square(ref, 32, 4, 5))
	if !sameMatrix(out, want) {
		t.Fatal("retried job must produce the fault-free result")
	}
	if c.Stats.TaskRetries != 3 {
		t.Fatalf("TaskRetries = %d, want 3", c.Stats.TaskRetries)
	}
	if c.Stats.Tasks != ref.Stats.Tasks+3 {
		t.Fatalf("Tasks = %d, want %d (+3 wasted attempts)", c.Stats.Tasks, ref.Stats.Tasks)
	}
	if c.Clock().Now() <= ref.Clock().Now() {
		t.Fatal("wasted attempts must cost virtual time")
	}
}

// TestStageAbortAtMaxFailures: a task that fails MaxTaskFailures attempts
// aborts the stage with an ErrStageAbort panic.
func TestStageAbortAtMaxFailures(t *testing.T) {
	c := newFaultContext(&faults.Plan{Seed: 1, Sites: map[faults.Site]faults.Trigger{
		faults.SparkTask: {Nth: []int64{1}, Attempts: 4},
	}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected ErrStageAbort panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrStageAbort) {
			t.Fatalf("recovered %v, want ErrStageAbort", r)
		}
	}()
	c.Collect(square(c, 16, 2, 5))
}

// TestFetchFailureRecomputes: losing a shuffle file on fetch falls back to
// recomputing the map side, still yielding the correct value.
func TestFetchFailureRecomputes(t *testing.T) {
	run := func(plan *faults.Plan) (*data.Matrix, *Context) {
		c := newFaultContext(plan)
		agg := square(c, 24, 4, 3).AggregateWide("sum", 2, 2, 24,
			func(int) float64 { return 1e5 }, 24*24*8,
			func(_ int, all []*data.Matrix) *data.Matrix {
				s := data.Zeros(1, 24)
				for _, p := range all {
					s = data.Add(s, data.ColSums(p))
				}
				return s
			})
		c.Collect(agg) // materializes shuffle files
		out := c.Collect(agg)
		return out, c
	}
	want, ref := run(nil)
	if ref.Stats.ShuffleFileReuses == 0 {
		t.Fatal("baseline must reuse shuffle files on the second collect")
	}
	got, c := run(&faults.Plan{Seed: 1, Sites: map[faults.Site]faults.Trigger{
		faults.SparkFetch: {Nth: []int64{1}},
	}})
	if c.Stats.FetchFailures != 1 {
		t.Fatalf("FetchFailures = %d, want 1", c.Stats.FetchFailures)
	}
	if !sameMatrix(got, want) {
		t.Fatal("fetch-failure recompute must produce the fault-free result")
	}
}

// TestSpillErrorDropsVictim: an injected spill I/O error drops the victim
// instead of spilling; the partition is recomputed from lineage on reuse.
func TestSpillErrorDropsVictim(t *testing.T) {
	conf := DefaultConfig()
	conf.StorageMemory = 24 * 24 * 8 // one partition's worth
	c := NewContext(vtime.New(), costs.Default(), conf)
	c.SetInjector(faults.NewInjector(&faults.Plan{Seed: 1, Sites: map[faults.Site]faults.Trigger{
		faults.SparkSpill: {Nth: []int64{1}},
	}}))
	a := square(c, 24, 1, 3).Persist(StorageMemoryAndDisk)
	b := square(c, 24, 1, 4).Persist(StorageMemoryAndDisk)
	c.Collect(a) // fills the budget
	c.Collect(b) // evicts a; the spill write fails -> dropped
	if c.Stats.SpillErrors != 1 || c.Stats.DiskSpills != 0 {
		t.Fatalf("SpillErrors=%d DiskSpills=%d, want 1 and 0",
			c.Stats.SpillErrors, c.Stats.DiskSpills)
	}
	hits := c.Stats.CacheHits
	c.Collect(a) // must recompute, not read disk
	if c.Stats.CacheHits != hits || c.Stats.DiskReads != 0 {
		t.Fatal("dropped victim must be recomputed from lineage, not read back")
	}
}

// TestExecutorLossDropsPlacedBlocks: losing an executor drops its blocks
// and shuffle files, charges the replacement delay, and the job still
// completes correctly.
func TestExecutorLossDropsPlacedBlocks(t *testing.T) {
	run := func(plan *faults.Plan) (*data.Matrix, *Context) {
		c := newFaultContext(plan)
		sq := square(c, 64, 8, 3).Persist(StorageMemory)
		c.Collect(sq)
		out := c.Collect(sq)
		return out, c
	}
	want, _ := run(nil)
	got, c := run(&faults.Plan{Seed: 2, Sites: map[faults.Site]faults.Trigger{
		faults.SparkExec: {Nth: []int64{2}}, // fires at the second job
	}})
	if c.Stats.ExecutorsLost != 1 {
		t.Fatalf("ExecutorsLost = %d, want 1", c.Stats.ExecutorsLost)
	}
	if c.Stats.BlocksLost == 0 {
		t.Fatal("the lost executor held cached blocks; BlocksLost must be > 0")
	}
	if !sameMatrix(got, want) {
		t.Fatal("post-loss recompute must produce the fault-free result")
	}
}

// TestSparkFaultDeterminism: the same plan replays to identical stats and
// virtual time, with and without kernel parallelism.
func TestSparkFaultDeterminism(t *testing.T) {
	plan := faults.Default(77)
	run := func(par int) (Stats, float64) {
		old := data.Parallelism()
		data.SetParallelism(par)
		defer data.SetParallelism(old)
		c := newFaultContext(plan)
		sq := square(c, 48, 6, 9).Persist(StorageMemory)
		agg := sq.AggregateWide("sum", 2, 2, 48,
			func(int) float64 { return 1e5 }, 48*48*8,
			func(_ int, all []*data.Matrix) *data.Matrix {
				s := data.Zeros(1, 48)
				for _, p := range all {
					s = data.Add(s, data.ColSums(p))
				}
				return s
			})
		c.Collect(agg)
		c.Collect(agg)
		return c.Stats, c.Clock().Now()
	}
	s1, t1 := run(1)
	s2, t2 := run(1)
	s4, t4 := run(4)
	if s1 != s2 || t1 != t2 {
		t.Fatalf("serial replay diverged: %+v @%v vs %+v @%v", s1, t1, s2, t2)
	}
	if s1 != s4 || t1 != t4 {
		t.Fatalf("parallel run diverged from serial: %+v @%v vs %+v @%v", s1, t1, s4, t4)
	}
}
