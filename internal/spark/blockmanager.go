package spark

import (
	"sort"

	"memphis/internal/data"
	"memphis/internal/faults"
)

// blockKey identifies one cached partition.
type blockKey struct {
	rdd  int
	part int
}

// block is one cached partition.
type block struct {
	m      *data.Matrix
	size   int64
	onDisk bool
	level  StorageLevel
}

// BlockManager models the cluster's aggregate storage region: cached
// partitions live in memory up to a budget; on pressure, the least recently
// used partitions of other RDDs are evicted — dropped for MEMORY-level
// RDDs (recomputed from Spark lineage on next access) or spilled for
// MEMORY_AND_DISK (§2.2).
type BlockManager struct {
	budget int64
	used   int64
	blocks map[blockKey]*block
	// lru holds keys of in-memory blocks, least recently used first.
	lru []blockKey
	// inj injects deterministic spill I/O errors; nil means none.
	inj *faults.Injector
}

func newBlockManager(budget int64) *BlockManager {
	return &BlockManager{budget: budget, blocks: make(map[blockKey]*block)}
}

// Budget returns the storage memory budget.
func (b *BlockManager) Budget() int64 { return b.budget }

// Used returns the bytes of in-memory cached partitions.
func (b *BlockManager) Used() int64 { return b.used }

// touch moves k to the MRU end of the LRU list.
func (b *BlockManager) touch(k blockKey) {
	for i, e := range b.lru {
		if e == k {
			b.lru = append(b.lru[:i], b.lru[i+1:]...)
			break
		}
	}
	b.lru = append(b.lru, k)
}

func (b *BlockManager) dropFromLRU(k blockKey) {
	for i, e := range b.lru {
		if e == k {
			b.lru = append(b.lru[:i], b.lru[i+1:]...)
			return
		}
	}
}

// get returns a cached partition, reporting whether it came from disk.
func (b *BlockManager) get(rdd, part int) (m *data.Matrix, onDisk, ok bool) {
	blk, found := b.blocks[blockKey{rdd, part}]
	if !found {
		return nil, false, false
	}
	if !blk.onDisk {
		b.touch(blockKey{rdd, part})
	}
	return blk.m, blk.onDisk, true
}

// peek returns a cached partition value without touching LRU state or
// statistics. Used by the parallel partition prewarm, which must observe
// the block manager read-only so the serial accounting pass stays bitwise
// reproducible.
func (b *BlockManager) peek(rdd, part int) (*data.Matrix, bool) {
	blk, ok := b.blocks[blockKey{rdd, part}]
	if !ok {
		return nil, false
	}
	return blk.m, true
}

// contains reports whether the partition is cached (memory or disk).
func (b *BlockManager) contains(rdd, part int) bool {
	_, ok := b.blocks[blockKey{rdd, part}]
	return ok
}

// put caches a freshly computed partition, evicting LRU partitions of other
// RDDs as needed. It returns how many victim partitions were spilled to
// disk, how many were dropped, and how many spill writes failed (an
// injected I/O error turns the spill into a drop — the victim is recomputed
// from lineage on next access rather than read back from disk). A partition
// larger than the whole budget goes straight to disk if its level allows,
// else it is not cached (Spark semantics).
func (b *BlockManager) put(rdd, part int, m *data.Matrix, level StorageLevel) (spilled, dropped, spillErrs int) {
	k := blockKey{rdd, part}
	if _, ok := b.blocks[k]; ok {
		return 0, 0, 0
	}
	size := m.SizeBytes()
	if size > b.budget {
		if level == StorageMemoryAndDisk {
			if b.inj.Fail(faults.SparkSpill) {
				return 0, 0, 1
			}
			b.blocks[k] = &block{m: m, size: size, onDisk: true, level: level}
		}
		return 0, 0, 0
	}
	for b.used+size > b.budget {
		victim := b.pickVictim(rdd)
		if victim == nil {
			// Everything in memory belongs to this RDD; skip caching.
			return spilled, dropped, spillErrs
		}
		vb := b.blocks[*victim]
		b.dropFromLRU(*victim)
		b.used -= vb.size
		if vb.level == StorageMemoryAndDisk {
			if b.inj.Fail(faults.SparkSpill) {
				delete(b.blocks, *victim)
				spillErrs++
				dropped++
			} else {
				vb.onDisk = true
				spilled++
			}
		} else {
			delete(b.blocks, *victim)
			dropped++
		}
	}
	b.blocks[k] = &block{m: m, size: size, level: level}
	b.used += size
	b.lru = append(b.lru, k)
	return spilled, dropped, spillErrs
}

// pickVictim returns the LRU in-memory block not belonging to the RDD
// currently being written (Spark never evicts blocks of the same RDD to
// admit its own partitions).
func (b *BlockManager) pickVictim(writingRDD int) *blockKey {
	for _, k := range b.lru {
		if k.rdd != writingRDD {
			k := k
			return &k
		}
	}
	return nil
}

// dropExecutor deletes every block (memory and disk) placed on the given
// executor, modeling executor loss. Keys are visited in sorted order so the
// walk — and any downstream accounting — is deterministic. Returns the
// number of blocks lost.
func (b *BlockManager) dropExecutor(victim, numExec int) int {
	keys := make([]blockKey, 0, len(b.blocks))
	for k := range b.blocks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rdd != keys[j].rdd {
			return keys[i].rdd < keys[j].rdd
		}
		return keys[i].part < keys[j].part
	})
	lost := 0
	for _, k := range keys {
		if executorOf(k.rdd, k.part, numExec) != victim {
			continue
		}
		blk := b.blocks[k]
		if !blk.onDisk {
			b.used -= blk.size
			b.dropFromLRU(k)
		}
		delete(b.blocks, k)
		lost++
	}
	return lost
}

// remove drops all blocks (memory and disk) of an RDD (unpersist).
func (b *BlockManager) remove(rdd int) {
	for k, blk := range b.blocks {
		if k.rdd == rdd {
			if !blk.onDisk {
				b.used -= blk.size
				b.dropFromLRU(k)
			}
			delete(b.blocks, k)
		}
	}
}

// memoryBytesOf returns the in-memory bytes cached for an RDD.
func (b *BlockManager) memoryBytesOf(rdd int) int64 {
	var n int64
	for k, blk := range b.blocks {
		if k.rdd == rdd && !blk.onDisk {
			n += blk.size
		}
	}
	return n
}

// NumBlocks returns the number of cached blocks (memory + disk).
func (b *BlockManager) NumBlocks() int { return len(b.blocks) }

// clear drops every cached block (memory and disk) across all RDDs.
func (b *BlockManager) clear() {
	b.blocks = make(map[blockKey]*block)
	b.lru = nil
	b.used = 0
}
