package spark

import (
	"math"
	"sort"

	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/memctl"
)

// PoolName is the arbiter pool name of the cluster storage region.
const PoolName = "spark"

// blockKey identifies one cached partition.
type blockKey struct {
	rdd  int
	part int
}

// block is one cached partition.
type block struct {
	m      *data.Matrix
	size   int64
	onDisk bool
	level  StorageLevel
	// seq is the monotone touch sequence of the block's last access; the
	// in-memory block with the minimum sequence is the LRU victim.
	seq int64
}

// BlockManager models the cluster's aggregate storage region: cached
// partitions live in memory up to a budget; on pressure, the least recently
// used partitions of other RDDs are evicted — dropped for MEMORY-level
// RDDs (recomputed from Spark lineage on next access) or spilled for
// MEMORY_AND_DISK (§2.2). LRU is expressed through the shared policy's
// recency-only instance (memctl.LRUWeights) over the touch sequence.
type BlockManager struct {
	budget int64
	used   int64
	peak   int64 // high-water mark of in-memory cached bytes
	blocks map[blockKey]*block
	// seq is the touch-sequence counter; every access gets a fresh value,
	// so block sequences are unique and victim selection is deterministic.
	seq int64
	// inj injects deterministic spill I/O errors; nil means none.
	inj *faults.Injector
	// arb, when set, receives pressure/eviction/demotion accounting for
	// the storage region; nil disables reporting.
	arb *memctl.Arbiter
}

func newBlockManager(budget int64) *BlockManager {
	return &BlockManager{budget: budget, blocks: make(map[blockKey]*block)}
}

// Budget returns the storage memory budget.
func (b *BlockManager) Budget() int64 { return b.budget }

// Used returns the bytes of in-memory cached partitions.
func (b *BlockManager) Used() int64 { return b.used }

// touch records a fresh access to an in-memory block.
func (b *BlockManager) touch(k blockKey) {
	if blk, ok := b.blocks[k]; ok {
		b.seq++
		blk.seq = b.seq
	}
}

// get returns a cached partition, reporting whether it came from disk.
func (b *BlockManager) get(rdd, part int) (m *data.Matrix, onDisk, ok bool) {
	blk, found := b.blocks[blockKey{rdd, part}]
	if !found {
		return nil, false, false
	}
	if !blk.onDisk {
		b.touch(blockKey{rdd, part})
	}
	return blk.m, blk.onDisk, true
}

// peek returns a cached partition value without touching LRU state or
// statistics. Used by the parallel partition prewarm, which must observe
// the block manager read-only so the serial accounting pass stays bitwise
// reproducible.
func (b *BlockManager) peek(rdd, part int) (*data.Matrix, bool) {
	blk, ok := b.blocks[blockKey{rdd, part}]
	if !ok {
		return nil, false
	}
	return blk.m, true
}

// contains reports whether the partition is cached (memory or disk).
func (b *BlockManager) contains(rdd, part int) bool {
	_, ok := b.blocks[blockKey{rdd, part}]
	return ok
}

// put caches a freshly computed partition, evicting LRU partitions of other
// RDDs as needed. It returns how many victim partitions were spilled to
// disk, how many were dropped, and how many spill writes failed (an
// injected I/O error turns the spill into a drop — the victim is recomputed
// from lineage on next access rather than read back from disk). A partition
// larger than the whole budget goes straight to disk if its level allows,
// else it is not cached (Spark semantics).
func (b *BlockManager) put(rdd, part int, m *data.Matrix, level StorageLevel) (spilled, dropped, spillErrs int) {
	k := blockKey{rdd, part}
	if _, ok := b.blocks[k]; ok {
		return 0, 0, 0
	}
	size := m.SizeBytes()
	if size > b.budget {
		if level == StorageMemoryAndDisk {
			if b.inj.Fail(faults.SparkSpill) {
				return 0, 0, 1
			}
			b.blocks[k] = &block{m: m, size: size, onDisk: true, level: level}
		}
		return 0, 0, 0
	}
	if b.used+size > b.budget {
		b.notePressure()
	}
	for b.used+size > b.budget {
		victim := b.pickVictim(rdd)
		if victim == nil {
			// Everything in memory belongs to this RDD; skip caching.
			return spilled, dropped, spillErrs
		}
		s, d, e := b.evictBlock(*victim)
		spilled += s
		dropped += d
		spillErrs += e
	}
	b.seq++
	b.blocks[k] = &block{m: m, size: size, level: level, seq: b.seq}
	b.used += size
	if b.used > b.peak {
		b.peak = b.used
	}
	return spilled, dropped, spillErrs
}

// evictBlock pushes one in-memory block out of the memory region: spilled
// to disk for MEMORY_AND_DISK blocks (the storage region's rung of the
// demotion ladder), dropped for MEMORY-level blocks (recomputed from Spark
// lineage on next access). An injected spill I/O error turns the spill
// into a drop.
func (b *BlockManager) evictBlock(k blockKey) (spilled, dropped, spillErrs int) {
	vb := b.blocks[k]
	b.used -= vb.size
	if vb.level == StorageMemoryAndDisk {
		if b.inj.Fail(faults.SparkSpill) {
			delete(b.blocks, k)
			b.noteEviction(vb.size)
			return 0, 1, 1
		}
		vb.onDisk = true
		b.noteDemotion(vb.size)
		return 1, 0, 0
	}
	delete(b.blocks, k)
	b.noteEviction(vb.size)
	return 0, 1, 0
}

// pickVictim returns the LRU in-memory block not belonging to the RDD
// currently being written (Spark never evicts blocks of the same RDD to
// admit its own partitions; pass a negative id to consider every RDD).
// Ranking goes through the shared policy's recency-only instance: with
// unique monotone touch sequences the minimum score is exactly the LRU
// block, and the argmin over map iteration is deterministic.
func (b *BlockManager) pickVictim(writingRDD int) *blockKey {
	norms := memctl.Norms{Now: float64(b.seq)}
	var victim *blockKey
	best := math.Inf(1)
	for k, blk := range b.blocks {
		if blk.onDisk || k.rdd == writingRDD {
			continue
		}
		cand := memctl.Candidate{Size: blk.size, LastAccess: float64(blk.seq)}
		if s := memctl.Score(cand, memctl.LRUWeights, norms); s < best {
			k := k
			best, victim = s, &k
		}
	}
	return victim
}

// dropExecutor deletes every block (memory and disk) placed on the given
// executor, modeling executor loss. Keys are visited in sorted order so the
// walk — and any downstream accounting — is deterministic. Returns the
// number of blocks lost.
func (b *BlockManager) dropExecutor(victim, numExec int) int {
	keys := make([]blockKey, 0, len(b.blocks))
	for k := range b.blocks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rdd != keys[j].rdd {
			return keys[i].rdd < keys[j].rdd
		}
		return keys[i].part < keys[j].part
	})
	lost := 0
	for _, k := range keys {
		if executorOf(k.rdd, k.part, numExec) != victim {
			continue
		}
		blk := b.blocks[k]
		if !blk.onDisk {
			b.used -= blk.size
		}
		delete(b.blocks, k)
		lost++
	}
	return lost
}

// remove drops all blocks (memory and disk) of an RDD (unpersist).
func (b *BlockManager) remove(rdd int) {
	for k, blk := range b.blocks {
		if k.rdd == rdd {
			if !blk.onDisk {
				b.used -= blk.size
			}
			delete(b.blocks, k)
		}
	}
}

// memoryBytesOf returns the in-memory bytes cached for an RDD.
func (b *BlockManager) memoryBytesOf(rdd int) int64 {
	var n int64
	for k, blk := range b.blocks {
		if k.rdd == rdd && !blk.onDisk {
			n += blk.size
		}
	}
	return n
}

// NumBlocks returns the number of cached blocks (memory + disk).
func (b *BlockManager) NumBlocks() int { return len(b.blocks) }

// clear drops every cached block (memory and disk) across all RDDs.
func (b *BlockManager) clear() {
	b.blocks = make(map[blockKey]*block)
	b.seq = 0
	b.used = 0
}

// notePressure/noteEviction/noteDemotion report storage-region activity to
// the arbiter when one is attached.
func (b *BlockManager) notePressure() {
	if b.arb != nil {
		b.arb.NotePressure(PoolName)
	}
}

func (b *BlockManager) noteEviction(size int64) {
	if b.arb != nil {
		b.arb.NoteEviction(PoolName, 1, size)
	}
}

func (b *BlockManager) noteDemotion(size int64) {
	if b.arb != nil {
		b.arb.NoteDemotion(PoolName, 1, size)
	}
}

// bmPool adapts the storage region to memctl.Pool. Evict pushes LRU
// blocks of any RDD out of memory (spill-or-drop by storage level);
// Demote spills only MEMORY_AND_DISK blocks, leaving MEMORY blocks for
// lineage recomputation.
type bmPool struct{ b *BlockManager }

func (p bmPool) Name() string  { return PoolName }
func (p bmPool) Used() int64   { return p.b.used }
func (p bmPool) Peak() int64   { return p.b.peak }
func (p bmPool) Budget() int64 { return p.b.budget }

func (p bmPool) Victims(max int) []memctl.Victim {
	norms := memctl.Norms{Now: float64(p.b.seq)}
	var out []memctl.Victim
	for _, blk := range p.b.blocks {
		if blk.onDisk {
			continue
		}
		cand := memctl.Candidate{Size: blk.size, LastAccess: float64(blk.seq)}
		out = append(out, memctl.Victim{Candidate: cand, Score: memctl.Score(cand, memctl.LRUWeights, norms)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	if max >= 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

func (p bmPool) Evict(need int64) int64 {
	var freed int64
	for freed < need {
		victim := p.b.pickVictim(-1)
		if victim == nil {
			break
		}
		size := p.b.blocks[*victim].size
		p.b.evictBlock(*victim)
		freed += size
	}
	return freed
}

func (p bmPool) Demote(need int64) int64 {
	norms := memctl.Norms{Now: float64(p.b.seq)}
	var freed int64
	for freed < need {
		var victim *blockKey
		best := math.Inf(1)
		for k, blk := range p.b.blocks {
			if blk.onDisk || blk.level != StorageMemoryAndDisk {
				continue
			}
			cand := memctl.Candidate{Size: blk.size, LastAccess: float64(blk.seq)}
			if s := memctl.Score(cand, memctl.LRUWeights, norms); s < best {
				k := k
				best, victim = s, &k
			}
		}
		if victim == nil {
			break
		}
		size := p.b.blocks[*victim].size
		if spilled, _, _ := p.b.evictBlock(*victim); spilled == 0 {
			// Injected spill failure: the block was dropped, which still
			// frees memory but is an eviction, not a demotion.
			freed += size
			continue
		}
		freed += size
	}
	return freed
}

// MemPool returns the arbiter pool view of the storage region.
func (b *BlockManager) MemPool() memctl.Pool { return bmPool{b} }
