package spark

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/vtime"
)

func newTestContext(storage int64) (*Context, *vtime.Clock) {
	clock := vtime.New()
	conf := DefaultConfig()
	if storage > 0 {
		conf.StorageMemory = storage
	}
	return NewContext(clock, costs.Default(), conf), clock
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	c, _ := newTestContext(0)
	m := data.Rand(100, 5, -1, 1, 1, 1)
	r := c.Parallelize(m, 4, "X")
	if r.NumPartitions() != 4 {
		t.Fatalf("parts = %d", r.NumPartitions())
	}
	got := c.Collect(r)
	if !data.AllClose(m, got, 0) {
		t.Fatal("collect != original")
	}
	if c.Stats.Jobs != 1 {
		t.Fatalf("Jobs = %d, want 1", c.Stats.Jobs)
	}
}

func TestRowsOfPartCoversAllRows(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		rows := int(n%1000) + 1
		p := int(parts%16) + 1
		covered := 0
		prevHi := 0
		for i := 0; i < p; i++ {
			lo, hi := rowsOfPart(rows, p, i)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyEvaluation(t *testing.T) {
	c, _ := newTestContext(0)
	m := data.Ones(64, 4)
	r := c.Parallelize(m, 4, "X")
	mapped := r.MapPartitions("x2", 64, 4, func(int) float64 { return 256 }, nil,
		func(_ int, p *data.Matrix) *data.Matrix { return data.MulScalar(p, 2) })
	// No job yet: transformations are lazy.
	if c.Stats.Jobs != 0 || c.Stats.PartitionsComputed != 0 {
		t.Fatalf("lazy transformation triggered work: %+v", c.Stats)
	}
	got := c.Collect(mapped)
	if got.At(0, 0) != 2 {
		t.Fatal("map result wrong")
	}
	if c.Stats.Jobs != 1 {
		t.Fatalf("Jobs = %d", c.Stats.Jobs)
	}
}

func TestTSMMCorrectness(t *testing.T) {
	c, _ := newTestContext(0)
	m := data.RandNorm(50, 6, 0, 1, 3)
	r := c.Parallelize(m, 4, "X")
	got := c.Collect(TSMM(r))
	want := data.TSMM(m)
	if !data.AllClose(got, want, 1e-9) {
		t.Fatal("distributed TSMM wrong")
	}
	if c.Stats.ShuffleBytes == 0 {
		t.Fatal("TSMM must shuffle")
	}
}

func TestMapMMWithBroadcast(t *testing.T) {
	c, _ := newTestContext(0)
	x := data.RandNorm(40, 6, 0, 1, 4)
	w := data.RandNorm(6, 3, 0, 1, 5)
	xr := c.Parallelize(x, 4, "X")
	bw := c.NewBroadcast(w, false)
	got := c.Collect(MapMM(xr, bw, "W"))
	if !data.AllClose(got, data.MatMul(x, w), 1e-9) {
		t.Fatal("MapMM wrong")
	}
}

func TestVecMMCorrectness(t *testing.T) {
	c, _ := newTestContext(0)
	x := data.RandNorm(30, 5, 0, 1, 6)
	y := data.RandNorm(30, 1, 0, 1, 7)
	xr := c.Parallelize(x, 3, "X")
	byT := c.NewBroadcast(data.Transpose(y), false)
	got := c.Collect(VecMM(byT, xr))
	want := data.MatMul(data.Transpose(y), x)
	if !data.AllClose(got, want, 1e-9) {
		t.Fatal("VecMM wrong")
	}
}

func TestBroadcastLazyTransfer(t *testing.T) {
	c, _ := newTestContext(0)
	w := data.Ones(100, 10)
	b := c.NewBroadcast(w, false)
	if b.Transferred() {
		t.Fatal("broadcast must not transfer before first job")
	}
	if c.DriverBroadcastBytes() != w.SizeBytes() {
		t.Fatal("driver must retain serialized broadcast")
	}
	x := c.Parallelize(data.Ones(20, 100), 2, "X")
	_ = c.Collect(MapMM(x, b, "W"))
	if !b.Transferred() {
		t.Fatal("first job must transfer the broadcast")
	}
	if c.Stats.BroadcastBytes != w.SizeBytes() {
		t.Fatalf("BroadcastBytes = %d", c.Stats.BroadcastBytes)
	}
	// Second job must not re-transfer.
	_ = c.Collect(MapMM(x, b, "W"))
	if c.Stats.BroadcastBytes != w.SizeBytes() {
		t.Fatal("broadcast transferred twice")
	}
	b.Destroy()
	if c.DriverBroadcastBytes() != 0 {
		t.Fatal("destroy must release driver memory")
	}
}

func TestPersistAvoidsRecompute(t *testing.T) {
	c, _ := newTestContext(0)
	m := data.Ones(64, 4)
	r := c.Parallelize(m, 4, "X")
	mapped := r.MapPartitions("x2", 64, 4, func(int) float64 { return 256 }, nil,
		func(_ int, p *data.Matrix) *data.Matrix { return data.MulScalar(p, 2) })
	mapped.Persist(StorageMemory)
	if mapped.IsMaterialized() {
		t.Fatal("persist is lazy; nothing materialized yet")
	}
	_ = c.Collect(mapped)
	if !mapped.IsMaterialized() {
		t.Fatal("job must materialize persisted RDD")
	}
	computed := c.Stats.PartitionsComputed
	_ = c.Collect(mapped)
	if c.Stats.PartitionsComputed != computed {
		t.Fatal("second job must read from cache")
	}
	if c.Stats.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	mapped.Unpersist()
	if mapped.IsMaterialized() || c.BlockManager().NumBlocks() != 0 {
		t.Fatal("unpersist must drop blocks")
	}
}

func TestMemoryEvictionDropsAndRecomputes(t *testing.T) {
	// Storage fits only one RDD's partitions.
	c, _ := newTestContext(64 * 4 * 8)
	a := c.Parallelize(data.Ones(64, 4), 4, "A").
		MapPartitions("a", 64, 4, func(int) float64 { return 1 }, nil,
			func(_ int, p *data.Matrix) *data.Matrix { return p.Clone() })
	b := c.Parallelize(data.Ones(64, 4), 4, "B").
		MapPartitions("b", 64, 4, func(int) float64 { return 1 }, nil,
			func(_ int, p *data.Matrix) *data.Matrix { return p.Clone() })
	a.Persist(StorageMemory)
	b.Persist(StorageMemory)
	_ = c.Collect(a)
	_ = c.Collect(b) // must evict a's partitions
	if c.Stats.PartitionsEvicted == 0 {
		t.Fatal("expected evictions under storage pressure")
	}
	if a.IsMaterialized() {
		t.Fatal("a should have lost partitions")
	}
	// Accessing a again recomputes from lineage.
	before := c.Stats.PartitionsComputed
	_ = c.Collect(a)
	if c.Stats.PartitionsComputed == before {
		t.Fatal("evicted MEMORY partitions must be recomputed")
	}
}

func TestMemoryAndDiskSpills(t *testing.T) {
	c, _ := newTestContext(64 * 4 * 8)
	mk := func(name string) *RDD {
		return c.Parallelize(data.Ones(64, 4), 4, name).
			MapPartitions(name, 64, 4, func(int) float64 { return 1 }, nil,
				func(_ int, p *data.Matrix) *data.Matrix { return p.Clone() })
	}
	a := mk("a")
	b := mk("b")
	a.Persist(StorageMemoryAndDisk)
	b.Persist(StorageMemoryAndDisk)
	_ = c.Collect(a)
	_ = c.Collect(b)
	if c.Stats.DiskSpills == 0 {
		t.Fatal("expected spills for MEMORY_AND_DISK")
	}
	// a is still materialized (on disk) and readable without recompute.
	if !a.IsMaterialized() {
		t.Fatal("spilled RDD should still be materialized")
	}
	before := c.Stats.PartitionsComputed
	_ = c.Collect(a)
	if c.Stats.PartitionsComputed != before {
		t.Fatal("disk-cached partitions must not be recomputed")
	}
	if c.Stats.DiskReads == 0 {
		t.Fatal("expected disk reads")
	}
}

func TestShuffleFileReuse(t *testing.T) {
	c, _ := newTestContext(0)
	x := c.Parallelize(data.RandNorm(40, 4, 0, 1, 8), 4, "X")
	ts := TSMM(x) // wide
	_ = c.Collect(ts)
	computed := c.Stats.PartitionsComputed
	// Re-collecting the same (unpersisted!) wide RDD reuses shuffle files
	// instead of recomputing the map side.
	_ = c.Collect(ts)
	if c.Stats.PartitionsComputed != computed {
		t.Fatal("shuffle files should avoid recomputation")
	}
	if c.Stats.ShuffleFileReuses == 0 {
		t.Fatal("no shuffle-file reuse recorded")
	}
	c.CleanShuffles(ts)
	_ = c.Collect(ts)
	if c.Stats.PartitionsComputed == computed {
		t.Fatal("after cleanup the RDD must recompute")
	}
}

func TestJobChargesClusterTime(t *testing.T) {
	c, clock := newTestContext(0)
	x := c.Parallelize(data.RandNorm(100, 10, 0, 1, 9), 4, "X")
	before := clock.Now()
	_ = c.Collect(TSMM(x))
	elapsed := clock.Now() - before
	// At least the job overhead plus two stage overheads.
	if elapsed < costs.Default().SparkJobOverhead {
		t.Fatalf("elapsed = %g, want >= job overhead", elapsed)
	}
}

func TestAsyncJobOverlapsDriver(t *testing.T) {
	c, clock := newTestContext(0)
	x := c.Parallelize(data.RandNorm(100, 10, 0, 1, 10), 4, "X")
	ts := TSMM(x)
	before := clock.Now()
	parts := []int{0}
	_, f := c.RunJob(ts, parts, true)
	if clock.Now()-before > 1e-9 {
		t.Fatal("async job must not block the driver")
	}
	clock.Wait(f)
	if clock.Now()-before < costs.Default().SparkJobOverhead {
		t.Fatal("waiting must include the job duration")
	}
}

func TestCollectAsyncChain(t *testing.T) {
	c, clock := newTestContext(0)
	x := c.Parallelize(data.RandNorm(64, 8, 0, 1, 11), 4, "X")
	ts := TSMM(x)
	val, chain := c.CollectAsync(ts)
	if !data.AllClose(val, data.TSMM(c.Collect(x)), 1e-9) {
		t.Fatal("async collect value wrong")
	}
	before := clock.Now()
	clock.WaitChain(chain)
	clock.WaitChain(chain) // epilogue charged once
	if clock.Now() < before {
		t.Fatal("time went backwards")
	}
}

func TestCount(t *testing.T) {
	c, _ := newTestContext(0)
	x := c.Parallelize(data.Ones(123, 2), 4, "X")
	n, _ := c.Count(x, false)
	if n != 123 {
		t.Fatalf("Count = %d, want 123", n)
	}
}

func TestElementwiseOps(t *testing.T) {
	c, _ := newTestContext(0)
	a := data.RandNorm(30, 4, 0, 1, 12)
	b := data.RandNorm(30, 4, 0, 1, 13)
	ra := c.Parallelize(a, 3, "a")
	rb := c.Parallelize(b, 3, "b")
	got := c.Collect(Elementwise(ra, rb, "+", data.Add))
	if !data.AllClose(got, data.Add(a, b), 1e-12) {
		t.Fatal("Elementwise + wrong")
	}
	bc := c.NewBroadcast(data.ColMeans(a), false)
	got2 := c.Collect(MapElementwise(ra, bc, "-", data.Sub))
	if !data.AllClose(got2, data.Sub(a, data.ColMeans(a)), 1e-12) {
		t.Fatal("MapElementwise - wrong")
	}
}

func TestMapElementwiseColVectorSlicing(t *testing.T) {
	c, _ := newTestContext(0)
	a := data.RandNorm(30, 4, 0, 1, 14)
	v := data.RandNorm(30, 1, 0, 1, 15)
	ra := c.Parallelize(a, 3, "a")
	bv := c.NewBroadcast(v, false)
	got := c.Collect(MapElementwise(ra, bv, "*", data.Mul))
	if !data.AllClose(got, data.Mul(a, v), 1e-12) {
		t.Fatal("column-vector broadcast slicing wrong")
	}
}

func TestColAggregate(t *testing.T) {
	c, _ := newTestContext(0)
	a := data.RandNorm(40, 5, 0, 1, 16)
	ra := c.Parallelize(a, 4, "a")
	got := c.Collect(ColAggregate(ra, "sum", data.ColSums, data.Add))
	if !data.AllClose(got, data.ColSums(a), 1e-9) {
		t.Fatal("ColAggregate wrong")
	}
}

// Property: distributed pipelines produce the same values as local compute
// regardless of partitioning.
func TestDistributedEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 10 + rng.Intn(50)
		cols := 1 + rng.Intn(8)
		parts := 1 + rng.Intn(6)
		x := data.RandNorm(rows, cols, 0, 1, seed)
		c, _ := newTestContext(0)
		xr := c.Parallelize(x, parts, "X")
		got := c.Collect(TSMM(xr))
		return data.AllClose(got, data.TSMM(x), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: block manager memory accounting never exceeds the budget.
func TestBlockManagerBudgetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bm := newBlockManager(1000)
		for i := 0; i < 100; i++ {
			rdd := rng.Intn(5)
			part := rng.Intn(4)
			rowsN := 1 + rng.Intn(20)
			level := StorageMemory
			if rng.Intn(2) == 0 {
				level = StorageMemoryAndDisk
			}
			bm.put(rdd, part, data.Ones(rowsN, 2), level)
			if bm.Used() > bm.Budget() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedPartitionGoesToDiskOrSkipped(t *testing.T) {
	bm := newBlockManager(100)
	big := data.Ones(100, 1) // 800 bytes > budget
	bm.put(1, 0, big, StorageMemory)
	if bm.contains(1, 0) {
		t.Fatal("oversized MEMORY partition must be skipped")
	}
	bm.put(1, 1, big, StorageMemoryAndDisk)
	m, onDisk, ok := bm.get(1, 1)
	if !ok || !onDisk || m == nil {
		t.Fatal("oversized MEMORY_AND_DISK partition must go to disk")
	}
	if bm.Used() != 0 {
		t.Fatal("disk blocks must not count against memory")
	}
}

func TestConcurrentJobSlots(t *testing.T) {
	c, clock := newTestContext(0)
	x := c.Parallelize(data.RandNorm(200, 10, 0, 1, 21), 4, "X")
	a := TSMM(x)
	b := ColAggregate(x, "sum", data.ColSums, data.Add)
	// Two asynchronous jobs must land on different slots and overlap.
	_, f1 := c.RunJob(a, []int{0}, true)
	_, f2 := c.RunJob(b, []int{0}, true)
	clock.Wait(f1)
	clock.Wait(f2)
	serial := 2 * costs.Default().SparkJobOverhead
	if clock.Now() >= serial {
		t.Fatalf("async jobs did not overlap: %g >= %g", clock.Now(), serial)
	}
}

func TestJobSlotsSerializeWhenSaturated(t *testing.T) {
	conf := DefaultConfig()
	conf.JobSlots = 1
	clock := vtime.New()
	c := NewContext(clock, costs.Default(), conf)
	x := c.Parallelize(data.RandNorm(100, 5, 0, 1, 22), 4, "X")
	_, f1 := c.RunJob(TSMM(x), []int{0}, true)
	_, f2 := c.RunJob(ColAggregate(x, "sum", data.ColSums, data.Add), []int{0}, true)
	if f2.ReadyAt() <= f1.ReadyAt() {
		t.Fatal("a single job slot must serialize jobs")
	}
	_ = clock
}
