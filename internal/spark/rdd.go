package spark

import (
	"fmt"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/vtime"
)

// StorageLevel mirrors Spark's persist levels relevant to MEMPHIS.
type StorageLevel int

const (
	// StorageNone means the RDD is not persisted.
	StorageNone StorageLevel = iota
	// StorageMemory caches deserialized partitions in storage memory;
	// evicted partitions are dropped and recomputed on demand.
	StorageMemory
	// StorageMemoryAndDisk spills evicted partitions to disk.
	StorageMemoryAndDisk
)

func (l StorageLevel) String() string {
	switch l {
	case StorageMemory:
		return "MEMORY"
	case StorageMemoryAndDisk:
		return "MEMORY_AND_DISK"
	default:
		return "NONE"
	}
}

// RDD is a lazily evaluated, partitioned distributed matrix. Partitions are
// horizontal row blocks. Transformations build the dependency DAG without
// computing anything; actions (Collect, Count, Reduce) launch jobs.
type RDD struct {
	id    int
	ctx   *Context
	parts int
	deps  []*RDD
	wide  bool
	// compute produces partition values from parent partition values. For
	// narrow dependencies parents[d] holds one partition; for wide
	// dependencies it holds all of them.
	compute      func(part int, parents [][]*data.Matrix) *data.Matrix
	flopsPerPart func(part int) float64
	shuffleBytes int64
	bcasts       []*Broadcast
	level        StorageLevel
	name         string

	// shuffleFiles is the implicit map-side output cache of wide RDDs.
	shuffleFiles []*data.Matrix

	// Logical dimensions of the represented matrix.
	nrows, ncols int
}

// ID returns the RDD id.
func (r *RDD) ID() int { return r.id }

// Name returns the debug name.
func (r *RDD) Name() string { return r.name }

// NumPartitions returns the partition count.
func (r *RDD) NumPartitions() int { return r.parts }

// Dims returns the logical matrix dimensions.
func (r *RDD) Dims() (rows, cols int) { return r.nrows, r.ncols }

// SizeBytes returns the logical dense size of the represented matrix.
func (r *RDD) SizeBytes() int64 { return int64(r.nrows) * int64(r.ncols) * 8 }

// Dependencies returns the parent RDDs.
func (r *RDD) Dependencies() []*RDD { return r.deps }

// StorageLevel returns the current persist level.
func (r *RDD) StorageLevel() StorageLevel { return r.level }

// Persist marks the RDD for caching at the given level. Like Spark this is
// lazy: partitions materialize in the block manager as jobs compute them.
func (r *RDD) Persist(level StorageLevel) *RDD {
	if level == StorageNone {
		panic("spark: persist with StorageNone")
	}
	r.level = level
	return r
}

// Unpersist removes the RDD from the block manager and stops future caching.
// Spark performs this asynchronously; the simulator applies it immediately
// but does not charge driver time, matching the non-blocking call.
func (r *RDD) Unpersist() {
	r.level = StorageNone
	r.ctx.bm.remove(r.id)
}

// IsMaterialized reports whether every partition is currently cached
// (memory or disk) — the getRDDStorageInfo probe MEMPHIS uses for lazy GC.
func (r *RDD) IsMaterialized() bool {
	if r.level == StorageNone {
		return false
	}
	for p := 0; p < r.parts; p++ {
		if !r.ctx.bm.contains(r.id, p) {
			return false
		}
	}
	return true
}

// CachedBytes returns the bytes of this RDD currently held in storage
// memory (excluding disk).
func (r *RDD) CachedBytes() int64 { return r.ctx.bm.memoryBytesOf(r.id) }

// rowsOfPart returns the row range [lo, hi) of a partition for an RDD with
// n rows split into parts blocks.
func rowsOfPart(n, parts, part int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = part*base + min(part, rem)
	hi = lo + base
	if part < rem {
		hi++
	}
	return lo, hi
}

// Parallelize distributes a driver-local matrix into parts row blocks,
// charging the driver-to-cluster transfer.
func (c *Context) Parallelize(m *data.Matrix, parts int, name string) *RDD {
	if parts <= 0 {
		parts = c.conf.NumExecutors
	}
	if parts > m.Rows && m.Rows > 0 {
		parts = m.Rows
	}
	c.clock.Advance(costs.Transfer(m.SizeBytes(), c.model.BroadcastBW, 0))
	c.nextRDD++
	r := &RDD{
		id: c.nextRDD, ctx: c, parts: parts, name: name,
		nrows: m.Rows, ncols: m.Cols,
	}
	r.compute = func(part int, _ [][]*data.Matrix) *data.Matrix {
		lo, hi := rowsOfPart(m.Rows, parts, part)
		return m.SliceRows(lo, hi)
	}
	r.flopsPerPart = func(int) float64 { return 0 }
	return r
}

// MapPartitions applies f to each partition (narrow dependency). outCols
// gives the logical output column count and outRowsSame indicates the row
// count is preserved; flops estimates compute per partition.
func (r *RDD) MapPartitions(name string, outRows, outCols int, flops func(part int) float64,
	bcasts []*Broadcast, f func(part int, p *data.Matrix) *data.Matrix) *RDD {
	c := r.ctx
	c.nextRDD++
	out := &RDD{
		id: c.nextRDD, ctx: c, parts: r.parts, deps: []*RDD{r}, name: name,
		nrows: outRows, ncols: outCols, bcasts: bcasts, flopsPerPart: flops,
	}
	out.compute = func(part int, parents [][]*data.Matrix) *data.Matrix {
		return f(part, parents[0][0])
	}
	return out
}

// ZipPartitions combines co-partitioned RDDs elementwise (narrow).
func ZipPartitions(a, b *RDD, name string, outRows, outCols int,
	flops func(part int) float64, f func(part int, pa, pb *data.Matrix) *data.Matrix) *RDD {
	if a.parts != b.parts {
		panic(fmt.Sprintf("spark: zip of %d vs %d partitions", a.parts, b.parts))
	}
	c := a.ctx
	c.nextRDD++
	out := &RDD{
		id: c.nextRDD, ctx: c, parts: a.parts, deps: []*RDD{a, b}, name: name,
		nrows: outRows, ncols: outCols, flopsPerPart: flops,
	}
	out.compute = func(part int, parents [][]*data.Matrix) *data.Matrix {
		return f(part, parents[0][0], parents[1][0])
	}
	return out
}

// AggregateWide creates a wide (shuffle) dependency: each output partition
// is computed from all parent partitions. shuffleBytes is the total bytes
// crossing the shuffle boundary.
func (r *RDD) AggregateWide(name string, outParts, outRows, outCols int,
	flops func(part int) float64, shuffleBytes int64,
	f func(part int, all []*data.Matrix) *data.Matrix) *RDD {
	c := r.ctx
	c.nextRDD++
	out := &RDD{
		id: c.nextRDD, ctx: c, parts: outParts, deps: []*RDD{r}, wide: true,
		name: name, nrows: outRows, ncols: outCols,
		flopsPerPart: flops, shuffleBytes: shuffleBytes,
	}
	out.compute = func(part int, parents [][]*data.Matrix) *data.Matrix {
		return f(part, parents[0])
	}
	return out
}

// Collect runs a job over all partitions and assembles them on the driver,
// charging the collect transfer. This is the canonical action.
func (c *Context) Collect(r *RDD) *data.Matrix {
	parts := make([]int, r.parts)
	for i := range parts {
		parts[i] = i
	}
	vals, _ := c.RunJob(r, parts, false)
	out := data.RBind(vals...)
	c.Stats.CollectBytes += out.SizeBytes()
	c.clock.Advance(costs.Transfer(out.SizeBytes(), c.model.CollectBW, 0))
	return out
}

// CollectAsync launches the job and the collect transfer asynchronously,
// returning the (already computed) value and a future for its arrival.
// This backs the prefetch operator (§5.1).
func (c *Context) CollectAsync(r *RDD) (*data.Matrix, *vtime.FutureChain) {
	parts := make([]int, r.parts)
	for i := range parts {
		parts[i] = i
	}
	vals, jobF := c.RunJob(r, parts, true)
	out := data.RBind(vals...)
	c.Stats.CollectBytes += out.SizeBytes()
	transfer := costs.Transfer(out.SizeBytes(), c.model.CollectBW, 0)
	return out, &vtime.FutureChain{Job: jobF, Extra: transfer}
}

// Count triggers a job over all partitions and returns the row count. Used
// by MEMPHIS's asynchronous materialization (count() after k misses).
func (c *Context) Count(r *RDD, async bool) (int64, *vtime.Future) {
	parts := make([]int, r.parts)
	for i := range parts {
		parts[i] = i
	}
	vals, f := c.RunJob(r, parts, async)
	var n int64
	for _, v := range vals {
		n += int64(v.Rows)
	}
	return n, f
}
