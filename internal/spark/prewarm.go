package spark

import (
	"sync"

	"memphis/internal/data"
)

// Parallel partition prewarm. RunJob's accounting pass — memoization,
// block-manager admission/eviction, shuffle-file registration, Stats and
// virtual-time charging — must run serially on the driver in partition
// order to stay deterministic. The real numeric work, however, is
// embarrassingly parallel: partition values are pure functions of the RDD
// lineage. The prewarm fans the requested partitions out across the shared
// worker pool and computes their values (and those of every ancestor
// partition they need) ahead of time, observing driver state strictly
// read-only. The serial pass then consumes the prewarmed values instead of
// recomputing them, leaving every bookkeeping decision — and hence the
// virtual clock — bit-identical to a serial run.

// prewarmEntry deduplicates the computation of one partition across
// concurrent workers: whichever goroutine arrives first computes, the rest
// block on the sync.Once and read the stored value.
type prewarmEntry struct {
	once sync.Once
	m    *data.Matrix
}

// prewarmState is the shared scratch of one prewarm pass.
type prewarmState struct {
	mu      sync.Mutex
	entries map[blockKey]*prewarmEntry
}

// prewarm computes the values of the requested partitions of r in parallel
// and returns them keyed by (rdd, partition), including every intermediate
// ancestor partition that had to be computed along the way.
func (c *Context) prewarm(r *RDD, parts []int) map[blockKey]*data.Matrix {
	st := &prewarmState{entries: make(map[blockKey]*prewarmEntry)}
	var work float64
	for _, p := range parts {
		work += r.flopsPerPart(p)
	}
	data.ParallelFor(len(parts), work, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.value(c, r, parts[i])
		}
	})
	vals := make(map[blockKey]*data.Matrix, len(st.entries))
	for k, e := range st.entries {
		vals[k] = e.m
	}
	return vals
}

// value returns the prewarmed value of one partition, computing it (and its
// ancestors) at most once across all workers.
func (st *prewarmState) value(c *Context, r *RDD, part int) *data.Matrix {
	k := blockKey{r.id, part}
	st.mu.Lock()
	e, ok := st.entries[k]
	if !ok {
		e = &prewarmEntry{}
		st.entries[k] = e
	}
	st.mu.Unlock()
	e.once.Do(func() {
		e.m = st.compute(c, r, part)
	})
	return e.m
}

// compute mirrors Context.evaluate's value resolution — block-manager
// cache, implicit shuffle files, then recomputation from parents — but
// performs no bookkeeping and mutates no driver state. The driver is
// quiescent while the prewarm runs, so the peeks are race-free.
func (st *prewarmState) compute(c *Context, r *RDD, part int) *data.Matrix {
	if m, ok := c.bm.peek(r.id, part); ok {
		return m
	}
	if r.wide && r.shuffleFiles != nil {
		if m := r.shuffleFiles[part]; m != nil {
			return m
		}
	}
	parents := make([][]*data.Matrix, len(r.deps))
	for d, dep := range r.deps {
		if r.wide {
			parents[d] = make([]*data.Matrix, dep.parts)
			for p := 0; p < dep.parts; p++ {
				parents[d][p] = st.value(c, dep, p)
			}
		} else {
			parents[d] = []*data.Matrix{st.value(c, dep, part)}
		}
	}
	return r.compute(part, parents)
}
