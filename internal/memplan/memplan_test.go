package memplan

import (
	"bytes"
	"strconv"
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/ir"
	"memphis/internal/memctl"
)

func op(opcode string, out string, outShape ir.Shape, ins []string, inShapes []ir.Shape) compiler.Instruction {
	return compiler.Instruction{
		Kind: compiler.KindOp, Op: opcode,
		Inputs: ins, Outputs: []string{out},
		Backend: core.BackendCP, Shape: outShape, InShapes: inShapes,
	}
}

func sh(r, c int) ir.Shape { return ir.Shape{Rows: r, Cols: c} }

// stream is X(live-in) -> _t0 -> _t1 -> Y, with X re-read at the end.
func testStream() []compiler.Instruction {
	return []compiler.Instruction{
		op("tsmm", "_t0", sh(4, 4), []string{"X"}, []ir.Shape{sh(100, 4)}),
		op("exp", "_t1", sh(4, 4), []string{"_t0"}, []ir.Shape{sh(4, 4)}),
		op("mm", "Y", sh(100, 4), []string{"X", "_t1"}, []ir.Shape{sh(100, 4), sh(4, 4)}),
	}
}

func TestAnalyzeLiveness(t *testing.T) {
	p := Analyze(testStream())
	if p.Insts != 3 {
		t.Fatalf("Insts = %d, want 3", p.Insts)
	}
	want := map[string]Interval{
		"X":   {Name: "X", Def: -1, First: 0, Last: 2, End: 2, Bytes: 100 * 4 * 8, Uses: 2},
		"_t0": {Name: "_t0", Def: 0, First: 0, Last: 1, End: 2, Bytes: 4 * 4 * 8, Temp: true, Uses: 1},
		"_t1": {Name: "_t1", Def: 1, First: 1, Last: 2, End: 2, Bytes: 4 * 4 * 8, Temp: true, Uses: 1},
		"Y":   {Name: "Y", Def: 2, First: 2, Last: 2, End: 2, Bytes: 100 * 4 * 8, Uses: 0},
	}
	if len(p.Intervals) != len(want) {
		t.Fatalf("got %d intervals, want %d: %+v", len(p.Intervals), len(want), p.Intervals)
	}
	for _, iv := range p.Intervals {
		if w, ok := want[iv.Name]; !ok || iv != w {
			t.Errorf("interval %+v, want %+v", iv, w)
		}
	}
	// Profile: pos0 = X+_t0, pos1 = +_t1, pos2 = +Y (everything resident).
	wantProfile := []int64{3328, 3456, 6656}
	for i, v := range p.Profile {
		if v != wantProfile[i] {
			t.Errorf("Profile[%d] = %d, want %d", i, v, wantProfile[i])
		}
	}
	if p.Peak != 6656 || p.PeakAt != 2 {
		t.Errorf("Peak = %d@%d, want 6656@2", p.Peak, p.PeakAt)
	}
}

func TestLifetimeAt(t *testing.T) {
	p := Analyze(testStream())
	if l := p.LifetimeAt("_t0", 1, 8); l != memctl.LifeDead {
		t.Errorf("_t0 after last use = %v, want dead", l)
	}
	if l := p.LifetimeAt("_t0", 0, 8); l != memctl.LifeSoon {
		t.Errorf("_t0 before reuse = %v, want soon", l)
	}
	if l := p.LifetimeAt("X", 2, 8); l != memctl.LifeUnknown {
		t.Errorf("live-in X after last use = %v, want unknown (non-temps escape)", l)
	}
	if l := p.LifetimeAt("X", 0, 1); l != memctl.LifeUnknown {
		t.Errorf("X with next use beyond window = %v, want unknown", l)
	}
}

// TestApplyDeterministic: planning is a pure function of (stream, config) —
// two passes yield byte-identical plans and identical rewritten streams.
func TestApplyDeterministic(t *testing.T) {
	cfg := Config{Budget: 4000}
	r1, p1 := Apply(testStream(), cfg)
	r2, p2 := Apply(testStream(), cfg)
	if !bytes.Equal(p1.Marshal(), p2.Marshal()) {
		t.Errorf("plans differ:\n%s\nvs\n%s", p1.Marshal(), p2.Marshal())
	}
	if len(r1) != len(r2) {
		t.Fatalf("rewritten streams differ in length: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].String() != r2[i].String() {
			t.Errorf("inst %d differs: %s vs %s", i, r1[i].String(), r2[i].String())
		}
	}
}

// TestApplyInsertsFrees: temps gain a free at their last use, residency
// ends early, and the profile's tail shrinks accordingly. Budget 6500 is
// below the 6656-byte peak but above twice the largest output, so frees
// fire without triggering a matmul split.
func TestApplyInsertsFrees(t *testing.T) {
	rewritten, p := Apply(testStream(), Config{Budget: 6500})
	if p.Frees != 2 {
		t.Fatalf("Frees = %d, want 2 (stream: %v)", p.Frees, rewritten)
	}
	var frees []string
	for i := range rewritten {
		if rewritten[i].Kind == compiler.KindFree {
			frees = append(frees, rewritten[i].Inputs[0])
		}
	}
	if len(frees) != 2 || frees[0] != "_t0" || frees[1] != "_t1" {
		t.Errorf("freed %v, want [_t0 _t1]", frees)
	}
	if err := VerifyStream(rewritten); err != nil {
		t.Errorf("rewritten stream invalid: %v", err)
	}
	// The final profile must be no worse than the unplanned peak anywhere.
	unplanned := Analyze(testStream())
	if p.Peak > unplanned.Peak {
		t.Errorf("planned peak %d exceeds unplanned %d", p.Peak, unplanned.Peak)
	}
}

// TestApplyGating: splits and cache flips fire only over budget (frees
// fire under any positive budget), and a zero budget yields pure analysis
// with the stream untouched.
func TestApplyGating(t *testing.T) {
	rewritten, p := Apply(testStream(), Config{Budget: 1 << 30})
	if p.Splits != 0 || len(p.NoCache) != 0 {
		t.Errorf("under-budget stream gained splits=%d nocache=%v", p.Splits, p.NoCache)
	}
	if p.Frees != 2 {
		t.Errorf("under-budget frees = %d, want 2 (dead temps always freed)", p.Frees)
	}
	rewritten, p = Apply(testStream(), Config{Budget: 0})
	if len(rewritten) != 3 || p.Frees != 0 || p.Splits != 0 || len(p.NoCache) != 0 {
		t.Errorf("zero-budget stream was rewritten: %d insts, frees=%d splits=%d nocache=%v",
			len(rewritten), p.Frees, p.Splits, p.NoCache)
	}
	rewritten, p = Apply(testStream(), Config{Budget: 4000, DisableRewrites: true})
	if len(rewritten) != 3 || p.Frees != 0 || p.Splits != 0 {
		t.Errorf("DisableRewrites stream was rewritten: %d insts", len(rewritten))
	}
}

// TestSplitOversizedMatmul: a CP mm whose output exceeds half the budget is
// lowered to a slice/mm/rbind row-panel chain producing the same name.
func TestSplitOversizedMatmul(t *testing.T) {
	insts := []compiler.Instruction{
		op("mm", "_t0", sh(1000, 100), []string{"A", "B"}, []ir.Shape{sh(1000, 50), sh(50, 100)}),
		op("sum", "s", sh(1, 1), []string{"_t0"}, []ir.Shape{sh(1000, 100)}),
	}
	budget := int64(200 * 1024) // out = 800000 bytes > budget/2
	rewritten, p := Apply(insts, Config{Budget: budget})
	if p.Splits != 1 {
		t.Fatalf("Splits = %d, want 1", p.Splits)
	}
	if err := VerifyStream(rewritten); err != nil {
		t.Fatalf("split stream invalid: %v", err)
	}
	var mms, slices, rbinds int
	defined := map[string]bool{}
	for i := range rewritten {
		switch rewritten[i].Op {
		case "mm":
			mms++
		case "slice":
			slices++
		case "rbind":
			rbinds++
		}
		if rewritten[i].Kind == compiler.KindOp {
			defined[rewritten[i].Output()] = true
		}
	}
	if !defined["_t0"] {
		t.Errorf("split chain never defines the original output _t0")
	}
	if mms != slices || rbinds != mms-1 || mms < 2 {
		t.Errorf("panel structure wrong: %d slices, %d mms, %d rbinds", slices, mms, rbinds)
	}
	// Row coverage: slice attrs partition [0, 1000).
	next := 0
	for i := range rewritten {
		if rewritten[i].Op != "slice" {
			continue
		}
		if got := rewritten[i].Attr("r0"); got != strconv.Itoa(next) {
			t.Errorf("slice starts at %s, want %d", got, next)
		}
		r1, err := strconv.Atoi(rewritten[i].Attr("r1"))
		if err != nil {
			t.Fatalf("bad r1: %v", err)
		}
		next = r1
	}
	if next != 1000 {
		t.Errorf("panels cover rows [0,%d), want [0,1000)", next)
	}
}

func TestVerifyStreamNegatives(t *testing.T) {
	free := func(name string) compiler.Instruction {
		return compiler.Instruction{Kind: compiler.KindFree, Op: "free",
			Inputs: []string{name}, Outputs: []string{"_"}, Backend: core.BackendCP}
	}
	base := testStream()
	cases := map[string][]compiler.Instruction{
		"use after free":    {base[0], free("_t0"), base[1]},
		"double free":       {base[0], free("_t0"), free("_t0")},
		"free undefined":    {free("_tghost")},
		"redefine freed":    {base[0], free("_t0"), base[0]},
		"free with 2 names": {base[0], {Kind: compiler.KindFree, Op: "free", Inputs: []string{"_t0", "_t0"}, Outputs: []string{"_"}, Backend: core.BackendCP}},
	}
	for name, insts := range cases {
		if err := VerifyStream(insts); err == nil {
			t.Errorf("%s: VerifyStream accepted an invalid stream", name)
		}
	}
	if err := VerifyStream(base); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
}
