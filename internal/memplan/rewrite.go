package memplan

import (
	"fmt"
	"sort"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/ir"
)

// cacheableOp mirrors the runtime's fine-grained-reuse exclusions: these
// opcodes never produce cache puts, so the planner's cache accounting and
// flip decisions skip them.
func cacheableOp(op string) bool {
	switch op {
	case "assign", "chkpoint", "call", "nrow", "ncol":
		return false
	}
	return true
}

// Apply plans one compiled stream: analyze, rewrite under the budget, and
// re-analyze the final stream so positions in the returned Plan match the
// stream the runtime executes. The result is a pure function of (insts,
// cfg); Apply verifies the rewritten stream and panics on a use-after-free
// or double-free, which would be a planner bug, never an input condition.
func Apply(insts []compiler.Instruction, cfg Config) ([]compiler.Instruction, *Plan) {
	plan := Analyze(insts)
	plan.Budget = cfg.Budget
	out := insts
	splits := 0
	if !cfg.DisableRewrites && cfg.Budget > 0 && plan.Peak > cfg.Budget {
		out, splits = splitOversized(out, cfg)
		if splits > 0 {
			plan = Analyze(out)
			plan.Budget = cfg.Budget
		}
	}
	// Panel temporaries from splits are always flipped to no-cache, even
	// when the split brought the peak back under budget: they are
	// single-use by construction, and caching them would displace the
	// reusable entries the split was protecting. Size-based flips stay
	// gated on a residual overrun.
	noCache := map[string]bool{}
	if !cfg.DisableRewrites && cfg.Budget > 0 && (splits > 0 || plan.Peak > cfg.Budget) {
		noCache = cacheFlips(out, cfg, plan.Peak > cfg.Budget)
	}
	// Early frees are worthwhile whenever a budget exists, even when the
	// profile fits: dead temporaries stop competing with cached values.
	// Splits and cache flips above stay gated on an actual overrun.
	var frees int
	if !cfg.DisableRewrites && (cfg.Budget > 0 || cfg.EagerFrees) {
		out, frees = insertFrees(out, plan)
	}
	final := Analyze(out)
	final.Budget = cfg.Budget
	final.Splits = splits
	final.Frees = frees
	final.noCache = noCache
	final.NoCache = make([]string, 0, len(noCache))
	for n := range noCache {
		final.NoCache = append(final.NoCache, n)
	}
	sort.Strings(final.NoCache)
	summarizeCache(out, final)
	if err := VerifyStream(out); err != nil {
		panic(fmt.Sprintf("memplan: rewritten stream invalid: %v", err))
	}
	return out, final
}

// splitOversized splits CP-placed matmuls whose output exceeds half the
// budget into row-panel chains: slice A into row panels, multiply each
// panel by B, and rbind the partial products back into the original output
// name. The dense kernel computes output rows independently, so the chain
// is bitwise-identical to the unsplit product; the rewrite bounds the
// largest single operand a plan materializes at once (an operand larger
// than the budget defeats eviction entirely — there is nothing to evict
// to make it fit).
func splitOversized(insts []compiler.Instruction, cfg Config) ([]compiler.Instruction, int) {
	out := make([]compiler.Instruction, 0, len(insts))
	splits := 0
	for i := range insts {
		inst := insts[i]
		if inst.Kind != compiler.KindOp || inst.Op != "mm" ||
			inst.Backend != core.BackendCP || len(inst.Inputs) != 2 ||
			len(inst.InShapes) != 2 {
			out = append(out, inst)
			continue
		}
		outBytes := inst.Shape.Bytes()
		if outBytes <= cfg.Budget/2 || inst.Shape.Rows < 2 {
			out = append(out, inst)
			continue
		}
		panelBytes := cfg.Budget / 8
		if panelBytes < 4096 {
			panelBytes = 4096
		}
		n := int((outBytes + panelBytes - 1) / panelBytes)
		if n < 2 {
			n = 2
		}
		if n > 16 {
			n = 16
		}
		if n > inst.Shape.Rows {
			n = inst.Shape.Rows
		}
		if n < 2 {
			out = append(out, inst)
			continue
		}
		splits++
		out = append(out, emitPanels(&inst, n, splits)...)
	}
	return out, splits
}

// emitPanels lowers one mm into its row-panel chain. Temp names use the
// reserved "_tsp<j>..." prefix: they share the runtime's "_t" temporary
// namespace (cleared at block end) without colliding with the compiler's
// numeric "_t<n>" temps.
func emitPanels(inst *compiler.Instruction, n, j int) []compiler.Instruction {
	a, b := inst.Inputs[0], inst.Inputs[1]
	aShape, bShape := inst.InShapes[0], inst.InShapes[1]
	rows, cols := inst.Shape.Rows, inst.Shape.Cols
	base, rem := rows/n, rows%n
	out := make([]compiler.Instruction, 0, 3*n)
	acc := ""
	accRows := 0
	start := 0
	for i := 0; i < n; i++ {
		r := base
		if i < rem {
			r++
		}
		sliceName := fmt.Sprintf("_tsp%ds%d", j, i)
		panelName := fmt.Sprintf("_tsp%dp%d", j, i)
		sliceShape := ir.Shape{Rows: r, Cols: aShape.Cols}
		panelShape := ir.Shape{Rows: r, Cols: cols}
		out = append(out, compiler.Instruction{
			Kind: compiler.KindOp, Op: "slice",
			Inputs: []string{a}, Outputs: []string{sliceName},
			Attrs: map[string]string{
				"r0": fmt.Sprint(start), "r1": fmt.Sprint(start + r),
				"c0": "0", "c1": "-1",
			},
			Backend:  core.BackendCP,
			Shape:    sliceShape,
			Flops:    costs.ElemwiseFlops(r*aShape.Cols, 1),
			InShapes: []ir.Shape{aShape},
		})
		out = append(out, compiler.Instruction{
			Kind: compiler.KindOp, Op: "mm",
			Inputs: []string{sliceName, b}, Outputs: []string{panelName},
			Backend:  core.BackendCP,
			Shape:    panelShape,
			Flops:    costs.MatMulFlops(r, aShape.Cols, bShape.Cols),
			InShapes: []ir.Shape{sliceShape, bShape},
		})
		if acc == "" {
			acc, accRows = panelName, r
		} else {
			name := fmt.Sprintf("_tsp%dr%d", j, i)
			if i == n-1 {
				name = inst.Output()
			}
			joined := ir.Shape{Rows: accRows + r, Cols: cols}
			out = append(out, compiler.Instruction{
				Kind: compiler.KindOp, Op: "rbind",
				Inputs: []string{acc, panelName}, Outputs: []string{name},
				Backend:  core.BackendCP,
				Shape:    joined,
				Flops:    costs.ElemwiseFlops(joined.Rows*joined.Cols, 1),
				InShapes: []ir.Shape{{Rows: accRows, Cols: cols}, panelShape},
			})
			acc, accRows = name, accRows+r
		}
		start += r
	}
	return out
}

// cacheFlips selects outputs whose cache-vs-recompute decision flips to
// recompute at compile time: panel-chain temporaries (single-use by
// construction, cheap to recompute from lineage) are always flipped, and
// when the plan still overruns the budget, so is any cacheable output
// larger than half the budget — caching one such object evicts half the
// cache, the classic thrash source on over-budget plans.
func cacheFlips(insts []compiler.Instruction, cfg Config, overBudget bool) map[string]bool {
	flips := make(map[string]bool)
	for i := range insts {
		inst := &insts[i]
		if inst.Kind != compiler.KindOp || !cacheableOp(inst.Op) {
			continue
		}
		name := inst.Outputs[0]
		switch {
		case strings.HasPrefix(name, "_tsp"):
			flips[name] = true
		case overBudget && inst.Backend == core.BackendCP && inst.Shape.Bytes() > cfg.Budget/2:
			flips[name] = true
		}
	}
	return flips
}

// insertFrees appends a KindFree after the last data use of every
// block-local temporary, releasing it deterministically instead of at
// block end. Only temporaries are freed: named outputs escape the block,
// and live-ins are owned by the surrounding scope.
func insertFrees(insts []compiler.Instruction, plan *Plan) ([]compiler.Instruction, int) {
	// lastUse[name] = position after which the temp is dead.
	lastUse := make(map[string]int)
	for _, iv := range plan.Intervals {
		if !iv.Temp || iv.Def < 0 {
			continue
		}
		pos := iv.Last
		if pos < iv.Def {
			pos = iv.Def
		}
		lastUse[iv.Name] = pos
	}
	if len(lastUse) == 0 {
		return insts, 0
	}
	freeAt := make(map[int][]string)
	for name, pos := range lastUse {
		freeAt[pos] = append(freeAt[pos], name)
	}
	for _, names := range freeAt {
		sort.Strings(names)
	}
	out := make([]compiler.Instruction, 0, len(insts)+len(lastUse))
	frees := 0
	for i := range insts {
		out = append(out, insts[i])
		for _, name := range freeAt[i] {
			out = append(out, compiler.Instruction{
				Kind: compiler.KindFree, Op: "free",
				Inputs: []string{name}, Outputs: []string{"_"},
				Backend: core.BackendCP,
			})
			frees++
		}
	}
	return out, frees
}

// summarizeCache fills the plan's cacheable-put summary: total bytes the
// stream will attempt to PUT into the CP cache (deduplicated by output
// name, skipping flipped and over-budget objects), the entry count, and
// the largest entry. The runtime predicts minimum evictions from these.
func summarizeCache(insts []compiler.Instruction, plan *Plan) {
	seen := make(map[string]bool)
	for i := range insts {
		inst := &insts[i]
		if inst.Kind != compiler.KindOp || !cacheableOp(inst.Op) ||
			inst.Backend != core.BackendCP {
			continue
		}
		name := inst.Outputs[0]
		if seen[name] || plan.noCache[name] {
			continue
		}
		b := inst.Shape.Bytes()
		if plan.Budget > 0 && b > plan.Budget {
			continue // the cache refuses objects larger than the budget
		}
		seen[name] = true
		plan.CacheBytes += b
		plan.CacheEntries++
		if b > plan.MaxCacheEntry {
			plan.MaxCacheEntry = b
		}
	}
}
