// Package memplan is MEMPHIS's compile-time memory planner: a static pass
// over the linearized instruction streams produced by compiler.CompileBlock
// (dynamic recompilation keeps streams straight-line, so loop bodies are
// analyzed as-executed-once per recompilation, with loop-carried variables
// appearing as block-external live-ins).
//
// The planner computes three artifacts per stream:
//
//  1. Liveness: first-use/last-use intervals per operand and a running
//     peak-memory profile, sized from the compiler's shape estimates.
//  2. Hints: a per-name lifetime classification (dead after the current
//     instruction / soon reused / unknown) that the runtime stamps onto
//     lineage-cache entries; internal/memctl's lifetime-grouped victim
//     selection consumes the stamps, with the hybrid Score as tiebreak.
//  3. Rewrites: when the profile's peak exceeds the budget, early-free
//     instructions are inserted at temporaries' last-use points, oversized
//     CP matmuls are split into row-panel chains (bounding the largest
//     single operand), and cache-vs-recompute decisions are flipped for
//     outputs too large to cache without thrashing.
//
// Planning is a pure function of the instruction stream and the budget:
// the same (stream, Config) always yields byte-identical plans, which the
// CI planner-determinism job asserts. Row-panel splitting preserves
// bitwise numeric results because the dense matmul kernel computes output
// rows independently (slicing A by rows, multiplying each panel by B, and
// rbinding the panels reproduces the unsplit product exactly).
package memplan

import (
	"fmt"
	"sort"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/memctl"
)

// Config parameterizes one planning pass.
type Config struct {
	// Budget is the target byte budget (normally the CP cache budget).
	// Rewrites fire only when the analyzed peak exceeds it; zero disables
	// rewrites and yields analysis plus hints only.
	Budget int64
	// Window is the soon-reuse protection distance in instructions
	// (default 8): a cached value read again within Window instructions is
	// classified LifeSoon.
	Window int
	// DisableRewrites keeps the stream untouched (liveness + hints only).
	DisableRewrites bool
	// EagerFrees inserts last-use frees even without a budget. The runtime
	// sets it when a buffer arena is attached: every planner free point is
	// an arena recycling opportunity, budget or not.
	EagerFrees bool
}

// DefaultWindow is the soon-reuse protection window when Config.Window
// is zero.
const DefaultWindow = 8

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return DefaultWindow
}

// Interval is one operand's live range over a stream. Positions are
// instruction indices; Def is -1 for block-external live-ins. End models
// actual residency: live-ins and escaping (non-temporary) definitions stay
// bound to block end, temporaries end at their free point (or block end
// when unfreed).
type Interval struct {
	Name  string `json:"name"`
	Def   int    `json:"def"`   // defining position, -1 = live-in
	First int    `json:"first"` // first appearance
	Last  int    `json:"last"`  // last data use (read)
	End   int    `json:"end"`   // residency end (free point or block end)
	Bytes int64  `json:"bytes"`
	Temp  bool   `json:"temp"`
	Uses  int    `json:"uses"` // data uses (reads), excluding frees
}

// Plan is the planner's artifact for one instruction stream: the liveness
// table, the memory profile, and the hint/rewrite summary (the
// memplan.Hints of the design — attached to the compiled program and
// consumed by the runtime and the memctl arbiter).
type Plan struct {
	// Insts is the stream length the plan describes (post-rewrite).
	Insts int `json:"instructions"`
	// Intervals is the liveness table, sorted by (First, Name).
	Intervals []Interval `json:"intervals"`
	// Profile[i] is the modeled resident bytes while instruction i runs.
	Profile []int64 `json:"profile"`
	// Peak is max(Profile); PeakAt its first position.
	Peak   int64 `json:"peak_bytes"`
	PeakAt int   `json:"peak_at"`
	// Budget echoes the planning budget (0 = unbounded).
	Budget int64 `json:"budget"`
	// Frees/Splits count inserted early-free instructions and row-panel
	// matmul splits; NoCache lists outputs flipped to recompute.
	Frees   int      `json:"frees"`
	Splits  int      `json:"splits"`
	NoCache []string `json:"no_cache,omitempty"`
	// CacheBytes is the total bytes of cacheable CP puts the stream will
	// attempt (deduplicated by name, NoCache and over-budget objects
	// excluded); MaxCacheEntry and CacheEntries describe their granularity.
	// The runtime combines these with live cache state to predict the
	// minimum evictions per run.
	CacheBytes    int64 `json:"cache_bytes"`
	MaxCacheEntry int64 `json:"max_cache_entry"`
	CacheEntries  int   `json:"cache_entries"`

	noCache map[string]bool
	reads   map[string][]int // ascending read positions per name
}

// isTemp reports whether a name is a block-local temporary (compiler
// temps "_t<n>" and planner panel temps "_tsp..."; both are cleared at
// block end by the runtime).
func isTemp(name string) bool { return strings.HasPrefix(name, "_t") }

// Analyze computes the liveness table and memory profile of a stream.
// Non-literal inputs are uses; outputs of ordinary operators are
// definitions, while prefetch/broadcast/checkpoint outputs rebind their
// input name and count as uses. A KindFree ends its operand's residency
// without counting as a data use.
func Analyze(insts []compiler.Instruction) *Plan {
	p := &Plan{
		Insts:   len(insts),
		noCache: make(map[string]bool),
		reads:   make(map[string][]int),
	}
	type info struct {
		def     int // -1 live-in
		first   int
		last    int // last read
		end     int // residency end
		bytes   int64
		uses    int
		freedAt int // -1 when not freed
	}
	seen := make(map[string]*info)
	order := make([]string, 0, len(insts))
	touch := func(name string, pos int, bytes int64) *info {
		in := seen[name]
		if in == nil {
			in = &info{def: -1, first: pos, last: -1, freedAt: -1}
			seen[name] = in
			order = append(order, name)
		}
		if bytes > in.bytes {
			in.bytes = bytes
		}
		return in
	}
	for i := range insts {
		inst := &insts[i]
		if inst.Kind == compiler.KindFree {
			if len(inst.Inputs) == 1 && !compiler.IsLiteral(inst.Inputs[0]) {
				in := touch(inst.Inputs[0], i, 0)
				in.freedAt = i
			}
			continue
		}
		for j, op := range inst.Inputs {
			if compiler.IsLiteral(op) {
				continue
			}
			var b int64
			if j < len(inst.InShapes) {
				b = inst.InShapes[j].Bytes()
			}
			in := touch(op, i, b)
			in.last = i
			in.uses++
			p.reads[op] = append(p.reads[op], i)
		}
		if inst.Kind == compiler.KindOp {
			for _, op := range inst.Outputs {
				if op == "_" || compiler.IsLiteral(op) {
					continue
				}
				in := touch(op, i, inst.Shape.Bytes())
				if in.def < 0 {
					in.def = i
				}
			}
		} else {
			// prefetch/broadcast/checkpoint rebind the same name: a use.
			for _, op := range inst.Outputs {
				if op == "_" || op == "" || compiler.IsLiteral(op) {
					continue
				}
				in := touch(op, i, 0)
				in.last = i
				in.uses++
				p.reads[op] = append(p.reads[op], i)
			}
		}
	}
	end := len(insts) - 1
	p.Intervals = make([]Interval, 0, len(order))
	for _, name := range order {
		in := seen[name]
		e := end
		if in.freedAt >= 0 {
			e = in.freedAt
		} else if in.def < 0 && in.last >= 0 {
			// Live-ins with no free stay bound beyond the block; model
			// them resident throughout.
			e = end
		}
		last := in.last
		if last < 0 {
			last = in.def
		}
		p.Intervals = append(p.Intervals, Interval{
			Name: name, Def: in.def, First: in.first, Last: last, End: e,
			Bytes: in.bytes, Temp: isTemp(name), Uses: in.uses,
		})
	}
	sort.Slice(p.Intervals, func(i, j int) bool {
		if p.Intervals[i].First != p.Intervals[j].First {
			return p.Intervals[i].First < p.Intervals[j].First
		}
		return p.Intervals[i].Name < p.Intervals[j].Name
	})
	p.computeProfile()
	return p
}

// computeProfile sweeps the intervals into a per-instruction resident-byte
// profile. An interval [start, End] contributes its bytes from its first
// appearance through its residency end inclusive.
func (p *Plan) computeProfile() {
	p.Profile = make([]int64, p.Insts)
	if p.Insts == 0 {
		return
	}
	delta := make([]int64, p.Insts+1)
	for _, iv := range p.Intervals {
		start := iv.First
		end := iv.End
		if end < start {
			end = start
		}
		delta[start] += iv.Bytes
		delta[end+1] -= iv.Bytes
	}
	var run int64
	for i := 0; i < p.Insts; i++ {
		run += delta[i]
		p.Profile[i] = run
		if run > p.Peak {
			p.Peak = run
			p.PeakAt = i
		}
	}
}

// NextUse returns the first read position of name strictly after pos, or
// -1 when the plan has no further read.
func (p *Plan) NextUse(name string, pos int) int {
	reads := p.reads[name]
	i := sort.SearchInts(reads, pos+1)
	if i < len(reads) {
		return reads[i]
	}
	return -1
}

// LifetimeAt classifies a name's liveness relative to position pos: dead
// when a temporary has no further read (non-temporaries escape the block,
// so they are never classified dead), soon when the next read is within
// the window, unknown otherwise. This is the hint the runtime stamps onto
// cache entries for lifetime-grouped victim selection.
func (p *Plan) LifetimeAt(name string, pos, window int) memctl.Lifetime {
	nu := p.NextUse(name, pos)
	if nu < 0 {
		if isTemp(name) {
			return memctl.LifeDead
		}
		return memctl.LifeUnknown
	}
	if nu-pos <= window {
		return memctl.LifeSoon
	}
	return memctl.LifeUnknown
}

// SkipCache reports whether the plan flipped the named output to
// recompute-from-lineage (no probe, no put).
func (p *Plan) SkipCache(name string) bool { return p.noCache[name] }

// Marshal renders the plan deterministically for byte-comparison (the
// planner-determinism CI job) and the -plan -json dump. Maps are
// serialized in sorted order; no timestamps or addresses appear.
func (p *Plan) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "insts=%d peak=%d@%d budget=%d frees=%d splits=%d cache=%d/%d max=%d\n",
		p.Insts, p.Peak, p.PeakAt, p.Budget, p.Frees, p.Splits,
		p.CacheBytes, p.CacheEntries, p.MaxCacheEntry)
	for _, iv := range p.Intervals {
		fmt.Fprintf(&b, "iv %s def=%d first=%d last=%d end=%d bytes=%d temp=%t uses=%d\n",
			iv.Name, iv.Def, iv.First, iv.Last, iv.End, iv.Bytes, iv.Temp, iv.Uses)
	}
	for _, n := range p.NoCache {
		fmt.Fprintf(&b, "nocache %s\n", n)
	}
	fmt.Fprintf(&b, "profile")
	for _, v := range p.Profile {
		fmt.Fprintf(&b, " %d", v)
	}
	b.WriteString("\n")
	return []byte(b.String())
}
