package memplan

import (
	"fmt"

	"memphis/internal/compiler"
)

// VerifyStream checks the free-safety invariants of a rewritten stream:
// no instruction reads an operand after its free (use-after-free), no
// operand is freed twice (double-free), no free names an operand the block
// never defined, and no freed name is redefined later (compiled streams
// give every definition a unique name, so a redefinition after free means
// the planner misplaced the free). Apply runs this on every plan; the
// InjectEvictions × early-free property tests run it over chaos and
// parallelism variations.
func VerifyStream(insts []compiler.Instruction) error {
	defined := make(map[string]bool)
	freed := make(map[string]int)
	for i := range insts {
		inst := &insts[i]
		if inst.Kind == compiler.KindFree {
			if len(inst.Inputs) != 1 {
				return fmt.Errorf("inst %d: free with %d operands", i, len(inst.Inputs))
			}
			name := inst.Inputs[0]
			if at, ok := freed[name]; ok {
				return fmt.Errorf("inst %d: double free of %q (first freed at %d)", i, name, at)
			}
			if !defined[name] {
				return fmt.Errorf("inst %d: free of %q which the block never defined", i, name)
			}
			freed[name] = i
			continue
		}
		for _, op := range inst.Inputs {
			if compiler.IsLiteral(op) {
				continue
			}
			if at, ok := freed[op]; ok {
				return fmt.Errorf("inst %d (%s): use of %q after free at %d", i, inst, op, at)
			}
		}
		for _, op := range inst.Outputs {
			if op == "_" || op == "" || compiler.IsLiteral(op) {
				continue
			}
			if at, ok := freed[op]; ok {
				return fmt.Errorf("inst %d (%s): redefinition of %q freed at %d", i, inst, op, at)
			}
			if inst.Kind == compiler.KindOp {
				defined[op] = true
			}
		}
	}
	return nil
}
