package datasets

import (
	"math"
	"testing"

	"memphis/internal/data"
)

func TestRegressionDeterministic(t *testing.T) {
	x1, y1 := Regression(50, 5, 7)
	x2, y2 := Regression(50, 5, 7)
	if !data.AllClose(x1, x2, 0) || !data.AllClose(y1, y2, 0) {
		t.Fatal("same seed must reproduce the dataset")
	}
	if x1.Rows != 50 || x1.Cols != 5 || y1.Rows != 50 || y1.Cols != 1 {
		t.Fatal("wrong dims")
	}
}

func TestClassificationBalance(t *testing.T) {
	_, y := Classification(1000, 10, 0.3, 3)
	pos := data.Sum(y)
	if pos < 250 || pos > 350 {
		t.Fatalf("positives = %g, want ~300", pos)
	}
}

func TestMovieLensSparsity(t *testing.T) {
	m := MovieLens(200, 500, 5)
	nnz := 0
	for _, v := range m.Data {
		if v != 0 {
			nnz++
			if v < 1 || v > 5 {
				t.Fatalf("rating %g out of range", v)
			}
		}
	}
	frac := float64(nnz) / float64(m.Cells())
	if frac > 0.02 {
		t.Fatalf("sparsity %g, want <= 0.02 (MovieLens-like)", frac)
	}
}

func TestAPSMissingAndImbalance(t *testing.T) {
	x, y := APS(5000, 20, 9)
	missFrac := float64(data.CountNaN(x)) / float64(x.Cells())
	if missFrac < 0.003 || missFrac > 0.01 {
		t.Fatalf("missing rate = %g, want ~0.006", missFrac)
	}
	posFrac := data.Sum(y) / float64(y.Rows)
	if posFrac < 0.005 || posFrac > 0.04 {
		t.Fatalf("positive rate = %g, want ~0.017", posFrac)
	}
}

func TestKDD98CategoricalCodes(t *testing.T) {
	x, y := KDD98(500, 10, 4, 11)
	for j := 0; j < 4; j++ {
		for i := 0; i < x.Rows; i++ {
			v := x.At(i, j)
			if v != math.Trunc(v) || v < 1 || v > 12 {
				t.Fatalf("cat col %d has non-code value %g", j, v)
			}
		}
	}
	if y.Rows != 500 {
		t.Fatal("bad target")
	}
}

func TestWMT14ZipfDuplicates(t *testing.T) {
	ids, emb := WMT14Words(2000, 500, 16, 13)
	if emb.Rows != 500 || emb.Cols != 16 {
		t.Fatal("bad embeddings")
	}
	seen := make(map[int]bool)
	dups := 0
	for _, id := range ids {
		if id < 0 || id >= 500 {
			t.Fatalf("word id %d out of vocab", id)
		}
		if seen[id] {
			dups++
		}
		seen[id] = true
	}
	// Zipf text repeats heavily: well over half the tokens are repeats.
	if float64(dups)/float64(len(ids)) < 0.5 {
		t.Fatalf("duplicate rate %g too low for Zipf text", float64(dups)/float64(len(ids)))
	}
}

func TestImagesDuplicateRate(t *testing.T) {
	imgs := Images(400, 1, 4, 4, 0.4, 17)
	rate := DuplicateRate(imgs)
	if rate < 0.25 || rate > 0.55 {
		t.Fatalf("duplicate rate = %g, want ~0.4", rate)
	}
	none := Images(400, 1, 4, 4, 0, 18)
	if DuplicateRate(none) != 0 {
		t.Fatal("dupFrac=0 must yield unique images")
	}
}
