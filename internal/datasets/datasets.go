// Package datasets provides seeded synthetic generators standing in for the
// paper's evaluation datasets (Table 3). Lineage-based reuse is largely
// independent of data skew (§6.3); what the experiments depend on is shape,
// missing-value rate, categorical cardinality, and duplicate rate, which
// these generators reproduce at simulation scale.
package datasets

import (
	"math"
	"math/rand"

	"memphis/internal/data"
)

// Regression returns a dense feature matrix and responses y = X w + noise,
// standing in for the paper's synthetic HCV/HBAND inputs.
func Regression(rows, cols int, seed int64) (x, y *data.Matrix) {
	x = data.RandNorm(rows, cols, 0, 1, seed)
	w := data.RandNorm(cols, 1, 0, 1, seed+1)
	noise := data.RandNorm(rows, 1, 0, 0.1, seed+2)
	y = data.Add(data.MatMul(x, w), noise)
	return x, y
}

// Classification returns features and labels in {0,1} with the given
// positive fraction, linearly separable up to noise.
func Classification(rows, cols int, posFrac float64, seed int64) (x, y *data.Matrix) {
	x = data.RandNorm(rows, cols, 0, 1, seed)
	w := data.RandNorm(cols, 1, 0, 1, seed+1)
	scores := data.MatMul(x, w)
	// Threshold at the quantile that yields posFrac positives.
	sorted := append([]float64(nil), scores.Data...)
	quickSelectSort(sorted)
	thresh := sorted[int(float64(len(sorted))*(1-posFrac))]
	y = data.Map(scores, func(v float64) float64 {
		if v > thresh {
			return 1
		}
		return 0
	})
	return x, y
}

func quickSelectSort(v []float64) {
	// Small n; a simple sort suffices.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// MovieLens returns an integer-encoded ratings matrix (users x movies)
// mirroring MovieLens 20M's sparsity (~0.5% rated, ratings 1..5).
func MovieLens(users, movies int, seed int64) *data.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := data.New(users, movies)
	perUser := int(math.Max(1, 0.005*float64(movies)))
	for u := 0; u < users; u++ {
		for k := 0; k < perUser; k++ {
			j := rng.Intn(movies)
			m.Set(u, j, float64(1+rng.Intn(5)))
		}
	}
	return m
}

// APS returns a SCANIA-like failure classification set: rows x cols
// features with 0.6% missing values and a heavily imbalanced binary label
// (~1.7% positives, like APS failures).
func APS(rows, cols int, seed int64) (x, y *data.Matrix) {
	x = data.RandNorm(rows, cols, 10, 5, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range x.Data {
		if rng.Float64() < 0.006 {
			x.Data[i] = math.NaN()
		}
	}
	// Inject outliers (~0.5% of cells) so outlier removal has work to do.
	for i := range x.Data {
		if rng.Float64() < 0.005 && !math.IsNaN(x.Data[i]) {
			x.Data[i] *= 50
		}
	}
	y = data.New(rows, 1)
	nPos := int(0.017 * float64(rows))
	if nPos < 2 {
		nPos = 2
	}
	for _, i := range rng.Perm(rows)[:nPos] {
		y.Data[i] = 1
	}
	return x, y
}

// KDD98 returns a donation-regression-like set: the first catCols columns
// are categorical codes (cardinalities 2..12), the rest numeric; the target
// is a noisy linear mix.
func KDD98(rows, cols, catCols int, seed int64) (x, y *data.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	x = data.New(rows, cols)
	for j := 0; j < cols; j++ {
		if j < catCols {
			card := 2 + rng.Intn(11)
			for i := 0; i < rows; i++ {
				x.Set(i, j, float64(1+rng.Intn(card)))
			}
		} else {
			for i := 0; i < rows; i++ {
				x.Set(i, j, rng.NormFloat64()*3+5)
			}
		}
	}
	w := data.RandNorm(cols, 1, 0, 0.5, seed+1)
	y = data.Add(data.MatMul(x, w), data.RandNorm(rows, 1, 0, 1, seed+2))
	return x, y
}

// WMT14Words returns a word-ID sequence of the given length drawn from a
// Zipf distribution over vocab, mirroring natural-language duplicate rates
// (the EN2DE prediction-caching opportunity), plus dense word embeddings.
func WMT14Words(length, vocab, dim int, seed int64) (ids []int, embeddings *data.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(vocab-1))
	ids = make([]int, length)
	for i := range ids {
		ids[i] = int(zipf.Uint64())
	}
	embeddings = data.RandNorm(vocab, dim, 0, 1, seed+1)
	return ids, embeddings
}

// Images returns n flattened c*h*w images where dupFrac of them are exact
// duplicates of earlier images (pixel-identified duplicates, Figure 12(b)).
func Images(n, c, h, w int, dupFrac float64, seed int64) *data.Matrix {
	rng := rand.New(rand.NewSource(seed))
	dim := c * h * w
	out := data.New(n, dim)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < dupFrac {
			src := rng.Intn(i)
			copy(out.Data[i*dim:(i+1)*dim], out.Data[src*dim:(src+1)*dim])
			continue
		}
		for j := 0; j < dim; j++ {
			out.Data[i*dim+j] = rng.Float64()
		}
	}
	return out
}

// DuplicateRate reports the fraction of rows that repeat an earlier row
// (used by tests to validate generators).
func DuplicateRate(m *data.Matrix) float64 {
	seen := make(map[string]bool, m.Rows)
	dups := 0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		key := ""
		for _, v := range row[:min(8, len(row))] {
			key += string(rune(int(v*1e6) % 1114111))
		}
		if seen[key] {
			dups++
		}
		seen[key] = true
	}
	return float64(dups) / float64(m.Rows)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
