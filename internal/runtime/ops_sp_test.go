package runtime

import (
	"math"
	"testing"

	"memphis/internal/data"
	"memphis/internal/ir"
)

// runSPOp executes a single-op program twice — once with everything local
// and once with a tiny operation memory that forces Spark placement — and
// checks the results match. This covers every distributed physical
// operator in ops_sp.go against its local ground truth.
func runSPOp(t *testing.T, build func(x *ir.Node) *ir.Node, m *data.Matrix) {
	t.Helper()
	results := make([]*data.Matrix, 2)
	for i, opMem := range []int64{1 << 30, 1 << 10} {
		conf := testConfig(ReuseNone)
		conf.Compiler.OpMemBudget = opMem
		ctx := New(conf)
		ctx.BindHost("X", m)
		p := ir.NewProgram()
		p.Main = []ir.Block{ir.BB(ir.Assign("out", build(ir.Var("X"))))}
		if err := ctx.RunProgram(p); err != nil {
			t.Fatalf("opMem=%d: %v", opMem, err)
		}
		if i == 1 && ctx.Stats.SPInsts == 0 {
			t.Fatalf("small budget did not produce Spark instructions")
		}
		results[i] = ctx.ensureHost(ctx.Var("out"))
	}
	if !data.AllClose(results[0], results[1], 1e-8) {
		t.Fatalf("distributed result differs from local:\n local %v\n spark %v",
			results[0], results[1])
	}
}

func TestSPOperatorsMatchLocal(t *testing.T) {
	x := data.RandNorm(60, 6, 2, 1, 31)
	cases := map[string]func(x *ir.Node) *ir.Node{
		"tsmm":     func(x *ir.Node) *ir.Node { return ir.TSMM(x) },
		"exp":      ir.Exp,
		"relu":     ir.ReLU,
		"sigmoid":  ir.Sigmoid,
		"abs":      ir.Abs,
		"sqrt":     func(x *ir.Node) *ir.Node { return ir.Sqrt(ir.Abs(x)) },
		"pow":      func(x *ir.Node) *ir.Node { return ir.Pow(x, 2) },
		"rowSums":  ir.RowSums,
		"colSums":  ir.ColSums,
		"colMeans": ir.ColMeans,
		"colVars":  ir.ColVars,
		"colMins":  ir.ColMins,
		"colMaxs":  ir.ColMaxs,
		"sum":      ir.Sum,
		"mean":     ir.Mean,
		"scale":    ir.Scale,
		"minmax":   ir.MinMax,
		"add-scalar": func(x *ir.Node) *ir.Node {
			return ir.Add(x, ir.Lit(3))
		},
		"mul-self": func(x *ir.Node) *ir.Node {
			return ir.Mul(x, x)
		},
		"sub-colvec": func(x *ir.Node) *ir.Node {
			return ir.Sub(x, ir.ColMeans(x))
		},
		"cpmm": func(x *ir.Node) *ir.Node {
			return ir.MatMul(ir.T(ir.Mul(x, ir.Lit(2))), ir.Add(x, ir.Lit(1)))
		},
		"mapmm": func(x *ir.Node) *ir.Node {
			return ir.MatMul(x, ir.TSMM(x))
		},
	}
	for name, build := range cases {
		build := build
		t.Run(name, func(t *testing.T) { runSPOp(t, build, x) })
	}
}

func TestSPImputeMeanMatchesLocal(t *testing.T) {
	x := data.RandNorm(60, 6, 2, 1, 33)
	x.Set(5, 2, math.NaN())
	x.Set(17, 0, math.NaN())
	runSPOp(t, func(x *ir.Node) *ir.Node { return ir.ImputeMean(x) }, x)
}

func TestSPVecMM(t *testing.T) {
	// v^T X with a row vector left operand exercises the VecMM path.
	conf := testConfig(ReuseNone)
	conf.Compiler.OpMemBudget = 1 << 10
	ctx := New(conf)
	x := data.RandNorm(60, 6, 0, 1, 35)
	y := data.RandNorm(60, 1, 0, 1, 36)
	ctx.BindHost("X", x)
	ctx.BindHost("y", y)
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(ir.Assign("b", ir.MatMul(ir.T(ir.Var("y")), ir.Var("X"))))}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	want := data.MatMul(data.Transpose(y), x)
	if !data.AllClose(ctx.ensureHost(ctx.Var("b")), want, 1e-9) {
		t.Fatal("VecMM wrong")
	}
}

func TestSPLeftMM(t *testing.T) {
	// A small multi-row left operand against a distributed right exercises
	// the LeftMM broadcast path (PNMF's t(W) Q).
	conf := testConfig(ReuseNone)
	conf.Compiler.OpMemBudget = 2 << 10
	ctx := New(conf)
	a := data.RandNorm(4, 60, 0, 1, 37) // small, host
	x := data.RandNorm(60, 8, 0, 1, 38) // forced distributed
	ctx.BindHost("A", a)
	ctx.BindHost("X", x)
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(ir.Assign("out", ir.MatMul(ir.Var("A"), ir.Var("X"))))}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.SPInsts == 0 {
		t.Fatal("expected Spark placement")
	}
	if !data.AllClose(ctx.ensureHost(ctx.Var("out")), data.MatMul(a, x), 1e-9) {
		t.Fatal("LeftMM wrong")
	}
}

func TestSPElementwiseZipSameParts(t *testing.T) {
	conf := testConfig(ReuseNone)
	conf.Compiler.OpMemBudget = 1 << 10
	ctx := New(conf)
	a := data.RandNorm(60, 6, 0, 1, 39)
	ctx.BindHost("A", a)
	p := ir.NewProgram()
	// Two co-partitioned distributed operands -> zip path.
	p.Main = []ir.Block{ir.BB(
		ir.Assign("e", ir.Exp(ir.Var("A"))),
		ir.Assign("r", ir.ReLU(ir.Var("A"))),
		ir.Assign("out", ir.Div(ir.Var("e"), ir.Add(ir.Var("r"), ir.Lit(1)))),
	)}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	want := data.Div(data.Exp(a), data.AddScalar(data.ReLU(a), 1))
	if !data.AllClose(ctx.ensureHost(ctx.Var("out")), want, 1e-9) {
		t.Fatal("zip elementwise wrong")
	}
}
