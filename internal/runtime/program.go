package runtime

import (
	"errors"
	"fmt"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/ir"
	"memphis/internal/lineage"
	"memphis/internal/memplan"
	"memphis/internal/spark"
)

// RunProgram interprets a program: every basic block is dynamically
// recompiled against the current variable sizes, then executed instruction
// by instruction through the reuse path.
//
// A Spark stage abort (a task exceeding its attempt limit under fault
// injection) unwinds the RDD evaluation as an ErrStageAbort panic; it is
// converted to an error here so callers — the serve layer's retry loop in
// particular — see a failed program run, not a crashed process. All other
// panics propagate.
func (ctx *Context) RunProgram(p *ir.Program) (err error) {
	if ctx.closed {
		return fmt.Errorf("runtime: context is closed")
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, spark.ErrStageAbort) {
				err = e
				return
			}
			panic(r)
		}
	}()
	ctx.prog = p
	return ctx.runBlocks(p.Main)
}

func (ctx *Context) runBlocks(blocks []ir.Block) error {
	for _, b := range blocks {
		switch t := b.(type) {
		case *ir.BasicBlock:
			if err := ctx.runBasicBlock(t); err != nil {
				return err
			}
		case *ir.ForBlock:
			for _, val := range t.Values {
				ctx.bindLoopVar(t.Var, val)
				if err := ctx.runBlocks(t.Body); err != nil {
					return err
				}
			}
		case *ir.WhileBlock:
			maxIter := t.MaxIter
			if maxIter <= 0 {
				maxIter = 1000
			}
			for it := 0; it < maxIter; it++ {
				c, err := ctx.evalScalar(t.Cond)
				if err != nil {
					return err
				}
				if c == 0 {
					break
				}
				if err := ctx.runBlocks(t.Body); err != nil {
					return err
				}
			}
		case *ir.IfBlock:
			c, err := ctx.evalScalar(t.Cond)
			if err != nil {
				return err
			}
			if c != 0 {
				if err := ctx.runBlocks(t.Then); err != nil {
					return err
				}
			} else if err := ctx.runBlocks(t.Else); err != nil {
				return err
			}
		case *ir.EvictBlock:
			ctx.Stats.Evicts++
			ctx.Cache.EvictGPUPercent(t.Fraction)
		default:
			return fmt.Errorf("runtime: unknown block type %T", b)
		}
	}
	return nil
}

// runBasicBlock recompiles and executes one basic block, applying the
// block-header reuse parameters (§5.2) and clearing temporaries afterwards.
// With a memory planner configured, the compiled stream is planned first:
// the (possibly rewritten) stream executes under the plan, lifetime hints
// are stamped per position, and measured evictions are attributed back to
// the stream's record. Plan state is saved and restored around the block
// because function calls and scalar-condition evaluation recurse here.
func (ctx *Context) runBasicBlock(bb *ir.BasicBlock) error {
	var insts []compiler.Instruction
	var cb *CompiledBlock
	if ctx.compCache != nil {
		cb = ctx.compiledBlock(bb)
		insts = cb.Insts
	} else {
		insts = compiler.CompileBlock(bb, ctx.shapes(), ctx.Conf.Compiler)
	}
	savedPlan, savedPos := ctx.activePlan, ctx.planPos
	var rec *planRecord
	var evictBefore int64
	if ctx.Conf.MemPlan != nil {
		var plan *memplan.Plan
		if cb != nil {
			plan, insts, rec = ctx.planBlockPre(cb)
		} else {
			plan, insts, rec = ctx.planBlock(insts)
		}
		ctx.activePlan = plan
		ctx.planPos = 0
		ctx.Cache.BeginPlanEpoch()
		ctx.Stats.PlanBlocks++
		ctx.predictEvictions(rec)
		evictBefore = ctx.Cache.Stats.EvictionsCP
	} else if cb != nil {
		insts = cb.Planned
	}
	prevDelay, prevLevel := ctx.delayFactor, ctx.storageLevel
	ctx.delayFactor = bb.DelayFactor
	switch bb.StorageLevel {
	case "MEMORY":
		ctx.storageLevel = spark.StorageMemory
	case "MEMORY_AND_DISK":
		ctx.storageLevel = spark.StorageMemoryAndDisk
	default:
		ctx.storageLevel = spark.StorageMemory
	}
	var err error
	for i := range insts {
		if rec != nil {
			ctx.planPos = i
		}
		if err = ctx.Execute(&insts[i]); err != nil {
			break
		}
		if rec != nil {
			// Restore the position in case a call/condition recursed and
			// planned a nested stream, then track the live-byte peak.
			// Sampling walks every bound variable, so it runs only at the
			// planner-predicted peak, every 32 instructions, and at block
			// end — not after every instruction.
			ctx.activePlan, ctx.planPos = rec.plan, i
			if i == rec.plan.PeakAt || i == len(insts)-1 || i%32 == 31 {
				if lv := ctx.sampleLive(); lv > rec.peakLiveBytes {
					rec.peakLiveBytes = lv
				}
			}
		}
	}
	ctx.clearTemps()
	ctx.recalibrate()
	ctx.delayFactor, ctx.storageLevel = prevDelay, prevLevel
	if rec != nil {
		rec.runs++
		rec.evictions += ctx.Cache.Stats.EvictionsCP - evictBefore
	}
	ctx.activePlan, ctx.planPos = savedPlan, savedPos
	return err
}

// bindLoopVar binds the loop variable as a literal scalar: its lineage is a
// value-carrying leaf, so loop-dependent operations have iteration-specific
// lineage (not reusable) while loop-independent ones reuse across
// iterations.
func (ctx *Context) bindLoopVar(name string, val float64) {
	ctx.setVar(name, NewScalar(val))
	if ctx.tracing() {
		ctx.LMap.TraceItem(name, lineage.NewLeaf("lit", fmt.Sprint(val)))
	}
}

// evalScalar evaluates a scalar condition expression.
func (ctx *Context) evalScalar(cond *ir.Node) (float64, error) {
	bb := ir.BB(ir.Assign("_cond", cond))
	if err := ctx.runBasicBlock(bb); err != nil {
		return 0, err
	}
	v := ctx.vars["_cond"]
	if v == nil {
		return 0, fmt.Errorf("runtime: condition produced no value")
	}
	res := ctx.ensureHost(v).ScalarValue()
	ctx.removeVar("_cond")
	return res, nil
}

// execCall invokes a function with multi-level (function output) reuse:
// outputs of deterministic functions called with identical inputs are
// reused as a whole, even across backends (§3.3).
func (ctx *Context) execCall(inst *compiler.Instruction) error {
	ctx.Stats.FuncCalls++
	fnName := inst.Attr("fn")
	fn := ctx.prog.Funcs[fnName]
	if fn == nil {
		return fmt.Errorf("runtime: undefined function %q", fnName)
	}
	if len(inst.Inputs) != len(fn.Params) {
		return fmt.Errorf("runtime: %s expects %d args, got %d", fnName, len(fn.Params), len(inst.Inputs))
	}
	if len(inst.Outputs) != len(fn.Returns) {
		return fmt.Errorf("runtime: %s returns %d values, got %d targets", fnName, len(fn.Returns), len(inst.Outputs))
	}
	args := make([]*Value, len(inst.Inputs))
	argLis := make([]*lineage.Item, len(inst.Inputs))
	for i, in := range inst.Inputs {
		v, err := ctx.operand(in)
		if err != nil {
			return err
		}
		args[i] = v
		if ctx.tracing() {
			if compiler.IsLiteral(in) {
				argLis[i] = lineage.NewLeaf("lit", compiler.LiteralValue(in))
			} else {
				argLis[i] = ctx.LMap.GetOrLeaf(in)
			}
		}
	}
	multiLevel := ctx.tracing() && fn.Deterministic && ctx.multiLevelReuse(fnName)
	var outKeys []*lineage.Item
	if multiLevel {
		outKeys = make([]*lineage.Item, len(fn.Returns))
		for i, ret := range fn.Returns {
			outKeys[i] = lineage.NewItem("fnout", fnName+"#"+ret, argLis...)
		}
		// Probe all outputs; reuse only if the whole call is covered. On a
		// local miss the shared level (serving layer) is consulted and a
		// hit is installed locally, so whole calls reuse across tenants.
		vals := make([]*Value, len(outKeys))
		allHit := true
		for i, key := range outKeys {
			if e, hit := ctx.Cache.Probe(key); hit {
				if v := ctx.valueFromEntry(e); v != nil {
					vals[i] = v
					continue
				}
			}
			if m, computeCost, ok := ctx.shareProbe(key); ok {
				ctx.Cache.PutCP(key, m, computeCost, 1, false, true)
				v := NewHostValue(m)
				vals[i] = v
				continue
			}
			allHit = false
			break
		}
		if allHit {
			ctx.Stats.FuncReuses++
			for i, key := range outKeys {
				// Bind the fine-grained alias lineage when recorded so
				// downstream operations key consistently across hit and
				// miss paths, and the value stays recomputable.
				lin := key
				if e := ctx.Cache.Lookup(key); e != nil && e.Alias != nil {
					lin = e.Alias
				}
				vals[i].Lin = lin
				ctx.setVar(inst.Outputs[i], vals[i])
				ctx.LMap.TraceItem(inst.Outputs[i], lin)
			}
			return nil
		}
	}
	// Execute the body in a fresh scope.
	start := ctx.Clock.Now()
	savedVars := ctx.vars
	savedLMap := ctx.LMap.Snapshot()
	ctx.vars = make(map[string]*Value, len(fn.Params))
	for i, p := range fn.Params {
		if args[i].HasGPU() && ctx.GM != nil {
			ctx.GM.Retain(args[i].GPU)
		}
		ctx.vars[p] = args[i]
		if ctx.tracing() {
			ctx.LMap.TraceItem(p, argLis[i])
		}
	}
	runErr := ctx.runBlocks(fn.Body)
	outs := make([]*Value, len(fn.Returns))
	outLis := make([]*lineage.Item, len(fn.Returns))
	if runErr == nil {
		for i, ret := range fn.Returns {
			outs[i] = ctx.vars[ret]
			if outs[i] == nil {
				runErr = fmt.Errorf("runtime: %s did not assign return %q", fnName, ret)
				break
			}
			outLis[i] = ctx.LMap.Get(ret)
			if outs[i].HasGPU() && ctx.GM != nil {
				ctx.GM.Retain(outs[i].GPU) // caller's reference
			}
		}
	}
	// Tear down the function scope.
	for name := range ctx.vars {
		if v := ctx.vars[name]; v.HasGPU() && ctx.GM != nil {
			ctx.GM.Release(v.GPU)
		}
	}
	ctx.vars = savedVars
	ctx.LMap.Restore(savedLMap)
	if runErr != nil {
		return runErr
	}
	elapsed := ctx.Clock.Now() - start
	for i, target := range inst.Outputs {
		lin := outLis[i]
		if lin == nil && multiLevel {
			lin = outKeys[i]
		}
		outs[i].Lin = lin
		ctx.setVar(target, outs[i])
		if ctx.tracing() && lin != nil {
			ctx.LMap.TraceItem(target, lin)
		}
	}
	if multiLevel {
		cost := elapsed / float64(len(outs))
		for i, v := range outs {
			var e *core.Entry
			switch {
			case v.RDD != nil && v.M == nil:
				e = ctx.Cache.PutRDD(outKeys[i], v.RDD, v.children, v.bcasts, cost, 1, ctx.storageLevel)
			case v.M != nil:
				if ctx.arena != nil {
					ctx.arena.Escape(v.M)
				}
				e = ctx.Cache.PutCP(outKeys[i], v.M, cost, 1, false, true)
				ctx.sharePublish(outKeys[i], v.M, cost)
			case v.HasGPU():
				e = ctx.Cache.PutGPU(outKeys[i], v.GPU, cost, 1)
			}
			if e != nil {
				e.Alias = outLis[i]
			}
		}
	}
	return nil
}
