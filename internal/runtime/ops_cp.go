package runtime

import (
	"errors"
	"fmt"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/gpu"
	"memphis/internal/ir"
)

// execOp dispatches an instruction to its backend. A GPU instruction that
// cannot allocate device memory falls back to local execution, mirroring
// frameworks that degrade to CPU under device OOM.
func (ctx *Context) execOp(inst *compiler.Instruction) (*Value, error) {
	switch inst.Backend {
	case core.BackendSpark:
		ctx.Stats.SPInsts++
		return ctx.execSP(inst)
	case core.BackendGPU:
		ctx.Stats.GPUInsts++
		v, err := ctx.execGPU(inst)
		if errors.Is(err, gpu.ErrOOM) {
			ctx.Stats.GPUFallbacks++
			return ctx.execCP(inst)
		}
		return v, err
	default:
		ctx.Stats.CPInsts++
		return ctx.execCP(inst)
	}
}

// hostIn fetches operand i as a host matrix.
func (ctx *Context) hostIn(inst *compiler.Instruction, i int) (*data.Matrix, error) {
	v, err := ctx.operand(inst.Inputs[i])
	if err != nil {
		return nil, err
	}
	return ctx.ensureHost(v), nil
}

// binFunc maps elementwise opcodes to data kernels.
func binFunc(op string) func(a, b *data.Matrix) *data.Matrix {
	switch op {
	case "+":
		return data.Add
	case "-":
		return data.Sub
	case "*":
		return data.Mul
	case "/":
		return data.Div
	case "min":
		return data.MinElem
	case "max":
		return data.MaxElem
	case ">":
		return data.Greater
	case "<":
		return data.Less
	default:
		return nil
	}
}

// unaryFunc maps unary opcodes to data kernels; attrs supply parameters.
func unaryFunc(inst *compiler.Instruction) func(a *data.Matrix) *data.Matrix {
	switch inst.Op {
	case "exp":
		return data.Exp
	case "log":
		return data.Log
	case "sqrt":
		return data.Sqrt
	case "abs":
		return data.Abs
	case "sigmoid":
		return data.Sigmoid
	case "relu":
		return data.ReLU
	case "softmax":
		return data.Softmax
	case "pow":
		p := attrFloat(inst, "p", 2)
		return func(a *data.Matrix) *data.Matrix { return data.PowScalar(a, p) }
	case "replaceNaN":
		v := attrFloat(inst, "value", 0)
		return func(a *data.Matrix) *data.Matrix { return data.ReplaceNaN(a, v) }
	case "imputeMean":
		return data.ImputeByMean
	case "imputeMode":
		return data.ImputeByMode
	case "outlierIQR":
		return data.OutlierByIQR
	case "scale":
		return data.Standardize
	case "minmax":
		return data.MinMaxScale
	case "recode":
		return data.Recode
	case "onehot":
		return data.OneHot
	default:
		return nil
	}
}

func attrFloat(inst *compiler.Instruction, k string, def float64) float64 {
	if s := inst.Attr(k); s != "" {
		var f float64
		if _, err := fmt.Sscanf(s, "%g", &f); err == nil {
			return f
		}
	}
	return def
}

func attrInt(inst *compiler.Instruction, k string, def int) int {
	if s := inst.Attr(k); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil {
			return n
		}
	}
	return def
}

// execCP runs an instruction on the local backend, charging compute from
// the estimated FLOPs.
func (ctx *Context) execCP(inst *compiler.Instruction) (*Value, error) {
	ctx.Clock.Advance(costs.Compute(inst.Flops, ctx.Model.CPUFlops))
	out, err := ctx.evalCP(inst)
	if err != nil {
		return nil, err
	}
	return NewHostValue(out), nil
}

// evalCP computes the instruction's value with local kernels.
func (ctx *Context) evalCP(inst *compiler.Instruction) (*data.Matrix, error) {
	in := func(i int) (*data.Matrix, error) { return ctx.hostIn(inst, i) }
	switch inst.Op {
	case "rand":
		return data.Rand(attrInt(inst, "rows", 1), attrInt(inst, "cols", 1),
			attrFloat(inst, "min", 0), attrFloat(inst, "max", 1),
			attrFloat(inst, "sparsity", 1), int64(attrInt(inst, "seed", 0))), nil
	case "randn":
		return data.RandNorm(attrInt(inst, "rows", 1), attrInt(inst, "cols", 1),
			attrFloat(inst, "mu", 0), attrFloat(inst, "sd", 1),
			int64(attrInt(inst, "seed", 0))), nil
	case "t":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.Transpose(a), nil
	case "mm":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		b, err := in(1)
		if err != nil {
			return nil, err
		}
		return data.MatMul(a, b), nil
	case "cpmm":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		b, err := in(1)
		if err != nil {
			return nil, err
		}
		return data.MatMul(data.Transpose(a), b), nil
	case "tsmm":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.TSMM(a), nil
	case "solve":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		b, err := in(1)
		if err != nil {
			return nil, err
		}
		return data.Solve(a, b), nil
	case ir.FusedOp:
		return ctx.evalFused(inst)
	case "+", "-", "*", "/", "min", "max", ">", "<":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		b, err := in(1)
		if err != nil {
			return nil, err
		}
		return binFunc(inst.Op)(a, b), nil
	case "sum":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.Scalar(data.Sum(a)), nil
	case "mean":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.Scalar(data.Mean(a)), nil
	case "rowSums":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.RowSums(a), nil
	case "colSums":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.ColSums(a), nil
	case "colMeans":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.ColMeans(a), nil
	case "colVars":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.ColVars(a), nil
	case "colMins":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.ColMins(a), nil
	case "colMaxs":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.ColMaxs(a), nil
	case "rowMaxIdx":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.RowMaxIndex(a), nil
	case "nrow":
		v, err := ctx.operand(inst.Inputs[0])
		if err != nil {
			return nil, err
		}
		return data.Scalar(float64(v.Rows)), nil
	case "ncol":
		v, err := ctx.operand(inst.Inputs[0])
		if err != nil {
			return nil, err
		}
		return data.Scalar(float64(v.Cols)), nil
	case "cbind":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		b, err := in(1)
		if err != nil {
			return nil, err
		}
		return data.CBind(a, b), nil
	case "rbind":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		b, err := in(1)
		if err != nil {
			return nil, err
		}
		return data.RBind(a, b), nil
	case "diag":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.Diag(a), nil
	case "slice":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		r0, r1 := attrInt(inst, "r0", 0), attrInt(inst, "r1", -1)
		c0, c1 := attrInt(inst, "c0", 0), attrInt(inst, "c1", -1)
		if r1 < 0 {
			r1 = a.Rows
		}
		if c1 < 0 {
			c1 = a.Cols
		}
		return a.Slice(r0, r1, c0, c1), nil
	case "sliceRows":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		lo, err := in(1)
		if err != nil {
			return nil, err
		}
		start := int(lo.ScalarValue())
		n := attrInt(inst, "n", 1)
		if start+n > a.Rows {
			n = a.Rows - start
		}
		return a.SliceRows(start, start+n), nil
	case "dropout":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.Dropout(a, attrFloat(inst, "p", 0.5), int64(attrInt(inst, "seed", 0))), nil
	case "dropoutv":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		p, err := in(1)
		if err != nil {
			return nil, err
		}
		return data.Dropout(a, p.ScalarValue(), int64(attrInt(inst, "seed", 0))), nil
	case "conv2d":
		x, err := in(0)
		if err != nil {
			return nil, err
		}
		w, err := in(1)
		if err != nil {
			return nil, err
		}
		return data.Conv2D(x, w, attrInt(inst, "cin", 1), attrInt(inst, "h", 1),
			attrInt(inst, "w", 1), attrInt(inst, "kh", 1), attrInt(inst, "kw", 1),
			attrInt(inst, "stride", 1), attrInt(inst, "pad", 0)), nil
	case "maxpool":
		x, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.MaxPool(x, attrInt(inst, "c", 1), attrInt(inst, "h", 1),
			attrInt(inst, "w", 1), attrInt(inst, "ph", 1), attrInt(inst, "pw", 1),
			attrInt(inst, "stride", 1)), nil
	case "bin":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.Bin(a, attrInt(inst, "bins", 10)), nil
	case "onehotf":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		return data.OneHotFixed(a, attrInt(inst, "domain", 10)), nil
	case "pca":
		a, err := in(0)
		if err != nil {
			return nil, err
		}
		comps := data.PCA(a, attrInt(inst, "k", 2), int64(attrInt(inst, "seed", 0)))
		return data.MatMul(a, comps), nil
	case "cleanPCASplit":
		xy, err := in(0)
		if err != nil {
			return nil, err
		}
		k := attrInt(inst, "k", 8)
		x := xy.Slice(0, xy.Rows, 0, xy.Cols-1)
		y := xy.Col(xy.Cols - 1)
		comps := data.PCA(x, k, int64(attrInt(inst, "seed", 0)))
		return data.CBind(data.MatMul(x, comps), y), nil
	case "usample":
		xy, err := in(0)
		if err != nil {
			return nil, err
		}
		x := xy.Slice(0, xy.Rows, 0, xy.Cols-1)
		y := xy.Col(xy.Cols - 1)
		sx, sy := data.UnderSample(x, y, int64(attrInt(inst, "seed", 0)))
		return data.CBind(sx, sy), nil
	default:
		if f := unaryFunc(inst); f != nil {
			a, err := in(0)
			if err != nil {
				return nil, err
			}
			if inst.Attr("skipLast") == "1" && a.Cols > 1 {
				// Apply the transform to the feature columns only,
				// keeping the trailing label column intact (cleaning
				// pipelines carry labels for row alignment).
				feats := f(a.Slice(0, a.Rows, 0, a.Cols-1))
				return data.CBind(feats, a.Col(a.Cols-1)), nil
			}
			return f(a), nil
		}
		return nil, fmt.Errorf("unknown CP opcode %q", inst.Op)
	}
}
