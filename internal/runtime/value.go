// Package runtime interprets compiled instruction streams with MEMPHIS's
// lineage tracing and reuse integrated on the main execution path (paper
// Figure 4): every instruction is traced, probed against the hierarchical
// lineage cache, and either skipped (reuse) or executed on its backend and
// PUT into the cache. The runtime owns the multi-backend data objects of
// Figure 2(a): a variable's value may simultaneously exist as a host
// matrix, a (possibly unmaterialized) RDD, a broadcast handle, and a GPU
// pointer, with transfers charged lazily when a backend needs it.
package runtime

import (
	"memphis/internal/data"
	"memphis/internal/gpu"
	"memphis/internal/lineage"
	"memphis/internal/spark"
	"memphis/internal/vtime"
)

// Value is a multi-backend data object.
type Value struct {
	Rows, Cols int

	M     *data.Matrix
	RDD   *spark.RDD
	Bcast *spark.Broadcast
	GPU   *gpu.Pointer

	// Pending is an in-flight asynchronous fetch of the host copy
	// (prefetch); the first host access waits on it.
	Pending *vtime.FutureChain

	// Lin is the lineage item identifying this value.
	Lin *lineage.Item

	// children and bcasts record the dangling child RDDs and broadcast
	// variables a distributed value depends on, handed to the lineage
	// cache for lazy garbage collection (§4.1).
	children []*spark.RDD
	bcasts   []*spark.Broadcast
}

// NewHostValue wraps a host matrix.
func NewHostValue(m *data.Matrix) *Value {
	return &Value{Rows: m.Rows, Cols: m.Cols, M: m}
}

// NewScalar wraps a scalar.
func NewScalar(v float64) *Value { return NewHostValue(data.Scalar(v)) }

// NewRDDValue wraps a distributed matrix.
func NewRDDValue(r *spark.RDD) *Value {
	rows, cols := r.Dims()
	return &Value{Rows: rows, Cols: cols, RDD: r}
}

// NewGPUValue wraps a device-resident matrix.
func NewGPUValue(p *gpu.Pointer, rows, cols int) *Value {
	return &Value{Rows: rows, Cols: cols, GPU: p}
}

// IsScalar reports whether the value is 1x1.
func (v *Value) IsScalar() bool { return v.Rows == 1 && v.Cols == 1 }

// SizeBytes returns the dense size of the logical matrix.
func (v *Value) SizeBytes() int64 { return int64(v.Rows) * int64(v.Cols) * 8 }

// HasHost reports whether a host copy exists (possibly still in flight).
func (v *Value) HasHost() bool { return v.M != nil }

// HasGPU reports whether a valid device copy exists.
func (v *Value) HasGPU() bool { return v.GPU != nil && v.GPU.Valid() }
