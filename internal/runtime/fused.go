package runtime

import (
	"fmt"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/data"
	"memphis/internal/lineage"
	"memphis/internal/memctl"
)

// Fused-instruction execution and lineage. A fused instruction is a chain
// of elementwise constituents collapsed by the compiler (internal/compiler
// FuseElementwise); the runtime executes it as one loop via the data-layer
// fused interpreter, drawing the output buffer from the session arena when
// one is configured. Lineage is the part that must NOT be fused: the
// constituent ops are replayed one by one into lineage items, so the final
// output's reuse key is identical to what unfused execution would produce —
// a cache populated with fusion off hits with fusion on and vice versa.

// fusedProgram parses (and memoizes) a fused instruction's step program.
// The driver loop is single-threaded per session, so the memo needs no lock
// and parsed programs can reuse their internal scratch across executions.
func (ctx *Context) fusedProgram(inst *compiler.Instruction) (*data.FusedProgram, error) {
	prog := inst.Attr("prog")
	if fp, ok := ctx.fusedProgs[prog]; ok {
		return fp, nil
	}
	fp, err := data.ParseFused(prog)
	if err != nil {
		return nil, err
	}
	if ctx.fusedProgs == nil {
		ctx.fusedProgs = make(map[string]*data.FusedProgram)
	}
	ctx.fusedProgs[prog] = fp
	return fp, nil
}

// evalFused executes a fused instruction's chain over its leaf operands.
func (ctx *Context) evalFused(inst *compiler.Instruction) (*data.Matrix, error) {
	fp, err := ctx.fusedProgram(inst)
	if err != nil {
		return nil, fmt.Errorf("runtime: %s: %w", inst, err)
	}
	leaves := make([]*data.Matrix, len(inst.Inputs))
	for i := range inst.Inputs {
		m, err := ctx.hostIn(inst, i)
		if err != nil {
			return nil, err
		}
		leaves[i] = m
	}
	return data.EvalFused(fp, leaves, ctx.arena), nil
}

// traceFused replays the constituent ops of a fused instruction through the
// lineage map, charging the trace cost per constituent. Each step's item is
// built exactly as the unfused instruction's trace would build it (same
// opcode, same sorted attr + positional-literal data encoding, same input
// items), so the final key is stable across fusion on/off.
func (ctx *Context) traceFused(inst *compiler.Instruction) *lineage.Item {
	fp, err := ctx.fusedProgram(inst)
	if err != nil {
		// Unparseable program: fall back to a generic trace of the fused
		// instruction itself (still deterministic, just fusion-specific).
		ctx.Clock.Advance(ctx.Model.Trace)
		var inputs []string
		for _, in := range inst.Inputs {
			if !compiler.IsLiteral(in) {
				inputs = append(inputs, in)
			}
		}
		return ctx.LMap.Trace(inst.Output(), inst.Op, lineageData(inst), inputs...)
	}
	items := make([]*lineage.Item, len(fp.Steps))
	for k := range fp.Steps {
		st := &fp.Steps[k]
		ctx.Clock.Advance(ctx.Model.Trace)
		var parts []string
		if st.PStr != "" {
			parts = append(parts, "p="+st.PStr)
		}
		var inputs []*lineage.Item
		for ai, a := range st.Args {
			if a.Leaf >= 0 {
				name := inst.Inputs[a.Leaf]
				if compiler.IsLiteral(name) {
					parts = append(parts, fmt.Sprintf("in%d=%s", ai, compiler.LiteralValue(name)))
					continue
				}
				inputs = append(inputs, ctx.LMap.GetOrLeaf(name))
				continue
			}
			inputs = append(inputs, items[a.Step])
		}
		items[k] = lineage.NewItem(st.Op, strings.Join(parts, ";"), inputs...)
	}
	final := items[len(items)-1]
	ctx.LMap.TraceItem(inst.Output(), final)
	return final
}

// recycleValue returns a host matrix to the arena at a free point (planner
// KindFree or block-end clearTemps) when it is safe: the buffer must still
// be arena-owned (never escaped into a cache) and no other binding may
// alias it. name is the binding being released.
func (ctx *Context) recycleValue(name string, v *Value) {
	if ctx.arena == nil || v == nil || v.M == nil {
		return
	}
	if !ctx.arena.Vended(v.M) {
		return
	}
	for n, o := range ctx.vars {
		if n == name || o == nil {
			continue
		}
		if o == v || o.M == v.M {
			return
		}
	}
	ctx.arena.Put(v.M)
}

// arenaPool adapts data.Arena to the memctl.Pool interface (data stays
// free of memctl imports). Victims are the idle shape classes in trim
// order; scores rise with position so the largest class is cheapest to
// lose, matching Evict's deterministic largest-first order.
type arenaPool struct{ a *data.Arena }

func (p arenaPool) Name() string            { return p.a.Name() }
func (p arenaPool) Used() int64             { return p.a.Used() }
func (p arenaPool) Budget() int64           { return p.a.Budget() }
func (p arenaPool) Peak() int64             { return p.a.Peak() }
func (p arenaPool) Evict(need int64) int64  { return p.a.Evict(need) }
func (p arenaPool) Demote(need int64) int64 { return p.a.Demote(need) }

func (p arenaPool) Victims(max int) []memctl.Victim {
	classes := p.a.FreeClasses(max)
	out := make([]memctl.Victim, 0, len(classes))
	for i, c := range classes {
		out = append(out, memctl.Victim{
			Candidate: memctl.Candidate{
				Size:     c.Bytes,
				Lifetime: memctl.LifeDead, // idle buffers hold no values
			},
			Score: float64(i),
		})
	}
	return out
}
