package runtime

import (
	"strings"
	"testing"

	"memphis/internal/data"
	"memphis/internal/ir"
)

func TestUndefinedFunctionError(t *testing.T) {
	ctx := New(testConfig(ReuseNone))
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(ir.Call("nope", []string{"r"}, ir.Lit(1)))}
	err := ctx.RunProgram(p)
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallArityErrors(t *testing.T) {
	p := ir.NewProgram()
	p.Define(&ir.Function{
		Name: "f", Params: []string{"a", "b"}, Returns: []string{"r"},
		Deterministic: true,
		Body:          []ir.Block{ir.BB(ir.Assign("r", ir.Add(ir.Var("a"), ir.Var("b"))))},
	})
	p.Main = []ir.Block{ir.BB(ir.Call("f", []string{"r"}, ir.Lit(1)))}
	ctx := New(testConfig(ReuseNone))
	if err := ctx.RunProgram(p); err == nil || !strings.Contains(err.Error(), "expects 2 args") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingReturnError(t *testing.T) {
	p := ir.NewProgram()
	p.Define(&ir.Function{
		Name: "f", Params: []string{"a"}, Returns: []string{"missing"},
		Deterministic: true,
		Body:          []ir.Block{ir.BB(ir.Assign("other", ir.Var("a")))},
	})
	p.Main = []ir.Block{ir.BB(ir.Call("f", []string{"r"}, ir.Lit(1)))}
	ctx := New(testConfig(ReuseNone))
	if err := ctx.RunProgram(p); err == nil || !strings.Contains(err.Error(), "did not assign return") {
		t.Fatalf("err = %v", err)
	}
}

func TestUndefinedVariableError(t *testing.T) {
	ctx := New(testConfig(ReuseNone))
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(ir.Assign("y", ir.Exp(ir.Var("ghost"))))}
	// Unknown variables default to 1x1 shapes at compile time but fail at
	// execution with a clear message.
	if err := ctx.RunProgram(p); err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Fatalf("err = %v", err)
	}
}

// TestGPUReferenceIntegrity: after a GPU-heavy program finishes and all
// variables are rebound, no pointer may be leaked in the live list beyond
// the variables that still reference device values.
func TestGPUReferenceIntegrity(t *testing.T) {
	conf := testConfig(ReuseMemphisFine)
	conf.Compiler.GPUEnabled = true
	conf.Compiler.GPUMinCells = 16
	ctx := New(conf)
	ctx.BindHost("X", data.RandNorm(32, 16, 0, 1, 3))
	ctx.BindHost("W", data.RandNorm(16, 16, 0, 0.1, 4))
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.ForRange("i", 4, ir.BB(
		ir.Assign("h", ir.ReLU(ir.MatMul(ir.Var("X"), ir.Var("W")))),
		ir.Assign("h", ir.Sigmoid(ir.MatMul(ir.Var("h"), ir.Var("W")))),
		ir.Assign("s", ir.Sum(ir.Var("h"))),
	))}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	// Live pointers must be exactly those referenced by named variables
	// (plus cache-held entries sit in the free list, not live).
	named := 0
	for _, name := range []string{"X", "W", "h", "s"} {
		if v := ctx.Var(name); v != nil && v.HasGPU() {
			named += v.GPU.RefCount
		}
	}
	if got := ctx.GM.LiveCount(); got > named {
		t.Fatalf("leaked live pointers: live=%d, named refs=%d", got, named)
	}
}

func TestRecomputeMissingInput(t *testing.T) {
	ctx := New(testConfig(ReuseMemphis))
	ctx.BindHost("X", data.Ones(4, 4))
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(ir.Assign("g", ir.TSMM(ir.Var("X"))))}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	li := ctx.LMap.Get("g")
	// A fresh context without X bound cannot recompute.
	ctx2 := New(testConfig(ReuseNone))
	if _, err := Recompute(ctx2, li); err == nil ||
		!strings.Contains(err.Error(), "needs input") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecomputeRejectsOpaqueFunctionItems(t *testing.T) {
	ctx := New(testConfig(ReuseMemphis))
	ctx.BindHost("X", data.Ones(4, 4))
	p := ir.NewProgram()
	p.Define(&ir.Function{
		Name: "f", Params: []string{"a"}, Returns: []string{"r"},
		Deterministic: true,
		Body:          []ir.Block{ir.BB(ir.Assign("r", ir.TSMM(ir.Var("a"))))},
	})
	p.Main = []ir.Block{ir.BB(ir.Call("f", []string{"g"}, ir.Var("X")))}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	// The bound lineage is the fine-grained alias, which recomputes fine.
	li := ctx.LMap.Get("g")
	ctx2 := New(testConfig(ReuseNone))
	ctx2.BindHost("X", data.Ones(4, 4))
	if _, err := Recompute(ctx2, li); err != nil {
		t.Fatalf("alias lineage must recompute: %v", err)
	}
}
