package runtime

import (
	"fmt"
	"sort"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/lineage"
	"memphis/internal/spark"
	"memphis/internal/vtime"
)

// ensureHost returns the host copy of a value, waiting on pending prefetch
// transfers, reusing cached Spark action results (bypassing the job, §4.1),
// or collecting/copying from the owning backend.
func (ctx *Context) ensureHost(v *Value) *data.Matrix {
	if v.Pending != nil {
		ctx.Clock.WaitChain(v.Pending)
		v.Pending = nil
	}
	if v.M != nil {
		return v.M
	}
	switch {
	case v.RDD != nil:
		// Spark action reuse: a previously collected result with the same
		// lineage bypasses the whole job.
		if v.Lin != nil && ctx.fineGrainedReuse(core.BackendSpark) {
			key := collectKey(v.Lin)
			if e, hit := ctx.Cache.Probe(key); hit {
				ctx.Stats.ActionReuses++
				v.M = ctx.Cache.Matrix(e)
				return v.M
			}
			ctx.Stats.Collects++
			v.M = ctx.SC.Collect(v.RDD)
			cost := costs.Transfer(v.SizeBytes(), ctx.Model.CollectBW, 0) +
				ctx.Model.SparkJobOverhead
			ctx.Cache.PutCP(key, v.M, cost, ctx.delay(), true, false)
			return v.M
		}
		ctx.Stats.Collects++
		v.M = ctx.SC.Collect(v.RDD)
		return v.M
	case v.HasGPU():
		if v.Lin != nil && ctx.fineGrainedReuse(core.BackendGPU) {
			key := d2hKey(v.Lin)
			if e, hit := ctx.Cache.Probe(key); hit {
				ctx.Stats.ActionReuses++
				v.M = ctx.Cache.Matrix(e)
				return v.M
			}
			ctx.Stats.D2HFetches++
			v.M = ctx.GM.Device().D2H(v.GPU)
			cost := costs.Transfer(v.SizeBytes(), ctx.Model.D2HBW, ctx.Model.CopyLatency)
			ctx.Cache.PutCP(key, v.M, cost, ctx.delay(), true, false)
			return v.M
		}
		ctx.Stats.D2HFetches++
		v.M = ctx.GM.Device().D2H(v.GPU)
		return v.M
	}
	panic("runtime: value has no backend copy")
}

// collectKey derives the lineage key of a collected (driver-side) copy of a
// distributed value.
func collectKey(li *lineage.Item) *lineage.Item {
	return lineage.NewItem("collect", "", li)
}

// d2hKey derives the lineage key of the host copy of a device value.
func d2hKey(li *lineage.Item) *lineage.Item {
	return lineage.NewItem("d2h", "", li)
}

// ensureRDD returns the distributed form of a value, parallelizing a host
// matrix on demand.
func (ctx *Context) ensureRDD(v *Value, name string) *spark.RDD {
	if v.RDD != nil {
		return v.RDD
	}
	m := ctx.ensureHost(v)
	v.RDD = ctx.SC.Parallelize(m, ctx.Conf.Spark.NumExecutors, name)
	return v.RDD
}

// ensureBcast returns a live broadcast handle for a value, creating one
// synchronously if the compiler did not place an async broadcast (§5.1).
func (ctx *Context) ensureBcast(v *Value) *spark.Broadcast {
	if v.Bcast != nil && !v.Bcast.Destroyed() {
		return v.Bcast
	}
	v.Bcast = ctx.SC.NewBroadcast(ctx.ensureHost(v), false)
	return v.Bcast
}

// ensureGPU returns the device copy of a value, uploading through the
// memory manager (so recycled pointers are reused for transfers too).
func (ctx *Context) ensureGPU(v *Value, height int) (*Value, error) {
	if v.HasGPU() {
		return v, nil
	}
	m := ctx.ensureHost(v)
	p, err := ctx.GM.Allocate(m.SizeBytes(), height, 0)
	if err != nil {
		return nil, err
	}
	ctx.GM.Device().CopyIn(p, m)
	v.GPU = p
	return v, nil
}

// cacheable reports whether the instruction's output is subject to
// fine-grained reuse.
func cacheable(inst *compiler.Instruction) bool {
	switch inst.Op {
	case "assign", "chkpoint", "call", "nrow", "ncol":
		return false
	}
	return true
}

// lineageData serializes the instruction's attributes and literal operands
// into the lineage item's data field, so seeds and parameters distinguish
// otherwise identical operations.
func lineageData(inst *compiler.Instruction) string {
	var parts []string
	if len(inst.Attrs) > 0 {
		keys := make([]string, 0, len(inst.Attrs))
		for k := range inst.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			parts = append(parts, k+"="+inst.Attrs[k])
		}
	}
	for i, in := range inst.Inputs {
		if compiler.IsLiteral(in) {
			parts = append(parts, fmt.Sprintf("in%d=%s", i, compiler.LiteralValue(in)))
		}
	}
	return strings.Join(parts, ";")
}

// trace records the instruction in the lineage map (TRACE of the unified
// API) and returns the new item. Fused instructions replay their
// constituent ops so reuse keys are identical with fusion on or off.
func (ctx *Context) trace(inst *compiler.Instruction) *lineage.Item {
	if inst.Op == ir.FusedOp {
		return ctx.traceFused(inst)
	}
	ctx.Clock.Advance(ctx.Model.Trace)
	var inputs []string
	for _, in := range inst.Inputs {
		if !compiler.IsLiteral(in) {
			inputs = append(inputs, in)
		}
	}
	return ctx.LMap.Trace(inst.Output(), inst.Op, lineageData(inst), inputs...)
}

// delay returns the active delayed-caching factor (block header, §5.2).
// Only full MEMPHIS applies delays; other modes cache eagerly like LIMA.
func (ctx *Context) delay() int {
	if ctx.Conf.Mode != ReuseMemphis && ctx.Conf.Mode != ReuseMemphisFine {
		return 1
	}
	if ctx.delayFactor <= 0 {
		return 1
	}
	return ctx.delayFactor
}

// Execute runs one instruction through the Figure-4 path: interpret, trace,
// probe/reuse, execute, put.
func (ctx *Context) Execute(inst *compiler.Instruction) error {
	switch inst.Kind {
	case compiler.KindPrefetch:
		return ctx.execPrefetch(inst)
	case compiler.KindBroadcast:
		return ctx.execBroadcast(inst)
	case compiler.KindEvict:
		return ctx.execEvict(inst)
	case compiler.KindCheckpoint:
		return ctx.execCheckpoint(inst)
	case compiler.KindFree:
		return ctx.execFree(inst)
	}
	switch inst.Op {
	case "call":
		return ctx.execCall(inst)
	case "assign":
		return ctx.execAssign(inst)
	case "chkpoint":
		return ctx.execCheckpoint(inst)
	}
	ctx.Stats.Instructions++
	obsStart := ctx.Clock.Now()
	ctx.Clock.Advance(ctx.Model.Interpret)
	var li *lineage.Item
	if ctx.tracing() {
		li = ctx.trace(inst)
	}
	wantReuse := li != nil && cacheable(inst) && ctx.fineGrainedReuse(inst.Backend) &&
		(ctx.Conf.CPAllowlist == nil || inst.Backend != core.BackendCP || ctx.Conf.CPAllowlist[inst.Op]) &&
		!ctx.skipCache(inst.Output())
	if wantReuse {
		if e, hit := ctx.Cache.Probe(li); hit {
			ctx.stampPlan(e, inst.Output())
			if v := ctx.valueFromEntry(e); v != nil {
				v.Lin = e.Key
				ctx.setVar(inst.Output(), v)
				// Compaction: rebind the map to the cached key so future
				// DAGs share sub-DAGs by identity (Figure 5).
				ctx.LMap.TraceItem(inst.Output(), e.Key)
				ctx.Stats.Reused++
				ctx.noteReuse(inst, true)
				return nil
			}
		}
		// Second level: the cross-session shared cache (serving layer).
		// A hit installs the value locally so later probes stay session-
		// local, keyed under this session's item.
		if inst.Backend == core.BackendCP && ctx.wantShare(inst.Flops) {
			if m, computeCost, ok := ctx.shareProbe(li); ok {
				ctx.Cache.PutCP(li, m, computeCost, 1, false, false)
				v := NewHostValue(m)
				v.Lin = li
				ctx.setVar(inst.Output(), v)
				ctx.Stats.Reused++
				ctx.noteReuse(inst, true)
				return nil
			}
		}
		ctx.noteReuse(inst, false)
	}
	v, err := ctx.execOp(inst)
	if err != nil {
		return fmt.Errorf("runtime: %s: %w", inst, err)
	}
	v.Lin = li
	ctx.setVar(inst.Output(), v)
	if wantReuse {
		ctx.putValue(inst, li, v)
	}
	ctx.observeOp(inst, ctx.Clock.Now()-obsStart)
	return nil
}

// valueFromEntry materializes a Value from a cache entry, performing the
// backend-side reuse bookkeeping. Returns nil when the entry is no longer
// usable (e.g. a recycled GPU pointer).
func (ctx *Context) valueFromEntry(e *core.Entry) *Value {
	switch e.Backend {
	case core.BackendCP:
		m := ctx.Cache.Matrix(e)
		return NewHostValue(m)
	case core.BackendSpark:
		ctx.Cache.OnRDDReuse(e)
		return NewRDDValue(e.RDD)
	case core.BackendGPU:
		if !ctx.Cache.ReuseGPU(e) {
			return nil
		}
		rows, cols := gpuDims(e)
		return NewGPUValue(e.GPUPtr, rows, cols)
	}
	return nil
}

// gpuDims recovers matrix dimensions of a cached device value.
func gpuDims(e *core.Entry) (int, int) {
	if v := e.GPUPtr.Value(); v != nil {
		return v.Rows, v.Cols
	}
	return 1, int(e.Size / 8)
}

// putValue stores a freshly computed value (PUT of the unified API),
// stamping the memory planner's lifetime hint onto the stored entry.
func (ctx *Context) putValue(inst *compiler.Instruction, li *lineage.Item, v *Value) {
	switch {
	case v.RDD != nil && v.M == nil:
		cost := costs.Compute(inst.Flops, ctx.Model.SparkFlops) + ctx.Model.SparkJobOverhead
		e := ctx.Cache.PutRDD(li, v.RDD, v.children, v.bcasts, cost, ctx.delay(), ctx.storageLevel)
		ctx.stampPlan(e, inst.Output())
	case v.HasGPU() && v.M == nil:
		cost := costs.Compute(inst.Flops, ctx.Model.GPUFlops)
		e := ctx.Cache.PutGPU(li, v.GPU, cost, ctx.delay())
		ctx.stampPlan(e, inst.Output())
	case v.M != nil:
		if ctx.arena != nil {
			// The cache retains the matrix beyond the binding's lifetime:
			// the buffer must never return to the arena free lists.
			ctx.arena.Escape(v.M)
		}
		cost := costs.Compute(inst.Flops, ctx.Model.CPUFlops)
		e := ctx.Cache.PutCP(li, v.M, cost, ctx.delay(), false, false)
		ctx.stampPlan(e, inst.Output())
		if ctx.wantShare(inst.Flops) {
			ctx.sharePublish(li, v.M, cost)
		}
	}
}

// execAssign copies a binding (variable-to-variable assignment).
func (ctx *Context) execAssign(inst *compiler.Instruction) error {
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return err
	}
	if v.HasGPU() && ctx.GM != nil {
		ctx.GM.Retain(v.GPU)
	}
	ctx.setVar(inst.Output(), v)
	if ctx.tracing() && !compiler.IsLiteral(inst.Inputs[0]) {
		ctx.LMap.Bind(inst.Output(), inst.Inputs[0])
	}
	return nil
}

// execPrefetch triggers the remote job or device copy asynchronously and
// records the future on the value; results are cached once fetched so
// subsequent iterations reuse them (§5.1).
func (ctx *Context) execPrefetch(inst *compiler.Instruction) error {
	ctx.Stats.Prefetches++
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return err
	}
	if v.M != nil || v.Pending != nil {
		return nil // already local or in flight
	}
	switch {
	case v.RDD != nil && ctx.SC != nil:
		// A previously collected result with this lineage bypasses the
		// job entirely (Spark action reuse, §4.1).
		if v.Lin != nil && ctx.fineGrainedReuse(core.BackendSpark) {
			if e, hit := ctx.Cache.Probe(collectKey(v.Lin)); hit {
				ctx.Stats.ActionReuses++
				v.M = ctx.Cache.Matrix(e)
				return nil
			}
		}
		val, chain := ctx.SC.CollectAsync(v.RDD)
		v.M = val
		v.Pending = chain
		if v.Lin != nil && ctx.fineGrainedReuse(core.BackendSpark) {
			cost := costs.Transfer(val.SizeBytes(), ctx.Model.CollectBW, 0) +
				ctx.Model.SparkJobOverhead
			ctx.Cache.PutCP(collectKey(v.Lin), val, cost, ctx.delay(), true, false)
		}
	case v.HasGPU() && ctx.GM != nil:
		if v.Lin != nil && ctx.fineGrainedReuse(core.BackendGPU) {
			if e, hit := ctx.Cache.Probe(d2hKey(v.Lin)); hit {
				ctx.Stats.ActionReuses++
				v.M = ctx.Cache.Matrix(e)
				return nil
			}
		}
		val, f := ctx.GM.Device().D2HAsync(v.GPU)
		v.M = val
		v.Pending = &vtime.FutureChain{Job: f}
		if v.Lin != nil && ctx.fineGrainedReuse(core.BackendGPU) {
			cost := costs.Transfer(val.SizeBytes(), ctx.Model.D2HBW, ctx.Model.CopyLatency)
			ctx.Cache.PutCP(d2hKey(v.Lin), val, cost, ctx.delay(), true, false)
		}
	}
	return nil
}

// execBroadcast registers the value as an asynchronous broadcast variable.
func (ctx *Context) execBroadcast(inst *compiler.Instruction) error {
	if ctx.SC == nil {
		return nil
	}
	ctx.Stats.Broadcasts++
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return err
	}
	if v.M != nil && (v.Bcast == nil || v.Bcast.Destroyed()) {
		v.Bcast = ctx.SC.NewBroadcast(v.M, true)
	}
	return nil
}

// execEvict forwards the eviction-injection instruction to the GPU cache.
func (ctx *Context) execEvict(inst *compiler.Instruction) error {
	ctx.Stats.Evicts++
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return err
	}
	ctx.Cache.EvictGPUPercent(ctx.ensureHost(v).ScalarValue())
	return nil
}

// execCheckpoint persists an RDD-backed variable at the block's storage
// level and registers it with the cache so eviction tracks it (§5.2). It is
// lineage-transparent and a no-op for local values.
func (ctx *Context) execCheckpoint(inst *compiler.Instruction) error {
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return nil // variable out of scope: checkpoint is a no-op
	}
	ctx.setVar(inst.Output(), v)
	// Checkpoints are lineage-transparent: the output carries the input's
	// lineage unchanged (the linearizer may route it through a temporary).
	if ctx.tracing() && !compiler.IsLiteral(inst.Inputs[0]) {
		ctx.LMap.Bind(inst.Output(), inst.Inputs[0])
	}
	if v.RDD == nil || v.M != nil {
		return nil
	}
	ctx.Stats.Checkpoints++
	level := ctx.storageLevel
	if level == spark.StorageNone {
		level = spark.StorageMemoryAndDisk
	}
	v.RDD.Persist(level)
	if ctx.tracing() && v.Lin != nil && ctx.fineGrainedReuse(core.BackendSpark) {
		cost := costs.Transfer(v.SizeBytes(), ctx.Model.SparkExchangeBW, 0) +
			ctx.Model.SparkJobOverhead
		ctx.Cache.PutRDD(v.Lin, v.RDD, v.children, v.bcasts, cost, 1, level)
	}
	return nil
}

// EnsureHostValue is the exported host-fetch used by the public facade and
// tests: it waits on pending transfers and collects/copies from the owning
// backend, going through the Spark-action/D2H reuse path.
func (ctx *Context) EnsureHostValue(v *Value) *data.Matrix { return ctx.ensureHost(v) }
