package runtime

import (
	"testing"

	"memphis/internal/data"
	"memphis/internal/ir"
)

// TestContextCloseReleasesBackends runs a multi-backend program (large
// enough for Spark compilation, with a GPU-placed chain) and checks Close
// returns every simulated resource: device pointers, cluster blocks and
// broadcasts, and the lineage cache.
func TestContextCloseReleasesBackends(t *testing.T) {
	conf := testConfig(ReuseMemphis)
	conf.Compiler.GPUEnabled = true
	conf.Compiler.GPUMinCells = 16
	ctx := New(conf)
	// 256x64 = 128KB > the 64KB op budget, so X's operations distribute.
	ctx.BindHost("X", data.RandNorm(256, 64, 0, 1, 9))
	ctx.BindHost("S", data.RandNorm(16, 16, 0, 1, 10))
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(
		ir.Assign("G", ir.TSMM(ir.Var("X"))),
		ir.Assign("r", ir.Sum(ir.Var("G"))),
		ir.Assign("out", ir.ReLU(ir.MatMul(ir.Var("S"), ir.Var("S")))),
		ir.Assign("acc", ir.Sum(ir.Var("out"))),
	)}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.SPInsts == 0 || ctx.Stats.GPUInsts == 0 {
		t.Fatalf("test needs all backends exercised: spark=%d gpu=%d",
			ctx.Stats.SPInsts, ctx.Stats.GPUInsts)
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	if !ctx.Closed() {
		t.Fatal("Closed() must report true")
	}
	if n := ctx.GM.LiveCount(); n != 0 {
		t.Fatalf("%d GPU pointers still live after Close", n)
	}
	if n := ctx.GM.FreeCount(); n != 0 {
		t.Fatalf("%d GPU pointers still pooled after Close", n)
	}
	if used := ctx.SC.BlockManager().Used(); used != 0 {
		t.Fatalf("%d cluster bytes still cached after Close", used)
	}
	if n := ctx.Cache.NumEntries(); n != 0 {
		t.Fatalf("%d lineage-cache entries survive Close", n)
	}
	// Idempotent, and the context refuses further work.
	if err := ctx.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if err := ctx.RunProgram(p); err == nil {
		t.Fatal("RunProgram after Close must error")
	}
}
