package runtime

import (
	"fmt"

	"memphis/internal/compiler"
	"memphis/internal/data"
	"memphis/internal/gpu"
)

// execGPU runs an instruction on the device: inputs are uploaded through
// the memory manager, the output pointer is allocated (preferably by
// recycling an exact-size free pointer, Algorithm 1), and the kernel is
// launched asynchronously on the command stream.
func (ctx *Context) execGPU(inst *compiler.Instruction) (*Value, error) {
	if ctx.GM == nil {
		return nil, fmt.Errorf("gpu backend not configured")
	}
	switch inst.Op {
	case "mm", "+", "-", "*", "/", "min", "max", "conv2d":
		return ctx.execGPUBinary(inst)
	case "t", "tsmm", "exp", "log", "sqrt", "abs", "sigmoid", "relu",
		"softmax", "pow", "dropout", "maxpool", "rowSums", "colSums", "sum",
		"scale", "minmax":
		return ctx.execGPUUnary(inst)
	case "dropoutv":
		return ctx.execGPUDropoutVar(inst)
	default:
		return nil, fmt.Errorf("unknown GPU opcode %q", inst.Op)
	}
}

// gpuIn resolves operand i to a device-resident value; scalar operands stay
// host-side (they are passed to kernels as constants).
func (ctx *Context) gpuIn(inst *compiler.Instruction, i int, height int) (*Value, error) {
	v, err := ctx.operand(inst.Inputs[i])
	if err != nil {
		return nil, err
	}
	if v.IsScalar() {
		return v, nil
	}
	return ctx.ensureGPU(v, height)
}

// inputMatrix returns the matrix a kernel reads for an operand: the device
// value for uploaded inputs, the host scalar otherwise.
func inputMatrix(v *Value) *data.Matrix {
	if v.HasGPU() {
		return v.GPU.Value()
	}
	return v.M
}

// launch allocates the output and runs the kernel, producing a GPU value.
func (ctx *Context) launch(inst *compiler.Instruction, height int,
	compute func() *data.Matrix) (*Value, error) {
	size := inst.Shape.Bytes()
	out, err := ctx.GM.Allocate(size, height, 0)
	if err != nil {
		return nil, err
	}
	var result *data.Matrix
	ctx.GM.Device().Launch(inst.Flops, out, func() *data.Matrix {
		result = compute()
		return result
	})
	return NewGPUValue(out, result.Rows, result.Cols), nil
}

func (ctx *Context) execGPUBinary(inst *compiler.Instruction) (*Value, error) {
	height := heightOf(ctx, inst)
	a, err := ctx.gpuIn(inst, 0, height)
	if err != nil {
		return nil, err
	}
	b, err := ctx.gpuIn(inst, 1, height)
	if err != nil {
		return nil, err
	}
	return ctx.launch(inst, height, func() *data.Matrix {
		x, y := inputMatrix(a), inputMatrix(b)
		switch inst.Op {
		case "mm":
			return data.MatMul(x, y)
		case "conv2d":
			return data.Conv2D(x, y, attrInt(inst, "cin", 1), attrInt(inst, "h", 1),
				attrInt(inst, "w", 1), attrInt(inst, "kh", 1), attrInt(inst, "kw", 1),
				attrInt(inst, "stride", 1), attrInt(inst, "pad", 0))
		default:
			return binFunc(inst.Op)(x, y)
		}
	})
}

func (ctx *Context) execGPUUnary(inst *compiler.Instruction) (*Value, error) {
	height := heightOf(ctx, inst)
	a, err := ctx.gpuIn(inst, 0, height)
	if err != nil {
		return nil, err
	}
	return ctx.launch(inst, height, func() *data.Matrix {
		x := inputMatrix(a)
		switch inst.Op {
		case "t":
			return data.Transpose(x)
		case "tsmm":
			return data.TSMM(x)
		case "dropout":
			return data.Dropout(x, attrFloat(inst, "p", 0.5), int64(attrInt(inst, "seed", 0)))
		case "maxpool":
			return data.MaxPool(x, attrInt(inst, "c", 1), attrInt(inst, "h", 1),
				attrInt(inst, "w", 1), attrInt(inst, "ph", 1), attrInt(inst, "pw", 1),
				attrInt(inst, "stride", 1))
		case "rowSums":
			return data.RowSums(x)
		case "colSums":
			return data.ColSums(x)
		case "sum":
			return data.Scalar(data.Sum(x))
		default:
			return unaryFunc(inst)(x)
		}
	})
}

// execGPUDropoutVar applies dropout with a runtime scalar rate.
func (ctx *Context) execGPUDropoutVar(inst *compiler.Instruction) (*Value, error) {
	height := heightOf(ctx, inst)
	a, err := ctx.gpuIn(inst, 0, height)
	if err != nil {
		return nil, err
	}
	pv, err := ctx.operand(inst.Inputs[1])
	if err != nil {
		return nil, err
	}
	p := ctx.ensureHost(pv).ScalarValue()
	return ctx.launch(inst, height, func() *data.Matrix {
		return data.Dropout(inputMatrix(a), p, int64(attrInt(inst, "seed", 0)))
	})
}

// heightOf returns the lineage height of the output, used by the GPU
// eviction policy to preserve input-pipeline intermediates (Eq. 2).
func heightOf(ctx *Context, inst *compiler.Instruction) int {
	if li := ctx.LMap.Get(inst.Output()); li != nil {
		return li.Height()
	}
	h := 1
	for _, in := range inst.Inputs {
		if compiler.IsLiteral(in) {
			continue
		}
		if li := ctx.LMap.Get(in); li != nil && li.Height()+1 > h {
			h = li.Height() + 1
		}
	}
	return h
}

// gpuPointerOf is a test helper exposing a variable's device pointer.
func (ctx *Context) gpuPointerOf(name string) *gpu.Pointer {
	if v := ctx.vars[name]; v != nil {
		return v.GPU
	}
	return nil
}
