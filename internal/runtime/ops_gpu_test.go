package runtime

import (
	"testing"

	"memphis/internal/data"
	"memphis/internal/ir"
)

// runGPUOp executes a single-op program with and without the GPU backend
// and checks the results match — covering every device kernel in
// ops_gpu.go against its local ground truth.
func runGPUOp(t *testing.T, build func(x *ir.Node) *ir.Node, m *data.Matrix) {
	t.Helper()
	results := make([]*data.Matrix, 2)
	for i, gpuOn := range []bool{false, true} {
		conf := testConfig(ReuseNone)
		conf.Compiler.GPUEnabled = gpuOn
		conf.Compiler.GPUMinCells = 16
		ctx := New(conf)
		ctx.BindHost("X", m)
		p := ir.NewProgram()
		p.Main = []ir.Block{ir.BB(ir.Assign("out", build(ir.Var("X"))))}
		if err := ctx.RunProgram(p); err != nil {
			t.Fatalf("gpu=%v: %v", gpuOn, err)
		}
		if gpuOn && ctx.Stats.GPUInsts == 0 {
			t.Fatal("no GPU instructions placed")
		}
		results[i] = ctx.ensureHost(ctx.Var("out"))
	}
	if !data.AllClose(results[0], results[1], 1e-9) {
		t.Fatalf("GPU result differs from CPU:\n cpu %v\n gpu %v", results[0], results[1])
	}
}

func TestGPUOperatorsMatchLocal(t *testing.T) {
	x := data.RandNorm(16, 16, 0, 1, 51)
	cases := map[string]func(x *ir.Node) *ir.Node{
		"mm":      func(x *ir.Node) *ir.Node { return ir.MatMul(x, x) },
		"tsmm":    func(x *ir.Node) *ir.Node { return ir.TSMM(ir.ReLU(ir.MatMul(x, x))) },
		"t":       func(x *ir.Node) *ir.Node { return ir.T(ir.MatMul(x, x)) },
		"relu":    func(x *ir.Node) *ir.Node { return ir.ReLU(ir.MatMul(x, x)) },
		"sigmoid": func(x *ir.Node) *ir.Node { return ir.Sigmoid(ir.MatMul(x, x)) },
		"softmax": func(x *ir.Node) *ir.Node { return ir.Softmax(ir.MatMul(x, x)) },
		"exp":     func(x *ir.Node) *ir.Node { return ir.Exp(ir.MatMul(x, x)) },
		"add":     func(x *ir.Node) *ir.Node { return ir.Add(ir.MatMul(x, x), x) },
		"mul-lit": func(x *ir.Node) *ir.Node { return ir.Mul(ir.MatMul(x, x), ir.Lit(0.5)) },
		"dropout": func(x *ir.Node) *ir.Node { return ir.Dropout(ir.MatMul(x, x), 0.3, 7) },
		"rowSums": func(x *ir.Node) *ir.Node { return ir.RowSums(ir.MatMul(x, x)) },
		"colSums": func(x *ir.Node) *ir.Node { return ir.ColSums(ir.MatMul(x, x)) },
		"sum":     func(x *ir.Node) *ir.Node { return ir.Sum(ir.MatMul(x, x)) },
	}
	for name, build := range cases {
		build := build
		t.Run(name, func(t *testing.T) { runGPUOp(t, build, x) })
	}
}

func TestGPUConvPoolMatchLocal(t *testing.T) {
	// 4 images of 2x6x6, one conv + pool chain.
	imgs := data.RandNorm(4, 2*6*6, 0, 1, 53)
	conf := testConfig(ReuseNone)
	conf.Compiler.GPUEnabled = true
	conf.Compiler.GPUMinCells = 16
	for _, gpuOn := range []bool{false, true} {
		conf.Compiler.GPUEnabled = gpuOn
		ctx := New(conf)
		ctx.BindHost("X", imgs)
		ctx.BindHost("W", data.RandNorm(4, 2*3*3, 0, 0.2, 54))
		p := ir.NewProgram()
		p.Main = []ir.Block{ir.BB(
			ir.Assign("c", ir.ReLU(ir.Conv2D(ir.Var("X"), ir.Var("W"), 2, 6, 6, 3, 3, 1, 1))),
			ir.Assign("pool", ir.MaxPool(ir.Var("c"), 4, 6, 6, 2, 2, 2)),
			ir.Assign("out", ir.Sum(ir.Var("pool"))),
		)}
		if err := ctx.RunProgram(p); err != nil {
			t.Fatal(err)
		}
		got := ctx.ensureHost(ctx.Var("out")).ScalarValue()
		want := data.Sum(data.MaxPool(data.ReLU(data.Conv2D(imgs,
			data.RandNorm(4, 2*3*3, 0, 0.2, 54), 2, 6, 6, 3, 3, 1, 1)), 4, 6, 6, 2, 2, 2))
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("gpu=%v: out = %g, want %g", gpuOn, got, want)
		}
	}
}

func TestGPUDropoutVarMatchesLocal(t *testing.T) {
	x := data.RandNorm(16, 16, 0, 1, 55)
	for _, gpuOn := range []bool{false, true} {
		conf := testConfig(ReuseNone)
		conf.Compiler.GPUEnabled = gpuOn
		conf.Compiler.GPUMinCells = 16
		ctx := New(conf)
		ctx.BindHost("X", x)
		p := ir.NewProgram()
		p.Main = []ir.Block{
			ir.For("rate", []float64{0.25}, ir.BB(
				ir.Assign("h", ir.DropoutVar(ir.MatMul(ir.Var("X"), ir.Var("X")), ir.Var("rate"), 9)),
				ir.Assign("out", ir.Sum(ir.Var("h"))),
			)),
		}
		if err := ctx.RunProgram(p); err != nil {
			t.Fatal(err)
		}
		want := data.Sum(data.Dropout(data.MatMul(x, x), 0.25, 9))
		got := ctx.ensureHost(ctx.Var("out")).ScalarValue()
		if got != want {
			t.Fatalf("gpu=%v: %g != %g", gpuOn, got, want)
		}
	}
}
