package runtime

import (
	"errors"
	"testing"

	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/ir"
	"memphis/internal/spark"
)

// faultedConfig returns the multi-backend test config with a fault plan.
func faultedConfig(mode ReuseMode, plan *faults.Plan) Config {
	conf := testConfig(mode)
	conf.Faults = plan
	return conf
}

// TestStageAbortSurfacesAsError: a task that exhausts its attempts unwinds
// as ErrStageAbort and RunProgram converts the panic into an error instead
// of crashing.
func TestStageAbortSurfacesAsError(t *testing.T) {
	conf := faultedConfig(ReuseNone, &faults.Plan{Seed: 1, Sites: map[faults.Site]faults.Trigger{
		faults.SparkTask: {Nth: []int64{1}, Attempts: 4},
	}})
	conf.Compiler.OpMemBudget = 1 << 10 // force Spark placement
	ctx := New(conf)
	defer ctx.Close()
	ctx.BindHost("X", data.RandNorm(60, 6, 2, 1, 31))
	p := ir.NewProgram()
	// Sum is an action: the Spark job (and the injected task failures) run
	// inside RunProgram rather than at a later fetch.
	p.Main = []ir.Block{ir.BB(ir.Assign("out", ir.Sum(ir.TSMM(ir.Var("X")))))}
	err := ctx.RunProgram(p)
	if err == nil {
		t.Fatal("RunProgram must fail when a stage aborts")
	}
	if !errors.Is(err, spark.ErrStageAbort) {
		t.Fatalf("err = %v, want ErrStageAbort", err)
	}
	// The context survives the abort: a fresh (uninjected) run succeeds.
	if err := ctx.RunProgram(p); err != nil {
		t.Fatalf("post-abort run failed: %v", err)
	}
}

// TestFaultedRunMatchesFaultFree: at default probabilities every fault is
// absorbed by a recovery path — results are bitwise-identical to a
// fault-free run, and the faulted run replays deterministically.
func TestFaultedRunMatchesFaultFree(t *testing.T) {
	regs := []float64{1e-3, 1e-2, 1e-1}
	run := func(plan *faults.Plan) (*data.Matrix, float64, Stats) {
		conf := faultedConfig(ReuseMemphis, plan)
		conf.Compiler.OpMemBudget = 1 << 12 // mixed CP/Spark placement
		ctx := New(conf)
		defer ctx.Close()
		bindLinRegInputs(ctx, 96, 8)
		if err := ctx.RunProgram(linRegProgram(regs)); err != nil {
			t.Fatalf("faulted run must complete via retries/fallbacks: %v", err)
		}
		out := ctx.ensureHost(ctx.Var("beta")).Clone()
		return out, ctx.Clock.Now(), ctx.Stats
	}
	clean, cleanT, _ := run(nil)
	// A high-probability plan guarantees several faults fire on a workload
	// this small; every one must still be absorbed.
	plan := faults.Default(1234)
	plan.Sites[faults.GPUAlloc] = faults.Trigger{Probability: 0.5}
	plan.Sites[faults.SparkTask] = faults.Trigger{Probability: 0.3}
	faulted, t1, s1 := run(plan)
	replay, t2, s2 := run(plan)
	if !data.AllClose(clean, faulted, 0) || !data.AllClose(faulted, replay, 0) {
		t.Fatal("faulted result differs from fault-free result")
	}
	if t1 != t2 || s1 != s2 {
		t.Fatalf("fault replay diverged: %v/%v vs %v/%v", t1, s1, t2, s2)
	}
	if t1 < cleanT {
		t.Fatal("absorbed faults cannot make the run faster than fault-free")
	}
}

// TestInjectorCountersExposed: the context exposes its injector so callers
// (the serving layer's report) can aggregate per-site failure counts.
func TestInjectorCountersExposed(t *testing.T) {
	ctx := New(faultedConfig(ReuseMemphis, faults.Default(7)))
	defer ctx.Close()
	if ctx.Inj == nil {
		t.Fatal("Config.Faults must install an injector on the context")
	}
	bindLinRegInputs(ctx, 64, 8)
	if err := ctx.RunProgram(linRegProgram([]float64{0.01, 0.1})); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range ctx.Inj.Counts() {
		total += n
	}
	if total != ctx.Inj.Injected() {
		t.Fatalf("Counts sum %d != Injected %d", total, ctx.Inj.Injected())
	}
}

// TestNoFaultPlanNoInjector: without Config.Faults nothing is installed and
// behaviour is byte-for-byte the pre-fault-layer baseline.
func TestNoFaultPlanNoInjector(t *testing.T) {
	ctx := New(testConfig(ReuseMemphis))
	defer ctx.Close()
	if ctx.Inj != nil {
		t.Fatal("no plan must mean no injector")
	}
}
