package runtime

import (
	"fmt"
	"hash/fnv"
	"sort"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/memplan"
)

// planRecord is the runtime's per-stream planning state: one record per
// distinct compiled stream signature. Because planning is a pure function
// of the stream and the budget, the record caches the plan and the
// rewritten stream; repeated executions (loop iterations recompile to the
// same stream once shapes stabilize) reuse both and accumulate runtime
// observations.
type planRecord struct {
	seq   int
	sig   uint64
	plan  *memplan.Plan
	insts []compiler.Instruction

	runs          int64
	evictions     int64 // measured CP evictions attributed to this stream
	predictedEv   int64 // planner-predicted minimum CP evictions
	peakLiveBytes int64 // max observed live variable bytes during execution
}

// PlanReport is the per-stream planner report exposed to the facade and the
// CLIs (-plan dumps and profile diffs).
type PlanReport struct {
	Seq                int                `json:"seq"`
	Sig                string             `json:"sig"`
	Runs               int64              `json:"runs"`
	Instructions       int                `json:"instructions"`
	PeakBytes          int64              `json:"peak_bytes"`
	PeakAt             int                `json:"peak_at"`
	Budget             int64              `json:"budget"`
	Frees              int                `json:"frees"`
	Splits             int                `json:"splits"`
	NoCache            []string           `json:"no_cache,omitempty"`
	PredictedEvictions int64              `json:"predicted_evictions"`
	Evictions          int64              `json:"evictions"`
	PeakLiveBytes      int64              `json:"peak_live_bytes"`
	Intervals          []memplan.Interval `json:"intervals"`
	Profile            []int64            `json:"profile"`
	Stream             []string           `json:"stream"`
}

// streamSig fingerprints a compiled stream: opcode, operands, backend,
// attrs, and the compile-time shapes. Two blocks that compile identically
// (the common case across loop iterations) share a signature and therefore
// a plan. Attrs must be included: ops like slice (r0/r1/c0/c1), sliceRows
// (n), and dropout (p, seed) carry their semantics only in Attrs, so
// omitting them would alias differently-parameterized streams onto one
// cached rewrite.
func streamSig(insts []compiler.Instruction) uint64 {
	h := fnv.New64a()
	for i := range insts {
		in := &insts[i]
		fmt.Fprintf(h, "%s|%dx%d", in.String(), in.Shape.Rows, in.Shape.Cols)
		for _, s := range in.InShapes {
			fmt.Fprintf(h, ",%dx%d", s.Rows, s.Cols)
		}
		if len(in.Attrs) > 0 {
			keys := make([]string, 0, len(in.Attrs))
			for k := range in.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(h, ";%s=%s", k, in.Attrs[k])
			}
		}
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// planBlock plans one compiled stream, reusing the record of a previously
// seen signature. It returns the plan, the (possibly rewritten) stream to
// execute, and the record accumulating runtime observations.
func (ctx *Context) planBlock(insts []compiler.Instruction) (*memplan.Plan, []compiler.Instruction, *planRecord) {
	if ctx.planRecs == nil {
		ctx.planRecs = make(map[uint64]*planRecord)
	}
	sig := streamSig(insts)
	if rec, ok := ctx.planRecs[sig]; ok {
		return rec.plan, rec.insts, rec
	}
	rewritten, plan := memplan.Apply(insts, *ctx.Conf.MemPlan)
	rec := &planRecord{seq: len(ctx.planOrder), sig: sig, plan: plan, insts: rewritten}
	ctx.planRecs[sig] = rec
	ctx.planOrder = append(ctx.planOrder, sig)
	return plan, rewritten, rec
}

// predictEvictions adds the planner's minimum-eviction estimate for one run
// of the stream: the bytes by which the stream's cacheable puts overflow
// the remaining CP budget, divided by the mean entry size (a lower bound —
// actual victim choice can free more or less per eviction).
func (ctx *Context) predictEvictions(rec *planRecord) {
	budget := ctx.Cache.Config().CPBudget
	if budget <= 0 || rec.plan.CacheEntries == 0 {
		return
	}
	overflow := ctx.Cache.CPUsed() + rec.plan.CacheBytes - budget
	if overflow <= 0 {
		return
	}
	mean := rec.plan.CacheBytes / int64(rec.plan.CacheEntries)
	if mean <= 0 {
		return
	}
	rec.predictedEv += (overflow + mean - 1) / mean
}

// sampleLive sums the resident bytes of all bound variables, deduplicated
// by value identity (aliases from assignments share a *Value). Host and
// device copies both count; a value with both counts each copy once.
func (ctx *Context) sampleLive() int64 {
	seen := make(map[*Value]bool, len(ctx.vars))
	var total int64
	for _, v := range ctx.vars {
		if v == nil || seen[v] {
			continue
		}
		seen[v] = true
		if v.M != nil {
			total += v.M.SizeBytes()
		}
		if v.HasGPU() {
			total += v.GPU.Size()
		}
	}
	return total
}

// stampPlan stamps the active plan's lifetime classification for name onto
// a cache entry (no-op without an active plan). The stamp feeds memctl's
// lifetime-grouped victim selection.
func (ctx *Context) stampPlan(e *core.Entry, name string) {
	if ctx.activePlan == nil || e == nil {
		return
	}
	ctx.Cache.StampLifetime(e, ctx.activePlan.LifetimeAt(name, ctx.planPos, ctx.planWindow))
}

// skipCache reports whether the active plan flipped the instruction's
// output to recompute-from-lineage.
func (ctx *Context) skipCache(name string) bool {
	return ctx.activePlan != nil && ctx.activePlan.SkipCache(name)
}

// execFree executes a planner-inserted early free: the temporary is
// unbound (returning GPU references and dropping its lineage binding)
// exactly as clearTemps would at block end, just at its last-use point.
func (ctx *Context) execFree(inst *compiler.Instruction) error {
	name := inst.Inputs[0]
	if v, ok := ctx.vars[name]; ok {
		ctx.recycleValue(name, v)
		ctx.removeVar(name)
		ctx.Stats.EarlyFrees++
	}
	return nil
}

// PlanReports returns one report per planned stream in first-seen order,
// combining the static plan with the runtime's measured counters. Empty
// without an active memory planner.
func (ctx *Context) PlanReports() []PlanReport {
	out := make([]PlanReport, 0, len(ctx.planOrder))
	for _, sig := range ctx.planOrder {
		rec := ctx.planRecs[sig]
		stream := make([]string, len(rec.insts))
		for i := range rec.insts {
			stream[i] = rec.insts[i].String()
		}
		out = append(out, PlanReport{
			Seq:                rec.seq,
			Sig:                fmt.Sprintf("%016x", rec.sig),
			Runs:               rec.runs,
			Instructions:       rec.plan.Insts,
			PeakBytes:          rec.plan.Peak,
			PeakAt:             rec.plan.PeakAt,
			Budget:             rec.plan.Budget,
			Frees:              rec.plan.Frees,
			Splits:             rec.plan.Splits,
			NoCache:            rec.plan.NoCache,
			PredictedEvictions: rec.predictedEv,
			Evictions:          rec.evictions,
			PeakLiveBytes:      rec.peakLiveBytes,
			Intervals:          rec.plan.Intervals,
			Profile:            rec.plan.Profile,
			Stream:             stream,
		})
	}
	return out
}
