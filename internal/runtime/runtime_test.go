package runtime

import (
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/spark"
)

// testConfig returns a full multi-backend configuration.
func testConfig(mode ReuseMode) Config {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = 64 << 10 // 64KB
	cache := core.DefaultConfig()
	return Config{
		Mode:        mode,
		Compiler:    comp,
		Cache:       cache,
		Spark:       spark.DefaultConfig(),
		GPUCapacity: 8 << 20,
	}
}

// linRegProgram builds the Example 4.1 grid-search program: linRegDS called
// for a list of regularization values over a (possibly distributed) X.
func linRegProgram(regs []float64) *ir.Program {
	p := ir.NewProgram()
	p.Define(&ir.Function{
		Name:          "linRegDS",
		Params:        []string{"X", "y", "reg", "ones"},
		Returns:       []string{"beta"},
		Deterministic: true,
		Body: []ir.Block{ir.BB(
			ir.Assign("A", ir.TSMM(ir.Var("X"))),
			ir.Assign("b", ir.MatMul(ir.T(ir.Var("y")), ir.Var("X"))),
			ir.Assign("Ar", ir.Add(ir.Var("A"), ir.Mul(ir.Diag(ir.Var("ones")), ir.Var("reg")))),
			ir.Assign("beta", ir.Solve(ir.Var("Ar"), ir.T(ir.Var("b")))),
		)},
	})
	p.Main = []ir.Block{
		ir.For("reg", regs,
			ir.BB(ir.Call("linRegDS", []string{"beta"},
				ir.Var("X"), ir.Var("y"), ir.Var("reg"), ir.Var("ones"))),
		),
	}
	return p
}

func bindLinRegInputs(ctx *Context, rows, cols int) (*data.Matrix, *data.Matrix) {
	x := data.RandNorm(rows, cols, 0, 1, 1)
	y := data.RandNorm(rows, 1, 0, 1, 2)
	ctx.BindHost("X", x)
	ctx.BindHost("y", y)
	ctx.BindHost("ones", data.Ones(cols, 1))
	return x, y
}

// referenceBeta computes the closed-form solution locally.
func referenceBeta(x, y *data.Matrix, reg float64) *data.Matrix {
	a := data.Add(data.TSMM(x), data.MulScalar(data.Identity(x.Cols), reg))
	b := data.MatMul(data.Transpose(x), y)
	return data.Solve(a, b)
}

func TestSimpleCPExecution(t *testing.T) {
	ctx := New(testConfig(ReuseNone))
	ctx.BindHost("a", data.FromSlice(2, 2, []float64{1, 2, 3, 4}))
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.BB(
		ir.Assign("b", ir.Add(ir.Var("a"), ir.Lit(1))),
		ir.Assign("c", ir.Sum(ir.Var("b"))),
	)}
	if err := ctx.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if got := ctx.ensureHost(ctx.Var("c")).ScalarValue(); got != 14 {
		t.Fatalf("c = %g, want 14", got)
	}
}

func TestLinRegCorrectnessAllModes(t *testing.T) {
	for _, mode := range []ReuseMode{ReuseNone, ReuseTrace, ReuseLIMA, ReuseHelix, ReuseMemphisFine, ReuseMemphis} {
		t.Run(mode.String(), func(t *testing.T) {
			ctx := New(testConfig(mode))
			x, y := bindLinRegInputs(ctx, 200, 8)
			if err := ctx.RunProgram(linRegProgram([]float64{0.1, 1.0, 0.1})); err != nil {
				t.Fatal(err)
			}
			// The last iteration repeats reg=0.1; its beta must equal the
			// closed form regardless of reuse mode.
			beta := ctx.ensureHost(ctx.Var("beta"))
			want := referenceBeta(x, y, 0.1)
			if !data.AllClose(beta, want, 1e-6) {
				t.Fatalf("beta mismatch under %s:\n got %v\nwant %v", mode, beta, want)
			}
		})
	}
}

func TestFunctionReuseSkipsExecution(t *testing.T) {
	ctx := New(testConfig(ReuseMemphis))
	bindLinRegInputs(ctx, 100, 6)
	// Same reg value twice: second call must be a function-level hit.
	if err := ctx.RunProgram(linRegProgram([]float64{0.5, 0.5})); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.FuncCalls != 2 || ctx.Stats.FuncReuses != 1 {
		t.Fatalf("FuncCalls=%d FuncReuses=%d", ctx.Stats.FuncCalls, ctx.Stats.FuncReuses)
	}
}

func TestFineGrainedReuseAcrossCalls(t *testing.T) {
	ctx := New(testConfig(ReuseMemphisFine))
	bindLinRegInputs(ctx, 100, 6)
	if err := ctx.RunProgram(linRegProgram([]float64{0.1, 0.5, 1.0})); err != nil {
		t.Fatal(err)
	}
	// tsmm and the vec-mm are reg-independent: calls 2 and 3 must reuse.
	if ctx.Stats.Reused < 4 {
		t.Fatalf("Reused = %d, want >= 4", ctx.Stats.Reused)
	}
	if ctx.Stats.FuncReuses != 0 {
		t.Fatal("MPH-F must not use function-level reuse")
	}
}

func TestHelixOnlyCoarseGrained(t *testing.T) {
	ctx := New(testConfig(ReuseHelix))
	bindLinRegInputs(ctx, 100, 6)
	if err := ctx.RunProgram(linRegProgram([]float64{0.1, 0.5, 0.1})); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.FuncReuses != 1 {
		t.Fatalf("FuncReuses = %d, want 1", ctx.Stats.FuncReuses)
	}
	if ctx.Stats.Reused != 0 {
		t.Fatalf("HELIX must not reuse fine-grained ops, got %d", ctx.Stats.Reused)
	}
}

func TestBaseNoTracing(t *testing.T) {
	ctx := New(testConfig(ReuseNone))
	bindLinRegInputs(ctx, 50, 4)
	if err := ctx.RunProgram(linRegProgram([]float64{0.1, 0.1})); err != nil {
		t.Fatal(err)
	}
	if ctx.LMap.Traced() != 0 {
		t.Fatal("Base must not trace lineage")
	}
	if ctx.Cache.Stats.Probes != 0 {
		t.Fatal("Base must not probe the cache")
	}
}

func TestSparkRDDReuseEndToEnd(t *testing.T) {
	conf := testConfig(ReuseMemphisFine)
	conf.Compiler.OpMemBudget = 4 << 10 // force X (200x8 = 12.8KB) to Spark
	ctx := New(conf)
	x, y := bindLinRegInputs(ctx, 200, 8)
	if err := ctx.RunProgram(linRegProgram([]float64{0.1, 0.5, 1.0, 2.0})); err != nil {
		t.Fatal(err)
	}
	beta := ctx.ensureHost(ctx.Var("beta"))
	if !data.AllClose(beta, referenceBeta(x, y, 2.0), 1e-6) {
		t.Fatal("distributed beta mismatch")
	}
	if ctx.Stats.SPInsts == 0 {
		t.Fatal("expected Spark instructions")
	}
	s := ctx.Cache.Stats
	if s.HitsRDD == 0 && s.HitsActon == 0 {
		t.Fatalf("expected RDD or action reuse, stats = %+v", s)
	}
	// Later calls must launch fewer Spark jobs than the first.
	if ctx.SC.Stats.Jobs >= 4*2 {
		t.Fatalf("too many Spark jobs (%d): reuse is not bypassing them", ctx.SC.Stats.Jobs)
	}
}

func TestSparkActionReuseBypassesJob(t *testing.T) {
	conf := testConfig(ReuseMemphisFine)
	conf.Compiler.OpMemBudget = 4 << 10
	ctx := New(conf)
	bindLinRegInputs(ctx, 200, 8)
	if err := ctx.RunProgram(linRegProgram([]float64{0.1})); err != nil {
		t.Fatal(err)
	}
	jobsAfterFirst := ctx.SC.Stats.Jobs
	if err := ctx.RunProgram(linRegProgram([]float64{0.1})); err != nil {
		t.Fatal(err)
	}
	if ctx.SC.Stats.Jobs != jobsAfterFirst {
		t.Fatalf("second identical run launched %d new jobs",
			ctx.SC.Stats.Jobs-jobsAfterFirst)
	}
	if ctx.Stats.ActionReuses == 0 && ctx.Cache.Stats.HitsRDD == 0 {
		t.Fatal("no action/RDD reuse recorded")
	}
}

func TestGPUExecutionAndReuse(t *testing.T) {
	conf := testConfig(ReuseMemphisFine)
	conf.Compiler.GPUEnabled = true
	conf.Compiler.GPUMinCells = 64
	ctx := New(conf)
	x := data.RandNorm(32, 32, 0, 1, 3)
	w := data.RandNorm(32, 32, 0, 0.1, 4)
	ctx.BindHost("X", x)
	ctx.BindHost("W", w)
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.ForRange("i", 3, ir.BB(
		ir.Assign("h", ir.ReLU(ir.MatMul(ir.Var("X"), ir.Var("W")))),
		ir.Assign("s", ir.Sum(ir.Var("h"))),
	))}
	if err := ctx.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.GPUInsts == 0 {
		t.Fatal("expected GPU instructions")
	}
	if ctx.Cache.Stats.HitsGPU == 0 {
		t.Fatalf("expected GPU pointer reuse, stats = %+v", ctx.Cache.Stats)
	}
	// Value must match host compute.
	want := data.Sum(data.ReLU(data.MatMul(x, w)))
	got := ctx.ensureHost(ctx.Var("s")).ScalarValue()
	if diff := want - got; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("s = %g, want %g", got, want)
	}
}

func TestGPUOOMFallsBackToCP(t *testing.T) {
	conf := testConfig(ReuseNone)
	conf.Compiler.GPUEnabled = true
	conf.Compiler.GPUMinCells = 16
	conf.GPUCapacity = 4 << 10 // 4KB device: a 32x32 output won't fit
	ctx := New(conf)
	x := data.RandNorm(32, 32, 0, 1, 3)
	ctx.BindHost("X", x)
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.BB(ir.Assign("h", ir.MatMul(ir.Var("X"), ir.Var("X"))))}
	if err := ctx.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.GPUFallbacks == 0 {
		t.Fatal("expected CP fallback under device OOM")
	}
	if !data.AllClose(ctx.ensureHost(ctx.Var("h")), data.MatMul(x, x), 1e-9) {
		t.Fatal("fallback result wrong")
	}
}

func TestPrefetchOverlap(t *testing.T) {
	// With async operators the driver should finish sooner than without.
	run := func(async bool) float64 {
		conf := testConfig(ReuseNone)
		conf.Compiler.OpMemBudget = 4 << 10
		conf.Compiler.Async = async
		conf.Compiler.MaxParallelize = async
		ctx := New(conf)
		bindLinRegInputs(ctx, 400, 8)
		prog := ir.NewProgram()
		prog.Main = []ir.Block{ir.BB(
			ir.Assign("A", ir.TSMM(ir.Var("X"))),
			ir.Assign("b", ir.MatMul(ir.T(ir.Var("y")), ir.Var("X"))),
			ir.Assign("r", ir.Solve(ir.Add(ir.Var("A"), ir.Diag(ir.Var("ones"))), ir.T(ir.Var("b")))),
		)}
		if err := ctx.RunProgram(prog); err != nil {
			t.Fatal(err)
		}
		return ctx.Clock.Now()
	}
	sync, asyn := run(false), run(true)
	if asyn >= sync {
		t.Fatalf("async (%g) must beat sync (%g)", asyn, sync)
	}
}

func TestLoopCheckpointBoundsLazyGraph(t *testing.T) {
	// PNMF-like loop: an updated distributed variable. Without
	// checkpoints every job re-executes all previous iterations; with the
	// compiler-injected checkpoint, partitions come from cache.
	build := func() *ir.Program {
		p := ir.NewProgram()
		body := ir.BB(
			ir.Assign("W", ir.Mul(ir.Var("W"), ir.Lit(0.99))),
			// Consuming the distributed sum on the driver triggers a job
			// per iteration, like PNMF's convergence check.
			ir.Assign("acc", ir.Add(ir.Var("acc"), ir.Sum(ir.Var("W")))),
		)
		// Auto-tuning marks the loop-dependent body with a high delay
		// factor, so the updated W is never persisted by fine-grained RDD
		// caching (it never repeats); only the compiler-placed checkpoint
		// bounds the growing lazy graph (§5.2).
		body.DelayFactor = 4
		p.Main = []ir.Block{ir.ForRange("i", 8, body)}
		return p
	}
	run := func(checkpoints bool) (int64, float64) {
		conf := testConfig(ReuseMemphis)
		conf.Compiler.OpMemBudget = 4 << 10
		ctx := New(conf)
		ctx.BindHost("W", data.RandNorm(400, 8, 1, 0.1, 5))
		ctx.BindHost("acc", data.Scalar(0))
		prog := build()
		if checkpoints {
			compiler.InjectLoopCheckpoints(prog)
		}
		if err := ctx.RunProgram(prog); err != nil {
			t.Fatal(err)
		}
		return ctx.SC.Stats.PartitionsComputed, ctx.Clock.Now()
	}
	partsNo, timeNo := run(false)
	partsYes, timeYes := run(true)
	if partsYes >= partsNo {
		t.Fatalf("checkpointing computed %d partitions vs %d without", partsYes, partsNo)
	}
	if timeYes >= timeNo {
		t.Fatalf("checkpointing slower: %g vs %g", timeYes, timeNo)
	}
}

func TestDelayedCachingReducesRDDCaching(t *testing.T) {
	conf := testConfig(ReuseMemphis)
	conf.Compiler.OpMemBudget = 4 << 10
	ctx := New(conf)
	bindLinRegInputs(ctx, 200, 8)
	prog := linRegProgram([]float64{0.1, 0.5, 1.0})
	// Delay factor 2 on the function body: first execution creates
	// placeholders only.
	for _, b := range prog.Funcs["linRegDS"].Body {
		if bb, ok := b.(*ir.BasicBlock); ok {
			bb.DelayFactor = 2
		}
	}
	if err := ctx.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if ctx.Cache.Stats.Placeholders == 0 {
		t.Fatal("expected TO-BE-CACHED placeholders with delay factor 2")
	}
}

func TestMiniBatchGPURecycling(t *testing.T) {
	conf := testConfig(ReuseNone)
	conf.Compiler.GPUEnabled = true
	conf.Compiler.GPUMinCells = 64
	// A small device fills within the first iterations; afterwards the
	// pool serves every fixed-size allocation by recycling.
	conf.GPUCapacity = 16 << 10
	ctx := New(conf)
	ctx.BindHost("X", data.RandNorm(256, 16, 0, 1, 6))
	ctx.BindHost("W", data.RandNorm(16, 16, 0, 0.1, 7))
	// Mini-batch loop: each iteration slices a different batch, so outputs
	// are not reusable, but freed temporaries recycle.
	p := ir.NewProgram()
	body := ir.BB(
		ir.Assign("batch", ir.SliceRowsVar(ir.Var("X"), ir.Mul(ir.Var("i"), ir.Lit(16)), 16)),
		ir.Assign("h", ir.ReLU(ir.MatMul(ir.Var("batch"), ir.Var("W")))),
		ir.Assign("loss", ir.Sum(ir.Var("h"))),
	)
	p.Main = []ir.Block{ir.ForRange("i", 16, body)}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if ctx.GM.Stats.Recycled == 0 {
		t.Fatalf("expected pointer recycling in mini-batch loop: %+v", ctx.GM.Stats)
	}
}

func TestWhileAndIfBlocks(t *testing.T) {
	ctx := New(testConfig(ReuseNone))
	ctx.BindHost("x", data.Scalar(0))
	p := ir.NewProgram()
	p.Main = []ir.Block{
		&ir.WhileBlock{
			Cond:    ir.Lt(ir.Var("x"), ir.Lit(5)),
			MaxIter: 100,
			Body:    []ir.Block{ir.BB(ir.Assign("x", ir.Add(ir.Var("x"), ir.Lit(1))))},
		},
		ir.If(ir.Gt(ir.Var("x"), ir.Lit(4)),
			[]ir.Block{ir.BB(ir.Assign("y", ir.Lit(1)))},
			[]ir.Block{ir.BB(ir.Assign("y", ir.Lit(0)))}),
	}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if got := ctx.ensureHost(ctx.Var("x")).ScalarValue(); got != 5 {
		t.Fatalf("x = %g, want 5", got)
	}
	if got := ctx.ensureHost(ctx.Var("y")).ScalarValue(); got != 1 {
		t.Fatalf("y = %g, want 1", got)
	}
}

func TestCPAllowlistRestrictsReuse(t *testing.T) {
	conf := testConfig(ReuseLIMA)
	conf.CPAllowlist = map[string]bool{"scale": true}
	ctx := New(conf)
	ctx.BindHost("X", data.RandNorm(32, 4, 0, 1, 8))
	p := ir.NewProgram()
	body := ir.BB(
		ir.Assign("s", ir.Scale(ir.Var("X"))),
		ir.Assign("e", ir.Exp(ir.Var("X"))),
	)
	p.Main = []ir.Block{ir.ForRange("i", 3, body)}
	if err := ctx.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	// Only scale may hit; exp must recompute each iteration.
	if ctx.Cache.Stats.HitsCP != 2 {
		t.Fatalf("HitsCP = %d, want 2 (scale only)", ctx.Cache.Stats.HitsCP)
	}
}

func TestLineageRecomputeRoundTrip(t *testing.T) {
	// Serialize the lineage of a result, recompute from the log in a fresh
	// context, and compare values (the RECOMPUTE API, §3.2).
	ctx := New(testConfig(ReuseMemphis))
	x, y := bindLinRegInputs(ctx, 64, 4)
	if err := ctx.RunProgram(linRegProgram([]float64{0.7})); err != nil {
		t.Fatal(err)
	}
	beta := ctx.ensureHost(ctx.Var("beta"))
	li := ctx.LMap.Get("beta")
	if li == nil {
		t.Fatal("no lineage for beta")
	}
	// Recompute in a new context with the same persistent inputs.
	ctx2 := New(testConfig(ReuseNone))
	ctx2.BindHost("X", x)
	ctx2.BindHost("y", y)
	ctx2.BindHost("ones", data.Ones(4, 1))
	got, err := Recompute(ctx2, li)
	if err != nil {
		t.Fatal(err)
	}
	if !data.AllClose(got, beta, 1e-9) {
		t.Fatalf("recompute mismatch:\n got %v\nwant %v", got, beta)
	}
}
