package runtime

import (
	"hash/fnv"
	"sort"

	"memphis/internal/data"
	"memphis/internal/lineage"
)

// SharedCache is a second, cross-session reuse level consulted after the
// session-local lineage cache misses. The serving layer (internal/serve)
// provides a concurrency-safe implementation shared by every tenant, so
// identical sub-programs submitted by different tenants reuse each other's
// results.
//
// Lineage leaves of bound inputs are keyed by variable NAME only, which is
// sound within one session but not across tenants: two tenants may bind
// different data under the same name. Callers therefore pass sig, a
// content signature folding the checksums of every read-leaf input the item
// depends on; implementations must key entries by (item, sig).
//
// Both methods return the virtual-time cost the probing/publishing session
// must charge on its own clock. Implementations never touch session clocks
// (session clocks are not concurrency-safe) and the returned costs depend
// only on hit/miss and object size, keeping per-session virtual time
// deterministic when conflicting requests are serialized in a fixed order.
type SharedCache interface {
	// Probe looks up (item, sig); on a hit it returns a private copy of
	// the matrix, the producer's estimated compute cost (for local cache
	// admission), and the virtual cost of the probe plus the copy.
	Probe(tenant string, item *lineage.Item, sig uint64) (m *data.Matrix, computeCost, charge float64, ok bool)
	// Publish offers a freshly computed driver-local value. It reports
	// whether the object was stored and the virtual cost of the put.
	Publish(tenant string, item *lineage.Item, sig uint64, m *data.Matrix, computeCost float64) (charge float64, stored bool)
}

// AttachShared connects the context to a shared reuse level under the given
// tenant identity. It must be called before inputs are bound, so input
// checksums are recorded for content signatures.
func (ctx *Context) AttachShared(sc SharedCache, tenant string) {
	ctx.Shared = sc
	ctx.Tenant = tenant
	if ctx.inputSigs == nil {
		ctx.inputSigs = make(map[string]uint64)
	}
	if ctx.leafMemo == nil {
		ctx.leafMemo = make(map[*lineage.Item][]string)
	}
}

// readLeafNames returns the sorted, distinct variable names of the "read"
// leaves the item's DAG depends on, memoized per item. Sorting and
// deduplication make the result independent of how shared sub-DAGs alias
// inside structurally equal items.
func (ctx *Context) readLeafNames(it *lineage.Item) []string {
	if names, ok := ctx.leafMemo[it]; ok {
		return names
	}
	var names []string
	if it.Opcode() == "read" {
		names = []string{it.Data()}
	} else if ins := it.Inputs(); len(ins) > 0 {
		set := make(map[string]struct{})
		for _, in := range ins {
			for _, n := range ctx.readLeafNames(in) {
				set[n] = struct{}{}
			}
		}
		names = make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	ctx.leafMemo[it] = names
	return names
}

// shareSig computes the content signature of an item: an FNV-1a fold over
// its sorted read-leaf names and the checksums of the matrices bound under
// those names. It reports false when the item has no read leaves (sharing
// literal-only values across tenants would make hit patterns depend on
// request interleaving) or when a leaf's content is unknown (e.g. an RDD
// input or a leaf synthesized for an untracked variable) — both cases are
// conservatively excluded from sharing.
func (ctx *Context) shareSig(it *lineage.Item) (uint64, bool) {
	names := ctx.readLeafNames(it)
	if len(names) == 0 {
		return 0, false
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, n := range names {
		sum, ok := ctx.inputSigs[n]
		if !ok {
			return 0, false
		}
		h.Write([]byte(n))
		h.Write([]byte{0})
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64(), true
}

// shareProbe consults the shared level for an item, charging the returned
// virtual cost on the session clock. On a hit it returns a private matrix
// copy and the producer's compute-cost estimate.
func (ctx *Context) shareProbe(it *lineage.Item) (*data.Matrix, float64, bool) {
	if ctx.Shared == nil {
		return nil, 0, false
	}
	sig, ok := ctx.shareSig(it)
	if !ok {
		return nil, 0, false
	}
	ctx.Stats.SharedProbes++
	m, computeCost, charge, hit := ctx.Shared.Probe(ctx.Tenant, it, sig)
	ctx.Clock.Advance(charge)
	if !hit {
		return nil, 0, false
	}
	ctx.Stats.SharedHits++
	return m, computeCost, true
}

// sharePublish offers a computed driver-local value to the shared level,
// charging the returned virtual cost on the session clock.
func (ctx *Context) sharePublish(it *lineage.Item, m *data.Matrix, computeCost float64) {
	if ctx.Shared == nil {
		return
	}
	sig, ok := ctx.shareSig(it)
	if !ok {
		return
	}
	charge, stored := ctx.Shared.Publish(ctx.Tenant, it, sig, m, computeCost)
	ctx.Clock.Advance(charge)
	if stored {
		ctx.Stats.SharedPuts++
	}
}

// wantShare gates fine-grained shared-cache traffic by backend and size:
// only driver-local results at or above the configured flops floor cross
// the session boundary.
func (ctx *Context) wantShare(flops float64) bool {
	return ctx.Shared != nil && flops >= ctx.Conf.ShareMinFlops
}
