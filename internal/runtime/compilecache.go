package runtime

import (
	"fmt"
	"hash/fnv"
	"sort"

	"memphis/internal/compiler"
	"memphis/internal/ir"
	"memphis/internal/memplan"
)

// CompiledBlock is one fully prepared basic-block execution unit: the
// compiled instruction stream, and — when a memory planner is configured —
// the planner's rewritten stream and plan. Cached blocks are shared
// read-only across concurrent sessions: instructions are never mutated
// during execution and memplan.Plan's runtime queries (LifetimeAt,
// SkipCache, NextUse) are read-only, so no further synchronization is
// needed once a block is published.
type CompiledBlock struct {
	// Insts is the raw compiled stream (before planner rewrites).
	Insts []compiler.Instruction
	// Planned is the stream to execute: the planner-rewritten stream, or
	// Insts itself when no planner is configured.
	Planned []compiler.Instruction
	// Plan is the memory plan for Planned (nil without a planner).
	Plan *memplan.Plan
	// Sig is streamSig(Insts): the session-level plan-record key, so a
	// session using the compile cache keeps the same per-stream planner
	// accounting as one compiling from scratch.
	Sig uint64
}

// CompileCache is the cross-session compiled-plan cache interface
// implemented by the serving layer. Both methods must be safe for
// concurrent use. StoreCompiled returns the block that ends up resident:
// under a racing double-compile the first writer wins and later writers
// adopt the resident block, so every session executes the same object.
type CompileCache interface {
	LookupCompiled(key uint64) (*CompiledBlock, bool)
	StoreCompiled(key uint64, cb *CompiledBlock) *CompiledBlock
}

// AttachCompileCache connects the session to a cross-session compiled-plan
// cache. programKey identifies the program (ir.Program.Fingerprint of the
// submitted script); it is folded into every block key so textually
// different scripts never share entries even when individual blocks
// compile identically.
//
// Compilation and planning charge no virtual time, so attaching a compile
// cache is vtime-neutral: results and per-request virtual latencies are
// bitwise-identical to the cache-off path.
func (ctx *Context) AttachCompileCache(cc CompileCache, programKey uint64) {
	ctx.compCache = cc
	ctx.progKey = programKey
	if ctx.bbKeys == nil {
		ctx.bbKeys = make(map[*ir.BasicBlock]blockKeyParts)
	}
}

// blockKeyParts memoizes the shape-independent components of a block's
// cache key: the structural fingerprint and the sorted set of variables
// the block reads (whose shapes are the dynamic key component).
type blockKeyParts struct {
	fp    uint64
	reads []string
}

// blockKey computes the compile-cache key for one basic block in the
// current environment: (program, block structure, shapes of the variables
// the block reads, compiler config, planner config). Compilation is a pure
// function of exactly these inputs — CompileBlock consults the shape
// environment only through the block's variable references — so equal keys
// imply bitwise-equal compiled streams.
func (ctx *Context) blockKey(bb *ir.BasicBlock) uint64 {
	parts, ok := ctx.bbKeys[bb]
	if !ok {
		readSet := make(map[string]struct{})
		for _, st := range bb.Stmts {
			ir.VarsRead(st.Expr, readSet)
		}
		reads := make([]string, 0, len(readSet))
		for name := range readSet {
			reads = append(reads, name)
		}
		sort.Strings(reads)
		parts = blockKeyParts{fp: ir.FingerprintBlock(bb), reads: reads}
		ctx.bbKeys[bb] = parts
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x|%016x|", ctx.progKey, parts.fp)
	for _, name := range parts.reads {
		if v, bound := ctx.vars[name]; bound {
			fmt.Fprintf(h, "%s=%dx%d;", name, v.Rows, v.Cols)
		} else {
			fmt.Fprintf(h, "%s=?;", name)
		}
	}
	// Config.Fold is the deterministic key text (an interface field in the
	// config would print pointer addresses under %+v); it includes the
	// calibration epoch/fingerprint when adaptive placement is active.
	fmt.Fprintf(h, "|cc:%s", ctx.Conf.Compiler.Fold())
	if ctx.Conf.MemPlan != nil {
		fmt.Fprintf(h, "|mp:%+v", *ctx.Conf.MemPlan)
	}
	return h.Sum64()
}

// compiledBlock returns the prepared execution unit for a basic block via
// the attached compile cache, compiling (and planning) on miss. Callers
// must have ctx.compCache non-nil.
func (ctx *Context) compiledBlock(bb *ir.BasicBlock) *CompiledBlock {
	key := ctx.blockKey(bb)
	if cb, hit := ctx.compCache.LookupCompiled(key); hit {
		return cb
	}
	insts := compiler.CompileBlock(bb, ctx.shapes(), ctx.Conf.Compiler)
	cb := &CompiledBlock{Insts: insts, Planned: insts, Sig: streamSig(insts)}
	if ctx.Conf.MemPlan != nil {
		cb.Planned, cb.Plan = memplan.Apply(insts, *ctx.Conf.MemPlan)
	}
	return ctx.compCache.StoreCompiled(key, cb)
}

// planBlockPre is planBlock for a cache-prepared block: the plan and
// rewritten stream come from the CompiledBlock (planned once at store
// time), while the session still keeps its own planRecord keyed by the
// stream signature, so planner reports and eviction attribution are
// identical to the cache-off path.
func (ctx *Context) planBlockPre(cb *CompiledBlock) (*memplan.Plan, []compiler.Instruction, *planRecord) {
	if ctx.planRecs == nil {
		ctx.planRecs = make(map[uint64]*planRecord)
	}
	if rec, ok := ctx.planRecs[cb.Sig]; ok {
		return rec.plan, rec.insts, rec
	}
	rec := &planRecord{seq: len(ctx.planOrder), sig: cb.Sig, plan: cb.Plan, insts: cb.Planned}
	ctx.planRecs[cb.Sig] = rec
	ctx.planOrder = append(ctx.planOrder, cb.Sig)
	return cb.Plan, cb.Planned, rec
}
