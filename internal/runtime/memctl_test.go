package runtime

import (
	"testing"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/gpu"
	"memphis/internal/lineage"
)

// demotableSetup binds a cached live GPU pointer to variable name, the
// shape the demotion ladder operates on.
func demotableSetup(t *testing.T, ctx *Context, name string, m *data.Matrix, cost float64) *gpu.Pointer {
	t.Helper()
	p, err := ctx.GM.Allocate(m.SizeBytes(), 2, cost)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	ctx.GM.Device().CopyIn(p, m)
	e := ctx.Cache.PutGPU(lineage.NewLeaf("read", name), p, cost, 1)
	if e == nil {
		t.Fatal("PutGPU returned no entry")
	}
	ctx.setVar(name, NewGPUValue(p, m.Rows, m.Cols))
	return p
}

// TestDemoteGPUChargesD2HOnce is the satellite-2 regression: demoting a
// cached live pointer to the host must charge exactly one D2H transfer
// (plus the cudaFree of the surrendered device memory) — the recycle
// callback must not fire a second transfer when the pointer is freed.
func TestDemoteGPUChargesD2HOnce(t *testing.T) {
	ctx := New(testConfig(ReuseMemphis))
	defer ctx.Close()
	m := data.RandNorm(16, 16, 0, 1, 7)
	p := demotableSetup(t, ctx, "x", m, 0.5)

	before := ctx.Clock.Now()
	freed := ctx.demoteGPUToHost(p.Size())
	delta := ctx.Clock.Now() - before

	want := costs.Transfer(m.SizeBytes(), ctx.Model.D2HBW, ctx.Model.CopyLatency) +
		ctx.Model.CudaFree
	if delta != want {
		t.Fatalf("vtime delta %v, want exactly one D2H + cudaFree = %v", delta, want)
	}
	if freed != m.SizeBytes() {
		t.Fatalf("freed %d, want %d", freed, m.SizeBytes())
	}
	if p.Valid() {
		t.Fatal("pointer still owns device memory after demotion")
	}
	if got := ctx.Cache.Stats.GPUToHost; got != 1 {
		t.Fatalf("GPUToHost = %d, want 1", got)
	}
	v := ctx.Var("x")
	if v.GPU != nil || v.M == nil {
		t.Fatalf("variable not rewired to host copy: GPU=%v M=%v", v.GPU, v.M)
	}
	if v.M.Checksum() != m.Checksum() {
		t.Fatal("demoted host copy differs from device value")
	}
	// The value survived the ladder: it is now a CP cache entry.
	if ctx.Cache.CPUsed() != m.SizeBytes() {
		t.Fatalf("CPUsed = %d, want %d", ctx.Cache.CPUsed(), m.SizeBytes())
	}
	snap := ctx.Arb.Snapshot()
	var gpuDemoted int64
	for _, s := range snap {
		if s.Name == gpu.PoolName {
			gpuDemoted = s.DemotedBytes
		}
	}
	if gpuDemoted != m.SizeBytes() {
		t.Fatalf("arbiter gpu DemotedBytes = %d, want %d", gpuDemoted, m.SizeBytes())
	}
}

// TestAllocateStep5DemotesThroughArbiter fills the device with cached live
// pointers and allocates once more: Algorithm 1 must reach step 5, route
// through the arbiter's ladder, demote the LRU-scored pointer to the host
// cache, and satisfy the allocation — with the variable transparently
// rewired to its host copy.
func TestAllocateStep5DemotesThroughArbiter(t *testing.T) {
	conf := testConfig(ReuseMemphis)
	conf.GPUCapacity = 4 << 10 // room for exactly two 2KB blocks
	ctx := New(conf)
	defer ctx.Close()
	ma := data.RandNorm(16, 16, 0, 1, 1)
	mb := data.RandNorm(16, 16, 0, 1, 2)
	pa := demotableSetup(t, ctx, "a", ma, 0.5)
	pb := demotableSetup(t, ctx, "b", mb, 0.5)

	p, err := ctx.GM.Allocate(2<<10, 1, 0)
	if err != nil {
		t.Fatalf("Allocate after full device: %v", err)
	}
	if !p.Valid() {
		t.Fatal("allocation invalid")
	}
	if ctx.GM.Stats.HostEvictions != 1 {
		t.Fatalf("HostEvictions = %d, want 1", ctx.GM.Stats.HostEvictions)
	}
	// The earlier-allocated pointer has the lower recency score and is
	// demoted first; the other stays device-resident.
	if pa.Valid() {
		t.Fatal("LRU pointer a still on device")
	}
	if !pb.Valid() {
		t.Fatal("pointer b was demoted unnecessarily")
	}
	if va := ctx.Var("a"); va.M == nil || va.M.Checksum() != ma.Checksum() {
		t.Fatal("variable a lost its value across demotion")
	}
	if ctx.Arb.Pressure(gpu.PoolName) == 0 {
		t.Fatal("gpu pool reports no pressure")
	}
	snap := ctx.Arb.Snapshot()
	names := make([]string, len(snap))
	for i, s := range snap {
		names[i] = s.Name
	}
	// Fixed registration order: cp, spark-reuse, spark, gpu.
	want := []string{"cp", "spark-reuse", "spark", "gpu"}
	for i := range want {
		if i >= len(names) || names[i] != want[i] {
			t.Fatalf("pool order %v, want %v", names, want)
		}
	}
}

// TestDemotionCascadesToDiskSpill drives the full ladder: a GPU demotion
// lands in a driver cache too small to hold it alongside existing entries,
// so the CP rung spills or drops victims — the value remains correct and
// reachable end to end.
func TestDemotionCascadesToDiskSpill(t *testing.T) {
	conf := testConfig(ReuseMemphis)
	conf.Cache.CPBudget = 3 << 10 // one 2KB matrix + slack, not two
	ctx := New(conf)
	defer ctx.Close()

	// An expensive CP entry occupying most of the budget: the cascade must
	// push it out (spill, given its high compute cost).
	mc := data.RandNorm(16, 16, 0, 1, 3)
	ec := ctx.Cache.PutCP(lineage.NewLeaf("read", "c"), mc, 10.0, 1, false, false)
	if ec == nil {
		t.Fatal("PutCP failed")
	}

	mg := data.RandNorm(16, 16, 0, 1, 4)
	pg := demotableSetup(t, ctx, "g", mg, 0.5)
	if got := ctx.demoteGPUToHost(pg.Size()); got != mg.SizeBytes() {
		t.Fatalf("demoted %d, want %d", got, mg.SizeBytes())
	}
	if ctx.Cache.Stats.SpillsCP != 1 {
		t.Fatalf("SpillsCP = %d, want 1 (cascade to disk)", ctx.Cache.Stats.SpillsCP)
	}
	if v := ctx.Var("g"); v.M == nil || v.M.Checksum() != mg.Checksum() {
		t.Fatal("demoted value lost in cascade")
	}
	// The spilled entry is still reachable: restoring charges a disk read.
	if m := ctx.Cache.Matrix(ec); m == nil || m.Checksum() != mc.Checksum() {
		t.Fatal("spilled CP entry not restorable")
	}
}
