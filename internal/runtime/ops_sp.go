package runtime

import (
	"fmt"
	"math"

	"memphis/internal/compiler"
	"memphis/internal/data"
	"memphis/internal/spark"
)

// execSP runs an instruction as a distributed (lazy) operation. The
// returned Value carries the output RDD plus the dangling child RDDs and
// broadcasts for the cache's lazy garbage collection.
func (ctx *Context) execSP(inst *compiler.Instruction) (*Value, error) {
	if ctx.SC == nil {
		return nil, fmt.Errorf("spark backend not configured")
	}
	switch inst.Op {
	case "tsmm":
		v, err := ctx.operand(inst.Inputs[0])
		if err != nil {
			return nil, err
		}
		x := ctx.ensureRDD(v, inst.Inputs[0])
		return ctx.spValue(spark.TSMM(x), x), nil
	case "cpmm":
		a, err := ctx.operand(inst.Inputs[0])
		if err != nil {
			return nil, err
		}
		b, err := ctx.operand(inst.Inputs[1])
		if err != nil {
			return nil, err
		}
		ra := ctx.ensureRDD(a, inst.Inputs[0])
		rb := ctx.ensureRDD(b, inst.Inputs[1])
		if ra.NumPartitions() != rb.NumPartitions() {
			// Fall back to broadcasting the smaller side.
			if a.SizeBytes() <= b.SizeBytes() {
				bc := ctx.ensureBcast(a)
				out := spark.VecMM(bc, rb)
				return ctx.spValueB(out, []*spark.RDD{rb}, bc), nil
			}
			return nil, fmt.Errorf("cpmm partition mismatch %d vs %d",
				ra.NumPartitions(), rb.NumPartitions())
		}
		return ctx.spValue(spark.CPMM(ra, rb), ra, rb), nil
	case "mm":
		return ctx.execSPMatMul(inst)
	case "+", "-", "*", "/", "min", "max", ">", "<":
		return ctx.execSPBinary(inst)
	case "exp", "log", "sqrt", "abs", "sigmoid", "relu", "pow", "replaceNaN":
		v, err := ctx.operand(inst.Inputs[0])
		if err != nil {
			return nil, err
		}
		x := ctx.ensureRDD(v, inst.Inputs[0])
		f := unaryFunc(inst)
		out := spark.MapElementwise(x, nil, inst.Op,
			func(p, _ *data.Matrix) *data.Matrix { return f(p) })
		return ctx.spValue(out, x), nil
	case "rowSums":
		v, err := ctx.operand(inst.Inputs[0])
		if err != nil {
			return nil, err
		}
		x := ctx.ensureRDD(v, inst.Inputs[0])
		out := x.MapPartitions("rowSums", v.Rows, 1,
			func(int) float64 { return float64(v.Rows * v.Cols) }, nil,
			func(_ int, p *data.Matrix) *data.Matrix { return data.RowSums(p) })
		return ctx.spValue(out, x), nil
	case "colSums", "colMeans", "colVars", "colMins", "colMaxs", "sum", "mean":
		return ctx.execSPAggregate(inst)
	case "imputeMean":
		return ctx.execSPImputeMean(inst)
	case "scale":
		return ctx.execSPScale(inst)
	case "minmax":
		return ctx.execSPMinMax(inst)
	default:
		return nil, fmt.Errorf("unknown SP opcode %q", inst.Op)
	}
}

// spValue wraps an RDD result recording its parents for lazy GC.
func (ctx *Context) spValue(out *spark.RDD, children ...*spark.RDD) *Value {
	v := NewRDDValue(out)
	v.children = children
	return v
}

func (ctx *Context) spValueB(out *spark.RDD, children []*spark.RDD, bcs ...*spark.Broadcast) *Value {
	v := NewRDDValue(out)
	v.children = children
	v.bcasts = bcs
	return v
}

// execSPMatMul selects the distributed matmul variant: a broadcast row
// vector on the left (vecmm), a broadcastable right operand (mapmm), or a
// zip cross-product.
func (ctx *Context) execSPMatMul(inst *compiler.Instruction) (*Value, error) {
	a, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return nil, err
	}
	b, err := ctx.operand(inst.Inputs[1])
	if err != nil {
		return nil, err
	}
	switch {
	case a.Rows == 1:
		// v^T X: broadcast the vector, shuffle-free map plus small agg.
		rb := ctx.ensureRDD(b, inst.Inputs[1])
		bc := ctx.ensureBcast(a)
		return ctx.spValueB(spark.VecMM(bc, rb), []*spark.RDD{rb}, bc), nil
	case b.SizeBytes() <= ctx.Conf.Compiler.OpMemBudget:
		// X W with small W: broadcast-based multiply.
		ra := ctx.ensureRDD(a, inst.Inputs[0])
		bc := ctx.ensureBcast(b)
		return ctx.spValueB(spark.MapMM(ra, bc, inst.Inputs[1]), []*spark.RDD{ra}, bc), nil
	case a.SizeBytes() <= ctx.Conf.Compiler.OpMemBudget:
		// Small left operand against a distributed right: broadcast A and
		// sum partition partials behind a shuffle.
		rb := ctx.ensureRDD(b, inst.Inputs[1])
		bc := ctx.ensureBcast(a)
		return ctx.spValueB(spark.LeftMM(bc, rb), []*spark.RDD{rb}, bc), nil
	default:
		return nil, fmt.Errorf("distributed mm with two large operands is not supported")
	}
}

// execSPBinary runs a distributed elementwise op: co-partitioned zip when
// both sides are large, broadcast otherwise.
func (ctx *Context) execSPBinary(inst *compiler.Instruction) (*Value, error) {
	a, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return nil, err
	}
	b, err := ctx.operand(inst.Inputs[1])
	if err != nil {
		return nil, err
	}
	f := binFunc(inst.Op)
	// The larger side is distributed; swap so a is the distributed one but
	// preserve operand order in the kernel.
	swapped := false
	if b.SizeBytes() > a.SizeBytes() {
		a, b = b, a
		swapped = true
	}
	apply := func(x, y *data.Matrix) *data.Matrix {
		if swapped {
			return f(y, x)
		}
		return f(x, y)
	}
	ra := ctx.ensureRDD(a, inst.Inputs[0])
	if b.SizeBytes() <= ctx.Conf.Compiler.OpMemBudget || b.Rows != a.Rows {
		bc := ctx.ensureBcast(b)
		out := spark.MapElementwise(ra, bc, inst.Op, apply)
		return ctx.spValueB(out, []*spark.RDD{ra}, bc), nil
	}
	rb := ctx.ensureRDD(b, inst.Inputs[1])
	if ra.NumPartitions() != rb.NumPartitions() {
		bc := ctx.ensureBcast(b)
		out := spark.MapElementwise(ra, bc, inst.Op, apply)
		return ctx.spValueB(out, []*spark.RDD{ra}, bc), nil
	}
	out := spark.Elementwise(ra, rb, inst.Op, apply)
	return ctx.spValue(out, ra, rb), nil
}

// execSPAggregate implements full and column aggregates behind shuffles.
func (ctx *Context) execSPAggregate(inst *compiler.Instruction) (*Value, error) {
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return nil, err
	}
	x := ctx.ensureRDD(v, inst.Inputs[0])
	rows := float64(v.Rows)
	switch inst.Op {
	case "colSums":
		return ctx.spValue(spark.ColAggregate(x, "sum", data.ColSums, data.Add), x), nil
	case "colMins":
		return ctx.spValue(spark.ColAggregate(x, "min", data.ColMins, data.MinElem), x), nil
	case "colMaxs":
		return ctx.spValue(spark.ColAggregate(x, "max", data.ColMaxs, data.MaxElem), x), nil
	case "colMeans":
		sums := spark.ColAggregate(x, "sum", data.ColSums, data.Add)
		out := spark.MapElementwise(sums, nil, "/n",
			func(p, _ *data.Matrix) *data.Matrix { return data.MulScalar(p, 1/rows) })
		return ctx.spValue(out, x, sums), nil
	case "colVars":
		stats := spark.ColAggregate(x, "var",
			func(p *data.Matrix) *data.Matrix {
				return data.RBind(data.ColSums(p), data.ColSums(data.PowScalar(p, 2)))
			},
			data.Add)
		out := spark.MapElementwise(stats, nil, "finvar",
			func(p, _ *data.Matrix) *data.Matrix {
				res := data.New(1, p.Cols)
				for j := 0; j < p.Cols; j++ {
					mu := p.At(0, j) / rows
					res.Set(0, j, p.At(1, j)/rows-mu*mu)
				}
				return res
			})
		return ctx.spValue(out, x, stats), nil
	case "sum", "mean":
		agg := spark.ColAggregate(x, "sum", data.ColSums, data.Add)
		div := 1.0
		if inst.Op == "mean" {
			div = rows * float64(v.Cols)
		}
		out := spark.MapElementwise(agg, nil, "total",
			func(p, _ *data.Matrix) *data.Matrix {
				if inst.Op == "mean" {
					return data.Scalar(data.Sum(p) / div)
				}
				return data.Scalar(data.Sum(p))
			})
		return ctx.spValue(out, x, agg), nil
	}
	return nil, fmt.Errorf("unknown SP aggregate %q", inst.Op)
}

// colStats collects per-column (sum, count) over observed values of a
// distributed matrix; the collect is a reusable Spark action.
func (ctx *Context) nanColMeans(x *spark.RDD, cols int) *data.Matrix {
	stats := spark.ColAggregate(x, "nanstats",
		func(p *data.Matrix) *data.Matrix {
			sums := data.New(1, p.Cols)
			counts := data.New(1, p.Cols)
			for i := 0; i < p.Rows; i++ {
				for j := 0; j < p.Cols; j++ {
					if v := p.At(i, j); !math.IsNaN(v) {
						sums.Data[j] += v
						counts.Data[j]++
					}
				}
			}
			return data.RBind(sums, counts)
		}, data.Add)
	collected := ctx.SC.Collect(stats)
	means := data.New(1, cols)
	for j := 0; j < cols; j++ {
		if c := collected.At(1, j); c > 0 {
			means.Data[j] = collected.At(0, j) / c
		}
	}
	return means
}

// execSPImputeMean replaces NaNs column-wise in two distributed phases.
func (ctx *Context) execSPImputeMean(inst *compiler.Instruction) (*Value, error) {
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return nil, err
	}
	x := ctx.ensureRDD(v, inst.Inputs[0])
	means := ctx.nanColMeans(x, v.Cols)
	bc := ctx.SC.NewBroadcast(means, false)
	out := spark.MapElementwise(x, bc, "impute", func(p, mu *data.Matrix) *data.Matrix {
		res := p.Clone()
		for i := 0; i < res.Rows; i++ {
			for j := 0; j < res.Cols; j++ {
				if math.IsNaN(res.At(i, j)) {
					res.Set(i, j, mu.At(0, j))
				}
			}
		}
		return res
	})
	return ctx.spValueB(out, []*spark.RDD{x}, bc), nil
}

// execSPScale standardizes columns in two distributed phases.
func (ctx *Context) execSPScale(inst *compiler.Instruction) (*Value, error) {
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return nil, err
	}
	x := ctx.ensureRDD(v, inst.Inputs[0])
	rows := float64(v.Rows)
	stats := spark.ColAggregate(x, "scstats",
		func(p *data.Matrix) *data.Matrix {
			return data.RBind(data.ColSums(p), data.ColSums(data.PowScalar(p, 2)))
		}, data.Add)
	collected := ctx.SC.Collect(stats)
	musd := data.New(2, v.Cols)
	for j := 0; j < v.Cols; j++ {
		mu := collected.At(0, j) / rows
		va := collected.At(1, j)/rows - mu*mu
		musd.Set(0, j, mu)
		if va > 0 {
			musd.Set(1, j, math.Sqrt(va))
		}
	}
	bc := ctx.SC.NewBroadcast(musd, false)
	out := spark.MapElementwise(x, bc, "scale", func(p, ms *data.Matrix) *data.Matrix {
		res := data.New(p.Rows, p.Cols)
		for i := 0; i < p.Rows; i++ {
			for j := 0; j < p.Cols; j++ {
				d := p.At(i, j) - ms.At(0, j)
				if sd := ms.At(1, j); sd > 0 {
					d /= sd
				}
				res.Set(i, j, d)
			}
		}
		return res
	})
	return ctx.spValueB(out, []*spark.RDD{x, stats}, bc), nil
}

// execSPMinMax rescales columns to [0,1] in two distributed phases.
func (ctx *Context) execSPMinMax(inst *compiler.Instruction) (*Value, error) {
	v, err := ctx.operand(inst.Inputs[0])
	if err != nil {
		return nil, err
	}
	x := ctx.ensureRDD(v, inst.Inputs[0])
	lo := ctx.SC.Collect(spark.ColAggregate(x, "min", data.ColMins, data.MinElem))
	hi := ctx.SC.Collect(spark.ColAggregate(x, "max", data.ColMaxs, data.MaxElem))
	lohi := data.RBind(lo, hi)
	bc := ctx.SC.NewBroadcast(lohi, false)
	out := spark.MapElementwise(x, bc, "minmax", func(p, b *data.Matrix) *data.Matrix {
		res := data.New(p.Rows, p.Cols)
		for i := 0; i < p.Rows; i++ {
			for j := 0; j < p.Cols; j++ {
				if r := b.At(1, j) - b.At(0, j); r > 0 {
					res.Set(i, j, (p.At(i, j)-b.At(0, j))/r)
				}
			}
		}
		return res
	})
	return ctx.spValueB(out, []*spark.RDD{x}, bc), nil
}
