package runtime

import (
	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/lineage"
)

// ReuseRow re-exports the lineage recorder's snapshot row for the facade
// and CLIs.
type ReuseRow = lineage.ReuseRow

// Closed-loop cost model glue: Execute's observation hooks feed the
// session's costs.Calibration (observed virtual costs per operator) and
// lineage.ReuseStats (probe/hit tallies per op/backend/shape-class), and
// runBasicBlock recalibrates at every block boundary. All observations
// are virtual-clock deltas — pure functions of the execution trace — so
// adaptive runs replay bitwise-identically.

// obsClass buckets an instruction's output size for observation keys.
func obsClass(inst *compiler.Instruction) int {
	return costs.ShapeClass(int64(inst.Shape.Rows) * int64(inst.Shape.Cols))
}

// noteReuse records one fine-grained cache probe (local or shared) against
// the backend the operator was placed on. No-op without Config.Adaptive.
func (ctx *Context) noteReuse(inst *compiler.Instruction, hit bool) {
	if ctx.reuse == nil {
		return
	}
	ctx.reuse.Note(inst.Op, int(inst.Backend), obsClass(inst), hit)
}

// observeOp records one executed (cache-missed) operator: its flop
// estimate, the virtual cost the driver observed across the whole
// instruction (interpret, trace, failed probes, execution, cache put),
// and an estimate of the bytes the execution moved. Charging the full
// driver-visible delta — not just the kernel — is deliberate: that is the
// cost placement decisions actually pay. Fused instructions observe under
// ir.FusedOp as their own operator class.
func (ctx *Context) observeOp(inst *compiler.Instruction, vcost float64) {
	if ctx.cal == nil {
		return
	}
	moved := inst.Shape.Bytes()
	if inst.Backend != core.BackendCP {
		// Remote execution ships inputs across a link (collect/H2D).
		for _, s := range inst.InShapes {
			moved += s.Bytes()
		}
	}
	ctx.cal.ObserveOp(inst.Op, costs.Backend(inst.Backend), obsClass(inst), inst.Flops, vcost, moved)
}

// recalibrate folds the accumulated observations into a fresh calibration
// snapshot (end of every basic block). Epoch advances count as
// Stats.Recalibrations; the new epoch reaches the compiler on the next
// block compile via the injected estimator and joins compile-cache keys
// through Config.Fold.
func (ctx *Context) recalibrate() {
	if ctx.cal == nil {
		return
	}
	if ctx.cal.Recalibrate(ctx.reuse) {
		ctx.Stats.Recalibrations++
	}
}

// CalibrationReport returns the closed-loop calibration snapshot, or nil
// without Config.Adaptive. Rows are deterministically sorted, so two
// replays of the same trace serialize byte-identically.
func (ctx *Context) CalibrationReport() *costs.CalibrationReport {
	if ctx.cal == nil {
		return nil
	}
	return ctx.cal.Report()
}

// ReuseSnapshot returns the raw probe/hit tallies (nil without
// Config.Adaptive).
func (ctx *Context) ReuseSnapshot() []ReuseRow {
	if ctx.reuse == nil {
		return nil
	}
	return ctx.reuse.Snapshot()
}
