package runtime

import (
	"fmt"
	"strconv"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/lineage"
)

// Recompute implements the RECOMPUTE API (§3.2): it re-executes a lineage
// trace and returns the root's value. Leaf "read" items resolve to
// variables bound in the context; leaf "lit" items to scalar literals; all
// other items are lowered back into instructions through the regular
// execution path (so the environment — placement, backends — may differ
// from the original run while producing the exact same values, since every
// randomized operation carries its seed in the trace).
func Recompute(ctx *Context, root *lineage.Item) (*data.Matrix, error) {
	order := topoOrder(root)
	names := make(map[uint64]string, len(order))
	for i, it := range order {
		name := fmt.Sprintf("_rc%d", i)
		names[it.ID()] = name
		switch it.Opcode() {
		case "read":
			if ctx.Var(it.Data()) == nil {
				return nil, fmt.Errorf("runtime: recompute needs input %q", it.Data())
			}
			names[it.ID()] = it.Data()
			continue
		case "lit":
			names[it.ID()] = compiler.LiteralOperand(it.Data())
			continue
		case "fnout":
			return nil, fmt.Errorf("runtime: cannot recompute opaque function item %q; serialize the fine-grained trace instead", it.Data())
		}
		inst, err := itemToInstruction(it, names, name)
		if err != nil {
			return nil, err
		}
		if err := ctx.Execute(inst); err != nil {
			return nil, err
		}
	}
	out := ctx.Var(names[root.ID()])
	if out == nil {
		return nil, fmt.Errorf("runtime: recompute produced no value")
	}
	m := ctx.ensureHost(out)
	// Clean up recompute temporaries.
	for _, it := range order {
		if n := names[it.ID()]; strings.HasPrefix(n, "_rc") {
			ctx.removeVar(n)
		}
	}
	return m, nil
}

// topoOrder returns the items of a DAG inputs-first.
func topoOrder(root *lineage.Item) []*lineage.Item {
	var order []*lineage.Item
	seen := make(map[uint64]struct{})
	var visit func(it *lineage.Item)
	visit = func(it *lineage.Item) {
		if _, ok := seen[it.ID()]; ok {
			return
		}
		seen[it.ID()] = struct{}{}
		for _, in := range it.Inputs() {
			visit(in)
		}
		order = append(order, it)
	}
	visit(root)
	return order
}

// itemToInstruction reverses the trace encoding: the data field holds
// "key=value" attributes plus "inN=literal" positional literal operands.
func itemToInstruction(it *lineage.Item, names map[uint64]string, output string) (*compiler.Instruction, error) {
	attrs := make(map[string]string)
	literals := make(map[int]string)
	if d := it.Data(); d != "" {
		for _, kv := range strings.Split(d, ";") {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, fmt.Errorf("runtime: malformed lineage data %q", kv)
			}
			k, v := kv[:eq], kv[eq+1:]
			if strings.HasPrefix(k, "in") {
				if pos, err := strconv.Atoi(k[2:]); err == nil {
					literals[pos] = v
					continue
				}
			}
			attrs[k] = v
		}
	}
	total := len(it.Inputs()) + len(literals)
	inputs := make([]string, total)
	vi := 0
	for pos := 0; pos < total; pos++ {
		if lit, ok := literals[pos]; ok {
			inputs[pos] = compiler.LiteralOperand(lit)
			continue
		}
		if vi >= len(it.Inputs()) {
			return nil, fmt.Errorf("runtime: lineage item %s has inconsistent operands", it.Opcode())
		}
		inputs[pos] = names[it.Inputs()[vi].ID()]
		vi++
	}
	return &compiler.Instruction{
		Kind:    compiler.KindOp,
		Op:      it.Opcode(),
		Inputs:  inputs,
		Outputs: []string{output},
		Attrs:   attrs,
		Backend: core.BackendCP,
	}, nil
}
