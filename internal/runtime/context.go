package runtime

import (
	"fmt"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/gpu"
	"memphis/internal/ir"
	"memphis/internal/lineage"
	"memphis/internal/memctl"
	"memphis/internal/memplan"
	"memphis/internal/spark"
	"memphis/internal/vtime"
)

// ReuseMode selects the reuse framework emulated by the runtime, matching
// the paper's baselines (§6.1).
type ReuseMode int

const (
	// ReuseNone disables lineage tracing and reuse entirely (Base).
	ReuseNone ReuseMode = iota
	// ReuseTrace enables tracing without any reuse (the Trace config of
	// Figure 11, isolating tracing overhead).
	ReuseTrace
	// ReuseLIMA enables eager fine-grained reuse of local CP operations
	// only, like the LIMA framework.
	ReuseLIMA
	// ReuseHelix enables coarse-grained (function-level) reuse only, like
	// HELIX-style pipeline-level materialization.
	ReuseHelix
	// ReuseMemphisFine is MEMPHIS with multi-level (function) reuse
	// disabled: operator-at-a-time reuse across all backends (MPH-F).
	ReuseMemphisFine
	// ReuseMemphis is full MEMPHIS: fine-grained multi-backend reuse plus
	// multi-level function reuse.
	ReuseMemphis
)

func (m ReuseMode) String() string {
	switch m {
	case ReuseNone:
		return "Base"
	case ReuseTrace:
		return "Trace"
	case ReuseLIMA:
		return "LIMA"
	case ReuseHelix:
		return "HELIX"
	case ReuseMemphisFine:
		return "MPH-F"
	case ReuseMemphis:
		return "MPH"
	default:
		return "?"
	}
}

// Config assembles the runtime configuration.
type Config struct {
	Mode     ReuseMode
	Compiler compiler.Config
	Cache    core.Config

	// CPAllowlist, when non-nil, restricts fine-grained CP caching to the
	// listed opcodes (used to emulate application-specific frameworks such
	// as CoorDL's input-pipeline-only reuse).
	CPAllowlist map[string]bool

	// FuncAllowlist, when non-nil, restricts function-level reuse to the
	// named functions (e.g. Clipper's prediction-only caching).
	FuncAllowlist map[string]bool

	// Spark cluster and GPU sizing; zero values disable the backend.
	Spark       spark.Config
	GPUCapacity int64

	// GPUPolicy selects the device allocator behaviour: the zero value is
	// MEMPHIS's full Algorithm 1; gpu.PolicyPool emulates PyTorch's
	// caching allocator; gpu.PolicyNone disables recycling (Base).
	GPUPolicy gpu.Policy

	// Model overrides the cost model (nil uses costs.Default). Baselines
	// with different hardware assumptions (e.g. Base-P's parallel feature
	// processing) install scaled models.
	Model *costs.Model

	// Parallelism sets the wall-clock worker fan-out of the dense kernel
	// layer and the Spark partition prewarm (data.SetParallelism). Zero
	// leaves the process-wide setting untouched (default: GOMAXPROCS).
	// Results and virtual times are bitwise-identical for every value.
	Parallelism int

	// ShareMinFlops is the flops floor for offering/looking up individual
	// CP operator results in an attached shared cache (function outputs
	// are always shared). Zero shares every cacheable CP result.
	ShareMinFlops float64

	// Faults, when non-nil, injects deterministic failures into the GPU
	// allocator, the Spark simulator, and the driver cache's spill path.
	// Runs with the same plan replay bitwise-identically.
	Faults *faults.Plan

	// Arena enables the shape-keyed host buffer arena: fused-instruction
	// outputs draw recycled buffers from it, and the planner's KindFree
	// points (plus block-end temp clearing) return dead buffers to it.
	// The arena registers with the memory arbiter as its own pool, so
	// cross-backend pressure trims its free lists. Results are
	// bitwise-identical with the arena on or off.
	Arena bool

	// ArenaBudget caps the arena's retained free bytes (0 uses
	// data.DefaultArenaBudget).
	ArenaBudget int64

	// Adaptive enables the closed-loop cost model (Options.
	// AdaptivePlacement on the facade): the context records per-operator
	// observed virtual costs and lineage-cache hit tallies, recalibrates a
	// costs.Calibration after every basic block, and injects it into the
	// compiler as the placement estimator — so CP/GPU/Spark placement
	// follows observed costs and reuse probabilities instead of the static
	// thresholds. Recalibration is a pure function of the execution trace
	// (virtual-clock deltas, never wall time), so adaptive runs replay
	// bitwise-identically. Off (default), every placement and charge is
	// byte-identical to the static pipeline.
	Adaptive bool

	// MemPlan, when non-nil, enables the compile-time memory planner
	// (internal/memplan): every compiled stream is analyzed for liveness,
	// lifetime hints are stamped onto cache entries, and budget-bounding
	// rewrites (early frees, row-panel matmul splits, cache flips) are
	// applied. Nil keeps every execution path bitwise-identical to the
	// planner-less runtime.
	MemPlan *memplan.Config
}

// Stats counts runtime events.
type Stats struct {
	Instructions int64
	CPInsts      int64
	SPInsts      int64
	GPUInsts     int64
	Reused       int64
	ActionReuses int64
	FuncCalls    int64
	FuncReuses   int64
	Prefetches   int64
	Broadcasts   int64
	Checkpoints  int64
	Evicts       int64
	GPUFallbacks int64
	Collects     int64
	D2HFetches   int64

	// Shared-cache traffic (serving layer; zero without AttachShared).
	SharedProbes int64
	SharedHits   int64
	SharedPuts   int64

	// Memory-planner events (zero without Config.MemPlan).
	PlanBlocks int64 // planned stream executions
	EarlyFrees int64 // planner-inserted frees that released a binding

	// Recalibrations counts calibration epoch advances (zero without
	// Config.Adaptive).
	Recalibrations int64
}

// Context is the execution context: symbol table, backends, lineage map,
// cache, and configuration.
type Context struct {
	Clock *vtime.Clock
	Model *costs.Model
	SC    *spark.Context
	GM    *gpu.Manager
	Cache *core.Cache
	LMap  *lineage.Map
	Conf  Config

	// Arb is the unified memory arbiter: every backend memory region (CP
	// cache, Spark reuse share, Spark storage, GPU device) registers with
	// it, and the cross-backend demotion ladder runs through it.
	Arb *memctl.Arbiter

	// Shared is the optional cross-session reuse level (serving layer),
	// attached with AttachShared together with the Tenant identity.
	Shared SharedCache
	Tenant string

	// compCache is the optional cross-session compiled-plan cache
	// (AttachCompileCache); progKey identifies the submitted program and
	// bbKeys memoizes per-block key components.
	compCache CompileCache
	progKey   uint64
	bbKeys    map[*ir.BasicBlock]blockKeyParts

	vars map[string]*Value
	prog *ir.Program

	// inputSigs records content checksums of host-bound inputs by name,
	// and leafMemo caches per-item read-leaf name sets; both feed the
	// content signatures that make cross-tenant sharing sound.
	inputSigs map[string]uint64
	leafMemo  map[*lineage.Item][]string

	// Inj is the session's fault injector (nil without Config.Faults); its
	// counters feed the serving layer's failure report.
	Inj *faults.Injector

	// Current block header parameters (set per basic block).
	delayFactor  int
	storageLevel spark.StorageLevel

	// Memory-planner state: the plan of the currently executing stream,
	// the current instruction position within it, the soon-reuse window,
	// and the per-signature plan records (nil without Config.MemPlan).
	activePlan *memplan.Plan
	planPos    int
	planWindow int
	planRecs   map[uint64]*planRecord
	planOrder  []uint64

	// arena is the optional pooled buffer arena (Config.Arena); fusedProgs
	// memoizes parsed fused-instruction step programs by encoding.
	arena      *data.Arena
	fusedProgs map[string]*data.FusedProgram

	// Closed-loop cost model state (nil without Config.Adaptive): cal is
	// the calibration overlay injected into the compiler as the placement
	// estimator, reuse the per-(op, backend, shape-class) probe/hit
	// recorder feeding its reuse probabilities.
	cal   *costs.Calibration
	reuse *lineage.ReuseStats

	closed bool

	Stats Stats
}

// New creates a context with the configured backends on a fresh clock.
func New(conf Config) *Context {
	clock := vtime.New()
	model := conf.Model
	if model == nil {
		model = costs.Default()
	}
	if conf.Parallelism > 0 {
		data.SetParallelism(conf.Parallelism)
	}
	ctx := &Context{
		Clock: clock,
		Model: model,
		LMap:  lineage.NewMap(),
		Conf:  conf,
		vars:  make(map[string]*Value),
	}
	if conf.Spark.NumExecutors > 0 {
		ctx.SC = spark.NewContext(clock, model, conf.Spark)
	}
	if conf.GPUCapacity > 0 {
		dev := gpu.NewDevice(clock, model, "gpu0", conf.GPUCapacity)
		ctx.GM = gpu.NewManager(dev)
		ctx.GM.Policy = conf.GPUPolicy
	}
	ctx.Cache = core.NewCache(clock, model, conf.Cache, ctx.SC, ctx.GM)
	// Register every backend memory region with the arbiter, in a fixed
	// order (cp, spark-reuse, spark, gpu) so snapshots are stable.
	ctx.Arb = memctl.NewArbiter()
	ctx.Cache.SetArbiter(ctx.Arb)
	if ctx.SC != nil {
		ctx.SC.SetArbiter(ctx.Arb)
	}
	if ctx.GM != nil {
		ctx.Arb.Register(ctx.GM.MemPool(ctx.demoteGPUToHost))
		ctx.GM.SetHostEvictor(ctx.evictGPUToHost)
	}
	if conf.Arena {
		budget := conf.ArenaBudget
		if budget <= 0 {
			budget = data.DefaultArenaBudget
		}
		ctx.arena = data.NewArena(budget)
		ctx.Arb.Register(arenaPool{ctx.arena})
	}
	if conf.MemPlan != nil {
		ctx.planWindow = conf.MemPlan.Window
		if ctx.planWindow <= 0 {
			ctx.planWindow = memplan.DefaultWindow
		}
	}
	if conf.Adaptive {
		ctx.cal = costs.NewCalibration(model)
		ctx.reuse = lineage.NewReuseStats()
		// The calibration is the compiler's placement estimator; blocks
		// recompile per execution, so placement tracks the latest epoch.
		ctx.Conf.Compiler.Estimator = ctx.cal
	}
	if conf.Faults != nil {
		ctx.Inj = faults.NewInjector(conf.Faults)
		if ctx.SC != nil {
			ctx.SC.SetInjector(ctx.Inj)
		}
		if ctx.GM != nil {
			ctx.GM.SetInjector(ctx.Inj)
		}
		ctx.Cache.SetInjector(ctx.Inj)
	}
	return ctx
}

// tracing reports whether lineage tracing is active.
func (ctx *Context) tracing() bool { return ctx.Conf.Mode != ReuseNone }

// fineGrainedReuse reports whether operator-at-a-time reuse is active for
// the given backend.
func (ctx *Context) fineGrainedReuse(b core.Backend) bool {
	switch ctx.Conf.Mode {
	case ReuseLIMA:
		return b == core.BackendCP
	case ReuseMemphis, ReuseMemphisFine:
		return true
	default:
		return false
	}
}

// multiLevelReuse reports whether function-level reuse is active.
func (ctx *Context) multiLevelReuse(fn string) bool {
	switch ctx.Conf.Mode {
	case ReuseHelix, ReuseMemphis:
		if ctx.Conf.FuncAllowlist != nil {
			return ctx.Conf.FuncAllowlist[fn]
		}
		return true
	default:
		return false
	}
}

// Var returns a bound value or nil.
func (ctx *Context) Var(name string) *Value { return ctx.vars[name] }

// BindHost binds an input matrix to a variable (a persistent read: its
// lineage is a leaf).
func (ctx *Context) BindHost(name string, m *data.Matrix) {
	ctx.setVar(name, NewHostValue(m))
	if ctx.tracing() {
		ctx.LMap.TraceItem(name, lineage.NewLeaf("read", name))
	}
	if ctx.Shared != nil {
		ctx.inputSigs[name] = m.Checksum()
	}
}

// BindRDD binds a distributed input.
func (ctx *Context) BindRDD(name string, r *spark.RDD) {
	ctx.setVar(name, NewRDDValue(r))
	if ctx.tracing() {
		ctx.LMap.TraceItem(name, lineage.NewLeaf("read", name))
	}
}

// setVar rebinds a variable, managing GPU reference counts: the old
// binding's device reference is released and the new binding retained.
func (ctx *Context) setVar(name string, v *Value) {
	if old, ok := ctx.vars[name]; ok && old != v && old.HasGPU() && ctx.GM != nil {
		ctx.GM.Release(old.GPU)
	}
	ctx.vars[name] = v
}

// removeVar unbinds a variable, releasing GPU references.
func (ctx *Context) removeVar(name string) {
	if old, ok := ctx.vars[name]; ok {
		if old.HasGPU() && ctx.GM != nil {
			ctx.GM.Release(old.GPU)
		}
		delete(ctx.vars, name)
	}
	ctx.LMap.Remove(name)
}

// clearTemps removes block-local temporaries, returning their GPU pointers
// to the free list (this is what makes mini-batch recycling effective).
func (ctx *Context) clearTemps() {
	for name := range ctx.vars {
		if strings.HasPrefix(name, "_t") {
			ctx.recycleValue(name, ctx.vars[name])
			ctx.removeVar(name)
		}
	}
}

// Arena exposes the session's buffer arena (nil without Config.Arena).
func (ctx *Context) Arena() *data.Arena { return ctx.arena }

// shapes snapshots variable shapes for dynamic recompilation.
func (ctx *Context) shapes() map[string]ir.Shape {
	env := make(map[string]ir.Shape, len(ctx.vars))
	for name, v := range ctx.vars {
		env[name] = ir.Shape{Rows: v.Rows, Cols: v.Cols}
	}
	return env
}

// operand resolves an instruction operand to a value; literal operands
// become scalar values.
func (ctx *Context) operand(name string) (*Value, error) {
	if compiler.IsLiteral(name) {
		var f float64
		if _, err := fmt.Sscanf(compiler.LiteralValue(name), "%g", &f); err != nil {
			return nil, fmt.Errorf("runtime: bad literal %q: %v", name, err)
		}
		return NewScalar(f), nil
	}
	v, ok := ctx.vars[name]
	if !ok {
		return nil, fmt.Errorf("runtime: undefined variable %q", name)
	}
	return v, nil
}

// Close releases everything the context holds in the simulated backends:
// variable bindings (returning GPU references), the lineage cache's Spark
// and GPU objects, all device pointers, and all cluster storage and
// broadcasts. Without Close, sessions leak simulated device and cluster
// memory for the life of the process. Close is idempotent; running programs
// or binding inputs after Close returns an error from RunProgram.
func (ctx *Context) Close() error {
	if ctx.closed {
		return nil
	}
	ctx.closed = true
	for name := range ctx.vars {
		ctx.removeVar(name)
	}
	// Clear before GM.Close so recycle callbacks find no entries (no
	// device-to-host eviction is charged during teardown).
	ctx.Cache.Clear()
	if ctx.GM != nil {
		ctx.GM.Close()
	}
	if ctx.SC != nil {
		ctx.SC.Shutdown()
	}
	return nil
}

// Closed reports whether Close has been called.
func (ctx *Context) Closed() bool { return ctx.closed }

// evictGPUToHost is the device-to-host eviction hook invoked by the GPU
// memory manager when recycling cannot satisfy an allocation (Algorithm 1
// step 5, reached only when the device is genuinely full). It routes the
// request through the arbiter, whose ladder demotes cached live pointers
// to the host cache (and from there, under cascading pressure, to disk
// spill) before falling back to in-pool eviction.
func (ctx *Context) evictGPUToHost(need int64) int64 {
	return ctx.Arb.MakeSpace(gpu.PoolName, need)
}

// demoteGPUToHost is the GPU pool's Demote implementation: move the
// lowest-scored cached live pointers down to the host cache until need
// bytes of device memory are released. Each pointer's value crosses the
// bus exactly once — Cache.DemoteGPUPointer detaches the lineage entry
// and charges the D2H transfer, then Surrender frees the device side
// without triggering the recycle callback. Variables still referencing
// the pointer are handed the host matrix so execution falls back to CP
// transparently.
func (ctx *Context) demoteGPUToHost(need int64) int64 {
	if ctx.GM == nil {
		return 0
	}
	var freed int64
	for _, p := range ctx.GM.DemotableLive() {
		if freed >= need {
			break
		}
		m := ctx.Cache.DemoteGPUPointer(p)
		if m == nil {
			continue
		}
		for _, v := range ctx.vars {
			if v.GPU == p {
				if v.M == nil {
					v.M = m
				}
				v.GPU = nil
			}
		}
		size := p.Size()
		ctx.GM.Surrender(p)
		freed += size
	}
	return freed
}
