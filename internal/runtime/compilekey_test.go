package runtime

import (
	"testing"

	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/memplan"
)

// keyCtx builds a context with a compile cache attached under the given
// program key, with inputs of the given shape bound.
func keyCtx(t *testing.T, progKey uint64, rows, cols int, mutate func(*Config)) *Context {
	t.Helper()
	conf := testConfig(ReuseMemphis)
	if mutate != nil {
		mutate(&conf)
	}
	ctx := New(conf)
	t.Cleanup(func() { ctx.Close() })
	ctx.BindHost("X", data.RandNorm(rows, cols, 0, 1, 1))
	ctx.AttachCompileCache(noopCompileCache{}, progKey)
	return ctx
}

// noopCompileCache satisfies the interface for key-only tests.
type noopCompileCache struct{}

func (noopCompileCache) LookupCompiled(uint64) (*CompiledBlock, bool)             { return nil, false }
func (noopCompileCache) StoreCompiled(_ uint64, cb *CompiledBlock) *CompiledBlock { return cb }

// TestBlockKeyComposition is the table-driven key test for the compile
// cache: every component of the key — program identity, block structure,
// statement literals, input shapes, compiler config, and planner config —
// must separate entries; identical setups must collide.
func TestBlockKeyComposition(t *testing.T) {
	block := func(lit float64) *ir.BasicBlock {
		return ir.BB(ir.Assign("z", ir.Mul(ir.TSMM(ir.Var("X")), ir.Lit(lit))))
	}
	base := func() (*Context, *ir.BasicBlock) { return keyCtx(t, 1, 16, 4, nil), block(2) }

	cases := []struct {
		name  string
		same  bool // whether the variant key must equal the base key
		build func() (*Context, *ir.BasicBlock)
	}{
		{"identical setup", true, base},
		{"different program key", false, func() (*Context, *ir.BasicBlock) {
			return keyCtx(t, 2, 16, 4, nil), block(2)
		}},
		{"different literal", false, func() (*Context, *ir.BasicBlock) {
			return keyCtx(t, 1, 16, 4, nil), block(3)
		}},
		{"different block structure", false, func() (*Context, *ir.BasicBlock) {
			ctx := keyCtx(t, 1, 16, 4, nil)
			return ctx, ir.BB(ir.Assign("z", ir.TSMM(ir.Var("X"))))
		}},
		{"different input shape", false, func() (*Context, *ir.BasicBlock) {
			return keyCtx(t, 1, 32, 4, nil), block(2)
		}},
		{"unbound read variable", false, func() (*Context, *ir.BasicBlock) {
			ctx := keyCtx(t, 1, 16, 4, nil)
			ctx.removeVar("X")
			return ctx, block(2)
		}},
		{"different compiler config", false, func() (*Context, *ir.BasicBlock) {
			return keyCtx(t, 1, 16, 4, func(c *Config) { c.Compiler.OpMemBudget = 1 << 10 }), block(2)
		}},
		{"planner configured", false, func() (*Context, *ir.BasicBlock) {
			return keyCtx(t, 1, 16, 4, func(c *Config) { c.MemPlan = &memplan.Config{Budget: 1 << 20} }), block(2)
		}},
	}

	refCtx, refBB := base()
	ref := refCtx.blockKey(refBB)
	for _, tc := range cases {
		ctx, bb := tc.build()
		got := ctx.blockKey(bb)
		if tc.same && got != ref {
			t.Errorf("%s: key %016x != base %016x, want equal", tc.name, got, ref)
		}
		if !tc.same && got == ref {
			t.Errorf("%s: key collides with base (%016x)", tc.name, got)
		}
	}

	// Different planner budgets must not share planned streams.
	a, bbA := keyCtx(t, 1, 16, 4, func(c *Config) { c.MemPlan = &memplan.Config{Budget: 1 << 20} }), block(2)
	b, bbB := keyCtx(t, 1, 16, 4, func(c *Config) { c.MemPlan = &memplan.Config{Budget: 1 << 16} }), block(2)
	if a.blockKey(bbA) == b.blockKey(bbB) {
		t.Error("different memplan budgets must produce distinct block keys")
	}
}
