package runtime

import (
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/memplan"
)

// TestStreamSigDistinguishesAttrs guards against planner-cache aliasing:
// two streams identical except for Attrs (e.g. two slices of the same
// input with different bounds) must not share a signature, or planBlock
// would return the first stream's cached rewrite for the second.
func TestStreamSigDistinguishesAttrs(t *testing.T) {
	mk := func(r0, r1 string) []compiler.Instruction {
		return []compiler.Instruction{{
			Kind: compiler.KindOp, Op: "slice",
			Inputs: []string{"X"}, Outputs: []string{"Y"},
			Attrs:    map[string]string{"r0": r0, "r1": r1, "c0": "0", "c1": "-1"},
			Backend:  core.BackendCP,
			Shape:    ir.Shape{Rows: 100, Cols: 8},
			InShapes: []ir.Shape{{Rows: 200, Cols: 8}},
		}}
	}
	if streamSig(mk("0", "100")) == streamSig(mk("100", "200")) {
		t.Fatalf("streams differing only in attrs share a signature")
	}
	if streamSig(mk("0", "100")) != streamSig(mk("0", "100")) {
		t.Fatalf("identical streams produced different signatures")
	}
}

// TestPlannerDistinguishesSliceBlocks executes the aliasing scenario end to
// end: two blocks whose compiled streams are identical — same op, operands,
// output name, and shapes — except for the slice attrs. The plan cache
// persists on the context across programs, so with the planner on each
// block must still run its own stream; a signature collision would replay
// the first block's slice bounds for the second.
func TestPlannerDistinguishesSliceBlocks(t *testing.T) {
	cfg := testConfig(ReuseNone)
	cfg.MemPlan = &memplan.Config{Budget: 1 << 20}
	ctx := New(cfg)
	defer ctx.Close()
	ctx.BindHost("X", data.FromSlice(6, 1, []float64{1, 2, 3, 4, 5, 6}))

	run := func(r0, r1 int) float64 {
		prog := ir.NewProgram()
		prog.Main = []ir.Block{
			ir.BB(ir.Assign("s", ir.Sum(ir.Slice(ir.Var("X"), r0, r1, 0, -1)))),
		}
		if err := ctx.RunProgram(prog); err != nil {
			t.Fatal(err)
		}
		return ctx.ensureHost(ctx.Var("s")).ScalarValue()
	}
	if got := run(0, 3); got != 6 {
		t.Errorf("sum(X[0:3]) = %g, want 6", got)
	}
	if got := run(3, 6); got != 15 {
		t.Errorf("sum(X[3:6]) = %g, want 15 (signature collision replays the first block's slice)", got)
	}
}
