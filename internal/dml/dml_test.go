package dml

import (
	"strings"
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// run executes a script against bound inputs and returns the context.
func run(t *testing.T, src string, mode runtime.ReuseMode, bind map[string]*data.Matrix) *runtime.Context {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ctx := runtime.New(runtime.Config{
		Mode: mode, Compiler: compiler.DefaultConfig(),
		Cache: core.DefaultConfig(), Spark: spark.DefaultConfig(),
	})
	for name, m := range bind {
		ctx.BindHost(name, m)
	}
	if err := ctx.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	return ctx
}

func scalar(t *testing.T, ctx *runtime.Context, name string) float64 {
	t.Helper()
	v := ctx.Var(name)
	if v == nil {
		t.Fatalf("variable %q unbound", name)
	}
	return ctx.EnsureHostValue(v).ScalarValue()
}

func TestParseArithmeticPrecedence(t *testing.T) {
	ctx := run(t, "x = 2 + 3 * 4 ^ 2 - 6 / 3\n", runtime.ReuseNone, nil)
	if got := scalar(t, ctx, "x"); got != 48 {
		t.Fatalf("x = %g, want 48 (2+3*16-2)", got)
	}
}

func TestParseParenthesesAndUnaryMinus(t *testing.T) {
	ctx := run(t, "x = -(2 + 3) * -2\n", runtime.ReuseNone, nil)
	if got := scalar(t, ctx, "x"); got != 10 {
		t.Fatalf("x = %g, want 10", got)
	}
}

func TestParseMatrixProgram(t *testing.T) {
	x := data.RandNorm(40, 6, 0, 1, 3)
	y := data.RandNorm(40, 1, 0, 1, 4)
	src := `
# ridge regression via the normal equations
A = t(X) %*% X
b = t(X) %*% y
beta = solve(A + 0.1, b)
err = sum((y - X %*% beta)^2)
`
	ctx := run(t, src, runtime.ReuseNone, map[string]*data.Matrix{"X": x, "y": y})
	beta := ctx.EnsureHostValue(ctx.Var("beta"))
	want := data.Solve(data.AddScalar(data.TSMM(x), 0.1), data.MatMul(data.Transpose(x), y))
	if !data.AllClose(beta, want, 1e-9) {
		t.Fatal("beta mismatch")
	}
	wantErr := data.Sum(data.PowScalar(data.Sub(y, data.MatMul(x, want)), 2))
	if got := scalar(t, ctx, "err"); got-wantErr > 1e-9 || wantErr-got > 1e-9 {
		t.Fatalf("err = %g, want %g", got, wantErr)
	}
}

func TestParseForLoopAndReuse(t *testing.T) {
	x := data.RandNorm(60, 6, 0, 1, 5)
	src := `
for (lambda in [0.1, 1, 10]) {
    G = t(X) %*% X
    s = sum(G) + lambda
}
`
	ctx := run(t, src, runtime.ReuseMemphis, map[string]*data.Matrix{"X": x})
	if ctx.Cache.Stats.HitsCP == 0 {
		t.Fatal("the gram matrix must be reused across the grid")
	}
	want := data.Sum(data.TSMM(x)) + 10
	if got := scalar(t, ctx, "s"); got-want > 1e-9 || want-got > 1e-9 {
		t.Fatalf("s = %g, want %g", got, want)
	}
}

func TestParseWhileAndIf(t *testing.T) {
	src := `
i = 0
acc = 0
while (i < 5) {
    acc = acc + i
    i = i + 1
}
if (acc > 9) {
    flag = 1
} else {
    flag = 0
}
`
	ctx := run(t, src, runtime.ReuseNone, nil)
	if got := scalar(t, ctx, "acc"); got != 10 {
		t.Fatalf("acc = %g, want 10", got)
	}
	if got := scalar(t, ctx, "flag"); got != 1 {
		t.Fatalf("flag = %g, want 1", got)
	}
}

func TestParseFunctionDefinitionAndCall(t *testing.T) {
	x := data.RandNorm(50, 5, 0, 1, 7)
	y := data.RandNorm(50, 1, 0, 1, 8)
	src := `
linReg = function(X, y, reg) -> (beta) {
    A = t(X) %*% X
    beta = solve(A + reg, t(X) %*% y)
}
for (reg in [0.5, 0.5]) {
    [beta] = linReg(X, y, reg)
}
`
	ctx := run(t, src, runtime.ReuseMemphis, map[string]*data.Matrix{"X": x, "y": y})
	if ctx.Stats.FuncCalls != 2 || ctx.Stats.FuncReuses != 1 {
		t.Fatalf("FuncCalls=%d FuncReuses=%d, want 2/1", ctx.Stats.FuncCalls, ctx.Stats.FuncReuses)
	}
	want := data.Solve(data.AddScalar(data.TSMM(x), 0.5), data.MatMul(data.Transpose(x), y))
	if !data.AllClose(ctx.EnsureHostValue(ctx.Var("beta")), want, 1e-9) {
		t.Fatal("beta mismatch through function call")
	}
}

func TestParseSingleAssignUserCall(t *testing.T) {
	src := `
double = function(a) -> (r) {
    r = a * 2
}
x = double(21)
`
	ctx := run(t, src, runtime.ReuseNone, nil)
	if got := scalar(t, ctx, "x"); got != 42 {
		t.Fatalf("x = %g, want 42", got)
	}
}

func TestParseBuiltins(t *testing.T) {
	src := `
X = rand(20, 4, 0, 1, 1, 9)
m = colMeans(X)
n = nrow(X)
s = scale(X)
v = sum(colVars(s))
`
	ctx := run(t, src, runtime.ReuseNone, nil)
	if got := scalar(t, ctx, "n"); got != 20 {
		t.Fatalf("nrow = %g", got)
	}
	if got := scalar(t, ctx, "v"); got-4 > 1e-9 || 4-got > 1e-9 {
		t.Fatalf("sum of unit variances = %g, want 4", got)
	}
}

func TestParseDropoutVariants(t *testing.T) {
	src := `
X = rand(10, 10, 0, 1, 1, 3)
a = sum(dropout(X, 0.5, 7))
for (p in [0.5]) {
    b = sum(dropout(X, p, 7))
}
`
	ctx := run(t, src, runtime.ReuseNone, nil)
	if scalar(t, ctx, "a") != scalar(t, ctx, "b") {
		t.Fatal("literal and variable dropout rates must agree for equal values")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x = ", "unexpected token"},
		{"x = foo(1)", "undefined function"},
		{"x = foo(1) + 2", "unknown builtin"},
		{"for (i in [a]) { x = 1 }", "numeric literals"},
		{"x = 1 ~ 2", "unexpected character"},
		{"f = function(a -> (r) { r = a }", "expected"},
		{"x = t(1, 2)", "expects 1 argument"},
		{"x = solve(1)", "expects 2 arguments"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := "# header comment\nx = 1 # trailing\n# footer\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Main) != 1 {
		t.Fatalf("blocks = %d", len(prog.Main))
	}
	_ = prog.Main[0].(*ir.BasicBlock)
}
