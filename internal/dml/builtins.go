package dml

import (
	"strconv"

	"memphis/internal/ir"
)

// unaryBuiltins maps DML builtin names to single-argument ir constructors.
var unaryBuiltins = map[string]func(*ir.Node) *ir.Node{
	"t":            ir.T,
	"tsmm":         ir.TSMM,
	"exp":          ir.Exp,
	"log":          ir.Log,
	"sqrt":         ir.Sqrt,
	"abs":          ir.Abs,
	"sigmoid":      ir.Sigmoid,
	"relu":         ir.ReLU,
	"softmax":      ir.Softmax,
	"sum":          ir.Sum,
	"mean":         ir.Mean,
	"rowSums":      ir.RowSums,
	"colSums":      ir.ColSums,
	"colMeans":     ir.ColMeans,
	"colVars":      ir.ColVars,
	"colMins":      ir.ColMins,
	"colMaxs":      ir.ColMaxs,
	"rowIndexMax":  ir.RowMaxIdx,
	"nrow":         ir.Nrow,
	"ncol":         ir.Ncol,
	"diag":         ir.Diag,
	"scale":        ir.Scale,
	"minmax":       ir.MinMax,
	"imputeByMean": ir.ImputeMean,
	"imputeByMode": ir.ImputeMode,
	"outlierByIQR": ir.OutlierIQR,
	"recode":       ir.Recode,
	"oneHot":       ir.OneHot,
}

// binaryBuiltins maps names to two-argument constructors.
var binaryBuiltins = map[string]func(a, b *ir.Node) *ir.Node{
	"solve": ir.Solve,
	"cbind": ir.CBind,
	"rbind": ir.RBind,
	"min":   ir.Min,
	"max":   ir.Max,
}

// isBuiltin reports whether the name resolves to a builtin (as opposed to
// a user function that must be called as a statement).
func isBuiltin(name string) bool {
	if _, ok := unaryBuiltins[name]; ok {
		return true
	}
	if _, ok := binaryBuiltins[name]; ok {
		return true
	}
	switch name {
	case "rand", "dropout", "bin", "pca", "replaceNaN", "oneHotFixed":
		return true
	}
	return false
}

// litInt extracts an integer literal argument.
func litInt(n *ir.Node) (int, bool) {
	if n.Op != "lit" {
		return 0, false
	}
	v, err := strconv.ParseFloat(n.Attr("value"), 64)
	if err != nil {
		return 0, false
	}
	return int(v), true
}

// litFloat extracts a float literal argument.
func litFloat(n *ir.Node) (float64, bool) {
	if n.Op != "lit" {
		return 0, false
	}
	v, err := strconv.ParseFloat(n.Attr("value"), 64)
	return v, err == nil
}

// buildCall lowers a builtin call to an ir node.
func (p *parser) buildCall(name token, args []*ir.Node) (*ir.Node, error) {
	if f, ok := unaryBuiltins[name.text]; ok {
		if len(args) != 1 {
			return nil, p.errf(name, "%s expects 1 argument, got %d", name.text, len(args))
		}
		return f(args[0]), nil
	}
	if f, ok := binaryBuiltins[name.text]; ok {
		if len(args) != 2 {
			return nil, p.errf(name, "%s expects 2 arguments, got %d", name.text, len(args))
		}
		return f(args[0], args[1]), nil
	}
	switch name.text {
	case "rand":
		// rand(rows, cols, min, max, sparsity, seed), all literals.
		if len(args) != 6 {
			return nil, p.errf(name, "rand expects 6 literal arguments")
		}
		lits := make([]float64, 6)
		for i, a := range args {
			v, ok := litFloat(a)
			if !ok {
				return nil, p.errf(name, "rand argument %d must be a literal", i+1)
			}
			lits[i] = v
		}
		return ir.Rand(int(lits[0]), int(lits[1]), lits[2], lits[3], lits[4], int64(lits[5])), nil
	case "dropout":
		// dropout(X, rate, seed); rate may be a variable (grid loops).
		if len(args) != 3 {
			return nil, p.errf(name, "dropout expects 3 arguments")
		}
		seed, ok := litInt(args[2])
		if !ok {
			return nil, p.errf(name, "dropout seed must be a literal")
		}
		if rate, ok := litFloat(args[1]); ok {
			return ir.Dropout(args[0], rate, int64(seed)), nil
		}
		return ir.DropoutVar(args[0], args[1], int64(seed)), nil
	case "bin":
		if len(args) != 2 {
			return nil, p.errf(name, "bin expects 2 arguments")
		}
		n, ok := litInt(args[1])
		if !ok {
			return nil, p.errf(name, "bin count must be a literal")
		}
		return ir.Bin(args[0], n), nil
	case "oneHotFixed":
		if len(args) != 2 {
			return nil, p.errf(name, "oneHotFixed expects 2 arguments")
		}
		d, ok := litInt(args[1])
		if !ok {
			return nil, p.errf(name, "oneHotFixed domain must be a literal")
		}
		return ir.OneHotFixed(args[0], d), nil
	case "pca":
		if len(args) != 3 {
			return nil, p.errf(name, "pca expects (X, k, seed)")
		}
		k, ok1 := litInt(args[1])
		seed, ok2 := litInt(args[2])
		if !ok1 || !ok2 {
			return nil, p.errf(name, "pca k and seed must be literals")
		}
		return ir.PCA(args[0], k, int64(seed)), nil
	case "replaceNaN":
		if len(args) != 2 {
			return nil, p.errf(name, "replaceNaN expects 2 arguments")
		}
		v, ok := litFloat(args[1])
		if !ok {
			return nil, p.errf(name, "replaceNaN value must be a literal")
		}
		return ir.ReplaceNaN(args[0], v), nil
	}
	return nil, p.errf(name, "unknown builtin %q (user functions must be called as statements: x = f(...) or [a,b] = f(...))", name.text)
}
