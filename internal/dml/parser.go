package dml

import (
	"fmt"
	"strconv"

	"memphis/internal/ir"
)

// Parse compiles a DML script into an ir program.
func Parse(src string) (*ir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: ir.NewProgram()}
	blocks, err := p.parseStmts(tokEOF)
	if err != nil {
		return nil, err
	}
	// parseStmts stops at any closing brace; at the top level that means
	// unconsumed input (e.g. a stray `}`), which must be an error, not a
	// silently truncated program.
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected %q after end of program", t.text)
	}
	p.prog.Main = blocks
	p.prog.Source = src
	if err := p.validateCalls(p.prog.Main); err != nil {
		return nil, err
	}
	for _, f := range p.prog.Funcs {
		if err := p.validateCalls(f.Body); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

// validateCalls checks that every user-function call resolves to a defined
// function with matching arity.
func (p *parser) validateCalls(blocks []ir.Block) error {
	var failure error
	ir.Walk(blocks, func(b ir.Block) {
		bb, ok := b.(*ir.BasicBlock)
		if !ok || failure != nil {
			return
		}
		for _, st := range bb.Stmts {
			if st.Expr.Op != "call" {
				continue
			}
			name := st.Expr.Attr("fn")
			fn, ok := p.prog.Funcs[name]
			if !ok {
				failure = fmt.Errorf("dml: call to undefined function %q", name)
				return
			}
			if len(st.Expr.Inputs) != len(fn.Params) {
				failure = fmt.Errorf("dml: %s expects %d arguments, got %d",
					name, len(fn.Params), len(st.Expr.Inputs))
				return
			}
			if len(st.Targets) != len(fn.Returns) {
				failure = fmt.Errorf("dml: %s returns %d values, got %d targets",
					name, len(fn.Returns), len(st.Targets))
				return
			}
		}
	})
	return failure
}

type parser struct {
	toks []token
	pos  int
	prog *ir.Program
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) expectOp(op string) error {
	t := p.next()
	if t.kind != tokOp || t.text != op {
		return fmt.Errorf("dml: line %d: expected %q, got %q", t.line, op, t.text)
	}
	return nil
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("dml: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// parseStmts parses statements until the given closing token kind/op,
// grouping consecutive straight-line statements into basic blocks.
func (p *parser) parseStmts(until tokKind) ([]ir.Block, error) {
	var blocks []ir.Block
	var pending []ir.Stmt
	flush := func() {
		if len(pending) > 0 {
			blocks = append(blocks, &ir.BasicBlock{Stmts: pending})
			pending = nil
		}
	}
	for {
		p.skipNewlines()
		t := p.peek()
		if until == tokEOF && t.kind == tokEOF {
			break
		}
		if t.kind == tokOp && t.text == "}" {
			break
		}
		if t.kind == tokEOF {
			break
		}
		switch {
		case t.kind == tokKeyword && (t.text == "for" || t.text == "while" || t.text == "if"):
			flush()
			b, err := p.parseControl()
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, b)
		default:
			st, isFunc, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			if !isFunc {
				pending = append(pending, st)
			}
		}
	}
	flush()
	return blocks, nil
}

// parseSimpleStmt parses `x = expr`, `[a, b] = f(args)`, or a function
// definition (which registers itself and returns isFunc=true).
func (p *parser) parseSimpleStmt() (ir.Stmt, bool, error) {
	t := p.peek()
	// Multi-assignment: [a, b] = f(...)
	if t.kind == tokOp && t.text == "[" {
		p.next()
		var targets []string
		for {
			id := p.next()
			if id.kind != tokIdent {
				return ir.Stmt{}, false, p.errf(id, "expected identifier in multi-assignment")
			}
			targets = append(targets, id.text)
			sep := p.next()
			if sep.kind == tokOp && sep.text == "]" {
				break
			}
			if sep.kind != tokOp || sep.text != "," {
				return ir.Stmt{}, false, p.errf(sep, "expected , or ] in multi-assignment")
			}
		}
		if err := p.expectOp("="); err != nil {
			return ir.Stmt{}, false, err
		}
		fn := p.next()
		if fn.kind != tokIdent {
			return ir.Stmt{}, false, p.errf(fn, "multi-assignment requires a function call")
		}
		args, err := p.parseArgs()
		if err != nil {
			return ir.Stmt{}, false, err
		}
		return ir.Call(fn.text, targets, args...), false, nil
	}
	if t.kind != tokIdent {
		return ir.Stmt{}, false, p.errf(t, "expected statement, got %q", t.text)
	}
	name := p.next().text
	if err := p.expectOp("="); err != nil {
		return ir.Stmt{}, false, err
	}
	// Function definition?
	if nt := p.peek(); nt.kind == tokKeyword && nt.text == "function" {
		if err := p.parseFunction(name); err != nil {
			return ir.Stmt{}, false, err
		}
		return ir.Stmt{}, true, nil
	}
	// User function call as RHS? (single return)
	if nt := p.peek(); nt.kind == tokIdent && p.toks[p.pos+1].kind == tokOp &&
		p.toks[p.pos+1].text == "(" && !isBuiltin(nt.text) {
		fn := p.next().text
		args, err := p.parseArgs()
		if err != nil {
			return ir.Stmt{}, false, err
		}
		if after := p.peek(); after.kind == tokOp && after.text != "}" {
			return ir.Stmt{}, false, p.errf(after,
				"unknown builtin %q: user functions cannot appear inside expressions", fn)
		}
		return ir.Call(fn, []string{name}, args...), false, nil
	}
	expr, err := p.parseExpr()
	if err != nil {
		return ir.Stmt{}, false, err
	}
	return ir.Assign(name, expr), false, nil
}

// parseFunction parses `function(params) -> (rets) { body }` after the
// `name =` prefix has been consumed.
func (p *parser) parseFunction(name string) error {
	p.next() // function
	if err := p.expectOp("("); err != nil {
		return err
	}
	var params []string
	for p.peek().text != ")" {
		id := p.next()
		if id.kind != tokIdent {
			return p.errf(id, "expected parameter name")
		}
		params = append(params, id.text)
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // )
	if err := p.expectOp("->"); err != nil {
		return err
	}
	if err := p.expectOp("("); err != nil {
		return err
	}
	var rets []string
	for p.peek().text != ")" {
		id := p.next()
		if id.kind != tokIdent {
			return p.errf(id, "expected return name")
		}
		rets = append(rets, id.text)
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // )
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	p.prog.Define(&ir.Function{
		Name: name, Params: params, Returns: rets,
		Body: body, Deterministic: true,
	})
	return nil
}

// parseBlock parses `{ stmts }`.
func (p *parser) parseBlock() ([]ir.Block, error) {
	p.skipNewlines()
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	blocks, err := p.parseStmts(tokOp)
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("}"); err != nil {
		return nil, err
	}
	return blocks, nil
}

// parseControl parses for/while/if blocks.
func (p *parser) parseControl() (ir.Block, error) {
	kw := p.next()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	switch kw.text {
	case "for":
		id := p.next()
		if id.kind != tokIdent {
			return nil, p.errf(id, "expected loop variable")
		}
		in := p.next()
		if in.kind != tokKeyword || in.text != "in" {
			return nil, p.errf(in, "expected 'in'")
		}
		if err := p.expectOp("["); err != nil {
			return nil, err
		}
		var vals []float64
		for p.peek().text != "]" {
			neg := false
			if p.peek().text == "-" {
				neg = true
				p.next()
			}
			num := p.next()
			if num.kind != tokNumber {
				return nil, p.errf(num, "for-loop values must be numeric literals")
			}
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return nil, p.errf(num, "bad number %q", num.text)
			}
			if neg {
				v = -v
			}
			vals = append(vals, v)
			if p.peek().text == "," {
				p.next()
			}
		}
		p.next() // ]
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ir.ForBlock{Var: id.text, Values: vals, Body: body}, nil
	case "while":
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ir.WhileBlock{Cond: cond, Body: body, MaxIter: 10000}, nil
	case "if":
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []ir.Block
		p.skipNewlines()
		if t := p.peek(); t.kind == tokKeyword && t.text == "else" {
			p.next()
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return ir.If(cond, then, els), nil
	}
	return nil, p.errf(kw, "unknown control keyword %q", kw.text)
}

// parseArgs parses a parenthesized argument list.
func (p *parser) parseArgs() ([]*ir.Node, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var args []*ir.Node
	for p.peek().text != ")" {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // )
	return args, nil
}

// Expression grammar: comparison > add/sub > mul/div/%*% > power > unary.

func (p *parser) parseExpr() (*ir.Node, error) { return p.parseComparison() }

func (p *parser) parseComparison() (*ir.Node, error) {
	left, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "<" && t.text != ">") {
			return left, nil
		}
		p.next()
		right, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		if t.text == "<" {
			left = ir.Lt(left, right)
		} else {
			left = ir.Gt(left, right)
		}
	}
}

func (p *parser) parseAddSub() (*ir.Node, error) {
	left, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseMulDiv()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			left = ir.Add(left, right)
		} else {
			left = ir.Sub(left, right)
		}
	}
}

func (p *parser) parseMulDiv() (*ir.Node, error) {
	left, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%*%") {
			return left, nil
		}
		p.next()
		right, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "*":
			left = ir.Mul(left, right)
		case "/":
			left = ir.Div(left, right)
		case "%*%":
			left = ir.MatMul(left, right)
		}
	}
}

func (p *parser) parsePower() (*ir.Node, error) {
	base, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp && t.text == "^" {
		p.next()
		num := p.next()
		if num.kind != tokNumber {
			return nil, p.errf(num, "exponent must be a numeric literal")
		}
		v, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return nil, p.errf(num, "bad exponent")
		}
		return ir.Pow(base, v), nil
	}
	return base, nil
}

func (p *parser) parseUnary() (*ir.Node, error) {
	if t := p.peek(); t.kind == tokOp && t.text == "-" {
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if inner.Op == "lit" {
			v, _ := strconv.ParseFloat(inner.Attr("value"), 64)
			return ir.Lit(-v), nil
		}
		return ir.Mul(inner, ir.Lit(-1)), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*ir.Node, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		return ir.Lit(v), nil
	case t.kind == tokOp && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		if nt := p.peek(); nt.kind == tokOp && nt.text == "(" {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return p.buildCall(t, args)
		}
		return ir.Var(t.text), nil
	}
	return nil, p.errf(t, "unexpected token %q in expression", t.text)
}
