// Package dml parses a small SystemDS-DML-flavoured scripting language into
// ir programs, completing the paper's program-compilation story (§2.1):
// scripts are compiled to a hierarchy of blocks whose last level is a DAG
// of operations. The subset covers assignments, arithmetic and comparison
// expressions, builtin calls, user function definitions, for/while/if
// control flow, and multi-assignment calls:
//
//	linReg = function(X, y, reg, eye) -> (beta) {
//	    A = t(X) %*% X
//	    beta = solve(A + eye * reg, t(X) %*% y)
//	}
//	for (lambda in [0.01, 0.1, 1]) {
//	    [beta] = linReg(X, y, lambda, eye)
//	    err = sum((y - X %*% beta)^2)
//	}
package dml

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokOp      // + - * / ^ %*% = -> ( ) [ ] { } , < > <= >= == !=
	tokKeyword // function for while if else in
	tokNewline
)

type token struct {
	kind tokKind
	text string
	line int
}

var keywords = map[string]bool{
	"function": true, "for": true, "while": true,
	"if": true, "else": true, "in": true,
}

// lex splits the script into tokens; newlines are significant (statement
// separators) except directly after operators and inside brackets.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\n':
			toks = append(toks, token{tokNewline, "\n", line})
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, word, line})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			j := i
			seenE := false
			for j < len(src) {
				d := src[j]
				if unicode.IsDigit(rune(d)) || d == '.' {
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenE {
					seenE = true
					j++
					if j < len(src) && (src[j] == '+' || src[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case strings.HasPrefix(src[i:], "%*%"):
			toks = append(toks, token{tokOp, "%*%", line})
			i += 3
		case strings.HasPrefix(src[i:], "->"):
			toks = append(toks, token{tokOp, "->", line})
			i += 2
		case strings.HasPrefix(src[i:], "<=") || strings.HasPrefix(src[i:], ">=") ||
			strings.HasPrefix(src[i:], "==") || strings.HasPrefix(src[i:], "!="):
			toks = append(toks, token{tokOp, src[i : i+2], line})
			i += 2
		case strings.ContainsRune("+-*/^=()[]{},<>", rune(c)):
			toks = append(toks, token{tokOp, string(c), line})
			i++
		default:
			return nil, fmt.Errorf("dml: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
