package dml

import (
	"strings"
	"testing"
)

// parseGuarded runs Parse and converts any panic into a test failure: the
// contract under test is that malformed programs come back as errors, never
// as crashes.
func parseGuarded(t *testing.T, src string) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("Parse(%q) panicked: %v", src, r)
		}
	}()
	_, err = Parse(src)
	return err
}

// TestMalformedProgramsError is the error-path table: every lexer and parser
// failure mode returns an error (with the expected message fragment where one
// is stable) and never panics.
func TestMalformedProgramsError(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		// Lexer: characters outside the language.
		{"unexpected char tilde", "x = 1 ~ 2", "unexpected character"},
		{"unexpected char at", "@", "unexpected character"},
		{"unexpected char quote", `x = "hello"`, "unexpected character"},
		{"unexpected char semicolon", "x = 1;", "unexpected character"},
		{"unexpected char backslash", "x = 1 \\ 2", "unexpected character"},
		{"unexpected char dollar", "$y = 1", "unexpected character"},
		{"unexpected char bang alone", "x = !y", "unexpected character"},
		{"unexpected char ampersand", "x = 1 & 2", "unexpected character"},

		// Truncated expressions and statements.
		{"assign without rhs", "x = ", ""},
		{"dangling operator", "x = 1 +", ""},
		{"dangling matmul", "x = A %*%", ""},
		{"dangling power", "x = A ^", ""},
		{"dangling comparison", "x = 1 <", ""},
		{"lone identifier", "x", ""},
		{"lone number", "42", ""},
		{"op without lhs", "= 1", ""},
		{"double assign", "x = = 1", ""},

		// Unbalanced delimiters.
		{"unclosed paren", "x = (1 + 2", ""},
		{"unopened paren", "x = 1 + 2)", ""},
		{"unclosed call", "x = t(A", ""},
		{"unclosed brace", "if (x > 0) { y = 1", ""},
		{"unopened brace", "y = 1 }", ""},
		{"unclosed bracket", "for (i in [1, 2) { x = 1 }", ""},
		{"empty parens expr", "x = ()", ""},

		// Control-flow malformations.
		{"for without var", "for (in [1]) { x = 1 }", "loop variable"},
		{"for without in", "for (i of [1]) { x = 1 }", "expected 'in'"},
		{"for non-literal values", "for (i in [a]) { x = 1 }", "numeric literals"},
		{"for missing body", "for (i in [1, 2])", ""},
		{"while missing cond", "while () { x = 1 }", ""},
		{"while missing body", "while (x > 0)", ""},
		{"if missing cond", "if { x = 1 }", ""},
		{"else without if", "else { x = 1 }", ""},
		{"unknown keyword as expr", "x = function", ""},

		// Function definitions.
		{"function unclosed params", "f = function(a -> (r) { r = a }", "expected"},
		{"function missing returns", "f = function(a) { r = a }", ""},
		{"function bad param", "f = function(1) -> (r) { r = 1 }", "parameter name"},
		{"function bad return", "f = function(a) -> (1) { r = a }", "return name"},
		{"function missing body", "f = function(a) -> (r)", ""},

		// Calls: arity, undefined names, placement.
		{"undefined function stmt", "x = foo(1)", "undefined function"},
		{"builtin in expression", "x = foo(1) + 2", "unknown builtin"},
		{"t arity", "x = t(1, 2)", "expects 1 argument"},
		{"solve arity", "x = solve(1)", "expects 2 arguments"},
		{"sum arity", "x = sum(A, B)", "expects 1 argument"},
		{"rand non-literal arg", "x = rand(n, 4, 0, 1, 1, 7)", "literal"},
		{"call arity mismatch", "f = function(a, b) -> (r) { r = a }\n[x] = f(1)", ""},

		// Multi-assignment.
		{"multi-assign non-ident", "[1, x] = f(1)", "identifier in multi-assignment"},
		{"multi-assign bad sep", "[x; y] = f(1)", ""},
		{"multi-assign without call", "[x] = 1", "requires a function call"},
		{"multi-assign unclosed", "[x, y = f(1)", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := parseGuarded(t, c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Parse(%q) err = %v, want containing %q", c.src, err, c.want)
			}
		})
	}
}

// TestDegenerateProgramsParse: degenerate but well-formed sources neither
// error nor panic.
func TestDegenerateProgramsParse(t *testing.T) {
	for _, src := range []string{
		"",
		"\n\n\n",
		"# only a comment",
		"# comment\n\n# another\n",
		"x = 1",
		"x = 1\n\n\ny = x",
	} {
		if err := parseGuarded(t, src); err != nil {
			t.Errorf("Parse(%q) err = %v, want nil", src, err)
		}
	}
}

// TestTruncationNeverPanics chops every well-formed program at each byte
// offset: whatever the parser makes of the prefix — error or success — it
// must not crash. This sweeps the "unexpected EOF mid-production" space far
// beyond the hand-written table.
func TestTruncationNeverPanics(t *testing.T) {
	full := []string{
		"linReg = function(X, y, reg, eye) -> (beta) {\n" +
			"    A = t(X) %*% X\n" +
			"    beta = solve(A + eye * reg, t(X) %*% y)\n" +
			"}\n" +
			"for (lambda in [0.01, 0.1, 1]) {\n" +
			"    [beta] = linReg(X, y, lambda, eye)\n" +
			"    err = sum((y - X %*% beta)^2)\n" +
			"}\n",
		"while (d > 1e-3) {\n    if (x >= 0) { x = x - 0.5 } else { x = x + 0.5 }\n    d = x^2\n}\n",
		"x = rand(10, 4, 0, 1, 1.0, 7)\ny = dropout(x, 0.5, 3)\nz = sum(x %*% t(y))\n",
	}
	for _, src := range full {
		for i := 0; i <= len(src); i++ {
			parseGuarded(t, src[:i])
		}
	}
}
