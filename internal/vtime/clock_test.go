package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(1.5)
	c.Advance(0.5)
	if !approx(c.Now(), 2.0) {
		t.Fatalf("Now() = %g, want 2.0", c.Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	New().Advance(-1)
}

func TestRunSyncBlocksDriver(t *testing.T) {
	c := New()
	r := c.Resource("spark")
	c.RunSync(r, 2.0)
	if !approx(c.Now(), 2.0) {
		t.Fatalf("Now() = %g, want 2.0", c.Now())
	}
	if !approx(r.TotalBusy(), 2.0) {
		t.Fatalf("TotalBusy() = %g, want 2.0", r.TotalBusy())
	}
}

func TestRunAsyncOverlaps(t *testing.T) {
	c := New()
	gpu := c.Resource("gpu")
	f := c.RunAsync(gpu, 5.0, "kernel")
	if !approx(c.Now(), 0) {
		t.Fatalf("driver advanced by async work: %g", c.Now())
	}
	c.Advance(2.0) // overlapping driver work
	c.Wait(f)
	if !approx(c.Now(), 5.0) {
		t.Fatalf("Now() = %g, want 5.0 (max of overlap)", c.Now())
	}
}

func TestWaitOnAlreadyReadyFuture(t *testing.T) {
	c := New()
	r := c.Resource("spark")
	f := c.RunAsync(r, 1.0, "job")
	c.Advance(10.0)
	c.Wait(f)
	if !approx(c.Now(), 10.0) {
		t.Fatalf("Now() = %g, want 10.0 (future already ready)", c.Now())
	}
}

func TestWaitNilFuture(t *testing.T) {
	c := New()
	c.Wait(nil) // must not panic
	if !approx(c.Now(), 0) {
		t.Fatalf("Now() = %g, want 0", c.Now())
	}
}

func TestResourceSerializesWork(t *testing.T) {
	c := New()
	r := c.Resource("gpu")
	f1 := c.RunAsync(r, 3.0, "k1")
	f2 := c.RunAsync(r, 2.0, "k2")
	if !approx(f1.ReadyAt(), 3.0) || !approx(f2.ReadyAt(), 5.0) {
		t.Fatalf("ReadyAt = %g, %g; want 3, 5", f1.ReadyAt(), f2.ReadyAt())
	}
}

func TestSyncBarrier(t *testing.T) {
	c := New()
	gpu := c.Resource("gpu")
	c.RunAsync(gpu, 4.0, "kernel")
	c.Advance(1.0)
	c.Sync(gpu)
	if !approx(c.Now(), 4.0) {
		t.Fatalf("Now() = %g, want 4.0 after sync", c.Now())
	}
	c.Sync(gpu) // idempotent
	if !approx(c.Now(), 4.0) {
		t.Fatalf("second Sync moved time to %g", c.Now())
	}
}

func TestWorkStartsAtDriverTime(t *testing.T) {
	c := New()
	r := c.Resource("spark")
	c.Advance(7.0)
	f := c.RunAsync(r, 1.0, "late job")
	if !approx(f.ReadyAt(), 8.0) {
		t.Fatalf("ReadyAt = %g, want 8.0 (starts at driver time)", f.ReadyAt())
	}
}

func TestResourceIdentity(t *testing.T) {
	c := New()
	if c.Resource("a") != c.Resource("a") {
		t.Fatal("Resource should return the same instance per name")
	}
	if c.Resource("a") == c.Resource("b") {
		t.Fatal("distinct names must map to distinct resources")
	}
	if len(c.Resources()) != 2 {
		t.Fatalf("Resources() len = %d, want 2", len(c.Resources()))
	}
}

func TestReset(t *testing.T) {
	c := New()
	r := c.Resource("spark")
	c.RunSync(r, 5)
	c.Reset()
	if !approx(c.Now(), 0) || !approx(r.BusyUntil(), 0) || !approx(r.TotalBusy(), 0) {
		t.Fatal("Reset did not zero the clock and resources")
	}
}

// Property: time is monotone under any sequence of non-negative operations.
func TestMonotonicityProperty(t *testing.T) {
	f := func(ops []uint8, durs []float64) bool {
		c := New()
		r := c.Resource("x")
		last := 0.0
		var fut *Future
		for i, op := range ops {
			d := 0.0
			if i < len(durs) {
				d = math.Mod(math.Abs(durs[i]), 10)
				if math.IsNaN(d) {
					d = 0
				}
			}
			switch op % 4 {
			case 0:
				c.Advance(d)
			case 1:
				c.RunSync(r, d)
			case 2:
				fut = c.RunAsync(r, d, "p")
			case 3:
				c.Wait(fut)
			}
			if c.Now() < last {
				return false
			}
			last = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource's busyUntil never precedes the completion of any
// previously scheduled work, i.e. futures are ready in scheduling order.
func TestFutureOrderingProperty(t *testing.T) {
	f := func(durs []float64) bool {
		c := New()
		r := c.Resource("x")
		prev := -1.0
		for _, d := range durs {
			d = math.Mod(math.Abs(d), 5)
			if math.IsNaN(d) {
				d = 0
			}
			fu := c.RunAsync(r, d, "")
			if fu.ReadyAt() < prev {
				return false
			}
			prev = fu.ReadyAt()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
