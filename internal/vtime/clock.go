// Package vtime provides a deterministic virtual clock for the MEMPHIS
// simulator. All backend work (CPU instructions, Spark jobs, GPU kernels,
// data transfers) is charged onto per-resource timelines instead of being
// measured with wall-clock timers. This makes experiments exactly
// reproducible and lets asynchronous overlap (prefetch, broadcast, GPU
// streams) be accounted precisely: asynchronous work advances only the
// resource's timeline while the driver keeps its own position, and a wait on
// a future moves the driver to max(driverNow, future ready time).
//
// All durations and timestamps are in seconds of virtual time.
package vtime

import "fmt"

// Resource is a serially-executing timeline, e.g. the Spark cluster, a GPU
// command stream, or the disk. Work scheduled on a resource begins no
// earlier than the later of the driver's current time and the resource's
// busy-until time.
type Resource struct {
	name      string
	busyUntil float64
	totalBusy float64
}

// Name returns the resource's registered name.
func (r *Resource) Name() string { return r.name }

// BusyUntil returns the virtual timestamp at which all currently scheduled
// work on the resource completes.
func (r *Resource) BusyUntil() float64 { return r.busyUntil }

// TotalBusy returns the cumulative seconds of work charged to the resource.
func (r *Resource) TotalBusy() float64 { return r.totalBusy }

// Future represents the completion of asynchronously scheduled work.
type Future struct {
	readyAt float64
	label   string
}

// ReadyAt returns the virtual time at which the future's work completes.
func (f *Future) ReadyAt() float64 { return f.readyAt }

// Label returns the human-readable label the future was created with.
func (f *Future) Label() string { return f.label }

// Clock is the virtual clock. The zero value is not usable; call New.
// Clock is not safe for concurrent use: the simulated driver is a single
// instruction stream, matching SystemDS's depth-first interpreter.
type Clock struct {
	now       float64
	resources map[string]*Resource
}

// New returns a clock at time zero with no resources.
func New() *Clock {
	return &Clock{resources: make(map[string]*Resource)}
}

// Now returns the driver's current virtual time.
func (c *Clock) Now() float64 { return c.now }

// Advance charges d seconds of local driver work (e.g. a CPU instruction,
// interpretation overhead, or a cache probe).
func (c *Clock) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative advance %g", d))
	}
	c.now += d
}

// Resource returns the named resource, creating it on first use.
func (c *Clock) Resource(name string) *Resource {
	if r, ok := c.resources[name]; ok {
		return r
	}
	r := &Resource{name: name}
	c.resources[name] = r
	return r
}

// Resources returns all registered resources (order unspecified).
func (c *Clock) Resources() []*Resource {
	out := make([]*Resource, 0, len(c.resources))
	for _, r := range c.resources {
		out = append(out, r)
	}
	return out
}

// RunSync executes d seconds of work on r with the driver blocked: the work
// starts when both the driver and the resource are free, and the driver
// resumes when it completes.
func (c *Clock) RunSync(r *Resource, d float64) {
	end := c.schedule(r, d)
	c.now = end
}

// RunAsync schedules d seconds of work on r without blocking the driver and
// returns a future that becomes ready when the work completes.
func (c *Clock) RunAsync(r *Resource, d float64, label string) *Future {
	end := c.schedule(r, d)
	return &Future{readyAt: end, label: label}
}

// schedule appends d seconds of work to r starting no earlier than now and
// returns the completion time.
func (c *Clock) schedule(r *Resource, d float64) float64 {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative work %g on %s", d, r.name))
	}
	start := c.now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + d
	r.totalBusy += d
	return r.busyUntil
}

// Wait blocks the driver until f is ready.
func (c *Clock) Wait(f *Future) {
	if f == nil {
		return
	}
	if f.readyAt > c.now {
		c.now = f.readyAt
	}
}

// Sync blocks the driver until all scheduled work on r completes. This
// models synchronization barriers such as cudaDeviceSynchronize or an
// implicit sync on device-to-host copy.
func (c *Clock) Sync(r *Resource) {
	if r.busyUntil > c.now {
		c.now = r.busyUntil
	}
}

// Reset returns the clock and all resources to time zero.
func (c *Clock) Reset() {
	c.now = 0
	for _, r := range c.resources {
		r.busyUntil = 0
		r.totalBusy = 0
	}
}

// FutureChain is asynchronous work followed by a serial epilogue charged to
// the driver on wait — e.g. a Spark job whose result must then be
// transferred to the driver. The epilogue is charged exactly once.
type FutureChain struct {
	Job   *Future
	Extra float64
	paid  bool
}

// WaitChain blocks the driver until the chained work completes, charging
// the epilogue on first wait.
func (c *Clock) WaitChain(f *FutureChain) {
	if f == nil {
		return
	}
	c.Wait(f.Job)
	if !f.paid {
		f.paid = true
		c.Advance(f.Extra)
	}
}
