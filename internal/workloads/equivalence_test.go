package workloads

import (
	"fmt"
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/gpu"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// tightCtx builds a full-MEMPHIS context with a constrained driver cache
// (and optionally a constrained device), so eviction, spill, and demotion
// paths are exercised end to end.
func tightCtx(cpBudget, gpuCap int64, gpuOn bool, opMem int64, plan *faults.Plan) *runtime.Context {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = opMem
	comp.GPUEnabled = gpuOn
	comp.GPUMinCells = 256
	comp.Async = true
	comp.MaxParallelize = true
	comp.CheckpointInjection = true
	cache := core.DefaultConfig()
	cache.CPBudget = cpBudget
	pol := gpu.PolicyNone
	if gpuOn {
		pol = gpu.PolicyMemphis
	}
	return runtime.New(runtime.Config{
		Mode:        runtime.ReuseMemphis,
		Compiler:    comp,
		Cache:       cache,
		Spark:       spark.DefaultConfig(),
		GPUCapacity: gpuCap,
		GPUPolicy:   pol,
		Faults:      plan,
	})
}

// runPinned executes one workload under full MEMPHIS rewrites and returns
// the formatted virtual time, output checksum, and cache statistics.
func runPinned(t *testing.T, ctx *runtime.Context, w *Workload, out string) (string, uint64, core.Stats) {
	t.Helper()
	compiler.AutoTune(w.Prog)
	compiler.InjectLoopCheckpoints(w.Prog)
	compiler.InjectEvictions(w.Prog)
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	v := ctx.Var(out)
	if v == nil {
		t.Fatalf("%s: output %q unbound", w.Name, out)
	}
	return fmt.Sprintf("%.9f", ctx.Clock.Now()), ctx.EnsureHostValue(v).Checksum(), ctx.Cache.Stats
}

// runLadder executes the hyperparameter-dropout workload under a device
// small enough (48 KB) that the arbiter's demotion ladder must move live
// GPU pointers to the host cache, and a driver cache small enough (16 KB)
// that the host cache is itself under eviction pressure. Returns the
// pinned trace triple for equivalence comparisons.
func runLadder(t *testing.T, plan *faults.Plan) (string, uint64, core.Stats) {
	t.Helper()
	ctx := tightCtx(16<<10, 48<<10, true, 1<<30, plan)
	defer ctx.Close()
	w := HDrop(128, 6, 30, []float64{0.1, 0.3}, 2, 32, 19)
	return runPinned(t, ctx, w, "bestLoss")
}

// runSpillLadder executes PNMF with Spark offload and a tight driver cache,
// the configuration whose collected results are expensive enough that the
// host cache's cost-aware policy spills them to disk instead of dropping.
func runSpillLadder(t *testing.T, plan *faults.Plan) (string, uint64, core.Stats) {
	t.Helper()
	ctx := tightCtx(32<<10, 0, false, 8<<10, plan)
	defer ctx.Close()
	w := PNMF(400, 30, 4, 4, 11)
	return runPinned(t, ctx, w, "obj")
}

// TestLadderRoundTripAcrossParallelism drives both segments of the
// demotion ladder — GPU -> host cache (HDrop on a 48 KB device) and host
// cache -> disk spill (PNMF on a 32 KB driver cache) — and checks that each
// workload's result, virtual time, and every cache counter are identical at
// kernel parallelism 1, 4, and 8. The ladder must actually fire: the HDrop
// run needs non-zero demotions and host evictions, the PNMF run non-zero
// disk spills, or the configurations are not exercising the paths.
func TestLadderRoundTripAcrossParallelism(t *testing.T) {
	prev := data.Parallelism()
	defer data.SetParallelism(prev)

	data.SetParallelism(1)
	vtimeG, sumG, csG := runLadder(t, nil)
	if csG.GPUToHost == 0 || csG.EvictionsCP == 0 {
		t.Fatalf("GPU->host segment not exercised (stats %+v)", csG)
	}
	vtimeS, sumS, csS := runSpillLadder(t, nil)
	if csS.SpillsCP == 0 {
		t.Fatalf("host->disk segment not exercised (stats %+v)", csS)
	}
	for _, par := range []int{4, 8} {
		data.SetParallelism(par)
		v, s, c := runLadder(t, nil)
		if v != vtimeG || s != sumG || c != csG {
			t.Errorf("hdrop at parallelism %d diverged: vtime %s (want %s), checksum %#x (want %#x), stats %+v (want %+v)",
				par, v, vtimeG, s, sumG, c, csG)
		}
		v, s, c = runSpillLadder(t, nil)
		if v != vtimeS || s != sumS || c != csS {
			t.Errorf("pnmf at parallelism %d diverged: vtime %s (want %s), checksum %#x (want %#x), stats %+v (want %+v)",
				par, v, vtimeS, s, sumS, c, csS)
		}
	}
}

// TestLadderUnderChaos replays the same ladder workload under the default
// chaos fault plan: two runs with the same seed must be bitwise identical
// (same virtual time, checksum, counters), and recovery must preserve the
// workload result — the chaos checksum equals the fault-free checksum.
func TestLadderUnderChaos(t *testing.T) {
	_, cleanSum, _ := runLadder(t, nil)

	v1, s1, c1 := runLadder(t, faults.Default(1234))
	v2, s2, c2 := runLadder(t, faults.Default(1234))
	if v1 != v2 || s1 != s2 || c1 != c2 {
		t.Errorf("chaos replay not bitwise identical: vtime %s vs %s, checksum %#x vs %#x, stats %+v vs %+v",
			v1, v2, s1, s2, c1, c2)
	}
	if s1 != cleanSum {
		t.Errorf("chaos result checksum %#x differs from fault-free %#x", s1, cleanSum)
	}
	if c1.GPUToHost == 0 {
		t.Errorf("no GPU->host demotions under chaos (stats %+v)", c1)
	}
}

// TestPinnedBaselines pins the end-to-end behavior of the representative
// workloads — virtual time to the nanosecond, output checksums, and hit or
// eviction counts — against values captured on the seed before memory
// management was unified under internal/memctl. Any policy drift (scoring,
// eviction order, demotion charges) shows up here as an exact-value diff.
func TestPinnedBaselines(t *testing.T) {
	cases := []struct {
		name     string
		out      string
		gpu      bool
		cpBudget int64
		opMem    int64
		build    func() *Workload

		vtime    string
		checksum uint64
		hitsCP   int64
		hitsRDD  int64
		hitsFunc int64
		hitsAct  int64
		misses   int64
		evictCP  int64
		spillCP  int64
	}{
		{"hcv", "best", false, 16 << 20, 2 << 20,
			func() *Workload { return HCV(800, 16, 2, []float64{0.1, 1, 0.1}, 7) },
			"0.000595363", 0xd3331a59932e982c, 10, 0, 2, 0, 97, 0, 0},
		{"l2svm", "acc", false, 16 << 20, 1 << 30,
			func() *Workload { return L2SVMMicro(4000, 48, 3, []float64{0.1, 1, 10}, 37) },
			"0.000783441", 0x2b1ccd1f3704c7d2, 28, 0, 0, 0, 98, 0, 0},
		{"pnmf", "obj", false, 16 << 20, 8 << 10,
			func() *Workload { return PNMF(400, 30, 4, 4, 11) },
			"0.519273472", 0xa642bdc2f8b585ce, 2, 1, 0, 1, 83, 0, 0},
		{"cnn", "score", true, 16 << 20, 1 << 30,
			func() *Workload { return EnsembleCNN(32, 8, 6, 6, 0.5, 41) },
			"0.007336667", 0x210822314b096b11, 0, 0, 0, 0, 96, 0, 0},
		// Tight driver caches drive the LIMA eviction and spill policies.
		{"hcv-tight", "best", false, 48 << 10, 2 << 20,
			func() *Workload { return HCV(800, 16, 2, []float64{0.1, 1, 0.1}, 7) },
			"0.000595363", 0xd3331a59932e982c, 10, 0, 2, 0, 97, 0, 0},
		{"l2svm-tight", "acc", false, 256 << 10, 1 << 30,
			func() *Workload { return L2SVMMicro(4000, 48, 3, []float64{0.1, 1, 10}, 37) },
			"0.000867523", 0x2b1ccd1f3704c7d2, 6, 0, 0, 0, 120, 81, 0},
		{"pnmf-tight", "obj", false, 32 << 10, 8 << 10,
			func() *Workload { return PNMF(400, 30, 4, 4, 11) },
			"0.529330432", 0xa642bdc2f8b585ce, 2, 1, 0, 1, 83, 21, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gpuCap := int64(0)
			if tc.gpu {
				gpuCap = 32 << 20 // the capture contexts' device size
			}
			ctx := tightCtx(tc.cpBudget, gpuCap, tc.gpu, tc.opMem, nil)
			defer ctx.Close()
			vtime, sum, cs := runPinned(t, ctx, tc.build(), tc.out)
			if vtime != tc.vtime {
				t.Errorf("vtime %s, want %s", vtime, tc.vtime)
			}
			if sum != tc.checksum {
				t.Errorf("checksum %#x, want %#x", sum, tc.checksum)
			}
			got := []int64{cs.HitsCP, cs.HitsRDD, cs.HitsFunc, cs.HitsActon, cs.Misses, cs.EvictionsCP, cs.SpillsCP}
			want := []int64{tc.hitsCP, tc.hitsRDD, tc.hitsFunc, tc.hitsAct, tc.misses, tc.evictCP, tc.spillCP}
			names := []string{"hitsCP", "hitsRDD", "hitsFunc", "hitsActon", "misses", "evictCP", "spillCP"}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s = %d, want %d", names[i], got[i], want[i])
				}
			}
		})
	}
}
