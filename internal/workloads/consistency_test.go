package workloads

import (
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/data"
	"memphis/internal/runtime"
)

// TestValueConsistencyAcrossModes is the strongest end-to-end invariant of
// lineage-based reuse: for every workload, the final result under full
// MEMPHIS (reuse, async operators, checkpoints, delayed caching, GPU
// recycling) must be bitwise identical to the Base run, because lineage
// uniquely identifies intermediates and all randomness is seeded.
func TestValueConsistencyAcrossModes(t *testing.T) {
	cases := []struct {
		name  string
		out   string // terminal scalar variable
		gpu   bool
		opMem int64
		build func() *Workload
	}{
		{"HCV", "best", false, 2 << 20, func() *Workload {
			return HCV(800, 16, 2, []float64{0.1, 1, 0.1}, 7)
		}},
		{"PNMF", "obj", false, 8 << 10, func() *Workload {
			return PNMF(400, 30, 4, 4, 11)
		}},
		{"HBAND", "ensScore", false, 1 << 30, func() *Workload {
			return HBand(400, 12, 2, 2, 2, 10, 13)
		}},
		{"CLEAN", "bestScore", false, 1 << 30, func() *Workload {
			return Clean(400, 10, 2, 2, 17)
		}},
		{"HDROP", "bestLoss", true, 1 << 30, func() *Workload {
			return HDrop(128, 6, 30, []float64{0.1, 0.3}, 2, 32, 19)
		}},
		{"EN2DE", "total", true, 1 << 30, func() *Workload {
			return En2De(80, 30, 8, 16, 23)
		}},
		{"TLVIS", "rank", true, 1 << 30, func() *Workload {
			return TLVis(8, 4, 8, 8, 29)
		}},
		{"EnsembleCNN", "score", true, 1 << 30, func() *Workload {
			return EnsembleCNN(32, 8, 6, 6, 0.5, 41)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(mode runtime.ReuseMode) *data.Matrix {
				ctx := newCtx(mode, tc.gpu, tc.opMem)
				w := tc.build()
				if mode == runtime.ReuseMemphis {
					compiler.AutoTune(w.Prog)
					compiler.InjectLoopCheckpoints(w.Prog)
					compiler.InjectEvictions(w.Prog)
				}
				if _, err := w.Run(ctx); err != nil {
					t.Fatalf("%v run: %v", mode, err)
				}
				v := ctx.Var(tc.out)
				if v == nil {
					t.Fatalf("%v: output %q unbound", mode, tc.out)
				}
				return ctx.EnsureHostValue(v)
			}
			base := run(runtime.ReuseNone)
			mph := run(runtime.ReuseMemphis)
			if !data.AllClose(base, mph, 1e-9) {
				t.Fatalf("MPH result differs from Base:\n base %v\n mph  %v\n diff %g", base, mph, base.ScalarValue()-mph.ScalarValue())
			}
		})
	}
}
