package workloads

import (
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// TestCheckpointLineageTransparency is a regression test: under the
// MAXPARALLELIZE ordering, the loop-checkpoint instruction may be routed
// through a temporary (chkpoint _t <- W; assign W <- _t). The checkpoint
// must propagate its input's lineage to the output, or the updated
// variable's lineage resets to a leaf and iteration-dependent operations
// falsely hit the cache (observed as PNMF diverging at iteration 4).
func TestCheckpointLineageTransparency(t *testing.T) {
	run := func(mode runtime.ReuseMode) float64 {
		comp := compiler.DefaultConfig()
		comp.OpMemBudget = 8 << 10
		comp.MaxParallelize = true
		ctx := runtime.New(runtime.Config{
			Mode: mode, Compiler: comp, Cache: core.DefaultConfig(),
			Spark: spark.DefaultConfig(),
		})
		w := PNMF(400, 30, 4, 4, 11)
		compiler.InjectLoopCheckpoints(w.Prog)
		if _, err := w.Run(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.EnsureHostValue(ctx.Var("obj")).ScalarValue()
	}
	base := run(runtime.ReuseNone)
	for _, mode := range []runtime.ReuseMode{runtime.ReuseLIMA, runtime.ReuseMemphisFine, runtime.ReuseMemphis} {
		if got := run(mode); got != base {
			t.Fatalf("mode %v: obj = %g, want %g (stale reuse through checkpoint)", mode, got, base)
		}
	}
}
