package workloads

import (
	"math/rand"

	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// ReuseKnob builds a hyper-parameter list of the given length in which
// approximately reuseFrac of the entries repeat earlier values (the
// Figure 11 "percentage of reusable instructions" knob).
func ReuseKnob(n int, reuseFrac float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		if i > 0 && rng.Float64() < reuseFrac {
			vals[i] = vals[rng.Intn(i)]
		} else {
			vals[i] = 0.0001 * float64(1+rng.Intn(1_000_000))
		}
	}
	return vals
}

// L2SVMMicro builds the Figure 11 micro-benchmark: the core L2SVM loop
// executed for many hyper-parameter trials where a controlled fraction of
// trials repeat (binary matrix-vector operations dominate). Input size and
// iteration count scale compute cost and instruction count independently.
func L2SVMMicro(rows, cols, itersPerTrial int, regs []float64, seed int64) *Workload {
	p := ir.NewProgram()
	defineL2SVM(p, itersPerTrial)
	p.Main = []ir.Block{
		ir.For("reg", regs, ir.BB(
			ir.Call("l2svm", []string{"w"},
				ir.Var("X"), ir.Var("ys"), ir.Var("reg"), ir.Var("w0"), ir.Lit(0.001)),
			ir.Assign("acc", ir.Add(ir.Var("acc"), ir.Sum(ir.Var("w")))),
		)),
	}
	inputs := func() map[string]*data.Matrix {
		x, y := datasets.Classification(rows, cols, 0.5, seed)
		return map[string]*data.Matrix{
			"X":   x,
			"ys":  data.Map(y, func(v float64) float64 { return 2*v - 1 }),
			"w0":  data.Zeros(cols, 1),
			"acc": data.Scalar(0),
		}
	}
	return &Workload{
		Name:       "L2SVM-micro",
		Prog:       p,
		Bind:       func(ctx *runtime.Context) { BindHostInputs(ctx, inputs()) },
		HostInputs: inputs,
	}
}

// EnsembleCNN builds the Figure 12(b) GPU micro-benchmark: two CNNs with
// distinct allocation patterns jointly score image batches, where a
// fraction of batches repeat (pixel-identified duplicates). Small batch
// sizes stress probing overhead; larger ones stress eviction/recycling.
func EnsembleCNN(nImages, batch, h, w int, reuseFrac float64, seed int64) *Workload {
	const cIn = 1
	p := ir.NewProgram()
	nBatches := nImages / batch
	rng := rand.New(rand.NewSource(seed + 99))
	starts := make([]float64, nBatches)
	for i := range starts {
		if i > 0 && rng.Float64() < reuseFrac {
			starts[i] = starts[rng.Intn(i)]
		} else {
			starts[i] = float64((i % nBatches) * batch)
		}
	}
	// Model A: two conv layers (64, 128 channels in the paper; scaled).
	scoreA := func(x *ir.Node) *ir.Node {
		c1 := ir.ReLU(ir.Conv2D(x, ir.Var("wa1"), cIn, h, w, 3, 3, 1, 1))
		c2 := ir.ReLU(ir.Conv2D(c1, ir.Var("wa2"), 8, h, w, 3, 3, 1, 1))
		f1 := ir.ReLU(ir.MatMul(c2, ir.Var("wa3")))
		return ir.Softmax(ir.MatMul(f1, ir.Var("wa4")))
	}
	// Model B: three conv layers with different channel counts.
	scoreB := func(x *ir.Node) *ir.Node {
		c1 := ir.ReLU(ir.Conv2D(x, ir.Var("wb1"), cIn, h, w, 3, 3, 1, 1))
		c2 := ir.ReLU(ir.Conv2D(c1, ir.Var("wb2"), 8, h, w, 3, 3, 1, 1))
		c3 := ir.ReLU(ir.Conv2D(c2, ir.Var("wb3"), 12, h, w, 3, 3, 1, 1))
		f1 := ir.ReLU(ir.MatMul(c3, ir.Var("wb4")))
		return ir.Softmax(ir.MatMul(f1, ir.Var("wb5")))
	}
	body := ir.BB(
		ir.Assign("x", ir.SliceRowsVar(ir.Var("imgs"), ir.Var("bs"), batch)),
		ir.Assign("pa", scoreA(ir.Var("x"))),
		ir.Assign("pb", scoreB(ir.Var("x"))),
		ir.Assign("joint", ir.Mul(ir.Add(ir.Var("pa"), ir.Var("pb")), ir.Lit(0.5))),
		ir.Assign("score", ir.Add(ir.Var("score"), ir.Sum(ir.Var("joint")))),
	)
	p.Main = []ir.Block{ir.For("bs", starts, body)}
	return &Workload{
		Name:     "EnsembleCNN",
		Prog:     p,
		NeedsGPU: true,
		Bind: func(ctx *runtime.Context) {
			ctx.BindHost("imgs", datasets.Images(nImages, cIn, h, w, 0, seed))
			ctx.BindHost("wa1", data.RandNorm(8, cIn*9, 0, 0.1, seed+1))
			ctx.BindHost("wa2", data.RandNorm(12, 8*9, 0, 0.1, seed+2))
			ctx.BindHost("wa3", data.RandNorm(12*h*w, 32, 0, 0.1, seed+3))
			ctx.BindHost("wa4", data.RandNorm(32, 10, 0, 0.1, seed+4))
			ctx.BindHost("wb1", data.RandNorm(8, cIn*9, 0, 0.1, seed+5))
			ctx.BindHost("wb2", data.RandNorm(12, 8*9, 0, 0.1, seed+6))
			ctx.BindHost("wb3", data.RandNorm(16, 12*9, 0, 0.1, seed+7))
			ctx.BindHost("wb4", data.RandNorm(16*h*w, 32, 0, 0.1, seed+8))
			ctx.BindHost("wb5", data.RandNorm(32, 10, 0, 0.1, seed+9))
			ctx.BindHost("score", data.Scalar(0))
		},
	}
}
