package workloads

import (
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/memplan"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// plannerCtx builds a full-MEMPHIS CP/Spark context like tightCtx, with the
// compile-time memory planner attached when mp is non-nil.
func plannerCtx(cpBudget, opMem int64, plan *faults.Plan, mp *memplan.Config) *runtime.Context {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = opMem
	comp.Async = true
	comp.MaxParallelize = true
	comp.CheckpointInjection = true
	cache := core.DefaultConfig()
	cache.CPBudget = cpBudget
	return runtime.New(runtime.Config{
		Mode:     runtime.ReuseMemphis,
		Compiler: comp,
		Cache:    cache,
		Spark:    spark.DefaultConfig(),
		Faults:   plan,
		MemPlan:  mp,
	})
}

// plannerCases are the workloads the planner must bound: each runs under a
// driver cache budget at most half its natural (unbounded) peak.
var plannerCases = []struct {
	name  string
	out   string
	opMem int64
	build func() *Workload
}{
	{"hcv", "best", 2 << 20, func() *Workload { return HCV(800, 16, 2, []float64{0.1, 1, 0.1}, 7) }},
	{"l2svm", "acc", 1 << 30, func() *Workload { return L2SVMMicro(4000, 48, 3, []float64{0.1, 1, 10}, 37) }},
	{"pnmf", "obj", 8 << 10, func() *Workload { return PNMF(400, 30, 4, 4, 11) }},
}

// TestPlannerBoundsPeakBitwise is the planner's core acceptance: with the
// budget clamped to half the natural peak, the planned run must (1) produce
// a bitwise-identical result, (2) keep the measured cache peak under the
// budget, and (3) evict no more than twice the planner-predicted minimum.
func TestPlannerBoundsPeakBitwise(t *testing.T) {
	for _, tc := range plannerCases {
		t.Run(tc.name, func(t *testing.T) {
			// Natural (unbounded) run: reference checksum and peak.
			ctx := plannerCtx(1<<30, tc.opMem, nil, nil)
			vtime0, sum0, _ := runPinned(t, ctx, tc.build(), tc.out)
			natural := ctx.Cache.CPPeak()
			ctx.Close()
			if natural == 0 {
				t.Fatalf("natural run cached nothing")
			}
			budget := natural / 2

			ctx = plannerCtx(budget, tc.opMem, nil, &memplan.Config{Budget: budget})
			vtime1, sum1, cs := runPinned(t, ctx, tc.build(), tc.out)
			peak := ctx.Cache.CPPeak()
			var predicted int64
			for _, r := range ctx.PlanReports() {
				predicted += r.PredictedEvictions
			}
			planBlocks, earlyFrees := ctx.Stats.PlanBlocks, ctx.Stats.EarlyFrees
			ctx.Close()

			t.Logf("natural=%d budget=%d peak=%d evict=%d predicted=%d planBlocks=%d earlyFrees=%d vtime %s->%s",
				natural, budget, peak, cs.EvictionsCP, predicted, planBlocks, earlyFrees, vtime0, vtime1)
			if sum1 != sum0 {
				t.Errorf("planned checksum %#x, want %#x (bitwise identity broken)", sum1, sum0)
			}
			if peak > budget {
				t.Errorf("measured cache peak %d exceeds budget %d", peak, budget)
			}
			if planBlocks == 0 {
				t.Errorf("planner never ran")
			}
			if cs.EvictionsCP > 0 {
				if predicted == 0 {
					t.Errorf("%d evictions but planner predicted none", cs.EvictionsCP)
				} else if cs.EvictionsCP > 2*predicted {
					t.Errorf("evictions %d exceed 2x predicted minimum %d", cs.EvictionsCP, predicted)
				}
			}
		})
	}
}

// TestPlannerHintsReduceEvictions compares planner-on and planner-off under
// the same tight budget: lifetime-grouped victim selection plus early frees
// must not evict more than the unplanned baseline, and the planner must
// actually engage (planned blocks, and early frees on at least one case).
func TestPlannerHintsReduceEvictions(t *testing.T) {
	var anyFrees int64
	for _, tc := range plannerCases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := plannerCtx(1<<30, tc.opMem, nil, nil)
			_, sum0, _ := runPinned(t, ctx, tc.build(), tc.out)
			budget := ctx.Cache.CPPeak() / 2
			ctx.Close()

			ctx = plannerCtx(budget, tc.opMem, nil, nil)
			_, sumOff, csOff := runPinned(t, ctx, tc.build(), tc.out)
			ctx.Close()

			ctx = plannerCtx(budget, tc.opMem, nil, &memplan.Config{Budget: budget})
			_, sumOn, csOn := runPinned(t, ctx, tc.build(), tc.out)
			anyFrees += ctx.Stats.EarlyFrees
			ctx.Close()

			t.Logf("budget=%d evictOff=%d evictOn=%d", budget, csOff.EvictionsCP, csOn.EvictionsCP)
			if sumOff != sum0 || sumOn != sum0 {
				t.Errorf("checksums diverged: off %#x on %#x want %#x", sumOff, sumOn, sum0)
			}
			if csOn.EvictionsCP > csOff.EvictionsCP {
				t.Errorf("planner-on evicted more than planner-off: %d > %d", csOn.EvictionsCP, csOff.EvictionsCP)
			}
		})
	}
	if anyFrees == 0 {
		t.Errorf("no early frees across any planner case")
	}
}

// TestPlannerFreesUnderInjectedEvictions is the interaction property test:
// compiler.InjectEvictions (applied by runPinned) plus planner-inserted
// early frees must never double-free or use a freed value — the ladder
// workload's planned run stays bitwise-identical across kernel parallelism
// 1/4/8 and replays identically under the chaos fault plan.
func TestPlannerFreesUnderInjectedEvictions(t *testing.T) {
	prev := data.Parallelism()
	defer data.SetParallelism(prev)

	run := func(plan *faults.Plan) (string, uint64, core.Stats, int64) {
		mp := &memplan.Config{Budget: 16 << 10}
		ctx := plannerCtx(16<<10, 8<<10, plan, mp)
		defer ctx.Close()
		w := PNMF(400, 30, 4, 4, 11)
		vt, sum, cs := runPinned(t, ctx, w, "obj")
		return vt, sum, cs, ctx.Stats.EarlyFrees
	}

	data.SetParallelism(1)
	vt1, sum1, cs1, frees1 := run(nil)
	if frees1 == 0 {
		t.Fatalf("planner inserted no early frees; the interaction is not exercised")
	}
	for _, par := range []int{4, 8} {
		data.SetParallelism(par)
		vt, sum, cs, frees := run(nil)
		if vt != vt1 || sum != sum1 || cs != cs1 || frees != frees1 {
			t.Errorf("parallelism %d diverged: vtime %s (want %s) checksum %#x (want %#x) frees %d (want %d)",
				par, vt, vt1, sum, sum1, frees, frees1)
		}
	}
	data.SetParallelism(1)
	cvt1, csum1, ccs1, cfrees1 := run(faults.Default(1234))
	cvt2, csum2, ccs2, cfrees2 := run(faults.Default(1234))
	if cvt1 != cvt2 || csum1 != csum2 || ccs1 != ccs2 || cfrees1 != cfrees2 {
		t.Errorf("chaos replay with planner not bitwise identical: vtime %s vs %s, checksum %#x vs %#x",
			cvt1, cvt2, csum1, csum2)
	}
	if csum1 != sum1 {
		t.Errorf("chaos result checksum %#x differs from fault-free %#x", csum1, sum1)
	}
}
