// Package workloads builds the paper's evaluation pipelines (Table 3) as ir
// programs over the mini ML system: grid-search cross-validation (HCV),
// Poisson non-negative matrix factorization (PNMF), Hyperband-style model
// search (HBAND), data-cleaning pipeline enumeration (CLEAN), dropout-rate
// tuning with an input data pipeline (HDROP), translation scoring (EN2DE),
// and transfer-learning feature extraction (TLVIS), plus the
// micro-benchmark programs of §6.2. Each workload is scaled down ~1000x
// from the paper; the virtual-clock cost model preserves relative shapes.
package workloads

import (
	"fmt"
	"sort"

	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// Workload couples a program with its input binder.
type Workload struct {
	Name string
	Prog *ir.Program
	// Bind installs the input datasets into a fresh context.
	Bind func(ctx *runtime.Context)
	// HostInputs, when set, materializes the input datasets as a plain
	// name->matrix map. The serving layer uses it to bind inputs through
	// serve.SubmitOptions, where input checksums drive conflict
	// serialization and cross-tenant reuse. Workloads with purely
	// host-bound inputs set both Bind and HostInputs from the same
	// generator, so the two paths are equivalent.
	HostInputs func() map[string]*data.Matrix
	// NeedsGPU marks workloads whose configs should enable the GPU.
	NeedsGPU bool
}

// BindHostInputs binds a host-input map in sorted name order (the same
// order the serving layer uses, keeping virtual times comparable).
func BindHostInputs(ctx *runtime.Context, inputs map[string]*data.Matrix) {
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ctx.BindHost(n, inputs[n])
	}
}

// Run binds inputs and executes the workload, returning the virtual time.
func (w *Workload) Run(ctx *runtime.Context) (float64, error) {
	w.Bind(ctx)
	start := ctx.Clock.Now()
	if err := ctx.RunProgram(w.Prog); err != nil {
		return 0, fmt.Errorf("%s: %w", w.Name, err)
	}
	return ctx.Clock.Now() - start, nil
}

// defineLinRegDS registers the Example 4.1 direct-solve linear regression:
// the X^T X and X^T y computations are regularizer-independent, making them
// the canonical multi-backend reuse targets.
func defineLinRegDS(p *ir.Program) {
	p.Define(&ir.Function{
		Name:          "linRegDS",
		Params:        []string{"X", "y", "reg", "eye"},
		Returns:       []string{"beta"},
		Deterministic: true,
		Body: []ir.Block{ir.BB(
			ir.Assign("A", ir.TSMM(ir.Var("X"))),
			ir.Assign("b", ir.MatMul(ir.T(ir.Var("y")), ir.Var("X"))),
			ir.Assign("Ar", ir.Add(ir.Var("A"), ir.Mul(ir.Var("eye"), ir.Var("reg")))),
			ir.Assign("beta", ir.Solve(ir.Var("Ar"), ir.T(ir.Var("b")))),
		)},
	})
}

// defineL2SVM registers a gradient-descent linear SVM with squared hinge
// loss; iters is a compile-time iteration count baked into the caller's
// loop, so the function takes the already-prepared signed labels.
func defineL2SVM(p *ir.Program, iters int) {
	body := []ir.Block{ir.BB(
		ir.Assign("w", ir.Rand(0, 1, 0, 0, 1, 42)), // placeholder, resized below
	)}
	_ = body
	p.Define(&ir.Function{
		Name:          "l2svm",
		Params:        []string{"X", "ys", "reg", "w0", "lr"},
		Returns:       []string{"w"},
		Deterministic: true,
		Body: []ir.Block{
			ir.BB(ir.Assign("w", ir.Var("w0"))),
			ir.ForRange("it", iters,
				ir.BB(
					ir.Assign("out", ir.MatMul(ir.Var("X"), ir.Var("w"))),
					// Squared hinge gradient: -2 X^T (ys * max(0, 1-ys*out)) + 2 reg w.
					ir.Assign("hinge", ir.Max(ir.Sub(ir.Lit(1), ir.Mul(ir.Var("ys"), ir.Var("out"))), ir.Lit(0))),
					ir.Assign("g", ir.Add(
						ir.Mul(ir.MatMul(ir.T(ir.Var("X")), ir.Mul(ir.Var("ys"), ir.Var("hinge"))), ir.Lit(-2)),
						ir.Mul(ir.Var("w"), ir.Mul(ir.Var("reg"), ir.Lit(2))))),
					ir.Assign("w", ir.Sub(ir.Var("w"), ir.Mul(ir.Var("g"), ir.Var("lr")))),
				),
			),
		},
	})
}

// defineMLogReg registers a softmax-regression trainer.
func defineMLogReg(p *ir.Program, iters int) {
	p.Define(&ir.Function{
		Name:          "mlogreg",
		Params:        []string{"X", "Y", "reg", "W0", "lr"},
		Returns:       []string{"W"},
		Deterministic: true,
		Body: []ir.Block{
			ir.BB(ir.Assign("W", ir.Var("W0"))),
			ir.ForRange("it", iters,
				ir.BB(
					ir.Assign("P", ir.Softmax(ir.MatMul(ir.Var("X"), ir.Var("W")))),
					ir.Assign("G", ir.Add(
						ir.MatMul(ir.T(ir.Var("X")), ir.Sub(ir.Var("P"), ir.Var("Y"))),
						ir.Mul(ir.Var("W"), ir.Var("reg")))),
					ir.Assign("W", ir.Sub(ir.Var("W"), ir.Mul(ir.Var("G"), ir.Var("lr")))),
				),
			),
		},
	})
}

// r2Block appends statements computing the R^2 of predictions on holdout
// data into the named score variable.
func r2Stmts(score, xTest, yTest, beta string) []ir.Stmt {
	pred, res, tot := "_p_"+score, "_r_"+score, "_s_"+score
	return []ir.Stmt{
		ir.Assign(pred, ir.MatMul(ir.Var(xTest), ir.Var(beta))),
		ir.Assign(res, ir.Sum(ir.Pow(ir.Sub(ir.Var(yTest), ir.Var(pred)), 2))),
		ir.Assign(tot, ir.Sum(ir.Pow(ir.Sub(ir.Var(yTest), ir.Mean(ir.Var(yTest))), 2))),
		ir.Assign(score, ir.Sub(ir.Lit(1), ir.Div(ir.Var(res), ir.Var(tot)))),
	}
}
