package workloads

import (
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/memplan"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// fusedCtx builds a full-MEMPHIS context with the elementwise fusion pass
// and the buffer arena enabled (plus the memory planner, so planner free
// points feed the arena), mirroring tightCtx otherwise.
func fusedCtx(cpBudget, opMem int64, plan *faults.Plan) *runtime.Context {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = opMem
	comp.Async = true
	comp.MaxParallelize = true
	comp.CheckpointInjection = true
	comp.Fusion = true
	cache := core.DefaultConfig()
	cache.CPBudget = cpBudget
	return runtime.New(runtime.Config{
		Mode:     runtime.ReuseMemphis,
		Compiler: comp,
		Cache:    cache,
		Spark:    spark.DefaultConfig(),
		Faults:   plan,
		MemPlan:  &memplan.Config{Budget: cpBudget, EagerFrees: true},
		Arena:    true,
	})
}

// TestFusedWorkloadEquivalence checks the representative pinned workloads
// end to end: with fusion and the arena on, every workload's output
// checksum equals the plain pipeline's, at kernel parallelism 1, 4, and 8.
// (Virtual times legitimately differ — fused chains interpret once and
// skip intermediate cache traffic — so only outputs are compared.)
func TestFusedWorkloadEquivalence(t *testing.T) {
	prev := data.Parallelism()
	defer data.SetParallelism(prev)

	cases := []struct {
		name  string
		out   string
		opMem int64
		build func() *Workload
	}{
		{"hcv", "best", 2 << 20, func() *Workload { return HCV(800, 16, 2, []float64{0.1, 1, 0.1}, 7) }},
		{"l2svm", "acc", 1 << 30, func() *Workload { return L2SVMMicro(4000, 48, 3, []float64{0.1, 1, 10}, 37) }},
		{"pnmf", "obj", 8 << 10, func() *Workload { return PNMF(400, 30, 4, 4, 11) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data.SetParallelism(1)
			ctx := tightCtx(16<<20, 0, false, tc.opMem, nil)
			_, plainSum, _ := runPinned(t, ctx, tc.build(), tc.out)
			ctx.Close()

			var fusedSum uint64
			for i, par := range []int{1, 4, 8} {
				data.SetParallelism(par)
				fctx := fusedCtx(16<<20, tc.opMem, nil)
				_, sum, _ := runPinned(t, fctx, tc.build(), tc.out)
				fctx.Close()
				if sum != plainSum {
					t.Errorf("parallelism %d: fused checksum %#x != plain %#x", par, sum, plainSum)
				}
				if i == 0 {
					fusedSum = sum
				} else if sum != fusedSum {
					t.Errorf("parallelism %d: fused checksum %#x != parallelism-1 fused %#x", par, sum, fusedSum)
				}
			}
		})
	}
}

// TestFusedChaosReplay replays PNMF under the chaos fault plan with fusion
// and the arena on: two runs with the same seed must be bitwise identical
// (virtual time, checksum, counters), and recovery must preserve the
// fault-free result.
func TestFusedChaosReplay(t *testing.T) {
	run := func(plan *faults.Plan) (string, uint64, core.Stats) {
		ctx := fusedCtx(32<<10, 8<<10, plan)
		defer ctx.Close()
		return runPinned(t, ctx, PNMF(400, 30, 4, 4, 11), "obj")
	}
	_, cleanSum, _ := run(nil)
	v1, s1, c1 := run(faults.Default(1234))
	v2, s2, c2 := run(faults.Default(1234))
	if v1 != v2 || s1 != s2 || c1 != c2 {
		t.Errorf("chaos replay not bitwise identical: vtime %s vs %s, checksum %#x vs %#x, stats %+v vs %+v",
			v1, v2, s1, s2, c1, c2)
	}
	if s1 != cleanSum {
		t.Errorf("chaos result checksum %#x differs from fault-free %#x", s1, cleanSum)
	}
}
