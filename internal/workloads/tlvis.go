package workloads

import (
	"fmt"

	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// cnnSpec describes a simplified pre-trained CNN used for transfer
// learning: a stack of conv+relu(+pool) layers followed by FC layers. The
// three models proxy AlexNet, VGG16, and ResNet18 with distinct memory
// allocation patterns (different channel counts and kernel sizes), which is
// what drives the eviction-injection rewrite between models.
type cnnSpec struct {
	name     string
	channels []int // output channels per conv layer
	kernels  []int // square kernel size per conv layer
	fc       []int // FC widths after flattening
	extract  int   // number of trailing layers to extract for ranking
}

// tlvisModels mirrors the paper's AlexNet/VGG16/ResNet18 trio at toy scale.
var tlvisModels = []cnnSpec{
	{name: "alexnet", channels: []int{16, 32}, kernels: []int{5, 3}, fc: []int{64, 32}, extract: 3},
	{name: "vgg16", channels: []int{16, 32, 64}, kernels: []int{3, 3, 3}, fc: []int{64, 32}, extract: 3},
	{name: "resnet18", channels: []int{32, 64}, kernels: []int{3, 3}, fc: []int{64}, extract: 2},
}

// TLVis builds the transfer-learning feature-extraction workload (Figure
// 14(d)): three frozen CNNs are applied to the test images; for each model
// the last `extract` layers are candidate feature layers, each ranked with
// a linear-classifier proxy. Extracting layer L repeats the forward pass
// up to L, so consecutive extractions share prefixes — the reuse target.
func TLVis(nImages, batch, h, w int, seed int64) *Workload {
	const cIn = 3
	p := ir.NewProgram()
	nBatches := nImages / batch
	var blocks []ir.Block
	for _, m := range tlvisModels {
		// One loop block per model (the eviction-injection rewrite keys on
		// sibling loops with differing conv geometries); inside, each
		// extraction is its own basic block so compile-time CSE cannot
		// merge them — like the separate pipeline runs a practitioner
		// would issue — leaving prefix sharing to lineage reuse.
		var body []ir.Block
		for b := 0; b < nBatches; b++ {
			img := fmt.Sprintf("img_%s_%d", m.name, b)
			body = append(body, ir.BB(ir.Assign(img,
				ir.Slice(ir.Var("imgs"), b*batch, (b+1)*batch, 0, -1))))
			totalLayers := len(m.channels) + len(m.fc)
			for ex := 0; ex < m.extract; ex++ {
				upTo := totalLayers - m.extract + ex + 1
				feat := buildForward(m, img, upTo, cIn, h, w)
				fname := fmt.Sprintf("feat_%s_%d_%d", m.name, b, ex)
				body = append(body, ir.BB(
					ir.Assign(fname, feat),
					// Linear proxy ranking of the extracted features.
					ir.Assign("rank", ir.Add(ir.Var("rank"),
						ir.Sum(ir.Sigmoid(ir.RowSums(ir.Var(fname)))))),
				))
			}
		}
		blocks = append(blocks, ir.ForRange("rep_"+m.name, 1, body...))
	}
	p.Main = blocks
	return &Workload{
		Name:     "TLVIS",
		Prog:     p,
		NeedsGPU: true,
		Bind: func(ctx *runtime.Context) {
			ctx.BindHost("imgs", datasets.Images(nImages, cIn, h, w, 0.0, seed))
			for _, m := range tlvisModels {
				inC := cIn
				for li, outC := range m.channels {
					k := m.kernels[li]
					ctx.BindHost(fmt.Sprintf("w_%s_c%d", m.name, li),
						data.RandNorm(outC, inC*k*k, 0, 0.1, seed+int64(li)+hashName(m.name)))
					inC = outC
				}
				// FC input width depends on the final spatial dims.
				fh, fw := h, w
				for range m.channels {
					fh /= 2
					fw /= 2
				}
				inW := inC * fh * fw
				for fi, width := range m.fc {
					ctx.BindHost(fmt.Sprintf("w_%s_f%d", m.name, fi),
						data.RandNorm(inW, width, 0, 0.1, seed+int64(100+fi)+hashName(m.name)))
					inW = width
				}
			}
			ctx.BindHost("rank", data.Scalar(0))
		},
	}
}

// buildForward constructs the forward expression of the first upTo layers.
func buildForward(m cnnSpec, imgVar string, upTo, cIn, h, w int) *ir.Node {
	x := ir.Var(imgVar)
	curC, curH, curW := cIn, h, w
	layer := 0
	for li, outC := range m.channels {
		if layer >= upTo {
			return x
		}
		k := m.kernels[li]
		pad := k / 2
		x = ir.ReLU(ir.Conv2D(x, ir.Var(fmt.Sprintf("w_%s_c%d", m.name, li)),
			curC, curH, curW, k, k, 1, pad))
		x = ir.MaxPool(x, outC, curH, curW, 2, 2, 2)
		curC, curH, curW = outC, curH/2, curW/2
		layer++
	}
	for fi := range m.fc {
		if layer >= upTo {
			return x
		}
		x = ir.ReLU(ir.MatMul(x, ir.Var(fmt.Sprintf("w_%s_f%d", m.name, fi))))
		layer++
	}
	return x
}

func hashName(s string) int64 {
	var h int64
	for _, c := range s {
		h = h*31 + int64(c)
	}
	return h % 1000
}
