package workloads

import (
	"encoding/json"
	"fmt"
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/ir"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// adaptiveCrossoverModel makes Spark the raw-cost winner for the crossover
// microbenchmark's tsmm (a slow driver, a fast cluster, small job
// overheads), so only observed reuse can pull the operator back to CP.
func adaptiveCrossoverModel() *costs.Model {
	m := *costs.Default()
	m.CPUFlops = 1e6
	m.SparkFlops = 1e9
	m.SparkJobOverhead = 20e-3
	m.SparkStageOverhead = 10e-3
	m.CollectBW = 1e12
	return &m
}

// crossoverProg is the crossover microbenchmark: a loop recomputing the
// same tsmm, so from iteration two on every probe hits and the operator's
// observed reuse probability climbs toward one.
func crossoverProg(iters int) *ir.Program {
	body := ir.BB(
		ir.Assign("g", ir.TSMM(ir.Var("X"))),
		ir.Assign("s", ir.Sum(ir.Var("g"))),
	)
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.ForRange("i", iters, body)}
	return prog
}

// runAdaptiveCrossover executes the crossover microbenchmark and returns
// the context for inspection (caller closes).
func runAdaptiveCrossover(t *testing.T, adaptive bool, plan *faults.Plan) *runtime.Context {
	t.Helper()
	ctx := runtime.New(runtime.Config{
		Mode:     runtime.ReuseMemphis,
		Compiler: compiler.DefaultConfig(),
		Cache:    core.DefaultConfig(),
		Spark:    spark.DefaultConfig(),
		Model:    adaptiveCrossoverModel(),
		Adaptive: adaptive,
		Faults:   plan,
	})
	ctx.BindHost("X", data.RandNorm(4096, 4, 0, 1, 7))
	if err := ctx.RunProgram(crossoverProg(24)); err != nil {
		t.Fatalf("crossover run: %v", err)
	}
	return ctx
}

// adaptiveTrace condenses one adaptive run to a deterministic byte string:
// formatted virtual time plus the JSON calibration report and reuse table.
func adaptiveTrace(t *testing.T, ctx *runtime.Context) string {
	t.Helper()
	rep, err := json.Marshal(ctx.CalibrationReport())
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	rows, err := json.Marshal(ctx.ReuseSnapshot())
	if err != nil {
		t.Fatalf("marshal reuse: %v", err)
	}
	return fmt.Sprintf("%.9f|%s|%s", ctx.Clock.Now(), rep, rows)
}

// probesOn sums the recorded probes for an op on one backend.
func probesOn(rows []runtime.ReuseRow, op string, backend int) int64 {
	var n int64
	for _, r := range rows {
		if r.Op == op && r.Backend == backend {
			n += r.Probes
		}
	}
	return n
}

// TestAdaptiveReuseDrivenFlip is the closed loop end to end: under the
// crossover model the tsmm starts Spark-placed (raw-cost winner), the
// repeated hits drive its observed reuse probability to one, and the
// expected-cost placement flips it back to CP — one probe beats a hit on a
// remote handle. The flip is visible in the reuse tallies: probes appear
// under both backends in the adaptive run, while the static run keeps the
// operator wherever the thresholds put it for the whole loop.
func TestAdaptiveReuseDrivenFlip(t *testing.T) {
	ctx := runAdaptiveCrossover(t, true, nil)
	defer ctx.Close()

	rows := ctx.ReuseSnapshot()
	sp := probesOn(rows, "tsmm", int(core.BackendSpark))
	cp := probesOn(rows, "tsmm", int(core.BackendCP))
	if sp == 0 || cp == 0 {
		t.Fatalf("no reuse-driven flip: tsmm probes Spark=%d CP=%d (rows %+v)", sp, cp, rows)
	}
	if ctx.Stats.Recalibrations == 0 {
		t.Fatal("no recalibrations recorded")
	}
	rep := ctx.CalibrationReport()
	if rep == nil || rep.Epoch == 0 {
		t.Fatalf("calibration report = %+v, want non-nil with epoch > 0", rep)
	}

	// The static run must never touch Spark for this operator: its input
	// (128 KB) is far below the placement threshold.
	static := runAdaptiveCrossover(t, false, nil)
	defer static.Close()
	if static.ReuseSnapshot() != nil || static.CalibrationReport() != nil {
		t.Fatal("adaptive-off run must not collect calibration state")
	}
	if static.Cache.Stats.HitsRDD != 0 {
		t.Fatalf("static run hit %d RDD entries; placement flipped without adaptive mode",
			static.Cache.Stats.HitsRDD)
	}
}

// TestAdaptiveDeterministicReplay runs the calibrating workload twice (and
// twice more under the chaos fault plan) and requires byte-identical
// virtual times, calibration reports, and reuse tables: recalibration is a
// pure function of the execution trace.
func TestAdaptiveDeterministicReplay(t *testing.T) {
	c1 := runAdaptiveCrossover(t, true, nil)
	tr1 := adaptiveTrace(t, c1)
	c1.Close()
	c2 := runAdaptiveCrossover(t, true, nil)
	tr2 := adaptiveTrace(t, c2)
	c2.Close()
	if tr1 != tr2 {
		t.Errorf("adaptive replay diverged:\n%s\nvs\n%s", tr1, tr2)
	}

	f1 := runAdaptiveCrossover(t, true, faults.Default(99))
	tf1 := adaptiveTrace(t, f1)
	f1.Close()
	f2 := runAdaptiveCrossover(t, true, faults.Default(99))
	tf2 := adaptiveTrace(t, f2)
	f2.Close()
	if tf1 != tf2 {
		t.Errorf("adaptive chaos replay diverged:\n%s\nvs\n%s", tf1, tf2)
	}
}

// TestAdaptiveInvariantAcrossParallelism reruns the calibrating workload at
// kernel parallelism 1, 4, and 8: placement decisions, virtual time, and
// the full calibration report must be bitwise identical — the closed loop
// observes only virtual-clock deltas, never wall time.
func TestAdaptiveInvariantAcrossParallelism(t *testing.T) {
	prev := data.Parallelism()
	defer data.SetParallelism(prev)

	data.SetParallelism(1)
	base := runAdaptiveCrossover(t, true, nil)
	want := adaptiveTrace(t, base)
	base.Close()
	for _, par := range []int{4, 8} {
		data.SetParallelism(par)
		ctx := runAdaptiveCrossover(t, true, nil)
		got := adaptiveTrace(t, ctx)
		ctx.Close()
		if got != want {
			t.Errorf("parallelism %d diverged:\n%s\nvs\n%s", par, got, want)
		}
	}
}
