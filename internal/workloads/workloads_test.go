package workloads

import (
	"testing"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/gpu"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// newCtx builds a context at simulation scale for the given mode.
func newCtx(mode runtime.ReuseMode, gpuOn bool, opMem int64) *runtime.Context {
	comp := compiler.DefaultConfig()
	if opMem > 0 {
		comp.OpMemBudget = opMem
	}
	comp.GPUEnabled = gpuOn
	comp.GPUMinCells = 256
	if mode == runtime.ReuseMemphis || mode == runtime.ReuseMemphisFine {
		comp.Async = true
		comp.MaxParallelize = true
		comp.CheckpointInjection = true
	}
	pol := gpu.PolicyMemphis
	if mode == runtime.ReuseNone {
		// Base lacks MEMPHIS's unified memory manager: raw cudaMalloc/Free.
		pol = gpu.PolicyNone
	}
	return runtime.New(runtime.Config{
		Mode:        mode,
		Compiler:    comp,
		Cache:       core.DefaultConfig(),
		Spark:       spark.DefaultConfig(),
		GPUCapacity: 32 << 20,
		GPUPolicy:   pol,
	})
}

// runPair executes the workload under Base and MPH and returns both times
// plus the contexts for stat assertions. It also applies the program-level
// MEMPHIS rewrites for the MPH run.
func runPair(t *testing.T, build func() *Workload, gpuOn bool, opMem int64) (baseT, mphT float64, mph *runtime.Context) {
	t.Helper()
	base := newCtx(runtime.ReuseNone, gpuOn, opMem)
	wBase := build()
	baseT, err := wBase.Run(base)
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	mph = newCtx(runtime.ReuseMemphis, gpuOn, opMem)
	wMph := build()
	compiler.AutoTune(wMph.Prog)
	compiler.InjectLoopCheckpoints(wMph.Prog)
	compiler.InjectEvictions(wMph.Prog)
	mphT, err = wMph.Run(mph)
	if err != nil {
		t.Fatalf("mph run: %v", err)
	}
	return baseT, mphT, mph
}

func TestHCVSpeedupAndReuse(t *testing.T) {
	build := func() *Workload {
		return HCV(4000, 48, 3, []float64{0.01, 0.1, 1, 10}, 7)
	}
	baseT, mphT, mph := runPair(t, build, false, 0)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	if mph.Stats.FuncReuses != 0 {
		t.Fatal("distinct regs should not hit function reuse")
	}
	if mph.Cache.Stats.HitsCP == 0 {
		t.Fatal("expected fine-grained reuse of per-fold gram matrices")
	}
}

func TestHCVDistributed(t *testing.T) {
	build := func() *Workload {
		return HCV(400, 8, 2, []float64{0.01, 0.1, 1}, 7)
	}
	// Tiny op budget pushes X and the gram computation to Spark.
	baseT, mphT, mph := runPair(t, build, false, 2<<10)
	if mph.SC.Stats.Jobs == 0 {
		t.Fatal("expected Spark jobs")
	}
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g) on Spark", mphT, baseT)
	}
	s := mph.Cache.Stats
	if s.HitsRDD == 0 && s.HitsActon == 0 {
		t.Fatalf("expected distributed reuse, stats %+v", s)
	}
}

func TestPNMFCheckpointing(t *testing.T) {
	build := func() *Workload { return PNMF(600, 40, 4, 6, 11) }
	baseT, mphT, mph := runPair(t, build, false, 8<<10)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	if mph.Stats.Checkpoints == 0 {
		t.Fatal("expected loop checkpoints on the updated factor")
	}
	// Base re-executes previous iterations; MPH must compute far fewer
	// partitions per iteration.
	base := newCtx(runtime.ReuseNone, false, 8<<10)
	w := build()
	if _, err := w.Run(base); err != nil {
		t.Fatal(err)
	}
	if mph.SC.Stats.PartitionsComputed >= base.SC.Stats.PartitionsComputed {
		t.Fatalf("MPH computed %d partitions vs Base %d",
			mph.SC.Stats.PartitionsComputed, base.SC.Stats.PartitionsComputed)
	}
}

func TestHBandMultiLevelReuse(t *testing.T) {
	build := func() *Workload { return HBand(16000, 64, 3, 4, 3, 50, 13) }
	baseT, mphT, mph := runPair(t, build, false, 0)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	if mph.Stats.FuncReuses == 0 {
		t.Fatal("successive halving must reuse earlier training calls")
	}
	if mph.Cache.Stats.HitsCP == 0 {
		t.Fatal("ensemble search must reuse the XB products")
	}
}

func TestCleanSharedPrefixes(t *testing.T) {
	build := func() *Workload { return Clean(4000, 16, 4, 3, 17) }
	baseT, mphT, mph := runPair(t, build, false, 0)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	if mph.Cache.Stats.HitsCP == 0 {
		t.Fatal("cleaning pipelines must reuse shared prefixes")
	}
}

func TestHDropIDPReuse(t *testing.T) {
	build := func() *Workload {
		return HDrop(256, 8, 50, []float64{0.1, 0.3}, 3, 32, 19)
	}
	baseT, mphT, mph := runPair(t, build, true, 0)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	// The input data pipeline repeats across epochs and rates.
	if mph.Cache.Stats.HitsCP == 0 && mph.Cache.Stats.HitsGPU == 0 {
		t.Fatalf("expected IDP reuse, stats %+v", mph.Cache.Stats)
	}
}

func TestEn2DePredictionReuse(t *testing.T) {
	build := func() *Workload { return En2De(150, 40, 16, 32, 23) }
	baseT, mphT, mph := runPair(t, build, true, 0)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	if mph.Stats.FuncReuses == 0 {
		t.Fatal("duplicate words must reuse host predictions")
	}
}

func TestTLVisPrefixReuse(t *testing.T) {
	build := func() *Workload { return TLVis(16, 8, 8, 8, 29) }
	baseT, mphT, mph := runPair(t, build, true, 1<<30)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	if mph.Cache.Stats.HitsGPU == 0 {
		t.Fatalf("layer extraction must reuse forward-pass prefixes, stats %+v", mph.Cache.Stats)
	}
	if mph.Stats.Evicts == 0 {
		t.Fatal("expected compiler-injected evictions between models")
	}
}

func TestL2SVMMicroReuseKnob(t *testing.T) {
	regs0 := ReuseKnob(20, 0, 31)
	regs80 := ReuseKnob(20, 0.8, 31)
	dups := func(v []float64) int {
		seen := map[float64]bool{}
		d := 0
		for _, x := range v {
			if seen[x] {
				d++
			}
			seen[x] = true
		}
		return d
	}
	if dups(regs0) != 0 {
		t.Fatal("0% knob must not repeat")
	}
	if d := dups(regs80); d < 10 {
		t.Fatalf("80%% knob repeats %d/20, want >= 10", d)
	}
	build := func() *Workload { return L2SVMMicro(4000, 48, 3, regs80, 37) }
	baseT, mphT, _ := runPair(t, build, false, 0)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g) at 80%% reuse", mphT, baseT)
	}
}

func TestEnsembleCNNDuplicateBatches(t *testing.T) {
	build := func() *Workload { return EnsembleCNN(256, 8, 6, 6, 0.6, 41) }
	baseT, mphT, mph := runPair(t, build, true, 1<<30)
	if mphT >= baseT {
		t.Fatalf("MPH (%.4g) must beat Base (%.4g)", mphT, baseT)
	}
	if mph.Cache.Stats.HitsGPU == 0 {
		t.Fatal("duplicate batches must reuse GPU pointers")
	}
}
