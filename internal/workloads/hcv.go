package workloads

import (
	"fmt"

	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// HCV builds the grid-search cross-validation workload (Figure 13(a)):
// k-fold cross-validated direct-solve linear regression evaluated for each
// regularization value. The per-fold X^T X and X^T y are independent of
// the regularizer, so MEMPHIS reuses them (locally or as RDDs/actions)
// across the grid.
func HCV(rows, cols, folds int, regs []float64, seed int64) *Workload {
	p := ir.NewProgram()
	defineLinRegDS(p)

	// Fold preparation (static): train/test splits by row ranges.
	var prep []ir.Stmt
	foldRows := rows / folds
	for f := 0; f < folds; f++ {
		lo, hi := f*foldRows, (f+1)*foldRows
		prep = append(prep,
			ir.Assign(fmt.Sprintf("Xts%d", f), ir.Slice(ir.Var("X"), lo, hi, 0, -1)),
			ir.Assign(fmt.Sprintf("yts%d", f), ir.Slice(ir.Var("y"), lo, hi, 0, -1)),
		)
		// Training set: rows outside [lo,hi).
		switch {
		case f == 0:
			prep = append(prep,
				ir.Assign("Xtr0", ir.Slice(ir.Var("X"), hi, -1, 0, -1)),
				ir.Assign("ytr0", ir.Slice(ir.Var("y"), hi, -1, 0, -1)))
		case f == folds-1:
			prep = append(prep,
				ir.Assign(fmt.Sprintf("Xtr%d", f), ir.Slice(ir.Var("X"), 0, lo, 0, -1)),
				ir.Assign(fmt.Sprintf("ytr%d", f), ir.Slice(ir.Var("y"), 0, lo, 0, -1)))
		default:
			prep = append(prep,
				ir.Assign(fmt.Sprintf("Xtr%d", f), ir.RBind(
					ir.Slice(ir.Var("X"), 0, lo, 0, -1),
					ir.Slice(ir.Var("X"), hi, -1, 0, -1))),
				ir.Assign(fmt.Sprintf("ytr%d", f), ir.RBind(
					ir.Slice(ir.Var("y"), 0, lo, 0, -1),
					ir.Slice(ir.Var("y"), hi, -1, 0, -1))))
		}
	}

	// Grid loop: every fold trains and scores for the current reg.
	var gridStmts []ir.Stmt
	gridStmts = append(gridStmts, ir.Assign("cvScore", ir.Lit(0)))
	for f := 0; f < folds; f++ {
		beta := fmt.Sprintf("beta%d", f)
		gridStmts = append(gridStmts,
			ir.Call("linRegDS", []string{beta},
				ir.Var(fmt.Sprintf("Xtr%d", f)), ir.Var(fmt.Sprintf("ytr%d", f)),
				ir.Var("reg"), ir.Var("eye")))
		gridStmts = append(gridStmts,
			r2Stmts(fmt.Sprintf("r2_%d", f), fmt.Sprintf("Xts%d", f), fmt.Sprintf("yts%d", f), beta)...)
		gridStmts = append(gridStmts,
			ir.Assign("cvScore", ir.Add(ir.Var("cvScore"), ir.Var(fmt.Sprintf("r2_%d", f)))))
	}
	gridStmts = append(gridStmts, ir.Assign("best", ir.Max(ir.Var("best"), ir.Var("cvScore"))))

	p.Main = []ir.Block{
		&ir.BasicBlock{Stmts: prep},
		ir.For("reg", regs, &ir.BasicBlock{Stmts: gridStmts}),
	}

	inputs := func() map[string]*data.Matrix {
		x, y := datasets.Regression(rows, cols, seed)
		return map[string]*data.Matrix{
			"X":    x,
			"y":    y,
			"best": dataScalar(-1e18),
			"eye":  data.Identity(cols),
		}
	}
	return &Workload{
		Name:       "HCV",
		Prog:       p,
		Bind:       func(ctx *runtime.Context) { BindHostInputs(ctx, inputs()) },
		HostInputs: inputs,
	}
}
