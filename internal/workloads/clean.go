package workloads

import (
	"fmt"

	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// cleanStep names a cleaning primitive applied in a pipeline.
type cleanStep string

const (
	stepImputeMean cleanStep = "imputeMean"
	stepImputeMode cleanStep = "imputeMode"
	stepOutlier    cleanStep = "outlierIQR"
	stepScale      cleanStep = "scale"
	stepMinMax     cleanStep = "minmax"
	stepSample     cleanStep = "usample"
	stepPCA        cleanStep = "pca"
)

// cleanPipelines enumerates the 12 pipelines of the CLEAN workload: data-
// dependent orderings of imputation, outlier removal, normalization, class
// balancing, and dimensionality reduction (§6.3). Shared prefixes across
// pipelines are the fine-grained reuse opportunity.
var cleanPipelines = [][]cleanStep{
	{stepImputeMean, stepOutlier, stepScale},
	{stepImputeMean, stepOutlier, stepMinMax},
	{stepImputeMean, stepOutlier, stepScale, stepPCA},
	{stepImputeMean, stepOutlier, stepMinMax, stepPCA},
	{stepImputeMean, stepScale},
	{stepImputeMean, stepMinMax},
	{stepImputeMode, stepOutlier, stepScale},
	{stepImputeMode, stepOutlier, stepMinMax},
	{stepImputeMode, stepOutlier, stepScale, stepPCA},
	{stepImputeMode, stepScale},
	{stepImputeMean, stepOutlier, stepSample, stepScale},
	{stepImputeMode, stepOutlier, stepSample, stepMinMax},
}

// applyStep builds the ir expression for one primitive.
func applyStep(s cleanStep, in *ir.Node, seed int64) *ir.Node {
	switch s {
	case stepImputeMean:
		return ir.ImputeMean(in).WithAttr("skipLast", "1")
	case stepImputeMode:
		return ir.ImputeMode(in).WithAttr("skipLast", "1")
	case stepOutlier:
		return ir.OutlierIQR(in).WithAttr("skipLast", "1")
	case stepScale:
		return ir.Scale(in).WithAttr("skipLast", "1")
	case stepMinMax:
		return ir.MinMax(in).WithAttr("skipLast", "1")
	case stepSample:
		return ir.UnderSample(in, seed)
	case stepPCA:
		return ir.PCA(in, 8, seed)
	default:
		panic("unknown cleaning step")
	}
}

// Clean builds the data-cleaning pipeline enumeration workload (Figure
// 14(a)): all 12 pipelines run against the (replicated) APS dataset with a
// downstream L2SVM scoring proxy, and the best scores are tracked.
func Clean(rows, cols, scale int, svmIters int, seed int64) *Workload {
	p := ir.NewProgram()
	defineL2SVM(p, svmIters)
	var blocks []ir.Block
	const pcaK = 8
	for pi, pipe := range cleanPipelines {
		// Pipelines operate on X with the label appended so row-changing
		// primitives (undersampling) keep labels aligned.
		expr := ir.Var("Xy")
		featCols := cols
		for _, s := range pipe {
			if s == stepPCA {
				// PCA applies to features only; split, project, rejoin.
				expr = ir.NewNode("cleanPCASplit", expr).
					WithAttr("k", fmt.Sprint(pcaK)).WithAttr("seed", fmt.Sprint(seed))
				featCols = pcaK
				continue
			}
			expr = applyStep(s, expr, seed)
		}
		xyName := fmt.Sprintf("clean%d", pi)
		feat := fmt.Sprintf("feat%d", pi)
		lab := fmt.Sprintf("lab%d", pi)
		w := fmt.Sprintf("w%d", pi)
		w0 := "w0"
		if featCols == pcaK {
			w0 = "w0pca"
		}
		blocks = append(blocks, ir.BB(
			ir.Assign(xyName, expr),
			ir.Assign(feat, ir.Slice(ir.Var(xyName), 0, -1, 0, featCols)),
			ir.Assign(lab, ir.Sub(ir.Mul(ir.Slice(ir.Var(xyName), 0, -1, featCols, featCols+1), ir.Lit(2)), ir.Lit(1))),
			ir.Call("l2svm", []string{w}, ir.Var(feat), ir.Var(lab), ir.Lit(0.01), ir.Var(w0), ir.Lit(0.0001)),
			ir.Assign("bestScore", ir.Max(ir.Var("bestScore"),
				ir.Sum(ir.Sigmoid(ir.Mul(ir.MatMul(ir.Var(feat), ir.Var(w)), ir.Var(lab)))))),
		))
	}
	p.Main = blocks
	return &Workload{
		Name: "CLEAN",
		Prog: p,
		Bind: func(ctx *runtime.Context) {
			x, y := datasets.APS(rows, cols, seed)
			// Scale factor replicates rows (the paper's row-append scaling).
			for s := 1; s < scale; s++ {
				x = data.RBind(x, x.SliceRows(0, rows))
				y = data.RBind(y, y.SliceRows(0, rows))
			}
			ctx.BindHost("Xy", data.CBind(x, y))
			ctx.BindHost("w0", data.Zeros(cols, 1))
			ctx.BindHost("w0pca", data.Zeros(8, 1))
			ctx.BindHost("bestScore", data.Scalar(-1e18))
		},
	}
}
