package workloads

import (
	"fmt"

	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// HBand builds the Hyperband-like model-search workload (Figure 13(c)):
// successive halving over L2SVM and multinomial logistic regression
// configurations, followed by weighted ensemble learning whose random
// search repeats the XB multiplications (the paper's key reuse target).
// Across brackets the surviving configurations retrain with doubled
// iteration counts, so the earlier iterations' lineage repeats exactly.
func HBand(rows, cols, brackets, startConfigs, startIters, ensembleConfigs int, seed int64) *Workload {
	p := ir.NewProgram()
	// A single training-step function keeps iteration lineage shared;
	// brackets call it repeatedly with growing counts.
	defineL2SVM(p, startIters)
	defineMLogReg(p, startIters)

	var blocks []ir.Block
	regs := make([]float64, startConfigs)
	for i := range regs {
		regs[i] = 0.001 * float64(int(1)<<uint(i%10)) * (1 + float64(i)*0.37)
	}
	// Successive halving: bracket b evaluates the first
	// startConfigs/2^b configs with startIters*2^b iterations by calling
	// the trainers repeatedly (calls with identical inputs reuse).
	for b := 0; b < brackets; b++ {
		nCfg := startConfigs >> b
		if nCfg < 1 {
			nCfg = 1
		}
		repeats := 1 << b // startIters * 2^b total iterations
		var stmts []ir.Stmt
		for c := 0; c < nCfg; c++ {
			wSVM := fmt.Sprintf("wsvm_b%d_c%d", b, c)
			wMLR := fmt.Sprintf("wmlr_b%d_c%d", b, c)
			svmIn, mlrIn := "w0", "W0"
			for r := 0; r < repeats; r++ {
				// Chained calls: the first r segments repeat across
				// brackets and reuse at function level.
				svmOut, mlrOut := wSVM, wMLR
				if r < repeats-1 {
					svmOut = fmt.Sprintf("%s_r%d", wSVM, r)
					mlrOut = fmt.Sprintf("%s_r%d", wMLR, r)
				}
				stmts = append(stmts,
					ir.Call("l2svm", []string{svmOut},
						ir.Var("X"), ir.Var("ys"), ir.Lit(regs[c]), ir.Var(svmIn), ir.Lit(0.001)),
					ir.Call("mlogreg", []string{mlrOut},
						ir.Var("X"), ir.Var("Y"), ir.Lit(regs[c]), ir.Var(mlrIn), ir.Lit(0.001)))
				svmIn, mlrIn = svmOut, mlrOut
			}
			// Validation scores keep results live.
			stmts = append(stmts,
				ir.Assign("accSvm", ir.Add(ir.Var("accSvm"),
					ir.Sum(ir.MatMul(ir.Var("Xv"), ir.Var(wSVM))))),
				ir.Assign("accMlr", ir.Add(ir.Var("accMlr"),
					ir.Sum(ir.MatMul(ir.Var("Xv"), ir.Var(wMLR))))))
		}
		blocks = append(blocks, &ir.BasicBlock{Stmts: stmts})
	}
	// Weighted ensemble: random search over weight configurations; the
	// class-probability products X*beta are weight-independent.
	wvals := make([]float64, ensembleConfigs)
	for i := range wvals {
		wvals[i] = float64(i%97) / 97.0
	}
	bestSvm := fmt.Sprintf("wsvm_b%d_c0", brackets-1)
	bestMlr := fmt.Sprintf("wmlr_b%d_c0", brackets-1)
	ens := ir.BB(
		ir.Assign("p1", ir.MatMul(ir.Var("Xv"), ir.Var(bestSvm))),
		ir.Assign("p2", ir.RowSums(ir.MatMul(ir.Var("Xv"), ir.Var(bestMlr)))),
		ir.Assign("mix", ir.Add(ir.Mul(ir.Var("p1"), ir.Var("wgt")),
			ir.Mul(ir.Var("p2"), ir.Sub(ir.Lit(1), ir.Var("wgt"))))),
		ir.Assign("ensScore", ir.Max(ir.Var("ensScore"), ir.Sum(ir.Sigmoid(ir.Var("mix"))))),
	)
	blocks = append(blocks, ir.For("wgt", wvals, ens))
	p.Main = blocks

	return &Workload{
		Name: "HBAND",
		Prog: p,
		Bind: func(ctx *runtime.Context) {
			x, y := datasets.Classification(rows, cols, 0.4, seed)
			nVal := rows / 5
			ctx.BindHost("X", x.SliceRows(0, rows-nVal))
			ctx.BindHost("Xv", x.SliceRows(rows-nVal, rows))
			ys := data.Map(y.SliceRows(0, rows-nVal), func(v float64) float64 { return 2*v - 1 })
			ctx.BindHost("ys", ys)
			// One-hot 2-class targets for mlogreg.
			yTrain := y.SliceRows(0, rows-nVal)
			ctx.BindHost("Y", data.OneHot(data.AddScalar(yTrain, 1)))
			ctx.BindHost("w0", data.Zeros(cols, 1))
			ctx.BindHost("W0", data.Zeros(cols, 2))
			ctx.BindHost("accSvm", data.Scalar(0))
			ctx.BindHost("accMlr", data.Scalar(0))
			ctx.BindHost("ensScore", data.Scalar(-1e18))
		},
	}
}
