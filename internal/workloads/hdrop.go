package workloads

import (
	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// HDrop builds the dropout-rate tuning workload (Figure 14(b)): grid search
// over dropout rates of a two-hidden-layer autoencoder trained with
// mini-batches, where every iteration first applies an input data pipeline
// (binning, recoding, one-hot on the host; normalization on the GPU). The
// IDP is rate- and epoch-independent, so MEMPHIS reuses it batch-wise
// across epochs and grid points; the training pass itself depends on the
// evolving weights and is not reusable.
func HDrop(rows, cols, hidden int, rates []float64, epochs, batch int, seed int64) *Workload {
	p := ir.NewProgram()
	nBatches := rows / batch
	batchStarts := make([]float64, nBatches)
	for i := range batchStarts {
		batchStarts[i] = float64(i * batch)
	}
	// Input data pipeline (host transforms; the scale runs on GPU).
	idp := ir.BB(
		ir.Assign("raw", ir.SliceRowsVar(ir.Var("X"), ir.Var("bs"), batch)),
		ir.Assign("enc", ir.OneHotFixed(ir.Bin(ir.Var("raw"), 10), 10)),
		ir.Assign("bn", ir.Scale(ir.Var("enc"))),
	)
	// Forward + simple decoder-gradient step (weights evolve, so this
	// chain is iteration-dependent).
	train := ir.BB(
		ir.Assign("h1", ir.ReLU(ir.MatMul(ir.Var("bn"), ir.Var("W1")))),
		ir.Assign("h1d", ir.DropoutVar(ir.Var("h1"), ir.Var("rate"), seed+7)),
		ir.Assign("z", ir.ReLU(ir.MatMul(ir.Var("h1d"), ir.Var("W2")))),
		ir.Assign("out", ir.MatMul(ir.Var("z"), ir.Var("W3"))),
		ir.Assign("err", ir.Sub(ir.Var("out"), ir.Var("bn"))),
		ir.Assign("G3", ir.MatMul(ir.T(ir.Var("z")), ir.Var("err"))),
		ir.Assign("W3", ir.Sub(ir.Var("W3"), ir.Mul(ir.Var("G3"), ir.Lit(1e-4)))),
		ir.Assign("loss", ir.Add(ir.Var("loss"), ir.Sum(ir.Pow(ir.Var("err"), 2)))),
	)
	p.Main = []ir.Block{
		ir.For("rate", rates,
			ir.BB(ir.Assign("loss", ir.Lit(0))),
			ir.ForRange("ep", epochs,
				ir.For("bs", batchStarts, idp, train),
			),
			ir.BB(ir.Assign("bestLoss", ir.Min(ir.Var("bestLoss"), ir.Var("loss")))),
		),
	}
	return &Workload{
		Name:     "HDROP",
		Prog:     p,
		NeedsGPU: true,
		Bind: func(ctx *runtime.Context) {
			x, _ := datasets.KDD98(rows, cols, cols/3, seed)
			ctx.BindHost("X", x)
			// Encoded width depends on the data; bind weights lazily is
			// not possible, so pre-compute the IDP width once.
			encCols := cols * 10
			ctx.BindHost("W1", data.RandNorm(encCols, hidden, 0, 0.1, seed+1))
			ctx.BindHost("W2", data.RandNorm(hidden, 2, 0, 0.1, seed+2))
			ctx.BindHost("W3", data.RandNorm(2, encCols, 0, 0.1, seed+3))
			ctx.BindHost("bestLoss", data.Scalar(1e18))
		},
	}
}
