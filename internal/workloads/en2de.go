package workloads

import (
	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// En2De builds the translation-scoring workload (Figure 14(c)): a
// pre-trained four-layer fully-connected scorer over word embeddings,
// applied to a Zipf-distributed word sequence. The loop iterates over word
// IDs, so duplicate words produce identical lineage: full MEMPHIS reuses
// the scoring function's host result (eliminating all GPU work for the
// word), MPH-F reuses GPU pointers, and the Clipper emulation restricts
// reuse to the score function (prediction caching).
func En2De(nWords, vocab, dim, hidden int, seed int64) *Workload {
	p := ir.NewProgram()
	p.Define(&ir.Function{
		Name:          "score",
		Params:        []string{"wid", "E", "W1", "W2", "W3", "W4"},
		Returns:       []string{"pick"},
		Deterministic: true,
		Body: []ir.Block{ir.BB(
			ir.Assign("emb", ir.SliceRowsVar(ir.Var("E"), ir.Var("wid"), 1)),
			ir.Assign("h1", ir.ReLU(ir.MatMul(ir.Var("emb"), ir.Var("W1")))),
			ir.Assign("h2", ir.ReLU(ir.MatMul(ir.Var("h1"), ir.Var("W2")))),
			ir.Assign("h3", ir.ReLU(ir.MatMul(ir.Var("h2"), ir.Var("W3")))),
			ir.Assign("probs", ir.Softmax(ir.MatMul(ir.Var("h3"), ir.Var("W4")))),
			// Picking the argmax word happens on the host: the function's
			// result is a driver-side prediction (Clipper-style caching).
			ir.Assign("pick", ir.RowMaxIdx(ir.Var("probs"))),
		)},
	})
	ids, emb := datasets.WMT14Words(nWords, vocab, dim, seed)
	idVals := make([]float64, len(ids))
	for i, id := range ids {
		idVals[i] = float64(id)
	}
	p.Main = []ir.Block{
		ir.For("wid", idVals, ir.BB(
			ir.Call("score", []string{"out"},
				ir.Var("wid"), ir.Var("E"), ir.Var("W1"), ir.Var("W2"), ir.Var("W3"), ir.Var("W4")),
			ir.Assign("total", ir.Add(ir.Var("total"), ir.Var("out"))),
		)),
	}
	return &Workload{
		Name:     "EN2DE",
		Prog:     p,
		NeedsGPU: true,
		Bind: func(ctx *runtime.Context) {
			ctx.BindHost("E", emb)
			ctx.BindHost("W1", data.RandNorm(dim, hidden, 0, 0.1, seed+1))
			ctx.BindHost("W2", data.RandNorm(hidden, hidden, 0, 0.1, seed+2))
			ctx.BindHost("W3", data.RandNorm(hidden, hidden, 0, 0.1, seed+3))
			ctx.BindHost("W4", data.RandNorm(hidden, vocab, 0, 0.1, seed+4))
			ctx.BindHost("total", data.Scalar(0))
		},
	}
}
