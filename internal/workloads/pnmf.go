package workloads

import (
	"memphis/internal/data"
	"memphis/internal/datasets"
	"memphis/internal/ir"
	"memphis/internal/runtime"
)

// dataScalar avoids importing data in every workload file.
func dataScalar(v float64) *data.Matrix { return data.Scalar(v) }

// PNMF builds Poisson non-negative matrix factorization (Figure 13(b)):
// X (users x movies) is factorized into W (users x rank, distributed) and
// H (rank x movies, local) via multiplicative updates. Every iteration
// updates W, so under lazy evaluation each job re-executes all previous
// iterations; the compiler-injected checkpoint for W bounds the graph.
func PNMF(users, movies, rank, iters int, seed int64) *Workload {
	p := ir.NewProgram()
	body := ir.BB(
		// Q = X / (W H): distributed elementwise over the reconstruction.
		ir.Assign("R", ir.MatMul(ir.Var("W"), ir.Var("H"))),
		ir.Assign("Q", ir.Div(ir.Var("X"), ir.Add(ir.Var("R"), ir.Lit(1e-8)))),
		// H update: H * (t(W) Q) / t(colSums(W)).
		ir.Assign("WtQ", ir.MatMul(ir.T(ir.Var("W")), ir.Var("Q"))),
		ir.Assign("H", ir.Div(ir.Mul(ir.Var("H"), ir.Var("WtQ")),
			ir.Add(ir.T(ir.Var("cw")), ir.Lit(1e-8)))),
		ir.Assign("cw", ir.ColSums(ir.Var("W"))),
		// W update: W * (Q t(H)) / t(rowSums(H)).
		ir.Assign("QHt", ir.MatMul(ir.Var("Q"), ir.T(ir.Var("H")))),
		ir.Assign("W", ir.Div(ir.Mul(ir.Var("W"), ir.Var("QHt")),
			ir.Add(ir.T(ir.Var("rh")), ir.Lit(1e-8)))),
		ir.Assign("rh", ir.RowSums(ir.Var("H"))),
		// Objective probe (triggers the per-iteration jobs J1/J2).
		ir.Assign("obj", ir.Sum(ir.Var("Q"))),
	)
	p.Main = []ir.Block{
		ir.BB(
			ir.Assign("cw", ir.ColSums(ir.Var("W"))),
			ir.Assign("rh", ir.RowSums(ir.Var("H"))),
		),
		ir.ForRange("i", iters, body),
	}
	inputs := func() map[string]*data.Matrix {
		return map[string]*data.Matrix{
			"X": datasets.MovieLens(users, movies, seed),
			"W": data.Rand(users, rank, 0.01, 1, 1, seed+1),
			"H": data.Rand(rank, movies, 0.01, 1, 1, seed+2),
		}
	}
	return &Workload{
		Name:       "PNMF",
		Prog:       p,
		Bind:       func(ctx *runtime.Context) { BindHostInputs(ctx, inputs()) },
		HostInputs: inputs,
	}
}
