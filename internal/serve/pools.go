package serve

import (
	"sort"

	"memphis/internal/memctl"
)

// GlobalPoolName is the arbiter pool name of the whole shared cache.
const GlobalPoolName = "shared"

// TenantPoolName returns the arbiter pool name of one tenant's share.
func TenantPoolName(tenant string) string { return "tenant:" + tenant }

// victimsByAge collects scored eviction candidates across all shards,
// filtered by account (nil means every tenant) and ranked by publish
// order through the shared policy's recency-only instance: ticks and
// global sequences are unique and monotone, so the minimum score is
// exactly the oldest entry — the same victim Publish would evict next.
func (s *SharedCache) victimsByAge(acct *tenantAccount, now uint64, seqOf func(*entryMeta) uint64, max int) []memctl.Victim {
	norms := memctl.Norms{Now: float64(now)}
	var out []memctl.Victim
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, md := range sh.meta {
			if acct != nil && md.acct != acct {
				continue
			}
			cand := memctl.Candidate{
				Size:        md.size,
				ComputeCost: md.computeCost,
				LastAccess:  float64(seqOf(md)),
			}
			out = append(out, memctl.Victim{Candidate: cand, Score: memctl.Score(cand, memctl.LRUWeights, norms)})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	if max >= 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// globalPool is the arbiter view of the whole shared cache. There is no
// lower tier (a dropped entry is recomputed by the next session that needs
// it), so Demote returns 0 and MakeSpace falls through to eviction.
type globalPool struct{ s *SharedCache }

func (p globalPool) Name() string  { return GlobalPoolName }
func (p globalPool) Used() int64   { return p.s.bytesStored.Load() }
func (p globalPool) Budget() int64 { return p.s.conf.Budget }

func (p globalPool) Victims(max int) []memctl.Victim {
	return p.s.victimsByAge(nil, p.s.gseq.Load(), func(md *entryMeta) uint64 { return md.gseq }, max)
}

func (p globalPool) Evict(need int64) int64 {
	var freed int64
	for freed < need {
		n := p.s.evictGlobalOldest()
		if n == 0 {
			break
		}
		freed += n
	}
	return freed
}

func (p globalPool) Demote(need int64) int64 { return 0 }

// tenantPool is the arbiter view of one tenant's budgeted share. Eviction
// is oldest-first within the tenant's own entries, keeping non-overlapping
// tenants decoupled (the per-tenant determinism guarantee).
type tenantPool struct {
	s      *SharedCache
	acct   *tenantAccount
	tenant string
}

func (p tenantPool) Name() string  { return TenantPoolName(p.tenant) }
func (p tenantPool) Used() int64   { return p.acct.usage.Load() }
func (p tenantPool) Budget() int64 { return p.s.conf.TenantBudget }

func (p tenantPool) Victims(max int) []memctl.Victim {
	return p.s.victimsByAge(p.acct, p.acct.tick.Load(), func(md *entryMeta) uint64 { return md.tick }, max)
}

func (p tenantPool) Evict(need int64) int64 {
	var freed int64
	for freed < need {
		n := p.s.evictTenantOldest(p.acct)
		if n == 0 {
			break
		}
		freed += n
	}
	return freed
}

func (p tenantPool) Demote(need int64) int64 { return 0 }
