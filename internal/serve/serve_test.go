package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/lineage"
	"memphis/internal/runtime"
	"memphis/internal/workloads"
)

// hcvWorkload builds a small grid-search cross-validation pipeline; fresh per
// server because program rewrites mutate the ir.Program in place.
func hcvWorkload() *workloads.Workload {
	return workloads.HCV(64, 8, 2, []float64{1e-3, 1e-2, 1e-1}, 7)
}

// runPair submits the same workload for two tenants (fresh inputs each, same
// seed, so contents are identical) and returns both results plus the final
// snapshot. When concurrent is false the first request completes before the
// second is even submitted — the serial-replay baseline.
func runPair(t *testing.T, workers int, sched SchedPolicy, concurrent bool) (*Result, *Result, Snapshot) {
	t.Helper()
	conf := DefaultConfig()
	conf.Workers = workers
	conf.Sched = sched
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	fa, err := srv.Submit("alice", w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	if !concurrent {
		if _, err := fa.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	fb, err := srv.Submit("bob", w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	ra, errA := fa.Wait()
	rb, errB := fb.Wait()
	if errA != nil {
		t.Fatal(errA)
	}
	if errB != nil {
		t.Fatal(errB)
	}
	srv.Close()
	return ra, rb, srv.Snapshot()
}

// TestCrossTenantReuseDeterministic is the tentpole acceptance test: two
// tenants submitting the same program concurrently must report exactly the
// per-session virtual times of a serial replay, with the second tenant
// hitting the shared cache.
func TestCrossTenantReuseDeterministic(t *testing.T) {
	serA, serB, _ := runPair(t, 1, SchedFIFO, false)
	conA, conB, snap := runPair(t, 4, SchedFIFO, true)

	if conA.VirtualSeconds != serA.VirtualSeconds {
		t.Fatalf("first tenant: concurrent vtime %v != serial %v", conA.VirtualSeconds, serA.VirtualSeconds)
	}
	if conB.VirtualSeconds != serB.VirtualSeconds {
		t.Fatalf("second tenant: concurrent vtime %v != serial %v", conB.VirtualSeconds, serB.VirtualSeconds)
	}
	if conB.Stats.SharedHits == 0 {
		t.Fatal("second tenant must hit the shared cache")
	}
	if conB.VirtualSeconds >= conA.VirtualSeconds {
		t.Fatalf("cross-tenant reuse must shorten the second request: %v >= %v",
			conB.VirtualSeconds, conA.VirtualSeconds)
	}
	if snap.Shared.CrossTenantHits == 0 || snap.Shared.CrossTenantHitRatio <= 0 {
		t.Fatalf("expected cross-tenant hits, got %+v", snap.Shared)
	}
	if !data.AllClose(conA.Values["best"], serA.Values["best"], 0) ||
		!data.AllClose(conB.Values["best"], serB.Values["best"], 0) {
		t.Fatal("concurrent results must be bitwise identical to serial results")
	}
	if !data.AllClose(conA.Values["best"], conB.Values["best"], 0) {
		t.Fatal("both tenants computed the same program over the same data")
	}

	// Weighted-fair dispatch reorders only non-conflicting work, so the
	// virtual times are unchanged.
	wfqA, wfqB, _ := runPair(t, 4, SchedWFQ, true)
	if wfqA.VirtualSeconds != serA.VirtualSeconds || wfqB.VirtualSeconds != serB.VirtualSeconds {
		t.Fatalf("WFQ vtimes (%v, %v) != serial (%v, %v)",
			wfqA.VirtualSeconds, wfqB.VirtualSeconds, serA.VirtualSeconds, serB.VirtualSeconds)
	}
}

// ridgeProg is an inline (function-free) ridge grid over X and y.
func ridgeProg() *ir.Program {
	p := ir.NewProgram()
	p.Main = []ir.Block{
		ir.For("lambda", []float64{0.1, 0.5}, ir.BB(
			ir.Assign("G", ir.TSMM(ir.Var("X"))),
			ir.Assign("b", ir.MatMul(ir.T(ir.Var("X")), ir.Var("y"))),
			ir.Assign("beta", ir.Solve(ir.Add(ir.Var("G"), ir.Var("lambda")), ir.Var("b"))),
		)),
	}
	return p
}

func ridgeInputs(seed int64) map[string]*data.Matrix {
	return map[string]*data.Matrix{
		"X": data.RandNorm(96, 6, 0, 1, seed),
		"y": data.RandNorm(96, 1, 0, 1, seed+100),
	}
}

// TestDifferentContentNeverAliases is the soundness test: two tenants bind
// DIFFERENT data under the SAME variable names. Content signatures keep their
// entries apart — no cross-tenant hits, and each tenant's answer matches its
// own single-tenant run. Because their input sets do not overlap, the
// requests genuinely run in parallel.
func TestDifferentContentNeverAliases(t *testing.T) {
	expected := make(map[int64]*data.Matrix)
	for _, seed := range []int64{1, 2} {
		conf := DefaultConfig()
		conf.Workers = 1
		solo := New(conf)
		f, err := solo.Submit("solo", ridgeProg(), SubmitOptions{Inputs: ridgeInputs(seed), Fetch: []string{"beta"}})
		if err != nil {
			t.Fatal(err)
		}
		r, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		expected[seed] = r.Values["beta"]
		solo.Close()
	}

	conf := DefaultConfig()
	conf.Workers = 2
	srv := New(conf)
	defer srv.Close()
	prog := ridgeProg()
	type sub struct {
		fut  *Future
		seed int64
	}
	var subs []sub
	for round := 0; round < 3; round++ {
		for i, seed := range []int64{1, 2} {
			f, err := srv.Submit(fmt.Sprintf("tenant-%d", i), prog,
				SubmitOptions{Inputs: ridgeInputs(seed), Fetch: []string{"beta"}})
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub{f, seed})
		}
	}
	for _, s := range subs {
		r, err := s.fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !data.AllClose(r.Values["beta"], expected[s.seed], 0) {
			t.Fatalf("tenant with seed %d got a wrong beta: shared entries aliased", s.seed)
		}
	}
	srv.Close()
	snap := srv.Snapshot()
	if snap.Shared.CrossTenantHits != 0 {
		t.Fatalf("identical names over different data must never alias: %d cross hits",
			snap.Shared.CrossTenantHits)
	}
	// Each tenant's own repeated submissions do reuse its own entries.
	if snap.Shared.Hits == 0 {
		t.Fatal("repeated identical requests should hit the shared cache")
	}
}

// TestServerRaceSoakManyTenants exercises the acceptance criterion that
// `go test -race ./internal/serve/...` passes with at least 8 concurrent
// tenants: 10 tenants in two input groups hammer an 8-worker pool.
func TestServerRaceSoakManyTenants(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 8
	conf.Shared.Budget = 32 << 20
	conf.Shared.TenantBudget = 4 << 20
	srv := New(conf)
	defer srv.Close()

	const tenants, perTenant = 10, 3
	groups := []*workloads.Workload{
		workloads.L2SVMMicro(48, 6, 2, []float64{0.1, 0.2}, 11),
		workloads.L2SVMMicro(48, 6, 2, []float64{0.1, 0.2}, 22),
	}
	var wg sync.WaitGroup
	errs := make(chan error, tenants*perTenant)
	for i := 0; i < tenants; i++ {
		w := groups[i%len(groups)]
		tenant := fmt.Sprintf("tenant-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perTenant; j++ {
				f, err := srv.Submit(tenant, w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"acc"}})
				if err != nil {
					errs <- err
					return
				}
				if _, err := f.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	srv.Close()
	snap := srv.Snapshot()
	if snap.Completed != tenants*perTenant || snap.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", snap.Completed, snap.Failed, tenants*perTenant)
	}
	// Five tenants share each input group, so cross-tenant reuse must occur.
	if snap.Shared.CrossTenantHits == 0 {
		t.Fatal("tenants in the same input group must reuse each other's results")
	}
	if snap.Shared.BytesStored > conf.Shared.Budget {
		t.Fatalf("shared cache overran its budget: %d > %d", snap.Shared.BytesStored, conf.Shared.Budget)
	}
}

func trivialProg() *ir.Program {
	p := ir.NewProgram()
	p.Main = []ir.Block{ir.BB(ir.Assign("z", ir.Lit(1)))}
	return p
}

// TestAdmissionControl holds the single worker hostage with a blocking Bind,
// then verifies the per-tenant and queue-depth rejections.
func TestAdmissionControl(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 1
	conf.MaxQueue = 3
	conf.MaxPerTenant = 2
	srv := New(conf)
	started := make(chan struct{})
	release := make(chan struct{})
	gate, err := srv.Submit("gate", trivialProg(), SubmitOptions{
		Bind: func(*runtime.Context) { close(started); <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the gate request is running, not queued

	var futs []*Future
	for i := 0; i < 2; i++ {
		f, err := srv.Submit("t", trivialProg(), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if _, err := srv.Submit("t", trivialProg(), SubmitOptions{}); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("third in-flight request for one tenant: got %v, want ErrTenantLimit", err)
	}
	f, err := srv.Submit("u", trivialProg(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	futs = append(futs, f)
	if _, err := srv.Submit("v", trivialProg(), SubmitOptions{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into a full queue: got %v, want ErrQueueFull", err)
	}

	close(release)
	if _, err := gate.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	if _, err := srv.Submit("t", trivialProg(), SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: got %v, want ErrClosed", err)
	}
	if snap := srv.Snapshot(); snap.Rejected != 2 {
		t.Fatalf("rejected=%d, want 2", snap.Rejected)
	}
}

// TestSharedCacheTenantBudgetEviction publishes past a tenant's budget and
// checks FIFO (oldest-first) eviction confined to that tenant.
func TestSharedCacheTenantBudgetEviction(t *testing.T) {
	sc := NewSharedCache(SharedConfig{Shards: 4, Budget: 64 << 10, TenantBudget: 8 << 10})
	m := data.RandNorm(32, 16, 0, 1, 3) // 4 KB
	items := make([]*lineage.Item, 6)
	for i := range items {
		items[i] = lineage.NewItem("tsmm", "", lineage.NewLeaf("read", fmt.Sprintf("X%d", i)))
		if _, stored := sc.Publish("a", items[i], uint64(i+1), m, 1.0); !stored {
			t.Fatalf("publish %d rejected", i)
		}
	}
	st := sc.StatsSnapshot()
	if got := st.PerTenant["a"].Bytes; got > 8<<10 {
		t.Fatalf("tenant bytes %d exceed the 8KB budget", got)
	}
	if st.Evictions != 4 || sc.BytesStored() != 8<<10 || st.Entries != 2 {
		t.Fatalf("evictions=%d bytes=%d entries=%d, want 4/8192/2", st.Evictions, sc.BytesStored(), st.Entries)
	}
	if _, _, _, ok := sc.Probe("a", items[5], 6); !ok {
		t.Fatal("newest entry must survive")
	}
	if _, _, _, ok := sc.Probe("a", items[0], 1); ok {
		t.Fatal("oldest entry must be evicted first")
	}

	// A second tenant hitting the survivor counts as a cross-tenant hit and
	// receives a private clone.
	got, cost, charge, ok := sc.Probe("b", items[5], 6)
	if !ok || cost != 1.0 {
		t.Fatalf("cross-tenant probe: ok=%v cost=%v", ok, cost)
	}
	if charge <= sc.Config().Model.Probe {
		t.Fatal("a hit must also charge the transfer of the object")
	}
	if got == m || &got.Data[0] == &m.Data[0] {
		t.Fatal("probe must return a private clone, never shared storage")
	}
	if !data.AllClose(got, m, 0) {
		t.Fatal("clone content mismatch")
	}
	if st := sc.StatsSnapshot(); st.CrossTenantHits != 1 {
		t.Fatalf("cross hits=%d, want 1", st.CrossTenantHits)
	}

	// Objects larger than the tenant budget are refused outright.
	big := data.RandNorm(64, 32, 0, 1, 4) // 16 KB
	if _, stored := sc.Publish("a", lineage.NewLeaf("read", "big"), 99, big, 1.0); stored {
		t.Fatal("oversized publish must be refused")
	}

	sc.Clear()
	if sc.BytesStored() != 0 || sc.StatsSnapshot().Entries != 0 {
		t.Fatal("Clear must drop everything")
	}
}

// TestSharedCacheGlobalBudget overcommits tenant budgets and checks the
// global backstop evicts the globally oldest entry.
func TestSharedCacheGlobalBudget(t *testing.T) {
	sc := NewSharedCache(SharedConfig{Shards: 2, Budget: 8 << 10, TenantBudget: 8 << 10})
	m := data.RandNorm(32, 16, 0, 1, 5) // 4 KB
	item := lineage.NewItem("tsmm", "", lineage.NewLeaf("read", "X"))
	for i, tenant := range []string{"a", "b", "c"} {
		if _, stored := sc.Publish(tenant, item, uint64(i+1), m, 1.0); !stored {
			t.Fatalf("publish by %s rejected", tenant)
		}
	}
	if sc.BytesStored() > 8<<10 {
		t.Fatalf("global budget overrun: %d", sc.BytesStored())
	}
	if _, _, _, ok := sc.Probe("a", item, 1); ok {
		t.Fatal("globally oldest entry must have been evicted")
	}
	for i, tenant := range []string{"b", "c"} {
		if _, _, _, ok := sc.Probe(tenant, item, uint64(i+2)); !ok {
			t.Fatalf("%s's entry must survive", tenant)
		}
	}
}

// TestSharedCachePoolStats drives tenant-budget evictions and checks the
// arbiter surface: the global pool row first, per-tenant rows with truthful
// pressure/eviction counters, and Victims ranked oldest-first.
func TestSharedCachePoolStats(t *testing.T) {
	sc := NewSharedCache(SharedConfig{Shards: 4, Budget: 64 << 10, TenantBudget: 8 << 10})
	m := data.RandNorm(32, 16, 0, 1, 3) // 4 KB
	for i := 0; i < 6; i++ {
		item := lineage.NewItem("tsmm", "", lineage.NewLeaf("read", fmt.Sprintf("X%d", i)))
		if _, stored := sc.Publish("a", item, uint64(i+1), m, 1.0); !stored {
			t.Fatalf("publish %d rejected", i)
		}
	}
	st := sc.StatsSnapshot()
	if len(st.Pools) != 2 || st.Pools[0].Name != GlobalPoolName {
		t.Fatalf("pools %v, want [shared tenant:a]", st.Pools)
	}
	ta := st.Pools[1]
	if ta.Name != TenantPoolName("a") {
		t.Fatalf("tenant pool name %q", ta.Name)
	}
	if ta.Used != 8<<10 || ta.Budget != 8<<10 || ta.Pressure != 1.0 {
		t.Fatalf("tenant pool used=%d budget=%d pressure=%v", ta.Used, ta.Budget, ta.Pressure)
	}
	// Four publishes went over budget; each evicted exactly one 4KB entry.
	if ta.PressureEvents != 4 || ta.Evictions != 4 || ta.EvictedBytes != 16<<10 {
		t.Fatalf("tenant counters %+v, want 4 pressure / 4 evictions / 16KB", ta.Counters)
	}
	if ta.Demotions != 0 {
		t.Fatalf("serve pools have no lower tier, got %d demotions", ta.Demotions)
	}
	// Global pool: no pressure (64KB budget), but every eviction is also a
	// departure from the shared level.
	gl := st.Pools[0]
	if gl.Used != 8<<10 || gl.PressureEvents != 0 || gl.Evictions != 4 {
		t.Fatalf("global pool %+v", gl)
	}
	// Victims rank oldest publish first: the first surviving entry (the 5th
	// published) is the cheapest to lose.
	vs := sc.Arbiter().Pool(TenantPoolName("a")).Victims(-1)
	if len(vs) != 2 {
		t.Fatalf("victims %d, want 2", len(vs))
	}
	if vs[0].Score >= vs[1].Score {
		t.Fatalf("victims not in ascending score order: %v", vs)
	}
	if vs[0].LastAccess != 5 || vs[1].LastAccess != 6 {
		t.Fatalf("victim ticks %v/%v, want 5/6", vs[0].LastAccess, vs[1].LastAccess)
	}
}
