package serve

import (
	"encoding/json"
	"testing"
)

// trafficTestConfig is a CI-sized bench: a couple of classes, a small
// measured phase, and enough virtual arrivals to exercise bursts,
// coalescing, and shedding.
func trafficTestConfig(seed int64) TrafficConfig {
	w1, w2 := hcvWorkload(), hcvWorkload()
	return TrafficConfig{
		Seed:     seed,
		Workload: "hcv-test",
		Classes: []TrafficClass{
			{Name: "g0", Prog: w1.Prog, Inputs: w1.HostInputs(), Fetch: []string{"best"}},
			{Name: "g1", Prog: w2.Prog, Inputs: w2.HostInputs(), Fetch: []string{"best"}},
		},
		Tenants:         12,
		RealRequests:    96,
		VirtualRequests: 20000,
	}
}

// TestTrafficDeterministicReport: two bench runs with the same seed produce
// byte-identical JSON reports (the CI job repeats this through the binary
// with the full 10^5-request default); a different seed produces a
// different report.
func TestTrafficDeterministicReport(t *testing.T) {
	run := func(seed int64) []byte {
		conf := DefaultConfig()
		conf.Workers = 4
		conf.MaxBatch = 16
		rep, err := RunTraffic(conf, trafficTestConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(42), run(42)
	if string(a) != string(b) {
		t.Fatalf("same seed, different reports:\n%s\n%s", a, b)
	}
	if string(a) == string(run(7)) {
		t.Fatal("different seeds must produce different reports")
	}
}

// TestTrafficReportShape: the report's invariants hold — every class got a
// measured service time, the compile cache was heavily hit, admission adds
// up, and goodput is a fraction.
func TestTrafficReportShape(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 4
	conf.MaxBatch = 16
	rep, err := RunTraffic(conf, trafficTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range rep.ClassService {
		if s <= 0 {
			t.Fatalf("class %d has no measured service time", c)
		}
		if rep.ClassCopy[c] <= 0 {
			t.Fatalf("class %d has no fan-out copy charge", c)
		}
	}
	if rep.RealFailed != 0 {
		t.Fatalf("%d measured requests failed", rep.RealFailed)
	}
	if rep.RealCoalesced == 0 {
		t.Fatal("measured phase never coalesced")
	}
	if rep.CompileCacheHitRate <= 0.9 {
		t.Fatalf("compile-cache hit rate %.3f <= 0.9", rep.CompileCacheHitRate)
	}
	if rep.Admitted+rep.Shed != int64(rep.VirtualRequests) {
		t.Fatalf("admitted %d + shed %d != %d arrivals", rep.Admitted, rep.Shed, rep.VirtualRequests)
	}
	if rep.VirtualCoalesced == 0 || rep.Shed == 0 {
		t.Fatalf("bench must exercise coalescing and shedding: coalesced=%d shed=%d",
			rep.VirtualCoalesced, rep.Shed)
	}
	if rep.Goodput <= 0 || rep.Goodput > 1 {
		t.Fatalf("goodput %v out of range", rep.Goodput)
	}
	if rep.P99 < rep.P50 {
		t.Fatalf("p99 %v < p50 %v", rep.P99, rep.P50)
	}
}
