package serve

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"testing"
	"time"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/runtime"
)

// coalesceConf is the common template for the batched-admission tests.
func coalesceConf(workers int) Config {
	conf := DefaultConfig()
	conf.Workers = workers
	conf.Coalesce = true
	return conf
}

// expectedCopyCharge recomputes the documented follower vtime rule: one
// host-memory copy per fetched value, summed in sorted name order.
func expectedCopyCharge(leader *Result) float64 {
	model := costs.Default()
	names := make([]string, 0, len(leader.Values))
	for n := range leader.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	cc := 0.0
	for _, n := range names {
		cc += costs.Transfer(leader.Values[n].SizeBytes(), model.MemBW, model.CopyLatency)
	}
	return cc
}

// TestCoalesceIndependentCopies: N concurrent submissions of the same
// (program, inputs, fetch) coalesce into one execution; every follower gets
// (a) a result bitwise-equal to the leader's, (b) its own deep copy —
// mutating one tenant's matrix must not leak into any other's, and (c) the
// documented virtual latency: the leader's plus one copy charge per
// fetched value. A worker-pinning request queues the leader first, so the
// followers exercise the pending-group (waiter fan-out) path.
func TestCoalesceIndependentCopies(t *testing.T) {
	const followers = 4
	srv := New(coalesceConf(1))
	defer srv.Close()
	w := hcvWorkload()
	inputs := w.HostInputs()

	// Pin the single worker so the leader sits queued while followers join.
	hold := make(chan struct{})
	started := make(chan struct{})
	gate, err := srv.Submit("gate", trivialProg(), SubmitOptions{Bind: func(*runtime.Context) {
		close(started)
		<-hold
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	lead, err := srv.Submit("leader", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*Future, followers)
	for i := range futs {
		f, err := srv.Submit(fmt.Sprintf("f%d", i), w.Prog,
			SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	close(hold)
	if _, err := gate.Wait(); err != nil {
		t.Fatal(err)
	}
	leadRes, err := lead.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if leadRes.Coalesced {
		t.Fatal("leader must not be marked coalesced")
	}
	results := make([]*Result, followers)
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		results[i] = res
	}
	wantVS := leadRes.VirtualSeconds + expectedCopyCharge(leadRes)
	for i, res := range results {
		if !res.Coalesced || res.CoalescedWith != leadRes.Ticket {
			t.Fatalf("follower %d: coalesced=%v with=%d, want leader ticket %d",
				i, res.Coalesced, res.CoalescedWith, leadRes.Ticket)
		}
		if !data.AllClose(res.Values["best"], leadRes.Values["best"], 0) {
			t.Fatalf("follower %d result differs from leader", i)
		}
		if res.VirtualSeconds != wantVS {
			t.Fatalf("follower %d vtime = %v, want leader + copy = %v", i, res.VirtualSeconds, wantVS)
		}
		if res.Values["best"] == leadRes.Values["best"] {
			t.Fatalf("follower %d aliases the leader's matrix", i)
		}
	}
	// Independence: poison one follower's copy; nobody else may see it.
	before := leadRes.Values["best"].At(0, 0)
	results[0].Values["best"].Set(0, 0, before+1e9)
	if leadRes.Values["best"].At(0, 0) != before {
		t.Fatal("mutating a follower's value changed the leader's")
	}
	for i := 1; i < followers; i++ {
		if results[i].Values["best"].At(0, 0) != before {
			t.Fatalf("mutating follower 0's value changed follower %d's", i)
		}
	}
	srv.Close()
	if snap := srv.Snapshot(); snap.Coalesced != followers {
		t.Fatalf("snapshot.Coalesced = %d, want %d", snap.Coalesced, followers)
	}
}

// TestCoalesceLateJoinersMatchWaiters: a follower joining after the leader
// finished gets exactly the same result and virtual latency as one that
// waited — admission timing is invisible in the outcome.
func TestCoalesceLateJoinersMatchWaiters(t *testing.T) {
	srv := New(coalesceConf(2))
	defer srv.Close()
	w := hcvWorkload()
	inputs := w.HostInputs()
	lead, err := srv.Submit("leader", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	leadRes, err := lead.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The leader is done; this submission joins the sealed group inline.
	late, err := srv.Submit("late", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	lateRes, err := late.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !lateRes.Coalesced || lateRes.CoalescedWith != leadRes.Ticket {
		t.Fatalf("late joiner not coalesced with leader: %+v", lateRes)
	}
	if want := leadRes.VirtualSeconds + expectedCopyCharge(leadRes); lateRes.VirtualSeconds != want {
		t.Fatalf("late joiner vtime = %v, want %v", lateRes.VirtualSeconds, want)
	}
	if !data.AllClose(lateRes.Values["best"], leadRes.Values["best"], 0) {
		t.Fatal("late joiner result differs from leader")
	}
	// NoCoalesce opts out: a fresh execution, not a follower.
	solo, err := srv.Submit("solo", w.Prog,
		SubmitOptions{Inputs: inputs, Fetch: []string{"best"}, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	soloRes, err := solo.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if soloRes.Coalesced {
		t.Fatal("NoCoalesce request must not coalesce")
	}
}

// TestCoalesceCancelPaths: canceling a waiting follower resolves it with
// ErrCanceled without touching the group; canceling a queued leader fails
// the group over to its waiters; and no goroutine outlives Close on either
// path.
func TestCoalesceCancelPaths(t *testing.T) {
	// Warm process-wide pools so the goroutine baseline is stable.
	{
		srv := New(coalesceConf(2))
		w := hcvWorkload()
		f, err := srv.Submit("warm", w.Prog, SubmitOptions{Inputs: w.HostInputs()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
		srv.Close()
	}
	base := goruntime.NumGoroutine()

	srv := New(coalesceConf(1))
	w := hcvWorkload()
	inputs := w.HostInputs()
	hold := make(chan struct{})
	started := make(chan struct{})
	gate, err := srv.Submit("gate", trivialProg(), SubmitOptions{Bind: func(*runtime.Context) {
		close(started)
		<-hold
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	lead, err := srv.Submit("leader", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := srv.Submit("f1", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := srv.Submit("f2", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel one waiting follower: it resolves immediately with ErrCanceled
	// even though the leader has not run.
	f1.Cancel()
	if _, err := f1.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled follower err = %v, want ErrCanceled", err)
	}
	// Cancel the queued leader: the group fails over, so the remaining
	// waiter resolves with the leader's cancellation, not a hang.
	lead.Cancel()
	if _, err := lead.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled leader err = %v, want ErrCanceled", err)
	}
	if _, err := f2.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("orphaned follower err = %v, want wrapped ErrCanceled", err)
	}
	// Canceling a finished request is a no-op.
	f2.Cancel()
	close(hold)
	if _, err := gate.Wait(); err != nil {
		t.Fatal(err)
	}
	// A fresh submission after the failed group starts a new group and
	// succeeds — error-sealed groups must not capture new joiners.
	f3, err := srv.Submit("f3", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f3.Wait()
	if err != nil {
		t.Fatalf("post-cancel submission failed: %v", err)
	}
	if res.Coalesced {
		t.Fatal("post-cancel submission joined a dead group")
	}
	srv.Close()
	snap := srv.Snapshot()
	// f1 and the leader were canceled; the orphaned follower f2 counts as
	// failed (it resolved with the leader's cancellation), not canceled.
	if snap.Canceled != 2 {
		t.Fatalf("snapshot.Canceled = %d, want 2", snap.Canceled)
	}
	if snap.Failed != 1 {
		t.Fatalf("snapshot.Failed = %d, want 1 (the orphaned follower)", snap.Failed)
	}
	for i := 0; i < 100 && goruntime.NumGoroutine() > base; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if n := goruntime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak after cancel paths: %d before, %d after\n%s",
			base, n, buf[:goruntime.Stack(buf, true)])
	}
}

// TestCoalesceDeadlinePropagates: a leader that misses the deadline fails
// its whole group with ErrDeadline; followers still receive their result
// copies, and no waiter goroutine leaks.
func TestCoalesceDeadlinePropagates(t *testing.T) {
	conf := coalesceConf(1)
	conf.Deadline = 1e-9
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	inputs := w.HostInputs()
	hold := make(chan struct{})
	started := make(chan struct{})
	gate, err := srv.Submit("gate", trivialProg(), SubmitOptions{Bind: func(*runtime.Context) {
		close(started)
		<-hold
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	lead, err := srv.Submit("leader", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := srv.Submit("fol", w.Prog, SubmitOptions{Inputs: inputs, Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	close(hold)
	if _, err := gate.Wait(); err != nil {
		t.Fatal(err)
	}
	leadRes, err := lead.Wait()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("leader err = %v, want ErrDeadline", err)
	}
	folRes, err := fol.Wait()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("follower err = %v, want wrapped ErrDeadline", err)
	}
	if folRes == nil || folRes.Values["best"] == nil {
		t.Fatal("deadline-failed follower must still carry the computed result")
	}
	if !data.AllClose(folRes.Values["best"], leadRes.Values["best"], 0) {
		t.Fatal("deadline-failed follower result differs from leader")
	}
	srv.Close()
	snap := srv.Snapshot()
	if snap.DeadlineFailures != 2 || snap.Failed != 2 {
		t.Fatalf("deadline_failures=%d failed=%d, want 2/2", snap.DeadlineFailures, snap.Failed)
	}
}
