package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/ir"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// SchedPolicy selects how queued requests are dispatched to workers.
type SchedPolicy int

const (
	// SchedFIFO dispatches strictly by ticket (submission) order among
	// eligible requests.
	SchedFIFO SchedPolicy = iota
	// SchedWFQ is weighted fair queueing: among eligible requests, the
	// tenant with the least accumulated virtual service per weight runs
	// next (ties break by ticket). Conflicting requests still serialize
	// in ticket order, so determinism is unaffected.
	SchedWFQ
)

// Config assembles the serving layer.
type Config struct {
	// Runtime is the per-request session template: every request executes
	// on a fresh runtime.Context built from it (own virtual clock, own
	// session-local cache), attached to the shared cache.
	Runtime runtime.Config
	// Workers is the worker-pool size (default 4).
	Workers int
	// Sched selects FIFO or weighted-fair dispatch.
	Sched SchedPolicy
	// MaxQueue bounds the number of queued requests; Submit rejects with
	// ErrQueueFull beyond it (default 1024).
	MaxQueue int
	// MaxPerTenant bounds one tenant's queued+running requests; Submit
	// rejects with ErrTenantLimit beyond it (default 64).
	MaxPerTenant int
	// Rewrite applies MEMPHIS's program-level rewrites (auto-tuning,
	// checkpoint and eviction injection) exactly once per program object
	// before its first execution; programs may then be shared by many
	// concurrent requests. Enabled by DefaultConfig.
	Rewrite bool
	// Shared sizes the cross-tenant cache.
	Shared SharedConfig

	// Faults, when non-nil, is the chaos plan. Each request attempt derives
	// its own plan via Faults.ForRequest(ticket, attempt) — keyed by ticket,
	// not call order, so fault streams (and therefore virtual latencies) are
	// identical for every worker count. The serve.request site additionally
	// crashes whole attempts before execution.
	Faults *faults.Plan
	// MaxRetries is how many times a failed attempt (injected crash, stage
	// abort, panic) is retried before the request fails (default 2; negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the base of the exponential virtual-time backoff added
	// to a request's latency per retry: backoff_i = RetryBackoff * 2^i
	// virtual seconds (default 0.05).
	RetryBackoff float64
	// Deadline, when positive, fails a request whose final virtual latency
	// (execution plus accumulated backoff) exceeds it, with ErrDeadline.
	Deadline float64
	// ShedThreshold, when positive, sheds new submissions with ErrOverloaded
	// once the queue reaches this depth — admission-level load shedding,
	// tighter than MaxQueue's hard bound.
	ShedThreshold int
	// DisabledShards lists shared-cache shards to start degraded (see
	// SharedCache.SetShardEnabled): probes miss and publishes are rejected,
	// so sessions recompute instead of failing.
	DisabledShards []int

	// CompileCache shares compiled (and memory-planned) instruction streams
	// across all sessions: hot programs compile once per (program, shapes,
	// compiler config, planner config) key and are reused read-only by every
	// tenant. Compilation charges no virtual time, so results and virtual
	// latencies are bitwise-identical with the cache on or off. Enabled by
	// DefaultConfig.
	CompileCache bool
	// CompileShards is the compile cache's shard count (default 16).
	CompileShards int

	// Coalesce enables batched admission: a submission that resolves to the
	// same compiled plan as a recent one — same program fingerprint, same
	// input contents, same fetch set, no Bind hook — joins that request's
	// coalesce group instead of queueing. The group leader executes once and
	// its results fan out to all followers as independent copies. Group
	// membership is decided purely in ticket space at Submit time (see
	// CoalesceWindow/MaxBatch), so it is identical for every worker count
	// and interleaving. Disabled by default.
	Coalesce bool
	// CoalesceWindow is how many tickets after a group's leader a submission
	// may still join the group (default 256). Joining a group whose leader
	// already finished yields exactly the same result and virtual latency as
	// joining before it ran.
	CoalesceWindow uint64
	// MaxBatch caps a coalesce group's size, leader included (default 64).
	MaxBatch int
}

// DefaultConfig mirrors memphis.Options{Reuse: ReuseFull} for each request
// session, with a CPU-only backend set (serving adds no GPU by default).
func DefaultConfig() Config {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = 7 << 20
	comp.Async = true
	comp.MaxParallelize = true
	comp.CheckpointInjection = true
	return Config{
		Runtime: runtime.Config{
			Mode:     runtime.ReuseMemphis,
			Compiler: comp,
			Cache:    core.DefaultConfig(),
			Spark:    spark.DefaultConfig(),
		},
		Workers:      4,
		MaxQueue:     1024,
		MaxPerTenant: 64,
		Rewrite:      true,
		MaxRetries:   2,
		RetryBackoff: 0.05,
		CompileCache: true,
	}
}

// Submission errors (admission control).
var (
	ErrClosed      = errors.New("serve: server closed")
	ErrQueueFull   = errors.New("serve: request queue full")
	ErrTenantLimit = errors.New("serve: tenant request limit reached")
	ErrOverloaded  = errors.New("serve: overloaded, request shed")
)

// ErrDeadline marks a request whose virtual latency exceeded Config.Deadline.
var ErrDeadline = errors.New("serve: deadline exceeded")

// ErrCanceled marks a request whose Future was canceled before it started
// executing.
var ErrCanceled = errors.New("serve: request canceled")

// SubmitOptions carries a request's inputs and result selection.
type SubmitOptions struct {
	// Inputs are host matrices bound (in sorted name order) into the
	// request's fresh session before execution. Their checksums define the
	// request's conflict keys: requests sharing any (name, content) pair
	// serialize in ticket order. Inputs must not be mutated while the
	// request is in flight.
	Inputs map[string]*data.Matrix
	// Bind, when set, runs after Inputs are bound and may install
	// additional variables. Because its effects are opaque, the request
	// conservatively conflicts with every other request.
	Bind func(*runtime.Context)
	// Fetch lists variables to materialize to the host in the Result.
	Fetch []string
	// Weight is the tenant's fair-share weight under SchedWFQ (default 1).
	Weight float64
	// NoCoalesce opts this request out of batched admission even when
	// Config.Coalesce is on: it always executes on its own session.
	NoCoalesce bool
}

// Result is one completed request.
type Result struct {
	Tenant string `json:"tenant"`
	Ticket uint64 `json:"ticket"`
	// VirtualSeconds is the request's deterministic simulated latency on
	// its private session clock — independent of worker interleaving.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// WallSeconds is the real execution time (throughput accounting only).
	WallSeconds float64                 `json:"wall_seconds"`
	Values      map[string]*data.Matrix `json:"-"`
	Stats       runtime.Stats           `json:"stats"`
	Cache       core.Stats              `json:"-"`
	// Retries is how many failed attempts preceded the successful one.
	Retries int `json:"retries,omitempty"`
	// Faults counts injected failures per site during the winning attempt.
	Faults map[string]int64 `json:"faults,omitempty"`
	// Coalesced marks a follower of a coalesce group: its Values are
	// independent copies of the leader's, and its VirtualSeconds is the
	// leader's latency plus one host-memory copy charge per fetched value
	// (costs.Transfer(bytes, MemBW, CopyLatency)). CoalescedWith is the
	// leader's ticket.
	Coalesced     bool   `json:"coalesced,omitempty"`
	CoalescedWith uint64 `json:"coalesced_with,omitempty"`
}

// request is the queue element behind a Future.
type request struct {
	tenant  string
	prog    *ir.Program
	opts    SubmitOptions
	ticket  uint64
	keys    []uint64
	global  bool
	progKey uint64
	// group is the request's coalesce group (nil when coalescing is off or
	// the request is ineligible); the request is the group's leader when
	// group.leader == ticket. coalKey is the group's key in Server.groups.
	group   *coalesceGroup
	coalKey uint64

	done      chan struct{}
	once      sync.Once
	cancelled bool // guarded by Server.mu
	res       *Result
	err       error

	srv *Server
}

// resolve publishes the request's outcome exactly once; later calls are
// no-ops. Result fields are written before done closes, so Future.Wait
// reads them race-free without locks.
func (r *request) resolve(res *Result, err error) {
	r.once.Do(func() {
		r.res, r.err = res, err
		close(r.done)
	})
}

// coalesceGroup is one batched-admission group: the leader executes, the
// followers wait for the fan-out. Membership (size, waiters) is guarded by
// Server.mu; res/err are written once under mu when the leader finishes
// (done flips true) and are read-only afterwards.
type coalesceGroup struct {
	leader  uint64 // leader's ticket
	size    int    // members including the leader
	waiters []*request
	done    bool
	res     *Result
	err     error
}

// Future resolves to a request's Result.
type Future struct{ req *request }

// Done is closed when the request completes.
func (f *Future) Done() <-chan struct{} { return f.req.done }

// Wait blocks for completion and returns the result or execution error.
func (f *Future) Wait() (*Result, error) {
	<-f.req.done
	return f.req.res, f.req.err
}

// Cancel withdraws a request that has not started executing: it is removed
// from the queue (or from its coalesce group's waiter list) and its Future
// resolves with ErrCanceled. Canceling a request that is already running
// or finished is a no-op — the Future resolves with the real outcome.
// Cancel never leaks the waiter: Done is closed on every path.
func (f *Future) Cancel() { f.req.srv.cancel(f.req) }

// Server owns the shared cache, the request queue, and the worker pool.
type Server struct {
	conf   Config
	shared *SharedCache
	cc     *CompileCache // nil when Config.CompileCache is off
	model  *costs.Model  // coalesce fan-out copy charges

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*request
	running      map[uint64]int  // conflict key -> running holders
	runningGlob  bool            // a Bind-carrying request is running
	runningCount int             // requests currently executing
	tenantActive map[string]bool // tenant has a running request
	tenantLoad   map[string]int  // queued+running per tenant (admission)
	service      map[string]float64
	weight       map[string]float64
	rewritten    map[*ir.Program]struct{}
	progKeys     map[*ir.Program]uint64
	groups       map[uint64]*coalesceGroup // coalesce key -> latest group
	nextTicket   uint64
	closed       bool

	submitted     int64
	completed     int64
	failed        int64
	rejected      int64
	shed          int64
	retries       int64
	deadlineFails int64
	coalesced     int64
	canceled      int64
	faultCounts   map[string]int64
	vtimeTotal    float64
	start         time.Time

	wg sync.WaitGroup
}

// New starts the server's workers.
func New(conf Config) *Server {
	if conf.Workers <= 0 {
		conf.Workers = 4
	}
	if conf.MaxQueue <= 0 {
		conf.MaxQueue = 1024
	}
	if conf.MaxPerTenant <= 0 {
		conf.MaxPerTenant = 64
	}
	if conf.MaxRetries == 0 {
		conf.MaxRetries = 2
	} else if conf.MaxRetries < 0 {
		conf.MaxRetries = 0
	}
	if conf.RetryBackoff <= 0 {
		conf.RetryBackoff = 0.05
	}
	if conf.Shared.Model == nil {
		conf.Shared.Model = conf.Runtime.Model
	}
	if conf.CoalesceWindow == 0 {
		conf.CoalesceWindow = 256
	}
	if conf.MaxBatch <= 0 {
		conf.MaxBatch = 64
	}
	model := conf.Runtime.Model
	if model == nil {
		model = costs.Default()
	}
	s := &Server{
		conf:         conf,
		shared:       NewSharedCache(conf.Shared),
		model:        model,
		running:      make(map[uint64]int),
		tenantActive: make(map[string]bool),
		tenantLoad:   make(map[string]int),
		service:      make(map[string]float64),
		weight:       make(map[string]float64),
		rewritten:    make(map[*ir.Program]struct{}),
		progKeys:     make(map[*ir.Program]uint64),
		groups:       make(map[uint64]*coalesceGroup),
		faultCounts:  make(map[string]int64),
		start:        time.Now(),
	}
	if conf.CompileCache {
		s.cc = NewCompileCache(conf.CompileShards)
	}
	for _, idx := range conf.DisabledShards {
		s.shared.SetShardEnabled(idx, false)
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(conf.Workers)
	for i := 0; i < conf.Workers; i++ {
		go s.worker()
	}
	return s
}

// Shared exposes the cross-tenant cache (interactive sessions attach to it
// via runtime.Context.AttachShared).
func (s *Server) Shared() *SharedCache { return s.shared }

// conflictKeys hashes each (name, content) input pair. Input-less requests
// get the sentinel key 0 so they serialize among themselves: their cacheable
// sub-programs have no read leaves and are excluded from sharing, but the
// sentinel keeps the contract simple and future-proof.
func conflictKeys(inputs map[string]*data.Matrix) []uint64 {
	if len(inputs) == 0 {
		return []uint64{0}
	}
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	keys := make([]uint64, 0, len(names))
	var buf [8]byte
	for _, n := range names {
		h := fnv.New64a()
		h.Write([]byte(n))
		h.Write([]byte{0})
		sum := inputs[n].Checksum()
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write(buf[:])
		keys = append(keys, h.Sum64())
	}
	return keys
}

// rewriteLocked applies MEMPHIS's program-level rewrites exactly once per
// program object, before any worker can run it (the rewrites mutate the
// ir.Program and are not idempotent). Caller holds s.mu.
func (s *Server) rewriteLocked(prog *ir.Program) {
	if s.conf.Rewrite && s.conf.Runtime.Mode == runtime.ReuseMemphis {
		if _, done := s.rewritten[prog]; !done {
			compiler.AutoTune(prog)
			compiler.InjectLoopCheckpoints(prog)
			compiler.InjectEvictions(prog)
			s.rewritten[prog] = struct{}{}
		}
	}
}

// progKeyLocked memoizes the program fingerprint per program object. It
// must run after rewriteLocked: source-backed programs key on their raw
// text, but programmatically built ones key on post-rewrite structure, and
// same-structure programs rewrite identically, so equal sources always
// yield equal keys. Caller holds s.mu.
func (s *Server) progKeyLocked(prog *ir.Program) uint64 {
	if k, ok := s.progKeys[prog]; ok {
		return k
	}
	k := prog.Fingerprint()
	s.progKeys[prog] = k
	return k
}

// coalesceKey identifies a coalesce group: the program fingerprint, the
// request's input contents (the conflict keys already hash name +
// checksum), and the fetch set. Requests with equal keys run the same
// deterministic program on the same inputs, so one execution serves all.
func coalesceKey(progKey uint64, keys []uint64, fetch []string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(progKey)
	for _, k := range keys {
		put(k)
	}
	names := append([]string(nil), fetch...)
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Submit enqueues a program for a tenant and returns its Future. Admission
// control rejects when the queue or the tenant's in-flight allowance is
// exhausted, so a flooding tenant cannot starve the pool.
//
// With Config.Coalesce on, a submission that matches an open coalesce
// group (same program, inputs, and fetch set; leader submitted at most
// CoalesceWindow tickets ago; group below MaxBatch) joins the group
// instead of queueing: it bypasses the queue-depth and shed checks (it
// consumes no queue slot or worker), but still counts against the
// per-tenant allowance. Whether the leader has already finished does not
// change the follower's result or virtual latency, so admission is
// interleaving-independent.
func (s *Server) Submit(tenant string, prog *ir.Program, opts SubmitOptions) (*Future, error) {
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	canCoalesce := s.conf.Coalesce && opts.Bind == nil && !opts.NoCoalesce
	var keys []uint64
	var progKey, coalKey uint64
	if canCoalesce || s.cc != nil {
		s.rewriteLocked(prog)
		progKey = s.progKeyLocked(prog)
	}
	if canCoalesce {
		keys = conflictKeys(opts.Inputs)
		coalKey = coalesceKey(progKey, keys, opts.Fetch)
		if g := s.groups[coalKey]; g != nil && s.nextTicket+1-g.leader <= s.conf.CoalesceWindow &&
			g.size < s.conf.MaxBatch && !(g.done && g.err != nil) {
			if s.tenantLoad[tenant] >= s.conf.MaxPerTenant {
				s.rejected++
				return nil, ErrTenantLimit
			}
			if w := opts.Weight; w > 0 {
				s.weight[tenant] = w
			} else if s.weight[tenant] == 0 {
				s.weight[tenant] = 1
			}
			s.nextTicket++
			req := &request{
				tenant:  tenant,
				prog:    prog,
				opts:    opts,
				ticket:  s.nextTicket,
				keys:    keys,
				progKey: progKey,
				group:   g,
				coalKey: coalKey,
				done:    make(chan struct{}),
				srv:     s,
			}
			g.size++
			s.tenantLoad[tenant]++
			s.submitted++
			s.coalesced++
			if g.done {
				res, copySvc, err := s.followerOutcome(req, g)
				s.accountFollowerLocked(req, res, copySvc, err)
				req.resolve(res, err)
			} else {
				g.waiters = append(g.waiters, req)
			}
			return &Future{req: req}, nil
		}
	}
	if s.conf.ShedThreshold > 0 && len(s.queue) >= s.conf.ShedThreshold {
		s.rejected++
		s.shed++
		return nil, ErrOverloaded
	}
	if len(s.queue) >= s.conf.MaxQueue {
		s.rejected++
		return nil, ErrQueueFull
	}
	if s.tenantLoad[tenant] >= s.conf.MaxPerTenant {
		s.rejected++
		return nil, ErrTenantLimit
	}
	s.rewriteLocked(prog)
	if s.cc != nil {
		progKey = s.progKeyLocked(prog)
	}
	w := opts.Weight
	if w <= 0 {
		w = 1
	}
	s.weight[tenant] = w
	if keys == nil {
		keys = conflictKeys(opts.Inputs)
	}
	s.nextTicket++
	req := &request{
		tenant:  tenant,
		prog:    prog,
		opts:    opts,
		ticket:  s.nextTicket,
		keys:    keys,
		global:  opts.Bind != nil,
		progKey: progKey,
		done:    make(chan struct{}),
		srv:     s,
	}
	if canCoalesce {
		g := &coalesceGroup{leader: req.ticket, size: 1}
		req.group = g
		req.coalKey = coalKey
		s.groups[coalKey] = g
	}
	s.queue = append(s.queue, req)
	s.tenantLoad[tenant]++
	s.submitted++
	s.cond.Broadcast()
	return &Future{req: req}, nil
}

// pickLocked selects the next runnable request and removes it from the
// queue (caller holds s.mu). A request is eligible when its tenant has no
// earlier work (queued or running) and it conflicts with nothing running or
// queued ahead of it — so conflicting requests always execute in ticket
// order, which is what makes virtual latencies interleaving-independent.
func (s *Server) pickLocked() *request {
	var best *request
	bestIdx := -1
	bestScore := 0.0
	earlier := make(map[uint64]struct{})
	earlierAny := false
	earlierGlobal := false
	seenTenant := make(map[string]bool)
	for i, r := range s.queue {
		eligible := !s.tenantActive[r.tenant] && !seenTenant[r.tenant]
		if eligible {
			if r.global {
				eligible = s.runningCount == 0 && !earlierAny
			} else if s.runningGlob || earlierGlobal {
				eligible = false
			} else {
				for _, k := range r.keys {
					if _, ok := s.running[k]; ok {
						eligible = false
						break
					}
					if _, ok := earlier[k]; ok {
						eligible = false
						break
					}
				}
			}
		}
		if eligible {
			if s.conf.Sched == SchedFIFO {
				best, bestIdx = r, i
				break
			}
			score := s.service[r.tenant]
			if best == nil || score < bestScore {
				best, bestIdx, bestScore = r, i, score
			}
		}
		seenTenant[r.tenant] = true
		earlierAny = true
		if r.global {
			earlierGlobal = true
		} else {
			for _, k := range r.keys {
				earlier[k] = struct{}{}
			}
		}
	}
	if best != nil {
		s.queue = append(s.queue[:bestIdx], s.queue[bestIdx+1:]...)
	}
	return best
}

// worker is the pool loop: pick, mark conflicts running, execute on a fresh
// session, account, release.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var req *request
		for {
			if req = s.pickLocked(); req != nil {
				break
			}
			if s.closed && len(s.queue) == 0 {
				s.mu.Unlock()
				s.cond.Broadcast()
				return
			}
			s.cond.Wait()
		}
		s.tenantActive[req.tenant] = true
		s.runningCount++
		if req.global {
			s.runningGlob = true
		} else {
			for _, k := range req.keys {
				s.running[k]++
			}
		}
		s.mu.Unlock()

		res, err := s.execute(req)

		s.mu.Lock()
		s.tenantActive[req.tenant] = false
		s.tenantLoad[req.tenant]--
		s.runningCount--
		if req.global {
			s.runningGlob = false
		} else {
			for _, k := range req.keys {
				if s.running[k]--; s.running[k] <= 0 {
					delete(s.running, k)
				}
			}
		}
		if res != nil {
			s.service[req.tenant] += res.VirtualSeconds / s.weight[req.tenant]
			s.vtimeTotal += res.VirtualSeconds
		}
		if err != nil {
			s.failed++
		}
		s.completed++
		// Seal the coalesce group (if this request leads one) so later
		// joins are served inline, and take the current waiters for
		// fan-out.
		var g *coalesceGroup
		var waiters []*request
		if req.group != nil && req.group.leader == req.ticket {
			g = req.group
			g.done = true
			g.res, g.err = res, err
			waiters = g.waiters
			g.waiters = nil
			// A group sealed with an error stops accepting joiners: the
			// waiters inherit the failure, but fresh submissions (new
			// tickets, new fault streams) start a new group.
			if err != nil && s.groups[req.coalKey] == g {
				delete(s.groups, req.coalKey)
			}
		}
		s.mu.Unlock()
		s.cond.Broadcast()
		req.resolve(res, err)
		for _, w := range waiters {
			fres, copySvc, ferr := s.followerOutcome(w, g)
			s.mu.Lock()
			s.accountFollowerLocked(w, fres, copySvc, ferr)
			s.mu.Unlock()
			w.resolve(fres, ferr)
		}
		if len(waiters) > 0 {
			s.cond.Broadcast()
		}
	}
}

// followerOutcome builds a follower's result from its group's sealed
// outcome. The follower receives independent deep copies of the leader's
// fetched values and is charged the leader's virtual latency plus one
// host-memory copy per value (costs.Transfer(bytes, MemBW, CopyLatency)) —
// a deterministic function of the leader's outcome, so identical for every
// interleaving and for followers joining before or after the leader ran.
// A leader error propagates (wrapped with the follower's identity); the
// follower's total latency is then checked against the deadline like any
// other request.
func (s *Server) followerOutcome(w *request, g *coalesceGroup) (*Result, float64, error) {
	if g.res == nil {
		return nil, 0, fmt.Errorf("serve: request %d (%s): coalesced with request %d: %w",
			w.ticket, w.tenant, g.leader, g.err)
	}
	names := make([]string, 0, len(g.res.Values))
	for n := range g.res.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	values := make(map[string]*data.Matrix, len(names))
	copyCost := 0.0
	for _, n := range names {
		m := g.res.Values[n]
		values[n] = m.Clone()
		copyCost += costs.Transfer(m.SizeBytes(), s.model.MemBW, s.model.CopyLatency)
	}
	res := &Result{
		Tenant:         w.tenant,
		Ticket:         w.ticket,
		VirtualSeconds: g.res.VirtualSeconds + copyCost,
		Values:         values,
		Coalesced:      true,
		CoalescedWith:  g.leader,
	}
	if g.err != nil {
		return res, copyCost, fmt.Errorf("serve: request %d (%s): coalesced with request %d: %w",
			w.ticket, w.tenant, g.leader, g.err)
	}
	if s.conf.Deadline > 0 && res.VirtualSeconds > s.conf.Deadline {
		return res, copyCost, fmt.Errorf("serve: request %d (%s): %w (%.3fs > %.3fs)",
			w.ticket, w.tenant, ErrDeadline, res.VirtualSeconds, s.conf.Deadline)
	}
	return res, copyCost, nil
}

// accountFollowerLocked applies a delivered follower's bookkeeping: it
// releases the tenant slot, counts completion/failure, and charges only
// the fan-out copy to the tenant's WFQ service (the follower occupied no
// worker). Caller holds s.mu.
func (s *Server) accountFollowerLocked(w *request, res *Result, copySvc float64, err error) {
	s.tenantLoad[w.tenant]--
	if res != nil {
		s.service[w.tenant] += copySvc / s.weight[w.tenant]
		s.vtimeTotal += res.VirtualSeconds
	}
	if err != nil {
		s.failed++
		if errors.Is(err, ErrDeadline) {
			s.deadlineFails++
		}
	}
	s.completed++
}

// cancel implements Future.Cancel: withdraw the request if it is still
// queued or waiting in a coalesce group; otherwise do nothing.
func (s *Server) cancel(req *request) {
	s.mu.Lock()
	if req.cancelled {
		s.mu.Unlock()
		return
	}
	removed := false
	for i, r := range s.queue {
		if r == req {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			removed = true
			break
		}
	}
	if !removed && req.group != nil && req.group.leader != req.ticket {
		g := req.group
		for i, w := range g.waiters {
			if w == req {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				removed = true
				break
			}
		}
	}
	var orphans []*request
	if removed {
		req.cancelled = true
		s.tenantLoad[req.tenant]--
		s.canceled++
		s.completed++
		// A canceled group leader never executes: fail the group over so
		// its waiters don't hang. They resolve with the leader's
		// cancellation; the group is sealed so later joins see it too.
		if g := req.group; g != nil && g.leader == req.ticket && !g.done {
			g.done = true
			g.err = fmt.Errorf("serve: coalesce leader %d: %w", req.ticket, ErrCanceled)
			orphans = g.waiters
			g.waiters = nil
			if s.groups[req.coalKey] == g {
				delete(s.groups, req.coalKey)
			}
		}
	}
	s.mu.Unlock()
	if !removed {
		return
	}
	req.resolve(nil, fmt.Errorf("serve: request %d (%s): %w", req.ticket, req.tenant, ErrCanceled))
	for _, w := range orphans {
		fres, copySvc, ferr := s.followerOutcome(w, w.group)
		s.mu.Lock()
		s.accountFollowerLocked(w, fres, copySvc, ferr)
		s.mu.Unlock()
		w.resolve(fres, ferr)
	}
	s.cond.Broadcast()
}

// execute runs one request through the retry loop: each attempt executes on a
// fresh session with its own attempt-derived fault plan; failed attempts
// (injected worker crash, Spark stage abort, panic) are retried up to
// Config.MaxRetries times with exponential virtual-time backoff. The final
// latency — execution plus accumulated backoff — is checked against the
// deadline. Everything in the loop is a pure function of the ticket, so
// latencies stay interleaving-independent.
func (s *Server) execute(req *request) (*Result, error) {
	backoff := 0.0
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := s.runAttempt(req, attempt)
		if err == nil {
			res.Retries = attempt
			res.VirtualSeconds += backoff
			if s.conf.Deadline > 0 && res.VirtualSeconds > s.conf.Deadline {
				s.mu.Lock()
				s.deadlineFails++
				s.mu.Unlock()
				return res, fmt.Errorf("serve: request %d (%s): %w (%.3fs > %.3fs)",
					req.ticket, req.tenant, ErrDeadline, res.VirtualSeconds, s.conf.Deadline)
			}
			return res, nil
		}
		lastErr = err
		if attempt >= s.conf.MaxRetries {
			break
		}
		backoff += s.conf.RetryBackoff * float64(int64(1)<<uint(attempt))
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
	}
	return nil, lastErr
}

// runAttempt runs one attempt of a request on a fresh session attached to the
// shared cache. The session is torn down afterwards (Close frees GPU
// pointers, unpersists RDDs and broadcasts), so per-request state never leaks
// across tenants — or across attempts. A panic (e.g. a stage abort escaping
// through a lazy fetch) fails the attempt, not the worker.
func (s *Server) runAttempt(req *request, attempt int) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("serve: request %d (%s): panic: %v", req.ticket, req.tenant, p)
		}
	}()
	// Injected request-level fault: the simulated worker crashes before
	// touching the session. Decided by (ticket, attempt) alone.
	if s.conf.Faults.FireAt(faults.ServeRequest, req.ticket, attempt) {
		s.mu.Lock()
		s.faultCounts[string(faults.ServeRequest)]++
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: request %d (%s): injected worker fault (attempt %d)",
			req.ticket, req.tenant, attempt)
	}
	start := time.Now()
	rc := s.conf.Runtime
	rc.Faults = s.conf.Faults.ForRequest(req.ticket, attempt)
	ctx := runtime.New(rc)
	defer ctx.Close()
	defer func() {
		if counts := ctx.Inj.Counts(); len(counts) > 0 {
			s.mu.Lock()
			for site, n := range counts {
				s.faultCounts[string(site)] += n
			}
			s.mu.Unlock()
		}
	}()
	ctx.AttachShared(s.shared, req.tenant)
	if s.cc != nil {
		ctx.AttachCompileCache(s.cc, req.progKey)
	}
	names := make([]string, 0, len(req.opts.Inputs))
	for n := range req.opts.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ctx.BindHost(n, req.opts.Inputs[n])
	}
	if req.opts.Bind != nil {
		req.opts.Bind(ctx)
	}
	if err := ctx.RunProgram(req.prog); err != nil {
		return nil, fmt.Errorf("serve: request %d (%s): %w", req.ticket, req.tenant, err)
	}
	values := make(map[string]*data.Matrix, len(req.opts.Fetch))
	for _, n := range req.opts.Fetch {
		if v := ctx.Var(n); v != nil {
			values[n] = ctx.EnsureHostValue(v)
		}
	}
	var siteCounts map[string]int64
	if counts := ctx.Inj.Counts(); len(counts) > 0 {
		siteCounts = make(map[string]int64, len(counts))
		for site, n := range counts {
			siteCounts[string(site)] = n
		}
	}
	return &Result{
		Tenant:         req.tenant,
		Ticket:         req.ticket,
		VirtualSeconds: ctx.Clock.Now(),
		WallSeconds:    time.Since(start).Seconds(),
		Values:         values,
		Stats:          ctx.Stats,
		Cache:          ctx.Cache.Stats,
		Faults:         siteCounts,
	}, nil
}

// Snapshot is the monitoring surface of the server.
type Snapshot struct {
	QueueDepth int   `json:"queue_depth"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Rejected   int64 `json:"rejected"`
	// Shed counts rejections from ShedThreshold (a subset of Rejected).
	Shed int64 `json:"shed,omitempty"`
	// Retries counts retried attempts; DeadlineFailures counts requests that
	// completed past Config.Deadline. Faults aggregates injected failures by
	// site across all attempts.
	Retries          int64            `json:"retries,omitempty"`
	DeadlineFailures int64            `json:"deadline_failures,omitempty"`
	Faults           map[string]int64 `json:"faults,omitempty"`
	// Coalesced counts follower requests served by a group leader's
	// execution; Canceled counts futures withdrawn before starting.
	Coalesced int64 `json:"coalesced,omitempty"`
	Canceled  int64 `json:"canceled,omitempty"`
	// WallSeconds and Throughput are real-time aggregates; virtual times
	// stay per-session and deterministic.
	WallSeconds             float64            `json:"wall_seconds"`
	Throughput              float64            `json:"throughput_rps"`
	AggregateVirtualSeconds float64            `json:"aggregate_virtual_seconds"`
	Shared                  SharedStats        `json:"shared"`
	CompileCache            *CompileCacheStats `json:"compile_cache,omitempty"`
}

// Snapshot returns current queue, throughput, and shared-cache statistics.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		QueueDepth:              len(s.queue),
		Running:                 s.runningCount,
		Submitted:               s.submitted,
		Completed:               s.completed,
		Failed:                  s.failed,
		Rejected:                s.rejected,
		Shed:                    s.shed,
		Retries:                 s.retries,
		DeadlineFailures:        s.deadlineFails,
		Coalesced:               s.coalesced,
		Canceled:                s.canceled,
		WallSeconds:             time.Since(s.start).Seconds(),
		AggregateVirtualSeconds: s.vtimeTotal,
	}
	if len(s.faultCounts) > 0 {
		snap.Faults = make(map[string]int64, len(s.faultCounts))
		for site, n := range s.faultCounts {
			snap.Faults[site] = n
		}
	}
	s.mu.Unlock()
	if snap.WallSeconds > 0 {
		snap.Throughput = float64(snap.Completed) / snap.WallSeconds
	}
	snap.Shared = s.shared.StatsSnapshot()
	if s.cc != nil {
		st := s.cc.StatsSnapshot()
		snap.CompileCache = &st
	}
	return snap
}

// Close stops admitting requests, drains the queue, and waits for all
// workers to finish. The shared cache remains readable for Snapshot.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
