package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/ir"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// SchedPolicy selects how queued requests are dispatched to workers.
type SchedPolicy int

const (
	// SchedFIFO dispatches strictly by ticket (submission) order among
	// eligible requests.
	SchedFIFO SchedPolicy = iota
	// SchedWFQ is weighted fair queueing: among eligible requests, the
	// tenant with the least accumulated virtual service per weight runs
	// next (ties break by ticket). Conflicting requests still serialize
	// in ticket order, so determinism is unaffected.
	SchedWFQ
)

// Config assembles the serving layer.
type Config struct {
	// Runtime is the per-request session template: every request executes
	// on a fresh runtime.Context built from it (own virtual clock, own
	// session-local cache), attached to the shared cache.
	Runtime runtime.Config
	// Workers is the worker-pool size (default 4).
	Workers int
	// Sched selects FIFO or weighted-fair dispatch.
	Sched SchedPolicy
	// MaxQueue bounds the number of queued requests; Submit rejects with
	// ErrQueueFull beyond it (default 1024).
	MaxQueue int
	// MaxPerTenant bounds one tenant's queued+running requests; Submit
	// rejects with ErrTenantLimit beyond it (default 64).
	MaxPerTenant int
	// Rewrite applies MEMPHIS's program-level rewrites (auto-tuning,
	// checkpoint and eviction injection) exactly once per program object
	// before its first execution; programs may then be shared by many
	// concurrent requests. Enabled by DefaultConfig.
	Rewrite bool
	// Shared sizes the cross-tenant cache.
	Shared SharedConfig

	// Faults, when non-nil, is the chaos plan. Each request attempt derives
	// its own plan via Faults.ForRequest(ticket, attempt) — keyed by ticket,
	// not call order, so fault streams (and therefore virtual latencies) are
	// identical for every worker count. The serve.request site additionally
	// crashes whole attempts before execution.
	Faults *faults.Plan
	// MaxRetries is how many times a failed attempt (injected crash, stage
	// abort, panic) is retried before the request fails (default 2; negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the base of the exponential virtual-time backoff added
	// to a request's latency per retry: backoff_i = RetryBackoff * 2^i
	// virtual seconds (default 0.05).
	RetryBackoff float64
	// Deadline, when positive, fails a request whose final virtual latency
	// (execution plus accumulated backoff) exceeds it, with ErrDeadline.
	Deadline float64
	// ShedThreshold, when positive, sheds new submissions with ErrOverloaded
	// once the queue reaches this depth — admission-level load shedding,
	// tighter than MaxQueue's hard bound.
	ShedThreshold int
	// DisabledShards lists shared-cache shards to start degraded (see
	// SharedCache.SetShardEnabled): probes miss and publishes are rejected,
	// so sessions recompute instead of failing.
	DisabledShards []int
}

// DefaultConfig mirrors memphis.Options{Reuse: ReuseFull} for each request
// session, with a CPU-only backend set (serving adds no GPU by default).
func DefaultConfig() Config {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = 7 << 20
	comp.Async = true
	comp.MaxParallelize = true
	comp.CheckpointInjection = true
	return Config{
		Runtime: runtime.Config{
			Mode:     runtime.ReuseMemphis,
			Compiler: comp,
			Cache:    core.DefaultConfig(),
			Spark:    spark.DefaultConfig(),
		},
		Workers:      4,
		MaxQueue:     1024,
		MaxPerTenant: 64,
		Rewrite:      true,
		MaxRetries:   2,
		RetryBackoff: 0.05,
	}
}

// Submission errors (admission control).
var (
	ErrClosed      = errors.New("serve: server closed")
	ErrQueueFull   = errors.New("serve: request queue full")
	ErrTenantLimit = errors.New("serve: tenant request limit reached")
	ErrOverloaded  = errors.New("serve: overloaded, request shed")
)

// ErrDeadline marks a request whose virtual latency exceeded Config.Deadline.
var ErrDeadline = errors.New("serve: deadline exceeded")

// SubmitOptions carries a request's inputs and result selection.
type SubmitOptions struct {
	// Inputs are host matrices bound (in sorted name order) into the
	// request's fresh session before execution. Their checksums define the
	// request's conflict keys: requests sharing any (name, content) pair
	// serialize in ticket order. Inputs must not be mutated while the
	// request is in flight.
	Inputs map[string]*data.Matrix
	// Bind, when set, runs after Inputs are bound and may install
	// additional variables. Because its effects are opaque, the request
	// conservatively conflicts with every other request.
	Bind func(*runtime.Context)
	// Fetch lists variables to materialize to the host in the Result.
	Fetch []string
	// Weight is the tenant's fair-share weight under SchedWFQ (default 1).
	Weight float64
}

// Result is one completed request.
type Result struct {
	Tenant string `json:"tenant"`
	Ticket uint64 `json:"ticket"`
	// VirtualSeconds is the request's deterministic simulated latency on
	// its private session clock — independent of worker interleaving.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// WallSeconds is the real execution time (throughput accounting only).
	WallSeconds float64                 `json:"wall_seconds"`
	Values      map[string]*data.Matrix `json:"-"`
	Stats       runtime.Stats           `json:"stats"`
	Cache       core.Stats              `json:"-"`
	// Retries is how many failed attempts preceded the successful one.
	Retries int `json:"retries,omitempty"`
	// Faults counts injected failures per site during the winning attempt.
	Faults map[string]int64 `json:"faults,omitempty"`
}

// request is the queue element behind a Future.
type request struct {
	tenant string
	prog   *ir.Program
	opts   SubmitOptions
	ticket uint64
	keys   []uint64
	global bool
	done   chan struct{}
	res    *Result
	err    error
}

// Future resolves to a request's Result.
type Future struct{ req *request }

// Done is closed when the request completes.
func (f *Future) Done() <-chan struct{} { return f.req.done }

// Wait blocks for completion and returns the result or execution error.
func (f *Future) Wait() (*Result, error) {
	<-f.req.done
	return f.req.res, f.req.err
}

// Server owns the shared cache, the request queue, and the worker pool.
type Server struct {
	conf   Config
	shared *SharedCache

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*request
	running      map[uint64]int  // conflict key -> running holders
	runningGlob  bool            // a Bind-carrying request is running
	runningCount int             // requests currently executing
	tenantActive map[string]bool // tenant has a running request
	tenantLoad   map[string]int  // queued+running per tenant (admission)
	service      map[string]float64
	weight       map[string]float64
	rewritten    map[*ir.Program]struct{}
	nextTicket   uint64
	closed       bool

	submitted     int64
	completed     int64
	failed        int64
	rejected      int64
	shed          int64
	retries       int64
	deadlineFails int64
	faultCounts   map[string]int64
	vtimeTotal    float64
	start         time.Time

	wg sync.WaitGroup
}

// New starts the server's workers.
func New(conf Config) *Server {
	if conf.Workers <= 0 {
		conf.Workers = 4
	}
	if conf.MaxQueue <= 0 {
		conf.MaxQueue = 1024
	}
	if conf.MaxPerTenant <= 0 {
		conf.MaxPerTenant = 64
	}
	if conf.MaxRetries == 0 {
		conf.MaxRetries = 2
	} else if conf.MaxRetries < 0 {
		conf.MaxRetries = 0
	}
	if conf.RetryBackoff <= 0 {
		conf.RetryBackoff = 0.05
	}
	if conf.Shared.Model == nil {
		conf.Shared.Model = conf.Runtime.Model
	}
	s := &Server{
		conf:         conf,
		shared:       NewSharedCache(conf.Shared),
		running:      make(map[uint64]int),
		tenantActive: make(map[string]bool),
		tenantLoad:   make(map[string]int),
		service:      make(map[string]float64),
		weight:       make(map[string]float64),
		rewritten:    make(map[*ir.Program]struct{}),
		faultCounts:  make(map[string]int64),
		start:        time.Now(),
	}
	for _, idx := range conf.DisabledShards {
		s.shared.SetShardEnabled(idx, false)
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(conf.Workers)
	for i := 0; i < conf.Workers; i++ {
		go s.worker()
	}
	return s
}

// Shared exposes the cross-tenant cache (interactive sessions attach to it
// via runtime.Context.AttachShared).
func (s *Server) Shared() *SharedCache { return s.shared }

// conflictKeys hashes each (name, content) input pair. Input-less requests
// get the sentinel key 0 so they serialize among themselves: their cacheable
// sub-programs have no read leaves and are excluded from sharing, but the
// sentinel keeps the contract simple and future-proof.
func conflictKeys(inputs map[string]*data.Matrix) []uint64 {
	if len(inputs) == 0 {
		return []uint64{0}
	}
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	keys := make([]uint64, 0, len(names))
	var buf [8]byte
	for _, n := range names {
		h := fnv.New64a()
		h.Write([]byte(n))
		h.Write([]byte{0})
		sum := inputs[n].Checksum()
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write(buf[:])
		keys = append(keys, h.Sum64())
	}
	return keys
}

// Submit enqueues a program for a tenant and returns its Future. Admission
// control rejects when the queue or the tenant's in-flight allowance is
// exhausted, so a flooding tenant cannot starve the pool.
func (s *Server) Submit(tenant string, prog *ir.Program, opts SubmitOptions) (*Future, error) {
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.conf.ShedThreshold > 0 && len(s.queue) >= s.conf.ShedThreshold {
		s.rejected++
		s.shed++
		return nil, ErrOverloaded
	}
	if len(s.queue) >= s.conf.MaxQueue {
		s.rejected++
		return nil, ErrQueueFull
	}
	if s.tenantLoad[tenant] >= s.conf.MaxPerTenant {
		s.rejected++
		return nil, ErrTenantLimit
	}
	// Program rewrites mutate the ir.Program and are not idempotent; apply
	// them exactly once per program object, before any worker can run it.
	if s.conf.Rewrite && s.conf.Runtime.Mode == runtime.ReuseMemphis {
		if _, done := s.rewritten[prog]; !done {
			compiler.AutoTune(prog)
			compiler.InjectLoopCheckpoints(prog)
			compiler.InjectEvictions(prog)
			s.rewritten[prog] = struct{}{}
		}
	}
	w := opts.Weight
	if w <= 0 {
		w = 1
	}
	s.weight[tenant] = w
	s.nextTicket++
	req := &request{
		tenant: tenant,
		prog:   prog,
		opts:   opts,
		ticket: s.nextTicket,
		keys:   conflictKeys(opts.Inputs),
		global: opts.Bind != nil,
		done:   make(chan struct{}),
	}
	s.queue = append(s.queue, req)
	s.tenantLoad[tenant]++
	s.submitted++
	s.cond.Broadcast()
	return &Future{req: req}, nil
}

// pickLocked selects the next runnable request and removes it from the
// queue (caller holds s.mu). A request is eligible when its tenant has no
// earlier work (queued or running) and it conflicts with nothing running or
// queued ahead of it — so conflicting requests always execute in ticket
// order, which is what makes virtual latencies interleaving-independent.
func (s *Server) pickLocked() *request {
	var best *request
	bestIdx := -1
	bestScore := 0.0
	earlier := make(map[uint64]struct{})
	earlierAny := false
	earlierGlobal := false
	seenTenant := make(map[string]bool)
	for i, r := range s.queue {
		eligible := !s.tenantActive[r.tenant] && !seenTenant[r.tenant]
		if eligible {
			if r.global {
				eligible = s.runningCount == 0 && !earlierAny
			} else if s.runningGlob || earlierGlobal {
				eligible = false
			} else {
				for _, k := range r.keys {
					if _, ok := s.running[k]; ok {
						eligible = false
						break
					}
					if _, ok := earlier[k]; ok {
						eligible = false
						break
					}
				}
			}
		}
		if eligible {
			if s.conf.Sched == SchedFIFO {
				best, bestIdx = r, i
				break
			}
			score := s.service[r.tenant]
			if best == nil || score < bestScore {
				best, bestIdx, bestScore = r, i, score
			}
		}
		seenTenant[r.tenant] = true
		earlierAny = true
		if r.global {
			earlierGlobal = true
		} else {
			for _, k := range r.keys {
				earlier[k] = struct{}{}
			}
		}
	}
	if best != nil {
		s.queue = append(s.queue[:bestIdx], s.queue[bestIdx+1:]...)
	}
	return best
}

// worker is the pool loop: pick, mark conflicts running, execute on a fresh
// session, account, release.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var req *request
		for {
			if req = s.pickLocked(); req != nil {
				break
			}
			if s.closed && len(s.queue) == 0 {
				s.mu.Unlock()
				s.cond.Broadcast()
				return
			}
			s.cond.Wait()
		}
		s.tenantActive[req.tenant] = true
		s.runningCount++
		if req.global {
			s.runningGlob = true
		} else {
			for _, k := range req.keys {
				s.running[k]++
			}
		}
		s.mu.Unlock()

		s.execute(req)

		s.mu.Lock()
		s.tenantActive[req.tenant] = false
		s.tenantLoad[req.tenant]--
		s.runningCount--
		if req.global {
			s.runningGlob = false
		} else {
			for _, k := range req.keys {
				if s.running[k]--; s.running[k] <= 0 {
					delete(s.running, k)
				}
			}
		}
		if req.res != nil {
			s.service[req.tenant] += req.res.VirtualSeconds / s.weight[req.tenant]
			s.vtimeTotal += req.res.VirtualSeconds
		}
		if req.err != nil {
			s.failed++
		}
		s.completed++
		s.mu.Unlock()
		s.cond.Broadcast()
		close(req.done)
	}
}

// execute runs one request through the retry loop: each attempt executes on a
// fresh session with its own attempt-derived fault plan; failed attempts
// (injected worker crash, Spark stage abort, panic) are retried up to
// Config.MaxRetries times with exponential virtual-time backoff. The final
// latency — execution plus accumulated backoff — is checked against the
// deadline. Everything in the loop is a pure function of the ticket, so
// latencies stay interleaving-independent.
func (s *Server) execute(req *request) {
	backoff := 0.0
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := s.runAttempt(req, attempt)
		if err == nil {
			res.Retries = attempt
			res.VirtualSeconds += backoff
			if s.conf.Deadline > 0 && res.VirtualSeconds > s.conf.Deadline {
				s.mu.Lock()
				s.deadlineFails++
				s.mu.Unlock()
				req.res = res
				req.err = fmt.Errorf("serve: request %d (%s): %w (%.3fs > %.3fs)",
					req.ticket, req.tenant, ErrDeadline, res.VirtualSeconds, s.conf.Deadline)
				return
			}
			req.res = res
			return
		}
		lastErr = err
		if attempt >= s.conf.MaxRetries {
			break
		}
		backoff += s.conf.RetryBackoff * float64(int64(1)<<uint(attempt))
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
	}
	req.err = lastErr
}

// runAttempt runs one attempt of a request on a fresh session attached to the
// shared cache. The session is torn down afterwards (Close frees GPU
// pointers, unpersists RDDs and broadcasts), so per-request state never leaks
// across tenants — or across attempts. A panic (e.g. a stage abort escaping
// through a lazy fetch) fails the attempt, not the worker.
func (s *Server) runAttempt(req *request, attempt int) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("serve: request %d (%s): panic: %v", req.ticket, req.tenant, p)
		}
	}()
	// Injected request-level fault: the simulated worker crashes before
	// touching the session. Decided by (ticket, attempt) alone.
	if s.conf.Faults.FireAt(faults.ServeRequest, req.ticket, attempt) {
		s.mu.Lock()
		s.faultCounts[string(faults.ServeRequest)]++
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: request %d (%s): injected worker fault (attempt %d)",
			req.ticket, req.tenant, attempt)
	}
	start := time.Now()
	rc := s.conf.Runtime
	rc.Faults = s.conf.Faults.ForRequest(req.ticket, attempt)
	ctx := runtime.New(rc)
	defer ctx.Close()
	defer func() {
		if counts := ctx.Inj.Counts(); len(counts) > 0 {
			s.mu.Lock()
			for site, n := range counts {
				s.faultCounts[string(site)] += n
			}
			s.mu.Unlock()
		}
	}()
	ctx.AttachShared(s.shared, req.tenant)
	names := make([]string, 0, len(req.opts.Inputs))
	for n := range req.opts.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ctx.BindHost(n, req.opts.Inputs[n])
	}
	if req.opts.Bind != nil {
		req.opts.Bind(ctx)
	}
	if err := ctx.RunProgram(req.prog); err != nil {
		return nil, fmt.Errorf("serve: request %d (%s): %w", req.ticket, req.tenant, err)
	}
	values := make(map[string]*data.Matrix, len(req.opts.Fetch))
	for _, n := range req.opts.Fetch {
		if v := ctx.Var(n); v != nil {
			values[n] = ctx.EnsureHostValue(v)
		}
	}
	var siteCounts map[string]int64
	if counts := ctx.Inj.Counts(); len(counts) > 0 {
		siteCounts = make(map[string]int64, len(counts))
		for site, n := range counts {
			siteCounts[string(site)] = n
		}
	}
	return &Result{
		Tenant:         req.tenant,
		Ticket:         req.ticket,
		VirtualSeconds: ctx.Clock.Now(),
		WallSeconds:    time.Since(start).Seconds(),
		Values:         values,
		Stats:          ctx.Stats,
		Cache:          ctx.Cache.Stats,
		Faults:         siteCounts,
	}, nil
}

// Snapshot is the monitoring surface of the server.
type Snapshot struct {
	QueueDepth int   `json:"queue_depth"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Rejected   int64 `json:"rejected"`
	// Shed counts rejections from ShedThreshold (a subset of Rejected).
	Shed int64 `json:"shed,omitempty"`
	// Retries counts retried attempts; DeadlineFailures counts requests that
	// completed past Config.Deadline. Faults aggregates injected failures by
	// site across all attempts.
	Retries          int64            `json:"retries,omitempty"`
	DeadlineFailures int64            `json:"deadline_failures,omitempty"`
	Faults           map[string]int64 `json:"faults,omitempty"`
	// WallSeconds and Throughput are real-time aggregates; virtual times
	// stay per-session and deterministic.
	WallSeconds             float64     `json:"wall_seconds"`
	Throughput              float64     `json:"throughput_rps"`
	AggregateVirtualSeconds float64     `json:"aggregate_virtual_seconds"`
	Shared                  SharedStats `json:"shared"`
}

// Snapshot returns current queue, throughput, and shared-cache statistics.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		QueueDepth:              len(s.queue),
		Running:                 s.runningCount,
		Submitted:               s.submitted,
		Completed:               s.completed,
		Failed:                  s.failed,
		Rejected:                s.rejected,
		Shed:                    s.shed,
		Retries:                 s.retries,
		DeadlineFailures:        s.deadlineFails,
		WallSeconds:             time.Since(s.start).Seconds(),
		AggregateVirtualSeconds: s.vtimeTotal,
	}
	if len(s.faultCounts) > 0 {
		snap.Faults = make(map[string]int64, len(s.faultCounts))
		for site, n := range s.faultCounts {
			snap.Faults[site] = n
		}
	}
	s.mu.Unlock()
	if snap.WallSeconds > 0 {
		snap.Throughput = float64(snap.Completed) / snap.WallSeconds
	}
	snap.Shared = s.shared.StatsSnapshot()
	return snap
}

// Close stops admitting requests, drains the queue, and waits for all
// workers to finish. The shared cache remains readable for Snapshot.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
