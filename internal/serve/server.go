package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// SchedPolicy selects how queued requests are dispatched to workers.
type SchedPolicy int

const (
	// SchedFIFO dispatches strictly by ticket (submission) order among
	// eligible requests.
	SchedFIFO SchedPolicy = iota
	// SchedWFQ is weighted fair queueing: among eligible requests, the
	// tenant with the least accumulated virtual service per weight runs
	// next (ties break by ticket). Conflicting requests still serialize
	// in ticket order, so determinism is unaffected.
	SchedWFQ
)

// Config assembles the serving layer.
type Config struct {
	// Runtime is the per-request session template: every request executes
	// on a fresh runtime.Context built from it (own virtual clock, own
	// session-local cache), attached to the shared cache.
	Runtime runtime.Config
	// Workers is the worker-pool size (default 4).
	Workers int
	// Sched selects FIFO or weighted-fair dispatch.
	Sched SchedPolicy
	// MaxQueue bounds the number of queued requests; Submit rejects with
	// ErrQueueFull beyond it (default 1024).
	MaxQueue int
	// MaxPerTenant bounds one tenant's queued+running requests; Submit
	// rejects with ErrTenantLimit beyond it (default 64).
	MaxPerTenant int
	// Rewrite applies MEMPHIS's program-level rewrites (auto-tuning,
	// checkpoint and eviction injection) exactly once per program object
	// before its first execution; programs may then be shared by many
	// concurrent requests. Enabled by DefaultConfig.
	Rewrite bool
	// Shared sizes the cross-tenant cache.
	Shared SharedConfig
}

// DefaultConfig mirrors memphis.Options{Reuse: ReuseFull} for each request
// session, with a CPU-only backend set (serving adds no GPU by default).
func DefaultConfig() Config {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = 7 << 20
	comp.Async = true
	comp.MaxParallelize = true
	comp.CheckpointInjection = true
	return Config{
		Runtime: runtime.Config{
			Mode:     runtime.ReuseMemphis,
			Compiler: comp,
			Cache:    core.DefaultConfig(),
			Spark:    spark.DefaultConfig(),
		},
		Workers:      4,
		MaxQueue:     1024,
		MaxPerTenant: 64,
		Rewrite:      true,
	}
}

// Submission errors (admission control).
var (
	ErrClosed      = errors.New("serve: server closed")
	ErrQueueFull   = errors.New("serve: request queue full")
	ErrTenantLimit = errors.New("serve: tenant request limit reached")
)

// SubmitOptions carries a request's inputs and result selection.
type SubmitOptions struct {
	// Inputs are host matrices bound (in sorted name order) into the
	// request's fresh session before execution. Their checksums define the
	// request's conflict keys: requests sharing any (name, content) pair
	// serialize in ticket order. Inputs must not be mutated while the
	// request is in flight.
	Inputs map[string]*data.Matrix
	// Bind, when set, runs after Inputs are bound and may install
	// additional variables. Because its effects are opaque, the request
	// conservatively conflicts with every other request.
	Bind func(*runtime.Context)
	// Fetch lists variables to materialize to the host in the Result.
	Fetch []string
	// Weight is the tenant's fair-share weight under SchedWFQ (default 1).
	Weight float64
}

// Result is one completed request.
type Result struct {
	Tenant string `json:"tenant"`
	Ticket uint64 `json:"ticket"`
	// VirtualSeconds is the request's deterministic simulated latency on
	// its private session clock — independent of worker interleaving.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// WallSeconds is the real execution time (throughput accounting only).
	WallSeconds float64                 `json:"wall_seconds"`
	Values      map[string]*data.Matrix `json:"-"`
	Stats       runtime.Stats           `json:"stats"`
	Cache       core.Stats              `json:"-"`
}

// request is the queue element behind a Future.
type request struct {
	tenant string
	prog   *ir.Program
	opts   SubmitOptions
	ticket uint64
	keys   []uint64
	global bool
	done   chan struct{}
	res    *Result
	err    error
}

// Future resolves to a request's Result.
type Future struct{ req *request }

// Done is closed when the request completes.
func (f *Future) Done() <-chan struct{} { return f.req.done }

// Wait blocks for completion and returns the result or execution error.
func (f *Future) Wait() (*Result, error) {
	<-f.req.done
	return f.req.res, f.req.err
}

// Server owns the shared cache, the request queue, and the worker pool.
type Server struct {
	conf   Config
	shared *SharedCache

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*request
	running      map[uint64]int  // conflict key -> running holders
	runningGlob  bool            // a Bind-carrying request is running
	runningCount int             // requests currently executing
	tenantActive map[string]bool // tenant has a running request
	tenantLoad   map[string]int  // queued+running per tenant (admission)
	service      map[string]float64
	weight       map[string]float64
	rewritten    map[*ir.Program]struct{}
	nextTicket   uint64
	closed       bool

	submitted  int64
	completed  int64
	failed     int64
	rejected   int64
	vtimeTotal float64
	start      time.Time

	wg sync.WaitGroup
}

// New starts the server's workers.
func New(conf Config) *Server {
	if conf.Workers <= 0 {
		conf.Workers = 4
	}
	if conf.MaxQueue <= 0 {
		conf.MaxQueue = 1024
	}
	if conf.MaxPerTenant <= 0 {
		conf.MaxPerTenant = 64
	}
	if conf.Shared.Model == nil {
		conf.Shared.Model = conf.Runtime.Model
	}
	s := &Server{
		conf:         conf,
		shared:       NewSharedCache(conf.Shared),
		running:      make(map[uint64]int),
		tenantActive: make(map[string]bool),
		tenantLoad:   make(map[string]int),
		service:      make(map[string]float64),
		weight:       make(map[string]float64),
		rewritten:    make(map[*ir.Program]struct{}),
		start:        time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(conf.Workers)
	for i := 0; i < conf.Workers; i++ {
		go s.worker()
	}
	return s
}

// Shared exposes the cross-tenant cache (interactive sessions attach to it
// via runtime.Context.AttachShared).
func (s *Server) Shared() *SharedCache { return s.shared }

// conflictKeys hashes each (name, content) input pair. Input-less requests
// get the sentinel key 0 so they serialize among themselves: their cacheable
// sub-programs have no read leaves and are excluded from sharing, but the
// sentinel keeps the contract simple and future-proof.
func conflictKeys(inputs map[string]*data.Matrix) []uint64 {
	if len(inputs) == 0 {
		return []uint64{0}
	}
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	keys := make([]uint64, 0, len(names))
	var buf [8]byte
	for _, n := range names {
		h := fnv.New64a()
		h.Write([]byte(n))
		h.Write([]byte{0})
		sum := inputs[n].Checksum()
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write(buf[:])
		keys = append(keys, h.Sum64())
	}
	return keys
}

// Submit enqueues a program for a tenant and returns its Future. Admission
// control rejects when the queue or the tenant's in-flight allowance is
// exhausted, so a flooding tenant cannot starve the pool.
func (s *Server) Submit(tenant string, prog *ir.Program, opts SubmitOptions) (*Future, error) {
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.queue) >= s.conf.MaxQueue {
		s.rejected++
		return nil, ErrQueueFull
	}
	if s.tenantLoad[tenant] >= s.conf.MaxPerTenant {
		s.rejected++
		return nil, ErrTenantLimit
	}
	// Program rewrites mutate the ir.Program and are not idempotent; apply
	// them exactly once per program object, before any worker can run it.
	if s.conf.Rewrite && s.conf.Runtime.Mode == runtime.ReuseMemphis {
		if _, done := s.rewritten[prog]; !done {
			compiler.AutoTune(prog)
			compiler.InjectLoopCheckpoints(prog)
			compiler.InjectEvictions(prog)
			s.rewritten[prog] = struct{}{}
		}
	}
	w := opts.Weight
	if w <= 0 {
		w = 1
	}
	s.weight[tenant] = w
	s.nextTicket++
	req := &request{
		tenant: tenant,
		prog:   prog,
		opts:   opts,
		ticket: s.nextTicket,
		keys:   conflictKeys(opts.Inputs),
		global: opts.Bind != nil,
		done:   make(chan struct{}),
	}
	s.queue = append(s.queue, req)
	s.tenantLoad[tenant]++
	s.submitted++
	s.cond.Broadcast()
	return &Future{req: req}, nil
}

// pickLocked selects the next runnable request and removes it from the
// queue (caller holds s.mu). A request is eligible when its tenant has no
// earlier work (queued or running) and it conflicts with nothing running or
// queued ahead of it — so conflicting requests always execute in ticket
// order, which is what makes virtual latencies interleaving-independent.
func (s *Server) pickLocked() *request {
	var best *request
	bestIdx := -1
	bestScore := 0.0
	earlier := make(map[uint64]struct{})
	earlierAny := false
	earlierGlobal := false
	seenTenant := make(map[string]bool)
	for i, r := range s.queue {
		eligible := !s.tenantActive[r.tenant] && !seenTenant[r.tenant]
		if eligible {
			if r.global {
				eligible = s.runningCount == 0 && !earlierAny
			} else if s.runningGlob || earlierGlobal {
				eligible = false
			} else {
				for _, k := range r.keys {
					if _, ok := s.running[k]; ok {
						eligible = false
						break
					}
					if _, ok := earlier[k]; ok {
						eligible = false
						break
					}
				}
			}
		}
		if eligible {
			if s.conf.Sched == SchedFIFO {
				best, bestIdx = r, i
				break
			}
			score := s.service[r.tenant]
			if best == nil || score < bestScore {
				best, bestIdx, bestScore = r, i, score
			}
		}
		seenTenant[r.tenant] = true
		earlierAny = true
		if r.global {
			earlierGlobal = true
		} else {
			for _, k := range r.keys {
				earlier[k] = struct{}{}
			}
		}
	}
	if best != nil {
		s.queue = append(s.queue[:bestIdx], s.queue[bestIdx+1:]...)
	}
	return best
}

// worker is the pool loop: pick, mark conflicts running, execute on a fresh
// session, account, release.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var req *request
		for {
			if req = s.pickLocked(); req != nil {
				break
			}
			if s.closed && len(s.queue) == 0 {
				s.mu.Unlock()
				s.cond.Broadcast()
				return
			}
			s.cond.Wait()
		}
		s.tenantActive[req.tenant] = true
		s.runningCount++
		if req.global {
			s.runningGlob = true
		} else {
			for _, k := range req.keys {
				s.running[k]++
			}
		}
		s.mu.Unlock()

		s.execute(req)

		s.mu.Lock()
		s.tenantActive[req.tenant] = false
		s.tenantLoad[req.tenant]--
		s.runningCount--
		if req.global {
			s.runningGlob = false
		} else {
			for _, k := range req.keys {
				if s.running[k]--; s.running[k] <= 0 {
					delete(s.running, k)
				}
			}
		}
		if req.res != nil {
			s.service[req.tenant] += req.res.VirtualSeconds / s.weight[req.tenant]
			s.vtimeTotal += req.res.VirtualSeconds
		}
		if req.err != nil {
			s.failed++
		}
		s.completed++
		s.mu.Unlock()
		s.cond.Broadcast()
		close(req.done)
	}
}

// execute runs one request on a fresh session attached to the shared cache.
// The session is torn down afterwards (Close frees GPU pointers, unpersists
// RDDs and broadcasts), so per-request state never leaks across tenants.
func (s *Server) execute(req *request) {
	defer func() {
		if p := recover(); p != nil {
			req.err = fmt.Errorf("serve: request %d (%s): panic: %v", req.ticket, req.tenant, p)
		}
	}()
	start := time.Now()
	ctx := runtime.New(s.conf.Runtime)
	defer ctx.Close()
	ctx.AttachShared(s.shared, req.tenant)
	names := make([]string, 0, len(req.opts.Inputs))
	for n := range req.opts.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ctx.BindHost(n, req.opts.Inputs[n])
	}
	if req.opts.Bind != nil {
		req.opts.Bind(ctx)
	}
	if err := ctx.RunProgram(req.prog); err != nil {
		req.err = fmt.Errorf("serve: request %d (%s): %w", req.ticket, req.tenant, err)
		return
	}
	values := make(map[string]*data.Matrix, len(req.opts.Fetch))
	for _, n := range req.opts.Fetch {
		if v := ctx.Var(n); v != nil {
			values[n] = ctx.EnsureHostValue(v)
		}
	}
	req.res = &Result{
		Tenant:         req.tenant,
		Ticket:         req.ticket,
		VirtualSeconds: ctx.Clock.Now(),
		WallSeconds:    time.Since(start).Seconds(),
		Values:         values,
		Stats:          ctx.Stats,
		Cache:          ctx.Cache.Stats,
	}
}

// Snapshot is the monitoring surface of the server.
type Snapshot struct {
	QueueDepth int   `json:"queue_depth"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Rejected   int64 `json:"rejected"`
	// WallSeconds and Throughput are real-time aggregates; virtual times
	// stay per-session and deterministic.
	WallSeconds             float64     `json:"wall_seconds"`
	Throughput              float64     `json:"throughput_rps"`
	AggregateVirtualSeconds float64     `json:"aggregate_virtual_seconds"`
	Shared                  SharedStats `json:"shared"`
}

// Snapshot returns current queue, throughput, and shared-cache statistics.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		QueueDepth:              len(s.queue),
		Running:                 s.runningCount,
		Submitted:               s.submitted,
		Completed:               s.completed,
		Failed:                  s.failed,
		Rejected:                s.rejected,
		WallSeconds:             time.Since(s.start).Seconds(),
		AggregateVirtualSeconds: s.vtimeTotal,
	}
	s.mu.Unlock()
	if snap.WallSeconds > 0 {
		snap.Throughput = float64(snap.Completed) / snap.WallSeconds
	}
	snap.Shared = s.shared.StatsSnapshot()
	return snap
}

// Close stops admitting requests, drains the queue, and waits for all
// workers to finish. The shared cache remains readable for Snapshot.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
