package serve

import (
	"sync"
	"sync/atomic"

	"memphis/internal/runtime"
)

// CompileCache is the server-wide sharded compiled-plan cache: hot
// programs are compiled, auto-tuned, and memory-planned once and the
// resulting CompiledBlocks are shared read-only across all tenants'
// sessions. Keys are computed by the runtime per basic block as
// (program fingerprint, block structure, read-variable shapes, compiler
// config, planner config) — see runtime.Context.blockKey — so entries are
// never shared across textually different scripts, different input
// shapes, or different planner budgets.
//
// Compilation charges no virtual time, so the cache is vtime-neutral:
// per-request results and virtual latencies are bitwise-identical with the
// cache on or off (the chaos property tests pin this).
type CompileCache struct {
	shards []compileShard

	// lookups counts LookupCompiled calls and is deterministic for a given
	// request mix (each request performs one lookup per block execution,
	// independent of interleaving). hits and stores depend on timing: two
	// sessions racing on a cold key may both miss and compile, with the
	// first store winning. Deterministic reports therefore derive the hit
	// rate as 1 - entries/lookups rather than from the raw hit counter.
	lookups atomic.Int64
	hits    atomic.Int64
	stores  atomic.Int64
}

type compileShard struct {
	mu sync.RWMutex
	m  map[uint64]*runtime.CompiledBlock
}

// NewCompileCache creates a cache with the given shard count (<=0 means
// the default of 16).
func NewCompileCache(shards int) *CompileCache {
	if shards <= 0 {
		shards = 16
	}
	c := &CompileCache{shards: make([]compileShard, shards)}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*runtime.CompiledBlock)
	}
	return c
}

func (c *CompileCache) shard(key uint64) *compileShard {
	return &c.shards[key%uint64(len(c.shards))]
}

// LookupCompiled implements runtime.CompileCache.
func (c *CompileCache) LookupCompiled(key uint64) (*runtime.CompiledBlock, bool) {
	c.lookups.Add(1)
	sh := c.shard(key)
	sh.mu.RLock()
	cb, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	}
	return cb, ok
}

// StoreCompiled implements runtime.CompileCache: first writer wins, and
// racing writers adopt the resident block so all sessions execute the same
// shared object.
func (c *CompileCache) StoreCompiled(key uint64, cb *runtime.CompiledBlock) *runtime.CompiledBlock {
	sh := c.shard(key)
	sh.mu.Lock()
	if prev, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return prev
	}
	sh.m[key] = cb
	sh.mu.Unlock()
	c.stores.Add(1)
	return cb
}

// CompileCacheStats is a point-in-time counter snapshot. Lookups and
// Entries are deterministic for a fixed request mix; Hits and Stores can
// vary with interleaving (racing cold-key compiles), so deterministic
// consumers compute HitRate = 1 - Entries/Lookups.
type CompileCacheStats struct {
	Lookups int64 `json:"lookups"`
	Hits    int64 `json:"hits"`
	Stores  int64 `json:"stores"`
	Entries int64 `json:"entries"`
	Shards  int   `json:"shards"`
}

// StatsSnapshot returns current counters.
func (c *CompileCache) StatsSnapshot() CompileCacheStats {
	st := CompileCacheStats{
		Lookups: c.lookups.Load(),
		Hits:    c.hits.Load(),
		Stores:  c.stores.Load(),
		Shards:  len(c.shards),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		st.Entries += int64(len(sh.m))
		sh.mu.RUnlock()
	}
	return st
}

// HitRate is the deterministic hit-rate estimate: the fraction of lookups
// that did not require a distinct compilation. Returns 0 with no lookups.
func (st CompileCacheStats) HitRate() float64 {
	if st.Lookups == 0 {
		return 0
	}
	return 1 - float64(st.Entries)/float64(st.Lookups)
}
