// Package serve is MEMPHIS's multi-tenant serving layer: a request queue
// and worker pool executing programs from many tenants against one shared,
// concurrency-safe lineage cache, so identical sub-programs submitted by
// different tenants reuse each other's results (the paper's holistic-reuse
// claim, §3.3/§6, applied across sessions instead of within one).
//
// Soundness. Session-level lineage keys input reads by variable NAME only,
// which two tenants may bind to different data. The shared level therefore
// keys every entry by (lineage item, content signature), where the
// signature folds the checksums of all read-leaf inputs the item depends on
// (runtime.Context.shareSig). Identical names with different data produce
// different keys and never alias.
//
// Determinism. Each request runs on a fresh session with its own virtual
// clock; all shared-cache costs are charged from the analytic model, so a
// request's virtual latency depends only on which probes hit. Requests
// whose input sets overlap (same name AND checksum) are serialized in
// ticket order by the scheduler; requests that do not overlap can never
// observe each other's entries (their signatures differ). Hence per-tenant
// virtual times equal a serial replay in ticket order, regardless of worker
// count — provided per-tenant budgets do not overcommit the global budget
// (otherwise cross-tenant eviction couples latencies, and only throughput
// remains comparable).
package serve

import (
	"strconv"
	"sync"
	"sync/atomic"

	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/lineage"
	"memphis/internal/memctl"
	"memphis/internal/vtime"
)

// SharedConfig sizes the cross-tenant cache.
type SharedConfig struct {
	// Shards is the lock-shard count (default 8). Keys spread by lineage
	// hash; one mutex per shard keeps REUSE/PUT/MAKE_SPACE race-free
	// without a global lock.
	Shards int
	// Budget is the global byte budget across all tenants (default 64 MB).
	Budget int64
	// TenantBudget caps each tenant's resident bytes (default Budget/8).
	// Keeping the sum of tenant budgets within Budget preserves the
	// per-tenant determinism guarantee; overcommitting trades it for
	// capacity.
	TenantBudget int64
	// Model overrides the cost model (nil uses costs.Default).
	Model *costs.Model
}

func (c *SharedConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Budget <= 0 {
		c.Budget = 64 << 20
	}
	if c.TenantBudget <= 0 {
		c.TenantBudget = c.Budget / 8
	}
	if c.Model == nil {
		c.Model = costs.Default()
	}
}

// tenantAccount tracks one tenant's shared-cache footprint and activity.
// All fields are atomics: stats are read concurrently by Snapshot while
// workers publish.
type tenantAccount struct {
	usage     atomic.Int64
	tick      atomic.Uint64 // per-tenant publish sequence (eviction order)
	probes    atomic.Int64
	hits      atomic.Int64
	crossHits atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
}

// entryMeta is the serving layer's per-entry bookkeeping alongside the
// wrapped core.Cache entry.
type entryMeta struct {
	tenant      string
	acct        *tenantAccount
	key         *lineage.Item
	size        int64
	tick        uint64 // per-tenant publish order
	gseq        uint64 // global publish order (overcommit eviction only)
	computeCost float64
}

// shard is one lock-guarded slice of the shared cache: a private core.Cache
// (on its own virtual clock, never a session's) plus serving metadata.
type shard struct {
	front *SharedCache
	mu    sync.Mutex
	cache *core.Cache
	meta  map[*core.Entry]*entryMeta
	// disabled marks the shard degraded (simulated partial cache outage):
	// probes miss and publishes are rejected, with charges identical to
	// genuine misses/rejections so virtual times stay deterministic.
	// Sessions recompute instead of failing.
	disabled bool
}

// SharedCache is the sharded, concurrency-safe front over core.Cache that
// implements runtime.SharedCache. It owns no session state: probes return
// private matrix copies and virtual costs for the caller to charge.
type SharedCache struct {
	conf   SharedConfig
	shards []*shard
	// arb is the serving layer's own memory arbiter: one global pool plus
	// one pool per tenant, all budget enforcement in Publish routed through
	// Arbiter.MakeSpace so pressure and eviction counters are uniform with
	// the session-side pools. Tenant pools partition the global pool's
	// bytes, so arbiter totals intentionally double-count here; only the
	// per-pool rows are meaningful.
	arb *memctl.Arbiter

	accMu    sync.RWMutex
	accounts map[string]*tenantAccount

	bytesStored atomic.Int64
	gseq        atomic.Uint64

	probes         atomic.Int64
	hits           atomic.Int64
	crossHits      atomic.Int64
	misses         atomic.Int64
	puts           atomic.Int64
	evictions      atomic.Int64
	degradedProbes atomic.Int64

	// reuse tallies probe outcomes per (op, backend, shape-class) — the
	// closed-loop cost model's shared-level reuse population. The shared
	// cache is CP-resident, so the backend coordinate is always CP; hits
	// record the served matrix's shape class, misses record class -1 (the
	// object's shape is unknown until someone computes it). Per-op
	// probabilities therefore come from ReuseStats.OpProb, which aggregates
	// across classes.
	reuse *lineage.ReuseStats
}

// NewSharedCache builds the shared level.
func NewSharedCache(conf SharedConfig) *SharedCache {
	conf.fill()
	s := &SharedCache{
		conf:     conf,
		arb:      memctl.NewArbiter(),
		accounts: make(map[string]*tenantAccount),
		reuse:    lineage.NewReuseStats(),
	}
	s.arb.Register(globalPool{s})
	s.shards = make([]*shard, conf.Shards)
	for i := range s.shards {
		sh := &shard{front: s, meta: make(map[*core.Entry]*entryMeta)}
		// The inner cache never evicts on its own (budgets are enforced
		// here, per tenant, before PutCP) and never spills: its clock is
		// private, so any time it charged would be lost.
		sh.cache = core.NewCache(vtime.New(), conf.Model, core.Config{
			CPBudget:    1 << 62,
			SparkBudget: 1,
			GPUReuse:    false,
			SpillToDisk: false,
		}, nil, nil)
		sh.cache.SetOnDrop(sh.onDrop)
		s.shards[i] = sh
	}
	return s
}

// Config returns the active configuration.
func (s *SharedCache) Config() SharedConfig { return s.conf }

// SetShardEnabled enables or disables one shard (degraded mode). Disabling
// does not drop the shard's entries — they come back when re-enabled.
// Out-of-range indices are ignored.
func (s *SharedCache) SetShardEnabled(idx int, on bool) {
	if idx < 0 || idx >= len(s.shards) {
		return
	}
	sh := s.shards[idx]
	sh.mu.Lock()
	sh.disabled = !on
	sh.mu.Unlock()
}

// DisabledShards returns how many shards are currently degraded.
func (s *SharedCache) DisabledShards() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.disabled {
			n++
		}
		sh.mu.Unlock()
	}
	return n
}

// shareKey derives the shared-level key: the session item wrapped with the
// content signature, so equal sub-programs over equal data collide and
// everything else does not. Lineage hashes are content-based, so keys agree
// across sessions.
func shareKey(item *lineage.Item, sig uint64) *lineage.Item {
	return lineage.NewItem("xshare", strconv.FormatUint(sig, 16), item)
}

func (s *SharedCache) shardFor(key *lineage.Item) *shard {
	return s.shards[key.Hash()%uint64(len(s.shards))]
}

// account returns (creating on first use) the tenant's account.
func (s *SharedCache) account(tenant string) *tenantAccount {
	s.accMu.RLock()
	a := s.accounts[tenant]
	s.accMu.RUnlock()
	if a != nil {
		return a
	}
	s.accMu.Lock()
	if a = s.accounts[tenant]; a == nil {
		a = &tenantAccount{}
		s.accounts[tenant] = a
	}
	s.accMu.Unlock()
	// Registration is idempotent (replace-by-name keeps counters), so the
	// race between two first-touches of a tenant is harmless.
	s.arb.Register(tenantPool{s: s, acct: a, tenant: tenant})
	return a
}

// onDrop maintains usage accounting when an entry leaves a shard's cache;
// it runs with the shard lock held (all removals happen under it).
func (sh *shard) onDrop(e *core.Entry) {
	md, ok := sh.meta[e]
	if !ok {
		return
	}
	delete(sh.meta, e)
	sh.front.bytesStored.Add(-md.size)
	md.acct.usage.Add(-md.size)
	sh.front.evictions.Add(1)
	md.acct.evictions.Add(1)
	// The entry left the shared level entirely (no lower tier), so both the
	// tenant pool and the global pool record an eviction.
	sh.front.arb.NoteEviction(TenantPoolName(md.tenant), 1, md.size)
	sh.front.arb.NoteEviction(GlobalPoolName, 1, md.size)
}

// Probe implements runtime.SharedCache: REUSE under the shard lock. A hit
// returns a private clone (sessions must never share matrix storage) and
// charges the probe plus a host-memory copy of the object.
func (s *SharedCache) Probe(tenant string, item *lineage.Item, sig uint64) (*data.Matrix, float64, float64, bool) {
	acct := s.account(tenant)
	s.probes.Add(1)
	acct.probes.Add(1)
	key := shareKey(item, sig)
	sh := s.shardFor(key)
	sh.mu.Lock()
	if sh.disabled {
		sh.mu.Unlock()
		s.misses.Add(1)
		s.degradedProbes.Add(1)
		s.reuse.Note(item.Opcode(), int(core.BackendCP), -1, false)
		return nil, 0, s.conf.Model.Probe, false
	}
	e, hit := sh.cache.Probe(key)
	if !hit {
		sh.mu.Unlock()
		s.misses.Add(1)
		s.reuse.Note(item.Opcode(), int(core.BackendCP), -1, false)
		return nil, 0, s.conf.Model.Probe, false
	}
	m := sh.cache.Matrix(e).Clone()
	md := sh.meta[e]
	producer := ""
	computeCost := 0.0
	if md != nil {
		producer = md.tenant
		computeCost = md.computeCost
	}
	sh.mu.Unlock()
	s.hits.Add(1)
	acct.hits.Add(1)
	s.reuse.Note(item.Opcode(), int(core.BackendCP),
		costs.ShapeClass(int64(m.Rows)*int64(m.Cols)), true)
	if producer != tenant {
		s.crossHits.Add(1)
		acct.crossHits.Add(1)
	}
	charge := s.conf.Model.Probe + costs.Transfer(m.SizeBytes(), s.conf.Model.MemBW, 0)
	return m, computeCost, charge, true
}

// Publish implements runtime.SharedCache: PUT with per-tenant budget
// enforcement (MAKE_SPACE evicts the publisher's own oldest entries first,
// keeping non-overlapping tenants decoupled) and a global-budget backstop.
func (s *SharedCache) Publish(tenant string, item *lineage.Item, sig uint64, m *data.Matrix, computeCost float64) (float64, bool) {
	charge := s.conf.Model.CachePut
	size := m.SizeBytes()
	if size > s.conf.TenantBudget || size > s.conf.Budget {
		return charge, false
	}
	// A degraded shard rejects the publish outright (same charge as any
	// rejected put) before any budget eviction can disturb other entries.
	sh0 := s.shardFor(shareKey(item, sig))
	sh0.mu.Lock()
	degraded := sh0.disabled
	sh0.mu.Unlock()
	if degraded {
		return charge, false
	}
	// Both budget checks are arbiter-driven MAKE_SPACE calls against the
	// corresponding pool; the pools' Evict mechanisms are the same oldest-
	// first searches as before, so the victim sequence — and therefore every
	// virtual latency — is unchanged. The outer loops re-check usage because
	// concurrent publishers may race on the coupled global path.
	acct := s.account(tenant)
	for {
		over := acct.usage.Load() + size - s.conf.TenantBudget
		if over <= 0 {
			break
		}
		if s.arb.MakeSpace(TenantPoolName(tenant), over) == 0 {
			return charge, false
		}
	}
	for {
		over := s.bytesStored.Load() + size - s.conf.Budget
		if over <= 0 {
			break
		}
		if s.arb.MakeSpace(GlobalPoolName, over) == 0 {
			return charge, false
		}
	}
	key := shareKey(item, sig)
	sh := s.shardFor(key)
	stored := m.Clone()
	sh.mu.Lock()
	if sh.cache.Lookup(key) != nil {
		sh.mu.Unlock()
		return charge, false
	}
	e := sh.cache.PutCP(key, stored, computeCost, 1, false, false)
	if e == nil {
		sh.mu.Unlock()
		return charge, false
	}
	sh.meta[e] = &entryMeta{
		tenant:      tenant,
		acct:        acct,
		key:         key,
		size:        size,
		tick:        acct.tick.Add(1),
		gseq:        s.gseq.Add(1),
		computeCost: computeCost,
	}
	sh.mu.Unlock()
	s.bytesStored.Add(size)
	acct.usage.Add(size)
	s.puts.Add(1)
	acct.puts.Add(1)
	return charge, true
}

// evictTenantOldest drops the tenant's oldest entry (lowest publish tick)
// and returns its size, or 0 when the tenant has no entries. Victim search
// never holds two shard locks: candidates are collected one shard at a
// time, then the winner is re-checked under its own lock.
func (s *SharedCache) evictTenantOldest(acct *tenantAccount) int64 {
	for {
		var bestShard *shard
		var bestKey *lineage.Item
		var bestTick uint64
		var bestSize int64
		found := false
		for _, sh := range s.shards {
			sh.mu.Lock()
			for _, md := range sh.meta {
				if md.acct == acct && (!found || md.tick < bestTick) {
					found, bestTick = true, md.tick
					bestShard, bestKey, bestSize = sh, md.key, md.size
				}
			}
			sh.mu.Unlock()
		}
		if !found {
			return 0
		}
		bestShard.mu.Lock()
		dropped := bestShard.cache.DropItem(bestKey)
		bestShard.mu.Unlock()
		if dropped {
			return bestSize
		}
		// The candidate vanished between passes; rescan.
	}
}

// evictGlobalOldest drops the globally oldest entry (lowest global publish
// sequence) and returns its size, or 0 when the cache is empty. Only
// reached when tenant budgets overcommit the global budget; this path is
// concurrency-safe but couples tenants, so virtual latencies are no longer
// interleaving-independent.
func (s *SharedCache) evictGlobalOldest() int64 {
	for {
		var bestShard *shard
		var bestKey *lineage.Item
		var bestSeq uint64
		var bestSize int64
		found := false
		for _, sh := range s.shards {
			sh.mu.Lock()
			for _, md := range sh.meta {
				if !found || md.gseq < bestSeq {
					found, bestSeq = true, md.gseq
					bestShard, bestKey, bestSize = sh, md.key, md.size
				}
			}
			sh.mu.Unlock()
		}
		if !found {
			return 0
		}
		bestShard.mu.Lock()
		dropped := bestShard.cache.DropItem(bestKey)
		bestShard.mu.Unlock()
		if dropped {
			return bestSize
		}
	}
}

// BytesStored returns the resident shared-cache bytes.
func (s *SharedCache) BytesStored() int64 { return s.bytesStored.Load() }

// Arbiter exposes the serving layer's memory arbiter (global pool plus one
// pool per tenant) for monitoring and tests.
func (s *SharedCache) Arbiter() *memctl.Arbiter { return s.arb }

// Clear drops every entry and resets usage (stats counters are kept).
func (s *SharedCache) Clear() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.cache.SetOnDrop(nil)
		sh.cache.Clear()
		sh.cache.SetOnDrop(sh.onDrop)
		sh.meta = make(map[*core.Entry]*entryMeta)
		sh.mu.Unlock()
	}
	s.accMu.RLock()
	for _, a := range s.accounts {
		a.usage.Store(0)
	}
	s.accMu.RUnlock()
	s.bytesStored.Store(0)
}

// TenantStats is one tenant's view of the shared cache.
type TenantStats struct {
	Probes    int64 `json:"probes"`
	Hits      int64 `json:"hits"`
	CrossHits int64 `json:"cross_hits"` // hits on entries published by another tenant
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
}

// SharedStats is the aggregate shared-cache surface of serve.Snapshot.
type SharedStats struct {
	Probes              int64                  `json:"probes"`
	Hits                int64                  `json:"hits"`
	CrossTenantHits     int64                  `json:"cross_tenant_hits"`
	Misses              int64                  `json:"misses"`
	Puts                int64                  `json:"puts"`
	Evictions           int64                  `json:"evictions"`
	BytesStored         int64                  `json:"bytes_stored"`
	Entries             int                    `json:"entries"`
	CrossTenantHitRatio float64                `json:"cross_tenant_hit_ratio"` // cross-tenant hits per probe
	DegradedProbes      int64                  `json:"degraded_probes"`        // probes answered "miss" by a disabled shard
	DisabledShards      int                    `json:"disabled_shards"`
	PerTenant           map[string]TenantStats `json:"per_tenant"`
	// Pools is the arbiter's per-pool pressure/eviction surface: the global
	// pool first (registration order), then one row per tenant.
	Pools []memctl.PoolStats `json:"pools,omitempty"`
	// Reuse is the per-(op, backend, shape-class) probe/hit tally table
	// (sorted, deterministic given a probe sequence); OpHitRates condenses it
	// to per-operator reuse probabilities for the closed-loop cost model.
	Reuse      []lineage.ReuseRow `json:"reuse,omitempty"`
	OpHitRates map[string]float64 `json:"op_hit_rates,omitempty"`
}

// StatsSnapshot returns a consistent-enough view of the shared cache for
// monitoring (counters are atomics; entry counts take each shard lock).
func (s *SharedCache) StatsSnapshot() SharedStats {
	st := SharedStats{
		Probes:          s.probes.Load(),
		Hits:            s.hits.Load(),
		CrossTenantHits: s.crossHits.Load(),
		Misses:          s.misses.Load(),
		Puts:            s.puts.Load(),
		Evictions:       s.evictions.Load(),
		BytesStored:     s.bytesStored.Load(),
		PerTenant:       make(map[string]TenantStats),
	}
	st.DegradedProbes = s.degradedProbes.Load()
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Entries += sh.cache.NumEntries()
		if sh.disabled {
			st.DisabledShards++
		}
		sh.mu.Unlock()
	}
	if st.Probes > 0 {
		st.CrossTenantHitRatio = float64(st.CrossTenantHits) / float64(st.Probes)
	}
	s.accMu.RLock()
	for name, a := range s.accounts {
		st.PerTenant[name] = TenantStats{
			Probes:    a.probes.Load(),
			Hits:      a.hits.Load(),
			CrossHits: a.crossHits.Load(),
			Puts:      a.puts.Load(),
			Evictions: a.evictions.Load(),
			Bytes:     a.usage.Load(),
		}
	}
	s.accMu.RUnlock()
	st.Pools = s.arb.Snapshot()
	st.Reuse = s.reuse.Snapshot()
	if len(st.Reuse) > 0 {
		st.OpHitRates = make(map[string]float64, len(st.Reuse))
		for _, r := range st.Reuse {
			st.OpHitRates[r.Op] = s.reuse.OpProb(r.Op)
		}
	}
	return st
}

// ReuseStats exposes the shared cache's probe/hit recorder (per op,
// backend, shape-class) so servers and tests can query reuse probabilities
// directly.
func (s *SharedCache) ReuseStats() *lineage.ReuseStats { return s.reuse }
