package serve

import (
	"testing"

	"memphis/internal/dml"
	"memphis/internal/ir"
)

// TestProgramKeySeparation is the table-driven program-key test: the
// serving layer keys source-backed programs on their raw text, so scripts
// differing in whitespace or literals — which may compile to identical
// instruction streams — must never share compile-cache entries. Structural
// keys (programmatic programs) must separate on any DAG difference and
// collide for equal structures.
func TestProgramKeySeparation(t *testing.T) {
	parse := func(src string) *ir.Program {
		p, err := dml.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return p
	}
	base := "z = 1 + 2\n"
	cases := []struct {
		name string
		src  string
		same bool // whether the key must equal base's
	}{
		{"identical text", "z = 1 + 2\n", true},
		{"whitespace only", "z = 1 + 2 \n", false},
		{"extra blank line", "z = 1 + 2\n\n", false},
		{"different literal", "z = 1 + 3\n", false},
		{"different variable", "w = 1 + 2\n", false},
	}
	ref := parse(base).Fingerprint()
	for _, tc := range cases {
		got := parse(tc.src).Fingerprint()
		if tc.same && got != ref {
			t.Errorf("%s: fingerprint %016x != base %016x, want equal", tc.name, got, ref)
		}
		if !tc.same && got == ref {
			t.Errorf("%s: fingerprint collides with base", tc.name)
		}
	}

	// Programmatic (source-less) programs key structurally: equal
	// structures collide, literal and attribute differences separate.
	mk := func(lit float64) *ir.Program {
		p := ir.NewProgram()
		p.Main = []ir.Block{ir.BB(ir.Assign("z", ir.Add(ir.Lit(lit), ir.Var("x"))))}
		return p
	}
	if mk(1).Fingerprint() != mk(1).Fingerprint() {
		t.Error("equal structures must share a fingerprint")
	}
	if mk(1).Fingerprint() == mk(2).Fingerprint() {
		t.Error("literal difference must change the structural fingerprint")
	}

	// The server memoizes per program object and keys equal sources
	// equally across distinct objects.
	srv := New(DefaultConfig())
	defer srv.Close()
	srv.mu.Lock()
	k1 := srv.progKeyLocked(parse(base))
	k2 := srv.progKeyLocked(parse(base))
	k3 := srv.progKeyLocked(parse("z = 9\n"))
	srv.mu.Unlock()
	if k1 != k2 {
		t.Error("equal sources must yield equal program keys across objects")
	}
	if k1 == k3 {
		t.Error("different sources must yield different program keys")
	}
}
