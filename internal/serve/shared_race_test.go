package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotDuringTenantRegistration is the -race regression test for the
// shared-cache stats read path: Snapshot (which walks the memory arbiter's
// pool list) runs concurrently with first-touch tenant-pool registration
// and publish-driven eviction pressure. Before the arbiter copied its pool
// slice under the read lock, Register's in-place replacement of a
// same-name pool raced the totals walk and tripped the race detector here.
func TestSnapshotDuringTenantRegistration(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 4
	// A tight shared budget keeps eviction (MakeSpace -> GlobalHeadroom ->
	// totals) active on the publish path while new tenants register.
	conf.Shared.Budget = 64 << 10
	conf.Shared.TenantBudget = 16 << 10
	srv := New(conf)
	defer srv.Close()

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 2; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Snapshot()
				_ = len(snap.Shared.Pools)
				_ = srv.Shared().StatsSnapshot()
			}
		}()
	}

	// Every tenant is new: each first publish registers a fresh pool with
	// the arbiter while the pollers walk it.
	w := hcvWorkload()
	const tenants = 12
	futs := make([]*Future, tenants)
	for i := range futs {
		f, err := srv.Submit(fmt.Sprintf("tenant-%d", i), w.Prog,
			SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	close(stop)
	pollers.Wait()
}
