package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/ir"
)

// This file is the deterministic SLO traffic bench: a seeded, Zipf-skewed,
// bursty multi-tenant request stream served at two scales. A *real* phase
// drives a few hundred requests through an actual Server (coalescing and
// the compile cache on) and measures per-class steady-state virtual service
// times; a *virtual* phase then replays 10^5+ arrivals through a
// discrete-event admission simulation parameterized by those measurements.
// Every number in the TrafficReport is a pure function of the seed and the
// configuration — virtual clocks, ticket-space coalescing, and the
// simulation share no wall-clock or scheduler state — so a fixed seed
// yields a byte-identical JSON report on every run, every worker count,
// and under the race detector.

// TrafficClass is one distinct (program, inputs, fetch set) a tenant may
// submit. Requests of the same class resolve to the same compiled plan and
// the same coalesce group key; tenants map onto classes round-robin
// (tenant t submits class t mod len(Classes)).
type TrafficClass struct {
	Name   string
	Prog   *ir.Program
	Inputs map[string]*data.Matrix
	Fetch  []string
}

// TrafficConfig parameterizes the bench. Zero values select the defaults
// noted on each field.
type TrafficConfig struct {
	// Seed drives every random choice (tenant popularity draws, burst
	// modulation, arrival gaps) through a splitmix64 stream.
	Seed int64
	// Workload is a label recorded in the report (default "custom").
	Workload string
	// Classes are the distinct request classes (required).
	Classes []TrafficClass
	// Tenants is the tenant-population size (default 32). Tenant
	// popularity is Zipf(ZipfSkew)-distributed (default skew 1.1).
	Tenants  int
	ZipfSkew float64

	// RealRequests is the size of the measured phase: requests actually
	// executed by a Server to obtain per-class virtual service times and
	// real cache statistics (default 192; a warmup request per class runs
	// first and is not counted).
	RealRequests int
	// VirtualRequests is the size of the simulated phase (default 120000).
	VirtualRequests int
	// Servers is the simulated worker count W (default 8).
	Servers int
	// Load is the offered load: mean arrival rate in calm state is
	// Load * Servers / meanService (default 1.25 — deliberate overload so
	// shedding is exercised).
	Load float64
	// BurstFactor speeds arrivals up while the burst state is active
	// (default 12); BurstOn/BurstOff are the per-arrival probabilities of
	// entering/leaving the burst state (defaults 0.02 and 0.10).
	BurstFactor float64
	BurstOn     float64
	BurstOff    float64
	// SLOFactor sets the latency objective: SLO = SLOFactor * the largest
	// per-class service time (default 4 — just above the worst sojourn a
	// full admission queue allows, so admitted requests generally meet
	// the SLO and shedding is what costs goodput).
	SLOFactor float64
	// ShedDepth sheds a simulated arrival when that many admitted leaders
	// are waiting to start (default 2*Servers).
	ShedDepth int
	// CoalesceWindow and MaxBatch mirror the server's batched-admission
	// knobs inside the simulation, in arrival-sequence space (defaults
	// 256 and 64).
	CoalesceWindow int
	MaxBatch       int
}

// TrafficReport is the bench output. It deliberately contains only
// deterministic quantities: virtual times, ticket-space counts, and the
// compile cache's lookup/entry counters (its raw hit/store counters can
// drift by benign double-compiles under races and are excluded).
type TrafficReport struct {
	Seed     int64   `json:"seed"`
	Workload string  `json:"workload"`
	Tenants  int     `json:"tenants"`
	Classes  int     `json:"classes"`
	ZipfSkew float64 `json:"zipf_skew"`

	// Real (measured) phase.
	RealRequests        int     `json:"real_requests"`
	RealCoalesced       int64   `json:"real_coalesced"`
	RealFailed          int64   `json:"real_failed"`
	CompileCacheLookups int64   `json:"compile_cache_lookups"`
	CompileCacheEntries int64   `json:"compile_cache_entries"`
	CompileCacheHitRate float64 `json:"compile_cache_hit_rate"`
	SharedHitRatio      float64 `json:"shared_hit_ratio"`
	CrossTenantHits     int64   `json:"cross_tenant_hits"`
	// ClassService is each class's steady-state virtual execution time
	// (the last non-coalesced request's latency); ClassCopy is the
	// fan-out copy charge a coalesced follower of that class pays.
	ClassService []float64 `json:"class_service_seconds"`
	ClassCopy    []float64 `json:"class_copy_seconds"`

	// Virtual (simulated) phase.
	VirtualRequests  int     `json:"virtual_requests"`
	VirtualServers   int     `json:"virtual_servers"`
	OfferedLoad      float64 `json:"offered_load"`
	SLOSeconds       float64 `json:"slo_seconds"`
	Admitted         int64   `json:"admitted"`
	Shed             int64   `json:"shed"`
	VirtualCoalesced int64   `json:"virtual_coalesced"`
	P50              float64 `json:"p50_virtual_seconds"`
	P99              float64 `json:"p99_virtual_seconds"`
	Goodput          float64 `json:"goodput"`
	VirtualMakespan  float64 `json:"virtual_makespan_seconds"`
}

// trafficRNG is a splitmix64 stream — the same generator the fault layer
// uses, so the bench inherits its replay properties: the n-th draw depends
// only on (seed, stream, n).
type trafficRNG struct{ state uint64 }

func newTrafficRNG(seed int64, stream uint64) *trafficRNG {
	return &trafficRNG{state: splitmix(uint64(seed)) ^ splitmix(stream*0x9e3779b97f4a7c15+1)}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *trafficRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *trafficRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// zipfSampler draws tenant indices from a Zipf(skew) popularity
// distribution via a precomputed CDF and binary search.
type zipfSampler struct {
	cdf     []float64
	weights []float64 // normalized popularity, for load calculations
}

func newZipfSampler(n int, skew float64) *zipfSampler {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -skew)
		sum += w[i]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := range w {
		w[i] /= sum
		acc += w[i]
		cdf[i] = acc
	}
	cdf[n-1] = 1 // guard against float drift at the tail
	return &zipfSampler{cdf: cdf, weights: w}
}

func (z *zipfSampler) draw(u float64) int { return sort.SearchFloat64s(z.cdf, u) }

// RunTraffic executes the traffic bench. The supplied server Config is used
// as the template for the real phase with every nondeterministic admission
// knob forced off (no fault plan, no deadline, no shed threshold) and
// coalescing plus the compile cache forced on; admission limits are raised
// so the measured phase never rejects (rejections would depend on drain
// timing). The caller's scheduler, worker count, budgets, and runtime
// template are honored.
func RunTraffic(conf Config, tc TrafficConfig) (*TrafficReport, error) {
	if len(tc.Classes) == 0 {
		return nil, errors.New("serve: traffic bench needs at least one class")
	}
	if tc.Workload == "" {
		tc.Workload = "custom"
	}
	if tc.Tenants <= 0 {
		tc.Tenants = 32
	}
	if tc.ZipfSkew <= 0 {
		tc.ZipfSkew = 1.1
	}
	if tc.RealRequests <= 0 {
		tc.RealRequests = 192
	}
	if tc.VirtualRequests <= 0 {
		tc.VirtualRequests = 120000
	}
	if tc.Servers <= 0 {
		tc.Servers = 8
	}
	if tc.Load <= 0 {
		tc.Load = 1.25
	}
	if tc.BurstFactor <= 0 {
		tc.BurstFactor = 12
	}
	if tc.BurstOn <= 0 {
		tc.BurstOn = 0.02
	}
	if tc.BurstOff <= 0 {
		tc.BurstOff = 0.10
	}
	if tc.SLOFactor <= 0 {
		tc.SLOFactor = 4
	}
	if tc.ShedDepth <= 0 {
		tc.ShedDepth = 2 * tc.Servers
	}
	if tc.CoalesceWindow <= 0 {
		tc.CoalesceWindow = 256
	}
	if tc.MaxBatch <= 0 {
		tc.MaxBatch = 64
	}

	service, copyCost, snap, failed, err := trafficMeasure(conf, tc)
	if err != nil {
		return nil, err
	}

	rep := &TrafficReport{
		Seed:            tc.Seed,
		Workload:        tc.Workload,
		Tenants:         tc.Tenants,
		Classes:         len(tc.Classes),
		ZipfSkew:        tc.ZipfSkew,
		RealRequests:    tc.RealRequests,
		RealCoalesced:   snap.Coalesced,
		RealFailed:      failed,
		CrossTenantHits: snap.Shared.CrossTenantHits,
		ClassService:    service,
		ClassCopy:       copyCost,
		VirtualRequests: tc.VirtualRequests,
		VirtualServers:  tc.Servers,
		OfferedLoad:     tc.Load,
	}
	if snap.Shared.Probes > 0 {
		rep.SharedHitRatio = float64(snap.Shared.Hits) / float64(snap.Shared.Probes)
	}
	if snap.CompileCache != nil {
		rep.CompileCacheLookups = snap.CompileCache.Lookups
		rep.CompileCacheEntries = snap.CompileCache.Entries
		rep.CompileCacheHitRate = snap.CompileCache.HitRate()
	}
	trafficSimulate(tc, service, copyCost, rep)
	return rep, nil
}

// trafficMeasure is the real phase: one warmup request per class (populates
// the compile and shared caches, and guarantees every class has a leader
// measurement), then RealRequests Zipf-drawn requests submitted in a single
// ticket order with a sliding in-flight window. It returns the last
// non-coalesced latency per class, the per-class follower copy charge, and
// the server's final snapshot.
func trafficMeasure(conf Config, tc TrafficConfig) (service, copyCost []float64, snap Snapshot, failed int64, err error) {
	conf.Coalesce = true
	conf.CompileCache = true
	conf.Faults = nil
	conf.Deadline = 0
	conf.ShedThreshold = 0
	total := tc.RealRequests + len(tc.Classes)
	if conf.MaxQueue < total+1 {
		conf.MaxQueue = total + 1
	}
	conf.MaxPerTenant = total + 1
	srv := New(conf)
	defer srv.Close()

	tenantName := func(t int) string { return fmt.Sprintf("t%03d", t) }
	classOf := func(t int) int { return t % len(tc.Classes) }
	submit := func(t int) (*Future, error) {
		c := tc.Classes[classOf(t)]
		return srv.Submit(tenantName(t), c.Prog, SubmitOptions{
			Inputs: c.Inputs,
			Fetch:  c.Fetch,
		})
	}

	service = make([]float64, len(tc.Classes))
	copyCost = make([]float64, len(tc.Classes))
	record := func(class int, res *Result) {
		if res == nil || res.Coalesced {
			return
		}
		service[class] = res.VirtualSeconds
		cc := 0.0
		for _, m := range res.Values {
			cc += costs.Transfer(m.SizeBytes(), srv.model.MemBW, srv.model.CopyLatency)
		}
		copyCost[class] = cc
	}

	// Warmup: one request per class, waited sequentially so every class
	// compiles and publishes before the measured stream starts.
	for g := range tc.Classes {
		fut, serr := submit(g % tc.Tenants)
		if serr != nil {
			return nil, nil, snap, 0, fmt.Errorf("serve: traffic warmup class %d: %w", g, serr)
		}
		res, werr := fut.Wait()
		if werr != nil {
			return nil, nil, snap, 0, fmt.Errorf("serve: traffic warmup class %d: %w", g, werr)
		}
		record(g, res)
	}

	// Measured stream. The sliding window (64 in flight) bounds queue and
	// tenant load far below the raised admission limits, so every Submit
	// is admitted regardless of drain timing.
	rng := newTrafficRNG(tc.Seed, 0x6d656173) // "meas" stream
	zipf := newZipfSampler(tc.Tenants, tc.ZipfSkew)
	const window = 64
	futs := make([]*Future, tc.RealRequests)
	classes := make([]int, tc.RealRequests)
	wait := func(i int) {
		res, werr := futs[i].Wait()
		if werr != nil {
			failed++
			return
		}
		record(classes[i], res)
	}
	for i := 0; i < tc.RealRequests; i++ {
		t := zipf.draw(rng.float64())
		classes[i] = classOf(t)
		fut, serr := submit(t)
		if serr != nil {
			return nil, nil, snap, 0, fmt.Errorf("serve: traffic request %d: %w", i, serr)
		}
		futs[i] = fut
		if i >= window {
			wait(i - window)
		}
	}
	for i := tc.RealRequests - window; i < tc.RealRequests; i++ {
		if i < 0 {
			continue
		}
		wait(i)
	}
	snap = srv.Snapshot()
	return service, copyCost, snap, failed, nil
}

// trafficSimulate is the virtual phase: a discrete-event admission
// simulation of tc.VirtualRequests arrivals over tc.Servers virtual
// workers, with coalescing, queue-depth shedding, and an SLO check. It is
// a pure function of the seed and the measured per-class times.
//
// The model: arrivals i=0..N-1 occur at nondecreasing virtual times with
// exponential gaps whose mean is modulated by a two-state (calm/burst)
// Markov chain. An arrival whose class has an open group (leader within
// CoalesceWindow arrivals, group below MaxBatch) coalesces: it occupies no
// server and completes at max(leaderDone, t) + classCopy. Otherwise it is
// a leader: it is shed if ShedDepth admitted leaders are waiting to start,
// else it runs FCFS on the earliest-free server for classService seconds.
// Goodput is the fraction of all offered arrivals that complete within the
// SLO (shed arrivals count against it).
func trafficSimulate(tc TrafficConfig, service, copyCost []float64, rep *TrafficReport) {
	zipf := newZipfSampler(tc.Tenants, tc.ZipfSkew)
	classOf := func(t int) int { return t % len(tc.Classes) }

	// The calm arrival rate targets Load against the system's *effective*
	// capacity: coalescing lets one leader execution serve up to MaxBatch
	// arrivals, so the popularity-weighted mean *server* cost per arrival
	// is the service time amortized over a full batch (fan-out copies are
	// follower latency, not server work). Load > 1 therefore overloads
	// the post-coalescing system, and burst periods drive the queue into
	// the shedding regime.
	meanEffective := 0.0
	maxService := 0.0
	for t := 0; t < tc.Tenants; t++ {
		c := classOf(t)
		meanEffective += zipf.weights[t] * service[c] / float64(tc.MaxBatch)
		if service[c] > maxService {
			maxService = service[c]
		}
	}
	if meanEffective <= 0 {
		meanEffective = 1e-9
	}
	slo := tc.SLOFactor * maxService
	calmGap := meanEffective / (float64(tc.Servers) * tc.Load)
	burstGap := calmGap / tc.BurstFactor

	type group struct {
		leaderSeq  int
		leaderDone float64
		size       int
	}
	open := make([]*group, len(tc.Classes))
	serverFree := make([]float64, tc.Servers)
	startQ := make([]float64, 0, tc.ShedDepth+1) // start times of admitted, not-yet-started leaders
	qhead := 0
	latencies := make([]float64, 0, tc.VirtualRequests)
	var admitted, shed, coalesced, sloOK int64
	makespan := 0.0

	rng := newTrafficRNG(tc.Seed, 0x73696d) // "sim" stream
	now := 0.0
	burst := false
	for i := 0; i < tc.VirtualRequests; i++ {
		// Draw order is fixed: state transition, gap, tenant.
		u := rng.float64()
		if burst {
			if u < tc.BurstOff {
				burst = false
			}
		} else if u < tc.BurstOn {
			burst = true
		}
		gap := calmGap
		if burst {
			gap = burstGap
		}
		now += -math.Log(1-rng.float64()) * gap
		tenant := zipf.draw(rng.float64())
		class := classOf(tenant)

		if g := open[class]; g != nil && i-g.leaderSeq <= tc.CoalesceWindow && g.size < tc.MaxBatch {
			done := math.Max(g.leaderDone, now) + copyCost[class]
			g.size++
			coalesced++
			admitted++
			lat := done - now
			latencies = append(latencies, lat)
			if lat <= slo {
				sloOK++
			}
			if done > makespan {
				makespan = done
			}
			continue
		}
		for qhead < len(startQ) && startQ[qhead] <= now {
			qhead++
		}
		if len(startQ)-qhead >= tc.ShedDepth {
			shed++
			continue
		}
		// Leader: earliest-free server, FCFS.
		best := 0
		for w := 1; w < tc.Servers; w++ {
			if serverFree[w] < serverFree[best] {
				best = w
			}
		}
		start := math.Max(now, serverFree[best])
		done := start + service[class]
		serverFree[best] = done
		startQ = append(startQ, start)
		admitted++
		lat := done - now
		latencies = append(latencies, lat)
		if lat <= slo {
			sloOK++
		}
		if done > makespan {
			makespan = done
		}
		open[class] = &group{leaderSeq: i, leaderDone: done, size: 1}
	}

	sort.Float64s(latencies)
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(math.Ceil(q*float64(len(latencies)))) - 1
		if idx < 0 {
			idx = 0
		}
		return latencies[idx]
	}
	rep.SLOSeconds = slo
	rep.Admitted = admitted
	rep.Shed = shed
	rep.VirtualCoalesced = coalesced
	rep.P50 = pct(0.50)
	rep.P99 = pct(0.99)
	rep.Goodput = float64(sloOK) / float64(tc.VirtualRequests)
	rep.VirtualMakespan = makespan
}
