package serve

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"testing"
	"time"

	"memphis/internal/data"
	"memphis/internal/faults"
	"memphis/internal/runtime"
)

// chaosRun runs a faulted serve workload mix: `n` tenants submit the same
// program over identical inputs (so requests conflict and serialize in ticket
// order) under the given plan. It requires every request to succeed — the
// acceptance bar for chaos mode is zero request failures at default
// probabilities — and returns per-ticket virtual latencies, the fetched
// results, and the final snapshot.
func chaosRun(t *testing.T, seed int64, workers, n int) ([]float64, []*data.Matrix, Snapshot) {
	t.Helper()
	conf := DefaultConfig()
	conf.Workers = workers
	conf.Faults = faults.Default(seed)
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		f, err := srv.Submit(fmt.Sprintf("t%d", i), w.Prog,
			SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	vtimes := make([]float64, n)
	vals := make([]*data.Matrix, n)
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil {
			t.Fatalf("request %d failed under default chaos plan: %v", i, err)
		}
		vtimes[i] = res.VirtualSeconds
		vals[i] = res.Values["best"]
	}
	srv.Close()
	return vtimes, vals, srv.Snapshot()
}

// TestChaosDeterminism is the chaos acceptance test: for several seeds, a
// faulted serve run (a) completes every request via retries and fallbacks,
// (b) replays with bitwise-identical virtual latencies, results, and per-site
// fault counts, and (c) produces the same trace at every worker count.
func TestChaosDeterminism(t *testing.T) {
	for _, seed := range []int64{11, 42, 99} {
		v1, m1, s1 := chaosRun(t, seed, 1, 4)
		v2, m2, s2 := chaosRun(t, seed, 1, 4)
		v4, m4, s4 := chaosRun(t, seed, 4, 4)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("seed %d: replay diverged at request %d: %v != %v", seed, i, v1[i], v2[i])
			}
			if v1[i] != v4[i] {
				t.Fatalf("seed %d: worker count changed request %d latency: %v != %v", seed, i, v1[i], v4[i])
			}
			if !data.AllClose(m1[i], m2[i], 0) || !data.AllClose(m1[i], m4[i], 0) {
				t.Fatalf("seed %d: request %d results differ across runs", seed, i)
			}
		}
		if len(s1.Faults) != len(s2.Faults) || len(s1.Faults) != len(s4.Faults) {
			t.Fatalf("seed %d: fault site sets differ: %v / %v / %v", seed, s1.Faults, s2.Faults, s4.Faults)
		}
		for site, n := range s1.Faults {
			if s2.Faults[site] != n || s4.Faults[site] != n {
				t.Fatalf("seed %d: fault counts at %s differ: %d / %d / %d",
					seed, site, n, s2.Faults[site], s4.Faults[site])
			}
		}
		if s1.Retries != s2.Retries || s1.Retries != s4.Retries {
			t.Fatalf("seed %d: retry counts differ: %d / %d / %d", seed, s1.Retries, s2.Retries, s4.Retries)
		}
	}
}

// TestCompileCacheBitwiseProperty is the compile-cache acceptance property:
// for every (worker count, fault plan) combination, switching the shared
// compile cache on or off changes neither a single result bit nor a single
// virtual latency. Compilation charges no virtual time and compiled streams
// are pure functions of (program, shapes, config), so cached and uncached
// executions are indistinguishable to tenants.
func TestCompileCacheBitwiseProperty(t *testing.T) {
	const n = 5
	run := func(workers int, cache bool, plan *faults.Plan) ([]float64, []*data.Matrix) {
		conf := DefaultConfig()
		conf.Workers = workers
		conf.CompileCache = cache
		conf.Faults = plan
		srv := New(conf)
		defer srv.Close()
		w := hcvWorkload()
		futs := make([]*Future, n)
		for i := range futs {
			f, err := srv.Submit(fmt.Sprintf("t%d", i), w.Prog,
				SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
			if err != nil {
				t.Fatal(err)
			}
			futs[i] = f
		}
		vtimes := make([]float64, n)
		vals := make([]*data.Matrix, n)
		for i, f := range futs {
			res, err := f.Wait()
			if err != nil {
				t.Fatalf("workers=%d cache=%v: request %d failed: %v", workers, cache, i, err)
			}
			vtimes[i] = res.VirtualSeconds
			vals[i] = res.Values["best"]
		}
		return vtimes, vals
	}
	for _, plan := range []*faults.Plan{nil, faults.Default(42)} {
		refV, refM := run(1, false, plan)
		for _, workers := range []int{1, 4, 8} {
			for _, cache := range []bool{false, true} {
				v, m := run(workers, cache, plan)
				for i := range v {
					if v[i] != refV[i] {
						t.Fatalf("chaos=%v workers=%d cache=%v: request %d vtime %v != reference %v",
							plan != nil, workers, cache, i, v[i], refV[i])
					}
					if !data.AllClose(m[i], refM[i], 0) {
						t.Fatalf("chaos=%v workers=%d cache=%v: request %d result differs bitwise",
							plan != nil, workers, cache, i)
					}
				}
			}
		}
	}
}

// TestChaosMatchesFaultFreeResults: the faulted mix computes the same answers
// as a fault-free run — every injected failure is absorbed by a recovery
// path, never by serving a wrong result.
func TestChaosMatchesFaultFreeResults(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 1
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	f, err := srv.Submit("clean", w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := f.Wait()
	if err != nil {
		t.Fatal(err)
	}
	_, vals, _ := chaosRun(t, 1234, 2, 3)
	for i, m := range vals {
		if !data.AllClose(clean.Values["best"], m, 0) {
			t.Fatalf("faulted request %d result differs from fault-free result", i)
		}
	}
}

// TestInjectedWorkerFaultRetries: a scripted serve.request crash on the first
// request fails two attempts; the retry loop absorbs both, charges backoff
// virtual time, and reports the retries in the result and snapshot.
func TestInjectedWorkerFaultRetries(t *testing.T) {
	run := func(plan *faults.Plan) (*Result, Snapshot, error) {
		conf := DefaultConfig()
		conf.Workers = 1
		conf.Faults = plan
		srv := New(conf)
		defer srv.Close()
		w := hcvWorkload()
		f, err := srv.Submit("a", w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Wait()
		srv.Close()
		return res, srv.Snapshot(), err
	}
	clean, _, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, snap, err := run(&faults.Plan{Seed: 5, Sites: map[faults.Site]faults.Trigger{
		faults.ServeRequest: {Nth: []int64{1}, Attempts: 2},
	}})
	if err != nil {
		t.Fatalf("request must succeed on its third attempt: %v", err)
	}
	if res.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", res.Retries)
	}
	if res.VirtualSeconds <= clean.VirtualSeconds {
		t.Fatalf("retried request must pay backoff: %v <= %v", res.VirtualSeconds, clean.VirtualSeconds)
	}
	if !data.AllClose(res.Values["best"], clean.Values["best"], 0) {
		t.Fatal("retried result differs from clean result")
	}
	if snap.Retries != 2 || snap.Faults["serve.request"] != 2 {
		t.Fatalf("snapshot accounting wrong: retries=%d faults=%v", snap.Retries, snap.Faults)
	}
	if snap.Failed != 0 {
		t.Fatalf("no request may fail, got %d", snap.Failed)
	}
}

// TestRequestFailsPastMaxRetries: a crash scripted for more attempts than the
// retry budget fails the request (and only that request).
func TestRequestFailsPastMaxRetries(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 1
	conf.Faults = &faults.Plan{Seed: 5, Sites: map[faults.Site]faults.Trigger{
		faults.ServeRequest: {Nth: []int64{1}, Attempts: 5},
	}}
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	f, err := srv.Submit("a", w.Prog, SubmitOptions{Inputs: w.HostInputs()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(); err == nil {
		t.Fatal("request scripted to fail 5 attempts must not succeed with MaxRetries=2")
	}
	// The server survives: an unfaulted second request (ticket 2) completes.
	f2, err := srv.Submit("a", w.Prog, SubmitOptions{Inputs: w.HostInputs()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Wait(); err != nil {
		t.Fatalf("post-failure request must succeed: %v", err)
	}
	srv.Close()
	if snap := srv.Snapshot(); snap.Failed != 1 || snap.Completed != 2 {
		t.Fatalf("failed=%d completed=%d, want 1/2", snap.Failed, snap.Completed)
	}
}

// TestDeadlineExceeded: a deadline below any feasible latency fails the
// request with ErrDeadline while still returning the computed result.
func TestDeadlineExceeded(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 1
	conf.Deadline = 1e-9
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	f, err := srv.Submit("a", w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Wait()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || res.Values["best"] == nil {
		t.Fatal("deadline failure must still carry the computed result")
	}
	srv.Close()
	if snap := srv.Snapshot(); snap.DeadlineFailures != 1 || snap.Failed != 1 {
		t.Fatalf("deadline_failures=%d failed=%d, want 1/1", snap.DeadlineFailures, snap.Failed)
	}
}

// TestShedThreshold: once the queue reaches the shed threshold, new
// submissions are rejected with ErrOverloaded instead of queueing.
func TestShedThreshold(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 1
	conf.ShedThreshold = 1
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	inputs := w.HostInputs()
	// A blocks inside its Bind hook until released, pinning the single
	// worker, so B is guaranteed to sit in the queue when C arrives.
	hold := make(chan struct{})
	started := make(chan struct{})
	if _, err := srv.Submit("a", trivialProg(), SubmitOptions{Bind: func(*runtime.Context) {
		close(started)
		<-hold
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := srv.Submit("b", w.Prog, SubmitOptions{Inputs: inputs}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("c", w.Prog, SubmitOptions{Inputs: inputs}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	close(hold)
	srv.Close()
	if snap := srv.Snapshot(); snap.Shed != 1 || snap.Rejected != 1 {
		t.Fatalf("shed=%d rejected=%d, want 1/1", snap.Shed, snap.Rejected)
	}
}

// TestDegradedShardsRecompute: with every shared-cache shard disabled,
// sessions get no cross-tenant hits — they recompute instead of failing —
// and the degradation is visible in the stats.
func TestDegradedShardsRecompute(t *testing.T) {
	conf := DefaultConfig()
	conf.Workers = 1
	conf.Shared.Shards = 4
	conf.DisabledShards = []int{0, 1, 2, 3}
	srv := New(conf)
	defer srv.Close()
	w := hcvWorkload()
	fa, err := srv.Submit("alice", w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := fa.Wait()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := srv.Submit("bob", w.Prog, SubmitOptions{Inputs: w.HostInputs(), Fetch: []string{"best"}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := fb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rb.Stats.SharedHits != 0 {
		t.Fatalf("disabled shards must not serve hits, got %d", rb.Stats.SharedHits)
	}
	if !data.AllClose(ra.Values["best"], rb.Values["best"], 0) {
		t.Fatal("degraded mode changed a result")
	}
	srv.Close()
	snap := srv.Snapshot()
	if snap.Shared.DisabledShards != 4 || snap.Shared.DegradedProbes == 0 {
		t.Fatalf("degradation not visible: %+v", snap.Shared)
	}
	// Re-enabling a shard brings it back.
	srv.Shared().SetShardEnabled(2, true)
	if n := srv.Shared().DisabledShards(); n != 3 {
		t.Fatalf("DisabledShards = %d after re-enable, want 3", n)
	}
}

// TestCloseLeavesNoWorkerGoroutines: Server.Close under in-flight faulted
// requests drains everything and leaves no worker goroutines behind.
func TestCloseLeavesNoWorkerGoroutines(t *testing.T) {
	// Warm up process-wide pools (the dense kernel layer keeps persistent
	// workers) so the baseline goroutine count is stable.
	{
		conf := DefaultConfig()
		conf.Workers = 2
		srv := New(conf)
		w := hcvWorkload()
		f, err := srv.Submit("warm", w.Prog, SubmitOptions{Inputs: w.HostInputs()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
		srv.Close()
	}
	base := goruntime.NumGoroutine()

	conf := DefaultConfig()
	conf.Workers = 4
	plan := faults.Default(7)
	plan.Sites[faults.ServeRequest] = faults.Trigger{Probability: 0.5}
	conf.Faults = plan
	srv := New(conf)
	w := hcvWorkload()
	futs := make([]*Future, 6)
	for i := range futs {
		f, err := srv.Submit(fmt.Sprintf("t%d", i), w.Prog, SubmitOptions{Inputs: w.HostInputs()})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	// Close while requests are still in flight: it must drain the queue,
	// finish (or fail) every request, and stop all workers.
	srv.Close()
	for i, f := range futs {
		select {
		case <-f.Done():
		default:
			t.Fatalf("request %d not resolved after Close", i)
		}
	}
	for i := 0; i < 100 && goruntime.NumGoroutine() > base; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if n := goruntime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after Close\n%s",
			base, n, buf[:goruntime.Stack(buf, true)])
	}
}
