package data

import (
	"math"
	"testing"
)

// Benchmarks for the scalar-op and equal-shape binary fast paths. The
// "legacy" variants reproduce the previous implementations (per-cell
// closure through Map, and At/Set index arithmetic with broadcast dispatch
// in binary), so the direct-loop speedup stays measurable in-tree.

func benchMatrices(b *testing.B) (*Matrix, *Matrix) {
	b.Helper()
	prev := Parallelism()
	b.Cleanup(func() { SetParallelism(prev) })
	SetParallelism(1)
	return RandNorm(512, 512, 0, 1, 3), RandNorm(512, 512, 1, 2, 4)
}

// legacyMapScalar is the old AddScalar/MulScalar shape: Map with a closure
// capturing the scalar.
func legacyMapScalar(a *Matrix, f func(float64) float64) *Matrix { return Map(a, f) }

// legacyBinaryEqual is the old equal-shape binary path: per-cell At/Set
// with the broadcast helper, as binary ran before the flat fast path.
func legacyBinaryEqual(a, b *Matrix, f func(x, y float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	parallelFor(a.Rows, float64(a.Cells()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < a.Cols; j++ {
				out.Set(i, j, f(a.At(i, j), broadcastIndex(a, b, i, j)))
			}
		}
	})
	return out
}

func BenchmarkAddScalarLegacy(b *testing.B) {
	m, _ := benchMatrices(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = legacyMapScalar(m, func(x float64) float64 { return x + 1.5 })
	}
}

func BenchmarkAddScalar(b *testing.B) {
	m, _ := benchMatrices(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = AddScalar(m, 1.5)
	}
}

func BenchmarkMulScalarLegacy(b *testing.B) {
	m, _ := benchMatrices(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = legacyMapScalar(m, func(x float64) float64 { return x * 1.5 })
	}
}

func BenchmarkMulScalar(b *testing.B) {
	m, _ := benchMatrices(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MulScalar(m, 1.5)
	}
}

func BenchmarkPowScalarSquareLegacy(b *testing.B) {
	m, _ := benchMatrices(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = legacyMapScalar(m, func(x float64) float64 { return x * x })
	}
}

func BenchmarkPowScalarSquare(b *testing.B) {
	m, _ := benchMatrices(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PowScalar(m, 2)
	}
}

func BenchmarkBinaryEqualShapeLegacy(b *testing.B) {
	m, n := benchMatrices(b)
	add := func(x, y float64) float64 { return x + y }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = legacyBinaryEqual(m, n, add)
	}
}

func BenchmarkBinaryEqualShape(b *testing.B) {
	m, n := benchMatrices(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Add(m, n)
	}
}

// TestScalarFastPathsMatchLegacy pins the fast paths to the legacy
// implementations bitwise, including the broadcast-path equivalence of the
// equal-shape shortcut.
func TestScalarFastPathsMatchLegacy(t *testing.T) {
	m := RandNorm(33, 17, 0, 1, 5)
	n := RandNorm(33, 17, 1, 2, 6)
	pairs := []struct {
		name     string
		got, ref *Matrix
	}{
		{"add-scalar", AddScalar(m, 1.5), legacyMapScalar(m, func(x float64) float64 { return x + 1.5 })},
		{"mul-scalar", MulScalar(m, -2.5), legacyMapScalar(m, func(x float64) float64 { return x * -2.5 })},
		{"pow-square", PowScalar(m, 2), legacyMapScalar(m, func(x float64) float64 { return x * x })},
		{"pow-general", PowScalar(m, 3.5), legacyMapScalar(m, func(x float64) float64 { return math.Pow(x, 3.5) })},
		{"binary-equal", Add(m, n), legacyBinaryEqual(m, n, func(x, y float64) float64 { return x + y })},
	}
	for _, p := range pairs {
		for i := range p.ref.Data {
			if math.Float64bits(p.got.Data[i]) != math.Float64bits(p.ref.Data[i]) {
				t.Errorf("%s: cell %d = %v, want %v", p.name, i, p.got.Data[i], p.ref.Data[i])
				break
			}
		}
	}
}
