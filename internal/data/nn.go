package data

import (
	"fmt"
	"math"
	"math/rand"
)

// ReLU returns max(0, a) elementwise.
func ReLU(a *Matrix) *Matrix {
	return Map(a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUBackward masks upstream gradients dout where the forward input x <= 0.
func ReLUBackward(x, dout *Matrix) *Matrix {
	if x.Rows != dout.Rows || x.Cols != dout.Cols {
		panic("data: relu backward shape mismatch")
	}
	out := New(x.Rows, x.Cols)
	parallelFor(len(x.Data), float64(len(x.Data)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if x.Data[i] > 0 {
				out.Data[i] = dout.Data[i]
			}
		}
	})
	return out
}

// Softmax returns the row-wise softmax with the usual max-shift for
// numerical stability, sharded over rows.
func Softmax(a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	parallelFor(a.Rows, 4*float64(a.Cells()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			maxV := math.Inf(-1)
			for j := 0; j < a.Cols; j++ {
				if v := a.At(i, j); v > maxV {
					maxV = v
				}
			}
			sum := 0.0
			for j := 0; j < a.Cols; j++ {
				e := math.Exp(a.At(i, j) - maxV)
				out.Set(i, j, e)
				sum += e
			}
			for j := 0; j < a.Cols; j++ {
				out.Set(i, j, out.At(i, j)/sum)
			}
		}
	})
	return out
}

// Affine returns x*w + b where b is a 1 x n bias row.
func Affine(x, w, b *Matrix) *Matrix { return Add(MatMul(x, w), b) }

// Dropout zeroes cells with probability p and scales survivors by 1/(1-p)
// (inverted dropout). Deterministic given the seed: each row draws from its
// own RNG seeded by (seed, row), so the mask is a pure function of the seed
// and the cell position — identical whether rows are processed serially or
// sharded across workers.
func Dropout(a *Matrix, p float64, seed int64) *Matrix {
	if p <= 0 {
		return a.Clone()
	}
	if p >= 1 {
		return Zeros(a.Rows, a.Cols)
	}
	scale := 1 / (1 - p)
	out := New(a.Rows, a.Cols)
	parallelFor(a.Rows, 2*float64(a.Cells()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rng := rand.New(rand.NewSource(rowSeed(seed, i)))
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*a.Cols : (i+1)*a.Cols]
			for j, v := range row {
				if rng.Float64() >= p {
					orow[j] = v * scale
				}
			}
		}
	})
	return out
}

// rowSeed derives a per-row RNG seed from the op seed via a splitmix-style
// mix, decorrelating adjacent rows.
func rowSeed(seed int64, row int) int64 {
	z := uint64(seed) + uint64(row+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Conv2D performs a direct valid 2-D convolution with stride and zero
// padding. Input layout: each row of x is one image flattened as
// [cIn][h][w]; each row of w is one filter flattened as [cIn][kH][kW].
// The output rows are flattened as [cOut][outH][outW].
func Conv2D(x *Matrix, w *Matrix, cIn, h, width, kH, kW, stride, pad int) *Matrix {
	if x.Cols != cIn*h*width {
		panic(fmt.Sprintf("data: conv2d input cols %d != %d*%d*%d", x.Cols, cIn, h, width))
	}
	cOut := w.Rows
	if w.Cols != cIn*kH*kW {
		panic(fmt.Sprintf("data: conv2d filter cols %d != %d*%d*%d", w.Cols, cIn, kH, kW))
	}
	outH := (h+2*pad-kH)/stride + 1
	outW := (width+2*pad-kW)/stride + 1
	out := New(x.Rows, cOut*outH*outW)
	flops := 2 * float64(x.Rows) * float64(cOut) * float64(outH) * float64(outW) *
		float64(cIn) * float64(kH) * float64(kW)
	parallelFor(x.Rows, flops, func(nLo, nHi int) {
		convRows(x, w, out, nLo, nHi, cIn, h, width, kH, kW, stride, pad, cOut, outH, outW)
	})
	return out
}

// convRows computes the convolution for the batch rows [nLo, nHi); rows are
// independent images, so workers write disjoint output rows.
func convRows(x, w, out *Matrix, nLo, nHi, cIn, h, width, kH, kW, stride, pad, cOut, outH, outW int) {
	for n := nLo; n < nHi; n++ {
		img := x.Data[n*x.Cols : (n+1)*x.Cols]
		dst := out.Data[n*out.Cols : (n+1)*out.Cols]
		for co := 0; co < cOut; co++ {
			filt := w.Data[co*w.Cols : (co+1)*w.Cols]
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					sum := 0.0
					for ci := 0; ci < cIn; ci++ {
						for ky := 0; ky < kH; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kW; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= width {
									continue
								}
								sum += img[ci*h*width+iy*width+ix] * filt[ci*kH*kW+ky*kW+kx]
							}
						}
					}
					dst[co*outH*outW+oy*outW+ox] = sum
				}
			}
		}
	}
}

// MaxPool performs 2-D max pooling over images laid out as in Conv2D,
// sharded over batch rows.
func MaxPool(x *Matrix, c, h, width, poolH, poolW, stride int) *Matrix {
	outH := (h-poolH)/stride + 1
	outW := (width-poolW)/stride + 1
	out := New(x.Rows, c*outH*outW)
	work := float64(x.Rows) * float64(c) * float64(outH) * float64(outW) *
		float64(poolH) * float64(poolW)
	parallelFor(x.Rows, work, func(nLo, nHi int) {
		poolRows(x, out, nLo, nHi, c, h, width, poolH, poolW, stride, outH, outW)
	})
	return out
}

// poolRows pools the batch rows [nLo, nHi).
func poolRows(x, out *Matrix, nLo, nHi, c, h, width, poolH, poolW, stride, outH, outW int) {
	for n := nLo; n < nHi; n++ {
		img := x.Data[n*x.Cols : (n+1)*x.Cols]
		dst := out.Data[n*out.Cols : (n+1)*out.Cols]
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := math.Inf(-1)
					for ky := 0; ky < poolH; ky++ {
						for kx := 0; kx < poolW; kx++ {
							v := img[ci*h*width+(oy*stride+ky)*width+(ox*stride+kx)]
							if v > best {
								best = v
							}
						}
					}
					dst[ci*outH*outW+oy*outW+ox] = best
				}
			}
		}
	}
}
