// Package data implements the dense linear-algebra and feature-transform
// kernels shared by all simulated backends (CPU, Spark partitions, GPU
// buffers). Matrices are dense, row-major float64; missing values are NaN.
// All randomized operations take explicit seeds so results are reproducible
// and lineage-identified intermediates are exactly recomputable.
package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("data: invalid dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps values (length rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, values []float64) *Matrix {
	if len(values) != rows*cols {
		panic(fmt.Sprintf("data: slice len %d != %dx%d", len(values), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: values}
}

// Scalar returns a 1x1 matrix holding v.
func Scalar(v float64) *Matrix { return FromSlice(1, 1, []float64{v}) }

// Zeros returns a rows x cols matrix of zeros.
func Zeros(rows, cols int) *Matrix { return New(rows, cols) }

// Ones returns a rows x cols matrix of ones.
func Ones(rows, cols int) *Matrix { return Fill(rows, cols, 1) }

// Fill returns a rows x cols matrix with every cell set to v.
func Fill(rows, cols int, v float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Rand returns a rows x cols matrix with entries uniform in [min,max) and the
// given fraction of nonzeros (sparsity in (0,1]), generated from seed.
func Rand(rows, cols int, min, max, sparsity float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		if sparsity >= 1 || rng.Float64() < sparsity {
			m.Data[i] = min + rng.Float64()*(max-min)
		}
	}
	return m
}

// RandNorm returns a rows x cols matrix with N(mu, sd) entries from seed.
func RandNorm(rows, cols int, mu, sd float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = mu + sd*rng.NormFloat64()
	}
	return m
}

// Seq returns a column vector [from, from+step, ...] with n entries.
func Seq(from, step float64, n int) *Matrix {
	m := New(n, 1)
	for i := 0; i < n; i++ {
		m.Data[i] = from + float64(i)*step
	}
	return m
}

// At returns the cell (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the cell (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SizeBytes returns the in-memory size of the matrix payload.
func (m *Matrix) SizeBytes() int64 { return int64(m.Rows) * int64(m.Cols) * 8 }

// Cells returns the number of cells.
func (m *Matrix) Cells() int { return m.Rows * m.Cols }

// IsScalar reports whether m is 1x1.
func (m *Matrix) IsScalar() bool { return m.Rows == 1 && m.Cols == 1 }

// ScalarValue returns the single value of a 1x1 matrix.
func (m *Matrix) ScalarValue() float64 {
	if !m.IsScalar() {
		panic(fmt.Sprintf("data: ScalarValue on %dx%d matrix", m.Rows, m.Cols))
	}
	return m.Data[0]
}

// String renders small matrices fully and large ones as a summary.
func (m *Matrix) String() string {
	if m.Cells() <= 36 {
		s := fmt.Sprintf("%dx%d[", m.Rows, m.Cols)
		for i := 0; i < m.Rows; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < m.Cols; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(i, j))
			}
		}
		return s + "]"
	}
	return fmt.Sprintf("%dx%d[...%d cells...]", m.Rows, m.Cols, m.Cells())
}

// AllClose reports whether a and b have equal shape and entries within tol,
// treating NaNs in the same position as equal.
func AllClose(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		x, y := a.Data[i], b.Data[i]
		if math.IsNaN(x) || math.IsNaN(y) {
			if math.IsNaN(x) != math.IsNaN(y) {
				return false
			}
			continue
		}
		if math.Abs(x-y) > tol {
			return false
		}
	}
	return true
}

// Slice returns the submatrix of rows [r0,r1) and cols [c0,c1) as a copy.
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("data: slice [%d:%d,%d:%d] out of %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Data[(i-r0)*out.Cols:(i-r0+1)*out.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// Rows2 returns rows [r0,r1) as a copy (all columns).
func (m *Matrix) SliceRows(r0, r1 int) *Matrix { return m.Slice(r0, r1, 0, m.Cols) }

// Col returns column j as an n x 1 copy.
func (m *Matrix) Col(j int) *Matrix { return m.Slice(0, m.Rows, j, j+1) }

// RBind stacks matrices vertically.
func RBind(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("data: RBind of nothing")
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("data: RBind col mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out
}

// CBind concatenates matrices horizontally.
func CBind(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("data: CBind of nothing")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("data: CBind row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		for _, m := range ms {
			copy(out.Data[i*cols+off:i*cols+off+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
			off += m.Cols
		}
	}
	return out
}

// Diag returns the main diagonal of a square matrix as a column vector, or,
// given a column vector, the diagonal matrix with it on the diagonal.
func Diag(m *Matrix) *Matrix {
	if m.Cols == 1 {
		out := New(m.Rows, m.Rows)
		for i := 0; i < m.Rows; i++ {
			out.Set(i, i, m.Data[i])
		}
		return out
	}
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	out := New(n, 1)
	for i := 0; i < n; i++ {
		out.Data[i] = m.At(i, i)
	}
	return out
}
