package data

import (
	"math"
	"testing"
	"testing/quick"
)

func nan() float64 { return math.NaN() }

func TestImputeByMean(t *testing.T) {
	m := FromSlice(3, 2, []float64{1, 10, nan(), 20, 3, nan()})
	out := ImputeByMean(m)
	if out.At(1, 0) != 2 || out.At(2, 1) != 15 {
		t.Fatalf("ImputeByMean = %v", out)
	}
	if CountNaN(out) != 0 {
		t.Fatal("NaNs remain after imputation")
	}
	// Original untouched.
	if CountNaN(m) != 2 {
		t.Fatal("input mutated")
	}
}

func TestImputeByMode(t *testing.T) {
	m := FromSlice(5, 1, []float64{2, 2, 3, nan(), 3})
	out := ImputeByMode(m)
	// Tie between 2 and 3 -> smaller value wins deterministically.
	if out.At(3, 0) != 2 {
		t.Fatalf("mode imputation = %g, want 2 (tie broken low)", out.At(3, 0))
	}
}

func TestOutlierByIQR(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	m := FromSlice(10, 1, vals)
	out := OutlierByIQR(m)
	if Max(out) >= 1000 {
		t.Fatalf("outlier not clamped: max = %g", Max(out))
	}
	if out.At(0, 0) != 1 {
		t.Fatalf("inlier modified: %g", out.At(0, 0))
	}
}

func TestStandardize(t *testing.T) {
	m := RandNorm(500, 3, 5, 2, 11)
	s := Standardize(m)
	mu := ColMeans(s)
	va := ColVars(s)
	for j := 0; j < 3; j++ {
		if math.Abs(mu.Data[j]) > 1e-9 {
			t.Fatalf("col %d mean = %g, want 0", j, mu.Data[j])
		}
		if math.Abs(va.Data[j]-1) > 1e-9 {
			t.Fatalf("col %d var = %g, want 1", j, va.Data[j])
		}
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	m := Fill(4, 1, 7)
	s := Standardize(m)
	if !AllClose(s, Zeros(4, 1), 0) {
		t.Fatalf("constant column should center to zero: %v", s)
	}
}

func TestMinMaxScale(t *testing.T) {
	m := FromSlice(3, 1, []float64{2, 4, 6})
	s := MinMaxScale(m)
	want := FromSlice(3, 1, []float64{0, 0.5, 1})
	if !AllClose(s, want, 1e-12) {
		t.Fatalf("MinMaxScale = %v", s)
	}
}

func TestUnderSampleBalances(t *testing.T) {
	x := Seq(1, 1, 100)
	y := New(100, 1)
	for i := 0; i < 10; i++ {
		y.Data[i] = 1 // 10 positive, 90 negative
	}
	sx, sy := UnderSample(x, y, 42)
	if sx.Rows != 20 || sy.Rows != 20 {
		t.Fatalf("rows = %d, want 20", sx.Rows)
	}
	pos := 0
	for _, v := range sy.Data {
		if v > 0 {
			pos++
		}
	}
	if pos != 10 {
		t.Fatalf("positives = %d, want 10", pos)
	}
	// Deterministic for the same seed.
	sx2, _ := UnderSample(x, y, 42)
	if !AllClose(sx, sx2, 0) {
		t.Fatal("undersample not deterministic")
	}
}

func TestBin(t *testing.T) {
	m := FromSlice(4, 1, []float64{0, 1, 2, 10})
	b := Bin(m, 2)
	want := FromSlice(4, 1, []float64{1, 1, 1, 2})
	if !AllClose(b, want, 0) {
		t.Fatalf("Bin = %v, want %v", b, want)
	}
	if Max(Bin(RandNorm(100, 2, 0, 1, 3), 10)) > 10 {
		t.Fatal("bin code exceeds nBins")
	}
}

func TestBinPreservesNaN(t *testing.T) {
	m := FromSlice(3, 1, []float64{1, nan(), 3})
	b := Bin(m, 4)
	if !math.IsNaN(b.At(1, 0)) {
		t.Fatal("NaN should survive binning")
	}
}

func TestRecode(t *testing.T) {
	m := FromSlice(4, 1, []float64{30, 10, 30, 20})
	r := Recode(m)
	want := FromSlice(4, 1, []float64{3, 1, 3, 2})
	if !AllClose(r, want, 0) {
		t.Fatalf("Recode = %v, want %v", r, want)
	}
}

func TestOneHot(t *testing.T) {
	m := FromSlice(3, 1, []float64{1, 3, 2})
	oh := OneHot(m)
	want := FromSlice(3, 3, []float64{1, 0, 0, 0, 0, 1, 0, 1, 0})
	if !AllClose(oh, want, 0) {
		t.Fatalf("OneHot = %v, want %v", oh, want)
	}
}

func TestOneHotMultiColumn(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 2, 1})
	oh := OneHot(m)
	if oh.Cols != 4 {
		t.Fatalf("OneHot cols = %d, want 4", oh.Cols)
	}
	want := FromSlice(2, 4, []float64{1, 0, 0, 1, 0, 1, 1, 0})
	if !AllClose(oh, want, 0) {
		t.Fatalf("OneHot = %v", oh)
	}
}

func TestReplaceNaN(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, nan(), 3})
	out := ReplaceNaN(m, -1)
	if out.At(0, 1) != -1 || CountNaN(out) != 0 {
		t.Fatalf("ReplaceNaN = %v", out)
	}
}

// Property: recoded codes are dense 1..k and order-preserving.
func TestRecodeProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		m := New(len(vals), 1)
		for i, v := range vals {
			m.Data[i] = float64(v % 8)
		}
		r := Recode(m)
		maxCode := Max(r)
		seen := make(map[float64]bool)
		for _, v := range r.Data {
			if v < 1 || v > maxCode {
				return false
			}
			seen[v] = true
		}
		if len(seen) != int(maxCode) {
			return false // codes must be dense
		}
		// Order preserving: original a<b implies code(a)<code(b).
		for i := range m.Data {
			for j := range m.Data {
				if m.Data[i] < m.Data[j] && r.Data[i] >= r.Data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: imputation never changes observed values.
func TestImputePreservesObserved(t *testing.T) {
	f := func(seed int64) bool {
		m := RandNorm(10, 3, 0, 1, seed)
		m.Set(3, 1, nan())
		out := ImputeByMean(m)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if i == 3 && j == 1 {
					continue
				}
				if out.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
