package data

import (
	"math"
	"math/rand"
	"sort"
)

// Feature transformations used by the cleaning and input-data-pipeline
// workloads. Missing values are NaN.

// ImputeByMean replaces NaNs in each column with the column mean over
// observed values.
func ImputeByMean(a *Matrix) *Matrix {
	out := a.Clone()
	for j := 0; j < a.Cols; j++ {
		sum, n := 0.0, 0
		for i := 0; i < a.Rows; i++ {
			if v := a.At(i, j); !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		for i := 0; i < a.Rows; i++ {
			if math.IsNaN(out.At(i, j)) {
				out.Set(i, j, mean)
			}
		}
	}
	return out
}

// ImputeByMode replaces NaNs in each column with the most frequent observed
// value (ties broken by smaller value for determinism).
func ImputeByMode(a *Matrix) *Matrix {
	out := a.Clone()
	for j := 0; j < a.Cols; j++ {
		counts := make(map[float64]int)
		for i := 0; i < a.Rows; i++ {
			if v := a.At(i, j); !math.IsNaN(v) {
				counts[v]++
			}
		}
		mode, best := 0.0, -1
		keys := make([]float64, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		for _, k := range keys {
			if counts[k] > best {
				mode, best = k, counts[k]
			}
		}
		for i := 0; i < a.Rows; i++ {
			if math.IsNaN(out.At(i, j)) {
				out.Set(i, j, mode)
			}
		}
	}
	return out
}

// OutlierByIQR clamps each column to [q1-1.5*iqr, q3+1.5*iqr].
func OutlierByIQR(a *Matrix) *Matrix {
	out := a.Clone()
	col := make([]float64, 0, a.Rows)
	for j := 0; j < a.Cols; j++ {
		col = col[:0]
		for i := 0; i < a.Rows; i++ {
			if v := a.At(i, j); !math.IsNaN(v) {
				col = append(col, v)
			}
		}
		if len(col) == 0 {
			continue
		}
		sort.Float64s(col)
		q1 := quantileSorted(col, 0.25)
		q3 := quantileSorted(col, 0.75)
		iqr := q3 - q1
		lo, hi := q1-1.5*iqr, q3+1.5*iqr
		for i := 0; i < a.Rows; i++ {
			v := out.At(i, j)
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				out.Set(i, j, lo)
			} else if v > hi {
				out.Set(i, j, hi)
			}
		}
	}
	return out
}

// quantileSorted interpolates the q-quantile of sorted values.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Standardize scales each column to zero mean and unit variance. Columns
// with zero variance are left centered.
func Standardize(a *Matrix) *Matrix {
	mu := ColMeans(a)
	sd := Sqrt(ColVars(a))
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			d := a.At(i, j) - mu.Data[j]
			if sd.Data[j] > 0 {
				d /= sd.Data[j]
			}
			out.Set(i, j, d)
		}
	}
	return out
}

// MinMaxScale maps each column to [0,1]; constant columns become zero.
func MinMaxScale(a *Matrix) *Matrix {
	lo := ColMins(a)
	hi := ColMaxs(a)
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			r := hi.Data[j] - lo.Data[j]
			if r > 0 {
				out.Set(i, j, (a.At(i, j)-lo.Data[j])/r)
			}
		}
	}
	return out
}

// UnderSample balances a binary-labeled dataset by keeping all minority rows
// and a seeded random subset of the majority rows of equal count. y holds
// labels in {0,1} (or {-1,1}); returns the sampled X and y.
func UnderSample(x, y *Matrix, seed int64) (*Matrix, *Matrix) {
	var pos, neg []int
	for i := 0; i < y.Rows; i++ {
		if y.At(i, 0) > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	minority, majority := pos, neg
	if len(pos) > len(neg) {
		minority, majority = neg, pos
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(majority))
	keep := append([]int(nil), minority...)
	for i := 0; i < len(minority) && i < len(majority); i++ {
		keep = append(keep, majority[perm[i]])
	}
	sort.Ints(keep)
	ox := New(len(keep), x.Cols)
	oy := New(len(keep), 1)
	for r, idx := range keep {
		copy(ox.Data[r*x.Cols:(r+1)*x.Cols], x.Data[idx*x.Cols:(idx+1)*x.Cols])
		oy.Data[r] = y.At(idx, 0)
	}
	return ox, oy
}

// Bin performs equi-width binning of each column into nBins bins, producing
// bin codes 1..nBins (NaNs stay NaN).
func Bin(a *Matrix, nBins int) *Matrix {
	lo := ColMins(a)
	hi := ColMaxs(a)
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			v := a.At(i, j)
			if math.IsNaN(v) {
				out.Set(i, j, math.NaN())
				continue
			}
			r := hi.Data[j] - lo.Data[j]
			b := 1
			if r > 0 {
				b = int((v-lo.Data[j])/r*float64(nBins)) + 1
				if b > nBins {
					b = nBins
				}
			}
			out.Set(i, j, float64(b))
		}
	}
	return out
}

// Recode maps the distinct values of each column to dense codes 1..k in
// ascending value order (deterministic). NaNs stay NaN.
func Recode(a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		distinct := make(map[float64]struct{})
		for i := 0; i < a.Rows; i++ {
			if v := a.At(i, j); !math.IsNaN(v) {
				distinct[v] = struct{}{}
			}
		}
		keys := make([]float64, 0, len(distinct))
		for k := range distinct {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		codes := make(map[float64]float64, len(keys))
		for c, k := range keys {
			codes[k] = float64(c + 1)
		}
		for i := 0; i < a.Rows; i++ {
			v := a.At(i, j)
			if math.IsNaN(v) {
				out.Set(i, j, math.NaN())
			} else {
				out.Set(i, j, codes[v])
			}
		}
	}
	return out
}

// OneHot dummy-codes each column of integer codes 1..k into k indicator
// columns; the per-column domain sizes are taken from the data.
func OneHot(a *Matrix) *Matrix {
	domains := make([]int, a.Cols)
	total := 0
	for j := 0; j < a.Cols; j++ {
		maxC := 0
		for i := 0; i < a.Rows; i++ {
			if v := a.At(i, j); !math.IsNaN(v) && int(v) > maxC {
				maxC = int(v)
			}
		}
		domains[j] = maxC
		total += maxC
	}
	out := New(a.Rows, total)
	for i := 0; i < a.Rows; i++ {
		off := 0
		for j := 0; j < a.Cols; j++ {
			v := a.At(i, j)
			if !math.IsNaN(v) {
				c := int(v)
				if c >= 1 && c <= domains[j] {
					out.Set(i, off+c-1, 1)
				}
			}
			off += domains[j]
		}
	}
	return out
}

// ReplaceNaN substitutes NaNs with v.
func ReplaceNaN(a *Matrix, v float64) *Matrix {
	return Map(a, func(x float64) float64 {
		if math.IsNaN(x) {
			return v
		}
		return x
	})
}

// CountNaN returns the number of NaN cells.
func CountNaN(a *Matrix) int {
	n := 0
	for _, v := range a.Data {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// OneHotFixed dummy-codes integer codes 1..domain in every column into a
// fixed domain*cols width, independent of which codes appear in the data
// (needed for batch-wise encoding with shared downstream weights).
func OneHotFixed(a *Matrix, domain int) *Matrix {
	out := New(a.Rows, a.Cols*domain)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			v := a.At(i, j)
			if math.IsNaN(v) {
				continue
			}
			c := int(v)
			if c >= 1 && c <= domain {
				out.Set(i, j*domain+c-1, 1)
			}
		}
	}
	return out
}
