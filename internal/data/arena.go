package data

import (
	"fmt"
	"sort"
	"sync"
)

// Arena is a pooled, shape-keyed buffer allocator for kernel outputs on the
// hot path. Fused elementwise kernels draw their output buffers from it and
// the runtime returns those buffers at the planner's KindFree last-use
// points (or at block end when no plan covers the block), so steady-state
// elementwise chains run without touching the garbage collector.
//
// Buffers are pooled by cell count, not by exact Rows x Cols: the backing
// slice is flat, so a recycled 64x32 buffer serves a later 32x64 request.
// Get does NOT zero recycled buffers — callers must write every cell (the
// fused interpreter does). Matrices handed to long-lived owners (the
// lineage cache, the shared serving cache) must be announced via Escape so
// the arena never recycles storage that something else can still read.
//
// The arena registers with the memctl arbiter as one more Pool: Used is
// the retained free-list footprint, and Evict trims free shape classes
// (largest first, deterministically) — idle buffers are the only thing an
// arena can give back without breaking a live kernel.
//
// Methods are safe for concurrent use, though the expected discipline is
// the runtime driver's single-threaded execution loop; the lock exists for
// arbiter snapshots taken from other goroutines.
type Arena struct {
	mu     sync.Mutex
	budget int64
	free   map[int][]*Matrix // cell count -> idle buffers (LIFO)
	vended map[*Matrix]int   // outstanding buffers -> debug id
	used   int64             // bytes retained on free lists
	peak   int64

	gets    int64 // total Get calls
	reuses  int64 // Gets served from a free list
	puts    int64
	escapes int64
	evicted int64 // bytes trimmed by Evict
	debug   bool
	nextID  int
	events  []ArenaEvent
}

// DefaultArenaBudget bounds the bytes an arena retains on its free lists
// before it trims itself; the arbiter can trim further under pressure.
const DefaultArenaBudget = 8 << 20

// NewArena returns an empty arena retaining at most budget bytes of idle
// buffers (DefaultArenaBudget when budget <= 0).
func NewArena(budget int64) *Arena {
	if budget <= 0 {
		budget = DefaultArenaBudget
	}
	return &Arena{
		budget: budget,
		free:   map[int][]*Matrix{},
		vended: map[*Matrix]int{},
	}
}

// SetDebug toggles event recording for VerifyArenaTrace; tests enable it
// to assert that a whole workload's get/put/escape sequence is well formed.
func (a *Arena) SetDebug(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.debug = on
}

// Get returns an uninitialized rows x cols matrix, recycling an idle buffer
// of the same cell count when one exists. The contents of a recycled buffer
// are unspecified: callers must store to every cell.
func (a *Arena) Get(rows, cols int) *Matrix {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	cells := rows * cols
	var m *Matrix
	if fl := a.free[cells]; len(fl) > 0 {
		m = fl[len(fl)-1]
		a.free[cells] = fl[:len(fl)-1]
		a.used -= int64(cells) * 8
		m.Rows, m.Cols = rows, cols
		a.reuses++
	} else {
		m = &Matrix{Rows: rows, Cols: cols, Data: make([]float64, cells)}
	}
	id := a.nextID
	a.nextID++
	a.vended[m] = id
	if a.debug {
		a.events = append(a.events, ArenaEvent{Op: "get", ID: id})
	}
	return m
}

// Put returns a vended buffer to its shape class. Buffers the arena did not
// vend — or that have escaped to a long-lived owner — are ignored, so the
// runtime can call Put unconditionally at free points; with debug on the
// bad call is still recorded for VerifyArenaTrace.
func (a *Arena) Put(m *Matrix) {
	if m == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.vended[m]
	if !ok {
		if a.debug {
			a.events = append(a.events, ArenaEvent{Op: "put", ID: -1})
		}
		return
	}
	delete(a.vended, m)
	a.puts++
	cells := len(m.Data)
	a.free[cells] = append(a.free[cells], m)
	a.used += int64(cells) * 8
	if a.used > a.peak {
		a.peak = a.used
	}
	if a.debug {
		a.events = append(a.events, ArenaEvent{Op: "put", ID: id})
	}
	if a.used > a.budget {
		a.trimLocked(a.used - a.budget)
	}
}

// Escape abandons ownership of a vended buffer: it will never be recycled.
// Call it whenever a matrix is handed to an owner that outlives the block
// (the lineage cache, a serving-layer shared cache, a user-visible value).
func (a *Arena) Escape(m *Matrix) {
	if m == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.vended[m]
	if !ok {
		return
	}
	delete(a.vended, m)
	a.escapes++
	if a.debug {
		a.events = append(a.events, ArenaEvent{Op: "escape", ID: id})
	}
}

// Vended reports whether the arena currently owns m (vended, not yet put
// back or escaped).
func (a *Arena) Vended(m *Matrix) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.vended[m]
	return ok
}

// trimLocked drops idle buffers until at least need bytes are released,
// visiting shape classes largest-first (ties impossible: keys are unique)
// so eviction order is a pure function of arena contents.
func (a *Arena) trimLocked(need int64) int64 {
	keys := make([]int, 0, len(a.free))
	for c := range a.free {
		if len(a.free[c]) > 0 {
			keys = append(keys, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	var freed int64
	for _, c := range keys {
		fl := a.free[c]
		for len(fl) > 0 && freed < need {
			fl = fl[:len(fl)-1]
			freed += int64(c) * 8
		}
		if len(fl) == 0 {
			delete(a.free, c)
		} else {
			a.free[c] = fl
		}
		if freed >= need {
			break
		}
	}
	a.used -= freed
	a.evicted += freed
	return freed
}

// Stats returns cumulative counters: total gets, gets served by recycling,
// puts, and escapes.
func (a *Arena) Stats() (gets, reuses, puts, escapes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.reuses, a.puts, a.escapes
}

// Evicted returns the cumulative bytes trimmed from the free lists (by
// budget overflow or arbiter pressure).
func (a *Arena) Evicted() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.evicted
}

// Events returns a copy of the recorded trace (debug mode only).
func (a *Arena) Events() []ArenaEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ArenaEvent, len(a.events))
	copy(out, a.events)
	return out
}

// --- memctl.Pool surface -------------------------------------------------

// Name implements memctl.Pool.
func (a *Arena) Name() string { return "arena" }

// Used implements memctl.Pool: bytes retained on free lists. Vended buffers
// are live kernel outputs and not evictable, so they are not counted here.
func (a *Arena) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Budget implements memctl.Pool.
func (a *Arena) Budget() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// Peak implements memctl.PeakReporter: high-water mark of retained bytes.
func (a *Arena) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// ArenaVictim mirrors the fields memctl.Victim needs without importing
// memctl (data must stay dependency-free); the adapter lives in runtime.
type ArenaVictim struct {
	Cells int
	Count int
	Bytes int64
}

// FreeClasses lists idle shape classes, largest cell count first — the
// order Evict trims them in.
func (a *Arena) FreeClasses(max int) []ArenaVictim {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]int, 0, len(a.free))
	for c := range a.free {
		if len(a.free[c]) > 0 {
			keys = append(keys, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	if max > 0 && len(keys) > max {
		keys = keys[:max]
	}
	out := make([]ArenaVictim, 0, len(keys))
	for _, c := range keys {
		n := len(a.free[c])
		out = append(out, ArenaVictim{Cells: c, Count: n, Bytes: int64(c) * 8 * int64(n)})
	}
	return out
}

// Evict implements memctl.Pool: trim idle shape classes until need bytes
// are released (or nothing idle remains). Returns bytes freed.
func (a *Arena) Evict(need int64) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.trimLocked(need)
}

// Demote implements memctl.Pool. Idle arena buffers hold no values worth
// keeping in a lower tier, so the arena never demotes.
func (a *Arena) Demote(need int64) int64 { return 0 }

// --- trace checker (mirrors memplan.VerifyStream) -------------------------

// ArenaEvent is one step of an arena ownership trace: Op is "get", "put",
// "use", or "escape"; ID names the buffer. The runtime records get/put/
// escape in debug mode; tests may interleave explicit "use" events to model
// kernel reads.
type ArenaEvent struct {
	Op string
	ID int
}

// VerifyArenaTrace statically checks an ownership trace the way
// memplan.VerifyStream checks a rewritten instruction stream: every put
// must return a currently-vended buffer (no double-put, no put-of-unvended,
// no put-after-escape), and no buffer may be used after it was put back
// without an intervening get. Returns nil for a well-formed trace.
func VerifyArenaTrace(events []ArenaEvent) error {
	const (
		stVended = iota
		stFree
		stEscaped
	)
	state := map[int]int{}
	for i, e := range events {
		switch e.Op {
		case "get":
			if s, ok := state[e.ID]; ok && s == stVended {
				return fmt.Errorf("arena trace: event %d gets buffer %d twice without put", i, e.ID)
			}
			state[e.ID] = stVended
		case "put":
			s, ok := state[e.ID]
			if !ok || e.ID < 0 {
				return fmt.Errorf("arena trace: event %d puts unvended buffer %d", i, e.ID)
			}
			switch s {
			case stFree:
				return fmt.Errorf("arena trace: event %d double-puts buffer %d", i, e.ID)
			case stEscaped:
				return fmt.Errorf("arena trace: event %d puts escaped buffer %d", i, e.ID)
			}
			state[e.ID] = stFree
		case "use":
			s, ok := state[e.ID]
			if !ok {
				return fmt.Errorf("arena trace: event %d uses unvended buffer %d", i, e.ID)
			}
			if s == stFree {
				return fmt.Errorf("arena trace: event %d uses buffer %d after put (use-after-free)", i, e.ID)
			}
		case "escape":
			s, ok := state[e.ID]
			if !ok {
				return fmt.Errorf("arena trace: event %d escapes unvended buffer %d", i, e.ID)
			}
			if s == stFree {
				return fmt.Errorf("arena trace: event %d escapes buffer %d after put", i, e.ID)
			}
			state[e.ID] = stEscaped
		default:
			return fmt.Errorf("arena trace: event %d has unknown op %q", i, e.Op)
		}
	}
	return nil
}
