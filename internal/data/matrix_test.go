package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSmall returns a deterministic small matrix for property tests.
func randSmall(rng *rand.Rand, maxDim int) *Matrix {
	r := 1 + rng.Intn(maxDim)
	c := 1 + rng.Intn(maxDim)
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewAndAt(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.At(0, 0) != 0 {
		t.Fatal("Set/At mismatch")
	}
	if m.SizeBytes() != 48 {
		t.Fatalf("SizeBytes = %d, want 48", m.SizeBytes())
	}
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad slice length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if !s.IsScalar() || s.ScalarValue() != 3.5 {
		t.Fatal("Scalar roundtrip failed")
	}
}

func TestIdentity(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("I[%d,%d] = %g", r, c, i3.At(r, c))
			}
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a := Rand(5, 5, -1, 1, 1, 42)
	b := Rand(5, 5, -1, 1, 1, 42)
	c := Rand(5, 5, -1, 1, 1, 43)
	if !AllClose(a, b, 0) {
		t.Fatal("same seed should give identical matrices")
	}
	if AllClose(a, c, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestRandSparsity(t *testing.T) {
	m := Rand(100, 100, 1, 2, 0.1, 7)
	nnz := 0
	for _, v := range m.Data {
		if v != 0 {
			nnz++
		}
	}
	if nnz < 500 || nnz > 1500 {
		t.Fatalf("nnz = %d, want ~1000 for sparsity 0.1", nnz)
	}
}

func TestSeq(t *testing.T) {
	s := Seq(1, 2, 4)
	want := []float64{1, 3, 5, 7}
	for i, v := range want {
		if s.Data[i] != v {
			t.Fatalf("Seq[%d] = %g, want %g", i, s.Data[i], v)
		}
	}
}

func TestSliceAndBind(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s := m.Slice(0, 2, 1, 3)
	if s.Rows != 2 || s.Cols != 2 || s.At(1, 0) != 5 {
		t.Fatalf("Slice wrong: %v", s)
	}
	r := RBind(m, m)
	if r.Rows != 4 || r.At(2, 0) != 1 {
		t.Fatalf("RBind wrong: %v", r)
	}
	c := CBind(m, m)
	if c.Cols != 6 || c.At(1, 3) != 4 {
		t.Fatalf("CBind wrong: %v", c)
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Slice(0, 3, 0, 1)
}

func TestDiagRoundTrip(t *testing.T) {
	v := FromSlice(3, 1, []float64{1, 2, 3})
	d := Diag(v)
	if d.Rows != 3 || d.Cols != 3 || d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatalf("Diag(vector) wrong: %v", d)
	}
	back := Diag(d)
	if !AllClose(v, back, 0) {
		t.Fatal("Diag(Diag(v)) != v")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Ones(2, 2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAllCloseNaN(t *testing.T) {
	a := FromSlice(1, 2, []float64{math.NaN(), 1})
	b := FromSlice(1, 2, []float64{math.NaN(), 1})
	if !AllClose(a, b, 0) {
		t.Fatal("NaNs in the same position should compare equal")
	}
	c := FromSlice(1, 2, []float64{0, 1})
	if AllClose(a, c, 0) {
		t.Fatal("NaN vs 0 should differ")
	}
}

// Property: RBind then SliceRows recovers the parts.
func TestRBindSliceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSmall(rng, 4)
		b := New(1+rng.Intn(4), a.Cols)
		for i := range b.Data {
			b.Data[i] = rng.Float64()
		}
		r := RBind(a, b)
		return AllClose(r.SliceRows(0, a.Rows), a, 0) &&
			AllClose(r.SliceRows(a.Rows, a.Rows+b.Rows), b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
