package data

import (
	"strings"
	"testing"
)

func TestArenaGetPutRecycles(t *testing.T) {
	a := NewArena(1 << 20)
	m := a.Get(4, 8)
	if m.Rows != 4 || m.Cols != 8 || len(m.Data) != 32 {
		t.Fatalf("got %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	a.Put(m)
	// Same cell count, different shape: the flat buffer is reusable.
	n := a.Get(8, 4)
	if n != m {
		t.Errorf("expected the same backing matrix back")
	}
	if n.Rows != 8 || n.Cols != 4 {
		t.Errorf("recycled shape %dx%d, want 8x4", n.Rows, n.Cols)
	}
	gets, reuses, puts, _ := a.Stats()
	if gets != 2 || reuses != 1 || puts != 1 {
		t.Errorf("stats gets=%d reuses=%d puts=%d, want 2/1/1", gets, reuses, puts)
	}
}

func TestArenaEscapePreventsRecycle(t *testing.T) {
	a := NewArena(1 << 20)
	m := a.Get(4, 4)
	a.Escape(m)
	a.Put(m) // must be ignored: the buffer left arena ownership
	n := a.Get(4, 4)
	if n == m {
		t.Errorf("escaped buffer was recycled")
	}
	_, _, _, escapes := a.Stats()
	if escapes != 1 {
		t.Errorf("escapes = %d, want 1", escapes)
	}
}

func TestArenaBudgetTrims(t *testing.T) {
	a := NewArena(1024) // 128 floats retained at most
	big := a.Get(16, 8) // 128 cells = 1024 bytes
	sml := a.Get(4, 4)  // 16 cells = 128 bytes
	a.Put(sml)
	a.Put(big) // retaining both exceeds the budget; the largest class trims
	if a.Used() > 1024 {
		t.Errorf("retained %d bytes over budget 1024", a.Used())
	}
	if a.Evicted() == 0 {
		t.Errorf("no eviction recorded despite over-budget Put")
	}
}

func TestArenaEvictAndPoolShape(t *testing.T) {
	a := NewArena(1 << 20)
	ms := make([]*Matrix, 4)
	for i := range ms {
		ms[i] = a.Get(32, 32)
	}
	for _, m := range ms {
		a.Put(m)
	}
	if a.Name() != "arena" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.Used() == 0 || a.Peak() == 0 {
		t.Errorf("Used=%d Peak=%d, want non-zero", a.Used(), a.Peak())
	}
	classes := a.FreeClasses(8)
	if len(classes) != 1 || classes[0].Cells != 1024 || classes[0].Count != 4 {
		t.Errorf("FreeClasses = %+v", classes)
	}
	if freed := a.Evict(1); freed != 32*32*8 {
		t.Errorf("Evict(1) freed %d, want one whole buffer (%d)", freed, 32*32*8)
	}
	if freed := a.Evict(a.Used()); freed == 0 || a.Used() != 0 {
		t.Errorf("draining Evict freed %d, used now %d", freed, a.Used())
	}
	if a.Demote(1) != 0 {
		t.Errorf("arena Demote should be 0 (buffers hold no values)")
	}
}

// TestVerifyArenaTrace checks the debug-trace checker against each
// violation class, mirroring memplan.VerifyStream's role for free points.
func TestVerifyArenaTrace(t *testing.T) {
	ok := []ArenaEvent{
		{Op: "get", ID: 1}, {Op: "use", ID: 1}, {Op: "put", ID: 1},
		{Op: "get", ID: 1}, {Op: "escape", ID: 1},
	}
	if err := VerifyArenaTrace(ok); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []struct {
		name   string
		events []ArenaEvent
		want   string
	}{
		{"double-put",
			[]ArenaEvent{{Op: "get", ID: 1}, {Op: "put", ID: 1}, {Op: "put", ID: 1}},
			"double-put"},
		{"use-after-put",
			[]ArenaEvent{{Op: "get", ID: 1}, {Op: "put", ID: 1}, {Op: "use", ID: 1}},
			"after put"},
		{"put-unvended",
			[]ArenaEvent{{Op: "put", ID: -1}},
			"unvended"},
		{"escape-after-put",
			[]ArenaEvent{{Op: "get", ID: 1}, {Op: "put", ID: 1}, {Op: "escape", ID: 1}},
			"after put"},
		{"get-twice",
			[]ArenaEvent{{Op: "get", ID: 1}, {Op: "get", ID: 1}},
			"twice"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := VerifyArenaTrace(tc.events)
			if err == nil {
				t.Fatalf("violation not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestArenaDebugTraceClean runs real traffic with debug tracing on and
// checks the recorded event stream verifies cleanly.
func TestArenaDebugTraceClean(t *testing.T) {
	a := NewArena(1 << 20)
	a.SetDebug(true)
	m1 := a.Get(8, 8)
	m2 := a.Get(8, 8)
	a.Put(m1)
	m3 := a.Get(8, 8) // recycles m1's buffer under a fresh ID
	a.Escape(m2)
	a.Put(m3)
	if err := VerifyArenaTrace(a.Events()); err != nil {
		t.Errorf("live trace failed verification: %v", err)
	}
}
