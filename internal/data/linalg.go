package data

import (
	"fmt"
	"math"
)

// MatMul returns a * b using an ikj loop, sharded over rows of a: each
// worker produces a disjoint band of output rows with the serial
// instruction sequence, so the result is bitwise-identical to a serial run.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("data: matmul %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	n := b.Cols
	flops := 2 * float64(a.Rows) * float64(a.Cols) * float64(n)
	parallelFor(a.Rows, flops, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			oi := out.Data[i*n : (i+1)*n]
			for k, av := range ai {
				if av == 0 {
					continue
				}
				bk := b.Data[k*n : (k+1)*n]
				for j, bv := range bk {
					oi[j] += av * bv
				}
			}
		}
	})
	return out
}

// transposeBlock is the tile edge for the cache-blocked transpose: 64x64
// float64 tiles (two 32 KB panels) fit comfortably in L1/L2.
const transposeBlock = 64

// Transpose returns a^T using cache-blocked tiles so both the read and the
// write stream touch whole cache lines, sharded over output rows.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	parallelFor(a.Cols, float64(a.Cells()), func(lo, hi int) {
		for jb := lo; jb < hi; jb += transposeBlock {
			jEnd := min(jb+transposeBlock, hi)
			for ib := 0; ib < a.Rows; ib += transposeBlock {
				iEnd := min(ib+transposeBlock, a.Rows)
				for j := jb; j < jEnd; j++ {
					oj := out.Data[j*a.Rows:]
					for i := ib; i < iEnd; i++ {
						oj[i] = a.Data[i*a.Cols+j]
					}
				}
			}
		}
	})
	return out
}

// TSMM returns a^T * a (the self matrix product used by linRegDS) without
// materializing the transpose. Sharding is over output rows (columns of a):
// each worker scans the full input but accumulates only its band of the
// Gram matrix, in the same ascending-row order as the serial loop, keeping
// the result bitwise-identical without a partial-merge step.
func TSMM(a *Matrix) *Matrix {
	n := a.Cols
	out := New(n, n)
	flops := float64(a.Rows) * float64(n) * float64(n)
	parallelFor(n, flops, func(lo, hi int) {
		for r := 0; r < a.Rows; r++ {
			row := a.Data[r*n : (r+1)*n]
			for i := lo; i < hi; i++ {
				vi := row[i]
				if vi == 0 {
					continue
				}
				oi := out.Data[i*n : (i+1)*n]
				for j := i; j < n; j++ {
					oi[j] += vi * row[j]
				}
			}
		}
	})
	parallelFor(n, float64(n)*float64(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < i; j++ {
				out.Data[i*n+j] = out.Data[j*n+i]
			}
		}
	})
	return out
}

// Solve solves A x = b for square A. For symmetric positive definite A it
// uses Cholesky; otherwise it falls back to LU with partial pivoting.
func Solve(a, b *Matrix) *Matrix {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("data: solve with non-square A %dx%d", a.Rows, a.Cols))
	}
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("data: solve dim mismatch A %dx%d, b %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if x, ok := solveCholesky(a, b); ok {
		return x
	}
	return solveLU(a, b)
}

// solveCholesky attempts a Cholesky factorization A = L L^T and solves via
// forward/backward substitution. Returns ok=false if A is not SPD.
func solveCholesky(a, b *Matrix) (*Matrix, bool) {
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Solve L y = b, then L^T x = y, one right-hand side at a time.
	x := New(n, b.Cols)
	y := make([]float64, n)
	for c := 0; c < b.Cols; c++ {
		for i := 0; i < n; i++ {
			s := b.At(i, c)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * y[k]
			}
			y[i] = s / l.At(i, i)
		}
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, s/l.At(i, i))
		}
	}
	return x, true
}

// solveLU solves via LU decomposition with partial pivoting.
func solveLU(a, b *Matrix) *Matrix {
	n := a.Rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			panic("data: singular matrix in solve")
		}
		if p != k {
			perm[p], perm[k] = perm[k], perm[p]
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
		}
		piv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / piv
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	x := New(n, b.Cols)
	y := make([]float64, n)
	for c := 0; c < b.Cols; c++ {
		for i := 0; i < n; i++ {
			s := b.At(perm[i], c)
			for k := 0; k < i; k++ {
				s -= lu.At(i, k) * y[k]
			}
			y[i] = s
		}
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= lu.At(i, k) * x.At(k, c)
			}
			x.Set(i, c, s/lu.At(i, i))
		}
	}
	return x
}

// Norm2 returns the Frobenius norm of a.
func Norm2(a *Matrix) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// PCA returns the top-k principal component loadings (cols x k) of a,
// computed from the covariance matrix via power iteration with deflation.
// Deterministic given the seed.
func PCA(a *Matrix, k int, seed int64) *Matrix {
	mu := ColMeans(a)
	centered := Sub(a, mu)
	cov := MulScalar(TSMM(centered), 1/float64(a.Rows))
	n := cov.Rows
	if k > n {
		k = n
	}
	comps := New(n, k)
	work := cov.Clone()
	for c := 0; c < k; c++ {
		v := Rand(n, 1, -1, 1, 1, seed+int64(c))
		v = MulScalar(v, 1/Norm2(v))
		var lambda float64
		for it := 0; it < 100; it++ {
			w := MatMul(work, v)
			nw := Norm2(w)
			if nw == 0 {
				break
			}
			v = MulScalar(w, 1/nw)
			lambda = nw
		}
		for i := 0; i < n; i++ {
			comps.Set(i, c, v.Data[i])
		}
		// Deflate: work -= lambda v v^T.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				work.Set(i, j, work.At(i, j)-lambda*v.Data[i]*v.Data[j])
			}
		}
	}
	return comps
}
