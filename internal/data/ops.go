package data

import (
	"fmt"
	"math"
)

// broadcastable reports how b aligns to a: equal shape, scalar, row vector
// matching a's cols, or column vector matching a's rows.
func broadcastIndex(a, b *Matrix, i, j int) float64 {
	switch {
	case b.Rows == a.Rows && b.Cols == a.Cols:
		return b.At(i, j)
	case b.IsScalar():
		return b.Data[0]
	case b.Rows == 1 && b.Cols == a.Cols:
		return b.At(0, j)
	case b.Cols == 1 && b.Rows == a.Rows:
		return b.At(i, 0)
	default:
		panic(fmt.Sprintf("data: shapes %dx%d and %dx%d not broadcastable",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// outShape picks the result shape for a binary op with broadcasting.
func outShape(a, b *Matrix) (*Matrix, *Matrix) {
	// The larger operand defines the shape; scalars and vectors broadcast.
	if a.Cells() >= b.Cells() {
		return a, b
	}
	return b, a
}

// binary applies f cellwise with broadcasting, sharded over output rows.
// When shapes are swapped the function arguments keep their original order.
// The no-broadcast case takes a direct flat loop over the backing slices —
// the per-cell At/Set index arithmetic and the broadcast dispatch are pure
// overhead when both operands share the output shape.
func binary(a, b *Matrix, f func(x, y float64) float64) *Matrix {
	big, small := outShape(a, b)
	out := New(big.Rows, big.Cols)
	if a.Rows == b.Rows && a.Cols == b.Cols {
		ad, bd, od := a.Data, b.Data, out.Data
		parallelFor(len(od), float64(len(od)), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = f(ad[i], bd[i])
			}
		})
		return out
	}
	swapped := big != a
	parallelFor(big.Rows, float64(big.Cells()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < big.Cols; j++ {
				x := big.At(i, j)
				y := broadcastIndex(big, small, i, j)
				if swapped {
					x, y = y, x
				}
				out.Set(i, j, f(x, y))
			}
		}
	})
	return out
}

// Add returns a + b with broadcasting.
func Add(a, b *Matrix) *Matrix { return binary(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a - b with broadcasting.
func Sub(a, b *Matrix) *Matrix { return binary(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns the elementwise product with broadcasting.
func Mul(a, b *Matrix) *Matrix { return binary(a, b, func(x, y float64) float64 { return x * y }) }

// Div returns the elementwise quotient with broadcasting.
func Div(a, b *Matrix) *Matrix { return binary(a, b, func(x, y float64) float64 { return x / y }) }

// Min returns the elementwise minimum with broadcasting.
func MinElem(a, b *Matrix) *Matrix { return binary(a, b, math.Min) }

// MaxElem returns the elementwise maximum with broadcasting.
func MaxElem(a, b *Matrix) *Matrix { return binary(a, b, math.Max) }

// Greater returns 1/0 indicators of a > b with broadcasting.
func Greater(a, b *Matrix) *Matrix {
	return binary(a, b, func(x, y float64) float64 {
		if x > y {
			return 1
		}
		return 0
	})
}

// Less returns 1/0 indicators of a < b with broadcasting.
func Less(a, b *Matrix) *Matrix {
	return binary(a, b, func(x, y float64) float64 {
		if x < y {
			return 1
		}
		return 0
	})
}

// Map applies f to each cell, sharded over the flat cell index.
func Map(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	parallelFor(len(a.Data), float64(len(a.Data)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = f(a.Data[i])
		}
	})
	return out
}

// AddScalar returns a + s via a direct loop (no per-element closure call).
func AddScalar(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	ad, od := a.Data, out.Data
	parallelFor(len(od), float64(len(od)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = ad[i] + s
		}
	})
	return out
}

// MulScalar returns a * s via a direct loop.
func MulScalar(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	ad, od := a.Data, out.Data
	parallelFor(len(od), float64(len(od)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = ad[i] * s
		}
	})
	return out
}

// PowScalar returns a^s elementwise. The s==2 case squares directly; both
// branches run direct loops rather than per-element closures.
func PowScalar(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	ad, od := a.Data, out.Data
	if s == 2 {
		parallelFor(len(od), float64(len(od)), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = ad[i] * ad[i]
			}
		})
		return out
	}
	parallelFor(len(od), 10*float64(len(od)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = math.Pow(ad[i], s)
		}
	})
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Matrix) *Matrix { return Map(a, math.Exp) }

// Log returns the natural log elementwise.
func Log(a *Matrix) *Matrix { return Map(a, math.Log) }

// Sqrt returns the square root elementwise.
func Sqrt(a *Matrix) *Matrix { return Map(a, math.Sqrt) }

// Abs returns the absolute value elementwise.
func Abs(a *Matrix) *Matrix { return Map(a, math.Abs) }

// Sigmoid returns 1/(1+e^-a) elementwise.
func Sigmoid(a *Matrix) *Matrix {
	return Map(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Sum returns the sum of all cells, skipping NaNs is NOT done (use NanSum).
func Sum(a *Matrix) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all cells.
func Mean(a *Matrix) float64 { return Sum(a) / float64(a.Cells()) }

// Min returns the smallest cell.
func Min(a *Matrix) float64 {
	m := math.Inf(1)
	for _, v := range a.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest cell.
func Max(a *Matrix) float64 {
	m := math.Inf(-1)
	for _, v := range a.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// RowSums returns an n x 1 vector of row sums, sharded over rows.
func RowSums(a *Matrix) *Matrix {
	out := New(a.Rows, 1)
	parallelFor(a.Rows, float64(a.Cells()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for j := 0; j < a.Cols; j++ {
				s += a.At(i, j)
			}
			out.Data[i] = s
		}
	})
	return out
}

// ColSums returns a 1 x m vector of column sums. Sharding is over columns:
// each output cell accumulates rows in ascending order exactly like the
// serial loop, so sums are bitwise-identical.
func ColSums(a *Matrix) *Matrix {
	out := New(1, a.Cols)
	parallelFor(a.Cols, float64(a.Cells()), func(lo, hi int) {
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for j := lo; j < hi; j++ {
				out.Data[j] += ai[j]
			}
		}
	})
	return out
}

// ColMeans returns a 1 x m vector of column means.
func ColMeans(a *Matrix) *Matrix {
	out := ColSums(a)
	inv := 1 / float64(a.Rows)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return out
}

// ColVars returns a 1 x m vector of column variances (population),
// sharded over columns with row-ascending accumulation.
func ColVars(a *Matrix) *Matrix {
	mu := ColMeans(a)
	out := New(1, a.Cols)
	inv := 1 / float64(a.Rows)
	parallelFor(a.Cols, 2*float64(a.Cells()), func(lo, hi int) {
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for j := lo; j < hi; j++ {
				d := ai[j] - mu.Data[j]
				out.Data[j] += d * d
			}
		}
		for j := lo; j < hi; j++ {
			out.Data[j] *= inv
		}
	})
	return out
}

// ColMaxs returns a 1 x m vector of column maxima, sharded over columns.
func ColMaxs(a *Matrix) *Matrix {
	out := Fill(1, a.Cols, math.Inf(-1))
	parallelFor(a.Cols, float64(a.Cells()), func(lo, hi int) {
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for j := lo; j < hi; j++ {
				if v := ai[j]; v > out.Data[j] {
					out.Data[j] = v
				}
			}
		}
	})
	return out
}

// ColMins returns a 1 x m vector of column minima, sharded over columns.
func ColMins(a *Matrix) *Matrix {
	out := Fill(1, a.Cols, math.Inf(1))
	parallelFor(a.Cols, float64(a.Cells()), func(lo, hi int) {
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for j := lo; j < hi; j++ {
				if v := ai[j]; v < out.Data[j] {
					out.Data[j] = v
				}
			}
		}
	})
	return out
}

// RowMaxIndex returns, per row, the index (0-based) of the maximal cell,
// sharded over rows.
func RowMaxIndex(a *Matrix) *Matrix {
	out := New(a.Rows, 1)
	parallelFor(a.Rows, float64(a.Cells()), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best, arg := math.Inf(-1), 0
			for j := 0; j < a.Cols; j++ {
				if v := a.At(i, j); v > best {
					best, arg = v, j
				}
			}
			out.Data[i] = float64(arg)
		}
	})
	return out
}
