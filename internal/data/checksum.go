package data

import (
	"hash/fnv"
	"math"
)

// Checksum returns a content fingerprint of the matrix: an FNV-1a hash over
// the dimensions and the raw bit patterns of every cell. Two matrices with
// equal dimensions and bitwise-equal values (including NaN payloads) hash
// identically. The serving layer combines input checksums with lineage
// hashes so cross-tenant reuse only matches sub-programs computed from the
// same data, not merely the same variable names.
func (m *Matrix) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(m.Rows))
	put(uint64(m.Cols))
	for _, v := range m.Data {
		put(math.Float64bits(v))
	}
	return h.Sum64()
}
