package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulBasic(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !AllClose(c, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := Rand(4, 4, -1, 1, 1, 1)
	if !AllClose(MatMul(a, Identity(4)), a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if !AllClose(MatMul(Identity(4), a), a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: (AB)C == A(BC).
func TestMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandNorm(m, k, 0, 1, seed)
		b := RandNorm(k, n, 0, 1, seed+1)
		c := RandNorm(n, p, 0, 1, seed+2)
		return AllClose(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and (AB)^T = B^T A^T.
func TestTransposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandNorm(m, k, 0, 1, seed)
		b := RandNorm(k, n, 0, 1, seed+1)
		if !AllClose(Transpose(Transpose(a)), a, 0) {
			return false
		}
		return AllClose(Transpose(MatMul(a, b)), MatMul(Transpose(b), Transpose(a)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: TSMM(A) == A^T A.
func TestTSMMMatchesMatMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := RandNorm(m, n, 0, 1, seed)
		return AllClose(TSMM(a), MatMul(Transpose(a), a), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve returns x with A x == b, for SPD and general matrices.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		// SPD case: A = M^T M + n*I.
		m := RandNorm(n, n, 0, 1, seed)
		spd := Add(TSMM(m), MulScalar(Identity(n), float64(n)))
		b := RandNorm(n, 1, 0, 1, seed+1)
		x := Solve(spd, b)
		if !AllClose(MatMul(spd, x), b, 1e-6) {
			return false
		}
		// General (possibly non-SPD) case.
		g := Sub(RandNorm(n, n, 0, 1, seed+2), MulScalar(Identity(n), 3))
		x2 := Solve(g, b)
		return AllClose(MatMul(g, x2), b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMultipleRHS(t *testing.T) {
	a := FromSlice(2, 2, []float64{4, 1, 1, 3})
	b := FromSlice(2, 2, []float64{1, 0, 0, 1})
	x := Solve(a, b)
	if !AllClose(MatMul(a, x), b, 1e-10) {
		t.Fatal("solve with matrix RHS failed")
	}
}

func TestSolveSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on singular matrix")
		}
	}()
	Solve(Zeros(2, 2), Ones(2, 1))
}

func TestNorm2(t *testing.T) {
	if got := Norm2(FromSlice(1, 2, []float64{3, 4})); got != 5 {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
}

func TestPCAReconstruction(t *testing.T) {
	// Data along one dominant direction: first component must capture it.
	n := 200
	x := New(n, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		tv := rng.NormFloat64() * 10
		x.Set(i, 0, tv)
		x.Set(i, 1, 2*tv+rng.NormFloat64()*0.01)
		x.Set(i, 2, rng.NormFloat64()*0.01)
	}
	comps := PCA(x, 1, 3)
	if comps.Rows != 3 || comps.Cols != 1 {
		t.Fatalf("PCA dims = %dx%d", comps.Rows, comps.Cols)
	}
	// Direction should be ~ (1,2,0)/sqrt(5) up to sign.
	r := comps.At(1, 0) / comps.At(0, 0)
	if r < 1.9 || r > 2.1 {
		t.Fatalf("dominant direction ratio = %g, want ~2", r)
	}
}

// naiveTranspose is the pre-tiling column-strided reference, kept for the
// blocked-transpose regression test and benchmark baseline.
func naiveTranspose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// TestTransposeBlockedMatchesNaive pins the cache-blocked transpose to the
// naive loop across shapes that straddle tile boundaries.
func TestTransposeBlockedMatchesNaive(t *testing.T) {
	for _, sh := range []struct{ r, c int }{
		{1, 1}, {1, 200}, {200, 1}, {63, 65}, {64, 64}, {65, 63}, {128, 1000}, {515, 259},
	} {
		a := RandNorm(sh.r, sh.c, 0, 1, int64(sh.r*7+sh.c))
		want, got := naiveTranspose(a), Transpose(a)
		if !AllClose(want, got, 0) {
			t.Fatalf("blocked transpose differs from naive at %dx%d", sh.r, sh.c)
		}
	}
}

// BenchmarkTranspose compares the naive column-strided loop against the
// cache-blocked (and optionally parallel) implementation.
func BenchmarkTranspose(b *testing.B) {
	a := RandNorm(2048, 2048, 0, 1, 11)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveTranspose(a)
		}
	})
	b.Run("blocked-serial", func(b *testing.B) {
		SetParallelism(1)
		defer SetParallelism(0)
		for i := 0; i < b.N; i++ {
			Transpose(a)
		}
	})
	b.Run("blocked-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Transpose(a)
		}
	})
}
