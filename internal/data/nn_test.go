package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReLU(t *testing.T) {
	m := FromSlice(1, 4, []float64{-2, 0, 1, 3})
	want := FromSlice(1, 4, []float64{0, 0, 1, 3})
	if !AllClose(ReLU(m), want, 0) {
		t.Fatal("ReLU wrong")
	}
}

func TestReLUBackward(t *testing.T) {
	x := FromSlice(1, 3, []float64{-1, 2, 0})
	dout := FromSlice(1, 3, []float64{5, 5, 5})
	want := FromSlice(1, 3, []float64{0, 5, 0})
	if !AllClose(ReLUBackward(x, dout), want, 0) {
		t.Fatal("ReLUBackward wrong")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		m := RandNorm(3, 5, 0, 3, seed)
		s := Softmax(m)
		for i := 0; i < s.Rows; i++ {
			sum := 0.0
			for j := 0; j < s.Cols; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	m := FromSlice(1, 2, []float64{1000, 1001})
	s := Softmax(m)
	if math.IsNaN(s.At(0, 0)) || math.IsNaN(s.At(0, 1)) {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestAffine(t *testing.T) {
	x := FromSlice(2, 2, []float64{1, 2, 3, 4})
	w := Identity(2)
	b := FromSlice(1, 2, []float64{10, 20})
	got := Affine(x, w, b)
	want := FromSlice(2, 2, []float64{11, 22, 13, 24})
	if !AllClose(got, want, 0) {
		t.Fatalf("Affine = %v", got)
	}
}

func TestDropoutDeterministicAndScaled(t *testing.T) {
	m := Ones(100, 10)
	a := Dropout(m, 0.3, 7)
	b := Dropout(m, 0.3, 7)
	if !AllClose(a, b, 0) {
		t.Fatal("dropout not deterministic for same seed")
	}
	// Survivors are scaled by 1/(1-p); overall mean stays ~1.
	mean := Mean(a)
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("dropout mean = %g, want ~1", mean)
	}
	zero := 0
	for _, v := range a.Data {
		if v == 0 {
			zero++
		}
	}
	if zero < 200 || zero > 400 {
		t.Fatalf("dropped %d of 1000, want ~300", zero)
	}
}

func TestDropoutEdges(t *testing.T) {
	m := Ones(2, 2)
	if !AllClose(Dropout(m, 0, 1), m, 0) {
		t.Fatal("p=0 should be identity")
	}
	if !AllClose(Dropout(m, 1, 1), Zeros(2, 2), 0) {
		t.Fatal("p=1 should be all zeros")
	}
}

func TestConv2DKnown(t *testing.T) {
	// 1 image 1x3x3, identity-ish kernel 1x2x2.
	x := FromSlice(1, 9, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	w := FromSlice(1, 4, []float64{1, 0, 0, 1}) // sums main diagonal of each 2x2 patch
	out := Conv2D(x, w, 1, 3, 3, 2, 2, 1, 0)
	want := FromSlice(1, 4, []float64{6, 8, 12, 14})
	if !AllClose(out, want, 0) {
		t.Fatalf("Conv2D = %v, want %v", out, want)
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	x := Ones(1, 9) // 1x3x3 of ones
	w := Ones(1, 9) // one 3x3 ones filter
	// Same-padding: center output is full 9, corners see 4 cells.
	out := Conv2D(x, w, 1, 3, 3, 3, 3, 1, 1)
	if out.Cols != 9 {
		t.Fatalf("padded output cols = %d, want 9", out.Cols)
	}
	if out.Data[4] != 9 || out.Data[0] != 4 {
		t.Fatalf("padded conv wrong: center=%g corner=%g", out.Data[4], out.Data[0])
	}
	// Stride 2, no pad: single output.
	out2 := Conv2D(x, w, 1, 3, 3, 3, 3, 2, 0)
	if out2.Cols != 1 || out2.Data[0] != 9 {
		t.Fatalf("strided conv wrong: %v", out2)
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// 2 input channels, 2 output filters; filter 1 picks channel 0,
	// filter 2 picks channel 1.
	x := FromSlice(1, 8, []float64{
		1, 2, 3, 4, // channel 0 (2x2)
		10, 20, 30, 40, // channel 1
	})
	w := FromSlice(2, 8, []float64{
		1, 1, 1, 1, 0, 0, 0, 0,
		0, 0, 0, 0, 1, 1, 1, 1,
	})
	out := Conv2D(x, w, 2, 2, 2, 2, 2, 1, 0)
	want := FromSlice(1, 2, []float64{10, 100})
	if !AllClose(out, want, 0) {
		t.Fatalf("multi-channel conv = %v, want %v", out, want)
	}
}

func TestMaxPool(t *testing.T) {
	x := FromSlice(1, 16, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out := MaxPool(x, 1, 4, 4, 2, 2, 2)
	want := FromSlice(1, 4, []float64{6, 8, 14, 16})
	if !AllClose(out, want, 0) {
		t.Fatalf("MaxPool = %v, want %v", out, want)
	}
}

// Property: conv with an all-zero filter yields zeros; ReLU is idempotent.
func TestNNProperties(t *testing.T) {
	f := func(seed int64) bool {
		x := RandNorm(2, 16, 0, 1, seed) // 2 images 1x4x4
		w := Zeros(1, 4)
		out := Conv2D(x, w, 1, 4, 4, 2, 2, 1, 0)
		for _, v := range out.Data {
			if v != 0 {
				return false
			}
		}
		r := ReLU(x)
		return AllClose(ReLU(r), r, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
