package data

import (
	"math"
	"testing"
)

func fusedEq(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: cell %d = %v (%x), want %v (%x)", label, i,
				got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

func TestParseFusedValid(t *testing.T) {
	fp, err := ParseFused("+($0,$1);exp(@0);sigmoid(@1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Steps) != 3 || fp.Leaves != 2 {
		t.Fatalf("steps %d leaves %d", len(fp.Steps), fp.Leaves)
	}
	if got := fp.Ops(); len(got) != 3 || got[0] != "+" || got[2] != "sigmoid" {
		t.Fatalf("ops %v", got)
	}
}

func TestParseFusedPowDefault(t *testing.T) {
	fp, err := ParseFused("pow($0)")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Steps[0].P != 2 {
		t.Fatalf("pow default P = %v, want 2 (matching the kernel's attr default)", fp.Steps[0].P)
	}
	fp, err = ParseFused("pow{p=3}($0)")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Steps[0].P != 3 || fp.Steps[0].PStr != "3" {
		t.Fatalf("pow P=%v PStr=%q", fp.Steps[0].P, fp.Steps[0].PStr)
	}
}

func TestParseFusedRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"frobnicate($0)",
		"+($0)",         // wrong arity
		"exp($0,$1)",    // wrong arity
		"+($0,@1)",      // forward step reference
		"+($0,@0)",      // self reference
		"exp(%0)",       // bad operand syntax
		"+($0,$1);;",    // empty step
		"+{p=2}($0,$1)", // attr on non-pow op
	} {
		if _, err := ParseFused(bad); err == nil {
			t.Errorf("ParseFused(%q) accepted", bad)
		}
	}
}

// TestEvalFusedMatchesKernels runs fused programs against the equivalent
// kernel compositions: results must be bitwise identical, including the
// broadcast variants the fast path handles via broadcastIndex.
func TestEvalFusedMatchesKernels(t *testing.T) {
	X := RandNorm(13, 7, 0, 1, 5)
	Y := RandNorm(13, 7, 1, 2, 6)
	R := RandNorm(1, 7, 0, 1, 7)
	C := RandNorm(13, 1, 0, 1, 8)
	S := RandNorm(1, 1, 0, 1, 9)

	cases := []struct {
		name   string
		prog   string
		leaves []*Matrix
		want   func() *Matrix
	}{
		{"chain", "+($0,$1);exp(@0);sigmoid(@1)", []*Matrix{X, Y},
			func() *Matrix { return Sigmoid(Exp(Add(X, Y))) }},
		{"row-broadcast", "*($0,$1);relu(@0)", []*Matrix{X, R},
			func() *Matrix { return ReLU(Mul(X, R)) }},
		{"col-broadcast", "-($0,$1);abs(@0);sqrt(@1)", []*Matrix{X, C},
			func() *Matrix { return Sqrt(Abs(Sub(X, C))) }},
		{"scalar-broadcast", "/($0,$1);log(@0)", []*Matrix{X, S},
			func() *Matrix { return Log(Div(X, S)) }},
		{"swapped-args", "-($0,$1)", []*Matrix{R, X},
			func() *Matrix { return Sub(R, X) }},
		{"compare", ">($0,$1);min(@0,$0);max(@1,$1)", []*Matrix{X, Y},
			func() *Matrix { return MaxElem(MinElem(Greater(X, Y), X), Y) }},
		{"pow", "pow{p=3}($0);pow(@0)", []*Matrix{X},
			func() *Matrix { return PowScalar(PowScalar(X, 3), 2) }},
		{"diamond", "exp($0);log($0);+(@0,@1)", []*Matrix{X},
			func() *Matrix { return Add(Exp(X), Log(X)) }},
		// Non-uniform step shapes (vector intermediate) take the stepwise
		// fallback; results must still match exactly.
		{"vector-intermediate", "exp($1);*($0,@0)", []*Matrix{X, R},
			func() *Matrix { return Mul(X, Exp(R)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fp, err := ParseFused(tc.prog)
			if err != nil {
				t.Fatal(err)
			}
			fusedEq(t, EvalFused(fp, tc.leaves, nil), tc.want(), "no arena")
			a := NewArena(1 << 20)
			fusedEq(t, EvalFused(fp, tc.leaves, a), tc.want(), "arena")
		})
	}
}

// TestEvalFusedParallelismInvariant checks bitwise identity across kernel
// fan-outs, with a matrix large enough that parallelFor actually shards.
func TestEvalFusedParallelismInvariant(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	X := RandNorm(600, 500, 0, 1, 11)
	R := RandNorm(1, 500, 0, 1, 12)
	fp, err := ParseFused("*($0,$1);sigmoid(@0);+(@1,$0)")
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(1)
	want := EvalFused(fp, []*Matrix{X, R}, nil)
	for _, par := range []int{4, 8} {
		SetParallelism(par)
		fusedEq(t, EvalFused(fp, []*Matrix{X, R}, nil), want, "parallel")
	}
}

// TestEvalFusedArenaRecycles checks that repeated evaluations with an arena
// reuse the same backing buffer once it is put back.
func TestEvalFusedArenaRecycles(t *testing.T) {
	X := RandNorm(32, 32, 0, 1, 3)
	fp, err := ParseFused("exp($0);sigmoid(@0)")
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(1 << 20)
	out1 := EvalFused(fp, []*Matrix{X}, a)
	a.Put(out1)
	out2 := EvalFused(fp, []*Matrix{X}, a)
	if out2 != out1 {
		t.Errorf("second evaluation did not recycle the returned buffer")
	}
	_, reuses, _, _ := a.Stats()
	if reuses != 1 {
		t.Errorf("reuses = %d, want 1", reuses)
	}
}

// BenchmarkFusedChain pins the tentpole allocation property: a fused
// three-op chain with an arena allocates at most 2 allocations per
// evaluation at steady state (the CI alloc gate enforces the ceiling).
// Serial parallelism keeps the measurement free of shard-closure noise.
func BenchmarkFusedChain(b *testing.B) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(1)
	X := RandNorm(256, 256, 0, 1, 3)
	Y := RandNorm(256, 256, 1, 2, 4)
	fp, err := ParseFused("+($0,$1);exp(@0);sigmoid(@1)")
	if err != nil {
		b.Fatal(err)
	}
	leaves := []*Matrix{X, Y}
	a := NewArena(1 << 20)
	out := EvalFused(fp, leaves, a) // warm the shape class
	a.Put(out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = EvalFused(fp, leaves, a)
		a.Put(out)
	}
}

// BenchmarkUnfusedChain is the same computation through the ordinary
// kernels — the before side of the fused/unfused allocation comparison.
func BenchmarkUnfusedChain(b *testing.B) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(1)
	X := RandNorm(256, 256, 0, 1, 3)
	Y := RandNorm(256, 256, 1, 2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Sigmoid(Exp(Add(X, Y)))
	}
}
