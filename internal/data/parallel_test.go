package data

import (
	"math"
	"sync"
	"testing"
)

// withParallelism runs f under the given shard count and restores the
// GOMAXPROCS default afterwards.
func withParallelism(n int, f func()) {
	SetParallelism(n)
	defer SetParallelism(0)
	f()
}

// bitwiseEqual reports exact bit-level equality (NaN-safe) of two matrices.
func bitwiseEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func TestShardRangeDisjointCover(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 17, 100, 1023} {
		for _, shards := range []int{1, 2, 3, 4, 7, 16} {
			if shards > n {
				continue
			}
			covered := make([]int, n)
			prevHi := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardRange(n, shards, s)
				if lo != prevHi {
					t.Fatalf("n=%d shards=%d s=%d: lo=%d, want %d", n, shards, s, lo, prevHi)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d shards=%d: ranges end at %d", n, shards, prevHi)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d shards=%d: index %d covered %d times", n, shards, i, c)
				}
			}
		}
	}
}

func TestParallelForRunsEveryIndexOnce(t *testing.T) {
	withParallelism(7, func() {
		const n = 1000
		var mu sync.Mutex
		hits := make([]int, n)
		// Large work estimate forces the parallel path.
		parallelFor(n, 1e9, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				mu.Lock()
				hits[i]++
				mu.Unlock()
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d ran %d times", i, h)
			}
		}
	})
}

func TestParallelForSmallWorkStaysSerial(t *testing.T) {
	withParallelism(8, func() {
		calls := 0
		parallelFor(1000, float64(MinParallelWork-1), func(lo, hi int) {
			calls++
			if lo != 0 || hi != 1000 {
				t.Fatalf("serial path got shard [%d,%d)", lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("serial path ran %d shards", calls)
		}
	})
}

func TestSetParallelismClamp(t *testing.T) {
	SetParallelism(5)
	if Parallelism() != 5 {
		t.Fatalf("Parallelism = %d, want 5", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism = %d, want >= 1", Parallelism())
	}
}

// TestSerialParallelEquivalence asserts bitwise-identical outputs between
// the serial path and several worker counts, across odd shapes: row/column
// vectors, empty matrices, and dimensions that do not divide evenly into
// shards. This is the determinism contract of the parallel kernel layer.
func TestSerialParallelEquivalence(t *testing.T) {
	type kernel struct {
		name string
		run  func() *Matrix
	}
	// Shapes chosen so larger cases clear MinParallelWork and genuinely
	// fan out, while degenerate ones exercise the edge handling.
	shapes := []struct{ r, c int }{{1, 300}, {300, 1}, {0, 7}, {7, 0}, {33, 65}, {257, 129}}
	kernels := func() []kernel {
		var ks []kernel
		for _, sh := range shapes {
			a := Rand(sh.r, sh.c, -1, 1, 0.9, int64(sh.r*1000+sh.c))
			b := RandNorm(sh.c, 255, 0, 1, int64(sh.r+sh.c))
			d := RandNorm(sh.r, sh.c, 0, 2, 99)
			ks = append(ks,
				kernel{"MatMul", func() *Matrix { return MatMul(a, b) }},
				kernel{"TSMM", func() *Matrix { return TSMM(a) }},
				kernel{"Transpose", func() *Matrix { return Transpose(a) }},
				kernel{"Add", func() *Matrix { return Add(a, d) }},
				kernel{"AddRowVec", func() *Matrix {
					if a.Rows == 0 {
						return a.Clone()
					}
					return Add(a, a.SliceRows(0, 1))
				}},
				kernel{"Exp", func() *Matrix { return Exp(a) }},
				kernel{"Dropout", func() *Matrix { return Dropout(a, 0.3, 17) }},
				kernel{"Softmax", func() *Matrix { return Softmax(a) }},
				kernel{"ReLUBackward", func() *Matrix { return ReLUBackward(a, d) }},
				kernel{"RowSums", func() *Matrix { return RowSums(a) }},
				kernel{"ColSums", func() *Matrix { return ColSums(a) }},
				kernel{"RowMaxIndex", func() *Matrix { return RowMaxIndex(a) }},
			)
			if sh.r > 0 {
				ks = append(ks,
					kernel{"ColVars", func() *Matrix { return ColVars(a) }},
					kernel{"ColMaxs", func() *Matrix { return ColMaxs(a) }},
				)
			}
		}
		// Conv/pool on a TLVIS-like batch with a non-divisible row count.
		x := RandNorm(37, 3*16*16, 0, 1, 5)
		w := RandNorm(8, 3*3*3, 0, 1, 6)
		ks = append(ks,
			kernel{"Conv2D", func() *Matrix { return Conv2D(x, w, 3, 16, 16, 3, 3, 1, 1) }},
			kernel{"MaxPool", func() *Matrix { return MaxPool(x, 3, 16, 16, 2, 2, 2) }},
		)
		return ks
	}

	var serial []*Matrix
	withParallelism(1, func() {
		for _, k := range kernels() {
			serial = append(serial, k.run())
		}
	})
	for _, p := range []int{2, 3, 7, 16} {
		withParallelism(p, func() {
			for i, k := range kernels() {
				got := k.run()
				if !bitwiseEqual(serial[i], got) {
					t.Errorf("par=%d kernel #%d %s: output differs from serial", p, i, k.name)
				}
			}
		})
	}
}

// TestDropoutMaskIndependentOfParallelism pins the per-row RNG contract:
// the mask of any single row must not depend on how rows are sharded.
func TestDropoutMaskIndependentOfParallelism(t *testing.T) {
	m := Ones(64, 128)
	var want *Matrix
	withParallelism(1, func() { want = Dropout(m, 0.5, 42) })
	withParallelism(5, func() {
		got := Dropout(m, 0.5, 42)
		if !bitwiseEqual(want, got) {
			t.Fatal("dropout mask depends on parallelism")
		}
	})
	// And a sanity check on the rate.
	kept := 0
	for _, v := range want.Data {
		if v != 0 {
			kept++
		}
	}
	frac := float64(kept) / float64(want.Cells())
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("keep fraction %.3f far from 0.5", frac)
	}
}

// BenchmarkKernelsParallel measures wall-clock speedup of the parallel
// kernel layer over the forced-serial path. On a multi-core runner the
// parallel variants should show >=2x for 512x512 matmul and the TLVIS-like
// conv forward pass (on a single-core machine both paths coincide).
func BenchmarkKernelsParallel(b *testing.B) {
	a512 := RandNorm(512, 512, 0, 1, 1)
	b512 := RandNorm(512, 512, 0, 1, 2)
	tall := RandNorm(4096, 256, 0, 1, 3)
	imgs := RandNorm(64, 3*32*32, 0, 1, 4)
	filt := RandNorm(32, 3*3*3, 0, 1, 5)
	cases := []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", 0}}
	for _, c := range cases {
		b.Run("MatMul512/"+c.name, func(b *testing.B) {
			withParallelism(c.par, func() {
				for i := 0; i < b.N; i++ {
					MatMul(a512, b512)
				}
			})
		})
		b.Run("TSMM4096x256/"+c.name, func(b *testing.B) {
			withParallelism(c.par, func() {
				for i := 0; i < b.N; i++ {
					TSMM(tall)
				}
			})
		})
		b.Run("Conv2D-TLVIS/"+c.name, func(b *testing.B) {
			withParallelism(c.par, func() {
				for i := 0; i < b.N; i++ {
					Conv2D(imgs, filt, 3, 32, 32, 3, 3, 1, 1)
				}
			})
		})
	}
}
