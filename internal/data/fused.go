package data

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Fused elementwise interpreter. The compiler's fusion pass collapses a
// chain of elementwise/unary/scalar instructions into one instruction
// whose "prog" attribute encodes the chain as a tiny step program:
//
//	step    := op [ "{p=" raw "}" ] "(" arg ("," arg)* ")"
//	arg     := "$" leafIndex | "@" stepIndex
//	program := step (";" step)*
//
// Leaves are the fused instruction's inputs (matrices or scalar literals);
// "@k" references the value of an earlier step. The last step is the
// program's output. EvalFused executes the whole program as one loop with
// zero intermediate matrices when every step has the output's shape, and
// falls back to op-at-a-time evaluation with the ordinary kernels when
// runtime shapes drifted from the compile-time estimates (e.g. a clamped
// sliceRows) — both paths are bitwise-identical to unfused execution.

// FusedArg references either a leaf input (Leaf >= 0) or an earlier step's
// value (Leaf < 0, Step set).
type FusedArg struct {
	Leaf int
	Step int
}

// FusedStep is one constituent op of a fused program.
type FusedStep struct {
	Op   string
	PStr string // raw pow exponent as it appeared in the source attrs
	P    float64
	Args []FusedArg

	code uint8 // opcode resolved at parse time (no string dispatch per cell)
}

// Opcode enum for the per-cell inner loop.
const (
	opAdd uint8 = iota
	opSub
	opMul
	opDiv
	opMin
	opMax
	opGt
	opLt
	opExp
	opLog
	opSqrt
	opAbs
	opSigmoid
	opReLU
	opPow
	opBad
)

func opCode(op string) uint8 {
	switch op {
	case "+":
		return opAdd
	case "-":
		return opSub
	case "*":
		return opMul
	case "/":
		return opDiv
	case "min":
		return opMin
	case "max":
		return opMax
	case ">":
		return opGt
	case "<":
		return opLt
	case "exp":
		return opExp
	case "log":
		return opLog
	case "sqrt":
		return opSqrt
	case "abs":
		return opAbs
	case "sigmoid":
		return opSigmoid
	case "relu":
		return opReLU
	case "pow":
		return opPow
	default:
		return opBad
	}
}

// FusedProgram is a parsed fused-elementwise chain. The shape scratch makes
// repeated EvalFused calls allocation-free; a program must therefore not be
// evaluated concurrently with itself (the runtime driver is single-threaded
// per session, and each session parses its own programs).
type FusedProgram struct {
	Steps  []FusedStep
	Leaves int // number of leaf inputs referenced

	shapeR, shapeC []int        // per-step shape scratch, sized on first Eval
	fetch          []fusedFetch // per-arg fetch plan scratch (2 slots per step)
}

// fusedFetch is one argument's resolved access mode for the current
// evaluation: how to read the value at output cell (i, j).
type fusedFetch struct {
	mode uint8 // fetch mode (fetchEqual..fetchStep)
	idx  int   // leaf index (fetch modes) or step index (fetchStep)
}

const (
	fetchEqual uint8 = iota // leaf has the output shape: flat index
	fetchScalar
	fetchRow // 1 x cols leaf: index by j
	fetchCol // rows x 1 leaf: index by i
	fetchStep
	fetchNone // unary second slot
)

// ParseFused parses the "prog" attribute of a fused instruction.
func ParseFused(prog string) (*FusedProgram, error) {
	fp := &FusedProgram{}
	if prog == "" {
		return nil, fmt.Errorf("data: empty fused program")
	}
	for si, stepStr := range strings.Split(prog, ";") {
		open := strings.IndexByte(stepStr, '(')
		if open < 0 || !strings.HasSuffix(stepStr, ")") {
			return nil, fmt.Errorf("data: fused step %d %q: missing argument list", si, stepStr)
		}
		head, argStr := stepStr[:open], stepStr[open+1:len(stepStr)-1]
		st := FusedStep{}
		if brace := strings.IndexByte(head, '{'); brace >= 0 {
			param := head[brace:]
			head = head[:brace]
			if !strings.HasPrefix(param, "{p=") || !strings.HasSuffix(param, "}") {
				return nil, fmt.Errorf("data: fused step %d: bad parameter %q", si, param)
			}
			st.PStr = param[3 : len(param)-1]
			p, err := strconv.ParseFloat(st.PStr, 64)
			if err != nil {
				return nil, fmt.Errorf("data: fused step %d: bad exponent %q", si, st.PStr)
			}
			st.P = p
		}
		st.Op = head
		st.code = opCode(head)
		if st.PStr != "" && st.Op != "pow" {
			return nil, fmt.Errorf("data: fused step %d: op %q takes no parameter", si, st.Op)
		}
		if st.Op == "pow" && st.PStr == "" {
			st.P = 2 // pow defaults to squaring, matching the unfused attr default
		}
		for _, a := range strings.Split(argStr, ",") {
			if len(a) < 2 {
				return nil, fmt.Errorf("data: fused step %d: bad arg %q", si, a)
			}
			idx, err := strconv.Atoi(a[1:])
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("data: fused step %d: bad arg %q", si, a)
			}
			switch a[0] {
			case '$':
				st.Args = append(st.Args, FusedArg{Leaf: idx})
				if idx+1 > fp.Leaves {
					fp.Leaves = idx + 1
				}
			case '@':
				if idx >= si {
					return nil, fmt.Errorf("data: fused step %d: forward reference @%d", si, idx)
				}
				st.Args = append(st.Args, FusedArg{Leaf: -1, Step: idx})
			default:
				return nil, fmt.Errorf("data: fused step %d: bad arg %q", si, a)
			}
		}
		if n := len(st.Args); fusedBinary(st.Op) && n != 2 || !fusedBinary(st.Op) && n != 1 {
			return nil, fmt.Errorf("data: fused step %d: op %q with %d args", si, st.Op, n)
		}
		if !fusedBinary(st.Op) && !fusedUnary(st.Op) {
			return nil, fmt.Errorf("data: fused step %d: unknown op %q", si, st.Op)
		}
		fp.Steps = append(fp.Steps, st)
	}
	return fp, nil
}

// Ops returns the constituent opcodes in step order, for rendering fused
// instructions in traces and plan dumps.
func (fp *FusedProgram) Ops() []string {
	out := make([]string, len(fp.Steps))
	for i, st := range fp.Steps {
		out[i] = st.Op
	}
	return out
}

func fusedBinary(op string) bool {
	switch op {
	case "+", "-", "*", "/", "min", "max", ">", "<":
		return true
	}
	return false
}

func fusedUnary(op string) bool {
	switch op {
	case "exp", "log", "sqrt", "abs", "sigmoid", "relu", "pow":
		return true
	}
	return false
}

// fusedStepVal computes one step's value from its (already broadcast)
// operands, replicating each unfused kernel's arithmetic exactly.
func fusedStepVal(code uint8, p, x, y float64) float64 {
	switch code {
	case opAdd:
		return x + y
	case opSub:
		return x - y
	case opMul:
		return x * y
	case opDiv:
		return x / y
	case opMin:
		return math.Min(x, y)
	case opMax:
		return math.Max(x, y)
	case opGt:
		if x > y {
			return 1
		}
		return 0
	case opLt:
		if x < y {
			return 1
		}
		return 0
	case opExp:
		return math.Exp(x)
	case opLog:
		return math.Log(x)
	case opSqrt:
		return math.Sqrt(x)
	case opAbs:
		return math.Abs(x)
	case opSigmoid:
		return 1 / (1 + math.Exp(-x))
	case opReLU:
		if x > 0 {
			return x
		}
		return 0
	case opPow:
		if p == 2 {
			return x * x
		}
		return math.Pow(x, p)
	default:
		panic(fmt.Sprintf("data: fused step with unknown opcode %d", code))
	}
}

// fetchVal reads one argument value at output cell (i, j); base is i*cols.
// The modes reproduce broadcastIndex's indexing exactly.
func fetchVal(f fusedFetch, leaves []*Matrix, vals []float64, base, i, j int) float64 {
	switch f.mode {
	case fetchEqual:
		return leaves[f.idx].Data[base+j]
	case fetchScalar:
		return leaves[f.idx].Data[0]
	case fetchRow:
		return leaves[f.idx].Data[j]
	case fetchCol:
		return leaves[f.idx].Data[i]
	default: // fetchStep
		return vals[f.idx]
	}
}

// simulateShapes fills the per-step shape scratch from the actual leaf
// shapes using the same rule as outShape (larger cell count wins, ties keep
// the first argument) and reports whether every step — not just the last —
// lands on the final output shape, which is the precondition for the
// single-loop fast path.
func (fp *FusedProgram) simulateShapes(leaves []*Matrix) (rows, cols int, uniform bool) {
	if fp.shapeR == nil {
		fp.shapeR = make([]int, len(fp.Steps))
		fp.shapeC = make([]int, len(fp.Steps))
	}
	argShape := func(a FusedArg) (int, int) {
		if a.Leaf >= 0 {
			return leaves[a.Leaf].Rows, leaves[a.Leaf].Cols
		}
		return fp.shapeR[a.Step], fp.shapeC[a.Step]
	}
	for i, st := range fp.Steps {
		r, c := argShape(st.Args[0])
		if len(st.Args) == 2 {
			r2, c2 := argShape(st.Args[1])
			if r2*c2 > r*c {
				r, c = r2, c2
			}
		}
		fp.shapeR[i], fp.shapeC[i] = r, c
	}
	last := len(fp.Steps) - 1
	rows, cols = fp.shapeR[last], fp.shapeC[last]
	for i := range fp.Steps {
		if fp.shapeR[i] != rows || fp.shapeC[i] != cols {
			return rows, cols, false
		}
	}
	return rows, cols, true
}

// EvalFused executes a fused program over the given leaf matrices. When all
// step shapes match the output shape the whole chain runs as one loop with
// zero intermediate matrices, drawing the output buffer from the arena when
// one is provided; otherwise it falls back to op-at-a-time evaluation with
// the ordinary kernels. Both paths produce bitwise-identical results to
// executing the constituent instructions one by one, at any parallelism.
func EvalFused(fp *FusedProgram, leaves []*Matrix, arena *Arena) *Matrix {
	if len(leaves) < fp.Leaves {
		panic(fmt.Sprintf("data: fused program wants %d leaves, got %d", fp.Leaves, len(leaves)))
	}
	rows, cols, uniform := fp.simulateShapes(leaves)
	if !uniform {
		return fp.evalStepwise(leaves)
	}
	var out *Matrix
	if arena != nil {
		out = arena.Get(rows, cols)
	} else {
		out = New(rows, cols)
	}
	steps := fp.Steps
	// Resolve each argument's broadcast mode against the output shape once
	// per evaluation; the per-cell loop then runs on integer dispatch only.
	// Mode resolution mirrors broadcastIndex's case order (equal, scalar,
	// row, col) including its panic for non-broadcastable shapes.
	if fp.fetch == nil {
		fp.fetch = make([]fusedFetch, 2*len(steps))
	}
	for k := range steps {
		st := &steps[k]
		for ai := 0; ai < 2; ai++ {
			f := fusedFetch{mode: fetchNone}
			if ai < len(st.Args) {
				a := st.Args[ai]
				if a.Leaf < 0 {
					f = fusedFetch{mode: fetchStep, idx: a.Step}
				} else {
					b := leaves[a.Leaf]
					switch {
					case b.Rows == rows && b.Cols == cols:
						f = fusedFetch{mode: fetchEqual, idx: a.Leaf}
					case b.IsScalar():
						f = fusedFetch{mode: fetchScalar, idx: a.Leaf}
					case b.Rows == 1 && b.Cols == cols:
						f = fusedFetch{mode: fetchRow, idx: a.Leaf}
					case b.Cols == 1 && b.Rows == rows:
						f = fusedFetch{mode: fetchCol, idx: a.Leaf}
					default:
						panic(fmt.Sprintf("data: shapes %dx%d and %dx%d not broadcastable",
							rows, cols, b.Rows, b.Cols))
					}
				}
			}
			fp.fetch[2*k+ai] = f
		}
	}
	fetch := fp.fetch
	last := len(steps) - 1
	flops := float64(rows*cols) * float64(len(steps))
	parallelFor(rows, flops, func(lo, hi int) {
		vals := make([]float64, len(steps))
		for i := lo; i < hi; i++ {
			base := i * cols
			for j := 0; j < cols; j++ {
				for k := range steps {
					st := &steps[k]
					x := fetchVal(fetch[2*k], leaves, vals, base, i, j)
					var y float64
					if f := fetch[2*k+1]; f.mode != fetchNone {
						y = fetchVal(f, leaves, vals, base, i, j)
					}
					vals[k] = fusedStepVal(st.code, st.P, x, y)
				}
				out.Data[base+j] = vals[last]
			}
		}
	})
	return out
}

// evalStepwise runs the program one constituent kernel at a time — the
// bitwise reference semantics, used when runtime shapes are not uniform.
func (fp *FusedProgram) evalStepwise(leaves []*Matrix) *Matrix {
	vals := make([]*Matrix, len(fp.Steps))
	arg := func(a FusedArg) *Matrix {
		if a.Leaf >= 0 {
			return leaves[a.Leaf]
		}
		return vals[a.Step]
	}
	for i, st := range fp.Steps {
		a := arg(st.Args[0])
		if fusedBinary(st.Op) {
			vals[i] = binKernel(st.Op)(a, arg(st.Args[1]))
			continue
		}
		switch st.Op {
		case "exp":
			vals[i] = Exp(a)
		case "log":
			vals[i] = Log(a)
		case "sqrt":
			vals[i] = Sqrt(a)
		case "abs":
			vals[i] = Abs(a)
		case "sigmoid":
			vals[i] = Sigmoid(a)
		case "relu":
			vals[i] = ReLU(a)
		case "pow":
			vals[i] = PowScalar(a, st.P)
		}
	}
	return vals[len(vals)-1]
}

// binKernel maps a binary opcode to its exported kernel.
func binKernel(op string) func(a, b *Matrix) *Matrix {
	switch op {
	case "+":
		return Add
	case "-":
		return Sub
	case "*":
		return Mul
	case "/":
		return Div
	case "min":
		return MinElem
	case "max":
		return MaxElem
	case ">":
		return Greater
	case "<":
		return Less
	default:
		panic(fmt.Sprintf("data: no binary kernel for %q", op))
	}
}
