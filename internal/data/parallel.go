package data

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic parallel kernel layer. Hot kernels shard their work by
// output rows across a package-level worker pool; every output element is
// produced by exactly one worker running the same instruction sequence (and
// in particular the same floating-point accumulation order) as the serial
// loop, so results are bitwise-identical to the serial path for any
// parallelism setting. Shard boundaries are a pure function of (n, shards),
// never of scheduling, which keeps the design's determinism guarantee
// (DESIGN.md §4.4) intact.

// MinParallelWork is the estimated-FLOP threshold below which parallel
// entry points take the serial path. Small inputs must not pay fan-out
// overhead: the Figure 11(a) small-input regimes are measured on matrices
// far below this threshold and keep their shapes.
const MinParallelWork = 1 << 18

// parallelism is the configured shard count, defaulting to GOMAXPROCS.
var parallelism atomic.Int32

func init() { parallelism.Store(int32(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the number of shards (and the maximum worker fan-out)
// used by the parallel kernels. n <= 0 resets to runtime.GOMAXPROCS.
// Results are bitwise-identical for every value of n.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the configured shard count.
func Parallelism() int { return int(parallelism.Load()) }

// The pool is a fixed set of GOMAXPROCS workers fed by an unbuffered
// channel, started lazily on first parallel call. Submission uses a
// non-blocking send: if no worker is free (e.g. a kernel invoked from
// inside another parallel region), the shard runs inline on the submitting
// goroutine, which makes nested parallelism deadlock-free by construction.
var (
	poolOnce sync.Once
	poolCh   chan func()
)

func ensurePool() {
	poolOnce.Do(func() {
		poolCh = make(chan func())
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				for f := range poolCh {
					f()
				}
			}()
		}
	})
}

// shardRange splits [0,n) into shards contiguous near-equal ranges and
// returns the s-th. Earlier shards get the remainder, exactly like Spark's
// rowsOfPart, so boundaries are reproducible.
func shardRange(n, shards, s int) (lo, hi int) {
	base, rem := n/shards, n%shards
	lo = s*base + min(s, rem)
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// parallelFor runs body over disjoint shards of [0,n). work is the
// estimated total FLOPs of the loop; below MinParallelWork (or with
// parallelism 1) the whole range runs serially on the caller. Workers never
// receive overlapping ranges, so kernels that write only rows [lo,hi) are
// race-free without locks.
func parallelFor(n int, work float64, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Parallelism()
	if p <= 1 || n < 2 || work < MinParallelWork {
		body(0, n)
		return
	}
	shards := p
	if shards > n {
		shards = n
	}
	ensurePool()
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		lo, hi := shardRange(n, shards, s)
		f := func() {
			defer wg.Done()
			body(lo, hi)
		}
		select {
		case poolCh <- f:
		default:
			f()
		}
	}
	lo, hi := shardRange(n, shards, 0)
	body(lo, hi)
	wg.Wait()
}

// ParallelFor exposes the worker pool to other packages (the Spark
// partition prewarm); semantics are identical to parallelFor.
func ParallelFor(n int, work float64, body func(lo, hi int)) { parallelFor(n, work, body) }
