package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddBroadcasting(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := FromSlice(1, 3, []float64{10, 20, 30})
	col := FromSlice(2, 1, []float64{100, 200})
	s := Scalar(1000)

	got := Add(a, row)
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !AllClose(got, want, 0) {
		t.Fatalf("row broadcast: %v", got)
	}
	got = Add(a, col)
	want = FromSlice(2, 3, []float64{101, 102, 103, 204, 205, 206})
	if !AllClose(got, want, 0) {
		t.Fatalf("col broadcast: %v", got)
	}
	got = Add(a, s)
	if got.At(1, 2) != 1006 {
		t.Fatalf("scalar broadcast: %v", got)
	}
}

func TestSubOrderPreservedWhenSwapped(t *testing.T) {
	// Small operand first: the result must still be a - b elementwise.
	a := Scalar(10)
	b := FromSlice(1, 3, []float64{1, 2, 3})
	got := Sub(a, b)
	want := FromSlice(1, 3, []float64{9, 8, 7})
	if !AllClose(got, want, 0) {
		t.Fatalf("Sub(scalar, vec) = %v, want %v", got, want)
	}
	got = Div(Scalar(12), FromSlice(1, 2, []float64{3, 4}))
	want = FromSlice(1, 2, []float64{4, 3})
	if !AllClose(got, want, 0) {
		t.Fatalf("Div(scalar, vec) = %v, want %v", got, want)
	}
}

func TestIncompatibleShapesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2, 3), New(3, 2))
}

func TestAggregates(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if Sum(m) != 21 || Mean(m) != 3.5 || Min(m) != 1 || Max(m) != 6 {
		t.Fatal("scalar aggregates wrong")
	}
	if !AllClose(RowSums(m), FromSlice(2, 1, []float64{6, 15}), 0) {
		t.Fatal("RowSums wrong")
	}
	if !AllClose(ColSums(m), FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatal("ColSums wrong")
	}
	if !AllClose(ColMeans(m), FromSlice(1, 3, []float64{2.5, 3.5, 4.5}), 0) {
		t.Fatal("ColMeans wrong")
	}
	if !AllClose(ColMins(m), FromSlice(1, 3, []float64{1, 2, 3}), 0) {
		t.Fatal("ColMins wrong")
	}
	if !AllClose(ColMaxs(m), FromSlice(1, 3, []float64{4, 5, 6}), 0) {
		t.Fatal("ColMaxs wrong")
	}
}

func TestColVars(t *testing.T) {
	m := FromSlice(2, 2, []float64{0, 1, 2, 1})
	got := ColVars(m)
	want := FromSlice(1, 2, []float64{1, 0})
	if !AllClose(got, want, 1e-12) {
		t.Fatalf("ColVars = %v, want %v", got, want)
	}
}

func TestRowMaxIndex(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 9, 3, 7, 2, 5})
	got := RowMaxIndex(m)
	if got.At(0, 0) != 1 || got.At(1, 0) != 0 {
		t.Fatalf("RowMaxIndex = %v", got)
	}
}

func TestComparisonOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 5, 3})
	b := FromSlice(1, 3, []float64{2, 2, 3})
	if !AllClose(Greater(a, b), FromSlice(1, 3, []float64{0, 1, 0}), 0) {
		t.Fatal("Greater wrong")
	}
	if !AllClose(Less(a, b), FromSlice(1, 3, []float64{1, 0, 0}), 0) {
		t.Fatal("Less wrong")
	}
	if !AllClose(MinElem(a, b), FromSlice(1, 3, []float64{1, 2, 3}), 0) {
		t.Fatal("MinElem wrong")
	}
	if !AllClose(MaxElem(a, b), FromSlice(1, 3, []float64{2, 5, 3}), 0) {
		t.Fatal("MaxElem wrong")
	}
}

func TestUnaryMaps(t *testing.T) {
	m := FromSlice(1, 3, []float64{0, 1, 4})
	if !AllClose(Sqrt(m), FromSlice(1, 3, []float64{0, 1, 2}), 0) {
		t.Fatal("Sqrt wrong")
	}
	if !AllClose(PowScalar(m, 2), FromSlice(1, 3, []float64{0, 1, 16}), 0) {
		t.Fatal("PowScalar wrong")
	}
	if !AllClose(Abs(FromSlice(1, 2, []float64{-3, 2})), FromSlice(1, 2, []float64{3, 2}), 0) {
		t.Fatal("Abs wrong")
	}
	e := Exp(Scalar(1))
	if math.Abs(e.ScalarValue()-math.E) > 1e-12 {
		t.Fatal("Exp wrong")
	}
	if math.Abs(Log(Scalar(math.E)).ScalarValue()-1) > 1e-12 {
		t.Fatal("Log wrong")
	}
}

func TestSigmoidRange(t *testing.T) {
	m := Sigmoid(FromSlice(1, 3, []float64{-100, 0, 100}))
	if m.At(0, 0) > 1e-10 || math.Abs(m.At(0, 1)-0.5) > 1e-12 || m.At(0, 2) < 1-1e-10 {
		t.Fatalf("Sigmoid = %v", m)
	}
}

// Property: Add is commutative and Sub(a,a) is zero.
func TestAddSubProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSmall(rng, 5)
		b := New(a.Rows, a.Cols)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		if !AllClose(Add(a, b), Add(b, a), 1e-12) {
			return false
		}
		return AllClose(Sub(a, a), Zeros(a.Rows, a.Cols), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum(a) + Sum(b) == Sum(Add(a,b)) for equal shapes.
func TestSumLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSmall(rng, 6)
		b := New(a.Rows, a.Cols)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		return math.Abs(Sum(a)+Sum(b)-Sum(Add(a, b))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
