package costs

import "math"

// Thresholds are the compiler's static placement cut-offs, derived from a
// cost model's break-even points instead of free-standing constants.
type Thresholds struct {
	// OpMemBudget is the operation-memory bytes above which operators
	// compile to Spark.
	OpMemBudget int64
	// GPUMinCells is the minimum output cell count for starting a GPU
	// chain.
	GPUMinCells int
}

// The simulation-scale anchors: the hand-calibrated thresholds every seed
// baseline was pinned under (1 MB plays the role of the paper's 7 GB;
// 4096 cells the smallest profitable GPU chain start). DeriveThresholds
// scales the anchors by the ratio of the model's break-even points to
// Default()'s, so DeriveThresholds(Default()) reproduces the anchors
// exactly while a model with, say, double the Spark job overhead moves
// the CP/Spark cut proportionally higher.
const (
	anchorOpMemBudget = 1 << 20
	anchorGPUMinCells = 4096
	// transWeight is the transcendental elementwise flop weight
	// (ElemwiseFlops weight ~10 for exp/log), the op class whose GPU
	// crossover the GPU anchor models.
	transWeight = 10
)

// sparkBreakEvenCells is the unit-weight cell count at which local compute
// equals the Spark job launch overhead — the scale where shipping the
// operator to the cluster starts paying for itself.
func sparkBreakEvenCells(m *Model) float64 {
	adv := 1/m.CPUFlops - 1/m.SparkFlops
	if adv <= 0 {
		return math.Inf(1)
	}
	return m.SparkJobOverhead / adv
}

// gpuBreakEvenCells is the transcendental-weight cell count at which local
// compute equals the GPU fixed overheads (allocation, kernel launch, copy
// latency).
func gpuBreakEvenCells(m *Model) float64 {
	adv := transWeight/m.CPUFlops - transWeight/m.GPUFlops
	if adv <= 0 {
		return math.Inf(1)
	}
	return (m.CudaMalloc + m.KernelLaunch + m.CopyLatency) / adv
}

// DeriveThresholds computes placement thresholds for a model by scaling
// the simulation anchors with the model's break-even points relative to
// Default(). A backend whose break-even diverges (it never pays off under
// the model) keeps the anchor: static placement still needs a finite cut,
// and adaptive mode is the tool for cost-true decisions.
func DeriveThresholds(m *Model) Thresholds {
	ref := Default()
	t := Thresholds{OpMemBudget: anchorOpMemBudget, GPUMinCells: anchorGPUMinCells}
	if r := sparkBreakEvenCells(m) / sparkBreakEvenCells(ref); usableRatio(r) {
		t.OpMemBudget = scalePositive(anchorOpMemBudget, r)
	}
	if r := gpuBreakEvenCells(m) / gpuBreakEvenCells(ref); usableRatio(r) {
		t.GPUMinCells = int(scalePositive(anchorGPUMinCells, r))
	}
	return t
}

func usableRatio(r float64) bool {
	return r > 0 && !math.IsInf(r, 0) && !math.IsNaN(r)
}

// scalePositive scales v by r, clamped to [1, 2^61] so derived thresholds
// stay positive and overflow-free.
func scalePositive(v int64, r float64) int64 {
	s := float64(v) * r
	if s < 1 {
		return 1
	}
	if s > float64(int64(1)<<61) {
		return int64(1) << 61
	}
	return int64(s)
}
