package costs

import (
	"testing"
	"testing/quick"
)

func TestDefaultCalibration(t *testing.T) {
	m := Default()
	// Table 2: Spark exchange bandwidth 15 GB/s, H2D 6.1 GB/s.
	if m.SparkExchangeBW != 15e9 {
		t.Errorf("SparkExchangeBW = %g, want 15e9", m.SparkExchangeBW)
	}
	if m.H2DBW != 6.1e9 {
		t.Errorf("H2DBW = %g, want 6.1e9", m.H2DBW)
	}
	// Figure 2(d) shape: for a 128x1000 affine output, alloc+free should be
	// a few times the kernel compute, and D2H copy larger still.
	compute := Compute(MatMulFlops(128, 1000, 1000), m.GPUFlops)
	allocFree := m.CudaMalloc + m.CudaFree
	copyT := Transfer(128*1000*8, m.D2HBW, m.CopyLatency)
	if allocFree < 2*compute || allocFree > 10*compute {
		t.Errorf("alloc+free/compute = %.2f, want within [2,10]", allocFree/compute)
	}
	if copyT < 4*compute || copyT > 16*compute {
		t.Errorf("copy/compute = %.2f, want within [4,16]", copyT/compute)
	}
	// Probing should cost at least as much as tracing (Figure 11(a)).
	if m.Probe < m.Trace {
		t.Errorf("Probe (%g) < Trace (%g)", m.Probe, m.Trace)
	}
}

func TestMatMulFlops(t *testing.T) {
	if got := MatMulFlops(2, 3, 4); got != 48 {
		t.Fatalf("MatMulFlops(2,3,4) = %g, want 48", got)
	}
}

func TestSolveFlops(t *testing.T) {
	if got := SolveFlops(3); got < 17 || got > 19 {
		t.Fatalf("SolveFlops(3) = %g, want ~18", got)
	}
}

func TestConv2DFlops(t *testing.T) {
	// 1 image, 1 in-channel, 1 out-channel, 2x2 output, 3x3 kernel.
	if got := Conv2DFlops(1, 1, 1, 2, 2, 3, 3); got != 72 {
		t.Fatalf("Conv2DFlops = %g, want 72", got)
	}
}

func TestTransferZeroSize(t *testing.T) {
	if got := Transfer(0, 1e9, 5e-6); got != 5e-6 {
		t.Fatalf("Transfer(0) = %g, want latency only", got)
	}
}

func TestComputeNonNegative(t *testing.T) {
	f := func(flops float64) bool { return Compute(flops, 1e9) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferMonotoneInSize(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return Transfer(x, 1e9, 1e-6) <= Transfer(y, 1e9, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
