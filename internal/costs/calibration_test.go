package costs

import (
	"encoding/json"
	"math"
	"testing"
)

// fakeReuse is a deterministic ReuseSource for unit tests.
type fakeReuse []struct {
	op           string
	backend      int
	class        int
	probes, hits int64
}

func (f fakeReuse) Tallies(fn func(op string, backend, class int, probes, hits int64)) {
	for _, r := range f {
		fn(r.op, r.backend, r.class, r.probes, r.hits)
	}
}

func TestShapeClass(t *testing.T) {
	cases := []struct {
		cells int64
		want  int
	}{{-1, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}, {1 << 40, 40}}
	for _, c := range cases {
		if got := ShapeClass(c.cells); got != c.want {
			t.Errorf("ShapeClass(%d) = %d, want %d", c.cells, got, c.want)
		}
	}
}

func TestCalibrationEpochZero(t *testing.T) {
	c := NewCalibration(Default())
	if c.Epoch() != 0 {
		t.Fatalf("fresh calibration epoch = %d", c.Epoch())
	}
	if *c.Effective() != *Default() {
		t.Fatalf("fresh effective model differs from base")
	}
	if p := c.ReuseProb("mm", 10); p != 0 {
		t.Fatalf("fresh reuse prob = %v", p)
	}
	// Recalibrating with no observations must not advance the epoch.
	if c.Recalibrate(nil) {
		t.Fatalf("empty recalibration changed the snapshot")
	}
}

func TestCalibrationRateRecalibration(t *testing.T) {
	c := NewCalibration(Default())
	// Observe CP running at exactly half the nominal rate: 1e9 flops
	// costing 2e9/50e9 seconds each, for >= minOpSamples ops.
	for i := 0; i < 32; i++ {
		c.ObserveOp("mm", BackendCP, 10, 1e9, 1e9/25e9, 8<<10)
	}
	if !c.Recalibrate(nil) {
		t.Fatalf("recalibration with 32 observations did not change the snapshot")
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", c.Epoch())
	}
	eff := c.Effective().CPUFlops
	// 25e9 quantized to a quarter-octave bucket: within ~9.1% of 25e9.
	if math.Abs(eff-25e9)/25e9 > 0.1 {
		t.Fatalf("effective CPUFlops = %g, want ~25e9", eff)
	}
	if c.Effective().SparkFlops != Default().SparkFlops {
		t.Fatalf("SparkFlops moved without Spark observations")
	}
	// Same observations again: rate unchanged, epoch stable.
	for i := 0; i < 32; i++ {
		c.ObserveOp("mm", BackendCP, 10, 1e9, 1e9/25e9, 8<<10)
	}
	if c.Recalibrate(nil) {
		t.Fatalf("identical rate distribution advanced the epoch")
	}
}

func TestCalibrationBelowSampleFloor(t *testing.T) {
	c := NewCalibration(Default())
	for i := 0; i < minOpSamples-1; i++ {
		c.ObserveOp("mm", BackendCP, 10, 1e9, 1, 0)
	}
	c.Recalibrate(nil)
	if c.Effective().CPUFlops != Default().CPUFlops {
		t.Fatalf("rate moved below the sample floor")
	}
}

func TestCalibrationReuseProbabilities(t *testing.T) {
	c := NewCalibration(Default())
	src := fakeReuse{
		{"mm", int(BackendSpark), 17, 16, 16}, // every probe hit -> p = 1
		{"tsmm", int(BackendCP), 12, 16, 8},   // half -> p = 0.5
		{"conv2d", int(BackendCP), 12, 4, 4},  // below the probe floor
	}
	if !c.Recalibrate(src) {
		t.Fatalf("tallies did not change the snapshot")
	}
	if p := c.ReuseProb("mm", 17); p != 1 {
		t.Fatalf("mm prob = %v, want 1", p)
	}
	if p := c.ReuseProb("tsmm", 12); p != 0.5 {
		t.Fatalf("tsmm prob = %v, want 0.5", p)
	}
	if p := c.ReuseProb("conv2d", 12); p != 0 {
		t.Fatalf("conv2d prob = %v, want 0 (below sample floor)", p)
	}
	// Probabilities aggregate across backends for the same (op, class).
	c2 := NewCalibration(Default())
	c2.Recalibrate(fakeReuse{
		{"mm", int(BackendCP), 9, 8, 0},
		{"mm", int(BackendSpark), 9, 8, 8},
	})
	if p := c2.ReuseProb("mm", 9); p != 0.5 {
		t.Fatalf("aggregated prob = %v, want 0.5", p)
	}
}

func TestCalibrationDeterministicReplay(t *testing.T) {
	run := func() ([]byte, uint64, uint64) {
		c := NewCalibration(Default())
		for round := 0; round < 5; round++ {
			for i := 0; i < 20; i++ {
				c.ObserveOp("mm", BackendSpark, 20, 5e8, 0.09, 1<<20)
				c.ObserveOp("relu", BackendCP, 14, 2e4, 1e-6, 1<<14)
			}
			c.Recalibrate(fakeReuse{{"mm", int(BackendSpark), 20, int64(16 * (round + 1)), int64(15 * (round + 1))}})
		}
		raw, err := json.Marshal(c.Report())
		if err != nil {
			t.Fatal(err)
		}
		return raw, c.Epoch(), c.Fingerprint()
	}
	r1, e1, f1 := run()
	r2, e2, f2 := run()
	if string(r1) != string(r2) || e1 != e2 || f1 != f2 {
		t.Fatalf("replay diverged: epochs %d/%d fingerprints %x/%x\n%s\n%s", e1, e2, f1, f2, r1, r2)
	}
}

func TestCalibrationReportRows(t *testing.T) {
	c := NewCalibration(Default())
	for i := 0; i < 4; i++ {
		c.ObserveOp("mm", BackendCP, 10, 1e6, 1e-3, 4096)
	}
	c.Recalibrate(fakeReuse{{"mm", int(BackendCP), 10, 8, 6}})
	rep := c.Report()
	if len(rep.Backends) != 3 {
		t.Fatalf("backend rows = %d, want 3", len(rep.Backends))
	}
	if len(rep.Ops) != 1 {
		t.Fatalf("op rows = %d, want 1", len(rep.Ops))
	}
	row := rep.Ops[0]
	if row.Op != "mm" || row.Backend != "CP" || row.Ops != 4 || row.Probes != 8 || row.Hits != 6 {
		t.Fatalf("bad op row: %+v", row)
	}
	if row.HitRate != 0.75 {
		t.Fatalf("hit rate = %v", row.HitRate)
	}
	if row.PredictedSeconds <= 0 || row.ObservedSeconds != 4e-3 {
		t.Fatalf("predicted/observed = %v/%v", row.PredictedSeconds, row.ObservedSeconds)
	}
}

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero CPUFlops", func(m *Model) { m.CPUFlops = 0 }},
		{"negative Probe", func(m *Model) { m.Probe = -1e-6 }},
		{"NaN CollectBW", func(m *Model) { m.CollectBW = math.NaN() }},
		{"Inf SparkJobOverhead", func(m *Model) { m.SparkJobOverhead = math.Inf(1) }},
		{"zero SpillSetup", func(m *Model) { m.SpillSetup = 0 }},
	} {
		m := Default()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid model", tc.name)
		}
	}
}

func TestDeriveThresholdsAnchoredAtDefault(t *testing.T) {
	th := DeriveThresholds(Default())
	if th.OpMemBudget != 1<<20 {
		t.Fatalf("OpMemBudget = %d, want %d", th.OpMemBudget, 1<<20)
	}
	if th.GPUMinCells != 4096 {
		t.Fatalf("GPUMinCells = %d, want 4096", th.GPUMinCells)
	}
}

func TestDeriveThresholdsScale(t *testing.T) {
	// Doubling the Spark job overhead doubles the CP/Spark break-even, so
	// the derived operation budget doubles too.
	m := Default()
	m.SparkJobOverhead *= 2
	th := DeriveThresholds(m)
	if th.OpMemBudget != 2<<20 {
		t.Fatalf("OpMemBudget = %d, want %d", th.OpMemBudget, 2<<20)
	}
	if th.GPUMinCells != 4096 {
		t.Fatalf("GPUMinCells moved: %d", th.GPUMinCells)
	}
	// Halving GPU fixed overheads halves the GPU break-even.
	m2 := Default()
	m2.CudaMalloc /= 2
	m2.KernelLaunch /= 2
	m2.CopyLatency /= 2
	if th2 := DeriveThresholds(m2); th2.GPUMinCells != 2048 {
		t.Fatalf("GPUMinCells = %d, want 2048", th2.GPUMinCells)
	}
	// A cluster slower than the driver never breaks even; the anchor holds.
	m3 := Default()
	m3.SparkFlops = m3.CPUFlops / 2
	if th3 := DeriveThresholds(m3); th3.OpMemBudget != 1<<20 {
		t.Fatalf("diverging break-even moved the anchor: %d", th3.OpMemBudget)
	}
}
