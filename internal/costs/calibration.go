package costs

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"sort"
)

// This file implements the closed-loop half of the cost model: the static
// Table-2 constants stay immutable in Model, and a Calibration overlays
// them with effective rates recalibrated from replayable per-operator
// counters (observed virtual cost, bytes moved, op counts) plus reuse
// probabilities from lineage-cache hit statistics. Recalibration never
// reads wall clocks — it is a pure function of the observation counters,
// which are themselves pure functions of the execution trace, so adaptive
// runs replay bitwise-identically.

// Backend identifies the execution backend of an observation. The values
// mirror core.Backend (CP=0, Spark=1, GPU=2) so runtime code can convert
// with a plain cast without importing core here (costs must stay a leaf
// package).
type Backend int

const (
	BackendCP Backend = iota
	BackendSpark
	BackendGPU
	numBackends
)

func (b Backend) String() string {
	switch b {
	case BackendCP:
		return "CP"
	case BackendSpark:
		return "SP"
	case BackendGPU:
		return "GPU"
	default:
		return "?"
	}
}

// ShapeClass buckets an output cell count into a power-of-two size class
// (floor(log2(cells))), the granularity at which observations and reuse
// probabilities are keyed. Non-positive counts map to class 0.
func ShapeClass(cells int64) int {
	if cells <= 0 {
		return 0
	}
	return bits.Len64(uint64(cells)) - 1
}

// OpKey identifies one observation population: operator type, backend it
// executed on, and output shape class.
type OpKey struct {
	Op      string
	Backend Backend
	Class   int
}

func (k OpKey) less(o OpKey) bool {
	if k.Op != o.Op {
		return k.Op < o.Op
	}
	if k.Backend != o.Backend {
		return k.Backend < o.Backend
	}
	return k.Class < o.Class
}

// opObs accumulates the replayable execution counters of one key. Costs
// are virtual seconds (clock deltas), never wall time.
type opObs struct {
	ops   int64
	flops float64
	vcost float64
	bytes int64
}

// tally is a probe/hit pair from the lineage cache's reuse statistics.
type tally struct {
	probes int64
	hits   int64
}

// probKey keys reuse probabilities. Lineage keys are backend-agnostic — a
// cached result serves the operator no matter where it would have executed
// — so probabilities aggregate the per-backend tallies over (op, class).
type probKey struct {
	Op    string
	Class int
}

// ReuseSource supplies observed probe/hit tallies at recalibration time;
// lineage.ReuseStats implements it. Tallies must be invoked in a
// deterministic order (probability aggregation is integer arithmetic, so
// order only matters for replayability of the stored tally table).
type ReuseSource interface {
	Tallies(f func(op string, backend int, class int, probes, hits int64))
}

// Estimator is the query surface the compiler's adaptive placement uses.
// *Calibration implements it; tests inject stubs.
type Estimator interface {
	// Effective returns the model with recalibrated rates folded in. The
	// returned model is read-only and valid until the next Recalibrate.
	Effective() *Model
	// ReuseProb returns the quantized probability (eighths) that the
	// operator's result is served by the lineage cache.
	ReuseProb(op string, class int) float64
	// Epoch counts how many times recalibration changed the quantized
	// snapshot; Fingerprint hashes the snapshot itself. Both are folded
	// into compile-cache keys so cached plans never go stale silently.
	Epoch() uint64
	Fingerprint() uint64
}

// Quantization and sample floors: effective rates snap to quarter-octave
// buckets and probabilities to eighths, and neither moves below a minimum
// sample count — so the epoch advances a handful of times while estimates
// converge instead of churning every instruction (each epoch change
// invalidates compiled-plan cache entries).
const (
	minOpSamples    = 16
	minProbeSamples = 8
)

// Calibration is the mutable overlay over an immutable base Model. Not
// safe for concurrent use; each session owns one.
type Calibration struct {
	base    *Model
	eff     Model
	obs     map[OpKey]*opObs
	keys    []OpKey // insertion order; sorted views sort a copy
	tallies map[OpKey]tally
	probs   map[probKey]int64 // numerator of p in eighths (0..8)
	epoch   uint64
	fp      uint64
}

// NewCalibration starts a calibration at epoch 0, where the effective
// model equals the base and every reuse probability is zero.
func NewCalibration(base *Model) *Calibration {
	c := &Calibration{
		base:    base,
		eff:     *base,
		obs:     make(map[OpKey]*opObs),
		tallies: make(map[OpKey]tally),
		probs:   make(map[probKey]int64),
	}
	c.fp = c.fingerprint()
	return c
}

// ObserveOp records one executed operator: its flop estimate, the virtual
// cost the driver observed (clock delta across the instruction), and the
// bytes the execution moved.
func (c *Calibration) ObserveOp(op string, b Backend, class int, flops, vcost float64, bytes int64) {
	k := OpKey{Op: op, Backend: b, Class: class}
	o := c.obs[k]
	if o == nil {
		o = &opObs{}
		c.obs[k] = o
		c.keys = append(c.keys, k)
	}
	o.ops++
	o.flops += flops
	o.vcost += vcost
	o.bytes += bytes
}

// Recalibrate folds the accumulated counters (and the reuse source's
// tallies) into a fresh quantized snapshot. It returns true when the
// snapshot — and therefore the epoch — changed. Pure function of the
// counters: no wall clock, no randomness.
func (c *Calibration) Recalibrate(src ReuseSource) bool {
	sorted := make([]OpKey, len(c.keys))
	copy(sorted, c.keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].less(sorted[j]) })

	// Effective backend rates: observed flops per observed virtual second,
	// aggregated per backend in sorted key order (float accumulation order
	// must be deterministic), quantized to quarter-octave buckets.
	var ops [numBackends]int64
	var flops, vcost [numBackends]float64
	for _, k := range sorted {
		o := c.obs[k]
		if o.flops <= 0 || o.vcost <= 0 {
			continue
		}
		ops[k.Backend] += o.ops
		flops[k.Backend] += o.flops
		vcost[k.Backend] += o.vcost
	}
	c.eff = *c.base
	rate := func(base float64, b Backend) float64 {
		if ops[b] < minOpSamples || vcost[b] <= 0 {
			return base
		}
		return quantizeRate(flops[b] / vcost[b])
	}
	c.eff.CPUFlops = rate(c.base.CPUFlops, BackendCP)
	c.eff.SparkFlops = rate(c.base.SparkFlops, BackendSpark)
	c.eff.GPUFlops = rate(c.base.GPUFlops, BackendGPU)

	// Reuse probabilities: integer tallies aggregated over backends per
	// (op, class), rounded to eighths. p reaches 1 only when essentially
	// every probe hit (17n/18 of them after rounding).
	c.tallies = make(map[OpKey]tally)
	agg := make(map[probKey]tally)
	if src != nil {
		src.Tallies(func(op string, backend, class int, probes, hits int64) {
			c.tallies[OpKey{Op: op, Backend: Backend(backend), Class: class}] = tally{probes: probes, hits: hits}
			if class < 0 {
				return // size unknown at the recording site
			}
			pk := probKey{Op: op, Class: class}
			t := agg[pk]
			t.probes += probes
			t.hits += hits
			agg[pk] = t
		})
	}
	c.probs = make(map[probKey]int64)
	for pk, t := range agg {
		if t.probes < minProbeSamples {
			continue
		}
		// Round hits/probes to eighths: (16h + p) / 2p in integers.
		if p8 := (t.hits*16 + t.probes) / (2 * t.probes); p8 > 0 {
			c.probs[pk] = p8
		}
	}

	fp := c.fingerprint()
	if fp == c.fp {
		return false
	}
	c.fp = fp
	c.epoch++
	return true
}

// quantizeRate snaps a rate to the nearest quarter-octave bucket
// (2^(n/4)), bounding snapshot churn to ~19% rate movements.
func quantizeRate(x float64) float64 {
	if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	return math.Pow(2, math.Round(4*math.Log2(x))/4)
}

// fingerprint hashes the quantized snapshot: effective rates plus the
// sorted probability table.
func (c *Calibration) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(u uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(math.Float64bits(c.eff.CPUFlops))
	put(math.Float64bits(c.eff.SparkFlops))
	put(math.Float64bits(c.eff.GPUFlops))
	pks := make([]probKey, 0, len(c.probs))
	for pk := range c.probs {
		pks = append(pks, pk)
	}
	sort.Slice(pks, func(i, j int) bool {
		if pks[i].Op != pks[j].Op {
			return pks[i].Op < pks[j].Op
		}
		return pks[i].Class < pks[j].Class
	})
	for _, pk := range pks {
		h.Write([]byte(pk.Op))
		h.Write([]byte{0})
		put(uint64(pk.Class))
		put(uint64(c.probs[pk]))
	}
	return h.Sum64()
}

// Effective implements Estimator.
func (c *Calibration) Effective() *Model { return &c.eff }

// ReuseProb implements Estimator.
func (c *Calibration) ReuseProb(op string, class int) float64 {
	return float64(c.probs[probKey{Op: op, Class: class}]) / 8
}

// Epoch implements Estimator.
func (c *Calibration) Epoch() uint64 { return c.epoch }

// Fingerprint implements Estimator.
func (c *Calibration) Fingerprint() uint64 { return c.fp }

// BackendReport is one backend's aggregate calibration row.
type BackendReport struct {
	Backend         string  `json:"backend"`
	Ops             int64   `json:"ops"`
	Flops           float64 `json:"flops"`
	Bytes           int64   `json:"bytes"`
	ObservedSeconds float64 `json:"observed_seconds"`
	BaseRate        float64 `json:"base_rate"`
	EffectiveRate   float64 `json:"effective_rate"`
}

// OpReport is one (op, backend, class) population's predicted-vs-observed
// row, including its reuse statistics.
type OpReport struct {
	Op               string  `json:"op"`
	Backend          string  `json:"backend"`
	Class            int     `json:"class"`
	Ops              int64   `json:"ops"`
	Flops            float64 `json:"flops"`
	Bytes            int64   `json:"bytes"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	ObservedSeconds  float64 `json:"observed_seconds"`
	Probes           int64   `json:"probes"`
	Hits             int64   `json:"hits"`
	HitRate          float64 `json:"hit_rate"`
	ReuseProb        float64 `json:"reuse_prob"`
}

// CalibrationReport is the session-visible calibration snapshot
// (Stats.Calibration on the facade, `lineage-tool costs` on the CLI).
// Rows are deterministically sorted; serializing two replays of the same
// trace yields byte-identical JSON.
type CalibrationReport struct {
	Epoch       uint64          `json:"epoch"`
	Fingerprint string          `json:"fingerprint"`
	Backends    []BackendReport `json:"backends"`
	Ops         []OpReport      `json:"ops"`
}

// Report builds the snapshot. Predicted seconds charge the base model's
// rate plus its per-op fixed overhead, so drift between the analytic
// prediction and the observed virtual cost is visible per population.
func (c *Calibration) Report() *CalibrationReport {
	rep := &CalibrationReport{
		Epoch:       c.epoch,
		Fingerprint: fmt.Sprintf("%016x", c.fp),
	}
	baseRate := [numBackends]float64{c.base.CPUFlops, c.base.SparkFlops, c.base.GPUFlops}
	effRate := [numBackends]float64{c.eff.CPUFlops, c.eff.SparkFlops, c.eff.GPUFlops}
	overhead := [numBackends]float64{
		c.base.Interpret,
		c.base.SparkJobOverhead + c.base.SparkStageOverhead,
		c.base.CudaMalloc + c.base.KernelLaunch,
	}

	// Merge observation and tally keys so probe-only populations (all
	// hits, never executed) still report.
	keySet := make(map[OpKey]struct{}, len(c.obs)+len(c.tallies))
	for k := range c.obs {
		keySet[k] = struct{}{}
	}
	for k := range c.tallies {
		keySet[k] = struct{}{}
	}
	keys := make([]OpKey, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })

	var agg [numBackends]BackendReport
	for _, k := range keys {
		row := OpReport{Op: k.Op, Backend: k.Backend.String(), Class: k.Class}
		if o := c.obs[k]; o != nil {
			row.Ops, row.Flops, row.Bytes, row.ObservedSeconds = o.ops, o.flops, o.bytes, o.vcost
			row.PredictedSeconds = Compute(o.flops, baseRate[k.Backend]) + float64(o.ops)*overhead[k.Backend]
		}
		if t, ok := c.tallies[k]; ok {
			row.Probes, row.Hits = t.probes, t.hits
			if t.probes > 0 {
				row.HitRate = float64(t.hits) / float64(t.probes)
			}
		}
		if k.Class >= 0 {
			row.ReuseProb = c.ReuseProb(k.Op, k.Class)
		}
		rep.Ops = append(rep.Ops, row)
		if k.Backend >= 0 && k.Backend < numBackends {
			a := &agg[k.Backend]
			a.Ops += row.Ops
			a.Flops += row.Flops
			a.Bytes += row.Bytes
			a.ObservedSeconds += row.ObservedSeconds
		}
	}
	for b := Backend(0); b < numBackends; b++ {
		agg[b].Backend = b.String()
		agg[b].BaseRate = baseRate[b]
		agg[b].EffectiveRate = effRate[b]
		rep.Backends = append(rep.Backends, agg[b])
	}
	return rep
}
