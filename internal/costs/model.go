// Package costs defines the analytic cost model that the MEMPHIS simulator
// charges onto the virtual clock. The constants are calibrated against the
// paper's measurements: Table 2 (backend bandwidths), Figure 2(c) (Spark job
// overheads dominating eager caching), Figure 2(d) (GPU allocation/free 4.6x
// and copy 9x of kernel compute for a small affine layer), and Figure 11
// (per-instruction interpretation, tracing, and probing overheads).
package costs

import (
	"fmt"
	"math"
)

// Model holds all tunable cost constants. Times are seconds, sizes bytes,
// rates bytes/second or FLOP/second.
type Model struct {
	// Compute throughputs (effective, not peak).
	CPUFlops   float64 // local driver, multi-threaded ops
	GPUFlops   float64 // single GPU stream
	SparkFlops float64 // aggregate cluster throughput

	// Bandwidths (Table 2; host-to-device is pageable).
	SparkExchangeBW float64 // aggregate shuffle bandwidth
	CollectBW       float64 // executors -> driver link
	BroadcastBW     float64 // driver -> executors link
	H2DBW           float64 // host to GPU device
	D2HBW           float64 // GPU device to host
	DiskBW          float64 // local disk spill/restore
	MemBW           float64 // host memory copy

	// Spark scheduling overheads.
	SparkJobOverhead   float64 // DAGScheduler job launch
	SparkStageOverhead float64 // per stage
	SparkTaskOverhead  float64 // per task (partition)
	ExecutorReplace    float64 // replacing a lost executor (re-registration)

	// GPU driver overheads.
	CudaMalloc   float64 // cudaMalloc fixed cost
	CudaFree     float64 // cudaFree fixed cost (also syncs the stream)
	KernelLaunch float64 // per-kernel launch latency
	CopyLatency  float64 // per-copy fixed latency (H2D/D2H)

	// Interpreter overheads per instruction (Figure 11(a): Base is
	// dominated by interpretation for tiny inputs; tracing adds ~0.3x and
	// probing ~1x on top).
	Interpret float64 // variable/statistics management per instruction
	Trace     float64 // lineage-item construction + map insert
	Probe     float64 // cache probe (hash + equals)
	CachePut  float64 // cache insert + metadata

	// Buffer-pool / disk-spill management.
	SpillSetup float64 // fixed cost per spill or restore
}

// Default returns the calibrated model used by all experiments.
func Default() *Model {
	return &Model{
		CPUFlops:   50e9,  // ~ multi-threaded BLAS on one node
		GPUFlops:   10e12, // effective dense throughput of one A40
		SparkFlops: 400e9, // 8 workers

		SparkExchangeBW: 15e9, // Table 2
		CollectBW:       1.5e9,
		BroadcastBW:     1.5e9,
		H2DBW:           6.1e9, // Table 2, pageable
		D2HBW:           6.1e9,
		DiskBW:          0.5e9,
		MemBW:           20e9,

		SparkJobOverhead:   80e-3,
		SparkStageOverhead: 20e-3,
		SparkTaskOverhead:  1e-3,
		ExecutorReplace:    200e-3,

		CudaMalloc:   60e-6,
		CudaFree:     50e-6,
		KernelLaunch: 5e-6,
		CopyLatency:  20e-6,

		Interpret: 2e-6,
		Trace:     0.6e-6,
		Probe:     2e-6,
		CachePut:  1e-6,

		SpillSetup: 2e-3,
	}
}

// Validate checks that every rate and overhead in the model is positive
// and finite. A zero or negative rate would divide virtual time away (or
// make it negative), and NaN/Inf constants would poison every clock charge
// downstream, so misconfigured models are rejected up front
// (memphis.Options.Validate calls this for Options.CostModel).
func (m *Model) Validate() error {
	fields := []struct {
		name string
		v    float64
	}{
		{"CPUFlops", m.CPUFlops},
		{"GPUFlops", m.GPUFlops},
		{"SparkFlops", m.SparkFlops},
		{"SparkExchangeBW", m.SparkExchangeBW},
		{"CollectBW", m.CollectBW},
		{"BroadcastBW", m.BroadcastBW},
		{"H2DBW", m.H2DBW},
		{"D2HBW", m.D2HBW},
		{"DiskBW", m.DiskBW},
		{"MemBW", m.MemBW},
		{"SparkJobOverhead", m.SparkJobOverhead},
		{"SparkStageOverhead", m.SparkStageOverhead},
		{"SparkTaskOverhead", m.SparkTaskOverhead},
		{"ExecutorReplace", m.ExecutorReplace},
		{"CudaMalloc", m.CudaMalloc},
		{"CudaFree", m.CudaFree},
		{"KernelLaunch", m.KernelLaunch},
		{"CopyLatency", m.CopyLatency},
		{"Interpret", m.Interpret},
		{"Trace", m.Trace},
		{"Probe", m.Probe},
		{"CachePut", m.CachePut},
		{"SpillSetup", m.SpillSetup},
	}
	for _, f := range fields {
		if !(f.v > 0) || math.IsInf(f.v, 0) {
			return fmt.Errorf("costs: Model.%s = %v; every rate and overhead must be positive and finite", f.name, f.v)
		}
	}
	return nil
}

// MatMulFlops returns the FLOP count of an (m x k) * (k x n) product.
func MatMulFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// ElemwiseFlops returns the FLOP count of an elementwise op over n cells.
// Weight scales for transcendental ops (exp, log ~ weight 10).
func ElemwiseFlops(n int, weight float64) float64 { return float64(n) * weight }

// SolveFlops returns the FLOP count of solving an n x n dense system.
func SolveFlops(n int) float64 { f := float64(n); return 2.0 / 3.0 * f * f * f }

// Conv2DFlops returns the FLOP count of a direct 2-D convolution.
func Conv2DFlops(batch, cIn, cOut, outH, outW, kH, kW int) float64 {
	return 2 * float64(batch) * float64(cOut) * float64(outH) * float64(outW) *
		float64(cIn) * float64(kH) * float64(kW)
}

// Transfer returns the time to move size bytes at rate bw with fixed latency.
func Transfer(size int64, bw, latency float64) float64 {
	if size <= 0 {
		return latency
	}
	return latency + float64(size)/bw
}

// Compute returns the time for flops work at rate r, never negative.
func Compute(flops, r float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / r
}
