package lineage

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Serialize writes the DAG rooted at root as a lineage log: one line per
// node in topological (inputs-first) order, the root last. The format is
//
//	<localID> <opcode> <quoted data> <comma-separated input localIDs>
//
// Local IDs are dense and deterministic, so serializing equal DAGs yields
// identical logs. The log can be shared across environments and replayed
// with Deserialize + a RECOMPUTE harness (paper §3.2, debugging).
func Serialize(root *Item) string {
	var sb strings.Builder
	ids := make(map[uint64]int)
	var emit func(it *Item)
	emit = func(it *Item) {
		if _, ok := ids[it.id]; ok {
			return
		}
		for _, in := range it.inputs {
			emit(in)
		}
		local := len(ids)
		ids[it.id] = local
		refs := make([]string, len(it.inputs))
		for i, in := range it.inputs {
			refs[i] = strconv.Itoa(ids[in.id])
		}
		fmt.Fprintf(&sb, "%d %s %s %s\n", local, it.opcode, strconv.Quote(it.data), strings.Join(refs, ","))
	}
	emit(root)
	return sb.String()
}

// Deserialize parses a lineage log back into an in-memory DAG and returns
// its root (the last line).
func Deserialize(log string) (*Item, error) {
	sc := bufio.NewScanner(strings.NewReader(log))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	items := make(map[int]*Item)
	var root *Item
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := splitLogLine(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("lineage: malformed log line %d: %q", lineNo, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("lineage: bad id on line %d: %v", lineNo, err)
		}
		opcode := fields[1]
		dataStr, err := strconv.Unquote(fields[2])
		if err != nil {
			return nil, fmt.Errorf("lineage: bad data on line %d: %v", lineNo, err)
		}
		var inputs []*Item
		if len(fields) == 4 && fields[3] != "" {
			for _, ref := range strings.Split(fields[3], ",") {
				rid, err := strconv.Atoi(ref)
				if err != nil {
					return nil, fmt.Errorf("lineage: bad input ref on line %d: %v", lineNo, err)
				}
				in, ok := items[rid]
				if !ok {
					return nil, fmt.Errorf("lineage: forward reference %d on line %d", rid, lineNo)
				}
				inputs = append(inputs, in)
			}
		}
		it := NewItem(opcode, dataStr, inputs...)
		items[id] = it
		root = it
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("lineage: empty log")
	}
	return root, nil
}

// splitLogLine splits "id opcode <quoted data> refs" into up to 4 fields,
// respecting the quoted data field.
func splitLogLine(line string) []string {
	sp1 := strings.IndexByte(line, ' ')
	if sp1 < 0 {
		return []string{line}
	}
	sp2 := strings.IndexByte(line[sp1+1:], ' ')
	if sp2 < 0 {
		return []string{line[:sp1], line[sp1+1:]}
	}
	sp2 += sp1 + 1
	rest := line[sp2+1:]
	// rest starts with a quoted string; find its end.
	if !strings.HasPrefix(rest, "\"") {
		return []string{line[:sp1], line[sp1+1 : sp2], rest}
	}
	end := 1
	for end < len(rest) {
		if rest[end] == '\\' {
			end += 2
			continue
		}
		if rest[end] == '"' {
			break
		}
		end++
	}
	if end >= len(rest) {
		return []string{line[:sp1], line[sp1+1 : sp2], rest}
	}
	data := rest[:end+1]
	tail := strings.TrimSpace(rest[end+1:])
	return []string{line[:sp1], line[sp1+1 : sp2], data, tail}
}
