package lineage

import (
	"sync"
	"testing"
)

func TestReuseStatsNoteAndProb(t *testing.T) {
	s := NewReuseStats()
	for i := 0; i < 8; i++ {
		s.Note("mm", 1, 20, i > 0) // 7/8 hits on Spark
	}
	s.Note("mm", 0, 20, false)
	if p := s.Prob("mm", 1, 20); p != 7.0/8 {
		t.Fatalf("Prob = %v, want 7/8", p)
	}
	if p := s.Prob("mm", 0, 20); p != 0 {
		t.Fatalf("CP Prob = %v, want 0", p)
	}
	if p := s.Prob("tsmm", 0, 20); p != 0 {
		t.Fatalf("unseen Prob = %v, want 0", p)
	}
	// Aggregate across backends: 7 hits over 9 probes.
	if p := s.OpProb("mm"); p != 7.0/9 {
		t.Fatalf("OpProb = %v, want 7/9", p)
	}
}

func TestReuseStatsSnapshotSorted(t *testing.T) {
	s := NewReuseStats()
	s.Note("tsmm", 0, 12, true)
	s.Note("mm", 2, 8, false)
	s.Note("mm", 0, 8, true)
	s.Note("mm", 0, 10, true)
	rows := s.Snapshot()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []ReuseKey{
		{Op: "mm", Backend: 0, Class: 8},
		{Op: "mm", Backend: 0, Class: 10},
		{Op: "mm", Backend: 2, Class: 8},
		{Op: "tsmm", Backend: 0, Class: 12},
	}
	for i, w := range want {
		if rows[i].ReuseKey != w {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i].ReuseKey, w)
		}
	}
	if rows[0].HitRate != 1 || rows[2].HitRate != 0 {
		t.Fatalf("hit rates wrong: %+v", rows)
	}
	// Tallies iterates in the same order.
	var got []ReuseKey
	s.Tallies(func(op string, backend, class int, probes, hits int64) {
		got = append(got, ReuseKey{Op: op, Backend: backend, Class: class})
	})
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("tally %d = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestReuseStatsConcurrent(t *testing.T) {
	s := NewReuseStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Note("mm", 0, 10, i%2 == 0)
			}
		}()
	}
	wg.Wait()
	rows := s.Snapshot()
	if len(rows) != 1 || rows[0].Probes != 8000 || rows[0].Hits != 4000 {
		t.Fatalf("concurrent counts wrong: %+v", rows)
	}
}
